// GEMINI contiguity list (paper §5, Figure 6).
//
// Tracks free, contiguous physical memory extents sorted by starting
// address.  Gemini consults it when a VMA is first touched to find a free
// region that can back the whole VMA with huge-page-aligned placement.
// Lookups use the next-fit policy: the search resumes from where the
// previous search left off, and small allocations are steered to the low
// end of the address space so large extents at the high end survive
// (mitigating fragmentation, as the paper describes).
//
// The list is a view over a BuddyAllocator: Refresh() rebuilds the extent
// list by merging adjacent free buddy blocks into maximal runs.  The
// next-fit cursor survives refreshes (it is an address, not an iterator).
#ifndef SRC_VMEM_CONTIGUITY_LIST_H_
#define SRC_VMEM_CONTIGUITY_LIST_H_

#include <cstdint>
#include <vector>

#include "vmem/buddy_allocator.h"
#include "vmem/frame_space.h"

namespace vmem {

class ContiguityList {
 public:
  struct Extent {
    uint64_t frame;   // first frame of the free run
    uint64_t count;   // length in frames
    bool operator==(const Extent& other) const = default;
  };

  explicit ContiguityList(const BuddyAllocator* buddy) : buddy_(buddy) {}

  // Rebuilds the extent list from the allocator's current free map.
  void Refresh();

  // Finds a free extent of at least `count` frames using next-fit from the
  // cursor; wraps around once.  If `huge_aligned` is set, the returned
  // frame is rounded up to a 2 MiB boundary inside the extent and the
  // remaining space after rounding must still fit `count`.
  // Returns kInvalidFrame if nothing fits.  Advances the cursor past the
  // returned extent on success.
  uint64_t FindFit(uint64_t count, bool huge_aligned);

  // The largest extent currently known (frame/count), or count == 0 when
  // memory is exhausted.  Used by the sub-VMA mechanism when no extent fits
  // the whole VMA.
  Extent LargestExtent() const;

  size_t extent_count() const { return extents_.size(); }
  const std::vector<Extent>& extents() const { return extents_; }

 private:
  const BuddyAllocator* buddy_;
  uint64_t refreshed_epoch_ = ~0ull;
  std::vector<Extent> extents_;
  uint64_t cursor_ = 0;  // address (frame) where the next search starts
};

}  // namespace vmem

#endif  // SRC_VMEM_CONTIGUITY_LIST_H_
