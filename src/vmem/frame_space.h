// Per-frame metadata for a simulated physical address space (host physical
// frames, or guest physical frames inside one VM).
//
// The buddy allocator decides *which* frames are free; FrameSpace records
// *why* a frame is held: which owner (VM id / process id / the fragmenter /
// a Gemini booking) and for what purpose.  The alignment auditor and the
// misaligned-huge-page scanner read these tags.
#ifndef SRC_VMEM_FRAME_SPACE_H_
#define SRC_VMEM_FRAME_SPACE_H_

#include <cstdint>
#include <vector>

#include "base/check.h"
#include "base/types.h"

namespace vmem {

inline constexpr uint64_t kInvalidFrame = ~0ull;
inline constexpr int32_t kNoOwner = -1;

enum class FrameUse : uint8_t {
  kFree = 0,
  kAnonymous,    // regular data page
  kPageTable,    // simulated page-table backing
  kPinned,       // fragmenter / kernel pinned
  kBooked,       // reserved by Gemini huge booking
  kBucketed,     // held in the Gemini huge bucket
};

struct FrameInfo {
  int32_t owner = kNoOwner;
  FrameUse use = FrameUse::kFree;
};

class FrameSpace {
 public:
  explicit FrameSpace(uint64_t frame_count) : frames_(frame_count) {}

  uint64_t frame_count() const { return frames_.size(); }

  const FrameInfo& info(uint64_t frame) const {
    SIM_CHECK(frame < frames_.size());
    return frames_[frame];
  }

  void SetUse(uint64_t frame, uint64_t count, int32_t owner, FrameUse use) {
    SIM_CHECK(frame + count <= frames_.size());
    for (uint64_t i = 0; i < count; ++i) {
      frames_[frame + i].owner = owner;
      frames_[frame + i].use = use;
    }
  }

  void ClearUse(uint64_t frame, uint64_t count) {
    SetUse(frame, count, kNoOwner, FrameUse::kFree);
  }

  // Number of frames currently tagged with `use`.
  uint64_t CountUse(FrameUse use) const {
    uint64_t n = 0;
    for (const auto& f : frames_) {
      if (f.use == use) {
        ++n;
      }
    }
    return n;
  }

 private:
  std::vector<FrameInfo> frames_;
};

}  // namespace vmem

#endif  // SRC_VMEM_FRAME_SPACE_H_
