// Binary buddy allocator modeled on the Linux page allocator.
//
// Free memory is kept in per-order free lists, order 0 (one 4 KiB frame) to
// order kMaxOrder-1 (1024 frames = 4 MiB), mirroring Linux MAX_ORDER = 11.
// Allocation splits the smallest sufficient block; freeing merges buddies
// greedily.  Two features go beyond the textbook allocator because Gemini
// needs them:
//
//  * AllocateAt(frame, count): targeted allocation of an exact frame range,
//    used by the Enhanced Memory Allocator to place pages at offsets that
//    align with huge pages at the other layer, by huge booking to take a
//    reservation out of the general pool, and by the fragmenter.
//  * FMFI(order): the free memory fragmentation index used by Ingens and by
//    Gemini's booking-timeout controller (Algorithm 1) and preallocation
//    gate.
//
// The allocator also exposes its free map so the Gemini contiguity list can
// enumerate maximal free extents.
#ifndef SRC_VMEM_BUDDY_ALLOCATOR_H_
#define SRC_VMEM_BUDDY_ALLOCATOR_H_

#include <array>
#include <cstdint>
#include <map>
#include <set>

#include "base/rng.h"
#include "base/types.h"
#include "trace/tracer.h"
#include "vmem/frame_space.h"

namespace vmem {

class BuddyAllocator {
 public:
  // `selection_seed` randomizes which free block of an order serves each
  // allocation (bounded choice among the lowest few), modeling the
  // effectively arbitrary order of Linux's LIFO per-cpu freelists.  Seed 0
  // selects strictly lowest-address-first (deterministic; used by tests).
  explicit BuddyAllocator(uint64_t frame_count, uint64_t selection_seed = 0);

  BuddyAllocator(const BuddyAllocator&) = delete;
  BuddyAllocator& operator=(const BuddyAllocator&) = delete;

  // Allocates a naturally aligned block of 2^order frames.  Returns the
  // first frame, or kInvalidFrame if no block of sufficient order exists.
  // Prefers the lowest-addressed suitable block, like Linux's
  // address-ordered freelists under the default migratetype.
  uint64_t Allocate(int order);

  // Allocates the exact range [frame, frame + count).  Succeeds only if the
  // whole range is currently free.  The range need not be aligned or a
  // power of two; surrounding free space is re-split into maximal blocks.
  bool AllocateAt(uint64_t frame, uint64_t count);

  // True if the whole range [frame, frame + count) is free.
  bool IsRangeFree(uint64_t frame, uint64_t count) const;

  // Frees the range [frame, frame + count), merging buddies.  The range
  // must be entirely allocated.
  void Free(uint64_t frame, uint64_t count);

  bool IsFrameFree(uint64_t frame) const;

  uint64_t frame_count() const { return frame_count_; }
  uint64_t free_frames() const { return free_frames_; }
  uint64_t allocated_frames() const { return frame_count_ - free_frames_; }

  // Number of free blocks of exactly the given order.
  uint64_t FreeBlocksOfOrder(int order) const;

  // Largest order with at least one free block, or -1 if memory is full.
  int LargestFreeOrder() const;

  // How many order-`order` blocks could be carved from the free lists
  // (counting larger blocks at their split multiplicity).
  uint64_t BlocksAvailable(int order) const;

  // Free memory fragmentation index for allocations of the given order:
  //   FMFI = 1 - (frames usable as order-`order` blocks) / (free frames)
  // 0 means all free memory is available in sufficiently large blocks;
  // values near 1 mean free memory exists only as smaller fragments.
  // Returns 1.0 when no memory is free.
  double Fmfi(int order) const;

  // Monotone counter bumped on every free-map mutation; cheap change
  // detection for cached views (the contiguity list).
  uint64_t mutation_epoch() const { return mutation_epoch_; }

  // Attaches the machine's tracer so split/merge/targeted-allocation
  // tracepoints are emitted, tagged with this allocator's layer and VM.
  // Null (the default) keeps the allocator silent.
  void SetTracer(trace::Tracer* tracer, base::Layer layer, int32_t vm_id) {
    tracer_ = tracer;
    trace_layer_ = layer;
    trace_vm_ = vm_id;
  }

  // Visits each free block as (first_frame, order), in address order.
  template <typename Fn>
  void ForEachFreeBlock(Fn&& fn) const {
    for (const auto& [head, order] : free_blocks_) {
      fn(head, order);
    }
  }

  // Verifies internal invariants (for tests): free lists and the block map
  // agree, blocks are aligned, no two blocks overlap or are unmerged
  // buddies.  Aborts on violation.
  void CheckInvariants() const;

 private:
  // True if any frame of [frame, frame + count) is currently free; used to
  // reject double frees.
  bool Intersected(uint64_t frame, uint64_t count) const;

  void InsertFreeBlock(uint64_t head, int order);
  void RemoveFreeBlock(uint64_t head, int order);
  // Frees one naturally aligned block and merges with its buddy chain.
  void FreeBlock(uint64_t head, int order);
  // Re-inserts the free range [lo, hi) as maximal aligned blocks.
  void InsertFreeRange(uint64_t lo, uint64_t hi);

  uint64_t frame_count_;
  uint64_t free_frames_ = 0;
  uint64_t mutation_epoch_ = 0;
  trace::Tracer* tracer_ = nullptr;
  base::Layer trace_layer_ = base::Layer::kGuest;
  int32_t trace_vm_ = -1;
  bool randomize_ = false;
  base::Rng rng_;
  // head frame -> order, for every free block.  Address-ordered.
  std::map<uint64_t, int> free_blocks_;
  // Per-order set of free block heads (address-ordered for low-first
  // allocation).
  std::array<std::set<uint64_t>, base::kMaxOrder> free_lists_;
};

}  // namespace vmem

#endif  // SRC_VMEM_BUDDY_ALLOCATOR_H_
