#include "vmem/fragmenter.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "base/check.h"
#include "base/types.h"

namespace vmem {

double Fragmenter::FragmentToTarget(double target_fmfi, double max_fraction) {
  SIM_CHECK(target_fmfi >= 0.0 && target_fmfi <= 1.0);
  const uint64_t pin_budget =
      static_cast<uint64_t>(max_fraction * static_cast<double>(buddy_->frame_count()));
  while (buddy_->Fmfi(base::kHugeOrder) < target_fmfi &&
         pinned_.size() < pin_budget) {
    // Collect the heads of all huge-capable free blocks; pinning one frame
    // inside each splits it below huge-page size.
    std::vector<std::pair<uint64_t, int>> targets;
    buddy_->ForEachFreeBlock([&](uint64_t head, int order) {
      if (order >= static_cast<int>(base::kHugeOrder)) {
        targets.emplace_back(head, order);
      }
    });
    if (targets.empty()) {
      break;
    }
    for (const auto& [head, order] : targets) {
      const uint64_t size = 1ull << order;
      // Pin one frame per 2 MiB stride at a jittered offset, so every huge
      // span within the block becomes unusable for huge allocation.
      for (uint64_t off = 0; off < size; off += base::kPagesPerHuge) {
        const uint64_t span = std::min<uint64_t>(base::kPagesPerHuge, size - off);
        const uint64_t frame = head + off + rng_.NextBelow(span);
        if (buddy_->AllocateAt(frame, 1)) {
          frames_->SetUse(frame, 1, kNoOwner, FrameUse::kPinned);
          pinned_.push_back(frame);
          if (pinned_.size() >= pin_budget) {
            break;
          }
        }
      }
      if (pinned_.size() >= pin_budget ||
          buddy_->Fmfi(base::kHugeOrder) >= target_fmfi) {
        break;
      }
    }
  }
  return buddy_->Fmfi(base::kHugeOrder);
}

void Fragmenter::ReleaseAll() {
  for (uint64_t frame : pinned_) {
    frames_->ClearUse(frame, 1);
    buddy_->Free(frame, 1);
  }
  pinned_.clear();
}

}  // namespace vmem
