// A slow second memory tier layered over FrameSpace.
//
// TierSpace models the far side of a tiered-memory host: a compressed pool
// (zswap), a far NUMA node, or a plain swap device — anything pages can be
// demoted to when near memory runs short and refaulted from when the
// workload touches them again.  It deliberately tracks *which pages are
// far-resident*, not far frames: the far tier's internal layout does not
// affect translation, so modeling it as a capacity-bounded set keeps the
// near-tier effects (the interesting ones — buddy free-list churn,
// fragmentation, refault stalls) exact without inventing far-tier geometry.
//
// Ownership model: one TierSpace can back several kernels.  Guest kernels
// each own a private, unbounded TierSpace (their virtual swap device, the
// pre-tiering behavior).  The machine owns one host TierSpace shared by
// every per-VM host kernel slice, keyed by owner (vm_id), so a single far
// pool's capacity is contended by all tenants — the "Flexible Swapping for
// the Cloud" arrangement.
//
// The near-tier side of a demotion (unmap, free frames into the buddy
// allocator) and of a refault (fault path re-allocates from the buddy) is
// the owning kernel's job; TierSpace only keeps the far-resident set, the
// capacity check, the per-page migration costs, and the counters.  All
// containers are ordered, so iteration and accounting are deterministic.
#ifndef SRC_VMEM_TIER_SPACE_H_
#define SRC_VMEM_TIER_SPACE_H_

#include <cstdint>
#include <map>
#include <set>

#include "base/types.h"

namespace vmem {

// Cumulative per-owner migration counters.  The residency invariant
//   resident == demoted_pages - refaults - forgotten
// holds at every point (the machine fuzz test checks it each epoch).
struct TierStats {
  uint64_t demoted_pages = 0;  // pages moved near -> far
  uint64_t refaults = 0;       // pages moved far -> near on access
  uint64_t forgotten = 0;      // far records dropped by unmap/teardown
  uint64_t rejected = 0;       // demotions refused: far tier at capacity
};

class TierSpace {
 public:
  // `capacity_pages` == 0 means unbounded (a plain swap device — the
  // pre-tiering default).  `demote_cost` is charged by the owning kernel
  // per page moved far (asynchronous: compress + copy); `refault_cost` is
  // the synchronous stall of reading one page back.
  TierSpace(uint64_t capacity_pages, base::Cycles demote_cost,
            base::Cycles refault_cost)
      : capacity_pages_(capacity_pages),
        demote_cost_(demote_cost),
        refault_cost_(refault_cost) {}

  // Moves `page` of `owner` to the far tier.  Returns false (and counts a
  // rejection) if the far tier is full — the caller must then leave the
  // page mapped in near memory.  Demoting an already-far page is a no-op
  // returning true (idempotent, does not double-count).
  bool Demote(int32_t owner, uint64_t page) {
    Shard& shard = shards_[owner];
    if (shard.pages.contains(page)) {
      return true;
    }
    if (capacity_pages_ != 0 && resident_total_ >= capacity_pages_) {
      ++shard.stats.rejected;
      return false;
    }
    shard.pages.insert(page);
    ++shard.stats.demoted_pages;
    ++resident_total_;
    peak_resident_ = resident_total_ > peak_resident_ ? resident_total_
                                                      : peak_resident_;
    return true;
  }

  // If `page` of `owner` is far-resident, brings it back (erases the
  // record, counts a refault) and returns true; the caller charges
  // refault_cost() and re-faults the page into near memory.
  bool Refault(int32_t owner, uint64_t page) {
    auto it = shards_.find(owner);
    if (it == shards_.end() || it->second.pages.erase(page) == 0) {
      return false;
    }
    ++it->second.stats.refaults;
    --resident_total_;
    return true;
  }

  // Drops far records for [page, page + count) of `owner` (VMA teardown /
  // VM removal).  Returns how many records were dropped.
  uint64_t Forget(int32_t owner, uint64_t page, uint64_t count) {
    auto it = shards_.find(owner);
    if (it == shards_.end()) {
      return 0;
    }
    uint64_t dropped = 0;
    auto page_it = it->second.pages.lower_bound(page);
    while (page_it != it->second.pages.end() && *page_it < page + count) {
      page_it = it->second.pages.erase(page_it);
      ++dropped;
    }
    it->second.stats.forgotten += dropped;
    resident_total_ -= dropped;
    return dropped;
  }

  bool Contains(int32_t owner, uint64_t page) const {
    auto it = shards_.find(owner);
    return it != shards_.end() && it->second.pages.contains(page);
  }

  // Far-resident pages of one owner / of everyone.
  uint64_t resident(int32_t owner) const {
    auto it = shards_.find(owner);
    return it == shards_.end() ? 0 : it->second.pages.size();
  }
  uint64_t resident_total() const { return resident_total_; }
  uint64_t peak_resident() const { return peak_resident_; }

  uint64_t capacity_pages() const { return capacity_pages_; }
  base::Cycles demote_cost() const { return demote_cost_; }
  base::Cycles refault_cost() const { return refault_cost_; }

  TierStats stats(int32_t owner) const {
    auto it = shards_.find(owner);
    return it == shards_.end() ? TierStats{} : it->second.stats;
  }
  TierStats totals() const {
    TierStats t;
    for (const auto& [owner, shard] : shards_) {
      (void)owner;
      t.demoted_pages += shard.stats.demoted_pages;
      t.refaults += shard.stats.refaults;
      t.forgotten += shard.stats.forgotten;
      t.rejected += shard.stats.rejected;
    }
    return t;
  }

 private:
  struct Shard {
    std::set<uint64_t> pages;  // far-resident page numbers
    TierStats stats;
  };

  uint64_t capacity_pages_;
  base::Cycles demote_cost_;
  base::Cycles refault_cost_;
  uint64_t resident_total_ = 0;
  uint64_t peak_resident_ = 0;
  std::map<int32_t, Shard> shards_;  // ordered: deterministic accounting
};

}  // namespace vmem

#endif  // SRC_VMEM_TIER_SPACE_H_
