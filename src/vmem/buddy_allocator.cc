#include "vmem/buddy_allocator.h"

#include <algorithm>

#include "base/check.h"

namespace vmem {

using base::kMaxOrder;

BuddyAllocator::BuddyAllocator(uint64_t frame_count, uint64_t selection_seed)
    : frame_count_(frame_count),
      randomize_(selection_seed != 0),
      rng_(selection_seed == 0 ? 1 : selection_seed) {
  SIM_CHECK(frame_count > 0);
  InsertFreeRange(0, frame_count);
}

void BuddyAllocator::InsertFreeBlock(uint64_t head, int order) {
  SIM_CHECK(order >= 0 && order < kMaxOrder);
  auto [it, inserted] = free_blocks_.emplace(head, order);
  SIM_CHECK(inserted);
  (void)it;
  free_lists_[order].insert(head);
  free_frames_ += 1ull << order;
  ++mutation_epoch_;
}

void BuddyAllocator::RemoveFreeBlock(uint64_t head, int order) {
  auto it = free_blocks_.find(head);
  SIM_CHECK(it != free_blocks_.end() && it->second == order);
  free_blocks_.erase(it);
  const size_t erased = free_lists_[order].erase(head);
  SIM_CHECK(erased == 1);
  free_frames_ -= 1ull << order;
  ++mutation_epoch_;
}

void BuddyAllocator::FreeBlock(uint64_t head, int order) {
  const int freed_order = order;
  // Merge with the buddy chain while the buddy block is free and whole.
  while (order < kMaxOrder - 1) {
    const uint64_t size = 1ull << order;
    const uint64_t buddy = head ^ size;
    if (buddy + size > frame_count_) {
      break;
    }
    auto it = free_blocks_.find(buddy);
    if (it == free_blocks_.end() || it->second != order) {
      break;
    }
    RemoveFreeBlock(buddy, order);
    head = std::min(head, buddy);
    ++order;
  }
  InsertFreeBlock(head, order);
  if (tracer_ != nullptr && order != freed_order) {
    tracer_->Emit(trace::EventKind::kBuddyMerge, trace_layer_, trace_vm_, head,
                  static_cast<uint64_t>(freed_order),
                  static_cast<uint64_t>(order));
  }
}

void BuddyAllocator::InsertFreeRange(uint64_t lo, uint64_t hi) {
  while (lo < hi) {
    // Largest naturally-aligned block that starts at lo and fits.
    int order = lo == 0 ? kMaxOrder - 1
                        : static_cast<int>(__builtin_ctzll(lo));
    order = std::min(order, kMaxOrder - 1);
    while ((1ull << order) > hi - lo) {
      --order;
    }
    FreeBlock(lo, order);
    lo += 1ull << order;
  }
}

uint64_t BuddyAllocator::Allocate(int order) {
  SIM_CHECK(order >= 0 && order < kMaxOrder);
  // Find the lowest-addressed block among the smallest sufficient orders.
  int found = -1;
  for (int o = order; o < kMaxOrder; ++o) {
    if (!free_lists_[o].empty()) {
      found = o;
      break;
    }
  }
  if (found < 0) {
    return kInvalidFrame;
  }
  auto it = free_lists_[found].begin();
  if (randomize_) {
    // Bounded random choice among the lowest few candidates: enough entropy
    // to decorrelate physical reuse, cheap to compute.
    constexpr size_t kChoiceWindow = 16;
    const size_t window =
        std::min<size_t>(kChoiceWindow, free_lists_[found].size());
    std::advance(it, static_cast<size_t>(rng_.NextBelow(window)));
  }
  const uint64_t head = *it;
  RemoveFreeBlock(head, found);
  // Split down to the requested order, returning the low half each time and
  // freeing the high half (Linux splits the same way).
  for (int o = found; o > order; --o) {
    const uint64_t half = 1ull << (o - 1);
    InsertFreeBlock(head + half, o - 1);
  }
  if (tracer_ != nullptr && found != order) {
    tracer_->Emit(trace::EventKind::kBuddySplit, trace_layer_, trace_vm_, head,
                  static_cast<uint64_t>(found), static_cast<uint64_t>(order));
  }
  return head;
}

bool BuddyAllocator::IsRangeFree(uint64_t frame, uint64_t count) const {
  if (count == 0) {
    return true;
  }
  if (frame + count > frame_count_) {
    return false;
  }
  uint64_t cursor = frame;
  const uint64_t end = frame + count;
  while (cursor < end) {
    auto it = free_blocks_.upper_bound(cursor);
    if (it == free_blocks_.begin()) {
      return false;
    }
    --it;
    const uint64_t block_end = it->first + (1ull << it->second);
    if (block_end <= cursor) {
      return false;
    }
    cursor = block_end;
  }
  return true;
}

bool BuddyAllocator::IsFrameFree(uint64_t frame) const {
  return IsRangeFree(frame, 1);
}

bool BuddyAllocator::AllocateAt(uint64_t frame, uint64_t count) {
  if (count == 0) {
    return true;
  }
  if (!IsRangeFree(frame, count)) {
    return false;
  }
  const uint64_t end = frame + count;
  // Remove every free block overlapping the range, keeping the slack.
  uint64_t cursor = frame;
  while (cursor < end) {
    auto it = free_blocks_.upper_bound(cursor);
    SIM_CHECK(it != free_blocks_.begin());
    --it;
    const uint64_t head = it->first;
    const int order = it->second;
    const uint64_t block_end = head + (1ull << order);
    RemoveFreeBlock(head, order);
    if (head < frame) {
      InsertFreeRange(head, frame);
    }
    if (block_end > end) {
      InsertFreeRange(end, block_end);
    }
    cursor = block_end;
  }
  if (tracer_ != nullptr) {
    tracer_->Emit(trace::EventKind::kBuddyAllocAt, trace_layer_, trace_vm_,
                  frame, count);
  }
  return true;
}

void BuddyAllocator::Free(uint64_t frame, uint64_t count) {
  SIM_CHECK(frame + count <= frame_count_);
  SIM_CHECK_MSG(!Intersected(frame, count), "double free of frame %llu",
                static_cast<unsigned long long>(frame));
  InsertFreeRange(frame, frame + count);
}

bool BuddyAllocator::Intersected(uint64_t frame, uint64_t count) const {
  // True if any frame in the range is already free.
  auto it = free_blocks_.upper_bound(frame);
  if (it != free_blocks_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + (1ull << prev->second) > frame) {
      return true;
    }
  }
  return it != free_blocks_.end() && it->first < frame + count;
}

uint64_t BuddyAllocator::FreeBlocksOfOrder(int order) const {
  SIM_CHECK(order >= 0 && order < kMaxOrder);
  return free_lists_[order].size();
}

int BuddyAllocator::LargestFreeOrder() const {
  for (int o = kMaxOrder - 1; o >= 0; --o) {
    if (!free_lists_[o].empty()) {
      return o;
    }
  }
  return -1;
}

uint64_t BuddyAllocator::BlocksAvailable(int order) const {
  SIM_CHECK(order >= 0 && order < kMaxOrder);
  uint64_t blocks = 0;
  for (int o = order; o < kMaxOrder; ++o) {
    blocks += free_lists_[o].size() << (o - order);
  }
  return blocks;
}

double BuddyAllocator::Fmfi(int order) const {
  SIM_CHECK(order >= 0 && order < kMaxOrder);
  if (free_frames_ == 0) {
    return 1.0;
  }
  uint64_t usable = 0;
  for (int o = order; o < kMaxOrder; ++o) {
    usable += free_lists_[o].size() << o;
  }
  return 1.0 - static_cast<double>(usable) / static_cast<double>(free_frames_);
}

void BuddyAllocator::CheckInvariants() const {
  uint64_t total = 0;
  uint64_t prev_end = 0;
  bool first = true;
  for (const auto& [head, order] : free_blocks_) {
    SIM_CHECK(order >= 0 && order < kMaxOrder);
    const uint64_t size = 1ull << order;
    SIM_CHECK_MSG(head % size == 0, "misaligned free block head=%llu order=%d",
                  static_cast<unsigned long long>(head), order);
    SIM_CHECK(head + size <= frame_count_);
    if (!first) {
      SIM_CHECK(head >= prev_end);  // disjoint
    }
    // No unmerged buddy pairs.
    const uint64_t buddy = head ^ size;
    if (order < kMaxOrder - 1 && buddy + size <= frame_count_) {
      auto it = free_blocks_.find(buddy);
      SIM_CHECK_MSG(it == free_blocks_.end() || it->second != order,
                    "unmerged buddies at %llu order %d",
                    static_cast<unsigned long long>(head), order);
    }
    SIM_CHECK(free_lists_[order].count(head) == 1);
    total += size;
    prev_end = head + size;
    first = false;
  }
  SIM_CHECK(total == free_frames_);
  uint64_t list_total = 0;
  for (int o = 0; o < kMaxOrder; ++o) {
    list_total += free_lists_[o].size() << o;
  }
  SIM_CHECK(list_total == free_frames_);
}

}  // namespace vmem
