// Memory fragmentation tool (paper §6.1).
//
// The paper's evaluation fragments both guest and host physical memory
// before running each workload, using the free memory fragmentation index
// (FMFI) to measure the degree of fragmentation.  This class reproduces
// that tool for the simulator: it pins single frames scattered across the
// free space until FMFI at the huge-page order reaches the requested
// target, leaving free memory that exists mostly as sub-2MiB fragments.
#ifndef SRC_VMEM_FRAGMENTER_H_
#define SRC_VMEM_FRAGMENTER_H_

#include <cstdint>
#include <vector>

#include "base/rng.h"
#include "vmem/buddy_allocator.h"
#include "vmem/frame_space.h"

namespace vmem {

class Fragmenter {
 public:
  Fragmenter(BuddyAllocator* buddy, FrameSpace* frames, uint64_t seed)
      : buddy_(buddy), frames_(frames), rng_(seed) {}

  // Pins scattered frames until Fmfi(kHugeOrder) >= target_fmfi or until
  // `max_fraction` of all frames are pinned (safety valve).  Returns the
  // achieved FMFI.
  double FragmentToTarget(double target_fmfi, double max_fraction = 0.5);

  // Releases every pinned frame (restores a pristine free space).
  void ReleaseAll();

  uint64_t pinned_frames() const { return pinned_.size(); }

 private:
  BuddyAllocator* buddy_;
  FrameSpace* frames_;
  base::Rng rng_;
  std::vector<uint64_t> pinned_;
};

}  // namespace vmem

#endif  // SRC_VMEM_FRAGMENTER_H_
