#include "vmem/contiguity_list.h"

#include <algorithm>

#include "base/types.h"

namespace vmem {

void ContiguityList::Refresh() {
  if (refreshed_epoch_ == buddy_->mutation_epoch()) {
    return;  // free map unchanged since the last rebuild
  }
  refreshed_epoch_ = buddy_->mutation_epoch();
  extents_.clear();
  uint64_t run_start = kInvalidFrame;
  uint64_t run_end = 0;
  buddy_->ForEachFreeBlock([&](uint64_t head, int order) {
    const uint64_t size = 1ull << order;
    if (run_start != kInvalidFrame && head == run_end) {
      run_end += size;
      return;
    }
    if (run_start != kInvalidFrame) {
      extents_.push_back(Extent{run_start, run_end - run_start});
    }
    run_start = head;
    run_end = head + size;
  });
  if (run_start != kInvalidFrame) {
    extents_.push_back(Extent{run_start, run_end - run_start});
  }
}

uint64_t ContiguityList::FindFit(uint64_t count, bool huge_aligned) {
  if (count == 0 || extents_.empty()) {
    return kInvalidFrame;
  }
  // Locate the first extent at or after the cursor.
  auto begin_it = std::lower_bound(
      extents_.begin(), extents_.end(), cursor_,
      [](const Extent& e, uint64_t frame) { return e.frame + e.count <= frame; });
  const size_t start_index =
      static_cast<size_t>(begin_it - extents_.begin()) % extents_.size();
  // Pass 1 honours the cursor (next-fit); pass 2 wraps and retries every
  // extent from its head.
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t probe = 0; probe < extents_.size(); ++probe) {
      const Extent& e = extents_[(start_index + probe) % extents_.size()];
      uint64_t frame = e.frame;
      if (pass == 0 && frame < cursor_ && cursor_ < e.frame + e.count) {
        frame = cursor_;  // resume inside the cursor extent
      }
      if (huge_aligned) {
        frame =
            base::HugeAlignUp(frame << base::kPageShift) >> base::kPageShift;
      }
      if (frame >= e.frame && frame + count <= e.frame + e.count) {
        cursor_ = frame + count;
        return frame;
      }
    }
  }
  return kInvalidFrame;
}

ContiguityList::Extent ContiguityList::LargestExtent() const {
  Extent best{0, 0};
  for (const Extent& e : extents_) {
    if (e.count > best.count) {
      best = e;
    }
  }
  return best;
}

}  // namespace vmem
