// Misaligned Huge Page Promoter (MHPP), paper §4/§5 (kgeminid).
//
// The promoter is Gemini's background pass.  It differs from a vanilla
// khugepaged in two ways:
//  * Priority: base pages mapped under type-2 misaligned huge pages at the
//    other layer are promoted *first*, because promoting them converts an
//    existing (so far useless) huge page into a well-aligned one — double
//    value per promotion.
//  * Huge preallocation: when a region placed by EMA is almost complete
//    (>= 256 of 512 pages present) and memory is not fragmented
//    (FMFI <= 0.5), the promoter pre-allocates the missing base pages at
//    their EMA targets and promotes the region in place, ahead of the
//    booking timeout (paper §4.2, "Huge preallocation").
#ifndef SRC_GEMINI_PROMOTER_H_
#define SRC_GEMINI_PROMOTER_H_

#include <cstdint>
#include <vector>

#include "gemini/channel.h"
#include "policy/policy.h"

namespace gemini {

struct PromoterOptions {
  uint32_t promotions_per_tick = 16;
  // Utilization bar for ordinary (non-priority) regions, Ingens-like.
  uint32_t normal_min_present = 460;
  // Huge preallocation gate (paper: 256 pages, FMFI <= 0.5).
  uint32_t prealloc_min_present = 256;
  double prealloc_max_fmfi = 0.5;
  // Ordinary (non-alignment) host migrations stop while fewer than this
  // many order-9 blocks remain: the reserve is kept for turning misaligned
  // huge pages well-aligned ("first ... before other memory regions").
  uint64_t ordinary_block_reserve = 12;
};

struct PromoterStats {
  uint64_t in_place = 0;
  uint64_t preallocated = 0;
  uint64_t priority_migrations = 0;
  uint64_t normal_migrations = 0;
};

class Promoter {
 public:
  explicit Promoter(const PromoterOptions& options = {})
      : options_(options) {}

  // One background pass over the guest process table.  `channel` supplies
  // the misaligned-host-huge regions to prioritize.
  void RunGuestTick(policy::KernelOps& kernel, const GeminiChannel& channel);

  // One background pass over the EPT.  `channel` supplies the
  // guest-huge-misaligned regions to prioritize.
  void RunHostTick(policy::KernelOps& kernel, const GeminiChannel& channel);

  const PromoterStats& stats() const { return stats_; }

 private:
  // If the region's present pages already sit contiguously at a
  // huge-aligned anchor and the missing frames are free, allocate + map the
  // missing pages and promote in place.  Returns true on success.
  bool TryPreallocatePromote(policy::KernelOps& kernel, uint64_t region);

  PromoterOptions options_;
  PromoterStats stats_;
  std::vector<uint32_t> missing_;  // scratch for TryPreallocatePromote
};

}  // namespace gemini

#endif  // SRC_GEMINI_PROMOTER_H_
