// Huge booking (paper §3, §4.1).
//
// For a type-1 misaligned huge page, Gemini temporarily reserves the
// huge-page-sized memory region at the other layer (taking it out of the
// buddy's general pool) so that ordinary small allocations cannot splinter
// it before an aligned huge page or aligned contiguous base pages can be
// formed there.  A booking ends when:
//   * the enhanced memory allocator assigns the region to an allocation
//     (the frames return to the buddy just-in-time for targeted
//     allocation), or
//   * the booking times out.
//
// The timeout is the key tunable: too long wastes memory and raises
// fragmentation, too short loses bookings to splintering.  Algorithm 1
// adjusts it online: probe +10 %, keep it if TLB misses decreased without
// fragmentation increasing, else probe -10 %, symmetrically.  The
// BookingTimeoutController below is a direct state-machine transcription of
// the algorithm's while-loop: each OnPeriod() call delivers one period P of
// measurements (TLB misses, FMFI).
#ifndef SRC_GEMINI_HUGE_BOOKING_H_
#define SRC_GEMINI_HUGE_BOOKING_H_

#include <cstdint>
#include <map>

#include "base/types.h"
#include "trace/tracer.h"
#include "vmem/buddy_allocator.h"
#include "vmem/frame_space.h"

namespace gemini {

class BookingTimeoutController {
 public:
  explicit BookingTimeoutController(base::Cycles initial_timeout)
      : desired_(static_cast<double>(initial_timeout)),
        effective_(initial_timeout) {}

  // Feeds one measurement period: TLB misses observed during the period and
  // the FMFI at its end.  Returns the effective timeout to use next.
  base::Cycles OnPeriod(uint64_t tlb_misses, double fmfi);

  base::Cycles effective_timeout() const { return effective_; }
  double desired_timeout() const { return desired_; }

 private:
  enum class Phase : uint8_t {
    kBaseline,    // collecting at T_d
    kProbeUp,     // collecting at T_d * 1.1
    kRebaseline,  // probe-up rejected; re-collect at T_d
    kProbeDown,   // collecting at T_d * 0.9
  };

  // True if the probe period improved on the baseline: TLB misses strictly
  // decreased and fragmentation did not increase (Algorithm 1's
  // TestTimeout acceptance condition).
  bool ProbeAccepted(uint64_t misses, double fmfi) const {
    return misses < baseline_misses_ && fmfi <= baseline_fmfi_;
  }

  Phase phase_ = Phase::kBaseline;
  double desired_;
  base::Cycles effective_;
  uint64_t baseline_misses_ = 0;
  double baseline_fmfi_ = 0.0;
  bool have_baseline_ = false;
};

// Reserves and hands out huge-page-sized physical regions.
class BookingManager {
 public:
  BookingManager(vmem::BuddyAllocator* buddy, vmem::FrameSpace* frames,
                 int32_t owner, trace::Tracer* tracer = nullptr,
                 base::Layer layer = base::Layer::kGuest)
      : buddy_(buddy),
        frames_(frames),
        owner_(owner),
        tracer_(tracer),
        layer_(layer) {}
  ~BookingManager();

  // Books the region starting at `frame` (huge-aligned, 512 frames) if the
  // whole range is free.  Returns false otherwise.
  bool Book(uint64_t frame, base::Cycles now, base::Cycles timeout);

  bool IsBooked(uint64_t frame) const { return bookings_.count(frame) != 0; }
  size_t booked_count() const { return bookings_.size(); }

  // Assigns a booked region to an allocation: the frames return to the
  // buddy (free) so the caller's targeted allocation will succeed.
  // Returns false if `frame` is not booked.
  bool Assign(uint64_t frame);

  // Pops any booked region, releasing it for targeted allocation, and
  // returns its first frame (kInvalidFrame if none booked).
  uint64_t AssignAny();

  // Releases bookings whose deadline passed.  Returns how many expired.
  uint64_t ExpireTimeouts(base::Cycles now);

  // Releases every booking (e.g. memory pressure).
  void ReleaseAll();

  // Cumulative lifetime counts, exported through PolicyTelemetry.
  uint64_t started() const { return started_; }
  uint64_t assigned() const { return assigned_; }
  uint64_t expired() const { return expired_; }

 private:
  void Release(uint64_t frame);

  vmem::BuddyAllocator* buddy_;
  vmem::FrameSpace* frames_;
  int32_t owner_;
  trace::Tracer* tracer_;
  base::Layer layer_;
  uint64_t started_ = 0;
  uint64_t assigned_ = 0;
  uint64_t expired_ = 0;
  std::map<uint64_t, base::Cycles> bookings_;  // first frame -> deadline
};

}  // namespace gemini

#endif  // SRC_GEMINI_HUGE_BOOKING_H_
