// Misaligned Huge Page Scanner (MHPS), paper §4.
//
// Runs at the host layer.  Periodically scans the guest process page tables
// (for huge pages formed in the guest) and the VM page tables (for huge
// pages formed in the host), labels each huge page with its layer and
// guest-physical region, and derives the misalignment lists by comparison:
//
//   host-huge misaligned: EPT huge leaf whose region is not the target of a
//     guest huge page.  Type-1 if the guest has not allocated any frame of
//     the region; type-2 otherwise.
//   guest-huge misaligned: guest huge page whose target region is not a
//     huge EPT leaf.  Type-1 if the EPT has no base mappings in the region;
//     type-2 otherwise.
//
// Results go into the per-VM GeminiChannel.
#ifndef SRC_GEMINI_MHPS_H_
#define SRC_GEMINI_MHPS_H_

#include "gemini/channel.h"
#include "mmu/page_table.h"
#include "vmem/buddy_allocator.h"

namespace gemini {

struct MhpsStats {
  uint64_t scans = 0;
  uint64_t guest_huge_seen = 0;
  uint64_t host_huge_seen = 0;
  uint64_t well_aligned = 0;
  uint64_t host_huge_misaligned = 0;
  uint64_t guest_huge_misaligned = 0;
};

class Mhps {
 public:
  // Scans one VM: `guest_table` (GVA -> GFN), `ept` (GFN -> PFN), and the
  // guest's buddy (to classify type-1 vs type-2 for host-huge regions).
  // Rewrites the channel's misalignment lists, preserving `discovered`
  // stamps of regions that remain misaligned.
  void ScanVm(const mmu::PageTable& guest_table, const mmu::PageTable& ept,
              const vmem::BuddyAllocator& guest_buddy, base::Cycles now,
              GeminiChannel& channel);

  const MhpsStats& stats() const { return stats_; }

 private:
  MhpsStats stats_;
};

}  // namespace gemini

#endif  // SRC_GEMINI_MHPS_H_
