#include "gemini/ema.h"

#include "base/check.h"
#include "base/types.h"

namespace gemini {

uint64_t Ema::TargetFor(int32_t vma_id, uint64_t page) {
  auto it = spans_.find(vma_id);
  if (it == spans_.end()) {
    ++stats_.descriptor_misses;
    return vmem::kInvalidFrame;
  }
  std::list<Span>& list = it->second;
  for (auto span_it = list.begin(); span_it != list.end(); ++span_it) {
    if (page >= span_it->start_page &&
        page < span_it->start_page + span_it->pages) {
      ++stats_.descriptor_hits;
      // Move-to-front: faults are local, so the matched descriptor is very
      // likely to be matched again next.
      list.splice(list.begin(), list, span_it);
      const int64_t target = static_cast<int64_t>(page) - list.front().offset;
      SIM_CHECK(target >= 0);
      return static_cast<uint64_t>(target);
    }
  }
  ++stats_.descriptor_misses;
  return vmem::kInvalidFrame;
}

void Ema::AddSpan(int32_t vma_id, uint64_t start_page, uint64_t pages,
                  int64_t offset) {
  SIM_CHECK(pages > 0);
  std::list<Span>& list = spans_[vma_id];
  for (const Span& existing : list) {
    const bool disjoint = start_page + pages <= existing.start_page ||
                          existing.start_page + existing.pages <= start_page;
    SIM_CHECK_MSG(disjoint, "overlapping EMA span for vma %d", vma_id);
  }
  list.push_front(Span{start_page, pages, offset});
  ++stats_.descriptors_created;
}

void Ema::RemoveSpanAt(int32_t vma_id, uint64_t page) {
  auto it = spans_.find(vma_id);
  if (it == spans_.end()) {
    return;
  }
  for (auto span_it = it->second.begin(); span_it != it->second.end();
       ++span_it) {
    if (page >= span_it->start_page &&
        page < span_it->start_page + span_it->pages) {
      it->second.erase(span_it);
      ++stats_.ranges_reassigned;
      return;
    }
  }
}

void Ema::SplitSpanAt(int32_t vma_id, uint64_t page) {
  auto it = spans_.find(vma_id);
  if (it == spans_.end()) {
    return;
  }
  for (auto span_it = it->second.begin(); span_it != it->second.end();
       ++span_it) {
    if (page >= span_it->start_page &&
        page < span_it->start_page + span_it->pages) {
      // Cut at the huge-region boundary so the replacement span can cover
      // the faulting region whole (keeping it in-place promotable).
      const uint64_t boundary = page & ~(base::kPagesPerHuge - 1);
      if (boundary <= span_it->start_page) {
        it->second.erase(span_it);
      } else {
        span_it->pages = boundary - span_it->start_page;
      }
      ++stats_.ranges_reassigned;
      return;
    }
  }
}

void Ema::UncoveredWindow(int32_t vma_id, uint64_t page, uint64_t fallback_lo,
                          uint64_t fallback_hi, uint64_t* lo,
                          uint64_t* hi) const {
  *lo = fallback_lo;
  *hi = fallback_hi;
  auto it = spans_.find(vma_id);
  if (it == spans_.end()) {
    return;
  }
  for (const Span& span : it->second) {
    const uint64_t end = span.start_page + span.pages;
    SIM_CHECK(!(page >= span.start_page && page < end));
    if (end <= page && end > *lo) {
      *lo = end;
    }
    if (span.start_page > page && span.start_page < *hi) {
      *hi = span.start_page;
    }
  }
}

size_t Ema::span_count(int32_t vma_id) const {
  auto it = spans_.find(vma_id);
  return it == spans_.end() ? 0 : it->second.size();
}

}  // namespace gemini
