#include "gemini/promoter.h"

#include <algorithm>
#include <vector>

#include "base/types.h"

namespace gemini {

using base::kHugeOrder;
using base::kPagesPerHuge;

bool Promoter::TryPreallocatePromote(policy::KernelOps& kernel,
                                     uint64_t region) {
  mmu::PageTable& table = kernel.table();
  // All present pages must sit at `anchor + slot` for a huge-aligned
  // anchor; ContiguousAnchor sweeps the present bitmap a word at a time.
  const std::optional<uint64_t> maybe_anchor = table.ContiguousAnchor(region);
  if (!maybe_anchor.has_value()) {
    return false;
  }
  const uint64_t anchor = *maybe_anchor;
  // Allocate + map the missing slots at their targets.
  missing_.clear();
  table.MissingSlots(region, &missing_);
  for (uint32_t slot : missing_) {
    if (!kernel.buddy().IsFrameFree(anchor + slot)) {
      return false;  // a target frame is taken; booking lapsed
    }
  }
  for (uint32_t slot : missing_) {
    const bool ok = kernel.buddy().AllocateAt(anchor + slot, 1);
    (void)ok;  // guaranteed by the freeness check above
    kernel.frames().SetUse(anchor + slot, 1, kernel.vm_id(),
                           vmem::FrameUse::kAnonymous);
    table.MapBase((region << kHugeOrder) + slot, anchor + slot);
    // Zero-filling in kernel context: no per-page trap, roughly a page
    // copy's worth of work, in the background.
    kernel.ChargeOverhead(kernel.costs().copy_page);
  }
  kernel.PromoteInPlace(region);
  ++stats_.preallocated;
  return true;
}

void Promoter::RunGuestTick(policy::KernelOps& kernel,
                            const GeminiChannel& channel) {
  struct Candidate {
    uint64_t region;
    uint32_t present;
    uint64_t backing_region;  // guest-physical region of its first frame
    bool priority;
  };
  std::vector<Candidate> candidates;
  const mmu::PageTable& table = kernel.table();
  table.ForEachBaseRegion([&](uint64_t region, uint32_t present) {
    kernel.ChargeOverhead(kernel.costs().daemon_scan_region);
    const auto first = table.FirstPresent(region);
    if (!first.has_value()) {
      return;
    }
    const uint64_t backing = first->second >> kHugeOrder;
    // Priority: this guest region's pages live under a host huge page that
    // no guest huge page matches yet (a type-2 misaligned host page).
    const bool priority =
        channel.host_huge_misaligned.count(backing) != 0;
    candidates.push_back(Candidate{region, present, backing, priority});
  });
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.priority > b.priority;
                   });

  const bool prealloc_ok = kernel.Fmfi() <= options_.prealloc_max_fmfi;
  uint32_t budget = options_.promotions_per_tick;
  for (const Candidate& c : candidates) {
    if (budget == 0) {
      break;
    }
    if (kernel.table().CanPromoteInPlace(c.region)) {
      kernel.PromoteInPlace(c.region);
      ++stats_.in_place;
      --budget;
      continue;
    }
    // The FMFI gate is waived when the backing sits under a host huge page
    // (booked/bucketed placements): the host has already committed the
    // whole 2 MiB, so preallocating the guest side wastes nothing new.
    const bool backing_host_huge = channel.HostHuge(c.backing_region);
    if (c.present >= options_.prealloc_min_present &&
        (prealloc_ok || backing_host_huge) &&
        policy::HasFreeMemoryHeadroom(kernel) &&
        TryPreallocatePromote(kernel, c.region)) {
      --budget;
      continue;
    }
    if (!policy::HasFreeMemoryHeadroom(kernel)) {
      continue;
    }
    if (c.priority) {
      // Migrate towards the misaligned host huge page's own region first so
      // the promotion also lands on host-huge-backed frames.
      if (kernel.PromoteWithMigration(c.region,
                                      c.backing_region << kHugeOrder) ||
          kernel.PromoteWithMigration(c.region)) {
        ++stats_.priority_migrations;
        --budget;
      }
      continue;
    }
    if (c.present >= options_.normal_min_present &&
        kernel.PromoteWithMigration(c.region)) {
      ++stats_.normal_migrations;
      --budget;
    }
  }
}

void Promoter::RunHostTick(policy::KernelOps& kernel,
                           const GeminiChannel& channel) {
  mmu::PageTable& ept = kernel.table();
  uint32_t budget = options_.promotions_per_tick;

  // Priority: regions under misaligned *guest* huge pages.  Backing them
  // with a huge EPT leaf turns the guest's huge page well-aligned.
  for (const auto& [region, info] : channel.guest_huge_misaligned) {
    if (budget == 0) {
      break;
    }
    (void)info;
    if (ept.IsHugeMapped(region)) {
      continue;  // fixed since the scan
    }
    if (ept.CanPromoteInPlace(region)) {
      kernel.PromoteInPlace(region);
      ++stats_.in_place;
      --budget;
      continue;
    }
    if (!policy::HasFreeMemoryHeadroom(kernel)) {
      break;
    }
    // Type-1 (no base pages) degenerates inside PromoteWithMigration to a
    // direct huge backing; type-2 migrates the existing base pages.
    if (kernel.PromoteWithMigration(region)) {
      ++stats_.priority_migrations;
      --budget;
    }
  }

  // Ordinary pass with the leftover budget: the paper's design considers
  // the misaligned regions *first*, not exclusively — other dense, live
  // regions still get promoted afterwards (their huge host pages shorten
  // page walks even when misaligned).  In-place-promotable regions are
  // free; dense hot regions qualify for migration.
  std::vector<uint64_t> in_place;
  std::vector<uint64_t> dense;
  ept.ForEachBaseRegion([&](uint64_t region, uint32_t present) {
    kernel.ChargeOverhead(kernel.costs().daemon_scan_region);
    if (present == kPagesPerHuge && ept.CanPromoteInPlace(region)) {
      in_place.push_back(region);
    } else if (present >= options_.normal_min_present &&
               ept.AccessCount(region) > 0) {
      dense.push_back(region);
    }
  });
  for (uint64_t region : in_place) {
    if (budget == 0) {
      break;
    }
    kernel.PromoteInPlace(region);
    ++stats_.in_place;
    --budget;
  }
  for (uint64_t region : dense) {
    if (budget == 0 || !policy::HasFreeMemoryHeadroom(kernel)) {
      break;
    }
    if (kernel.buddy().BlocksAvailable(base::kHugeOrder) <=
        options_.ordinary_block_reserve) {
      break;  // keep the remaining blocks for alignment repairs
    }
    if (kernel.PromoteWithMigration(region)) {
      ++stats_.normal_migrations;
      --budget;
    } else {
      break;  // out of blocks this tick
    }
  }
  ept.DecayAccessCounts();
}

}  // namespace gemini
