#include "gemini/gemini_policy.h"

#include <algorithm>
#include <vector>

#include "base/check.h"

namespace gemini {

using base::kHugeOrder;
using base::kPagesPerHuge;
using policy::FaultDecision;
using policy::FaultInfo;
using policy::KernelOps;
using vmem::kInvalidFrame;

// --- GeminiGuestPolicy -----------------------------------------------------

GeminiGuestPolicy::GeminiGuestPolicy(GeminiRuntime* runtime,
                                     const GeminiOptions& options)
    : runtime_(runtime),
      options_(options),
      promoter_(options.promoter),
      controller_(options.initial_booking_timeout) {
  SIM_CHECK(runtime_ != nullptr);
}

GeminiGuestPolicy::~GeminiGuestPolicy() = default;

void GeminiGuestPolicy::EnsureComponents(KernelOps& kernel) {
  if (booking_ == nullptr) {
    booking_ = std::make_unique<BookingManager>(
        &kernel.buddy(), &kernel.frames(), kernel.vm_id(), kernel.tracer(),
        kernel.layer());
    bucket_ = std::make_unique<HugeBucket>(
        &kernel.buddy(), &kernel.frames(), kernel.vm_id(),
        options_.bucket_retention, kernel.tracer(), kernel.layer());
    contiguity_ = std::make_unique<vmem::ContiguityList>(&kernel.buddy());
  }
}

uint64_t GeminiGuestPolicy::PlacementTarget(KernelOps& kernel,
                                            const FaultInfo& info,
                                            bool& from_huge_backed) {
  from_huge_backed = false;
  if (!options_.enable_ema && !options_.enable_bucket) {
    return kInvalidFrame;
  }
  uint64_t target = ema_.TargetFor(info.vma_id, info.page);
  if (target != kInvalidFrame) {
    if (kernel.buddy().IsFrameFree(target)) {
      from_huge_backed = runtime_->channel().HostHuge(target >> kHugeOrder);
      return target;
    }
    // Target GPA unavailable (taken since placement): keep the consumed
    // prefix of the span and re-place the remainder (sub-VMA, Fig. 7).
    ema_.SplitSpanAt(info.vma_id, info.page);
  }

  const uint64_t vma_end = info.vma_start_page + info.vma_pages;
  uint64_t window_lo = 0;
  uint64_t window_hi = 0;
  ema_.UncoveredWindow(info.vma_id, info.page, info.vma_start_page, vma_end,
                       &window_lo, &window_hi);
  const uint64_t chunk_start =
      std::max(info.page & ~(kPagesPerHuge - 1), window_lo);
  SIM_CHECK(window_hi > chunk_start && info.page >= chunk_start);
  const uint64_t remaining = window_hi - chunk_start;

  uint64_t frame = kInvalidFrame;
  uint64_t span_pages = 0;

  // 1) A booked region: guest-physical space under a misaligned host huge
  //    page, reserved exactly for this moment.
  if (options_.enable_ema) {
    frame = booking_->AssignAny();
    if (frame != kInvalidFrame) {
      span_pages = std::min<uint64_t>(remaining, kPagesPerHuge);
      from_huge_backed = true;
    }
  }
  // 2) A bucketed region: freed well-aligned space still backed huge.
  if (frame == kInvalidFrame && options_.enable_bucket) {
    frame = bucket_->TakeAny();
    if (frame != kInvalidFrame) {
      span_pages = std::min<uint64_t>(remaining, kPagesPerHuge);
      from_huge_backed = runtime_->channel().HostHuge(frame >> kHugeOrder);
    }
  }
  // 3) A contiguous huge-aligned extent fitting the whole remaining VMA.
  //    Placement searches are throttled after a failure: re-trying on every
  //    fault while the free map is essentially unchanged is wasted work.
  const bool search_worthwhile =
      options_.enable_ema &&
      kernel.buddy().mutation_epoch() >= placement_retry_epoch_;
  if (frame == kInvalidFrame && search_worthwhile) {
    contiguity_->Refresh();
    frame = contiguity_->FindFit(remaining, /*huge_aligned=*/true);
    if (frame != kInvalidFrame) {
      span_pages = remaining;
    }
    // 4) Sub-VMA (Fig. 7): no extent fits the whole VMA; take the largest
    //    usable huge-aligned piece and cover what we can — one region at
    //    minimum — leaving the rest for later placements.
    if (frame == kInvalidFrame) {
      const vmem::ContiguityList::Extent ext = contiguity_->LargestExtent();
      const uint64_t aligned =
          (ext.frame + kPagesPerHuge - 1) & ~(kPagesPerHuge - 1);
      if (ext.count > 0 && aligned + kPagesPerHuge <= ext.frame + ext.count) {
        const uint64_t avail = ext.frame + ext.count - aligned;
        frame = aligned;
        span_pages = std::min<uint64_t>(remaining, avail);
        // The taken extent is gone from the list view only after the next
        // Refresh; advance the next-fit cursor past it meanwhile.
      } else if (ext.count >= 64) {
        // 5) No aligned space at all: still place contiguously in the
        //    largest extent.  Contiguity for its own sake pays later —
        //    when such a region is eventually migrated, the freed run is
        //    contiguous and re-merges into allocatable blocks ("fitting
        //    the entire VMA can increase memory contiguity and reduce
        //    memory fragmentation", paper §5).
        frame = ext.frame;
        span_pages = std::min<uint64_t>(remaining, ext.count);
      }
    }
    if (frame == kInvalidFrame) {
      // Exponentially backed-off retry: wait for the free map to change
      // materially before searching again.
      placement_retry_epoch_ = kernel.buddy().mutation_epoch() + 512;
    }
  }
  if (frame == kInvalidFrame) {
    return kInvalidFrame;  // no contiguity anywhere; default placement
  }
  const int64_t offset =
      static_cast<int64_t>(chunk_start) - static_cast<int64_t>(frame);
  ema_.AddSpan(info.vma_id, chunk_start, span_pages, offset);
  return static_cast<uint64_t>(static_cast<int64_t>(info.page) - offset);
}

FaultDecision GeminiGuestPolicy::OnFault(KernelOps& kernel,
                                         const FaultInfo& info) {
  EnsureComponents(kernel);
  FaultDecision decision;
  bool from_huge_backed = false;
  const uint64_t target = PlacementTarget(kernel, info, from_huge_backed);
  if (target == kInvalidFrame) {
    return decision;
  }
  decision.target_frame = target;
  // Huge pages are formed asynchronously (in-place promotion /
  // preallocation by the promoter) rather than at fault time: synchronous
  // 2 MiB zeroing on the request path is exactly the THP latency spike the
  // paper's design avoids.  `from_huge_backed` regions are preferred by
  // the promoter's preallocation pass.
  (void)from_huge_backed;
  return decision;
}

void GeminiGuestPolicy::OnDaemonTick(KernelOps& kernel) {
  EnsureComponents(kernel);
  const base::Cycles now = kernel.Now();
  GeminiChannel& channel = runtime_->channel();

  // Algorithm 1: one measurement period ends, adjust the booking timeout.
  if (now >= next_controller_period_) {
    const base::Cycles before = controller_.effective_timeout();
    const base::Cycles after =
        controller_.OnPeriod(kernel.DrainTlbMisses(), kernel.Fmfi());
    next_controller_period_ = now + options_.controller_period;
    if (after != before && kernel.tracer() != nullptr) {
      kernel.tracer()->Emit(trace::EventKind::kTimeoutChange, kernel.layer(),
                            kernel.vm_id(), after, before);
    }
  }

  booking_->ExpireTimeouts(now);

  if (!policy::HasFreeMemoryHeadroom(kernel)) {
    // Memory pressure: reservations and retained regions go back first.
    booking_->ReleaseAll();
    bucket_->ReleaseSome(bucket_->held_count() / 2 + 1);
  } else if (options_.enable_ema) {
    // Book the guest-physical regions of type-1 misaligned host huge
    // pages: nothing is allocated there yet, so reserving them keeps the
    // future fix migration-free.
    uint32_t quota = options_.bookings_per_tick;
    for (const auto& [region, status] : channel.host_huge_misaligned) {
      if (quota == 0) {
        break;
      }
      if (status.type2) {
        continue;
      }
      const uint64_t frame = region << kHugeOrder;
      kernel.ChargeOverhead(kernel.costs().daemon_scan_region);
      if (booking_->IsBooked(frame)) {
        continue;
      }
      if (booking_->Book(frame, now, controller_.effective_timeout())) {
        --quota;
      }
    }
  }

  if (options_.enable_bucket) {
    bucket_->ExpireRetention(now);
  }

  if (options_.enable_promoter) {
    promoter_.RunGuestTick(kernel, channel);
  }
}

bool GeminiGuestPolicy::OnFreeRegion(KernelOps& kernel, uint64_t region,
                                     uint64_t frame, bool contiguous) {
  (void)region;
  if (!options_.enable_bucket || !contiguous ||
      frame % kPagesPerHuge != 0) {
    return false;
  }
  EnsureComponents(kernel);
  // Retain only regions whose host backing is huge: those are the
  // well-aligned (or instantly alignable) ones worth keeping whole.
  if (!runtime_->channel().HostHuge(frame >> kHugeOrder)) {
    return false;
  }
  bucket_->Deposit(frame, kernel.Now());
  return true;
}

void GeminiGuestPolicy::OnVmaDestroy(int32_t vma_id) {
  ema_.DropVma(vma_id);
}

void GeminiGuestPolicy::OnMemoryPressure(policy::KernelOps& kernel) {
  EnsureComponents(kernel);
  booking_->ReleaseAll();
  bucket_->ReleaseAll();
}

std::vector<uint64_t> GeminiGuestPolicy::RankHugeDemotionVictims(
    policy::KernelOps& kernel, size_t max_victims) {
  // Misaligned first (cheap to give up), then cold well-aligned ones;
  // never a hot well-aligned page while alternatives exist.
  struct Victim {
    bool aligned;
    uint64_t heat;
    uint64_t region;
  };
  std::vector<Victim> victims;
  kernel.table().ForEachHuge([&](uint64_t region, uint64_t frame) {
    victims.push_back(Victim{
        runtime_->channel().HostHuge(frame >> kHugeOrder),
        kernel.table().AccessCount(region), region});
  });
  std::sort(victims.begin(), victims.end(),
            [](const Victim& a, const Victim& b) {
              if (a.aligned != b.aligned) {
                return !a.aligned;  // misaligned first
              }
              return a.heat < b.heat;  // then coldest
            });
  std::vector<uint64_t> out;
  for (const Victim& v : victims) {
    if (out.size() >= max_victims) {
      break;
    }
    out.push_back(v.region);
  }
  return out;
}

policy::PolicyTelemetry GeminiGuestPolicy::Telemetry() const {
  policy::PolicyTelemetry t;
  if (booking_ != nullptr) {
    t.bookings_started = booking_->started();
    t.bookings_assigned = booking_->assigned();
    t.bookings_expired = booking_->expired();
    t.bookings_active = booking_->booked_count();
  }
  if (bucket_ != nullptr) {
    t.bucket_deposits = bucket_->deposits();
    t.bucket_hits = bucket_->reuses();
    t.bucket_evictions = bucket_->evictions();
    t.bucket_held = bucket_->held_count();
  }
  t.booking_timeout = controller_.effective_timeout();
  return t;
}

// --- GeminiHostPolicy --------------------------------------------------------

GeminiHostPolicy::GeminiHostPolicy(GeminiRuntime* runtime,
                                   const GeminiOptions& options)
    : runtime_(runtime),
      options_(options),
      promoter_(options.promoter),
      controller_(options.initial_booking_timeout) {
  SIM_CHECK(runtime_ != nullptr);
}

GeminiHostPolicy::~GeminiHostPolicy() = default;

void GeminiHostPolicy::EnsureComponents(KernelOps& kernel) {
  if (booking_ == nullptr) {
    booking_ = std::make_unique<BookingManager>(
        &kernel.buddy(), &kernel.frames(), kernel.vm_id(), kernel.tracer(),
        kernel.layer());
    contiguity_ = std::make_unique<vmem::ContiguityList>(&kernel.buddy());
  }
}

FaultDecision GeminiHostPolicy::OnFault(KernelOps& kernel,
                                        const FaultInfo& info) {
  EnsureComponents(kernel);
  FaultDecision decision;
  if (!options_.enable_ema) {
    return decision;
  }
  GeminiChannel& channel = runtime_->channel();
  const uint64_t region = info.region;

  uint64_t anchor = kInvalidFrame;
  auto anchor_it = anchors_.find(region);
  if (anchor_it != anchors_.end()) {
    anchor = anchor_it->second;
  }
  if (anchor == kInvalidFrame) {
    // A block booked for this region (the region is the target of a
    // misaligned guest huge page)?
    auto booked_it = booked_for_.find(region);
    if (booked_it != booked_for_.end() &&
        booking_->IsBooked(booked_it->second)) {
      anchor = booked_it->second;
      booking_->Assign(anchor);  // release for the targeted allocation
      booked_for_.erase(booked_it);
      anchors_[region] = anchor;
    }
  }
  // Anchoring spends scarce huge-aligned host contiguity, so it is strictly
  // reactive: only regions the scanner has identified as targets of guest
  // huge pages get aligned placement.  Everything else (VM boot, page
  // cache, not-yet-promoted data) takes default placement and leaves the
  // aligned extents for the regions where they buy alignment — the paper's
  // "preferentially ... from these regions and less from other regions".
  const bool anchor_worthy = channel.GuestHugeTarget(region);
  if (anchor == kInvalidFrame && anchor_worthy &&
      kernel.buddy().mutation_epoch() >= placement_retry_epoch_) {
    contiguity_->Refresh();
    const uint64_t fit =
        contiguity_->FindFit(kPagesPerHuge, /*huge_aligned=*/true);
    if (fit != kInvalidFrame) {
      anchor = fit;
      anchors_[region] = fit;
    } else {
      placement_retry_epoch_ = kernel.buddy().mutation_epoch() + 512;
    }
  }
  if (anchor == kInvalidFrame) {
    return decision;
  }

  const uint64_t slot = info.page & (kPagesPerHuge - 1);
  const uint64_t target = anchor + slot;
  if (!kernel.buddy().IsFrameFree(target)) {
    anchors_.erase(region);  // stale anchor; re-place on the next fault
    return decision;
  }
  decision.target_frame = target;
  // Misaligned guest huge page over an empty region (type-1): back the
  // whole region with one huge host page right now.
  if (channel.GuestHugeTarget(region) &&
      kernel.buddy().IsRangeFree(anchor, kPagesPerHuge)) {
    decision.try_huge = true;
    decision.target_frame = anchor;
  }
  return decision;
}

void GeminiHostPolicy::OnDaemonTick(KernelOps& kernel) {
  EnsureComponents(kernel);
  const base::Cycles now = kernel.Now();
  GeminiChannel& channel = runtime_->channel();

  if (now >= next_controller_period_) {
    const base::Cycles before = controller_.effective_timeout();
    const base::Cycles after =
        controller_.OnPeriod(kernel.DrainTlbMisses(), kernel.Fmfi());
    next_controller_period_ = now + options_.controller_period;
    if (after != before && kernel.tracer() != nullptr) {
      kernel.tracer()->Emit(trace::EventKind::kTimeoutChange, kernel.layer(),
                            kernel.vm_id(), after, before);
    }
  }

  booking_->ExpireTimeouts(now);
  for (auto it = booked_for_.begin(); it != booked_for_.end();) {
    if (!booking_->IsBooked(it->second)) {
      it = booked_for_.erase(it);  // expired underneath us
    } else {
      ++it;
    }
  }

  if (!policy::HasFreeMemoryHeadroom(kernel)) {
    booking_->ReleaseAll();
    booked_for_.clear();
  } else if (options_.enable_ema) {
    // Book host blocks for type-1 misaligned guest huge pages so the next
    // EPT fault can back them huge, in place.
    uint32_t quota = options_.bookings_per_tick;
    contiguity_->Refresh();
    for (const auto& [region, status] : channel.guest_huge_misaligned) {
      if (quota == 0) {
        break;
      }
      kernel.ChargeOverhead(kernel.costs().daemon_scan_region);
      if (status.type2 || booked_for_.count(region) != 0) {
        continue;
      }
      const uint64_t frame =
          contiguity_->FindFit(kPagesPerHuge, /*huge_aligned=*/true);
      if (frame == kInvalidFrame) {
        break;
      }
      if (booking_->Book(frame, now, controller_.effective_timeout())) {
        booked_for_[region] = frame;
        --quota;
      }
    }
  }

  if (options_.enable_promoter) {
    promoter_.RunHostTick(kernel, channel);
  }
}

policy::PolicyTelemetry GeminiHostPolicy::Telemetry() const {
  policy::PolicyTelemetry t;
  if (booking_ != nullptr) {
    t.bookings_started = booking_->started();
    t.bookings_assigned = booking_->assigned();
    t.bookings_expired = booking_->expired();
    t.bookings_active = booking_->booked_count();
  }
  t.booking_timeout = controller_.effective_timeout();
  return t;
}

// --- GeminiRuntime -----------------------------------------------------------

void GeminiRuntime::Attach(const mmu::PageTable* guest_table,
                           const mmu::PageTable* ept,
                           const vmem::BuddyAllocator* guest_buddy) {
  channel_.guest_table = guest_table;
  channel_.ept = ept;
  guest_buddy_ = guest_buddy;
}

void GeminiRuntime::Run(base::Cycles now) {
  SIM_CHECK(channel_.guest_table != nullptr && channel_.ept != nullptr &&
            guest_buddy_ != nullptr);
  mhps_.ScanVm(*channel_.guest_table, *channel_.ept, *guest_buddy_, now,
               channel_);
}

osim::VirtualMachine& InstallGeminiVm(osim::Machine& machine,
                                      uint64_t gfn_count,
                                      const GeminiOptions& options,
                                      base::Cycles scan_period) {
  auto runtime = std::make_unique<GeminiRuntime>();
  GeminiRuntime* rt = runtime.get();
  osim::VirtualMachine& vm = machine.AddVm(
      gfn_count, std::make_unique<GeminiGuestPolicy>(rt, options),
      std::make_unique<GeminiHostPolicy>(rt, options));
  rt->Attach(&vm.guest().table(), &vm.host_slice().table(),
             &vm.guest().buddy());
  machine.AddTask(std::move(runtime), scan_period);
  return vm;
}

}  // namespace gemini
