// Huge bucket (paper §5).
//
// When a workload frees memory that forms a well-aligned huge page, the
// guest-physical region is still backed by a huge EPT leaf — the host keeps
// the VM's memory (§6.3: "memory allocated to the VM will not return to the
// host OS immediately").  If the region went back to the general buddy
// pool, small later allocations would splinter it and destroy the
// alignment.  The huge bucket instead retains such regions whole for a
// retention period and hands them out, whole, to later huge-page-sized
// demands — which is why reused VMs regain high well-aligned rates almost
// immediately (Table 4).  Under memory pressure or heavy fragmentation the
// bucket returns regions to the OS.
#ifndef SRC_GEMINI_HUGE_BUCKET_H_
#define SRC_GEMINI_HUGE_BUCKET_H_

#include <cstdint>
#include <map>

#include "base/types.h"
#include "trace/tracer.h"
#include "vmem/buddy_allocator.h"
#include "vmem/frame_space.h"

namespace gemini {

class HugeBucket {
 public:
  HugeBucket(vmem::BuddyAllocator* buddy, vmem::FrameSpace* frames,
             int32_t owner, base::Cycles retention,
             trace::Tracer* tracer = nullptr,
             base::Layer layer = base::Layer::kGuest)
      : buddy_(buddy),
        frames_(frames),
        owner_(owner),
        retention_(retention),
        tracer_(tracer),
        layer_(layer) {}
  ~HugeBucket();

  // Takes ownership of a freed, physically whole region (512 frames at
  // huge-aligned `frame`, currently *allocated*, i.e. not yet returned to
  // the buddy).
  void Deposit(uint64_t frame, base::Cycles now);

  // Pops one retained region for reuse, releasing its frames back to the
  // buddy so the caller's targeted allocation succeeds.  Returns the first
  // frame, or kInvalidFrame if the bucket is empty.
  uint64_t TakeAny();

  // Returns expired regions to the buddy.  Returns how many were released.
  uint64_t ExpireRetention(base::Cycles now);

  // Returns up to `count` regions to the buddy (memory pressure / severe
  // fragmentation).  Returns how many were released.
  uint64_t ReleaseSome(uint64_t count);
  void ReleaseAll();

  size_t held_count() const { return held_.size(); }
  uint64_t deposits() const { return deposits_; }
  uint64_t reuses() const { return reuses_; }
  uint64_t evictions() const { return evictions_; }

 private:
  void Release(uint64_t frame);

  vmem::BuddyAllocator* buddy_;
  vmem::FrameSpace* frames_;
  int32_t owner_;
  base::Cycles retention_;
  trace::Tracer* tracer_;
  base::Layer layer_;
  std::map<uint64_t, base::Cycles> held_;  // first frame -> deadline
  uint64_t deposits_ = 0;
  uint64_t reuses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace gemini

#endif  // SRC_GEMINI_HUGE_BUCKET_H_
