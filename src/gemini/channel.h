// Cross-layer information channel (paper §4).
//
// The host-side misaligned huge page scanner (MHPS) publishes, per VM, the
// guest-physical regions where one layer has formed a huge page that the
// other layer does not match.  The guest- and host-layer Gemini policies
// consume these lists to drive booking, placement, and prioritized
// promotion.  In the Linux/KVM prototype this information travels over a
// paravirtual channel as (VM id, GPA, layer) labels; in the simulator the
// channel is a shared structure owned by the GeminiRuntime, carrying the
// identical information.
#ifndef SRC_GEMINI_CHANNEL_H_
#define SRC_GEMINI_CHANNEL_H_

#include <cstdint>
#include <map>

#include "base/types.h"
#include "mmu/page_table.h"

namespace gemini {

// State of one misaligned huge page, keyed by its guest-physical region.
struct MisalignedRegion {
  // Type-1: the other layer has nothing mapped/allocated in the region yet,
  // so it can be fixed by placement alone.  Type-2: base pages exist and
  // promotion (possibly with migration) is required.
  bool type2 = false;
  base::Cycles discovered = 0;
};

struct GeminiChannel {
  // Regions where the HOST has a huge EPT leaf but the guest has not formed
  // a matching huge page.  Consumed by the guest-layer policy.
  std::map<uint64_t, MisalignedRegion> host_huge_misaligned;
  // Regions that are the target of a huge GUEST page but are not backed by
  // a huge EPT leaf.  Consumed by the host-layer policy.
  std::map<uint64_t, MisalignedRegion> guest_huge_misaligned;
  // Regions huge in both layers (well-aligned), for the bucket and audits.
  uint64_t well_aligned_count = 0;

  // Read-only views of both tables, giving each side the alignment facts
  // the scanner labels would carry.
  const mmu::PageTable* guest_table = nullptr;
  const mmu::PageTable* ept = nullptr;

  // True if the guest-physical region is currently backed by a huge EPT
  // leaf (the fact the guest-layer policy cares about for the bucket and
  // placement preference).
  bool HostHuge(uint64_t gpa_region) const {
    return ept != nullptr && ept->IsHugeMapped(gpa_region);
  }
  // True if some guest process maps this guest-physical region with a huge
  // page (the fact the host-layer policy cares about).  Maintained by the
  // scanner (reverse lookups are scan-time work, as in the prototype).
  bool GuestHugeTarget(uint64_t gpa_region) const {
    return guest_huge_targets.count(gpa_region) != 0;
  }

  // All regions that are targets of guest huge pages, refreshed per scan.
  std::map<uint64_t, uint64_t> guest_huge_targets;  // gpa region -> gva region
};

}  // namespace gemini

#endif  // SRC_GEMINI_CHANNEL_H_
