#include "gemini/huge_booking.h"

#include "base/check.h"

namespace gemini {

using base::kPagesPerHuge;

base::Cycles BookingTimeoutController::OnPeriod(uint64_t tlb_misses,
                                                double fmfi) {
  switch (phase_) {
    case Phase::kBaseline:
      baseline_misses_ = tlb_misses;
      baseline_fmfi_ = fmfi;
      have_baseline_ = true;
      // Start probing upward: T_e <- T_d * 1.1 for the next period.
      phase_ = Phase::kProbeUp;
      effective_ = static_cast<base::Cycles>(desired_ * 1.1);
      break;
    case Phase::kProbeUp:
      if (ProbeAccepted(tlb_misses, fmfi)) {
        // Keep the larger timeout and restart the loop (continue).
        desired_ *= 1.1;
        phase_ = Phase::kBaseline;
        effective_ = static_cast<base::Cycles>(desired_);
      } else {
        // Re-collect a baseline at T_d before probing down.
        phase_ = Phase::kRebaseline;
        effective_ = static_cast<base::Cycles>(desired_);
      }
      break;
    case Phase::kRebaseline:
      baseline_misses_ = tlb_misses;
      baseline_fmfi_ = fmfi;
      phase_ = Phase::kProbeDown;
      effective_ = static_cast<base::Cycles>(desired_ * 0.9);
      break;
    case Phase::kProbeDown:
      if (ProbeAccepted(tlb_misses, fmfi)) {
        desired_ *= 0.9;
      }
      phase_ = Phase::kBaseline;
      effective_ = static_cast<base::Cycles>(desired_);
      break;
  }
  return effective_;
}

BookingManager::~BookingManager() { ReleaseAll(); }

bool BookingManager::Book(uint64_t frame, base::Cycles now,
                          base::Cycles timeout) {
  SIM_CHECK(frame % kPagesPerHuge == 0);
  if (bookings_.count(frame) != 0) {
    return true;  // already booked; keep the earlier deadline
  }
  if (!buddy_->AllocateAt(frame, kPagesPerHuge)) {
    return false;
  }
  frames_->SetUse(frame, kPagesPerHuge, owner_, vmem::FrameUse::kBooked);
  bookings_.emplace(frame, now + timeout);
  ++started_;
  if (tracer_ != nullptr) {
    tracer_->Emit(trace::EventKind::kBookingBook, layer_, owner_, frame,
                  now + timeout);
  }
  return true;
}

bool BookingManager::Assign(uint64_t frame) {
  auto it = bookings_.find(frame);
  if (it == bookings_.end()) {
    return false;
  }
  Release(it->first);
  bookings_.erase(it);
  ++assigned_;
  if (tracer_ != nullptr) {
    tracer_->Emit(trace::EventKind::kBookingAssign, layer_, owner_, frame);
  }
  return true;
}

uint64_t BookingManager::AssignAny() {
  if (bookings_.empty()) {
    return vmem::kInvalidFrame;
  }
  auto it = bookings_.begin();
  const uint64_t frame = it->first;
  Release(frame);
  bookings_.erase(it);
  ++assigned_;
  if (tracer_ != nullptr) {
    tracer_->Emit(trace::EventKind::kBookingAssign, layer_, owner_, frame);
  }
  return frame;
}

uint64_t BookingManager::ExpireTimeouts(base::Cycles now) {
  uint64_t expired = 0;
  for (auto it = bookings_.begin(); it != bookings_.end();) {
    if (it->second <= now) {
      if (tracer_ != nullptr) {
        tracer_->Emit(trace::EventKind::kBookingExpire, layer_, owner_,
                      it->first);
      }
      Release(it->first);
      it = bookings_.erase(it);
      ++expired;
    } else {
      ++it;
    }
  }
  expired_ += expired;
  return expired;
}

void BookingManager::ReleaseAll() {
  for (const auto& [frame, deadline] : bookings_) {
    (void)deadline;
    Release(frame);
  }
  bookings_.clear();
}

void BookingManager::Release(uint64_t frame) {
  frames_->ClearUse(frame, kPagesPerHuge);
  buddy_->Free(frame, kPagesPerHuge);
}

}  // namespace gemini
