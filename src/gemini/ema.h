// Enhanced Memory Allocator (EMA) state: offset descriptors (paper §4.2,
// §5, Figures 5-7).
//
// An offset descriptor records, for a span of a VMA, the delta between
// page-space and frame-space so that every future fault in the span can be
// steered to `frame = page - offset`.  Placing the anchor huge-aligned
// makes GuestOffset ≡ 0 (mod 512): base pages then land contiguous and
// huge-aligned, and the region can later be promoted *in place* — no
// migration.  That is the whole trick.
//
// Descriptors are kept per VMA in a self-organizing (move-to-front) linear
// list, as the paper does (citing Hester & Hirschberg's self-organizing
// linear search) because one VMA may accumulate many sub-VMA descriptors
// and faults are highly local.  Sub-VMA descriptors (Figure 7) are just
// additional spans with their own offsets, created when no free extent
// fits the remaining VMA or when a target frame turned out to be taken.
#ifndef SRC_GEMINI_EMA_H_
#define SRC_GEMINI_EMA_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "vmem/frame_space.h"

namespace gemini {

struct EmaStats {
  uint64_t descriptor_hits = 0;
  uint64_t descriptor_misses = 0;
  uint64_t descriptors_created = 0;
  uint64_t ranges_reassigned = 0;
};

class Ema {
 public:
  struct Span {
    uint64_t start_page;
    uint64_t pages;
    int64_t offset;  // target frame = page - offset
  };

  // Target frame for `page` in `vma_id`, or kInvalidFrame if no descriptor
  // covers it.  Moves the matched descriptor to the front of its list.
  uint64_t TargetFor(int32_t vma_id, uint64_t page);

  // Registers a descriptor mapping [start_page, start_page + pages) with
  // the given offset.  Spans must not overlap existing ones (the caller
  // removes a span before re-placing it).
  void AddSpan(int32_t vma_id, uint64_t start_page, uint64_t pages,
               int64_t offset);

  // Removes the span covering `page` (sub-VMA re-placement after a target
  // collision).  No-op if none covers it.
  void RemoveSpanAt(int32_t vma_id, uint64_t page);

  // Shrinks the span covering `page` so it ends at the huge-region boundary
  // at or below `page` (erasing it if that empties it), keeping the prefix
  // whose targets were already consumed.  Creates no new span (the caller
  // adds the replacement).  No-op if none covers `page`.
  void SplitSpanAt(int32_t vma_id, uint64_t page);

  // The maximal uncovered window [lo, hi) around `page` within
  // [fallback_lo, fallback_hi).  Requires that no span covers `page`.
  void UncoveredWindow(int32_t vma_id, uint64_t page, uint64_t fallback_lo,
                       uint64_t fallback_hi, uint64_t* lo, uint64_t* hi) const;

  void DropVma(int32_t vma_id) { spans_.erase(vma_id); }

  const EmaStats& stats() const { return stats_; }
  size_t span_count(int32_t vma_id) const;

 private:
  std::unordered_map<int32_t, std::list<Span>> spans_;
  EmaStats stats_;
};

}  // namespace gemini

#endif  // SRC_GEMINI_EMA_H_
