#include "gemini/mhps.h"

#include <map>

#include "base/types.h"

namespace gemini {

using base::kHugeOrder;
using base::kPagesPerHuge;

void Mhps::ScanVm(const mmu::PageTable& guest_table, const mmu::PageTable& ept,
                  const vmem::BuddyAllocator& guest_buddy, base::Cycles now,
                  GeminiChannel& channel) {
  ++stats_.scans;

  // Pass 1: label guest huge pages by their guest-physical target region.
  std::map<uint64_t, uint64_t> guest_huge_targets;  // gpa region -> gva region
  guest_table.ForEachHuge([&](uint64_t gva_region, uint64_t gfn) {
    guest_huge_targets[gfn >> kHugeOrder] = gva_region;
    ++stats_.guest_huge_seen;
  });

  // Pass 2: walk EPT huge leaves; compare against the guest labels.
  std::map<uint64_t, MisalignedRegion> host_huge_misaligned;
  uint64_t aligned = 0;
  ept.ForEachHuge([&](uint64_t gpa_region, uint64_t pfn) {
    (void)pfn;
    ++stats_.host_huge_seen;
    if (guest_huge_targets.count(gpa_region) != 0) {
      ++aligned;
      return;
    }
    MisalignedRegion m;
    // Type-1 iff the guest has not allocated any frame of the region (the
    // whole guest-physical range is still free in the guest buddy); then a
    // well-placed future allocation fixes it with no migration.
    m.type2 = !guest_buddy.IsRangeFree(gpa_region << kHugeOrder,
                                       kPagesPerHuge);
    auto prev = channel.host_huge_misaligned.find(gpa_region);
    m.discovered = prev != channel.host_huge_misaligned.end()
                       ? prev->second.discovered
                       : now;
    host_huge_misaligned.emplace(gpa_region, m);
  });

  // Pass 3: guest huge pages not backed by huge EPT leaves.
  std::map<uint64_t, MisalignedRegion> guest_huge_misaligned;
  for (const auto& [gpa_region, gva_region] : guest_huge_targets) {
    (void)gva_region;
    if (ept.IsHugeMapped(gpa_region)) {
      continue;
    }
    MisalignedRegion m;
    m.type2 = ept.PresentBasePages(gpa_region) > 0;
    auto prev = channel.guest_huge_misaligned.find(gpa_region);
    m.discovered = prev != channel.guest_huge_misaligned.end()
                       ? prev->second.discovered
                       : now;
    guest_huge_misaligned.emplace(gpa_region, m);
  }

  stats_.well_aligned += aligned;
  stats_.host_huge_misaligned += host_huge_misaligned.size();
  stats_.guest_huge_misaligned += guest_huge_misaligned.size();

  channel.host_huge_misaligned = std::move(host_huge_misaligned);
  channel.guest_huge_misaligned = std::move(guest_huge_misaligned);
  channel.guest_huge_targets = std::move(guest_huge_targets);
  channel.well_aligned_count = aligned;
}

}  // namespace gemini
