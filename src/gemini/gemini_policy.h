// Gemini policy layer: the guest-side and host-side HugePagePolicy
// implementations plus the per-VM runtime (scanner task + channel) that
// couples them (paper §3-§5).
//
// Wiring (one per VM):
//
//   GeminiRuntime (host-side PeriodicTask)
//     owns: GeminiChannel, Mhps
//     Run(): scans guest table + EPT, refreshes misalignment lists
//        |                          |
//   GeminiGuestPolicy          GeminiHostPolicy
//     EMA spans (per VMA)        EMA anchors (per GPA region)
//     BookingManager (GFNs)      BookingManager (HPA blocks)
//     HugeBucket                 Promoter (EPT)
//     Promoter (process table)
//     BookingTimeoutController   BookingTimeoutController
//
// The ablation switches in GeminiOptions (EMA/booking, bucket, promoter)
// drive the Figure 16 performance-breakdown experiment.
#ifndef SRC_GEMINI_GEMINI_POLICY_H_
#define SRC_GEMINI_GEMINI_POLICY_H_

#include <memory>
#include <unordered_map>

#include "gemini/channel.h"
#include "gemini/ema.h"
#include "gemini/huge_booking.h"
#include "gemini/huge_bucket.h"
#include "gemini/mhps.h"
#include "gemini/promoter.h"
#include "os/machine.h"
#include "policy/policy.h"
#include "vmem/contiguity_list.h"

namespace gemini {

struct GeminiOptions {
  PromoterOptions promoter;
  // Booking timeout start value and the measurement period P of
  // Algorithm 1.
  base::Cycles initial_booking_timeout = 40'000'000;
  base::Cycles controller_period = 20'000'000;
  // How long the huge bucket retains freed well-aligned regions.
  base::Cycles bucket_retention = 2'000'000'000;
  // Bookings initiated per daemon tick (scan batching).
  uint32_t bookings_per_tick = 64;
  // Ablation switches (Figure 16 breakdown).
  bool enable_ema = true;      // EMA placement + booking ("EMA/HB")
  bool enable_bucket = true;   // huge bucket
  bool enable_promoter = true; // MHPP background promotion
};

class GeminiRuntime;  // below

// Guest-layer policy: EMA placement of guest-physical frames, booking of
// gfn regions under misaligned host huge pages, the huge bucket, and the
// guest-side promoter.
class GeminiGuestPolicy final : public policy::HugePagePolicy {
 public:
  GeminiGuestPolicy(GeminiRuntime* runtime, const GeminiOptions& options);
  ~GeminiGuestPolicy() override;

  std::string_view name() const override { return "gemini-guest"; }
  policy::FaultDecision OnFault(policy::KernelOps& kernel,
                                const policy::FaultInfo& info) override;
  void OnDaemonTick(policy::KernelOps& kernel) override;
  bool OnFreeRegion(policy::KernelOps& kernel, uint64_t region, uint64_t frame,
                    bool contiguous) override;
  void OnVmaDestroy(int32_t vma_id) override;
  void OnMemoryPressure(policy::KernelOps& kernel) override;
  // Paper §8: under pressure, only misaligned and infrequently used huge
  // pages may be demoted; well-aligned hot ones survive.
  std::vector<uint64_t> RankHugeDemotionVictims(policy::KernelOps& kernel,
                                                size_t max_victims) override;
  policy::PolicyTelemetry Telemetry() const override;

  const Ema& ema() const { return ema_; }
  const Promoter& promoter() const { return promoter_; }
  const HugeBucket* bucket() const { return bucket_.get(); }
  const BookingManager* booking() const { return booking_.get(); }
  const BookingTimeoutController& controller() const { return controller_; }

 private:
  void EnsureComponents(policy::KernelOps& kernel);
  // Finds (or creates) the EMA target for a fault; sets `from_huge_backed`
  // when the placement region is already backed by a host huge page (a
  // booked or bucketed block), which makes an eager huge allocation safe
  // and immediately well-aligned.
  uint64_t PlacementTarget(policy::KernelOps& kernel,
                           const policy::FaultInfo& info,
                           bool& from_huge_backed);

  GeminiRuntime* runtime_;
  GeminiOptions options_;
  Ema ema_;
  Promoter promoter_;
  BookingTimeoutController controller_;
  std::unique_ptr<BookingManager> booking_;
  std::unique_ptr<HugeBucket> bucket_;
  std::unique_ptr<vmem::ContiguityList> contiguity_;
  base::Cycles next_controller_period_ = 0;
  uint64_t placement_retry_epoch_ = 0;  // backoff after placement failure
};

// Host-layer policy: EMA anchoring of EPT regions to huge-aligned host
// blocks, booking of host blocks for misaligned guest huge pages, and the
// host-side promoter.
class GeminiHostPolicy final : public policy::HugePagePolicy {
 public:
  GeminiHostPolicy(GeminiRuntime* runtime, const GeminiOptions& options);
  ~GeminiHostPolicy() override;

  std::string_view name() const override { return "gemini-host"; }
  policy::FaultDecision OnFault(policy::KernelOps& kernel,
                                const policy::FaultInfo& info) override;
  void OnDaemonTick(policy::KernelOps& kernel) override;
  policy::PolicyTelemetry Telemetry() const override;

  const Promoter& promoter() const { return promoter_; }
  const BookingManager* booking() const { return booking_.get(); }

 private:
  void EnsureComponents(policy::KernelOps& kernel);

  GeminiRuntime* runtime_;
  GeminiOptions options_;
  Promoter promoter_;
  BookingTimeoutController controller_;
  std::unique_ptr<BookingManager> booking_;
  std::unique_ptr<vmem::ContiguityList> contiguity_;
  // EMA anchors: guest-physical region -> first host frame backing it.
  std::unordered_map<uint64_t, uint64_t> anchors_;
  // Host blocks booked for specific guest-huge-misaligned regions.
  std::unordered_map<uint64_t, uint64_t> booked_for_;
  base::Cycles next_controller_period_ = 0;
  uint64_t placement_retry_epoch_ = 0;  // backoff after placement failure
};

// Per-VM runtime: owns the channel and the scanner, registered as a
// periodic machine task at the host layer.
class GeminiRuntime final : public osim::PeriodicTask {
 public:
  GeminiChannel& channel() { return channel_; }
  const Mhps& mhps() const { return mhps_; }

  // Called by InstallGemini once the VM exists.
  void Attach(const mmu::PageTable* guest_table, const mmu::PageTable* ept,
              const vmem::BuddyAllocator* guest_buddy);

  void Run(base::Cycles now) override;

 private:
  GeminiChannel channel_;
  Mhps mhps_;
  const vmem::BuddyAllocator* guest_buddy_ = nullptr;
};

// Creates a VM under Gemini: builds the runtime + both policies, adds the
// VM to the machine, attaches the scanner, and registers it to run every
// `scan_period` cycles.  Returns the VM.
osim::VirtualMachine& InstallGeminiVm(osim::Machine& machine,
                                      uint64_t gfn_count,
                                      const GeminiOptions& options = {},
                                      base::Cycles scan_period = 1'000'000);

}  // namespace gemini

#endif  // SRC_GEMINI_GEMINI_POLICY_H_
