#include "gemini/huge_bucket.h"

#include "base/check.h"

namespace gemini {

using base::kPagesPerHuge;

HugeBucket::~HugeBucket() { ReleaseAll(); }

void HugeBucket::Deposit(uint64_t frame, base::Cycles now) {
  SIM_CHECK(frame % kPagesPerHuge == 0);
  frames_->SetUse(frame, kPagesPerHuge, owner_, vmem::FrameUse::kBucketed);
  const auto [it, inserted] = held_.emplace(frame, now + retention_);
  (void)it;
  SIM_CHECK(inserted);
  ++deposits_;
  if (tracer_ != nullptr) {
    tracer_->Emit(trace::EventKind::kBucketDeposit, layer_, owner_, frame,
                  now + retention_);
  }
}

uint64_t HugeBucket::TakeAny() {
  if (held_.empty()) {
    return vmem::kInvalidFrame;
  }
  const auto it = held_.begin();
  const uint64_t frame = it->first;
  Release(frame);
  held_.erase(it);
  ++reuses_;
  if (tracer_ != nullptr) {
    tracer_->Emit(trace::EventKind::kBucketTake, layer_, owner_, frame);
  }
  return frame;
}

uint64_t HugeBucket::ExpireRetention(base::Cycles now) {
  uint64_t released = 0;
  for (auto it = held_.begin(); it != held_.end();) {
    if (it->second <= now) {
      if (tracer_ != nullptr) {
        tracer_->Emit(trace::EventKind::kBucketEvict, layer_, owner_,
                      it->first);
      }
      Release(it->first);
      it = held_.erase(it);
      ++released;
    } else {
      ++it;
    }
  }
  evictions_ += released;
  return released;
}

uint64_t HugeBucket::ReleaseSome(uint64_t count) {
  uint64_t released = 0;
  while (released < count && !held_.empty()) {
    const auto it = held_.begin();
    if (tracer_ != nullptr) {
      tracer_->Emit(trace::EventKind::kBucketEvict, layer_, owner_, it->first);
    }
    Release(it->first);
    held_.erase(it);
    ++released;
  }
  evictions_ += released;
  return released;
}

void HugeBucket::ReleaseAll() { ReleaseSome(held_.size()); }

void HugeBucket::Release(uint64_t frame) {
  frames_->ClearUse(frame, kPagesPerHuge);
  buddy_->Free(frame, kPagesPerHuge);
}

}  // namespace gemini
