// Host OS kernel (the KVM side of the stack).
//
// Owns host physical memory (one buddy allocator + frame space shared by
// all VMs) and, per VM, an EPT-style VM page table (GFN -> host PFN) with
// its own host-layer huge-page policy instance.  EPT violations are
// demand-faulted through the same policy-driven path the guest uses, so
// host-side THP/Ingens/Gemini behave symmetrically to their guest-side
// counterparts.
#ifndef SRC_OS_HOST_KERNEL_H_
#define SRC_OS_HOST_KERNEL_H_

#include <memory>
#include <vector>

#include "os/kernel_base.h"

namespace osim {

// The per-VM slice of the host kernel: the VM's EPT plus the host-layer
// policy instance, sharing the host-wide buddy/frame space.
class HostVmKernel final : public KernelBase {
 public:
  HostVmKernel(int32_t vm_id, uint64_t vm_gfn_count,
               vmem::BuddyAllocator* host_buddy, vmem::FrameSpace* host_frames,
               const CostModel& costs, MachineHooks* hooks,
               std::unique_ptr<policy::HugePagePolicy> policy);
  // Symmetric with GuestKernel: drop policy-held reservations while the
  // shared host buddy is still alive.
  ~HostVmKernel() override { policy_.reset(); }

  // EPT violation on `gfn`.  Returns the synchronous cycle cost (VM exit
  // plus backing allocation).
  base::Cycles HandleFault(uint64_t gfn);

  // Guest-physical memory size of this VM, in 4 KiB frames.
  uint64_t gfn_count() const { return vm_gfn_count_; }

 protected:
  void ShootdownRegion(uint64_t region) override;
  base::Cycles BaseFaultCost() const override { return costs_.host_fault; }
  base::Cycles HugeFaultCost() const override { return costs_.host_huge_fault; }

 private:
  uint64_t vm_gfn_count_;
  bool any_fault_ = false;
};

class HostKernel {
 public:
  HostKernel(uint64_t host_frame_count, const CostModel& costs,
             MachineHooks* hooks, uint64_t alloc_seed = 0);

  // Registers a VM and its host-layer policy; returns its kernel slice.
  HostVmKernel& AddVm(int32_t vm_id, uint64_t vm_gfn_count,
                      std::unique_ptr<policy::HugePagePolicy> policy);

  HostVmKernel& vm_kernel(int32_t vm_id);
  const HostVmKernel& vm_kernel(int32_t vm_id) const;
  size_t vm_count() const { return vms_.size(); }

  vmem::BuddyAllocator& buddy() { return buddy_; }
  vmem::FrameSpace& frames() { return frames_; }
  double Fmfi() const { return buddy_.Fmfi(base::kHugeOrder); }

 private:
  vmem::FrameSpace frames_;
  vmem::BuddyAllocator buddy_;
  CostModel costs_;
  MachineHooks* hooks_;
  std::vector<std::unique_ptr<HostVmKernel>> vms_;
};

}  // namespace osim

#endif  // SRC_OS_HOST_KERNEL_H_
