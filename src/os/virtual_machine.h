// One virtual machine: a guest kernel, its slice of the host kernel (EPT +
// host policy), and the vCPU's translation engine over the two tables.
#ifndef SRC_OS_VIRTUAL_MACHINE_H_
#define SRC_OS_VIRTUAL_MACHINE_H_

#include <memory>

#include "mmu/translation_engine.h"
#include "os/guest_kernel.h"
#include "os/host_kernel.h"

namespace osim {

class VirtualMachine {
 public:
  VirtualMachine(int32_t id, std::unique_ptr<GuestKernel> guest,
                 HostVmKernel* host_slice,
                 const mmu::TranslationEngine::Config& engine_config,
                 mmu::TlbView tlb_view);

  int32_t id() const { return id_; }
  GuestKernel& guest() { return *guest_; }
  HostVmKernel& host_slice() { return *host_slice_; }
  mmu::TranslationEngine& engine() { return engine_; }
  const mmu::TranslationEngine& engine() const { return engine_; }

  // One data access to guest virtual page `vpn`: translates, demand-pages
  // through the guest and host fault handlers as needed, retries, and
  // returns the cycles the access cost (translation + synchronous fault
  // work).  Also reports whether the access ultimately went through a
  // well-aligned huge mapping.
  struct AccessResult {
    base::Cycles cycles = 0;
    bool tlb_hit = false;
    bool well_aligned = false;
    uint32_t faults_taken = 0;
  };
  AccessResult Access(uint64_t vpn);

  // Batch-path variant: identical semantics and observable effects, but
  // translations go through the engine's batched fast path.  The caller
  // (Machine::AccessBatch) has announced the access window with
  // TranslationEngine::BeginBatch.
  AccessResult AccessBatched(uint64_t vpn);

  // Epoch-parallel clean path (Machine::EpochAccessBatch): one batched
  // translation attempt, no fault handling.  On a clean hit/walk, fills
  // `out` and returns true.  If the translation would fault, returns false
  // with the VM untouched *except* the engine's deterministic miss
  // bookkeeping for the aborted attempt — the access runs again, from
  // scratch, in the serial phase (DESIGN.md §3g records the double-count).
  bool TryAccessBatchedClean(uint64_t vpn, AccessResult* out);

  uint64_t accesses() const { return accesses_; }

 private:
  template <bool kBatched>
  AccessResult AccessImpl(uint64_t vpn);

  int32_t id_;
  std::unique_ptr<GuestKernel> guest_;
  HostVmKernel* host_slice_;
  mmu::TranslationEngine engine_;
  uint64_t accesses_ = 0;
};

}  // namespace osim

#endif  // SRC_OS_VIRTUAL_MACHINE_H_
