#include "os/ksm.h"

#include <vector>

#include "base/check.h"

namespace osim {

using base::kHugeOrder;
using base::kPagesPerHuge;

KsmScanner::KsmScanner(Machine* machine, int32_t vm_id,
                       const KsmOptions& options)
    : machine_(machine), vm_id_(vm_id), options_(options) {
  SIM_CHECK(machine_ != nullptr);
  SIM_CHECK(options_.mergeable_fraction >= 0.0 &&
            options_.mergeable_fraction <= 1.0);
}

void KsmScanner::Run(base::Cycles now) {
  (void)now;
  ++stats_.passes;
  HostVmKernel& host = machine_->vm(vm_id_).host_slice();
  mmu::PageTable& ept = host.table();

  if (shared_frame_ == vmem::kInvalidFrame) {
    shared_frame_ = machine_->host().buddy().Allocate(0);
    if (shared_frame_ == vmem::kInvalidFrame) {
      return;  // host has nothing to spare; try again next pass
    }
    machine_->host().frames().SetUse(shared_frame_, 1, vm_id_,
                                     vmem::FrameUse::kPinned);
  }

  // Scan huge EPT leaves from the cursor; cold ones get broken and merged.
  std::vector<uint64_t> victims;
  uint64_t wrap = vmem::kInvalidFrame;
  ept.ForEachHuge([&](uint64_t region, uint64_t frame) {
    (void)frame;
    if (ept.AccessCount(region) > options_.max_heat) {
      return;
    }
    if (region >= cursor_) {
      if (victims.size() < options_.regions_per_pass) {
        victims.push_back(region);
      }
    } else if (wrap == vmem::kInvalidFrame) {
      wrap = region;
    }
  });
  if (victims.empty() && wrap != vmem::kInvalidFrame) {
    cursor_ = wrap;
    victims.push_back(wrap);
  }

  for (uint64_t region : victims) {
    cursor_ = region + 1;
    // KSM merges base pages only: the huge mapping must be split first —
    // exactly the demotion the paper worries about.
    host.Demote(region);
    ++stats_.huge_pages_broken;
    const auto merge_count = static_cast<uint64_t>(
        options_.mergeable_fraction * static_cast<double>(kPagesPerHuge));
    std::vector<std::pair<uint32_t, uint64_t>> pages;
    ept.ForEachBasePage(region, [&](uint32_t slot, uint64_t frame) {
      if (pages.size() < merge_count && frame != shared_frame_) {
        pages.emplace_back(slot, frame);
      }
    });
    for (const auto& [slot, frame] : pages) {
      const uint64_t gfn = (region << kHugeOrder) + slot;
      ept.UnmapBase(gfn);
      ept.MapBase(gfn, shared_frame_);
      machine_->host().frames().ClearUse(frame, 1);
      machine_->host().buddy().Free(frame, 1);
      ++stats_.pages_merged;
      ++stats_.frames_reclaimed;
    }
    // Breaking mappings invalidates combined translations; expected CoW
    // faults for later writes are charged now (as HawkEye's model does).
    machine_->FlushVmTranslations(vm_id_);
    host.ChargeOverhead(
        host.costs().tlb_shootdown +
        static_cast<base::Cycles>(options_.cow_write_fraction *
                                  static_cast<double>(pages.size())) *
            host.costs().cow_fault);
  }
}

KsmScanner* InstallKsm(Machine& machine, int32_t vm_id,
                       const KsmOptions& options, base::Cycles period) {
  auto scanner = std::make_unique<KsmScanner>(&machine, vm_id, options);
  KsmScanner* raw = scanner.get();
  machine.AddTask(std::move(scanner), period);
  return raw;
}

}  // namespace osim
