// Guest OS kernel: owns the guest-physical buddy allocator, the workload
// process's address space and page table, and the guest-layer huge-page
// policy instance.
//
// Demand paging: when the translation engine reports a guest fault the VM
// calls HandleFault(), which consults the policy for sizing/placement and
// installs a GVA->GPA mapping.  UnmapVma() models workload teardown (the
// reused-VM experiments, §6.3): guest frames return to the *guest* buddy —
// or to the policy's huge bucket — while the host-side EPT mappings and
// host frames stay with the VM, exactly the behaviour the paper points out
// for virtualized clouds.
#ifndef SRC_OS_GUEST_KERNEL_H_
#define SRC_OS_GUEST_KERNEL_H_

#include <memory>

#include "os/kernel_base.h"
#include "os/vma.h"

namespace osim {

class GuestKernel final : public KernelBase {
 public:
  GuestKernel(int32_t vm_id, uint64_t gfn_count, const CostModel& costs,
              MachineHooks* hooks,
              std::unique_ptr<policy::HugePagePolicy> policy,
              uint64_t alloc_seed = 0);
  // The policy may hold components (bookings, buckets) that reference this
  // kernel's buddy and frame space; destroy it before they go away.
  ~GuestKernel() override { policy_.reset(); }

  AddressSpace& aspace() { return aspace_; }

  // Demand fault on `vpn`.  Returns the synchronous cycle cost.
  base::Cycles HandleFault(uint64_t vpn);

  // Tears down a VMA: unmaps every page, frees guest frames (unless the
  // policy's OnFreeRegion takes them), drops policy per-VMA state.
  void UnmapVma(int32_t vma_id);

  vmem::FrameSpace& gpa_frames() { return gpa_frames_; }

 protected:
  void ShootdownRegion(uint64_t region) override;
  base::Cycles AfterFramesWritten(uint64_t frame, uint64_t count) override;
  base::Cycles BaseFaultCost() const override { return costs_.base_fault; }
  base::Cycles HugeFaultCost() const override { return costs_.huge_fault; }

 private:
  vmem::FrameSpace gpa_frames_;
  vmem::BuddyAllocator gpa_buddy_;
  AddressSpace aspace_;
};

}  // namespace osim

#endif  // SRC_OS_GUEST_KERNEL_H_
