// KSM-style memory deduplication (paper §8, future work).
//
// The paper flags memory deduplication as a mechanism that "may demote huge
// pages that are created by Gemini and reduce [its] performance".  This
// module models the Linux KSM behaviour that matters for that interplay:
// a periodic host-side scanner that finds cold, duplicate-rich VM memory,
// breaks its huge EPT mappings (KSM only merges base pages), remaps the
// duplicate pages to a shared frame, and frees the rest — reclaiming host
// memory at the cost of alignment and later copy-on-write faults.
//
// Content equality is not simulated; instead a configurable fraction of a
// victim region's pages is treated as mergeable (zero/duplicate pages),
// which is how dedup ratios are usually characterized.
#ifndef SRC_OS_KSM_H_
#define SRC_OS_KSM_H_

#include <cstdint>

#include "os/machine.h"

namespace osim {

struct KsmOptions {
  // Fraction of a scanned region's pages assumed mergeable.
  double mergeable_fraction = 0.5;
  // Regions scanned per pass.
  uint32_t regions_per_pass = 4;
  // Only regions whose access count is at or below this are candidates
  // (KSM targets cold memory).
  uint64_t max_heat = 8;
  // Fraction of merged pages that are later written and take a CoW fault
  // (charged at merge time as expected future work).
  double cow_write_fraction = 0.25;
};

struct KsmStats {
  uint64_t passes = 0;
  uint64_t huge_pages_broken = 0;
  uint64_t pages_merged = 0;
  uint64_t frames_reclaimed = 0;
};

// Periodic host task deduplicating one VM's memory.
class KsmScanner final : public PeriodicTask {
 public:
  KsmScanner(Machine* machine, int32_t vm_id, const KsmOptions& options);

  void Run(base::Cycles now) override;

  const KsmStats& stats() const { return stats_; }

 private:
  Machine* machine_;
  int32_t vm_id_;
  KsmOptions options_;
  KsmStats stats_;
  uint64_t cursor_ = 0;  // EPT region scan cursor
  // The shared frame duplicate pages are remapped to.
  uint64_t shared_frame_ = vmem::kInvalidFrame;
};

// Convenience: installs a scanner on the machine (which owns it).
KsmScanner* InstallKsm(Machine& machine, int32_t vm_id,
                       const KsmOptions& options = {},
                       base::Cycles period = 4'000'000);

}  // namespace osim

#endif  // SRC_OS_KSM_H_
