// The whole simulated platform: host kernel, VMs, per-VM translation
// engines, the simulated clock, and the daemon scheduler.
//
// Periodic work — each layer's promotion daemon (khugepaged analogue) and
// any registered tasks such as Gemini's misaligned-huge-page scanner — runs
// whenever the workload driver advances simulated time across a period
// boundary.
#ifndef SRC_OS_MACHINE_H_
#define SRC_OS_MACHINE_H_

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "mmu/tlb_domain.h"
#include "os/cost_model.h"
#include "os/hooks.h"
#include "os/host_kernel.h"
#include "os/virtual_machine.h"
#include "policy/reclaim.h"
#include "trace/tracer.h"
#include "vmem/fragmenter.h"
#include "vmem/tier_space.h"

namespace osim {

class ReclaimDaemon;

struct MachineConfig {
  // Host physical memory in 4 KiB frames.  Default 2 GiB simulated.
  uint64_t host_frames = 512 * 1024;
  CostModel costs;
  mmu::TranslationEngine::Config engine;
  // Promotion daemons tick every this many cycles.
  base::Cycles daemon_period = 2'000'000;
  uint64_t seed = 1;
  // How the VMs' L2 TLB arrays are arranged (see mmu/tlb_domain.h):
  // kPrivate gives each VM its own full array (the status quo), kShared
  // makes all VMs compete for one VMID-tagged array, kPartitioned statically
  // way-partitions one array.  Geometry always comes from engine.tlb.
  mmu::TlbShareMode tlb_mode = mmu::TlbShareMode::kPrivate;
  // kPartitioned / kDynamic: ways per VM at boot; 0 = even split over
  // tlb_expected_vms.
  uint32_t tlb_partition_ways = 0;
  uint32_t tlb_expected_vms = 2;
  // kDynamic: repartitioner tick interval (0 = daemon_period) and policy
  // knobs (see mmu/tlb_repartitioner.h).  The tick runs as a PeriodicTask,
  // so it only ever fires outside epoch-parallel phases.
  base::Cycles tlb_repart_interval = 0;
  uint32_t tlb_repart_min_ways = 1;
  double tlb_repart_hysteresis = 0.05;
  // Tiered-memory overcommit (DESIGN.md §3i): when enabled, the machine
  // owns a far TierSpace shared by every VM's host kernel slice and runs a
  // watermark-driven ReclaimDaemon over it.  Disabled (the default), no
  // far tier exists and behavior is bit-identical to the pre-tiering
  // simulator.
  policy::ReclaimConfig reclaim;
};

// A periodic background component (e.g. Gemini's MHPS).  Owned by the
// machine so its lifetime covers the policies that reference it.
class PeriodicTask {
 public:
  virtual ~PeriodicTask() = default;
  virtual void Run(base::Cycles now) = 0;
};

class Machine final : public MachineHooks {
 public:
  explicit Machine(const MachineConfig& config);
  ~Machine() override;

  // Adds a VM with `gfn_count` frames of guest-physical memory and the two
  // policy instances (guest layer, host layer).
  VirtualMachine& AddVm(uint64_t gfn_count,
                        std::unique_ptr<policy::HugePagePolicy> guest_policy,
                        std::unique_ptr<policy::HugePagePolicy> host_policy);

  // Registers a periodic task; Run() fires every `period` cycles.
  void AddTask(std::unique_ptr<PeriodicTask> task, base::Cycles period);

  VirtualMachine& vm(int32_t id);
  size_t vm_count() const { return vms_.size(); }
  HostKernel& host() { return host_; }
  const MachineConfig& config() const { return config_; }

  // The machine-wide event tracer.  Disabled (zero-cost) until a caller
  // enables it; every kernel and allocator in the stack is pre-wired to it.
  trace::Tracer& tracer() { return tracer_; }
  const trace::Tracer& tracer() const { return tracer_; }

  // The TLB sharing domain the VMs' engines translate through.
  const mmu::TlbDomain& tlb_domain() const { return tlb_domain_; }

  // The shared far tier (null unless config.reclaim.enabled) and the
  // reclaim daemon driving it (null likewise).
  const vmem::TierSpace* host_tier() const { return host_tier_.get(); }
  vmem::TierSpace* host_tier() { return host_tier_.get(); }
  const ReclaimDaemon* reclaim_daemon() const { return reclaim_daemon_; }

  // One data access by the workload in `vm_id`, including `work_cycles` of
  // the workload's own compute.  Advances the clock and runs due daemons.
  VirtualMachine::AccessResult Access(int32_t vm_id, uint64_t vpn,
                                      base::Cycles work_cycles = 0);

  // A batch of accesses, each including `work_cycles` of compute.  Resizes
  // `out` to vpns.size() and fills one result per VPN.  Equivalent to
  // calling Access per element — the clock advances and due daemons run
  // after every access, so daemon schedules, fault interleavings, and
  // Now() observations are identical at any batch size (the differential
  // tests in tests/test_access_batch.cc pin this down).  Batching only
  // engages the engine's memoized fast path and prefetch pipeline, plus an
  // O(1) due-daemon check against the cached next event time.
  void AccessBatch(int32_t vm_id, std::span<const uint64_t> vpns,
                   base::Cycles work_cycles,
                   std::vector<VirtualMachine::AccessResult>* out);

  // Advances simulated time (e.g. think time) and runs due daemons.
  void AdvanceTime(base::Cycles cycles);

  // --- epoch-parallel execution (DESIGN.md §3g) ---------------------------
  //
  // Between BeginEpoch() and EpochBarrier(), each VM's lane may run on its
  // own worker thread, but only through EpochAccessBatch, and only for
  // *clean* (fault-free) translations: shared machine state (clock, daemon
  // scheduler, host kernel, shared TLB array) is frozen for the whole
  // epoch.  Private-mode VMs touch nothing shared on the clean path;
  // shared/partitioned VMs route TLB traffic through a per-VM
  // mmu::TlbEpochStage.  The barrier then (1) commits the stages in
  // canonical VM-ID order, (2) advances the clock by the sum of all lanes'
  // epoch cycles and runs due daemons, after which callers drain any
  // suspended lane remainders serially (faults, driver events).  Every
  // other mutating entry point checks !in_epoch().
  void BeginEpoch();
  // Runs the leading clean prefix of `vpns` for `vm_id`'s lane; returns how
  // many accesses completed (all of them, or the index of the first access
  // that would fault — that access is untouched and must be re-run
  // serially after the barrier).  Thread-safe across *distinct* VMs.
  // `out` must already have at least vpns.size() elements.
  size_t EpochAccessBatch(int32_t vm_id, std::span<const uint64_t> vpns,
                          base::Cycles work_cycles,
                          std::vector<VirtualMachine::AccessResult>* out);
  void EpochBarrier();
  bool in_epoch() const { return in_epoch_; }

  // Fragments host physical memory to the target FMFI (paper §6.1).
  double FragmentHostMemory(double target_fmfi);
  // Fragments one VM's guest-physical memory.
  double FragmentGuestMemory(int32_t vm_id, double target_fmfi);

  // --- MachineHooks --------------------------------------------------------
  void ShootdownGuestRange(int32_t vm_id, uint64_t vpn,
                           uint64_t pages) override;
  base::Cycles EnsureHostBacking(int32_t vm_id, uint64_t gfn,
                                 uint64_t count) override;
  void FlushVmTranslations(int32_t vm_id) override;
  uint64_t VmTlbMisses(int32_t vm_id) const override;
  // Logical time: equal to the raw clock between accesses, but pinned to
  // the period boundary while a daemon or periodic task runs.  A batched
  // access that overshoots a boundary therefore cannot leak the overshoot
  // into daemon decisions, keeping runs with different access batching
  // byte-identical.
  base::Cycles Now() const override { return logical_now_; }

 private:
  void RunDueDaemons();

  MachineConfig config_;
  base::Cycles now_ = 0;
  base::Cycles logical_now_ = 0;
  trace::Tracer tracer_;
  HostKernel host_;
  // Declared before vms_: the VMs' engines hold views into the domain's
  // physical arrays, so the domain must outlive them.
  mmu::TlbDomain tlb_domain_;
  std::vector<std::unique_ptr<VirtualMachine>> vms_;
  std::vector<std::unique_ptr<vmem::Fragmenter>> guest_fragmenters_;
  std::unique_ptr<vmem::Fragmenter> host_fragmenter_;
  // The far tier every host kernel slice demotes to (config.reclaim).
  std::unique_ptr<vmem::TierSpace> host_tier_;
  ReclaimDaemon* reclaim_daemon_ = nullptr;  // owned by tasks_

  struct ScheduledTask {
    std::unique_ptr<PeriodicTask> task;
    base::Cycles period;
    base::Cycles next_run;
  };
  std::vector<ScheduledTask> tasks_;
  base::Cycles next_daemon_ = 0;
  // min(next_daemon_, all tasks' next_run): the earliest time any periodic
  // work is due.  Maintained by AddTask and RunDueDaemons so the per-access
  // daemon check in AccessBatch is one compare instead of a task scan.
  base::Cycles next_event_ = 0;
  // Epoch-parallel phase state: while in_epoch_, only EpochAccessBatch may
  // run, and each lane accumulates its cycles here (indexed by vm id) for
  // the barrier to fold into the clock.
  bool in_epoch_ = false;
  std::vector<base::Cycles> epoch_cycles_;
};

}  // namespace osim

#endif  // SRC_OS_MACHINE_H_
