#include "os/reclaim_daemon.h"

#include <algorithm>

#include "base/check.h"

namespace osim {

ReclaimDaemon::ReclaimDaemon(Machine* machine,
                             const policy::ReclaimConfig& config)
    : machine_(machine),
      config_(config),
      policy_(policy::MakeReclaimPolicy(config.policy, config.damon)) {
  SIM_CHECK(machine_ != nullptr);
  SIM_CHECK(config_.low_watermark > 0.0 &&
            config_.low_watermark <= config_.high_watermark &&
            config_.high_watermark < 1.0);
}

void ReclaimDaemon::Run(base::Cycles) {
  ++stats_.ticks;
  HostKernel& host = machine_->host();
  policy_->Observe(host);

  const uint64_t total = host.buddy().frame_count();
  const uint64_t low =
      static_cast<uint64_t>(config_.low_watermark * static_cast<double>(total));
  const uint64_t high = static_cast<uint64_t>(config_.high_watermark *
                                              static_cast<double>(total));
  if (host.buddy().free_frames() >= low) {
    return;
  }

  uint64_t freed = 0;
  bool progress = true;
  std::vector<policy::ReclaimVictim> victims;
  while (progress && freed < config_.max_pages_per_pass &&
         host.buddy().free_frames() < high) {
    progress = false;
    victims.clear();
    policy_->RankVictims(host, /*max_victims=*/64, &victims);
    for (const policy::ReclaimVictim& v : victims) {
      if (freed >= config_.max_pages_per_pass ||
          host.buddy().free_frames() >= high) {
        break;
      }
      const uint64_t got = host.vm_kernel(v.vm_id).DemoteRegionToTier(
          v.region, config_.max_pages_per_pass - freed);
      freed += got;
      progress = progress || got > 0;
    }
  }
  if (freed > 0) {
    ++stats_.passes;
    stats_.pages_demoted += freed;
  }
  trace::Tracer& tracer = machine_->tracer();
  if (tracer.enabled()) {
    tracer.Emit(trace::EventKind::kReclaimPass, base::Layer::kHost, -1, freed,
                host.buddy().free_frames(), low);
  }
}

}  // namespace osim
