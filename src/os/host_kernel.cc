#include "os/host_kernel.h"

#include "base/check.h"

namespace osim {

using base::kHugeOrder;
using base::kPagesPerHuge;

HostVmKernel::HostVmKernel(int32_t vm_id, uint64_t vm_gfn_count,
                           vmem::BuddyAllocator* host_buddy,
                           vmem::FrameSpace* host_frames,
                           const CostModel& costs, MachineHooks* hooks,
                           std::unique_ptr<policy::HugePagePolicy> policy)
    : KernelBase(base::Layer::kHost, vm_id, host_buddy, host_frames, costs,
                 hooks, std::move(policy)),
      vm_gfn_count_(vm_gfn_count) {}

base::Cycles HostVmKernel::HandleFault(uint64_t gfn) {
  SIM_CHECK_MSG(gfn < vm_gfn_count_, "EPT fault beyond VM memory: gfn %llu",
                static_cast<unsigned long long>(gfn));
  policy::FaultInfo info;
  info.page = gfn;
  info.region = gfn >> kHugeOrder;
  info.vma_id = -1;
  info.vma_start_page = 0;
  info.vma_pages = vm_gfn_count_;
  info.vma_first_touch = !any_fault_;
  any_fault_ = true;
  // A huge EPT mapping is possible whenever the whole 2 MiB guest-physical
  // region lies inside the VM's memory.
  const bool coverable =
      (info.region << kHugeOrder) + kPagesPerHuge <= vm_gfn_count_;
  return DoFault(info, coverable);
}

void HostVmKernel::ShootdownRegion(uint64_t region) {
  // A host-layer remap invalidates combined translations whose guest
  // virtual addresses the host cannot enumerate; KVM issues a
  // single-context INVEPT, i.e. flushes the VM's translations.
  hooks_->FlushVmTranslations(vm_id_);
  if (tracer_ != nullptr) {
    tracer_->Emit(trace::EventKind::kShootdown, layer_, vm_id_,
                  region << kHugeOrder, kPagesPerHuge);
  }
}

HostKernel::HostKernel(uint64_t host_frame_count, const CostModel& costs,
                       MachineHooks* hooks, uint64_t alloc_seed)
    : frames_(host_frame_count),
      buddy_(host_frame_count, alloc_seed),
      costs_(costs),
      hooks_(hooks) {}

HostVmKernel& HostKernel::AddVm(
    int32_t vm_id, uint64_t vm_gfn_count,
    std::unique_ptr<policy::HugePagePolicy> policy) {
  SIM_CHECK(vm_id == static_cast<int32_t>(vms_.size()));
  vms_.push_back(std::make_unique<HostVmKernel>(
      vm_id, vm_gfn_count, &buddy_, &frames_, costs_, hooks_,
      std::move(policy)));
  return *vms_.back();
}

HostVmKernel& HostKernel::vm_kernel(int32_t vm_id) {
  SIM_CHECK(vm_id >= 0 && static_cast<size_t>(vm_id) < vms_.size());
  return *vms_[vm_id];
}

const HostVmKernel& HostKernel::vm_kernel(int32_t vm_id) const {
  SIM_CHECK(vm_id >= 0 && static_cast<size_t>(vm_id) < vms_.size());
  return *vms_[vm_id];
}

}  // namespace osim
