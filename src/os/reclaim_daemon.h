// Watermark-driven host memory reclaim (the kswapd analogue for the tiered
// host of DESIGN.md §3i).
//
// Registered by the machine as a PeriodicTask when MachineConfig::reclaim
// is enabled, so every tick fires in Machine::RunDueDaemons at a logical
// time boundary — never inside an epoch-parallel phase — and the whole
// reclaim schedule is a deterministic function of (workload, seed), not of
// GEMINI_VM_THREADS or batch size.
//
// Each tick: (1) let the reclaim policy observe (DAMON sampling / LRU
// aging), (2) compare the shared host buddy's free frames against the low
// watermark, and (3) when short, demote policy-ranked cold EPT regions of
// every VM to the machine's far tier until the high watermark, the pass
// budget, or the far tier's capacity is reached.  Demoted pages free their
// frames into the host buddy allocator — exactly the churn that fragments
// (and, once the buddy re-merges blocks, compacts) the free lists the
// coalescing policies allocate from.  A later guest access to a demoted
// GFN takes the normal EPT-violation path and pays the far tier's refault
// latency (kernel_base.cc).
#ifndef SRC_OS_RECLAIM_DAEMON_H_
#define SRC_OS_RECLAIM_DAEMON_H_

#include <memory>
#include <vector>

#include "os/machine.h"
#include "policy/reclaim.h"

namespace osim {

struct ReclaimDaemonStats {
  uint64_t ticks = 0;          // daemon activations
  uint64_t passes = 0;         // ticks that reclaimed at least one page
  uint64_t pages_demoted = 0;  // pages moved to the far tier, total
};

class ReclaimDaemon final : public PeriodicTask {
 public:
  ReclaimDaemon(Machine* machine, const policy::ReclaimConfig& config);

  void Run(base::Cycles now) override;

  const ReclaimDaemonStats& stats() const { return stats_; }
  const policy::ReclaimPolicy& policy() const { return *policy_; }

 private:
  Machine* machine_;
  policy::ReclaimConfig config_;
  std::unique_ptr<policy::ReclaimPolicy> policy_;
  ReclaimDaemonStats stats_;
};

}  // namespace osim

#endif  // SRC_OS_RECLAIM_DAEMON_H_
