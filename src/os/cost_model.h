// Cycle costs for kernel memory-management operations.
//
// The simulator charges these against the workload either synchronously
// (fault-path work stalls the faulting access — this is what makes Linux
// THP's direct compaction and synchronous huge-page zeroing hurt tail
// latency) or asynchronously (daemon work such as khugepaged promotion,
// charged as background overhead that dilutes throughput).
//
// Values are in simulated cycles and are order-of-magnitude calibrated to
// the literature (Ingens/HawkEye report ~30 us for a 2 MiB collapse, a TLB
// shootdown IPI costs a few microseconds): at ~2 GHz, 1 us ~ 2000 cycles.
// Absolute values only scale the overhead terms; the figure *shapes* come
// from the relative magnitudes.
#ifndef SRC_OS_COST_MODEL_H_
#define SRC_OS_COST_MODEL_H_

#include "base/types.h"

namespace osim {

struct CostModel {
  // Base-page demand fault: trap + allocate + zero 4 KiB + map.
  base::Cycles base_fault = 3000;
  // Huge-page demand fault: one trap + allocate + zero 2 MiB + map.
  // Zeroing dominates (512 pages' worth, ~100 us); the trap/allocation is
  // paid once instead of 512 times — that is THP's genuine fault saving,
  // and also its fault-latency spike.
  base::Cycles huge_fault = 200000;
  // EPT violation handled by the host (VM exit + map + resume).
  base::Cycles host_fault = 4000;
  base::Cycles host_huge_fault = 208000;
  // Copying one 4 KiB page during migration-based promotion/compaction.
  base::Cycles copy_page = 800;
  // One TLB shootdown event (IPI + invalidation).
  base::Cycles tlb_shootdown = 8000;
  // Direct compaction attempt when a synchronous huge allocation fails
  // (Linux THP "always" mode stalls the fault while compacting).
  base::Cycles direct_compaction = 200000;
  // Scanning one candidate region in a promotion daemon pass.
  base::Cycles daemon_scan_region = 300;
  // In-place promotion (page-table rewrite, no copies).
  base::Cycles promote_in_place = 2000;
  // Copy-on-write fault (HawkEye zero-page dedup artifact; KSM).
  base::Cycles cow_fault = 3500;
  // Writing one page out under memory pressure (mostly asynchronous).
  base::Cycles swap_out_page = 1000;
  // Faulting a swapped page back in (synchronous SSD read, ~80 us).
  base::Cycles swap_in_page = 160000;
  // Demoting one page to the far/compressed tier (compress + copy; the
  // zswap store path, ~1 us — asynchronous, daemon-driven).
  base::Cycles far_demote_page = 2000;
  // Refaulting a far-tier page back to near memory (decompress + copy,
  // ~8 us synchronous — an order of magnitude cheaper than the SSD
  // swap_in_page path, which is what makes overcommit tolerable at all).
  base::Cycles far_refault_page = 16000;
};

}  // namespace osim

#endif  // SRC_OS_COST_MODEL_H_
