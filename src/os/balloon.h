// Memory ballooning (paper §8, future work).
//
// A balloon driver lets the host reclaim memory from a cooperative guest:
// inflating the balloon makes the guest allocate (and pin) guest-physical
// frames it promises not to use; the host then unmaps their EPT backing and
// frees the host frames.  Deflating returns the frames to the guest.
//
// The interplay the paper cares about: which guest frames the balloon
// grabs decides how much huge-page alignment survives.  A naive balloon
// takes whatever the buddy hands out — splintering well-aligned regions; an
// alignment-aware balloon (Gemini's stance: demote only misaligned or idle
// huge pages) sources whole misaligned regions first.
#ifndef SRC_OS_BALLOON_H_
#define SRC_OS_BALLOON_H_

#include <cstdint>
#include <vector>

#include "os/machine.h"

namespace osim {

struct BalloonStats {
  uint64_t inflated_frames = 0;   // currently held by the balloon
  uint64_t host_frames_released = 0;
  uint64_t huge_backings_broken = 0;  // huge EPT leaves demoted to release
};

class BalloonDriver {
 public:
  // `alignment_aware`: prefer guest frames whose host backing is not a
  // huge page (or whose huge backing is misaligned), preserving
  // well-aligned regions.
  BalloonDriver(Machine* machine, int32_t vm_id, bool alignment_aware);

  // Inflates by up to `frames` guest frames; unmaps and frees their host
  // backing.  Returns how many frames were actually reclaimed for the
  // host.
  uint64_t Inflate(uint64_t frames);

  // Deflates by up to `frames`, returning guest frames to the guest buddy
  // (their next use EPT-faults and gets fresh host backing).
  uint64_t Deflate(uint64_t frames);

  const BalloonStats& stats() const { return stats_; }

 private:
  // Releases the host backing of one ballooned guest frame.
  void ReleaseHostBacking(uint64_t gfn);

  Machine* machine_;
  int32_t vm_id_;
  bool alignment_aware_;
  std::vector<uint64_t> held_;  // ballooned guest frames
  BalloonStats stats_;
};

}  // namespace osim

#endif  // SRC_OS_BALLOON_H_
