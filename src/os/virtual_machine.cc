#include "os/virtual_machine.h"

#include "base/check.h"

namespace osim {

VirtualMachine::VirtualMachine(
    int32_t id, std::unique_ptr<GuestKernel> guest, HostVmKernel* host_slice,
    const mmu::TranslationEngine::Config& engine_config,
    mmu::TlbView tlb_view)
    : id_(id),
      guest_(std::move(guest)),
      host_slice_(host_slice),
      engine_(engine_config, &guest_->table(), &host_slice_->table(),
              tlb_view) {
  SIM_CHECK(guest_ != nullptr && host_slice_ != nullptr);
}

VirtualMachine::AccessResult VirtualMachine::Access(uint64_t vpn) {
  return AccessImpl<false>(vpn);
}

VirtualMachine::AccessResult VirtualMachine::AccessBatched(uint64_t vpn) {
  return AccessImpl<true>(vpn);
}

bool VirtualMachine::TryAccessBatchedClean(uint64_t vpn, AccessResult* out) {
  const mmu::TranslateResult tr = engine_.TranslateBatched(vpn);
  if (tr.status != mmu::TranslateStatus::kOk) {
    return false;  // needs a kernel fault handler: serial-phase work
  }
  ++accesses_;  // only completed accesses count, as in AccessImpl
  out->cycles = tr.cycles;
  out->tlb_hit = tr.tlb_hit;
  out->well_aligned = tr.well_aligned_huge;
  out->faults_taken = 0;
  return true;
}

template <bool kBatched>
VirtualMachine::AccessResult VirtualMachine::AccessImpl(uint64_t vpn) {
  ++accesses_;
  AccessResult result;
  // A single access takes at most: guest fault, then host fault (the guest
  // mapping may target a not-yet-backed GFN), then a clean translation.
  for (int attempt = 0; attempt < 4; ++attempt) {
    const mmu::TranslateResult tr = kBatched ? engine_.TranslateBatched(vpn)
                                             : engine_.Translate(vpn);
    switch (tr.status) {
      case mmu::TranslateStatus::kOk:
        result.cycles += tr.cycles;
        result.tlb_hit = tr.tlb_hit;
        result.well_aligned = tr.well_aligned_huge;
        return result;
      case mmu::TranslateStatus::kGuestFault:
        result.cycles += guest_->HandleFault(tr.fault_page);
        ++result.faults_taken;
        break;
      case mmu::TranslateStatus::kHostFault:
        result.cycles += host_slice_->HandleFault(tr.fault_page);
        ++result.faults_taken;
        break;
    }
  }
  SIM_CHECK_MSG(false, "access to vpn %llu did not converge",
                static_cast<unsigned long long>(vpn));
  return result;
}

}  // namespace osim
