#include "os/machine.h"

#include <algorithm>

#include "base/check.h"
#include "os/reclaim_daemon.h"

namespace osim {

namespace {

// kDynamic mode's control loop: forward the periodic tick to the domain's
// repartitioner.  Being a PeriodicTask, it only ever fires from
// RunDueDaemons — outside epoch-parallel phases, at a logical_now_ pinned
// to the period boundary — so window moves are deterministic at any
// GEMINI_VM_THREADS / batch size.
class RepartitionTask final : public PeriodicTask {
 public:
  explicit RepartitionTask(mmu::TlbDomain* domain) : domain_(domain) {}
  void Run(base::Cycles) override { domain_->RepartitionTick(); }

 private:
  mmu::TlbDomain* domain_;
};

}  // namespace

Machine::Machine(const MachineConfig& config)
    : config_(config),
      host_(config.host_frames, config.costs, this, config.seed * 2 + 1),
      tlb_domain_(mmu::TlbDomainConfig{
          config.engine.tlb, config.tlb_mode, config.tlb_partition_ways,
          config.tlb_expected_vms, config.tlb_repart_min_ways,
          config.tlb_repart_hysteresis}),
      next_daemon_(config.daemon_period),
      next_event_(config.daemon_period) {
  host_fragmenter_ = std::make_unique<vmem::Fragmenter>(
      &host_.buddy(), &host_.frames(), config_.seed ^ 0x9e3779b9ull);
  tracer_.SetClock(&logical_now_);
  // The host buddy is shared by every VM; its events carry vm_id -1.
  host_.buddy().SetTracer(&tracer_, base::Layer::kHost, -1);
  if (config_.tlb_mode == mmu::TlbShareMode::kDynamic) {
    const base::Cycles interval = config_.tlb_repart_interval != 0
                                      ? config_.tlb_repart_interval
                                      : config_.daemon_period;
    AddTask(std::make_unique<RepartitionTask>(&tlb_domain_), interval);
  }
  if (config_.reclaim.enabled) {
    host_tier_ = std::make_unique<vmem::TierSpace>(
        config_.reclaim.far_capacity_pages, config_.costs.far_demote_page,
        config_.costs.far_refault_page);
    auto daemon = std::make_unique<ReclaimDaemon>(this, config_.reclaim);
    reclaim_daemon_ = daemon.get();
    const base::Cycles interval = config_.reclaim.interval != 0
                                      ? config_.reclaim.interval
                                      : config_.daemon_period;
    AddTask(std::move(daemon), interval);
  }
}

Machine::~Machine() = default;

VirtualMachine& Machine::AddVm(
    uint64_t gfn_count, std::unique_ptr<policy::HugePagePolicy> guest_policy,
    std::unique_ptr<policy::HugePagePolicy> host_policy) {
  SIM_CHECK(!in_epoch_);
  const int32_t id = static_cast<int32_t>(vms_.size());
  HostVmKernel& slice =
      host_.AddVm(id, gfn_count, std::move(host_policy));
  auto guest = std::make_unique<GuestKernel>(
      id, gfn_count, config_.costs, this, std::move(guest_policy),
      config_.seed * 131 + static_cast<uint64_t>(id) * 31 + 7);
  vms_.push_back(std::make_unique<VirtualMachine>(
      id, std::move(guest), &slice, config_.engine,
      tlb_domain_.AddVm(static_cast<uint16_t>(id))));
  VirtualMachine& vm = *vms_.back();
  vm.guest().AttachTracer(&tracer_);
  vm.guest().buddy().SetTracer(&tracer_, base::Layer::kGuest, id);
  vm.host_slice().AttachTracer(&tracer_);
  if (host_tier_ != nullptr) {
    // Every slice demotes to the one shared far tier, keyed by vm id, so
    // the far pool's capacity is contended by all tenants.
    vm.host_slice().AttachTier(host_tier_.get());
  }
  guest_fragmenters_.push_back(std::make_unique<vmem::Fragmenter>(
      &vms_.back()->guest().buddy(), &vms_.back()->guest().gpa_frames(),
      config_.seed + static_cast<uint64_t>(id) * 7919));
  return *vms_.back();
}

void Machine::AddTask(std::unique_ptr<PeriodicTask> task,
                      base::Cycles period) {
  SIM_CHECK(!in_epoch_);
  SIM_CHECK(period > 0);
  tasks_.push_back(ScheduledTask{std::move(task), period, now_ + period});
  next_event_ = std::min(next_event_, tasks_.back().next_run);
}

VirtualMachine& Machine::vm(int32_t id) {
  SIM_CHECK(id >= 0 && static_cast<size_t>(id) < vms_.size());
  return *vms_[id];
}

VirtualMachine::AccessResult Machine::Access(int32_t vm_id, uint64_t vpn,
                                             base::Cycles work_cycles) {
  SIM_CHECK(!in_epoch_);
  VirtualMachine::AccessResult result = vm(vm_id).Access(vpn);
  result.cycles += work_cycles;
  AdvanceTime(result.cycles);
  return result;
}

void Machine::AccessBatch(int32_t vm_id, std::span<const uint64_t> vpns,
                          base::Cycles work_cycles,
                          std::vector<VirtualMachine::AccessResult>* out) {
  SIM_CHECK(!in_epoch_);
  VirtualMachine& v = vm(vm_id);
  out->resize(vpns.size());
  v.engine().BeginBatch(vpns);
  for (size_t i = 0; i < vpns.size(); ++i) {
    VirtualMachine::AccessResult result = v.AccessBatched(vpns[i]);
    result.cycles += work_cycles;
    (*out)[i] = result;
    // Per-access clock semantics, exactly as AdvanceTime: daemons run the
    // moment an access crosses their boundary, and any code reading Now()
    // mid-batch (fault handlers, tracepoints) sees the scalar timeline.
    // The cached next-event time makes the common no-daemon-due case one
    // compare; RunDueDaemons would reach the same conclusion by scanning.
    now_ += result.cycles;
    if (now_ >= next_event_) {
      RunDueDaemons();
    } else {
      logical_now_ = now_;
    }
  }
}

void Machine::AdvanceTime(base::Cycles cycles) {
  SIM_CHECK(!in_epoch_);
  now_ += cycles;
  RunDueDaemons();
}

void Machine::BeginEpoch() {
  SIM_CHECK(!in_epoch_);
  in_epoch_ = true;
  epoch_cycles_.assign(vms_.size(), 0);
  if (config_.tlb_mode != mmu::TlbShareMode::kPrivate) {
    for (const auto& vm : vms_) {
      mmu::TlbEpochStage* stage =
          tlb_domain_.EpochStage(static_cast<uint16_t>(vm->id()));
      stage->BeginEpoch();
      vm->engine().tlb().SetEpochStage(stage);
    }
  }
}

size_t Machine::EpochAccessBatch(
    int32_t vm_id, std::span<const uint64_t> vpns, base::Cycles work_cycles,
    std::vector<VirtualMachine::AccessResult>* out) {
  SIM_CHECK(in_epoch_);
  VirtualMachine& v = vm(vm_id);
  SIM_CHECK(out->size() >= vpns.size());
  v.engine().BeginBatch(vpns);
  base::Cycles lane_cycles = 0;
  size_t done = 0;
  for (; done < vpns.size(); ++done) {
    VirtualMachine::AccessResult result;
    if (!v.TryAccessBatchedClean(vpns[done], &result)) {
      break;  // would fault: suspend; the serial phase re-runs this access
    }
    result.cycles += work_cycles;
    lane_cycles += result.cycles;
    (*out)[done] = result;
  }
  // One accumulate per batch, not per access: only this lane's slot is
  // touched, so no other thread contends on it.
  epoch_cycles_[vm_id] += lane_cycles;
  return done;
}

void Machine::EpochBarrier() {
  SIM_CHECK(in_epoch_);
  // Canonical VM-ID-ordered merge of the staged shared-TLB traffic: the
  // replay order — not the racy thread completion order — defines which
  // entries evict which, so any GEMINI_VM_THREADS produces the same array.
  if (config_.tlb_mode != mmu::TlbShareMode::kPrivate) {
    for (const auto& vm : vms_) {
      vm->engine().tlb().SetEpochStage(nullptr);
      tlb_domain_.EpochStage(static_cast<uint16_t>(vm->id()))->Commit();
    }
  }
  base::Cycles total = 0;
  for (const base::Cycles c : epoch_cycles_) {
    total += c;
  }
  in_epoch_ = false;
  now_ += total;
  RunDueDaemons();
}

void Machine::RunDueDaemons() {
  // Process due events in timestamp order so a scanner firing between two
  // daemon ticks is observed by the next tick, exactly as on a live system.
  for (;;) {
    base::Cycles next_event = next_daemon_;
    for (const auto& scheduled : tasks_) {
      next_event = std::min(next_event, scheduled.next_run);
    }
    if (next_event > now_) {
      next_event_ = next_event;
      break;
    }
    // Daemons and tasks observe the boundary they fire at, never the raw
    // clock: a coarse access batch that overshoots the boundary must look
    // identical to many fine-grained batches reaching it exactly.
    logical_now_ = next_event;
    if (next_daemon_ == next_event) {
      for (auto& vm : vms_) {
        if (tracer_.enabled()) {
          tracer_.Emit(trace::EventKind::kDaemonTick, base::Layer::kGuest,
                       vm->id(), next_event / config_.daemon_period);
        }
        vm->guest().DaemonTick();
        vm->host_slice().DaemonTick();
      }
      next_daemon_ += config_.daemon_period;
    }
    for (auto& scheduled : tasks_) {
      if (scheduled.next_run == next_event) {
        scheduled.task->Run(next_event);
        scheduled.next_run += scheduled.period;
      }
    }
  }
  logical_now_ = now_;
}

double Machine::FragmentHostMemory(double target_fmfi) {
  SIM_CHECK(!in_epoch_);
  return host_fragmenter_->FragmentToTarget(target_fmfi);
}

double Machine::FragmentGuestMemory(int32_t vm_id, double target_fmfi) {
  SIM_CHECK(!in_epoch_);
  SIM_CHECK(vm_id >= 0 && static_cast<size_t>(vm_id) < vms_.size());
  return guest_fragmenters_[vm_id]->FragmentToTarget(target_fmfi);
}

void Machine::ShootdownGuestRange(int32_t vm_id, uint64_t vpn,
                                  uint64_t pages) {
  SIM_CHECK(!in_epoch_);
  vm(vm_id).engine().ShootdownRange(vpn, pages);
}

base::Cycles Machine::EnsureHostBacking(int32_t vm_id, uint64_t gfn,
                                        uint64_t count) {
  SIM_CHECK(!in_epoch_);
  HostVmKernel& slice = vm(vm_id).host_slice();
  base::Cycles cycles = 0;
  for (uint64_t g = gfn; g < gfn + count; ++g) {
    if (!slice.table().Lookup(g).has_value()) {
      cycles += slice.HandleFault(g);
    }
  }
  return cycles;
}

void Machine::FlushVmTranslations(int32_t vm_id) {
  SIM_CHECK(!in_epoch_);
  // Private arrays: stale combined entries are detected and dropped by the
  // translation engine's hit validation (modeling a tagged, precisely-
  // invalidated TLB), so a wholesale flush is unnecessary; the
  // invalidation latency is charged by the kernel as shootdown overhead.
  if (config_.tlb_mode == mmu::TlbShareMode::kPrivate) {
    return;
  }
  // Shared array: the same event is a tagged selective invalidation
  // (single-context INVEPT analogue) — only this VM's entries drop, and
  // the per-entry count lands in its vm_invalidated counter.  Hit
  // validation would also catch the staleness, but dropping eagerly means
  // the vacated ways are immediately reusable by the other tenants, which
  // is part of the sharing model being measured.
  tlb_domain_.InvalidateVm(static_cast<uint16_t>(vm_id));
}

uint64_t Machine::VmTlbMisses(int32_t vm_id) const {
  SIM_CHECK(vm_id >= 0 && static_cast<size_t>(vm_id) < vms_.size());
  return vms_[vm_id]->engine().tlb().misses();
}

}  // namespace osim
