#include "os/guest_kernel.h"

#include "base/check.h"

namespace osim {

using base::kHugeOrder;
using base::kPagesPerHuge;

GuestKernel::GuestKernel(int32_t vm_id, uint64_t gfn_count,
                         const CostModel& costs, MachineHooks* hooks,
                         std::unique_ptr<policy::HugePagePolicy> policy,
                         uint64_t alloc_seed)
    : KernelBase(base::Layer::kGuest, vm_id, &gpa_buddy_, &gpa_frames_, costs,
                 hooks, std::move(policy)),
      gpa_frames_(gfn_count),
      gpa_buddy_(gfn_count, alloc_seed) {}

base::Cycles GuestKernel::HandleFault(uint64_t vpn) {
  Vma* vma = aspace_.Find(vpn);
  SIM_CHECK_MSG(vma != nullptr, "guest fault outside any VMA: vpn %llu",
                static_cast<unsigned long long>(vpn));
  policy::FaultInfo info;
  info.page = vpn;
  info.region = vpn >> kHugeOrder;
  info.vma_id = vma->id;
  info.vma_start_page = vma->start_page;
  info.vma_pages = vma->pages;
  info.vma_first_touch = !vma->touched;
  vma->touched = true;
  return DoFault(info, vma->CoversRegion(info.region));
}

void GuestKernel::UnmapVma(int32_t vma_id) {
  Vma* vma = aspace_.FindById(vma_id);
  SIM_CHECK(vma != nullptr);
  const uint64_t first_region = vma->start_page >> kHugeOrder;
  const uint64_t last_region = (vma->end_page() - 1) >> kHugeOrder;
  for (uint64_t region = first_region; region <= last_region; ++region) {
    if (table_.IsHugeMapped(region)) {
      const uint64_t frame = table_.UnmapHuge(region);
      if (!policy_->OnFreeRegion(*this, region, frame, /*contiguous=*/true)) {
        gpa_frames_.ClearUse(frame, kPagesPerHuge);
        gpa_buddy_.Free(frame, kPagesPerHuge);
      }
      hooks_->ShootdownGuestRange(vm_id_, region << kHugeOrder, kPagesPerHuge);
      continue;
    }
    if (table_.PresentBasePages(region) == 0) {
      continue;
    }
    // Even base-mapped regions can be physically contiguous (EMA placed
    // them so); give the policy a chance to keep the whole block.
    std::vector<std::pair<uint32_t, uint64_t>> mapped;
    table_.ForEachBasePage(region, [&](uint32_t slot, uint64_t frame) {
      mapped.emplace_back(slot, frame);
    });
    bool contiguous = mapped.size() == kPagesPerHuge &&
                      mapped.front().second % kPagesPerHuge == 0;
    if (contiguous) {
      for (uint32_t i = 1; i < mapped.size(); ++i) {
        if (mapped[i].second != mapped.front().second + i) {
          contiguous = false;
          break;
        }
      }
    }
    const uint64_t first_frame = mapped.front().second;
    for (const auto& [slot, frame] : mapped) {
      (void)frame;
      table_.UnmapBase((region << kHugeOrder) + slot);
    }
    if (contiguous &&
        policy_->OnFreeRegion(*this, region, first_frame, /*contiguous=*/true)) {
      // Policy retained the whole block.
    } else {
      for (const auto& [slot, frame] : mapped) {
        (void)slot;
        gpa_frames_.ClearUse(frame, 1);
        gpa_buddy_.Free(frame, 1);
      }
    }
    hooks_->ShootdownGuestRange(vm_id_, region << kHugeOrder, kPagesPerHuge);
  }
  ForgetSwapped(vma->start_page, vma->pages);
  policy_->OnVmaDestroy(vma_id);
  aspace_.Remove(vma_id);
}

base::Cycles GuestKernel::AfterFramesWritten(uint64_t frame,
                                             uint64_t count) {
  return hooks_->EnsureHostBacking(vm_id_, frame, count);
}

void GuestKernel::ShootdownRegion(uint64_t region) {
  hooks_->ShootdownGuestRange(vm_id_, region << kHugeOrder, kPagesPerHuge);
  if (tracer_ != nullptr) {
    tracer_->Emit(trace::EventKind::kShootdown, layer_, vm_id_,
                  region << kHugeOrder, kPagesPerHuge);
  }
}

}  // namespace osim
