#include "os/balloon.h"

#include <algorithm>

#include "base/check.h"
#include "base/types.h"

namespace osim {

using base::kHugeOrder;
using base::kPagesPerHuge;

BalloonDriver::BalloonDriver(Machine* machine, int32_t vm_id,
                             bool alignment_aware)
    : machine_(machine), vm_id_(vm_id), alignment_aware_(alignment_aware) {
  SIM_CHECK(machine_ != nullptr);
}

void BalloonDriver::ReleaseHostBacking(uint64_t gfn) {
  HostVmKernel& host = machine_->vm(vm_id_).host_slice();
  mmu::PageTable& ept = host.table();
  const auto backing = ept.Lookup(gfn);
  if (!backing.has_value()) {
    return;  // never touched; nothing to release
  }
  const uint64_t region = gfn >> kHugeOrder;
  if (ept.IsHugeMapped(region)) {
    // The balloon releases at base-page granularity; a huge backing must
    // be split first (the hugepage-ballooning problem the paper cites).
    host.Demote(region);
    ++stats_.huge_backings_broken;
  }
  const uint64_t frame = ept.UnmapBase(gfn);
  if (machine_->host().frames().info(frame).use != vmem::FrameUse::kPinned) {
    machine_->host().frames().ClearUse(frame, 1);
    machine_->host().buddy().Free(frame, 1);
    ++stats_.host_frames_released;
  }
  machine_->FlushVmTranslations(vm_id_);
  host.ChargeOverhead(host.costs().tlb_shootdown);
}

uint64_t BalloonDriver::Inflate(uint64_t frames) {
  GuestKernel& guest = machine_->vm(vm_id_).guest();
  auto& buddy = guest.buddy();
  uint64_t inflated = 0;

  if (alignment_aware_) {
    // Source whole guest-physical regions whose backing is NOT a huge EPT
    // leaf (taking those costs no alignment); misaligned host huge regions
    // are already tracked for repair and also preferred over aligned ones.
    const mmu::PageTable& ept = machine_->vm(vm_id_).host_slice().table();
    for (uint64_t region = 0;
         region * kPagesPerHuge < buddy.frame_count() && inflated < frames;
         ++region) {
      if (ept.IsHugeMapped(region)) {
        continue;  // preserve hugely-backed regions
      }
      const uint64_t first = region * kPagesPerHuge;
      for (uint64_t f = first;
           f < first + kPagesPerHuge && inflated < frames; ++f) {
        if (buddy.AllocateAt(f, 1)) {
          guest.gpa_frames().SetUse(f, 1, vm_id_, vmem::FrameUse::kPinned);
          held_.push_back(f);
          ReleaseHostBacking(f);
          ++inflated;
        }
      }
    }
  }
  // Fall back to (or start with, for the naive balloon) whatever the buddy
  // hands out.
  while (inflated < frames) {
    const uint64_t f = buddy.Allocate(0);
    if (f == vmem::kInvalidFrame) {
      break;
    }
    guest.gpa_frames().SetUse(f, 1, vm_id_, vmem::FrameUse::kPinned);
    held_.push_back(f);
    ReleaseHostBacking(f);
    ++inflated;
  }
  stats_.inflated_frames += inflated;
  return inflated;
}

uint64_t BalloonDriver::Deflate(uint64_t frames) {
  GuestKernel& guest = machine_->vm(vm_id_).guest();
  const uint64_t count = std::min<uint64_t>(frames, held_.size());
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t f = held_.back();
    held_.pop_back();
    guest.gpa_frames().ClearUse(f, 1);
    guest.buddy().Free(f, 1);
  }
  stats_.inflated_frames -= count;
  return count;
}

}  // namespace osim
