// Virtual memory areas of a guest process and the address-space map that
// owns them.
//
// The simulator gives each VM a single workload process (matching the
// paper's setup of one workload per VM).  VMAs are created huge-aligned —
// as Linux does for anonymous mmap()s above the THP size — so a VMA's
// alignment never prevents huge mappings; what decides alignment is the
// *physical* placement the policies choose.
#ifndef SRC_OS_VMA_H_
#define SRC_OS_VMA_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "base/types.h"

namespace osim {

struct Vma {
  int32_t id = -1;
  uint64_t start_page = 0;  // first VPN
  uint64_t pages = 0;       // length
  bool touched = false;     // any page ever faulted in

  uint64_t end_page() const { return start_page + pages; }
  bool Contains(uint64_t vpn) const {
    return vpn >= start_page && vpn < end_page();
  }
  // True if the whole 2 MiB region lies inside this VMA.
  bool CoversRegion(uint64_t region) const {
    const uint64_t first = region << base::kHugeOrder;
    return first >= start_page && first + base::kPagesPerHuge <= end_page();
  }
};

class AddressSpace {
 public:
  // Virtual layout starts at 4 GiB to keep low prefixes distinct from
  // guest-physical frame numbers in traces.
  explicit AddressSpace(uint64_t first_page = 1ull << 20);

  // Creates an anonymous VMA of `pages` pages at a huge-aligned address,
  // with a guard gap after the previous VMA.
  Vma& MapAnonymous(uint64_t pages);

  // Removes the VMA record (the kernel frees its pages first).
  void Remove(int32_t vma_id);

  Vma* Find(uint64_t vpn);
  Vma* FindById(int32_t vma_id);

  // All live VMAs in address order.
  std::vector<Vma*> Vmas();
  size_t vma_count() const { return vmas_.size(); }

 private:
  uint64_t next_page_;
  int32_t next_id_ = 0;
  std::map<uint64_t, Vma> vmas_;  // keyed by start_page
};

}  // namespace osim

#endif  // SRC_OS_VMA_H_
