// Callbacks from the kernels back into the machine.
//
// Kernels mutate page tables; the machine owns the per-VM translation
// engines (TLBs).  These hooks let a kernel invalidate stale translations
// and read global state without a dependency cycle.
#ifndef SRC_OS_HOOKS_H_
#define SRC_OS_HOOKS_H_

#include <cstdint>

#include "base/types.h"

namespace osim {

class MachineHooks {
 public:
  virtual ~MachineHooks() = default;

  // Invalidates combined translations for a guest-virtual range of one VM
  // (guest-layer remap: targeted shootdown).
  virtual void ShootdownGuestRange(int32_t vm_id, uint64_t vpn,
                                   uint64_t pages) = 0;

  // Invalidates all combined translations of one VM (host-layer remap:
  // models INVEPT single-context).
  virtual void FlushVmTranslations(int32_t vm_id) = 0;

  // Cumulative TLB misses of the VM's translation engine.  Callers that
  // need deltas (Gemini Algorithm 1) keep their own cursor.
  virtual uint64_t VmTlbMisses(int32_t vm_id) const = 0;

  // The guest kernel wrote the guest-physical range in kernel context
  // (huge-fault zeroing, migration copies).  Ensures EPT backing exists —
  // each unbacked page is an EPT violation handled by the host — and
  // returns the cycles that took.  A host policy that backs the first
  // violation with a huge EPT leaf makes the remaining writes free, so the
  // cost of zeroing a guest huge page depends heavily on host behaviour.
  virtual base::Cycles EnsureHostBacking(int32_t vm_id, uint64_t gfn,
                                         uint64_t count) = 0;

  // Current simulated time in cycles.
  virtual base::Cycles Now() const = 0;
};

}  // namespace osim

#endif  // SRC_OS_HOOKS_H_
