// Shared memory-management mechanics for the guest and host kernels.
//
// Every policy (THP, Ingens, HawkEye, CA-paging, Translation Ranger,
// Gemini, ...) runs on these byte-identical mechanics; the baselines differ
// only in the decisions they return through the HugePagePolicy interface.
// KernelBase implements the KernelOps capability surface policies program
// against: allocation with placement hints, huge-fault handling with
// optional synchronous compaction, in-place and migration-based promotion,
// demotion, cost accounting, and TLB invalidation via layer-specific
// shootdown (implemented by GuestKernel / HostVmKernel).
#ifndef SRC_OS_KERNEL_BASE_H_
#define SRC_OS_KERNEL_BASE_H_

#include <memory>

#include "base/types.h"
#include "mmu/page_table.h"
#include "os/cost_model.h"
#include "os/hooks.h"
#include "policy/policy.h"
#include "trace/tracer.h"
#include "vmem/buddy_allocator.h"
#include "vmem/frame_space.h"
#include "vmem/tier_space.h"

namespace osim {

struct KernelStats {
  uint64_t base_faults = 0;
  uint64_t huge_faults = 0;
  uint64_t failed_huge_allocs = 0;
  uint64_t promotions_in_place = 0;
  uint64_t promotions_migrated = 0;
  uint64_t demotions = 0;
  uint64_t pages_copied = 0;
  uint64_t pages_swapped_out = 0;
  uint64_t swap_ins = 0;
  base::Cycles fault_cycles = 0;     // synchronous, stalls the access
  base::Cycles overhead_cycles = 0;  // asynchronous daemon work
};

class KernelBase : public policy::KernelOps {
 public:
  // `buddy`, `frames` are owned by the caller (a guest kernel owns its own;
  // the per-VM host kernels share the host's).
  KernelBase(base::Layer layer, int32_t vm_id, vmem::BuddyAllocator* buddy,
             vmem::FrameSpace* frames, const CostModel& costs,
             MachineHooks* hooks,
             std::unique_ptr<policy::HugePagePolicy> policy);
  ~KernelBase() override;

  // --- KernelOps ----------------------------------------------------------
  base::Layer layer() const override { return layer_; }
  int32_t vm_id() const override { return vm_id_; }
  vmem::BuddyAllocator& buddy() override { return *buddy_; }
  const vmem::BuddyAllocator& buddy() const override { return *buddy_; }
  mmu::PageTable& table() override { return table_; }
  const mmu::PageTable& table() const override { return table_; }
  vmem::FrameSpace& frames() override { return *frames_; }
  double Fmfi() const override;
  void ChargeOverhead(base::Cycles cycles) override;
  void PromoteInPlace(uint64_t region) override;
  bool PromoteWithMigration(uint64_t region, uint64_t target_frame) override;
  void Demote(uint64_t region) override;
  uint64_t DrainTlbMisses() override;
  base::Cycles Now() const override { return hooks_->Now(); }
  trace::Tracer* tracer() const override { return tracer_; }

  // --- Kernel surface -----------------------------------------------------
  void DaemonTick() { policy_->OnDaemonTick(*this); }

  // Frees at least `need` frames under memory pressure: asks the policy to
  // release reserves, then swaps out the coldest base-mapped pages,
  // demoting huge regions (policy-ranked) when only huge mappings remain.
  // `exclude_region` (the faulting region) is never chosen as a swap
  // victim, so the fault that triggered reclaim cannot thrash itself.
  // Returns false if nothing more can be reclaimed (true OOM).
  bool ReclaimFrames(uint64_t need,
                     uint64_t exclude_region = vmem::kInvalidFrame);

  // Pages currently swapped out (guest layer: VPNs; host layer: GFNs).
  size_t swapped_pages() const { return tier_->resident(vm_id_); }

  // The tier swapped-out pages live in.  By default each kernel owns an
  // unbounded private tier priced at the legacy swap costs (a plain swap
  // device); the machine points host kernel slices at its shared,
  // capacity-bounded far tier instead (see vmem/tier_space.h).
  vmem::TierSpace& tier() { return *tier_; }
  const vmem::TierSpace& tier() const { return *tier_; }

  // Re-points this kernel at `tier` (not owned; must outlive the kernel).
  // Must be called before any swap activity — far-resident records do not
  // migrate between tiers.
  void AttachTier(vmem::TierSpace* tier);

  // Proactive reclaim entry point (the host reclaim daemon): demotes the
  // region's huge mapping if present, then swaps out up to `limit` of its
  // base pages to the tier.  Returns pages actually demoted (0 when the
  // tier is full or nothing was reclaimable).
  uint64_t DemoteRegionToTier(uint64_t region, uint64_t limit);

  policy::HugePagePolicy& policy() { return *policy_; }
  const KernelStats& stats() const { return stats_; }
  const CostModel& costs() const { return costs_; }
  MachineHooks& hooks() { return *hooks_; }

  // Wires this kernel to the machine's tracer.  The machine tags the
  // kernel's buddy allocator separately (the host buddy is shared by every
  // VM and carries vm_id -1).
  void AttachTracer(trace::Tracer* tracer);

 protected:
  // Common demand-fault path.  `region_coverable` says whether a huge
  // mapping for the faulting region is geometrically possible (VMA covers
  // it / region inside guest memory).  Returns the cycles to charge
  // synchronously to the faulting access.
  base::Cycles DoFault(const policy::FaultInfo& info, bool region_coverable);

  // Layer-specific TLB invalidation after a remap of `region`.
  virtual void ShootdownRegion(uint64_t region) = 0;

  // Unmaps + frees up to `limit` present pages of a base-mapped region,
  // marking them swapped.  Returns pages reclaimed.
  uint64_t SwapOutRegion(uint64_t region, uint64_t limit);

  // Drops swap records for a page range (VMA teardown).
  void ForgetSwapped(uint64_t page, uint64_t count);

  // Called after the kernel writes freshly mapped frames (zeroing a huge
  // page, migration copies).  The guest kernel uses this to fault in EPT
  // backing; the host override is a no-op.  Returns the cycles spent.
  virtual base::Cycles AfterFramesWritten(uint64_t frame, uint64_t count) {
    (void)frame;
    (void)count;
    return 0;
  }

  virtual base::Cycles BaseFaultCost() const = 0;
  virtual base::Cycles HugeFaultCost() const = 0;

  base::Layer layer_;
  int32_t vm_id_;
  vmem::BuddyAllocator* buddy_;
  vmem::FrameSpace* frames_;
  CostModel costs_;
  MachineHooks* hooks_;
  trace::Tracer* tracer_ = nullptr;
  std::unique_ptr<policy::HugePagePolicy> policy_;
  mmu::PageTable table_;
  KernelStats stats_;
  uint64_t tlb_miss_cursor_ = 0;
  // Where swapped-out pages live; a later fault on one pays the tier's
  // refault penalty.  Defaults to owned_tier_ (unbounded, legacy swap
  // costs); AttachTier() re-points it at a shared machine-owned tier.
  std::unique_ptr<vmem::TierSpace> owned_tier_;
  vmem::TierSpace* tier_ = nullptr;
};

}  // namespace osim

#endif  // SRC_OS_KERNEL_BASE_H_
