#include "os/kernel_base.h"

#include <utility>
#include <vector>

#include "base/check.h"

namespace osim {

using base::kHugeOrder;
using base::kPagesPerHuge;
using vmem::kInvalidFrame;

KernelBase::KernelBase(base::Layer layer, int32_t vm_id,
                       vmem::BuddyAllocator* buddy, vmem::FrameSpace* frames,
                       const CostModel& costs, MachineHooks* hooks,
                       std::unique_ptr<policy::HugePagePolicy> policy)
    : layer_(layer),
      vm_id_(vm_id),
      buddy_(buddy),
      frames_(frames),
      costs_(costs),
      hooks_(hooks),
      policy_(std::move(policy)),
      owned_tier_(std::make_unique<vmem::TierSpace>(
          /*capacity_pages=*/0, costs.swap_out_page, costs.swap_in_page)),
      tier_(owned_tier_.get()) {
  SIM_CHECK(buddy_ != nullptr && frames_ != nullptr && hooks_ != nullptr);
  SIM_CHECK(policy_ != nullptr);
}

KernelBase::~KernelBase() = default;

void KernelBase::AttachTier(vmem::TierSpace* tier) {
  SIM_CHECK(tier != nullptr);
  SIM_CHECK(tier_->resident(vm_id_) == 0);  // no records to migrate
  tier_ = tier;
}

void KernelBase::AttachTracer(trace::Tracer* tracer) { tracer_ = tracer; }

double KernelBase::Fmfi() const { return buddy_->Fmfi(kHugeOrder); }

void KernelBase::ChargeOverhead(base::Cycles cycles) {
  stats_.overhead_cycles += cycles;
}

base::Cycles KernelBase::DoFault(const policy::FaultInfo& info,
                                 bool region_coverable) {
  const policy::FaultDecision d = policy_->OnFault(*this, info);
  base::Cycles cost = 0;
  if (tier_->Refault(vm_id_, info.page)) {
    // The page was demoted earlier; migrate it back synchronously.
    cost += tier_->refault_cost();
    ++stats_.swap_ins;
    if (tracer_ != nullptr) {
      tracer_->Emit(trace::EventKind::kTierRefault, layer_, vm_id_, info.page,
                    tier_->resident(vm_id_));
    }
  }

  if (d.try_huge && region_coverable && !table_.IsHugeMapped(info.region) &&
      table_.PresentBasePages(info.region) == 0) {
    uint64_t frame = kInvalidFrame;
    if (d.target_frame != kInvalidFrame) {
      const uint64_t target = d.target_frame & ~(kPagesPerHuge - 1);
      if (buddy_->AllocateAt(target, kPagesPerHuge)) {
        frame = target;
      }
    }
    if (frame == kInvalidFrame) {
      frame = buddy_->Allocate(kHugeOrder);
    }
    if (frame == kInvalidFrame && d.synchronous_compaction) {
      // Linux THP "always": the fault stalls on direct compaction.  Under
      // the fragmentation the paper studies, compaction mostly fails to
      // produce a 2 MiB block because pinned pages cannot move; we charge
      // the stall and retry once in case the buddy recovered.
      cost += costs_.direct_compaction;
      frame = buddy_->Allocate(kHugeOrder);
    }
    if (frame != kInvalidFrame) {
      table_.MapHuge(info.region, frame);
      frames_->SetUse(frame, kPagesPerHuge, vm_id_, vmem::FrameUse::kAnonymous);
      cost += HugeFaultCost();
      // Zeroing the whole 2 MiB touches every backing frame.
      cost += AfterFramesWritten(frame, kPagesPerHuge);
      ++stats_.huge_faults;
      stats_.fault_cycles += cost;
      return cost;
    }
    ++stats_.failed_huge_allocs;
  }

  uint64_t frame = kInvalidFrame;
  if (d.target_frame != kInvalidFrame && buddy_->AllocateAt(d.target_frame, 1)) {
    frame = d.target_frame;
  }
  if (frame == kInvalidFrame) {
    frame = buddy_->Allocate(0);
  }
  if (frame == kInvalidFrame && ReclaimFrames(1, info.region)) {
    frame = buddy_->Allocate(0);
  }
  SIM_CHECK_MSG(frame != kInvalidFrame,
                "%s layer out of memory (vm %d): %llu/%llu frames free",
                base::LayerName(layer_), vm_id_,
                static_cast<unsigned long long>(buddy_->free_frames()),
                static_cast<unsigned long long>(buddy_->frame_count()));
  table_.MapBase(info.page, frame);
  frames_->SetUse(frame, 1, vm_id_, vmem::FrameUse::kAnonymous);
  cost += BaseFaultCost();
  ++stats_.base_faults;
  stats_.fault_cycles += cost;
  return cost;
}

void KernelBase::PromoteInPlace(uint64_t region) {
  table_.PromoteInPlace(region);
  ChargeOverhead(costs_.promote_in_place);
  ++stats_.promotions_in_place;
  if (tracer_ != nullptr) {
    tracer_->Emit(trace::EventKind::kPromoteInPlace, layer_, vm_id_, region);
  }
  // Frames are unchanged, so stale base-granularity TLB entries still
  // translate correctly; no shootdown is required (they age out and are
  // replaced by one 2 MiB entry on the next miss).
}

bool KernelBase::PromoteWithMigration(uint64_t region, uint64_t target_frame) {
  SIM_CHECK(!table_.IsHugeMapped(region));
  uint64_t frame = kInvalidFrame;
  if (target_frame != kInvalidFrame) {
    const uint64_t target = target_frame & ~(kPagesPerHuge - 1);
    if (buddy_->AllocateAt(target, kPagesPerHuge)) {
      frame = target;
    }
  }
  if (frame == kInvalidFrame) {
    frame = buddy_->Allocate(kHugeOrder);
  }
  if (frame == kInvalidFrame) {
    return false;
  }
  frames_->SetUse(frame, kPagesPerHuge, vm_id_, vmem::FrameUse::kAnonymous);

  uint64_t copied = 0;
  if (table_.PresentBasePages(region) == 0) {
    // Nothing to migrate; this degenerates to a fresh huge mapping.
    table_.MapHuge(region, frame);
    ChargeOverhead(costs_.promote_in_place +
                   AfterFramesWritten(frame, kPagesPerHuge));
  } else {
    const auto old_pages = table_.PromoteWithMigration(region, frame);
    for (const auto& [slot, old_frame] : old_pages) {
      (void)slot;
      if (frames_->info(old_frame).use == vmem::FrameUse::kPinned) {
        continue;  // shared (deduplicated) frame: not ours to free
      }
      frames_->ClearUse(old_frame, 1);
      buddy_->Free(old_frame, 1);
    }
    stats_.pages_copied += old_pages.size();
    copied = old_pages.size();
    ChargeOverhead(costs_.copy_page * old_pages.size() +
                   costs_.tlb_shootdown + costs_.promote_in_place +
                   AfterFramesWritten(frame, kPagesPerHuge));
    ShootdownRegion(region);
  }
  ++stats_.promotions_migrated;
  if (tracer_ != nullptr) {
    tracer_->Emit(trace::EventKind::kPromoteMigrate, layer_, vm_id_, region,
                  frame, copied);
  }
  return true;
}

void KernelBase::Demote(uint64_t region) {
  table_.Demote(region);
  ChargeOverhead(costs_.promote_in_place);
  ++stats_.demotions;
  if (tracer_ != nullptr) {
    tracer_->Emit(trace::EventKind::kDemote, layer_, vm_id_, region);
  }
  // Same frames at finer granularity; a stale 2 MiB TLB entry would be
  // incorrect only if pages are subsequently remapped, which is always
  // preceded by a shootdown — but drop it eagerly for strictness.
  ShootdownRegion(region);
}

uint64_t KernelBase::SwapOutRegion(uint64_t region, uint64_t limit) {
  std::vector<std::pair<uint32_t, uint64_t>> pages;
  table_.ForEachBasePage(region, [&](uint32_t slot, uint64_t frame) {
    if (pages.size() < limit) {
      pages.emplace_back(slot, frame);
    }
  });
  uint64_t demoted = 0;
  for (const auto& [slot, frame] : pages) {
    const uint64_t page = (region << kHugeOrder) + slot;
    if (!tier_->Demote(vm_id_, page)) {
      break;  // far tier at capacity: the rest stays mapped in near memory
    }
    table_.UnmapBase(page);
    if (frames_->info(frame).use != vmem::FrameUse::kPinned) {
      frames_->ClearUse(frame, 1);
      buddy_->Free(frame, 1);
    }
    ChargeOverhead(tier_->demote_cost());
    ++stats_.pages_swapped_out;
    ++demoted;
  }
  if (demoted > 0) {
    ShootdownRegion(region);
    if (tracer_ != nullptr) {
      tracer_->Emit(trace::EventKind::kTierDemote, layer_, vm_id_, region,
                    demoted, tier_->resident(vm_id_));
    }
  }
  return demoted;
}

void KernelBase::ForgetSwapped(uint64_t page, uint64_t count) {
  tier_->Forget(vm_id_, page, count);
}

uint64_t KernelBase::DemoteRegionToTier(uint64_t region, uint64_t limit) {
  if (limit == 0) {
    return 0;
  }
  if (table_.IsHugeMapped(region)) {
    Demote(region);
  }
  return SwapOutRegion(region, limit);
}

bool KernelBase::ReclaimFrames(uint64_t need, uint64_t exclude_region) {
  policy_->OnMemoryPressure(*this);
  constexpr uint64_t kBatch = 256;
  int guard = 0;
  while (buddy_->free_frames() < need && ++guard <= 128) {
    // Swap the coldest base-mapped region's pages first.
    uint64_t victim = vmem::kInvalidFrame;
    uint64_t victim_heat = ~0ull;
    table_.ForEachBaseRegion([&](uint64_t region, uint32_t present) {
      (void)present;
      if (region == exclude_region) {
        return;
      }
      const uint64_t heat = table_.AccessCount(region);
      if (heat < victim_heat) {
        victim_heat = heat;
        victim = region;
      }
    });
    if (victim != vmem::kInvalidFrame && SwapOutRegion(victim, kBatch) > 0) {
      continue;
    }
    // Only huge mappings remain: demote the most expendable one, making
    // its pages swappable on the next iteration.
    const auto victims = policy_->RankHugeDemotionVictims(*this, 1);
    if (victims.empty()) {
      return buddy_->free_frames() >= need;
    }
    Demote(victims[0]);
  }
  return buddy_->free_frames() >= need;
}

uint64_t KernelBase::DrainTlbMisses() {
  const uint64_t total = hooks_->VmTlbMisses(vm_id_);
  const uint64_t delta = total - tlb_miss_cursor_;
  tlb_miss_cursor_ = total;
  return delta;
}

}  // namespace osim
