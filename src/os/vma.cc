#include "os/vma.h"

#include "base/check.h"

namespace osim {

AddressSpace::AddressSpace(uint64_t first_page) : next_page_(first_page) {
  next_page_ = base::HugeAlignUp(next_page_ << base::kPageShift) >> base::kPageShift;
}

Vma& AddressSpace::MapAnonymous(uint64_t pages) {
  SIM_CHECK(pages > 0);
  Vma vma;
  vma.id = next_id_++;
  vma.start_page = next_page_;
  vma.pages = pages;
  // Advance past the VMA plus one huge region of guard gap, keeping the
  // next VMA huge-aligned.
  next_page_ = base::HugeAlignUp((vma.end_page() + base::kPagesPerHuge)
                                 << base::kPageShift) >>
               base::kPageShift;
  auto [it, inserted] = vmas_.emplace(vma.start_page, vma);
  SIM_CHECK(inserted);
  return it->second;
}

void AddressSpace::Remove(int32_t vma_id) {
  for (auto it = vmas_.begin(); it != vmas_.end(); ++it) {
    if (it->second.id == vma_id) {
      vmas_.erase(it);
      return;
    }
  }
  SIM_CHECK_MSG(false, "Remove of unknown vma %d", vma_id);
}

Vma* AddressSpace::Find(uint64_t vpn) {
  auto it = vmas_.upper_bound(vpn);
  if (it == vmas_.begin()) {
    return nullptr;
  }
  --it;
  return it->second.Contains(vpn) ? &it->second : nullptr;
}

Vma* AddressSpace::FindById(int32_t vma_id) {
  for (auto& [start, vma] : vmas_) {
    (void)start;
    if (vma.id == vma_id) {
      return &vma;
    }
  }
  return nullptr;
}

std::vector<Vma*> AddressSpace::Vmas() {
  std::vector<Vma*> out;
  out.reserve(vmas_.size());
  for (auto& [start, vma] : vmas_) {
    (void)start;
    out.push_back(&vma);
  }
  return out;
}

}  // namespace osim
