// The eight systems the paper compares (§2.3, §6.1) and factories that
// instantiate a VM under each of them.
#ifndef SRC_HARNESS_SYSTEMS_H_
#define SRC_HARNESS_SYSTEMS_H_

#include <memory>
#include <string_view>
#include <vector>

#include "gemini/gemini_policy.h"
#include "os/machine.h"
#include "policy/policy.h"

namespace harness {

enum class SystemKind : uint8_t {
  kHostBVmB,       // base pages only, both layers
  kMisalignment,   // guest base-only, host huge-only
  kThp,            // Linux THP in both layers
  kCaPaging,       // CA-paging (software) in both layers
  kRanger,         // Translation Ranger in both layers
  kHawkEye,        // HawkEye in both layers
  kIngens,         // Ingens in both layers
  kGemini,         // the paper's system
};

std::string_view SystemName(SystemKind kind);

// The paper's comparison order (used as figure columns).
std::vector<SystemKind> AllSystems();
// Systems whose well-aligned rate the paper tabulates (Tables 1/3/4).
std::vector<SystemKind> AlignmentTableSystems();

// Policy factories for the non-Gemini systems.
std::unique_ptr<policy::HugePagePolicy> MakeGuestPolicy(SystemKind kind);
std::unique_ptr<policy::HugePagePolicy> MakeHostPolicy(SystemKind kind);

// Adds a VM running under `kind` to the machine (wires the Gemini runtime
// when needed).  `gemini_options` overrides the defaults for kGemini (used
// by the Figure 16 ablation).
osim::VirtualMachine& AddSystemVm(
    osim::Machine& machine, SystemKind kind, uint64_t gfn_count,
    const gemini::GeminiOptions* gemini_options = nullptr);

}  // namespace harness

#endif  // SRC_HARNESS_SYSTEMS_H_
