#include "harness/experiment.h"

#include <chrono>
#include <cstdlib>

#include "base/check.h"
#include "base/rng.h"
#include "os/reclaim_daemon.h"
#include "workload/epoch_executor.h"

namespace harness {

namespace {

// Models VM boot: the guest kernel and early services touch scattered
// memory and free most of it.  The guest frames return to the guest buddy,
// but the EPT keeps base-grained mappings for everything touched — so the
// host can no longer create huge pages there at fault time, only by
// collapse.  This is the state a VM is really in when a workload starts.
void SimulateGuestBoot(osim::Machine& machine, int32_t vm_id,
                       double fraction, uint64_t gfn_count, uint64_t seed) {
  if (fraction <= 0.0) {
    return;
  }
  osim::GuestKernel& guest = machine.vm(vm_id).guest();
  (void)gfn_count;
  // Boot traffic is kernel code, slab and page-cache data: many mappings
  // smaller than a huge page, never huge-mapped by the guest, and — the
  // property the utilization-based promoters key on — only partially dense
  // at 2 MiB granularity.  An eager or greedy host policy that backs every
  // sparsely-touched guest-physical region with a 2 MiB page burns its
  // scarce contiguous blocks on this traffic (the THP bloat problem);
  // utilization-gated policies skip it; Gemini conserves and books.
  constexpr uint64_t kBootVmaPages = 256;  // 1 MiB mappings
  constexpr double kBootTouchDensity = 0.45;
  base::Rng rng(seed ^ 0xb007b007ull);
  // Span sized against currently-free guest memory (the fragmenter holds a
  // seed-dependent share) so boot always fits with slack.
  uint64_t span = static_cast<uint64_t>(
      fraction * 0.95 * static_cast<double>(guest.buddy().free_frames()));
  std::vector<int32_t> vma_ids;
  while (span > 0) {
    const uint64_t len = std::min(span, kBootVmaPages);
    osim::Vma& vma = guest.aspace().MapAnonymous(len);
    vma_ids.push_back(vma.id);
    for (uint64_t p = 0; p < len; ++p) {
      if (rng.NextBool(kBootTouchDensity)) {
        machine.Access(vm_id, vma.start_page + p, /*work_cycles=*/20);
      }
    }
    span -= len;
  }
  for (int32_t id : vma_ids) {
    guest.UnmapVma(id);
  }
}

// Resolves the bed's TLB arrangement (mode, boot split, repartitioner
// knobs) into the machine config.  Explicit BedOptions values win over the
// GEMINI_REPART_* environment knobs; both default to the machine's own
// fallbacks (daemon-period interval, 1-way floor).
void ApplyTlbOptions(const BedOptions& options, osim::MachineConfig* config) {
  // Ride-along machine knobs that every bed assembly site needs: the
  // tiered-memory reclaim config maps straight through.
  config->reclaim = options.reclaim;
  config->tlb_mode = options.tlb_mode;
  config->tlb_partition_ways = options.tlb_partition_ways;
  config->tlb_repart_interval = options.tlb_repart_interval != 0
                                    ? options.tlb_repart_interval
                                    : RepartIntervalFromEnv(0);
  config->tlb_repart_min_ways = options.tlb_repart_min_ways != 0
                                    ? options.tlb_repart_min_ways
                                    : RepartMinWaysFromEnv(1);
}

}  // namespace

TestBed MakeTestBed(SystemKind kind, const BedOptions& options,
                    const gemini::GeminiOptions* gemini_options) {
  TestBed bed;
  osim::MachineConfig config;
  config.host_frames = options.host_frames;
  config.seed = options.seed;
  ApplyTlbOptions(options, &config);
  bed.machine = std::make_unique<osim::Machine>(config);
  bed.sampler = trace::SetupTracing(*bed.machine, options.trace);
  osim::VirtualMachine& vm =
      AddSystemVm(*bed.machine, kind, options.vm_gfn_count, gemini_options);
  bed.vm_id = vm.id();
  if (options.fragmented) {
    // The paper fragments both guest- and host-level memory before each
    // run (§6.1), measuring with FMFI.
    bed.machine->FragmentHostMemory(options.host_fragmentation_target);
    bed.machine->FragmentGuestMemory(bed.vm_id, options.fragmentation_target);
  }
  SimulateGuestBoot(*bed.machine, bed.vm_id, options.boot_noise_fraction,
                    options.vm_gfn_count, options.seed);
  return bed;
}

workload::RunResult RunCleanSlate(SystemKind kind,
                                  const workload::WorkloadSpec& spec,
                                  const BedOptions& options) {
  TestBed bed = MakeTestBed(kind, options);
  workload::WorkloadDriver driver(bed.machine.get(), bed.vm_id);
  workload::DriverOptions driver_options;
  driver_options.seed = options.seed + 1000;
  workload::RunResult result = driver.Run(spec, driver_options);
  trace::WriteTraceFiles(options.trace, *bed.machine, bed.sampler);
  return result;
}

workload::RunResult RunReusedVm(SystemKind kind,
                                const workload::WorkloadSpec& spec,
                                const BedOptions& options) {
  TestBed bed = MakeTestBed(kind, options);
  workload::WorkloadDriver driver(bed.machine.get(), bed.vm_id);

  // Phase 1: the large-working-set SVM run, then process exit.  Guest
  // frames go back to the guest (or to Gemini's bucket); the EPT and host
  // frames stay with the VM.
  workload::DriverOptions prefill_options;
  prefill_options.seed = options.seed + 500;
  prefill_options.teardown = true;
  driver.Run(workload::SvmPrefill(options.vm_gfn_count), prefill_options);

  // Phase 2: the measured workload in the same (now reused) VM.
  workload::DriverOptions driver_options;
  driver_options.seed = options.seed + 1000;
  workload::RunResult result = driver.Run(spec, driver_options);
  trace::WriteTraceFiles(options.trace, *bed.machine, bed.sampler);
  return result;
}

workload::RunResult RunGeminiAblation(const workload::WorkloadSpec& spec,
                                      const BedOptions& options,
                                      const gemini::GeminiOptions& gem) {
  TestBed bed = MakeTestBed(SystemKind::kGemini, options, &gem);
  workload::WorkloadDriver driver(bed.machine.get(), bed.vm_id);

  // The breakdown is measured under the reused-VM scenario, where both the
  // EMA/HB path (phase 2 allocations) and the bucket (phase 1 teardown)
  // have work to do.
  workload::DriverOptions prefill_options;
  prefill_options.seed = options.seed + 500;
  prefill_options.teardown = true;
  driver.Run(workload::SvmPrefill(options.vm_gfn_count), prefill_options);

  workload::DriverOptions driver_options;
  driver_options.seed = options.seed + 1000;
  workload::RunResult result = driver.Run(spec, driver_options);
  trace::WriteTraceFiles(options.trace, *bed.machine, bed.sampler);
  return result;
}

CollocatedResult RunCollocated(SystemKind kind,
                               const workload::WorkloadSpec& spec0,
                               const workload::WorkloadSpec& spec1,
                               const BedOptions& options) {
  osim::MachineConfig config;
  config.host_frames = options.host_frames;
  config.seed = options.seed;
  ApplyTlbOptions(options, &config);
  auto machine = std::make_unique<osim::Machine>(config);
  trace::StackSampler* sampler = trace::SetupTracing(*machine, options.trace);
  osim::VirtualMachine& vm0 =
      AddSystemVm(*machine, kind, options.vm_gfn_count);
  osim::VirtualMachine& vm1 =
      AddSystemVm(*machine, kind, options.vm_gfn_count);
  if (options.fragmented) {
    machine->FragmentHostMemory(options.host_fragmentation_target);
    machine->FragmentGuestMemory(vm0.id(), options.fragmentation_target);
    machine->FragmentGuestMemory(vm1.id(), options.fragmentation_target);
  }

  // Interleave on the epoch executor: each VM runs its per-epoch quantum
  // (default 256 ops, the grain the serial harness always used), faults
  // and daemons settle at the barrier, and the schedule — hence every
  // figure — is identical at any GEMINI_VM_THREADS.
  workload::EpochExecutorOptions xopt;
  workload::EpochExecutor exec(machine.get(), xopt);
  workload::LaneSpec l0;
  l0.spec = spec0;
  l0.options.seed = options.seed + 1000;
  workload::LaneSpec l1;
  l1.spec = spec1;
  l1.options.seed = options.seed + 2000;
  exec.AddLane(vm0.id(), l0);
  exec.AddLane(vm1.id(), l1);
  std::vector<workload::RunResult> rr = exec.Run();
  CollocatedResult result;
  result.vm0 = std::move(rr[0]);
  result.vm1 = std::move(rr[1]);
  result.interference = metrics::BuildInterferenceReport(
      machine->tlb_domain(),
      {{static_cast<uint16_t>(vm0.id()), "vm0 " + spec0.name},
       {static_cast<uint16_t>(vm1.id()), "vm1 " + spec1.name}});
  trace::WriteTraceFiles(options.trace, *machine, sampler);
  return result;
}

CollocatedManyResult RunCollocatedMany(
    SystemKind kind, const std::vector<workload::WorkloadSpec>& specs,
    const BedOptions& options, const ScaleOptions& scale) {
  SIM_CHECK(!specs.empty());
  osim::MachineConfig config;
  config.host_frames = options.host_frames;
  config.seed = options.seed;
  ApplyTlbOptions(options, &config);
  config.tlb_expected_vms = static_cast<uint32_t>(specs.size());
  if (scale.daemon_period != 0) {
    config.daemon_period = scale.daemon_period;
  }
  auto machine = std::make_unique<osim::Machine>(config);
  trace::StackSampler* sampler = trace::SetupTracing(*machine, options.trace);

  std::vector<int32_t> vm_ids;
  std::vector<std::pair<uint16_t, std::string>> labels;
  for (size_t i = 0; i < specs.size(); ++i) {
    osim::VirtualMachine& vm =
        AddSystemVm(*machine, kind, options.vm_gfn_count);
    vm_ids.push_back(vm.id());
    labels.emplace_back(static_cast<uint16_t>(vm.id()),
                        "vm" + std::to_string(i) + " " + specs[i].name);
  }
  if (options.fragmented) {
    machine->FragmentHostMemory(options.host_fragmentation_target);
    for (const int32_t id : vm_ids) {
      machine->FragmentGuestMemory(id, options.fragmentation_target);
    }
  }
  for (const int32_t id : vm_ids) {
    SimulateGuestBoot(*machine, id, options.boot_noise_fraction,
                      options.vm_gfn_count, options.seed + id);
  }

  workload::EpochExecutorOptions xopt;
  xopt.threads = scale.threads;
  xopt.quantum = scale.quantum;
  xopt.load_phases = scale.load_phases;
  xopt.load_phase_epochs = scale.load_phase_epochs;
  workload::EpochExecutor exec(machine.get(), xopt);
  for (size_t i = 0; i < specs.size(); ++i) {
    workload::LaneSpec lane;
    lane.spec = specs[i];
    lane.options.seed = options.seed + 1000 * (i + 1);
    lane.options.teardown = scale.teardown_on_finish;
    lane.arrival_epoch =
        scale.wave_size == 0 ? 0 : (i / scale.wave_size) * scale.wave_epochs;
    lane.phase_offset = i;
    exec.AddLane(vm_ids[i], lane);
  }

  CollocatedManyResult result;
  const auto wall_begin = std::chrono::steady_clock::now();
  result.vms = exec.Run();
  const auto wall_end = std::chrono::steady_clock::now();
  result.exec_wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_begin)
          .count();
  result.epochs = exec.epochs();
  result.parallel_ops = exec.parallel_ops();
  result.serial_ops = exec.serial_ops();
  result.interference =
      metrics::BuildInterferenceReport(machine->tlb_domain(), labels);
  result.final_host_fmfi = machine->host().Fmfi();
  if (const vmem::TierSpace* tier = machine->host_tier()) {
    result.tier_resident_total = tier->resident_total();
    result.tier_peak_resident = tier->peak_resident();
  }
  if (const osim::ReclaimDaemon* daemon = machine->reclaim_daemon()) {
    result.reclaim_passes = daemon->stats().passes;
    result.reclaim_pages_demoted = daemon->stats().pages_demoted;
  }
  trace::WriteTraceFiles(options.trace, *machine, sampler);
  return result;
}

workload::WorkloadSpec ScaleSpec(const workload::WorkloadSpec& spec,
                                 double op_scale) {
  workload::WorkloadSpec scaled = spec;
  scaled.ops = std::max<uint64_t>(
      10000, static_cast<uint64_t>(static_cast<double>(spec.ops) * op_scale));
  if (scaled.churn_period_ops != 0) {
    scaled.churn_period_ops = std::max<uint64_t>(
        5000, static_cast<uint64_t>(
                  static_cast<double>(spec.churn_period_ops) * op_scale));
  }
  return scaled;
}

bool FastMode() {
  const char* env = std::getenv("GEMINI_FAST");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

bool ParseTlbShareMode(const std::string& name, mmu::TlbShareMode* mode) {
  if (name == "private") {
    *mode = mmu::TlbShareMode::kPrivate;
  } else if (name == "shared") {
    *mode = mmu::TlbShareMode::kShared;
  } else if (name == "partitioned") {
    *mode = mmu::TlbShareMode::kPartitioned;
  } else if (name == "dynamic") {
    *mode = mmu::TlbShareMode::kDynamic;
  } else {
    return false;
  }
  return true;
}

uint64_t RepartIntervalFromEnv(uint64_t fallback) {
  const char* env = std::getenv("GEMINI_REPART_INTERVAL");
  if (env == nullptr || env[0] == '\0') {
    return fallback;
  }
  return std::strtoull(env, nullptr, 10);
}

uint32_t RepartMinWaysFromEnv(uint32_t fallback) {
  const char* env = std::getenv("GEMINI_REPART_MIN_WAYS");
  if (env == nullptr || env[0] == '\0') {
    return fallback;
  }
  const uint64_t v = std::strtoull(env, nullptr, 10);
  SIM_CHECK_MSG(v >= 1, "GEMINI_REPART_MIN_WAYS must be >= 1");
  return static_cast<uint32_t>(v);
}

double OvercommitFromEnv(double fallback) {
  const char* env = std::getenv("GEMINI_OVERCOMMIT");
  if (env == nullptr || env[0] == '\0') {
    return fallback;
  }
  const double ratio = std::strtod(env, nullptr);
  SIM_CHECK_MSG(ratio == 0.0 || ratio >= 1.0,
                "GEMINI_OVERCOMMIT must be 0 (off) or >= 1");
  return ratio;
}

policy::ReclaimPolicyKind ReclaimPolicyFromEnv(
    policy::ReclaimPolicyKind fallback) {
  const char* env = std::getenv("GEMINI_RECLAIM_POLICY");
  if (env == nullptr || env[0] == '\0') {
    return fallback;
  }
  const auto kind = policy::ParseReclaimPolicy(env);
  SIM_CHECK_MSG(kind.has_value(),
                "GEMINI_RECLAIM_POLICY: unknown policy '%s'", env);
  return *kind;
}

damon::MonitorConfig DamonConfigFromEnv(
    const damon::MonitorConfig& fallback) {
  damon::MonitorConfig config = fallback;
  if (const char* env = std::getenv("GEMINI_DAMON_MIN");
      env != nullptr && env[0] != '\0') {
    const uint64_t v = std::strtoull(env, nullptr, 10);
    SIM_CHECK_MSG(v >= 1, "GEMINI_DAMON_MIN must be >= 1");
    config.min_regions = static_cast<uint32_t>(v);
  }
  if (const char* env = std::getenv("GEMINI_DAMON_MAX");
      env != nullptr && env[0] != '\0') {
    config.max_regions =
        static_cast<uint32_t>(std::strtoull(env, nullptr, 10));
  }
  SIM_CHECK_MSG(config.max_regions >= config.min_regions,
                "GEMINI_DAMON_MAX must be >= GEMINI_DAMON_MIN");
  if (const char* env = std::getenv("GEMINI_DAMON_AGG");
      env != nullptr && env[0] != '\0') {
    const uint64_t v = std::strtoull(env, nullptr, 10);
    SIM_CHECK_MSG(v >= 1, "GEMINI_DAMON_AGG must be >= 1");
    config.aggregation_ticks = static_cast<uint32_t>(v);
  }
  return config;
}

std::vector<mmu::TlbShareMode> TlbModesFromEnv() {
  const char* env = std::getenv("GEMINI_TLB_MODE");
  if (env == nullptr || env[0] == '\0') {
    return {mmu::TlbShareMode::kPrivate};
  }
  const std::string spec(env);
  if (spec == "all") {
    return {mmu::TlbShareMode::kPrivate, mmu::TlbShareMode::kShared,
            mmu::TlbShareMode::kPartitioned, mmu::TlbShareMode::kDynamic};
  }
  std::vector<mmu::TlbShareMode> modes;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) {
      comma = spec.size();
    }
    const std::string name = spec.substr(start, comma - start);
    mmu::TlbShareMode mode;
    SIM_CHECK_MSG(ParseTlbShareMode(name, &mode),
                  "GEMINI_TLB_MODE: unknown mode '%s'", name.c_str());
    modes.push_back(mode);
    start = comma + 1;
  }
  return modes;
}

}  // namespace harness
