// Experiment harness shared by every bench binary: builds a testbed
// (machine + VM under a system), applies the paper's fragmentation
// methodology, and runs the scenarios of §6 (clean-slate VM, reused VM,
// collocated VMs).
#ifndef SRC_HARNESS_EXPERIMENT_H_
#define SRC_HARNESS_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "harness/systems.h"
#include "metrics/interference_matrix.h"
#include "mmu/tlb_domain.h"
#include "policy/reclaim.h"
#include "trace/session.h"
#include "workload/catalog.h"
#include "workload/driver.h"

namespace harness {

struct BedOptions {
  uint64_t host_frames = 400 * 1024;  // ~1.6 GiB simulated host memory
  uint64_t vm_gfn_count = 128 * 1024; // ~512 MiB per VM
  bool fragmented = true;             // fragment both layers (paper default)
  double fragmentation_target = 0.8;  // guest FMFI target at huge order
  // The host carries every tenant's history, so its contiguity is scarcer:
  // which regions a system spends its few remaining blocks on decides its
  // well-aligned rate.
  double host_fragmentation_target = 0.85;
  // Fraction of guest-physical space touched (and freed) by "VM boot":
  // kernel/page-cache activity that leaves stale base-grained EPT mappings
  // behind — the reason host-side huge pages must be formed by collapse,
  // not fault-time allocation, on real reused hosts.
  double boot_noise_fraction = 0.3;
  uint64_t seed = 17;
  // Observability: when trace.enabled, the machine records tracepoints and
  // time series, written by the Run* helpers when the measurement ends.
  trace::TraceConfig trace;
  // TLB sharing arrangement for the machine's VMs (mmu/tlb_domain.h).
  // kPrivate reproduces the historical per-engine TLB exactly; kShared /
  // kPartitioned make collocated VMs contend for one physical array;
  // kDynamic adds the periodic way repartitioner on top of kPartitioned's
  // boot-time split.
  mmu::TlbShareMode tlb_mode = mmu::TlbShareMode::kPrivate;
  // kPartitioned / kDynamic: boot ways per VM (0 = even split over the
  // collocated VMs).
  uint32_t tlb_partition_ways = 0;
  // kDynamic repartitioner knobs; 0 resolves from GEMINI_REPART_INTERVAL /
  // GEMINI_REPART_MIN_WAYS, falling back to the machine defaults (daemon
  // period / 1 way).
  uint64_t tlb_repart_interval = 0;
  uint32_t tlb_repart_min_ways = 0;
  // Tiered-memory overcommit (DESIGN.md §3i): copied verbatim into
  // MachineConfig::reclaim by every Run* helper.  Disabled by default, so
  // the historical testbeds — and every committed golden — stay
  // byte-identical.
  policy::ReclaimConfig reclaim;
};

// A single-VM testbed under one system.
struct TestBed {
  std::unique_ptr<osim::Machine> machine;
  int32_t vm_id = 0;
  // Machine-owned time-series sampler; null unless tracing is enabled.
  trace::StackSampler* sampler = nullptr;

  osim::VirtualMachine& vm() { return machine->vm(vm_id); }
};

TestBed MakeTestBed(SystemKind kind, const BedOptions& options,
                    const gemini::GeminiOptions* gemini_options = nullptr);

// One (workload, system) measurement in a clean-slate VM (§6.2).
workload::RunResult RunCleanSlate(SystemKind kind,
                                  const workload::WorkloadSpec& spec,
                                  const BedOptions& options);

// Reused-VM measurement (§6.3): run the SVM prefill to completion in the
// same VM, tear it down (guest frames return to the guest; host backing
// stays), then run `spec`.
workload::RunResult RunReusedVm(SystemKind kind,
                                const workload::WorkloadSpec& spec,
                                const BedOptions& options);

// Figure 16 ablation variants of Gemini.
workload::RunResult RunGeminiAblation(const workload::WorkloadSpec& spec,
                                      const BedOptions& options,
                                      const gemini::GeminiOptions& gem);

// Collocated-VM measurement (§6.5): two VMs under the same system on one
// host; returns the result of the workload in VM 0 while VM 1 runs the
// companion workload interleaved.
struct CollocatedResult {
  workload::RunResult vm0;
  workload::RunResult vm1;
  // Who-displaced-whom attribution + per-VM utility curves, captured from
  // the machine's TlbDomain before teardown.  Empty under kPrivate (no
  // shared array, so no monitor; see metrics/interference_matrix.h).
  metrics::InterferenceReport interference;
};
CollocatedResult RunCollocated(SystemKind kind,
                               const workload::WorkloadSpec& spec0,
                               const workload::WorkloadSpec& spec1,
                               const BedOptions& options);

// Rack-density collocation (fig17_scale): N VMs under one system on one
// host, executed by the epoch-barriered parallel backend
// (workload/epoch_executor.h).  Results are deterministic at any thread
// count; `threads` only changes wall-clock.
struct ScaleOptions {
  // Worker threads / ops-per-epoch; 0 resolves from GEMINI_VM_THREADS /
  // GEMINI_VM_QUANTUM.
  uint32_t threads = 0;
  uint64_t quantum = 0;
  // Boot arrival waves: VM i arrives at epoch (i / wave_size) * wave_epochs.
  // wave_size 0 = everyone boots at epoch 0.
  uint64_t wave_size = 0;
  uint64_t wave_epochs = 32;
  // Tear each VM's VMAs down when its workload completes (shutdown churn).
  bool teardown_on_finish = false;
  // Diurnal load phases (percent of quantum per slot, phase-shifted one
  // slot per VM).  Empty = constant load.
  std::vector<uint32_t> load_phases;
  uint64_t load_phase_epochs = 64;
  // Daemon period override for the machine (0 = MachineConfig default).
  uint64_t daemon_period = 0;
};

struct CollocatedManyResult {
  std::vector<workload::RunResult> vms;  // one per spec, in order
  metrics::InterferenceReport interference;
  uint64_t epochs = 0;
  double exec_wall_ms = 0.0;  // host wall-clock of the execution loop
  // Deterministic op split: parallel-phase ops vs serial barrier-phase ops
  // (faults, driver events).  parallel / (parallel + serial) bounds the
  // achievable wall-clock speedup on any host (Amdahl).
  uint64_t parallel_ops = 0;
  uint64_t serial_ops = 0;
  // Machine-final state captured before teardown: the shared host buddy's
  // FMFI (where reclaim-induced churn shows up) and, when the bed ran with
  // a far tier, its footprint and the reclaim daemon's totals (all zero
  // otherwise).
  double final_host_fmfi = 0.0;
  uint64_t tier_resident_total = 0;
  uint64_t tier_peak_resident = 0;
  uint64_t reclaim_passes = 0;
  uint64_t reclaim_pages_demoted = 0;
};

CollocatedManyResult RunCollocatedMany(
    SystemKind kind, const std::vector<workload::WorkloadSpec>& specs,
    const BedOptions& options, const ScaleOptions& scale);

// Shrinks a spec's op count (and working set, optionally) for quick runs.
// Controlled by the GEMINI_FAST environment variable in the bench mains.
workload::WorkloadSpec ScaleSpec(const workload::WorkloadSpec& spec,
                                 double op_scale);

// True if the GEMINI_FAST env var requests abbreviated benchmark runs.
bool FastMode();

// Parses a TLB sharing-mode name ("private" / "shared" / "partitioned" /
// "dynamic").  Returns false (and leaves *mode untouched) on anything else.
bool ParseTlbShareMode(const std::string& name, mmu::TlbShareMode* mode);

// The sharing modes a collocated bench should sweep, from GEMINI_TLB_MODE:
// a mode name, a comma-separated list, or "all" for all four.  Unset or
// empty means {kPrivate} — the historical single-mode output.  Aborts on
// an unrecognized name (silently measuring the wrong mode would poison
// comparisons).
std::vector<mmu::TlbShareMode> TlbModesFromEnv();

// kDynamic repartitioner knobs from the environment: GEMINI_REPART_INTERVAL
// (cycles between repartition ticks; 0 = the machine's daemon period) and
// GEMINI_REPART_MIN_WAYS (per-VM way floor).  Unset returns the fallback.
uint64_t RepartIntervalFromEnv(uint64_t fallback = 0);
uint32_t RepartMinWaysFromEnv(uint32_t fallback = 1);

// Overcommit ratio from GEMINI_OVERCOMMIT: total guest-physical memory as
// a multiple of host frames (e.g. "1.5").  Unset/empty returns the
// fallback; 0 means no overcommit.  Values must be >= 1 when set — an
// undercommitted "overcommit" run is almost certainly a typo.
double OvercommitFromEnv(double fallback = 0.0);

// Reclaim victim-selection policy from GEMINI_RECLAIM_POLICY ("lru" /
// "damon"); unset returns the fallback, unknown names abort.
policy::ReclaimPolicyKind ReclaimPolicyFromEnv(
    policy::ReclaimPolicyKind fallback);

// DAMON monitor knobs over a fallback config: GEMINI_DAMON_MIN /
// GEMINI_DAMON_MAX (adaptive region-count bounds) and GEMINI_DAMON_AGG
// (sampling ticks per aggregation window).
damon::MonitorConfig DamonConfigFromEnv(
    const damon::MonitorConfig& fallback = {});

}  // namespace harness

#endif  // SRC_HARNESS_EXPERIMENT_H_
