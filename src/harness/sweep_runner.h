// Parallel execution of sweep cells for the figure/table benches.
//
// A sweep cell is one complete, self-contained simulation: it builds its
// own osim::Machine and seeds its own RNGs from the cell's BedOptions, so
// cells share no mutable state and can run concurrently.  The contract the
// benches rely on (see BENCHMARKS.md and DESIGN.md "Determinism &
// concurrency"):
//
//  * Results are keyed by cell index, never by completion order, so a
//    sweep's output is bit-identical at any job count — same seed, same
//    RunResult counters whether GEMINI_JOBS is 1 or 64.
//  * With one job the cells run inline on the calling thread; no worker
//    threads are spawned.
//  * A cell that throws does not deadlock or abandon the pool: the
//    remaining cells still run, and the first exception is rethrown from
//    Run() after every worker has drained.
//  * Progress goes to stderr only; stdout stays reserved for the tables.
#ifndef SRC_HARNESS_SWEEP_RUNNER_H_
#define SRC_HARNESS_SWEEP_RUNNER_H_

#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace harness {

// Worker count for sweeps: the GEMINI_JOBS environment variable if it is a
// positive integer, otherwise std::thread::hardware_concurrency (at least
// 1).  Values of GEMINI_JOBS that do not parse as a positive integer fall
// back to the hardware default.
int SweepJobs();

struct SweepRunnerOptions {
  // Worker threads; <= 0 means SweepJobs().  Capped at the cell count.
  int jobs = 0;
  // Prefix for stderr progress lines, typically the bench name.
  std::string label = "sweep";
  // Optional human-readable name of cell `i` ("Canneal x Gemini") for
  // progress lines; indices are printed when absent.
  std::function<std::string(size_t)> cell_name;
  // Live progress reporting on stderr (one line per completed cell).
  bool progress = true;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepRunnerOptions options = {});

  // Runs cell(i) for every i in [0, count) across the pool and blocks
  // until all cells finished.  Cells must be independent; each writes only
  // state owned by its index.  If any cell threw, the first exception (in
  // completion order) is rethrown after the pool drains.
  void Run(size_t count, const std::function<void(size_t)>& cell);

  // The worker count Run() will use for `count` cells.
  int EffectiveJobs(size_t count) const;

 private:
  SweepRunnerOptions options_;
};

// Runs fn(i) for every i in [0, count) in parallel and returns the results
// in index order.  The result type must be default-constructible.
template <typename Fn>
auto ParallelMap(size_t count, Fn&& fn, SweepRunnerOptions options = {})
    -> std::vector<decltype(fn(size_t{}))> {
  std::vector<decltype(fn(size_t{}))> out(count);
  SweepRunner runner(std::move(options));
  runner.Run(count, [&](size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace harness

#endif  // SRC_HARNESS_SWEEP_RUNNER_H_
