#include "harness/systems.h"

#include "base/check.h"
#include "policy/base_only.h"
#include "policy/ca_paging.h"
#include "policy/hawkeye.h"
#include "policy/ingens.h"
#include "policy/misalignment.h"
#include "policy/thp.h"
#include "policy/translation_ranger.h"

namespace harness {

std::string_view SystemName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kHostBVmB:
      return "Host-B-VM-B";
    case SystemKind::kMisalignment:
      return "Misalignment";
    case SystemKind::kThp:
      return "THP";
    case SystemKind::kCaPaging:
      return "CA-paging";
    case SystemKind::kRanger:
      return "Trans-ranger";
    case SystemKind::kHawkEye:
      return "HawkEye";
    case SystemKind::kIngens:
      return "Ingens";
    case SystemKind::kGemini:
      return "Gemini";
  }
  return "?";
}

std::vector<SystemKind> AllSystems() {
  return {SystemKind::kHostBVmB, SystemKind::kMisalignment, SystemKind::kThp,
          SystemKind::kCaPaging, SystemKind::kRanger,      SystemKind::kHawkEye,
          SystemKind::kIngens,   SystemKind::kGemini};
}

std::vector<SystemKind> AlignmentTableSystems() {
  return {SystemKind::kThp,     SystemKind::kCaPaging, SystemKind::kRanger,
          SystemKind::kHawkEye, SystemKind::kIngens,   SystemKind::kGemini};
}

std::unique_ptr<policy::HugePagePolicy> MakeGuestPolicy(SystemKind kind) {
  switch (kind) {
    case SystemKind::kHostBVmB:
    case SystemKind::kMisalignment:
      return std::make_unique<policy::BaseOnlyPolicy>();
    case SystemKind::kThp:
      return std::make_unique<policy::ThpPolicy>();
    case SystemKind::kCaPaging:
      return std::make_unique<policy::CaPagingPolicy>();
    case SystemKind::kRanger:
      return std::make_unique<policy::TranslationRangerPolicy>();
    case SystemKind::kHawkEye:
      return std::make_unique<policy::HawkEyePolicy>();
    case SystemKind::kIngens:
      return std::make_unique<policy::IngensPolicy>();
    case SystemKind::kGemini:
      SIM_CHECK_MSG(false, "Gemini VMs are wired by AddSystemVm");
  }
  return nullptr;
}

std::unique_ptr<policy::HugePagePolicy> MakeHostPolicy(SystemKind kind) {
  switch (kind) {
    case SystemKind::kHostBVmB:
      return std::make_unique<policy::BaseOnlyPolicy>();
    case SystemKind::kMisalignment:
      return std::make_unique<policy::AlwaysHugePolicy>();
    case SystemKind::kThp:
      return std::make_unique<policy::ThpPolicy>();
    case SystemKind::kCaPaging:
      return std::make_unique<policy::CaPagingPolicy>();
    case SystemKind::kRanger:
      return std::make_unique<policy::TranslationRangerPolicy>();
    case SystemKind::kHawkEye:
      return std::make_unique<policy::HawkEyePolicy>();
    case SystemKind::kIngens:
      return std::make_unique<policy::IngensPolicy>();
    case SystemKind::kGemini:
      SIM_CHECK_MSG(false, "Gemini VMs are wired by AddSystemVm");
  }
  return nullptr;
}

osim::VirtualMachine& AddSystemVm(osim::Machine& machine, SystemKind kind,
                                  uint64_t gfn_count,
                                  const gemini::GeminiOptions* gemini_options) {
  if (kind == SystemKind::kGemini) {
    const gemini::GeminiOptions options =
        gemini_options != nullptr ? *gemini_options : gemini::GeminiOptions{};
    return gemini::InstallGeminiVm(machine, gfn_count, options);
  }
  return machine.AddVm(gfn_count, MakeGuestPolicy(kind), MakeHostPolicy(kind));
}

}  // namespace harness
