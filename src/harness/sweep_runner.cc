#include "harness/sweep_runner.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

namespace harness {

int SweepJobs() {
  const char* env = std::getenv("GEMINI_JOBS");
  if (env != nullptr && env[0] != '\0') {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<int>(parsed);
    }
    std::fprintf(stderr,
                 "[sweep] ignoring GEMINI_JOBS=%s (not a positive integer)\n",
                 env);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

SweepRunner::SweepRunner(SweepRunnerOptions options)
    : options_(std::move(options)) {}

int SweepRunner::EffectiveJobs(size_t count) const {
  int jobs = options_.jobs > 0 ? options_.jobs : SweepJobs();
  if (count > 0 && static_cast<size_t>(jobs) > count) {
    jobs = static_cast<int>(count);
  }
  return jobs < 1 ? 1 : jobs;
}

void SweepRunner::Run(size_t count, const std::function<void(size_t)>& cell) {
  if (count == 0) {
    return;
  }
  const int jobs = EffectiveJobs(count);
  const auto sweep_start = std::chrono::steady_clock::now();
  if (options_.progress) {
    std::fprintf(stderr, "[%s] %zu cells on %d job%s\n",
                 options_.label.c_str(), count, jobs, jobs == 1 ? "" : "s");
  }

  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::mutex mu;  // guards first_error and stderr progress lines
  std::exception_ptr first_error;

  auto worker = [&]() {
    while (true) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) {
        return;
      }
      const auto start = std::chrono::steady_clock::now();
      bool failed = false;
      try {
        cell(i);
      } catch (...) {
        failed = true;
        std::lock_guard<std::mutex> lock(mu);
        if (!first_error) {
          first_error = std::current_exception();
        }
      }
      const size_t finished = done.fetch_add(1, std::memory_order_relaxed) + 1;
      if (options_.progress) {
        const double secs =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        std::string name =
            options_.cell_name ? options_.cell_name(i) : std::string();
        std::lock_guard<std::mutex> lock(mu);
        std::fprintf(stderr, "[%s %zu/%zu] %s%s(%.1fs)%s\n",
                     options_.label.c_str(), finished, count, name.c_str(),
                     name.empty() ? "" : " ", secs,
                     failed ? " FAILED" : "");
      }
    }
  };

  if (jobs == 1) {
    // Serial fallback: no threads, cells run inline on the caller.
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(jobs));
    for (int t = 0; t < jobs; ++t) {
      pool.emplace_back(worker);
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }

  if (options_.progress) {
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - sweep_start)
                            .count();
    std::fprintf(stderr, "[%s] done in %.1fs\n", options_.label.c_str(),
                 secs);
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace harness
