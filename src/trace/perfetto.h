// Renders a Tracer's ring plus a StackSampler's series as Chrome
// trace-event JSON, loadable in Perfetto (ui.perfetto.dev) and
// chrome://tracing.
//
// Mapping:
//  * Timestamps are simulated cycles written into the `ts` field.  The
//    viewers display them as microseconds; treat the axis as "cycles".
//  * Each VM is a process (pid = vm_id + 2, named "vm<id>"); events from
//    the shared host buddy (vm_id -1) land in pid 1, "host (shared)".
//  * Layers are threads inside the process: tid 1 = guest, tid 2 = host.
//  * Tracepoints become instant events (ph "i") named by EventName() with
//    args named by EventArgNames(); sampler series become counter tracks
//    (ph "C") so coverage/FMFI/timeout plot directly over the events.
//  * The top-level object carries {"emitted", "dropped", "retained"} under
//    "otherData" so a truncated ring is visible in the artifact itself.
#ifndef SRC_TRACE_PERFETTO_H_
#define SRC_TRACE_PERFETTO_H_

#include <string>

#include "trace/sampler.h"
#include "trace/tracer.h"

namespace trace {

// `sampler` may be null (event-only trace).
std::string PerfettoTraceJson(const Tracer& tracer,
                              const StackSampler* sampler);

}  // namespace trace

#endif  // SRC_TRACE_PERFETTO_H_
