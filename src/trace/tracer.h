// Cross-layer trace subsystem: typed tracepoints on a simulated clock.
//
// Every layer of the stack (buddy allocators, kernels, promoters, Gemini's
// booking manager and huge bucket, the daemon scheduler) emits Events into
// one per-machine Tracer.  Three properties make the traces usable as a
// debugging and regression artifact:
//
//  * Simulated time only.  Events are stamped with base::Cycles read from
//    the machine's logical clock — never wall clock — so a trace is a pure
//    function of (workload, system, seed) and byte-reproducible at any
//    GEMINI_JOBS setting and on any host.
//  * Bounded memory.  Events live in a fixed-capacity ring buffer; when it
//    is full the oldest events are overwritten and counted in dropped(),
//    so long runs keep the most recent window instead of growing without
//    bound or silently losing the fact that they lost data.
//  * Zero cost when disabled.  A default-constructed Tracer owns no buffer
//    and Emit() is a single predictable branch; the simulator's hot paths
//    pay nothing unless GEMINI_TRACE is set.
//
// Rendering to Chrome/Perfetto JSON and time-series CSV lives in
// trace/perfetto.h and trace/sampler.h; activation from the bench binaries
// (GEMINI_TRACE / GEMINI_TRACE_INTERVAL) lives in trace/session.h.
#ifndef SRC_TRACE_TRACER_H_
#define SRC_TRACE_TRACER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/types.h"

namespace trace {

// Every tracepoint in the stack.  Arguments a/b/c are event-specific; the
// meaning (and the Perfetto arg names) are given by EventArgNames().
enum class EventKind : uint8_t {
  // vmem::BuddyAllocator
  kBuddySplit,     // a=head frame, b=order found, c=order requested
  kBuddyMerge,     // a=final head frame, b=order freed at, c=final order
  kBuddyAllocAt,   // a=first frame, b=frame count (targeted allocation)
  // osim::KernelBase (promoters act through these)
  kPromoteInPlace, // a=region
  kPromoteMigrate, // a=region, b=new first frame, c=pages copied
  kDemote,         // a=region
  kShootdown,      // a=first page, b=page count
  // gemini::BookingManager
  kBookingBook,    // a=first frame, b=deadline (cycles)
  kBookingAssign,  // a=first frame
  kBookingExpire,  // a=first frame
  kTimeoutChange,  // a=new effective timeout, b=previous effective timeout
  // gemini::HugeBucket
  kBucketDeposit,  // a=first frame, b=retention deadline (cycles)
  kBucketTake,     // a=first frame
  kBucketEvict,    // a=first frame
  // osim::Machine
  kDaemonTick,     // a=tick ordinal of this boundary
  // vmem::TierSpace migrations (emitted by the owning kernel)
  kTierDemote,     // a=region, b=pages demoted, c=owner far-resident after
  kTierRefault,    // a=page, b=owner far-resident after
  // osim::ReclaimDaemon
  kReclaimPass,    // a=pages freed, b=host free frames after, c=watermark
};

inline constexpr int kEventKindCount = static_cast<int>(EventKind::kReclaimPass) + 1;

// Stable lower_snake_case name, used as the Perfetto event name.
const char* EventName(EventKind kind);

// Names of the a/b/c arguments for a kind ("" for unused slots).
struct ArgNames {
  const char* a;
  const char* b;
  const char* c;
};
ArgNames EventArgNames(EventKind kind);

// One tracepoint hit.  `vm_id` is -1 for host-global origins (the shared
// host buddy allocator).
struct Event {
  base::Cycles ts = 0;  // simulated cycles (machine logical clock)
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;
  EventKind kind = EventKind::kDaemonTick;
  base::Layer layer = base::Layer::kGuest;
  int16_t vm_id = -1;
};

class Tracer {
 public:
  // Disabled and bufferless by default: the zero-cost state every test and
  // non-traced run stays in.
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Allocates the ring (capacity events, capacity >= 1) and starts
  // recording.  Calling Enable again resizes and clears the ring.
  void Enable(size_t capacity);
  void Disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  // Points the tracer at the simulated clock cell it stamps events from
  // (the machine's logical now).  Null clock stamps 0 (tests).
  void SetClock(const base::Cycles* clock) { clock_ = clock; }

  void Emit(EventKind kind, base::Layer layer, int32_t vm_id, uint64_t a = 0,
            uint64_t b = 0, uint64_t c = 0) {
    if (!enabled_) {
      return;
    }
    Record(kind, layer, vm_id, a, b, c);
  }

  // Events currently retained (<= capacity).
  size_t size() const { return count_; }
  size_t capacity() const { return ring_.capacity(); }
  // Events overwritten because the ring was full.
  uint64_t dropped() const { return dropped_; }
  // Events ever emitted while enabled (= size() + dropped()).
  uint64_t emitted() const { return count_ + dropped_; }

  // Visits retained events oldest first.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    const size_t start = count_ < ring_.size() ? 0 : head_;
    for (size_t i = 0; i < count_; ++i) {
      fn(ring_[(start + i) % ring_.size()]);
    }
  }

 private:
  void Record(EventKind kind, base::Layer layer, int32_t vm_id, uint64_t a,
              uint64_t b, uint64_t c);

  bool enabled_ = false;
  const base::Cycles* clock_ = nullptr;
  std::vector<Event> ring_;
  size_t head_ = 0;   // next write position
  size_t count_ = 0;  // events retained
  uint64_t dropped_ = 0;
};

}  // namespace trace

#endif  // SRC_TRACE_TRACER_H_
