// Periodic time-series sampler over the whole stack.
//
// A StackSampler is an osim::PeriodicTask: the machine fires it at exact
// period boundaries of the simulated clock, so sample timestamps are a
// pure function of (workload, system, seed) — independent of how the
// driver batches accesses and of GEMINI_JOBS.  Each firing appends one
// SamplePoint per VM with the quantities the paper's figures are built
// from: huge coverage per layer, FMFI per layer, the booking-timeout
// controller's current effective timeout, booking/bucket occupancy, the
// cumulative TLB miss rate, and the per-order buddy free-list depths.
//
// Counter fields are read through metrics::Snapshot and
// policy::PolicyTelemetry — the same registries the aggregate RunResult
// export uses — so a value in a series CSV always reconciles with the
// corresponding GEMINI_EXPORT cell.
#ifndef SRC_TRACE_SAMPLER_H_
#define SRC_TRACE_SAMPLER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.h"
#include "os/machine.h"

namespace trace {

// One VM's state at one sample boundary.
struct SamplePoint {
  base::Cycles ts = 0;  // simulated cycles
  int32_t vm_id = 0;
  double guest_coverage = 0.0;  // huge-mapped fraction of mapped guest pages
  double host_coverage = 0.0;   // same for the VM's EPT
  double guest_fmfi = 0.0;      // free memory fragmentation index, huge order
  double host_fmfi = 0.0;       // host buddy (shared across VMs)
  base::Cycles booking_timeout = 0;  // guest controller effective timeout
  uint64_t bookings_active = 0;      // live bookings, both layers
  uint64_t bucket_held = 0;          // regions retained by the huge bucket
  double tlb_miss_rate = 0.0;        // cumulative misses / lookups
  uint64_t stale_hits = 0;           // cumulative precise-invalidation misses
  // Cumulative TLB sharing-domain interference counters (zero under a
  // private arrangement): this VM's entries evicted by other VMs' fills,
  // and entries dropped by tagged selective invalidation.
  uint64_t cross_vm_evictions = 0;
  uint64_t vm_invalidated = 0;
  // Cumulative utility-monitor attribution and shadow-sampler counts (zero
  // under private: no monitor attached).
  uint64_t displaced_by_self = 0;
  uint64_t displaced_by_other = 0;
  uint64_t util_shadow_hits = 0;
  uint64_t util_shadow_misses = 0;
  // Dynamic way repartitioning (zero outside GEMINI_TLB_MODE=dynamic):
  // this VM's current way-window size, cumulative applied repartitions
  // (domain-wide), and this VM's entries dropped by window moves.
  uint64_t ways_assigned = 0;
  uint64_t repartitions = 0;
  uint64_t repartition_evictions = 0;
  // Cumulative translation-latency percentiles, cycles (log2-bucket
  // nearest-rank, bucket upper bound reported).
  uint64_t lat_p50 = 0;
  uint64_t lat_p90 = 0;
  uint64_t lat_p99 = 0;
  // Cumulative batch-pipeline counters (host-side effectiveness only;
  // simulation state is batch-size-invariant).
  uint64_t batches = 0;
  uint64_t batched_accesses = 0;
  uint64_t batch_region_groups = 0;
  uint64_t batch_fastpath_hits = 0;
  // Far-tier footprint (zero without GEMINI_OVERCOMMIT): cumulative pages
  // demoted / refaulted, and the VM's far residency at this boundary (a
  // level, not a counter — it falls when pages refault back).
  uint64_t tier_demoted = 0;
  uint64_t tier_refaults = 0;
  uint64_t tier_resident = 0;
  uint64_t batch_size_hist[8] = {};  // log2 batch-size buckets
  uint64_t guest_free[base::kMaxOrder] = {};  // free blocks per order
  uint64_t host_free[base::kMaxOrder] = {};
};

class StackSampler final : public osim::PeriodicTask {
 public:
  explicit StackSampler(osim::Machine* machine);

  void Run(base::Cycles now) override;

  const std::vector<SamplePoint>& samples() const { return samples_; }

  // Renders all samples as CSV (schema documented in BENCHMARKS.md).
  std::string ToCsv() const;

 private:
  osim::Machine* machine_;
  std::vector<SamplePoint> samples_;
};

}  // namespace trace

#endif  // SRC_TRACE_SAMPLER_H_
