// Trace activation for benches and the harness.
//
// A TraceConfig says whether tracing is on and where the artifacts go;
// TraceConfigFromEnv() builds one from the environment contract
// (BENCHMARKS.md):
//
//   GEMINI_TRACE=DIR            enable; write per-cell files under DIR
//   GEMINI_TRACE_INTERVAL=N     sampler period in simulated cycles
//                               (default 1'000'000)
//
// SetupTracing() arms a machine (ring buffer + sampler task);
// WriteTraceFiles() renders <dir>/<stem>.trace.json (Perfetto) and
// <dir>/<stem>.series.csv (time series) when the run ends.  Both are
// no-ops on a disabled config, so the harness calls them unconditionally.
#ifndef SRC_TRACE_SESSION_H_
#define SRC_TRACE_SESSION_H_

#include <cstddef>
#include <string>

#include "os/machine.h"
#include "trace/sampler.h"

namespace trace {

struct TraceConfig {
  bool enabled = false;
  std::string dir;   // output directory (must exist)
  std::string stem;  // file stem, e.g. "fig9_cell03_redis_gemini"
  base::Cycles sample_period = 1'000'000;
  size_t ring_capacity = 1 << 18;  // events retained (~9 MiB)
};

// Lowercases `s` and maps every non-[a-z0-9] run to one '_', so sweep
// labels, workload names and system names compose into safe file stems.
std::string SanitizeFileStem(const std::string& s);

// Reads GEMINI_TRACE / GEMINI_TRACE_INTERVAL; disabled when GEMINI_TRACE
// is unset or empty.
TraceConfig TraceConfigFromEnv(const std::string& stem);

// Enables the machine's tracer and registers a StackSampler firing every
// config.sample_period cycles.  Returns the sampler (owned by the
// machine), or null if the config is disabled.
StackSampler* SetupTracing(osim::Machine& machine, const TraceConfig& config);

// Writes the two artifacts; no-op when the config is disabled.
void WriteTraceFiles(const TraceConfig& config, const osim::Machine& machine,
                     const StackSampler* sampler);

}  // namespace trace

#endif  // SRC_TRACE_SESSION_H_
