#include "trace/sampler.h"

#include <sstream>

#include "base/check.h"
#include "metrics/counters.h"

namespace trace {

using base::kHugeOrder;
using base::kMaxOrder;
using base::kPagesPerHuge;

namespace {

double HugeCoverage(const mmu::PageTable& table) {
  const uint64_t mapped = table.mapped_pages();
  if (mapped == 0) {
    return 0.0;
  }
  return static_cast<double>(table.huge_leaves() * kPagesPerHuge) /
         static_cast<double>(mapped);
}

}  // namespace

StackSampler::StackSampler(osim::Machine* machine) : machine_(machine) {
  SIM_CHECK(machine_ != nullptr);
}

void StackSampler::Run(base::Cycles now) {
  const vmem::BuddyAllocator& host_buddy = machine_->host().buddy();
  for (int32_t id = 0; id < static_cast<int32_t>(machine_->vm_count()); ++id) {
    osim::VirtualMachine& vm = machine_->vm(id);
    SamplePoint p;
    p.ts = now;
    p.vm_id = id;
    p.guest_coverage = HugeCoverage(vm.guest().table());
    p.host_coverage = HugeCoverage(vm.host_slice().table());
    p.guest_fmfi = vm.guest().buddy().Fmfi(kHugeOrder);
    p.host_fmfi = host_buddy.Fmfi(kHugeOrder);
    const policy::PolicyTelemetry gt = vm.guest().policy().Telemetry();
    const policy::PolicyTelemetry ht = vm.host_slice().policy().Telemetry();
    p.booking_timeout = gt.booking_timeout;
    p.bookings_active = gt.bookings_active + ht.bookings_active;
    p.bucket_held = gt.bucket_held + ht.bucket_held;
    const metrics::StackSnapshot s = metrics::Snapshot(*machine_, id);
    const uint64_t lookups = s.tlb_hits + s.tlb_misses;
    p.tlb_miss_rate = lookups == 0 ? 0.0
                                   : static_cast<double>(s.tlb_misses) /
                                         static_cast<double>(lookups);
    p.stale_hits = s.tlb_stale_hits;
    p.cross_vm_evictions = s.tlb_cross_vm_evictions;
    p.vm_invalidated = s.tlb_vm_invalidated;
    p.displaced_by_self = s.tlb_displaced_by_self;
    p.displaced_by_other = s.tlb_displaced_by_other;
    for (const uint64_t h : s.util_way_hits) {
      p.util_shadow_hits += h;
    }
    p.util_shadow_misses = s.util_shadow_misses;
    p.ways_assigned = s.tlb_ways_assigned;
    p.repartitions = s.tlb_repartitions;
    p.repartition_evictions = s.tlb_repartition_evictions;
    p.lat_p50 = base::Log2Histogram::PercentileOfCounts(s.lat_hist, 0.50);
    p.lat_p90 = base::Log2Histogram::PercentileOfCounts(s.lat_hist, 0.90);
    p.lat_p99 = base::Log2Histogram::PercentileOfCounts(s.lat_hist, 0.99);
    p.batches = s.batches;
    p.batched_accesses = s.batched_accesses;
    p.batch_region_groups = s.batch_region_groups;
    p.batch_fastpath_hits = s.batch_fastpath_hits;
    p.tier_demoted = s.tier_demoted_pages;
    p.tier_refaults = s.tier_refaults;
    p.tier_resident = s.tier_resident;
    for (size_t b = 0; b < s.batch_size_hist.size(); ++b) {
      p.batch_size_hist[b] = s.batch_size_hist[b];
    }
    for (int o = 0; o < kMaxOrder; ++o) {
      p.guest_free[o] = vm.guest().buddy().FreeBlocksOfOrder(o);
      p.host_free[o] = host_buddy.FreeBlocksOfOrder(o);
    }
    samples_.push_back(p);
  }
}

std::string StackSampler::ToCsv() const {
  std::ostringstream out;
  out << "ts_cycles,vm,guest_coverage,host_coverage,guest_fmfi,host_fmfi,"
         "booking_timeout_cycles,bookings_active,bucket_held,tlb_miss_rate,"
         "stale_hits,cross_vm_evictions,vm_invalidated,"
         "displaced_by_self,displaced_by_other,util_shadow_hits,"
         "util_shadow_misses,ways_assigned,repartitions,"
         "repartition_evictions,lat_p50,lat_p90,lat_p99,batches,"
         "batched_accesses,batch_region_groups,batch_fastpath_hits,"
         "tier_demoted,tier_refaults,tier_resident";
  for (int b = 0; b < 8; ++b) {
    out << ",batch_hist_b" << b;
  }
  for (int o = 0; o < kMaxOrder; ++o) {
    out << ",guest_free_o" << o;
  }
  for (int o = 0; o < kMaxOrder; ++o) {
    out << ",host_free_o" << o;
  }
  out << '\n';
  for (const SamplePoint& p : samples_) {
    out << p.ts << ',' << p.vm_id << ',' << p.guest_coverage << ','
        << p.host_coverage << ',' << p.guest_fmfi << ',' << p.host_fmfi << ','
        << p.booking_timeout << ',' << p.bookings_active << ','
        << p.bucket_held << ',' << p.tlb_miss_rate << ',' << p.stale_hits
        << ',' << p.cross_vm_evictions << ',' << p.vm_invalidated
        << ',' << p.displaced_by_self << ',' << p.displaced_by_other
        << ',' << p.util_shadow_hits << ',' << p.util_shadow_misses
        << ',' << p.ways_assigned << ',' << p.repartitions
        << ',' << p.repartition_evictions
        << ',' << p.lat_p50 << ',' << p.lat_p90 << ',' << p.lat_p99
        << ',' << p.batches << ',' << p.batched_accesses << ','
        << p.batch_region_groups << ',' << p.batch_fastpath_hits
        << ',' << p.tier_demoted << ',' << p.tier_refaults
        << ',' << p.tier_resident;
    for (int b = 0; b < 8; ++b) {
      out << ',' << p.batch_size_hist[b];
    }
    for (int o = 0; o < kMaxOrder; ++o) {
      out << ',' << p.guest_free[o];
    }
    for (int o = 0; o < kMaxOrder; ++o) {
      out << ',' << p.host_free[o];
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace trace
