#include "trace/session.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "metrics/export.h"
#include "trace/perfetto.h"

namespace trace {

std::string SanitizeFileStem(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  bool pending_sep = false;
  for (char c : s) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (std::isalnum(u)) {
      if (pending_sep && !out.empty()) {
        out += '_';
      }
      pending_sep = false;
      out += static_cast<char>(std::tolower(u));
    } else {
      pending_sep = true;
    }
  }
  return out.empty() ? "trace" : out;
}

TraceConfig TraceConfigFromEnv(const std::string& stem) {
  TraceConfig config;
  const char* dir = std::getenv("GEMINI_TRACE");
  if (dir == nullptr || dir[0] == '\0') {
    return config;
  }
  config.enabled = true;
  config.dir = dir;
  config.stem = stem;
  const char* interval = std::getenv("GEMINI_TRACE_INTERVAL");
  if (interval != nullptr && interval[0] != '\0') {
    const long long parsed = std::atoll(interval);
    if (parsed > 0) {
      config.sample_period = static_cast<base::Cycles>(parsed);
    }
  }
  return config;
}

StackSampler* SetupTracing(osim::Machine& machine, const TraceConfig& config) {
  if (!config.enabled) {
    return nullptr;
  }
  machine.tracer().Enable(config.ring_capacity);
  auto sampler = std::make_unique<StackSampler>(&machine);
  StackSampler* raw = sampler.get();
  machine.AddTask(std::move(sampler), config.sample_period);
  return raw;
}

void WriteTraceFiles(const TraceConfig& config, const osim::Machine& machine,
                     const StackSampler* sampler) {
  if (!config.enabled) {
    return;
  }
  const std::string base = config.dir + "/" + config.stem;
  metrics::WriteFile(base + ".trace.json",
                     PerfettoTraceJson(machine.tracer(), sampler));
  if (sampler != nullptr) {
    metrics::WriteFile(base + ".series.csv", sampler->ToCsv());
  }
  std::fprintf(stderr, "[trace] wrote %s.trace.json (+series.csv)\n",
               base.c_str());
}

}  // namespace trace
