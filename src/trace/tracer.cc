#include "trace/tracer.h"

#include "base/check.h"

namespace trace {

const char* EventName(EventKind kind) {
  switch (kind) {
    case EventKind::kBuddySplit:
      return "buddy_split";
    case EventKind::kBuddyMerge:
      return "buddy_merge";
    case EventKind::kBuddyAllocAt:
      return "buddy_alloc_at";
    case EventKind::kPromoteInPlace:
      return "promote_in_place";
    case EventKind::kPromoteMigrate:
      return "promote_migrate";
    case EventKind::kDemote:
      return "demote";
    case EventKind::kShootdown:
      return "tlb_shootdown";
    case EventKind::kBookingBook:
      return "booking_book";
    case EventKind::kBookingAssign:
      return "booking_assign";
    case EventKind::kBookingExpire:
      return "booking_expire";
    case EventKind::kTimeoutChange:
      return "booking_timeout_change";
    case EventKind::kBucketDeposit:
      return "bucket_deposit";
    case EventKind::kBucketTake:
      return "bucket_take";
    case EventKind::kBucketEvict:
      return "bucket_evict";
    case EventKind::kDaemonTick:
      return "daemon_tick";
    case EventKind::kTierDemote:
      return "tier_demote";
    case EventKind::kTierRefault:
      return "tier_refault";
    case EventKind::kReclaimPass:
      return "reclaim_pass";
  }
  return "unknown";
}

ArgNames EventArgNames(EventKind kind) {
  switch (kind) {
    case EventKind::kBuddySplit:
      return {"frame", "order_found", "order_requested"};
    case EventKind::kBuddyMerge:
      return {"frame", "order_freed", "order_merged"};
    case EventKind::kBuddyAllocAt:
      return {"frame", "count", ""};
    case EventKind::kPromoteInPlace:
      return {"region", "", ""};
    case EventKind::kPromoteMigrate:
      return {"region", "frame", "pages_copied"};
    case EventKind::kDemote:
      return {"region", "", ""};
    case EventKind::kShootdown:
      return {"page", "count", ""};
    case EventKind::kBookingBook:
      return {"frame", "deadline_cycles", ""};
    case EventKind::kBookingAssign:
      return {"frame", "", ""};
    case EventKind::kBookingExpire:
      return {"frame", "", ""};
    case EventKind::kTimeoutChange:
      return {"timeout_cycles", "previous_cycles", ""};
    case EventKind::kBucketDeposit:
      return {"frame", "deadline_cycles", ""};
    case EventKind::kBucketTake:
      return {"frame", "", ""};
    case EventKind::kBucketEvict:
      return {"frame", "", ""};
    case EventKind::kDaemonTick:
      return {"tick", "", ""};
    case EventKind::kTierDemote:
      return {"region", "pages", "far_resident"};
    case EventKind::kTierRefault:
      return {"page", "far_resident", ""};
    case EventKind::kReclaimPass:
      return {"pages_freed", "free_frames", "watermark_frames"};
  }
  return {"", "", ""};
}

void Tracer::Enable(size_t capacity) {
  SIM_CHECK(capacity >= 1);
  ring_.clear();
  ring_.shrink_to_fit();
  ring_.reserve(capacity);
  head_ = 0;
  count_ = 0;
  dropped_ = 0;
  enabled_ = true;
}

void Tracer::Record(EventKind kind, base::Layer layer, int32_t vm_id,
                    uint64_t a, uint64_t b, uint64_t c) {
  Event event;
  event.ts = clock_ != nullptr ? *clock_ : 0;
  event.a = a;
  event.b = b;
  event.c = c;
  event.kind = kind;
  event.layer = layer;
  event.vm_id = static_cast<int16_t>(vm_id);
  if (ring_.size() < ring_.capacity()) {
    ring_.push_back(event);
    ++count_;
    head_ = ring_.size() % ring_.capacity();
  } else {
    // Ring full: overwrite the oldest event and account for the loss.
    ring_[head_] = event;
    head_ = (head_ + 1) % ring_.size();
    ++dropped_;
  }
}

}  // namespace trace
