#include "trace/perfetto.h"

#include <set>
#include <sstream>

namespace trace {

namespace {

int Pid(int32_t vm_id) { return static_cast<int>(vm_id) + 2; }

int Tid(base::Layer layer) { return layer == base::Layer::kGuest ? 1 : 2; }

void AppendMetadata(std::ostringstream& out, const char* what, int pid,
                    int tid, const std::string& name) {
  out << "  {\"name\": \"" << what << "\", \"ph\": \"M\", \"pid\": " << pid;
  if (tid >= 0) {
    out << ", \"tid\": " << tid;
  }
  out << ", \"args\": {\"name\": \"" << name << "\"}},\n";
}

void AppendEvent(std::ostringstream& out, const Event& e) {
  out << "  {\"name\": \"" << EventName(e.kind) << "\", \"ph\": \"i\", "
      << "\"s\": \"t\", \"ts\": " << e.ts << ", \"pid\": " << Pid(e.vm_id)
      << ", \"tid\": " << Tid(e.layer) << ", \"args\": {";
  const ArgNames names = EventArgNames(e.kind);
  bool first = true;
  const char* arg_names[3] = {names.a, names.b, names.c};
  const uint64_t arg_values[3] = {e.a, e.b, e.c};
  for (int i = 0; i < 3; ++i) {
    if (arg_names[i][0] == '\0') {
      continue;
    }
    if (!first) {
      out << ", ";
    }
    out << '"' << arg_names[i] << "\": " << arg_values[i];
    first = false;
  }
  out << "}},\n";
}

void AppendCounter(std::ostringstream& out, const char* name, int pid,
                   base::Cycles ts, const std::string& args) {
  out << "  {\"name\": \"" << name << "\", \"ph\": \"C\", \"ts\": " << ts
      << ", \"pid\": " << pid << ", \"args\": {" << args << "}},\n";
}

}  // namespace

std::string PerfettoTraceJson(const Tracer& tracer,
                              const StackSampler* sampler) {
  std::ostringstream out;
  out << "{\"traceEvents\": [\n";

  // Name every process/thread that will appear.
  std::set<int32_t> vms;
  tracer.ForEach([&](const Event& e) { vms.insert(e.vm_id); });
  if (sampler != nullptr) {
    for (const SamplePoint& p : sampler->samples()) {
      vms.insert(p.vm_id);
    }
  }
  for (int32_t vm : vms) {
    const std::string name =
        vm < 0 ? "host (shared)" : "vm" + std::to_string(vm);
    AppendMetadata(out, "process_name", Pid(vm), -1, name);
    AppendMetadata(out, "thread_name", Pid(vm), 1, "guest");
    AppendMetadata(out, "thread_name", Pid(vm), 2, "host");
  }

  tracer.ForEach([&](const Event& e) { AppendEvent(out, e); });

  if (sampler != nullptr) {
    for (const SamplePoint& p : sampler->samples()) {
      const int pid = Pid(p.vm_id);
      std::ostringstream cov;
      cov << "\"guest\": " << p.guest_coverage
          << ", \"host\": " << p.host_coverage;
      AppendCounter(out, "huge_coverage", pid, p.ts, cov.str());
      std::ostringstream fmfi;
      fmfi << "\"guest\": " << p.guest_fmfi << ", \"host\": " << p.host_fmfi;
      AppendCounter(out, "fmfi", pid, p.ts, fmfi.str());
      std::ostringstream booking;
      booking << "\"timeout_cycles\": " << p.booking_timeout
              << ", \"active\": " << p.bookings_active;
      AppendCounter(out, "booking", pid, p.ts, booking.str());
      std::ostringstream bucket;
      bucket << "\"held\": " << p.bucket_held;
      AppendCounter(out, "bucket", pid, p.ts, bucket.str());
      std::ostringstream miss;
      miss << "\"rate\": " << p.tlb_miss_rate;
      AppendCounter(out, "tlb_miss_rate", pid, p.ts, miss.str());
    }
  }

  // A no-op metadata event closes the array without trailing-comma logic.
  out << "  {\"name\": \"trace_end\", \"ph\": \"M\", \"pid\": 1, "
         "\"args\": {}}\n";
  out << "],\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {"
      << "\"clock\": \"simulated_cycles\", \"emitted\": " << tracer.emitted()
      << ", \"dropped\": " << tracer.dropped()
      << ", \"retained\": " << tracer.size() << "}}\n";
  return out.str();
}

}  // namespace trace
