// Small numeric helpers shared by the experiment harness and the bench
// binaries: normalization against a baseline system and summary means, the
// way the paper reports its figures ("normalized to Host-B-VM-B",
// "normalized to Gemini", geometric averages across workloads).
#ifndef SRC_METRICS_PERF_MODEL_H_
#define SRC_METRICS_PERF_MODEL_H_

#include <vector>

namespace metrics {

// value / baseline, with a guard for degenerate baselines.
double Normalize(double value, double baseline);

double GeometricMean(const std::vector<double>& values);
double ArithmeticMean(const std::vector<double>& values);

}  // namespace metrics

#endif  // SRC_METRICS_PERF_MODEL_H_
