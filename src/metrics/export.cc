#include "metrics/export.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "base/check.h"
#include "base/stats.h"
#include "workload/driver.h"

namespace metrics {
namespace {

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string EscapeCsv(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) {
    return s;
  }
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

uint64_t UtilShadowHits(const StackSnapshot& c) {
  uint64_t total = 0;
  for (const uint64_t h : c.util_way_hits) {
    total += h;
  }
  return total;
}

// Smallest dedicated way count covering 90% of the VM's shadow hits; 0
// when the VM recorded none (private mode, or a VM that never sampled).
uint32_t UtilMinWays90(const StackSnapshot& c) {
  const uint64_t total = UtilShadowHits(c);
  if (total == 0) {
    return 0;
  }
  const double want = 0.9 * static_cast<double>(total);
  uint64_t cum = 0;
  for (size_t d = 0; d < c.util_way_hits.size(); ++d) {
    cum += c.util_way_hits[d];
    if (static_cast<double>(cum) >= want) {
      return static_cast<uint32_t>(d + 1);
    }
  }
  return static_cast<uint32_t>(c.util_way_hits.size());
}

}  // namespace

std::string ToCsv(const std::vector<ResultRow>& rows) {
  std::ostringstream out;
  out << "workload,system,throughput,mean_latency,p99_latency,tlb_misses,"
         "stale_hits,tlb_miss_rate,well_aligned_rate,guest_huge,host_huge,"
         "bookings_started,bookings_expired,bucket_hits,demotions,"
         "tier_demoted,tier_refaults,tier_resident,"
         "batches,batched_accesses,batch_region_groups,batch_fastpath_hits,"
         "batch_hist_b0,batch_hist_b1,batch_hist_b2,batch_hist_b3,"
         "batch_hist_b4,batch_hist_b5,batch_hist_b6,batch_hist_b7,"
         "tlb_mode,cross_vm_evictions,vm_invalidated,conflict_evictions,"
         "capacity_evictions,"
         "displaced_by_self,displaced_by_other,util_shadow_hits,"
         "util_shadow_misses,util_min_ways_90,ways_assigned,repartitions,"
         "repartition_evictions,lat_p50,lat_p90,lat_p99,"
         "walk_guest_mem_l4,walk_guest_mem_l3,walk_guest_mem_l2,"
         "walk_guest_mem_l1,walk_guest_pwc_l4,walk_guest_pwc_l3,"
         "walk_host_mem_l4,walk_host_mem_l3,walk_host_mem_l2,"
         "walk_host_mem_l1,walk_host_pwc_l4,walk_host_pwc_l3,"
         "walk_nested_hit_l4,walk_nested_hit_l3,walk_nested_hit_l2,"
         "walk_nested_hit_l1,walk_nested_walk_l4,walk_nested_walk_l3,"
         "walk_nested_walk_l2,walk_nested_walk_l1,"
         "walk_memo_hits,walk_memo_upper_hits,"
         "busy_cycles,wall_ms,seed\n";
  for (const ResultRow& row : rows) {
    SIM_CHECK(row.result != nullptr);
    const workload::RunResult& r = *row.result;
    out << EscapeCsv(row.workload) << ',' << EscapeCsv(row.system) << ','
        << r.throughput << ',' << r.mean_latency << ',' << r.p99_latency
        << ',' << r.tlb_misses << ',' << r.counters.tlb_stale_hits << ','
        << r.tlb_miss_rate << ','
        << r.alignment.well_aligned_rate << ',' << r.alignment.guest_huge
        << ',' << r.alignment.host_huge << ','
        << r.counters.bookings_started << ',' << r.counters.bookings_expired
        << ',' << r.counters.bucket_hits << ',' << r.counters.demotions
        << ',' << r.counters.tier_demoted_pages << ','
        << r.counters.tier_refaults << ',' << r.counters.tier_resident
        << ',' << r.counters.batches << ',' << r.counters.batched_accesses
        << ',' << r.counters.batch_region_groups << ','
        << r.counters.batch_fastpath_hits;
    for (const uint64_t bucket : r.counters.batch_size_hist) {
      out << ',' << bucket;
    }
    out << ',' << EscapeCsv(row.tlb_mode) << ','
        << r.counters.tlb_cross_vm_evictions << ','
        << r.counters.tlb_vm_invalidated << ','
        << (r.counters.tlb_conflict_evictions_base +
            r.counters.tlb_conflict_evictions_huge)
        << ','
        << (r.counters.tlb_capacity_evictions_base +
            r.counters.tlb_capacity_evictions_huge)
        << ',' << r.counters.tlb_displaced_by_self << ','
        << r.counters.tlb_displaced_by_other << ','
        << UtilShadowHits(r.counters) << ','
        << r.counters.util_shadow_misses << ','
        << UtilMinWays90(r.counters) << ','
        << r.counters.tlb_ways_assigned << ','
        << r.counters.tlb_repartitions << ','
        << r.counters.tlb_repartition_evictions << ','
        << base::Log2Histogram::PercentileOfCounts(r.counters.lat_hist, 0.50)
        << ','
        << base::Log2Histogram::PercentileOfCounts(r.counters.lat_hist, 0.90)
        << ','
        << base::Log2Histogram::PercentileOfCounts(r.counters.lat_hist, 0.99);
    const mmu::WalkLevelStats& w = r.counters.walk;
    for (const uint64_t v : w.guest_mem) {
      out << ',' << v;
    }
    out << ',' << w.guest_cached[0] << ',' << w.guest_cached[1];
    for (const uint64_t v : w.host_mem) {
      out << ',' << v;
    }
    out << ',' << w.host_cached[0] << ',' << w.host_cached[1];
    for (const uint64_t v : w.nested_hit) {
      out << ',' << v;
    }
    for (const uint64_t v : w.nested_walk) {
      out << ',' << v;
    }
    out << ',' << w.memo_hits << ',' << w.memo_upper_hits;
    out << ',' << r.busy_cycles << ',' << row.wall_ms << ',' << row.seed
        << '\n';
  }
  return out.str();
}

std::string ToJson(const std::vector<ResultRow>& rows) {
  std::ostringstream out;
  out << "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    SIM_CHECK(rows[i].result != nullptr);
    const workload::RunResult& r = *rows[i].result;
    out << "  {\"workload\": \"" << EscapeJson(rows[i].workload)
        << "\", \"system\": \"" << EscapeJson(rows[i].system)
        << "\", \"throughput\": " << r.throughput
        << ", \"mean_latency\": " << r.mean_latency
        << ", \"p99_latency\": " << r.p99_latency
        << ", \"tlb_misses\": " << r.tlb_misses
        << ", \"stale_hits\": " << r.counters.tlb_stale_hits
        << ", \"tlb_miss_rate\": " << r.tlb_miss_rate
        << ", \"well_aligned_rate\": " << r.alignment.well_aligned_rate
        << ", \"guest_huge\": " << r.alignment.guest_huge
        << ", \"host_huge\": " << r.alignment.host_huge
        << ", \"bookings_started\": " << r.counters.bookings_started
        << ", \"bookings_expired\": " << r.counters.bookings_expired
        << ", \"bucket_hits\": " << r.counters.bucket_hits
        << ", \"demotions\": " << r.counters.demotions
        << ", \"tier_demoted\": " << r.counters.tier_demoted_pages
        << ", \"tier_refaults\": " << r.counters.tier_refaults
        << ", \"tier_resident\": " << r.counters.tier_resident
        << ", \"batches\": " << r.counters.batches
        << ", \"batched_accesses\": " << r.counters.batched_accesses
        << ", \"batch_region_groups\": " << r.counters.batch_region_groups
        << ", \"batch_fastpath_hits\": " << r.counters.batch_fastpath_hits;
    for (size_t b = 0; b < r.counters.batch_size_hist.size(); ++b) {
      out << ", \"batch_hist_b" << b
          << "\": " << r.counters.batch_size_hist[b];
    }
    out << ", \"tlb_mode\": \"" << EscapeJson(rows[i].tlb_mode) << '"'
        << ", \"cross_vm_evictions\": " << r.counters.tlb_cross_vm_evictions
        << ", \"vm_invalidated\": " << r.counters.tlb_vm_invalidated
        << ", \"conflict_evictions\": "
        << (r.counters.tlb_conflict_evictions_base +
            r.counters.tlb_conflict_evictions_huge)
        << ", \"capacity_evictions\": "
        << (r.counters.tlb_capacity_evictions_base +
            r.counters.tlb_capacity_evictions_huge)
        << ", \"displaced_by_self\": " << r.counters.tlb_displaced_by_self
        << ", \"displaced_by_other\": " << r.counters.tlb_displaced_by_other
        << ", \"util_shadow_hits\": " << UtilShadowHits(r.counters)
        << ", \"util_shadow_misses\": " << r.counters.util_shadow_misses
        << ", \"util_min_ways_90\": " << UtilMinWays90(r.counters)
        << ", \"ways_assigned\": " << r.counters.tlb_ways_assigned
        << ", \"repartitions\": " << r.counters.tlb_repartitions
        << ", \"repartition_evictions\": "
        << r.counters.tlb_repartition_evictions
        << ", \"lat_p50\": "
        << base::Log2Histogram::PercentileOfCounts(r.counters.lat_hist, 0.50)
        << ", \"lat_p90\": "
        << base::Log2Histogram::PercentileOfCounts(r.counters.lat_hist, 0.90)
        << ", \"lat_p99\": "
        << base::Log2Histogram::PercentileOfCounts(r.counters.lat_hist, 0.99);
    const mmu::WalkLevelStats& w = r.counters.walk;
    static constexpr const char* kLevel[] = {"l4", "l3", "l2", "l1"};
    for (size_t l = 0; l < 4; ++l) {
      out << ", \"walk_guest_mem_" << kLevel[l] << "\": " << w.guest_mem[l];
    }
    out << ", \"walk_guest_pwc_l4\": " << w.guest_cached[0]
        << ", \"walk_guest_pwc_l3\": " << w.guest_cached[1];
    for (size_t l = 0; l < 4; ++l) {
      out << ", \"walk_host_mem_" << kLevel[l] << "\": " << w.host_mem[l];
    }
    out << ", \"walk_host_pwc_l4\": " << w.host_cached[0]
        << ", \"walk_host_pwc_l3\": " << w.host_cached[1];
    for (size_t l = 0; l < 4; ++l) {
      out << ", \"walk_nested_hit_" << kLevel[l]
          << "\": " << w.nested_hit[l];
    }
    for (size_t l = 0; l < 4; ++l) {
      out << ", \"walk_nested_walk_" << kLevel[l]
          << "\": " << w.nested_walk[l];
    }
    out << ", \"walk_memo_hits\": " << w.memo_hits
        << ", \"walk_memo_upper_hits\": " << w.memo_upper_hits;
    out << ", \"busy_cycles\": " << r.busy_cycles
        << ", \"wall_ms\": " << rows[i].wall_ms
        << ", \"seed\": " << rows[i].seed << '}'
        << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  out << "]\n";
  return out.str();
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  SIM_CHECK_MSG(out.good(), "cannot open %s for writing", path.c_str());
  out << content;
  out.close();
  SIM_CHECK_MSG(out.good(), "write to %s failed", path.c_str());
}

}  // namespace metrics
