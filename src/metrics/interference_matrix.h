// Rendering of the TLB utility monitor's results for the collocation
// figures: the NxN who-displaced-whom matrix and the per-VM marginal
// utility curves (see mmu/tlb_utility_monitor.h for how both are built).
//
// The report is a plain-data copy taken from a live TlbDomain, so the
// harness can capture it before the Machine (and the monitor inside it)
// is destroyed, and the bench binaries can render many captured cells
// side by side afterwards.
#ifndef SRC_METRICS_INTERFERENCE_MATRIX_H_
#define SRC_METRICS_INTERFERENCE_MATRIX_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mmu {
class TlbDomain;
}  // namespace mmu

namespace metrics {

// One victim VM's row of the interference report.
struct VmInterferenceRow {
  std::string label;  // e.g. "vm0 redis"
  // displaced_by[e]: this VM's misses attributed to evictor VM e's fills
  // (index = position in InterferenceReport::vms, same order for all rows).
  std::vector<uint64_t> displaced_by;
  // Shadow-sampler utility curve: way_hits[d] = sampled accesses that would
  // hit with d+1 dedicated ways; shadow_misses = sampled full-depth misses.
  std::vector<uint64_t> way_hits;
  uint64_t shadow_misses = 0;
  // The VM's counted physical TLB misses (denominator for attribution).
  uint64_t tlb_misses = 0;
};

struct InterferenceReport {
  std::vector<VmInterferenceRow> vms;
  bool empty() const { return vms.empty(); }
};

// Captures a report from the domain's utility monitor for the given
// (vmid, label) pairs.  Returns an empty report under a private domain
// (no monitor — interference is structurally impossible there).
InterferenceReport BuildInterferenceReport(
    const mmu::TlbDomain& domain,
    const std::vector<std::pair<uint16_t, std::string>>& vms);

// Renders one displaced-by matrix table per cell: rows are victim VMs,
// columns the attributed evictors plus the unattributed remainder
// (tlb_misses - sum(displaced_by), clamped at 0: cold misses and records
// lost to table aliasing) and the miss total.  `cells` pairs a cell label
// (e.g. "redis+memcached") with its captured report; empty reports are
// skipped.  Returns exactly what a TextTable prints, so goldens can pin it.
//
// The dense per-evictor-column form is O(N²) text; past `dense_vm_limit`
// VMs (128-plus-VM sweeps) it switches to a sparse render: one row per
// victim listing only its `top_k` largest attributed evictors as
// "vmE:count" triplets (descending count, ties to the lower evictor id),
// keeping the artifact O(N · top_k).  The defaults keep every existing
// ≤64-VM artifact byte-identical.
std::string RenderInterferenceMatrix(
    const std::string& title,
    const std::vector<std::pair<std::string, const InterferenceReport*>>&
        cells,
    size_t dense_vm_limit = 64, size_t top_k = 3);

// Renders the utility-curve companion: per VM, the sampled-access count,
// the full-depth shadow miss rate, and the cumulative would-hit fraction
// at each way count ("w<=k" columns, up to the largest curve present).
std::string RenderUtilityCurves(
    const std::string& title,
    const std::vector<std::pair<std::string, const InterferenceReport*>>&
        cells);

}  // namespace metrics

#endif  // SRC_METRICS_INTERFERENCE_MATRIX_H_
