#include "metrics/alignment_audit.h"

#include "base/types.h"

namespace metrics {

AlignmentReport AuditAlignment(const mmu::PageTable& guest_table,
                               const mmu::PageTable& ept) {
  AlignmentReport report;
  report.guest_huge = guest_table.huge_leaves();
  report.host_huge = ept.huge_leaves();
  guest_table.ForEachHuge([&](uint64_t gva_region, uint64_t gfn) {
    (void)gva_region;
    if (ept.IsHugeMapped(gfn >> base::kHugeOrder)) {
      ++report.aligned_pairs;
    }
  });
  const uint64_t total_huge = report.guest_huge + report.host_huge;
  if (total_huge > 0) {
    report.well_aligned_rate =
        2.0 * static_cast<double>(report.aligned_pairs) /
        static_cast<double>(total_huge);
  }
  const uint64_t mapped = guest_table.mapped_pages();
  if (mapped > 0) {
    report.aligned_coverage =
        static_cast<double>(report.aligned_pairs * base::kPagesPerHuge) /
        static_cast<double>(mapped);
  }
  return report;
}

}  // namespace metrics
