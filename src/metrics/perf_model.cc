#include "metrics/perf_model.h"

#include <cmath>

namespace metrics {

double Normalize(double value, double baseline) {
  if (baseline <= 0.0) {
    return 0.0;
  }
  return value / baseline;
}

double GeometricMean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double log_sum = 0.0;
  size_t counted = 0;
  for (double v : values) {
    if (v > 0.0) {
      log_sum += std::log(v);
      ++counted;
    }
  }
  return counted == 0 ? 0.0
                      : std::exp(log_sum / static_cast<double>(counted));
}

double ArithmeticMean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

}  // namespace metrics
