#include "metrics/table.h"

#include <algorithm>
#include <cstdio>

#include "base/check.h"

namespace metrics {

void TextTable::SetColumns(std::vector<std::string> columns) {
  columns_ = std::move(columns);
}

void TextTable::AddRow(std::vector<std::string> cells) {
  SIM_CHECK(columns_.empty() || cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::Render() const {
  std::vector<size_t> widths(columns_.size(), 0);
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out = "\n== " + title_ + " ==\n";
  auto append_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      out += cells[c];
      out.append(widths[c] - cells[c].size(), ' ');
      out += c + 1 == cells.size() ? "\n" : "  ";
    }
  };
  append_row(columns_);
  size_t total = columns_.empty() ? 0 : (columns_.size() - 1) * 2;
  for (size_t w : widths) {
    total += w;
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) {
    append_row(row);
  }
  return out;
}

void TextTable::Print() const { std::fputs(Render().c_str(), stdout); }

std::string TextTable::Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TextTable::Pct(double fraction) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f%%", fraction * 100.0);
  return buf;
}

}  // namespace metrics
