#include "metrics/table.h"

#include <algorithm>
#include <cstdio>

#include "base/check.h"

namespace metrics {

void TextTable::SetColumns(std::vector<std::string> columns) {
  columns_ = std::move(columns);
}

void TextTable::AddRow(std::vector<std::string> cells) {
  SIM_CHECK(columns_.empty() || cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::Print() const {
  std::vector<size_t> widths(columns_.size(), 0);
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::printf("\n== %s ==\n", title_.c_str());
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      std::printf("%-*s%s", static_cast<int>(widths[c]), cells[c].c_str(),
                  c + 1 == cells.size() ? "\n" : "  ");
    }
  };
  print_row(columns_);
  size_t total = columns_.empty() ? 0 : (columns_.size() - 1) * 2;
  for (size_t w : widths) {
    total += w;
  }
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string TextTable::Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TextTable::Pct(double fraction) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f%%", fraction * 100.0);
  return buf;
}

}  // namespace metrics
