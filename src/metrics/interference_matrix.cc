#include "metrics/interference_matrix.h"

#include <algorithm>

#include "metrics/table.h"
#include "mmu/tlb_domain.h"

namespace metrics {
namespace {

// Misses with no surviving displaced record: cold misses plus records lost
// to table aliasing.  Clamped because attribution made on a faulting
// attempt can momentarily exceed the *counted* misses mid-phase.
uint64_t Unattributed(const VmInterferenceRow& row) {
  uint64_t attributed = 0;
  for (const uint64_t d : row.displaced_by) {
    attributed += d;
  }
  return row.tlb_misses > attributed ? row.tlb_misses - attributed : 0;
}

size_t MaxVms(
    const std::vector<std::pair<std::string, const InterferenceReport*>>&
        cells) {
  size_t n = 0;
  for (const auto& [label, report] : cells) {
    if (report != nullptr) {
      n = std::max(n, report->vms.size());
    }
  }
  return n;
}

}  // namespace

InterferenceReport BuildInterferenceReport(
    const mmu::TlbDomain& domain,
    const std::vector<std::pair<uint16_t, std::string>>& vms) {
  InterferenceReport report;
  const mmu::TlbUtilityMonitor* monitor = domain.utility_monitor();
  if (monitor == nullptr) {
    return report;  // private arrays: no shared resource to attribute
  }
  const mmu::Tlb* tlb = domain.shared_tlb();
  for (const auto& [victim, victim_label] : vms) {
    VmInterferenceRow row;
    row.label = victim_label;
    for (const auto& [evictor, evictor_label] : vms) {
      row.displaced_by.push_back(monitor->displaced(victim, evictor));
    }
    const mmu::TlbUtilityMonitor::VmUtility& u = monitor->utility(victim);
    row.way_hits = u.way_hits;
    row.shadow_misses = u.shadow_misses;
    row.tlb_misses = tlb->vm_counters(victim).misses;
    report.vms.push_back(std::move(row));
  }
  return report;
}

namespace {

// Sparse form for rack-density sweeps: per victim, only the top-k
// attributed evictors, as "vmE:count" triplets.
std::string RenderInterferenceTriplets(
    const std::string& title,
    const std::vector<std::pair<std::string, const InterferenceReport*>>&
        cells,
    size_t top_k) {
  TextTable table(title);
  table.SetColumns({"pair", "victim", "top evictors", "unattrib", "misses"});
  for (const auto& [cell_label, report] : cells) {
    if (report == nullptr || report->empty()) {
      continue;
    }
    for (const VmInterferenceRow& row : report->vms) {
      // Indices of nonzero evictors, by descending count; ties keep the
      // lower evictor id first (stable sort over an id-ordered base).
      std::vector<size_t> order;
      for (size_t e = 0; e < row.displaced_by.size(); ++e) {
        if (row.displaced_by[e] != 0) {
          order.push_back(e);
        }
      }
      std::stable_sort(order.begin(), order.end(),
                       [&row](size_t a, size_t b) {
                         return row.displaced_by[a] > row.displaced_by[b];
                       });
      if (order.size() > top_k) {
        order.resize(top_k);
      }
      std::string top;
      for (const size_t e : order) {
        if (!top.empty()) {
          top += ' ';
        }
        top += "vm" + std::to_string(e) + ':' +
               std::to_string(row.displaced_by[e]);
      }
      if (top.empty()) {
        top = "-";
      }
      table.AddRow({cell_label, row.label, top,
                    std::to_string(Unattributed(row)),
                    std::to_string(row.tlb_misses)});
    }
  }
  return table.Render();
}

}  // namespace

std::string RenderInterferenceMatrix(
    const std::string& title,
    const std::vector<std::pair<std::string, const InterferenceReport*>>&
        cells,
    size_t dense_vm_limit, size_t top_k) {
  const size_t n = MaxVms(cells);
  if (n == 0) {
    return std::string();
  }
  if (n > dense_vm_limit) {
    return RenderInterferenceTriplets(title, cells, top_k);
  }
  TextTable table(title);
  std::vector<std::string> columns = {"pair", "victim"};
  for (size_t e = 0; e < n; ++e) {
    columns.push_back("by vm" + std::to_string(e));
  }
  columns.push_back("unattrib");
  columns.push_back("misses");
  table.SetColumns(std::move(columns));
  for (const auto& [cell_label, report] : cells) {
    if (report == nullptr || report->empty()) {
      continue;
    }
    for (const VmInterferenceRow& row : report->vms) {
      std::vector<std::string> cells_out = {cell_label, row.label};
      for (size_t e = 0; e < n; ++e) {
        cells_out.push_back(e < row.displaced_by.size()
                                ? std::to_string(row.displaced_by[e])
                                : "-");
      }
      cells_out.push_back(std::to_string(Unattributed(row)));
      cells_out.push_back(std::to_string(row.tlb_misses));
      table.AddRow(std::move(cells_out));
    }
  }
  return table.Render();
}

std::string RenderUtilityCurves(
    const std::string& title,
    const std::vector<std::pair<std::string, const InterferenceReport*>>&
        cells) {
  size_t ways = 0;
  for (const auto& [label, report] : cells) {
    if (report == nullptr) {
      continue;
    }
    for (const VmInterferenceRow& row : report->vms) {
      ways = std::max(ways, row.way_hits.size());
    }
  }
  if (ways == 0) {
    return std::string();
  }
  TextTable table(title);
  std::vector<std::string> columns = {"pair", "vm", "sampled", "miss%"};
  for (size_t w = 1; w <= ways; ++w) {
    columns.push_back("w<=" + std::to_string(w));
  }
  table.SetColumns(std::move(columns));
  for (const auto& [cell_label, report] : cells) {
    if (report == nullptr || report->empty()) {
      continue;
    }
    for (const VmInterferenceRow& row : report->vms) {
      uint64_t sampled = row.shadow_misses;
      for (const uint64_t h : row.way_hits) {
        sampled += h;
      }
      std::vector<std::string> cells_out = {cell_label, row.label,
                                            std::to_string(sampled)};
      const double denom =
          sampled > 0 ? static_cast<double>(sampled) : 1.0;
      cells_out.push_back(
          TextTable::Pct(static_cast<double>(row.shadow_misses) / denom));
      uint64_t cum = 0;
      for (size_t w = 0; w < ways; ++w) {
        if (w < row.way_hits.size()) {
          cum += row.way_hits[w];
          cells_out.push_back(
              TextTable::Pct(static_cast<double>(cum) / denom));
        } else {
          cells_out.push_back("-");
        }
      }
      table.AddRow(std::move(cells_out));
    }
  }
  return table.Render();
}

}  // namespace metrics
