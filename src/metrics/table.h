// Fixed-width text tables for the bench binaries: every figure/table
// reproduction prints one of these, with workloads as rows and systems as
// columns, matching how the paper lays out its results.
#ifndef SRC_METRICS_TABLE_H_
#define SRC_METRICS_TABLE_H_

#include <string>
#include <vector>

namespace metrics {

class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  void SetColumns(std::vector<std::string> columns);
  void AddRow(std::vector<std::string> cells);

  // Renders the full table (title, header, separator, rows) to a string —
  // exactly what Print() writes, so golden-output tests can pin a table's
  // byte-exact shape without capturing stdout.
  std::string Render() const;
  // Renders to stdout.
  void Print() const;

  static std::string Fmt(double value, int precision = 2);
  static std::string Pct(double fraction);  // 0.51 -> "51%"

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace metrics

#endif  // SRC_METRICS_TABLE_H_
