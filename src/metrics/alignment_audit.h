// Alignment auditor: computes the "rate of well-aligned huge pages" the
// paper reports in Tables 1, 3 and 4.
//
// A guest huge page is well-aligned iff its guest-physical target region is
// backed by a huge EPT leaf; symmetrically for host huge pages.  The rate
// is the fraction of all huge pages (both layers) that participate in a
// well-aligned pair:
//
//   rate = 2 * |aligned pairs| / (guest huge pages + host huge pages)
//
// which is 100 % when the two layers' huge pages match exactly and 0 % when
// none match.
#ifndef SRC_METRICS_ALIGNMENT_AUDIT_H_
#define SRC_METRICS_ALIGNMENT_AUDIT_H_

#include <cstdint>

#include "mmu/page_table.h"

namespace metrics {

struct AlignmentReport {
  uint64_t guest_huge = 0;
  uint64_t host_huge = 0;
  uint64_t aligned_pairs = 0;
  double well_aligned_rate = 0.0;
  // Fraction of the guest's *mapped memory* covered by well-aligned huge
  // pages (a coverage view; the paper's rate is the page-count view above).
  double aligned_coverage = 0.0;
};

AlignmentReport AuditAlignment(const mmu::PageTable& guest_table,
                               const mmu::PageTable& ept);

}  // namespace metrics

#endif  // SRC_METRICS_ALIGNMENT_AUDIT_H_
