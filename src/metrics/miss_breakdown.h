// TLB miss-source breakdown (the fig16 companion table): splits each
// run's counted TLB misses into the three sources the simulator can tell
// apart exactly:
//
//   cold       the access demand-paged (faulting accesses each contribute
//              exactly one counted miss, since faulting translate attempts
//              are uncounted and retried),
//   precise    hits dropped by generation-stamp validation — the software
//              analogue of INVLPG / tagged-INVEPT invalidations (the
//              TLB's stale_hits counter),
//   capacity   everything else: evictions and conflicts.
//
// The capacity bucket is further split using the TLB's per-set occupancy
// telemetry: every eviction of a valid entry is classified at eviction
// time as *conflict* (the inserting VM's way window still had free ways in
// other sets — a better-indexed TLB would not have evicted) or *true
// capacity* (the window was completely full), per evicted-entry page size.
// The capacity-miss remainder is apportioned over those eviction counts,
// giving the conflict-4k / conflict-2M / true-capacity columns.
//
// The cold/precise/capacity split is exact, not modeled: all three inputs
// are counters the machine maintains anyway.  The conflict sub-split is an
// apportionment (misses are not tracked back to the specific eviction that
// caused them), deterministic by integer arithmetic.  Rendering is
// separated from the figure bench so tests can pin the table's byte-exact
// output.
#ifndef SRC_METRICS_MISS_BREAKDOWN_H_
#define SRC_METRICS_MISS_BREAKDOWN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.h"
#include "mmu/nested_walker.h"

namespace metrics {

struct MissSourceRow {
  std::string label;
  uint64_t tlb_misses = 0;
  uint64_t cold = 0;   // faulting accesses in the measured phase
  uint64_t stale = 0;  // precise invalidations (stale hits)
  // Valid-entry evictions seen by the VM's TLB over the measured phase,
  // classified at eviction time (see mmu::Tlb), used to apportion the
  // capacity bucket.  All zero renders as 100% true capacity.
  uint64_t conflict_evictions_base = 0;
  uint64_t conflict_evictions_huge = 0;
  uint64_t capacity_evictions_base = 0;
  uint64_t capacity_evictions_huge = 0;
};

// Capacity/conflict misses: the remainder after cold and precise misses,
// clamped at zero (warm-up truncation can leave a cold count larger than
// the measured-phase miss count).
uint64_t CapacityMisses(const MissSourceRow& row);

// The capacity remainder apportioned over the row's eviction counts:
// conflict misses per page size, plus the true-capacity rest.  The three
// parts always sum to CapacityMisses(row).
struct CapacitySplit {
  uint64_t conflict_base = 0;
  uint64_t conflict_huge = 0;
  uint64_t true_capacity = 0;
};
CapacitySplit SplitCapacityMisses(const MissSourceRow& row);

// Renders the breakdown as a TextTable: one row per input with absolute
// misses and the three source shares, plus an arithmetic-mean row.
std::string RenderMissBreakdown(const std::vector<MissSourceRow>& rows);

// One workload's per-level walk accounting for RenderWalkLevelBreakdown:
// the walk counters over the measured phase plus the walker's cost knobs,
// so the table can attribute miss cycles to levels exactly the way the
// walker charged them.
struct WalkLevelRow {
  std::string label;
  mmu::WalkLevelStats walk;
  base::Cycles cycles_per_memory_ref = 50;
  base::Cycles cycles_per_cached_ref = 2;
};

// Miss cycles charged by one walk level across both dimensions:
// (guest_mem + host_mem) * cycles_per_memory_ref +
// (guest_cached + host_cached) * cycles_per_cached_ref.  Level indices are
// WalkLevelStats's (0 = L4 .. 3 = L1).  Nested-cache hits are free by the
// cost model, so they appear in the table only as reference counts.
base::Cycles WalkLevelCycles(const WalkLevelRow& row, size_t level);

// Renders the per-walk-level companion table: one row per (workload,
// level) with where that level's references were served and the cycles it
// charged, plus per-workload memo replay tallies.  Separate from
// RenderMissBreakdown so the fig16 golden output is untouched.
std::string RenderWalkLevelBreakdown(const std::vector<WalkLevelRow>& rows);

}  // namespace metrics

#endif  // SRC_METRICS_MISS_BREAKDOWN_H_
