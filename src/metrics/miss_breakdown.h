// TLB miss-source breakdown (the fig16 companion table): splits each
// run's counted TLB misses into the three sources the simulator can tell
// apart exactly:
//
//   cold       the access demand-paged (faulting accesses each contribute
//              exactly one counted miss, since faulting translate attempts
//              are uncounted and retried),
//   precise    hits dropped by generation-stamp validation — the software
//              analogue of INVLPG / tagged-INVEPT invalidations (the
//              TLB's stale_hits counter),
//   capacity   everything else: evictions and conflicts.
//
// The split is exact, not modeled: all three inputs are counters the
// machine maintains anyway.  Rendering is separated from the figure bench
// so tests can pin the table's byte-exact output.
#ifndef SRC_METRICS_MISS_BREAKDOWN_H_
#define SRC_METRICS_MISS_BREAKDOWN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace metrics {

struct MissSourceRow {
  std::string label;
  uint64_t tlb_misses = 0;
  uint64_t cold = 0;   // faulting accesses in the measured phase
  uint64_t stale = 0;  // precise invalidations (stale hits)
};

// Capacity/conflict misses: the remainder after cold and precise misses,
// clamped at zero (warm-up truncation can leave a cold count larger than
// the measured-phase miss count).
uint64_t CapacityMisses(const MissSourceRow& row);

// Renders the breakdown as a TextTable: one row per input with absolute
// misses and the three source shares, plus an arithmetic-mean row.
std::string RenderMissBreakdown(const std::vector<MissSourceRow>& rows);

}  // namespace metrics

#endif  // SRC_METRICS_MISS_BREAKDOWN_H_
