#include "metrics/counters.h"

namespace metrics {

StackSnapshot StackSnapshot::Delta(const StackSnapshot& earlier) const {
  StackSnapshot d;
  d.tlb_hits = tlb_hits - earlier.tlb_hits;
  d.tlb_misses = tlb_misses - earlier.tlb_misses;
  d.tlb_stale_hits = tlb_stale_hits - earlier.tlb_stale_hits;
  d.tlb_shootdowns = tlb_shootdowns - earlier.tlb_shootdowns;
  d.tlb_vm_invalidated = tlb_vm_invalidated - earlier.tlb_vm_invalidated;
  d.tlb_cross_vm_evictions =
      tlb_cross_vm_evictions - earlier.tlb_cross_vm_evictions;
  d.tlb_conflict_evictions_base =
      tlb_conflict_evictions_base - earlier.tlb_conflict_evictions_base;
  d.tlb_conflict_evictions_huge =
      tlb_conflict_evictions_huge - earlier.tlb_conflict_evictions_huge;
  d.tlb_capacity_evictions_base =
      tlb_capacity_evictions_base - earlier.tlb_capacity_evictions_base;
  d.tlb_capacity_evictions_huge =
      tlb_capacity_evictions_huge - earlier.tlb_capacity_evictions_huge;
  d.tlb_flushes = tlb_flushes - earlier.tlb_flushes;
  d.tlb_displaced_by_self =
      tlb_displaced_by_self - earlier.tlb_displaced_by_self;
  d.tlb_displaced_by_other =
      tlb_displaced_by_other - earlier.tlb_displaced_by_other;
  for (size_t i = 0; i < util_way_hits.size(); ++i) {
    d.util_way_hits[i] = util_way_hits[i] - earlier.util_way_hits[i];
  }
  d.util_shadow_misses = util_shadow_misses - earlier.util_shadow_misses;
  // A level, not a counter: the delta reports the allocation in force at
  // the later snapshot (differencing window sizes would be meaningless).
  d.tlb_ways_assigned = tlb_ways_assigned;
  d.tlb_repartitions = tlb_repartitions - earlier.tlb_repartitions;
  d.tlb_repartition_evictions =
      tlb_repartition_evictions - earlier.tlb_repartition_evictions;
  for (size_t i = 0; i < lat_hist.size(); ++i) {
    d.lat_hist[i] = lat_hist[i] - earlier.lat_hist[i];
  }
  d.translation_cycles = translation_cycles - earlier.translation_cycles;
  d.guest_fault_cycles = guest_fault_cycles - earlier.guest_fault_cycles;
  d.guest_overhead_cycles =
      guest_overhead_cycles - earlier.guest_overhead_cycles;
  d.host_fault_cycles = host_fault_cycles - earlier.host_fault_cycles;
  d.host_overhead_cycles = host_overhead_cycles - earlier.host_overhead_cycles;
  d.guest_promotions = guest_promotions - earlier.guest_promotions;
  d.host_promotions = host_promotions - earlier.host_promotions;
  d.pages_copied = pages_copied - earlier.pages_copied;
  d.demotions = demotions - earlier.demotions;
  d.tier_demoted_pages = tier_demoted_pages - earlier.tier_demoted_pages;
  d.tier_refaults = tier_refaults - earlier.tier_refaults;
  // A level, not a counter (see counters.h): report the later residency.
  d.tier_resident = tier_resident;
  d.bookings_started = bookings_started - earlier.bookings_started;
  d.bookings_expired = bookings_expired - earlier.bookings_expired;
  d.bucket_hits = bucket_hits - earlier.bucket_hits;
  d.batches = batches - earlier.batches;
  d.batched_accesses = batched_accesses - earlier.batched_accesses;
  d.batch_region_groups = batch_region_groups - earlier.batch_region_groups;
  d.batch_fastpath_hits = batch_fastpath_hits - earlier.batch_fastpath_hits;
  for (size_t i = 0; i < batch_size_hist.size(); ++i) {
    d.batch_size_hist[i] = batch_size_hist[i] - earlier.batch_size_hist[i];
  }
  for (size_t l = 0; l < d.walk.guest_mem.size(); ++l) {
    d.walk.guest_mem[l] = walk.guest_mem[l] - earlier.walk.guest_mem[l];
    d.walk.guest_cached[l] =
        walk.guest_cached[l] - earlier.walk.guest_cached[l];
    d.walk.host_mem[l] = walk.host_mem[l] - earlier.walk.host_mem[l];
    d.walk.host_cached[l] = walk.host_cached[l] - earlier.walk.host_cached[l];
    d.walk.nested_hit[l] = walk.nested_hit[l] - earlier.walk.nested_hit[l];
    d.walk.nested_walk[l] = walk.nested_walk[l] - earlier.walk.nested_walk[l];
  }
  d.walk.memo_hits = walk.memo_hits - earlier.walk.memo_hits;
  d.walk.memo_upper_hits =
      walk.memo_upper_hits - earlier.walk.memo_upper_hits;
  return d;
}

StackSnapshot Snapshot(osim::Machine& machine, int32_t vm_id) {
  StackSnapshot s;
  osim::VirtualMachine& vm = machine.vm(vm_id);
  s.tlb_hits = vm.engine().tlb().hits();
  s.tlb_misses = vm.engine().tlb().misses();
  s.tlb_stale_hits = vm.engine().tlb().stale_hits();
  s.tlb_shootdowns = vm.engine().tlb().shootdowns();
  const mmu::TlbView& tlb = vm.engine().tlb();
  s.tlb_vm_invalidated = tlb.vm_invalidated();
  s.tlb_cross_vm_evictions = tlb.cross_vm_evictions();
  s.tlb_conflict_evictions_base = tlb.conflict_evictions_base();
  s.tlb_conflict_evictions_huge = tlb.conflict_evictions_huge();
  s.tlb_capacity_evictions_base = tlb.capacity_evictions_base();
  s.tlb_capacity_evictions_huge = tlb.capacity_evictions_huge();
  s.tlb_flushes = tlb.flushes();
  s.tlb_displaced_by_self = tlb.displaced_by_self();
  s.tlb_displaced_by_other = tlb.displaced_by_other();
  if (const mmu::TlbUtilityMonitor* mon =
          machine.tlb_domain().utility_monitor()) {
    const mmu::TlbUtilityMonitor::VmUtility& u =
        mon->utility(static_cast<uint16_t>(vm_id));
    for (size_t d = 0; d < u.way_hits.size(); ++d) {
      // Fold ways beyond the snapshot array into its last slot.
      const size_t slot = d < s.util_way_hits.size()
                              ? d
                              : s.util_way_hits.size() - 1;
      s.util_way_hits[slot] += u.way_hits[d];
    }
    s.util_shadow_misses = u.shadow_misses;
  }
  s.tlb_ways_assigned = tlb.ways_assigned();
  s.tlb_repartitions = machine.tlb_domain().repartition_count();
  s.tlb_repartition_evictions = tlb.repartition_evictions();
  s.lat_hist = vm.engine().latency_histogram().buckets();
  s.translation_cycles = vm.engine().translation_cycles();
  const osim::KernelStats& g = vm.guest().stats();
  s.guest_fault_cycles = g.fault_cycles;
  s.guest_overhead_cycles = g.overhead_cycles;
  s.guest_promotions = g.promotions_in_place + g.promotions_migrated;
  const osim::KernelStats& h = vm.host_slice().stats();
  s.host_fault_cycles = h.fault_cycles;
  s.host_overhead_cycles = h.overhead_cycles;
  s.host_promotions = h.promotions_in_place + h.promotions_migrated;
  s.pages_copied = g.pages_copied + h.pages_copied;
  s.demotions = g.demotions + h.demotions;
  if (const vmem::TierSpace* tier = machine.host_tier()) {
    const vmem::TierStats tier_stats = tier->stats(vm_id);
    s.tier_demoted_pages = tier_stats.demoted_pages;
    s.tier_refaults = tier_stats.refaults;
    s.tier_resident = tier->resident(vm_id);
  }
  const policy::PolicyTelemetry gt = vm.guest().policy().Telemetry();
  const policy::PolicyTelemetry ht = vm.host_slice().policy().Telemetry();
  s.bookings_started = gt.bookings_started + ht.bookings_started;
  s.bookings_expired = gt.bookings_expired + ht.bookings_expired;
  s.bucket_hits = gt.bucket_hits + ht.bucket_hits;
  const mmu::TranslationEngine::BatchStats& b = vm.engine().batch_stats();
  s.batches = b.batches;
  s.batched_accesses = b.batched_translations;
  s.batch_region_groups = b.region_groups;
  s.batch_fastpath_hits = b.fastpath_hits;
  s.batch_size_hist = b.size_hist;
  s.walk = vm.engine().walk_stats();
  return s;
}

}  // namespace metrics
