#include "metrics/miss_breakdown.h"

#include "metrics/perf_model.h"
#include "metrics/table.h"

namespace metrics {

uint64_t CapacityMisses(const MissSourceRow& row) {
  const uint64_t classified = row.cold + row.stale;
  return row.tlb_misses > classified ? row.tlb_misses - classified : 0;
}

std::string RenderMissBreakdown(const std::vector<MissSourceRow>& rows) {
  TextTable table(
      "Figure 16 companion: TLB miss sources (cold vs precise invalidation "
      "vs capacity)");
  table.SetColumns({"workload", "misses", "cold", "precise inval",
                    "capacity"});
  std::vector<double> cold_shares;
  std::vector<double> stale_shares;
  std::vector<double> capacity_shares;
  for (const MissSourceRow& row : rows) {
    const uint64_t capacity = CapacityMisses(row);
    const double total = static_cast<double>(row.tlb_misses);
    const double cold_share = total > 0 ? row.cold / total : 0.0;
    const double stale_share = total > 0 ? row.stale / total : 0.0;
    const double capacity_share = total > 0 ? capacity / total : 0.0;
    cold_shares.push_back(cold_share);
    stale_shares.push_back(stale_share);
    capacity_shares.push_back(capacity_share);
    table.AddRow({row.label, std::to_string(row.tlb_misses),
                  TextTable::Pct(cold_share), TextTable::Pct(stale_share),
                  TextTable::Pct(capacity_share)});
  }
  table.AddRow({"average", "", TextTable::Pct(ArithmeticMean(cold_shares)),
                TextTable::Pct(ArithmeticMean(stale_shares)),
                TextTable::Pct(ArithmeticMean(capacity_shares))});
  return table.Render();
}

}  // namespace metrics
