#include "metrics/miss_breakdown.h"

#include "metrics/perf_model.h"
#include "metrics/table.h"

namespace metrics {

uint64_t CapacityMisses(const MissSourceRow& row) {
  const uint64_t classified = row.cold + row.stale;
  return row.tlb_misses > classified ? row.tlb_misses - classified : 0;
}

CapacitySplit SplitCapacityMisses(const MissSourceRow& row) {
  CapacitySplit split;
  const uint64_t capacity = CapacityMisses(row);
  const uint64_t evictions =
      row.conflict_evictions_base + row.conflict_evictions_huge +
      row.capacity_evictions_base + row.capacity_evictions_huge;
  if (evictions == 0) {
    // No eviction telemetry (e.g. the working set never filled a set):
    // nothing to attribute to conflicts.
    split.true_capacity = capacity;
    return split;
  }
  // Integer apportionment: floor the conflict parts, give the remainder to
  // true capacity so the three always sum to `capacity`.
  split.conflict_base = capacity * row.conflict_evictions_base / evictions;
  split.conflict_huge = capacity * row.conflict_evictions_huge / evictions;
  split.true_capacity =
      capacity - split.conflict_base - split.conflict_huge;
  return split;
}

std::string RenderMissBreakdown(const std::vector<MissSourceRow>& rows) {
  TextTable table(
      "Figure 16 companion: TLB miss sources (cold vs precise invalidation "
      "vs conflict vs true capacity)");
  table.SetColumns({"workload", "misses", "cold", "precise inval",
                    "conflict 4k", "conflict 2M", "true capacity"});
  std::vector<double> cold_shares;
  std::vector<double> stale_shares;
  std::vector<double> conflict_base_shares;
  std::vector<double> conflict_huge_shares;
  std::vector<double> true_capacity_shares;
  for (const MissSourceRow& row : rows) {
    const CapacitySplit split = SplitCapacityMisses(row);
    const double total = static_cast<double>(row.tlb_misses);
    const double cold_share = total > 0 ? row.cold / total : 0.0;
    const double stale_share = total > 0 ? row.stale / total : 0.0;
    const double conflict_base_share =
        total > 0 ? split.conflict_base / total : 0.0;
    const double conflict_huge_share =
        total > 0 ? split.conflict_huge / total : 0.0;
    const double true_capacity_share =
        total > 0 ? split.true_capacity / total : 0.0;
    cold_shares.push_back(cold_share);
    stale_shares.push_back(stale_share);
    conflict_base_shares.push_back(conflict_base_share);
    conflict_huge_shares.push_back(conflict_huge_share);
    true_capacity_shares.push_back(true_capacity_share);
    table.AddRow({row.label, std::to_string(row.tlb_misses),
                  TextTable::Pct(cold_share), TextTable::Pct(stale_share),
                  TextTable::Pct(conflict_base_share),
                  TextTable::Pct(conflict_huge_share),
                  TextTable::Pct(true_capacity_share)});
  }
  table.AddRow({"average", "", TextTable::Pct(ArithmeticMean(cold_shares)),
                TextTable::Pct(ArithmeticMean(stale_shares)),
                TextTable::Pct(ArithmeticMean(conflict_base_shares)),
                TextTable::Pct(ArithmeticMean(conflict_huge_shares)),
                TextTable::Pct(ArithmeticMean(true_capacity_shares))});
  return table.Render();
}

base::Cycles WalkLevelCycles(const WalkLevelRow& row, size_t level) {
  const mmu::WalkLevelStats& w = row.walk;
  return (w.guest_mem[level] + w.host_mem[level]) *
             row.cycles_per_memory_ref +
         (w.guest_cached[level] + w.host_cached[level]) *
             row.cycles_per_cached_ref;
}

std::string RenderWalkLevelBreakdown(const std::vector<WalkLevelRow>& rows) {
  static constexpr const char* kLevelName[] = {"L4 PML4", "L3 PDPT",
                                               "L2 PD", "L1 PT"};
  TextTable table(
      "Walk-level breakdown: where each level's references were served and "
      "the miss cycles it charged (DESIGN.md §3e)");
  table.SetColumns({"workload", "level", "guest mem", "guest pwc",
                    "host mem", "host pwc", "nested hit", "nested walk",
                    "cycles"});
  for (const WalkLevelRow& row : rows) {
    const mmu::WalkLevelStats& w = row.walk;
    for (size_t l = 0; l < w.guest_mem.size(); ++l) {
      table.AddRow({row.label, kLevelName[l], std::to_string(w.guest_mem[l]),
                    std::to_string(w.guest_cached[l]),
                    std::to_string(w.host_mem[l]),
                    std::to_string(w.host_cached[l]),
                    std::to_string(w.nested_hit[l]),
                    std::to_string(w.nested_walk[l]),
                    std::to_string(WalkLevelCycles(row, l))});
    }
    // Memo replays reuse recorded probe slots instead of re-hashing; the
    // tallies contextualize the (already folded-in) per-level counts.
    table.AddRow({row.label, "memo",
                  "replays=" + std::to_string(w.memo_hits), "", "", "", "",
                  "upper=" + std::to_string(w.memo_upper_hits), ""});
  }
  return table.Render();
}

}  // namespace metrics
