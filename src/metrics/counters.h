// Counter snapshots across the stack, so the driver can compute deltas for
// exactly the measured phase of a run (warm-up excluded, daemons included).
#ifndef SRC_METRICS_COUNTERS_H_
#define SRC_METRICS_COUNTERS_H_

#include <array>
#include <cstdint>

#include "base/stats.h"
#include "base/types.h"
#include "mmu/nested_walker.h"
#include "os/machine.h"

namespace metrics {

struct StackSnapshot {
  uint64_t tlb_hits = 0;
  uint64_t tlb_misses = 0;
  // TLB hits reclassified as misses because the cached translation no
  // longer matched the page tables (precise invalidation).  Already
  // included in tlb_misses; this splits them out from cold/capacity misses.
  uint64_t tlb_stale_hits = 0;
  uint64_t tlb_shootdowns = 0;
  // TLB sharing-domain counters (zero under a private TLB arrangement).
  // Entries of this VM dropped by tagged selective invalidation — counted
  // per entry, unlike tlb_flushes which counts whole-array wipes.
  uint64_t tlb_vm_invalidated = 0;
  // This VM's entries evicted by another VM's fills on a shared array.
  uint64_t tlb_cross_vm_evictions = 0;
  // Evictions of this VM's entries split by whether the inserting VM still
  // had free ways elsewhere in its window (conflict) or not (true
  // capacity), per evicted-entry page size.
  uint64_t tlb_conflict_evictions_base = 0;
  uint64_t tlb_conflict_evictions_huge = 0;
  uint64_t tlb_capacity_evictions_base = 0;
  uint64_t tlb_capacity_evictions_huge = 0;
  // Whole-array flushes of the physical TLB this VM translates through
  // (kept separate from tlb_vm_invalidated so private-mode goldens hold).
  uint64_t tlb_flushes = 0;
  // Utility-monitor attribution of this VM's misses (zero under a private
  // arrangement, where no monitor is attached): misses proven caused by a
  // displaced entry, split by whether this VM or another VM inserted the
  // displacing fill.  self + other <= tlb_misses; the rest is cold or
  // unattributed (record lost to table aliasing).
  uint64_t tlb_displaced_by_self = 0;
  uint64_t tlb_displaced_by_other = 0;
  // Shadow-tag utility sampler (zero under private): util_way_hits[d] is
  // the VM's sampled accesses that would hit with d+1 dedicated ways; the
  // array is sized for the largest supported associativity (physical ways
  // beyond it are folded into the last slot by Snapshot()).
  std::array<uint64_t, 16> util_way_hits{};
  uint64_t util_shadow_misses = 0;
  // Dynamic way repartitioning (GEMINI_TLB_MODE=dynamic; zero elsewhere).
  // ways_assigned is a *level*, not a counter: the VM's current way-window
  // size (the full associativity under private mode).  Delta() carries the
  // later snapshot's value through unchanged, so a phase delta reports the
  // allocation in force when the phase ended.
  uint64_t tlb_ways_assigned = 0;
  // Domain-wide applied repartition count (same value in every VM's
  // snapshot — the repartitioner moves all windows in one tick).
  uint64_t tlb_repartitions = 0;
  // This VM's entries dropped by window moves.
  uint64_t tlb_repartition_evictions = 0;
  // Per-access translation-latency histogram: log2 cycle buckets of every
  // successful translation (see base::Log2Histogram bucket convention).
  std::array<uint64_t, base::Log2Histogram::kBuckets> lat_hist{};
  base::Cycles translation_cycles = 0;
  base::Cycles guest_fault_cycles = 0;
  base::Cycles guest_overhead_cycles = 0;
  base::Cycles host_fault_cycles = 0;
  base::Cycles host_overhead_cycles = 0;
  uint64_t guest_promotions = 0;
  uint64_t host_promotions = 0;
  uint64_t pages_copied = 0;
  uint64_t demotions = 0;
  // Tiered memory (DESIGN.md §3i; zero when the machine has no far tier).
  // Host-layer pages of this VM demoted to the far tier, and far pages
  // refaulted back to near memory on access.
  uint64_t tier_demoted_pages = 0;
  uint64_t tier_refaults = 0;
  // This VM's pages far-resident right now — a level like
  // tlb_ways_assigned, not a counter: Delta() carries the later snapshot's
  // value through, so a phase delta reports the residency at phase end.
  uint64_t tier_resident = 0;
  // Gemini mechanism counters, zero under policies without booking/bucket.
  uint64_t bookings_started = 0;
  uint64_t bookings_expired = 0;
  uint64_t bucket_hits = 0;
  // Batch-path effectiveness (host-side only: batching never changes
  // simulation results; see TranslationEngine::BatchStats).
  uint64_t batches = 0;
  uint64_t batched_accesses = 0;
  uint64_t batch_region_groups = 0;
  uint64_t batch_fastpath_hits = 0;
  std::array<uint64_t, 8> batch_size_hist{};  // log2 batch-size buckets
  // Per-level page-walk accounting (DESIGN.md §3e): where each walk level's
  // references were served (memory vs PWC vs nested cache) plus the walk
  // memo's replay tallies.  Levels are indexed L4..L1 (see WalkLevelStats).
  mmu::WalkLevelStats walk{};

  StackSnapshot Delta(const StackSnapshot& earlier) const;
};

StackSnapshot Snapshot(osim::Machine& machine, int32_t vm_id);

}  // namespace metrics

#endif  // SRC_METRICS_COUNTERS_H_
