// Machine-readable result export: CSV and JSON renderings of RunResult
// collections, so bench outputs can be plotted or regression-tracked
// without scraping the text tables.
//
// Row schema (one object per (workload, system) sweep cell; identical
// field set and order in CSV and JSON — see BENCHMARKS.md for the env-var
// contract that triggers export from the bench binaries):
//
//   field             | type   | unit / meaning
//   ------------------+--------+------------------------------------------
//   workload          | string | workload spec name (JSON-escaped)
//   system            | string | harness::SystemName of the column
//   throughput        | number | ops per 1000 simulated cycles
//   mean_latency      | number | simulated cycles per request
//   p99_latency       | number | simulated cycles, 99th percentile
//   tlb_misses        | int    | count over the measured phase
//   stale_hits        | int    | TLB hits reclassified as misses because the
//                     |        | cached translation went stale (precise
//                     |        | invalidation); subset of tlb_misses
//   tlb_miss_rate     | number | misses / accesses, 0..1
//   well_aligned_rate | number | well-aligned huge pages / guest huge, 0..1
//   guest_huge        | int    | guest huge pages at end of run
//   host_huge         | int    | host (EPT) huge pages at end of run
//   bookings_started  | int    | booking reservations made (both layers)
//   bookings_expired  | int    | bookings lost to timeout (both layers)
//   bucket_hits       | int    | huge-bucket regions reused by placement
//   demotions         | int    | huge mappings demoted (both layers)
//   tier_demoted      | int    | host pages demoted to the far tier over the
//                     |        | measured phase (0 without GEMINI_OVERCOMMIT)
//   tier_refaults     | int    | far-tier pages faulted back to near memory
//   tier_resident     | int    | far-resident pages when the phase ended (a
//                     |        | level, like ways_assigned — not a count)
//   batches           | int    | AccessBatch calls over the measured phase
//   batched_accesses  | int    | accesses issued through those batches
//   batch_region_groups | int  | same-region runs summed over batches
//   batch_fastpath_hits | int  | translations resolved by the batch memo
//   batch_hist_b0..b7 | int    | batches with floor(log2(size)) == b
//                     |        | (b7 holds 128+)
//   tlb_mode          | string | TLB sharing arrangement of the cell:
//                     |        | private / shared / partitioned
//   cross_vm_evictions| int    | this VM's TLB entries evicted by another
//                     |        | VM's fills (0 under private)
//   vm_invalidated    | int    | entries dropped by tagged selective
//                     |        | invalidation of this VM (0 under private)
//   conflict_evictions| int    | valid-entry evictions while free ways
//                     |        | remained elsewhere in the inserter's window
//   capacity_evictions| int    | valid-entry evictions with the window full
//   displaced_by_self | int    | misses the utility monitor proved were
//                     |        | caused by an entry this VM's own fills
//                     |        | displaced (0 under private: no monitor)
//   displaced_by_other| int    | misses proved caused by another VM's fill
//                     |        | (cross-VM interference, by attribution)
//   util_shadow_hits  | int    | shadow-tag sampler hits at any stack depth
//   util_shadow_misses| int    | sampled accesses missing the full-depth
//                     |        | per-VM LRU stack (would miss at any ways)
//   util_min_ways_90  | int    | smallest dedicated way count covering 90%
//                     |        | of the VM's shadow hits; 0 when none
//   ways_assigned     | int    | ways the VM could fill when the phase
//                     |        | ended (its way window's size; the full
//                     |        | associativity under private mode).  A
//                     |        | level, not a count — under dynamic mode it
//                     |        | moves with every repartition
//   repartitions      | int    | applied dynamic repartitions over the
//                     |        | phase, domain-wide — but deltaed over
//                     |        | each VM's own measured window, so
//                     |        | collocated rows can differ (0 outside
//                     |        | dynamic mode)
//   repartition_evictions | int| this VM's entries dropped because a
//                     |        | repartition moved its way window
//   lat_p50           | int    | translation-latency percentiles, cycles:
//   lat_p90           | int    | nearest-rank over the log2-bucket
//   lat_p99           | int    | histogram, bucket upper bound reported
//   walk_guest_mem_l{4,3,2,1}  | int | guest-dimension table reads served
//                     |        | from memory, per walk level (L4 = PML4 ..
//                     |        | L1 = PT); see DESIGN.md §3e
//   walk_guest_pwc_l{4,3} | int | guest-dimension reads served by the
//                     |        | page-walk cache (only L4/L3 are covered,
//                     |        | so lower levels are omitted)
//   walk_host_mem_l{4,3,2,1}   | int | host-dimension reads from memory
//   walk_host_pwc_l{4,3}  | int | host-dimension reads PWC-served
//   walk_nested_hit_l{4,3,2,1} | int | guest-table-page translations served
//                     |        | by the nested translation caches
//   walk_nested_walk_l{4,3,2,1}| int | guest-table-page translations that
//                     |        | needed a full host-dimension walk
//   walk_memo_hits    | int    | full walk-memo replays (all guest levels)
//   walk_memo_upper_hits | int | upper-level replays with a live PT probe
//   busy_cycles       | int    | simulated cycles of the measured phase
//   wall_ms           | number | host wall-clock of the cell, milliseconds
//   seed              | int    | BedOptions::seed that produced the cell
//
// Every field except wall_ms is deterministic: same seed, same values, at
// any GEMINI_JOBS count.  wall_ms is real host time — use it to track the
// simulator's own performance, never to compare systems.  The batch_*
// fields describe how the batch pipeline was driven (GEMINI_BATCH), not
// simulation behavior: results are identical at any batch size.
#ifndef SRC_METRICS_EXPORT_H_
#define SRC_METRICS_EXPORT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace workload {
struct RunResult;
}  // namespace workload

namespace metrics {

// One measurement row: a (workload, system) cell of a sweep.
struct ResultRow {
  std::string workload;
  std::string system;
  const workload::RunResult* result = nullptr;
  double wall_ms = 0.0;  // host wall-clock spent computing the cell
  uint64_t seed = 0;     // harness::BedOptions::seed of the cell
  // TLB sharing arrangement the cell ran under (TlbShareModeName).
  std::string tlb_mode = "private";
};

// Renders rows as CSV with a fixed header:
// workload,system,throughput,mean_latency,p99_latency,tlb_misses,stale_hits,
// tlb_miss_rate,well_aligned_rate,guest_huge,host_huge,bookings_started,
// bookings_expired,bucket_hits,demotions,tier_demoted,tier_refaults,
// tier_resident,batches,batched_accesses,
// batch_region_groups,batch_fastpath_hits,batch_hist_b0..batch_hist_b7,
// tlb_mode,cross_vm_evictions,vm_invalidated,conflict_evictions,
// capacity_evictions,displaced_by_self,displaced_by_other,util_shadow_hits,
// util_shadow_misses,util_min_ways_90,ways_assigned,repartitions,
// repartition_evictions,lat_p50,lat_p90,lat_p99,
// walk_guest_mem_l4..l1,walk_guest_pwc_l4..l3,
// walk_host_mem_l4..l1,walk_host_pwc_l4..l3,walk_nested_hit_l4..l1,
// walk_nested_walk_l4..l1,walk_memo_hits,walk_memo_upper_hits,
// busy_cycles,wall_ms,seed
std::string ToCsv(const std::vector<ResultRow>& rows);

// Renders rows as a JSON array of objects with the same fields.
std::string ToJson(const std::vector<ResultRow>& rows);

// Writes content to a file; aborts on I/O failure (results must not be
// silently lost).
void WriteFile(const std::string& path, const std::string& content);

}  // namespace metrics

#endif  // SRC_METRICS_EXPORT_H_
