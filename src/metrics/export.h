// Machine-readable result export: CSV and JSON renderings of RunResult
// collections, so bench outputs can be plotted or regression-tracked
// without scraping the text tables.
#ifndef SRC_METRICS_EXPORT_H_
#define SRC_METRICS_EXPORT_H_

#include <string>
#include <vector>

namespace workload {
struct RunResult;
}  // namespace workload

namespace metrics {

// One measurement row: a (workload, system) cell of a sweep.
struct ResultRow {
  std::string workload;
  std::string system;
  const workload::RunResult* result = nullptr;
};

// Renders rows as CSV with a fixed header:
// workload,system,throughput,mean_latency,p99_latency,tlb_misses,
// tlb_miss_rate,well_aligned_rate,guest_huge,host_huge,busy_cycles
std::string ToCsv(const std::vector<ResultRow>& rows);

// Renders rows as a JSON array of objects with the same fields.
std::string ToJson(const std::vector<ResultRow>& rows);

// Writes content to a file; aborts on I/O failure (results must not be
// silently lost).
void WriteFile(const std::string& path, const std::string& content);

}  // namespace metrics

#endif  // SRC_METRICS_EXPORT_H_
