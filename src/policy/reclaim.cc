#include "policy/reclaim.h"

#include <algorithm>
#include <map>

#include "base/check.h"
#include "os/host_kernel.h"

namespace policy {

namespace {

using base::kHugeOrder;
using base::kPagesPerHuge;

// Does this EPT huge-region hold anything the swap-out path can reclaim?
bool HasReclaimable(const mmu::PageTable& table, uint64_t region) {
  return table.IsHugeMapped(region) || table.PresentBasePages(region) > 0;
}

// Kernel-style aging: rank by the EPT's per-region access counters, halve
// them after every ranking sweep (the clock-algorithm referenced-bit
// scan), and charge the full-table scan to the VM it served.
class LruApproxPolicy final : public ReclaimPolicy {
 public:
  ReclaimPolicyKind kind() const override {
    return ReclaimPolicyKind::kLruApprox;
  }

  void Observe(osim::HostKernel& host) override {
    (void)host;
    ++tick_;  // scanning is lazy: no watermark pressure, no sweep
  }

  void RankVictims(osim::HostKernel& host, size_t max_victims,
                   std::vector<ReclaimVictim>* out) override {
    struct Candidate {
      uint64_t heat;
      int32_t vm_id;
      uint64_t region;
    };
    std::vector<Candidate> candidates;
    const bool charge = last_swept_tick_ != tick_;
    last_swept_tick_ = tick_;
    for (size_t vm = 0; vm < host.vm_count(); ++vm) {
      osim::HostVmKernel& slice = host.vm_kernel(static_cast<int32_t>(vm));
      mmu::PageTable& table = slice.table();
      uint64_t scanned = 0;
      table.ForEachBaseRegion([&](uint64_t region, uint32_t present) {
        (void)present;
        ++scanned;
        candidates.push_back({table.AccessCount(region),
                              static_cast<int32_t>(vm), region});
      });
      table.ForEachHuge([&](uint64_t region, uint64_t frame) {
        (void)frame;
        ++scanned;
        candidates.push_back({table.AccessCount(region),
                              static_cast<int32_t>(vm), region});
      });
      if (charge) {
        // One referenced-bit sweep per daemon tick, at most: the cost that
        // makes full-EPT aging expensive on big VMs.
        slice.ChargeOverhead(slice.costs().daemon_scan_region * scanned);
        table.DecayAccessCounts();
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.heat != b.heat) {
                  return a.heat < b.heat;
                }
                if (a.vm_id != b.vm_id) {
                  return a.vm_id < b.vm_id;
                }
                return a.region < b.region;
              });
    for (const Candidate& c : candidates) {
      if (out->size() >= max_victims) {
        break;
      }
      out->push_back({c.vm_id, c.region});
    }
  }

 private:
  uint64_t tick_ = 0;
  uint64_t last_swept_tick_ = ~0ull;
};

// DAMON-guided: one adaptive region monitor per VM, ticked every Observe;
// victims are the coldest monitored regions' mapped EPT huge-regions.
class DamonPolicy final : public ReclaimPolicy {
 public:
  explicit DamonPolicy(const damon::MonitorConfig& config)
      : config_(config) {}

  ReclaimPolicyKind kind() const override { return ReclaimPolicyKind::kDamon; }

  void Observe(osim::HostKernel& host) override {
    for (size_t vm = 0; vm < host.vm_count(); ++vm) {
      const int32_t id = static_cast<int32_t>(vm);
      osim::HostVmKernel& slice = host.vm_kernel(id);
      auto it = monitors_.find(id);
      if (it == monitors_.end()) {
        const uint64_t span =
            std::max<uint64_t>(1, (slice.gfn_count() + kPagesPerHuge - 1) >>
                                      kHugeOrder);
        damon::MonitorConfig per_vm = config_;
        per_vm.seed = config_.seed * 0x9e3779b97f4a7c15ull +
                      static_cast<uint64_t>(id) * 131 + 1;
        it = monitors_
                 .emplace(id, std::make_unique<damon::RegionMonitor>(per_vm,
                                                                     span))
                 .first;
      }
      const mmu::PageTable& table = slice.table();
      it->second->Tick(
          [&table](uint64_t region) { return table.AccessCount(region); });
      // The whole point of region sampling: overhead scales with the
      // region bound, not with the VM's memory size.
      slice.ChargeOverhead(slice.costs().daemon_scan_region *
                           it->second->regions().size());
    }
  }

  void RankVictims(osim::HostKernel& host, size_t max_victims,
                   std::vector<ReclaimVictim>* out) override {
    struct Candidate {
      uint32_t nr;
      uint32_t age;
      int32_t vm_id;
      damon::Region region;
    };
    std::vector<Candidate> cold;
    for (const auto& [vm_id, monitor] : monitors_) {
      for (const damon::Region& r : monitor->ColdOrder()) {
        cold.push_back({r.last_nr_accesses, r.age, vm_id, r});
      }
    }
    // Global cold order across VMs (each monitor's ColdOrder is already
    // sorted; re-sorting the union keeps the global order exact).
    std::sort(cold.begin(), cold.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.nr != b.nr) {
                  return a.nr < b.nr;
                }
                if (a.age != b.age) {
                  return a.age > b.age;
                }
                if (a.vm_id != b.vm_id) {
                  return a.vm_id < b.vm_id;
                }
                return a.region.start < b.region.start;
              });
    for (const Candidate& c : cold) {
      if (out->size() >= max_victims) {
        break;
      }
      const mmu::PageTable& table = host.vm_kernel(c.vm_id).table();
      for (uint64_t region = c.region.start;
           region < c.region.start + c.region.len; ++region) {
        if (out->size() >= max_victims) {
          break;
        }
        if (HasReclaimable(table, region)) {
          out->push_back({c.vm_id, region});
        }
      }
    }
  }

  const damon::RegionMonitor* monitor(int32_t vm_id) const override {
    auto it = monitors_.find(vm_id);
    return it == monitors_.end() ? nullptr : it->second.get();
  }

 private:
  damon::MonitorConfig config_;
  std::map<int32_t, std::unique_ptr<damon::RegionMonitor>> monitors_;
};

}  // namespace

const char* ReclaimPolicyName(ReclaimPolicyKind kind) {
  switch (kind) {
    case ReclaimPolicyKind::kLruApprox:
      return "lru";
    case ReclaimPolicyKind::kDamon:
      return "damon";
  }
  return "unknown";
}

std::optional<ReclaimPolicyKind> ParseReclaimPolicy(std::string_view name) {
  if (name == "lru") {
    return ReclaimPolicyKind::kLruApprox;
  }
  if (name == "damon") {
    return ReclaimPolicyKind::kDamon;
  }
  return std::nullopt;
}

std::unique_ptr<ReclaimPolicy> MakeReclaimPolicy(
    ReclaimPolicyKind kind, const damon::MonitorConfig& damon_config) {
  switch (kind) {
    case ReclaimPolicyKind::kLruApprox:
      return std::make_unique<LruApproxPolicy>();
    case ReclaimPolicyKind::kDamon:
      return std::make_unique<DamonPolicy>(damon_config);
  }
  SIM_CHECK(false);
  return nullptr;
}

}  // namespace policy
