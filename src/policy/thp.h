// Linux Transparent Huge Pages (THP) model.
//
// Two mechanisms, as in Linux:
//  * Fault path ("always" mode): the first fault into a region that a VMA
//    fully covers tries a synchronous 2 MiB allocation; if the buddy has no
//    order-9 block the fault stalls on direct compaction before falling
//    back to base pages.  This is the latency spike Ingens §2 documents.
//  * khugepaged: a slow background scanner that collapses partially
//    populated regions into huge pages via copy-based migration, limited by
//    a per-tick scan budget (khugepaged defaults scan ~4096 pages per 10 s,
//    i.e. it is deliberately unaggressive).
//
// THP coordinates nothing across layers: when it runs in both the guest and
// the host, huge pages align only by chance — the paper's Table 1 measures
// 18-26 % well-aligned rates for it.
#ifndef SRC_POLICY_THP_H_
#define SRC_POLICY_THP_H_

#include "policy/policy.h"

namespace policy {

struct ThpOptions {
  bool fault_huge = true;             // THP "always" vs "madvise-never"
  bool synchronous_compaction = true; // stall faults on compaction
  uint32_t scan_regions_per_tick = 4;
  // khugepaged collapses a region when at least this many of its 512 pages
  // are present (Linux max_ptes_none analogue; 64 present = up to 448
  // empty PTEs tolerated).
  uint32_t collapse_min_present = 64;
};

class ThpPolicy : public HugePagePolicy {
 public:
  explicit ThpPolicy(const ThpOptions& options = {}) : options_(options) {}

  std::string_view name() const override { return "thp"; }

  FaultDecision OnFault(KernelOps& kernel, const FaultInfo& info) override;
  void OnDaemonTick(KernelOps& kernel) override;

 protected:
  ThpOptions options_;
  uint64_t scan_cursor_ = 0;  // region where the next khugepaged pass resumes
};

}  // namespace policy

#endif  // SRC_POLICY_THP_H_
