// Host reclaim policies: which guest-physical regions to demote to the far
// tier when the host runs short of near memory.
//
// Both policies pick victims in EPT huge-region (2 MiB of guest-physical
// address space) units across every VM on the host; the reclaim daemon
// (os/reclaim_daemon.h) then demotes the victims' pages through the
// ordinary kernel swap-out path, so freed frames land in the shared host
// buddy allocator and reclaim-induced fragmentation is observable by the
// coalescing policies under test.
//
//  * kLruApprox — classic kernel-style aging: every pass scans each VM's
//    whole EPT, ranks regions by their page-table access counters, and
//    halves the counters (the clock-algorithm referenced-bit sweep).
//    Accurate but pays O(mapped regions) scan overhead per pass, charged
//    to each VM's host kernel slice.
//  * kDamon — DAMON-guided: one damon::RegionMonitor per VM samples one
//    page per adaptive region per tick, so overhead is O(regions bound),
//    and victims are the coldest monitored regions (zero sampled accesses,
//    oldest first).  Cheap and cold-exact, at the price of sampling noise
//    on the warm/hot boundary.
#ifndef SRC_POLICY_RECLAIM_H_
#define SRC_POLICY_RECLAIM_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "base/types.h"
#include "damon/region_monitor.h"

namespace osim {
class HostKernel;
}  // namespace osim

namespace policy {

enum class ReclaimPolicyKind : uint8_t {
  kLruApprox,
  kDamon,
};

// Stable lowercase name ("lru" / "damon"), used in env vars and bench
// scenario labels.
const char* ReclaimPolicyName(ReclaimPolicyKind kind);

// Parses a ReclaimPolicyName back; nullopt on unknown input.
std::optional<ReclaimPolicyKind> ParseReclaimPolicy(std::string_view name);

// One reclaim candidate: an EPT huge-region of one VM, coldest first.
struct ReclaimVictim {
  int32_t vm_id = -1;
  uint64_t region = 0;
};

class ReclaimPolicy {
 public:
  virtual ~ReclaimPolicy() = default;
  virtual ReclaimPolicyKind kind() const = 0;

  // Called once per daemon tick, before any victim selection: sampling,
  // aging, and overhead charging happen here.
  virtual void Observe(osim::HostKernel& host) = 0;

  // Appends up to `max_victims` reclaim candidates, coldest first.  Only
  // regions with something to reclaim (present base pages or a huge leaf)
  // are returned.  Deterministic: ties break on (vm_id, region).
  virtual void RankVictims(osim::HostKernel& host, size_t max_victims,
                           std::vector<ReclaimVictim>* out) = 0;

  // The DAMON-guided policy's per-VM monitors (null for other kinds / VMs
  // not yet observed); exposed for tests and metrics.
  virtual const damon::RegionMonitor* monitor(int32_t vm_id) const {
    (void)vm_id;
    return nullptr;
  }
};

// `damon_config` is used by kDamon only (per-VM monitor seeds are derived
// from damon_config.seed and the vm id).
std::unique_ptr<ReclaimPolicy> MakeReclaimPolicy(
    ReclaimPolicyKind kind, const damon::MonitorConfig& damon_config);

// Watermark-driven host reclaim configuration, consumed by osim::Machine
// (which instantiates the far tier and the reclaim daemon when enabled).
// Watermark math (DESIGN.md §3i): with F host frames, reclaim wakes when
// free < low_watermark * F and each pass demotes cold pages until
// free >= high_watermark * F, or the per-pass budget is spent, or the far
// tier rejects (capacity) — the gap between the two watermarks is the
// burst headroom demand faults can consume between daemon ticks.
struct ReclaimConfig {
  bool enabled = false;
  ReclaimPolicyKind policy = ReclaimPolicyKind::kLruApprox;
  double low_watermark = 0.08;
  double high_watermark = 0.15;
  // Far-tier capacity in pages (0 = unbounded).
  uint64_t far_capacity_pages = 0;
  // Daemon tick period (0 = the machine's daemon_period).  A PeriodicTask,
  // so it only ever fires at logical-time boundaries: reclaim decisions
  // are byte-identical at any GEMINI_VM_THREADS / batch size.
  base::Cycles interval = 0;
  // Per-pass demotion budget, bounding one tick's stall contribution.
  uint64_t max_pages_per_pass = 8192;
  damon::MonitorConfig damon;
};

}  // namespace policy

#endif  // SRC_POLICY_RECLAIM_H_
