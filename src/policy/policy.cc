#include "policy/policy.h"

#include <algorithm>
#include <utility>

namespace policy {

// Shared helpers for promotion policies live here; the interface itself is
// header-only.

bool HasFreeMemoryHeadroom(const KernelOps& kernel, double min_free_fraction) {
  const auto& buddy = kernel.buddy();
  return static_cast<double>(buddy.free_frames()) >
         min_free_fraction * static_cast<double>(buddy.frame_count());
}

std::vector<uint64_t> HugePagePolicy::RankHugeDemotionVictims(
    KernelOps& kernel, size_t max_victims) {
  // Default: coldest huge regions first.
  std::vector<std::pair<uint64_t, uint64_t>> heat;  // (access count, region)
  kernel.table().ForEachHuge([&](uint64_t region, uint64_t frame) {
    (void)frame;
    heat.emplace_back(kernel.table().AccessCount(region), region);
  });
  std::sort(heat.begin(), heat.end());
  std::vector<uint64_t> victims;
  for (const auto& [count, region] : heat) {
    (void)count;
    if (victims.size() >= max_victims) {
      break;
    }
    victims.push_back(region);
  }
  return victims;
}

}  // namespace policy
