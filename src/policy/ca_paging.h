// CA-paging (Alverti et al., ISCA '20) — software component.
//
// Contiguity-aware paging gives each VMA an *anchor*: on the VMA's first
// fault it picks a free contiguous physical run and from then on places
// every faulting page at (page - offset), so the VMA maps to physically
// contiguous memory.  That contiguity makes many regions eligible for
// in-place promotion (its khugepaged-style daemon is inherited from the
// THP model, without fault-time huge allocation).
//
// Crucially for the paper's story, CA-paging anchors to the start of
// whatever free run it finds — it does NOT align the anchor to huge-page
// boundaries, and the two layers anchor independently.  Well-aligned huge
// pages therefore arise only by chance, which is why its measured rates in
// Tables 1/3 stay in the 14-32 % band.
#ifndef SRC_POLICY_CA_PAGING_H_
#define SRC_POLICY_CA_PAGING_H_

#include <unordered_map>

#include "policy/thp.h"

namespace policy {

struct CaPagingOptions {
  ThpOptions thp;  // daemon settings (fault_huge is forced off)
};

class CaPagingPolicy : public ThpPolicy {
 public:
  explicit CaPagingPolicy(const CaPagingOptions& options = {});

  std::string_view name() const override { return "ca-paging"; }

  FaultDecision OnFault(KernelOps& kernel, const FaultInfo& info) override;
  void OnVmaDestroy(int32_t vma_id) override;

 private:
  // page-space minus frame-space anchor delta per VMA (vma_id -1 = host).
  std::unordered_map<int32_t, int64_t> offsets_;
  uint64_t next_fit_cursor_ = 0;
  uint64_t search_retry_epoch_ = 0;  // backoff after a failed run search
};

// Finds the first free run of at least `min_frames` contiguous frames at or
// after `cursor` (wrapping once).  Returns kInvalidFrame if none exists.
// Shared by CA-paging and tests.
uint64_t FindContiguousRun(const vmem::BuddyAllocator& buddy,
                           uint64_t min_frames, uint64_t cursor);

}  // namespace policy

#endif  // SRC_POLICY_CA_PAGING_H_
