#include "policy/base_only.h"

namespace policy {

FaultDecision BaseOnlyPolicy::OnFault(KernelOps& kernel,
                                      const FaultInfo& info) {
  (void)kernel;
  (void)info;
  return FaultDecision{};  // base page, allocator's choice of frame
}

void BaseOnlyPolicy::OnDaemonTick(KernelOps& kernel) { (void)kernel; }

}  // namespace policy
