// Base-page-only policy: never allocates or promotes huge pages.  Used for
// the Host-B-VM-B baseline and as the guest side of the Misalignment
// scenario.
#ifndef SRC_POLICY_BASE_ONLY_H_
#define SRC_POLICY_BASE_ONLY_H_

#include "policy/policy.h"

namespace policy {

class BaseOnlyPolicy final : public HugePagePolicy {
 public:
  std::string_view name() const override { return "base-only"; }

  FaultDecision OnFault(KernelOps& kernel, const FaultInfo& info) override;
  void OnDaemonTick(KernelOps& kernel) override;
};

}  // namespace policy

#endif  // SRC_POLICY_BASE_ONLY_H_
