// HawkEye (Panwar et al., ASPLOS '19) model.
//
// HawkEye refines Ingens in two ways this model captures:
//  * Promotion candidates are ranked by *access coverage* — the hottest
//    regions (most TLB pressure) are promoted first, measured here by the
//    per-region access counters the translation engine maintains — and the
//    utilization bar is lower because HawkEye fills the holes.
//  * Hole filling uses zero-page deduplication: absent PTEs of a promoted
//    region are satisfied from deduplicated zero pages, so later writes to
//    them take copy-on-write faults.  The paper observes exactly this
//    artifact on Specjbb (§6.2): HawkEye's latency exceeds Ingens' because
//    it "deduplicates Specjbb's in-use zero-pages and incurs extra
//    copy-on-write page faults."  We charge a CoW fault for a fraction of
//    the absent pages of each promoted region.
#ifndef SRC_POLICY_HAWKEYE_H_
#define SRC_POLICY_HAWKEYE_H_

#include "policy/policy.h"

namespace policy {

struct HawkEyeOptions {
  uint32_t promote_min_present = 256;  // lower bar than Ingens; holes filled
  uint32_t promotions_per_tick = 8;
  // Fraction of zero-filled (absent) pages that are later written and take
  // a CoW fault.
  double cow_write_fraction = 0.5;
};

class HawkEyePolicy : public HugePagePolicy {
 public:
  explicit HawkEyePolicy(const HawkEyeOptions& options = {})
      : options_(options) {}

  std::string_view name() const override { return "hawkeye"; }

  FaultDecision OnFault(KernelOps& kernel, const FaultInfo& info) override;
  void OnDaemonTick(KernelOps& kernel) override;

 protected:
  HawkEyeOptions options_;
};

}  // namespace policy

#endif  // SRC_POLICY_HAWKEYE_H_
