// Huge-page policy interface.
//
// A HugePagePolicy instance is attached to each translation layer: one to
// every guest kernel (driving its process page table and guest-physical
// buddy) and one to the host kernel per VM (driving the EPT and the
// host-physical buddy).  The kernel performs the mechanics — allocation,
// mapping, promotion, shootdowns, cost accounting — and consults the policy
// for decisions, mirroring how Linux THP / Ingens / HawkEye / Gemini are
// policies layered over the same mm substrate.
//
// Policies see the kernel through KernelOps, a narrow capability surface,
// so that every baseline and Gemini run on byte-identical mechanics and
// differ only in decisions.
#ifndef SRC_POLICY_POLICY_H_
#define SRC_POLICY_POLICY_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "base/types.h"
#include "mmu/page_table.h"
#include "os/cost_model.h"
#include "vmem/buddy_allocator.h"
#include "vmem/frame_space.h"

namespace trace {
class Tracer;
}  // namespace trace

namespace policy {

// What the kernel should do for a faulting page.
struct FaultDecision {
  // Attempt a 2 MiB allocation + huge mapping for the faulting region
  // (only honoured when the VMA covers the whole region and the region has
  // no existing mappings).
  bool try_huge = false;
  // If the huge allocation fails, stall the fault on direct compaction
  // (Linux THP "always" behaviour).  Ignored unless try_huge.
  bool synchronous_compaction = false;
  // Placement hint for the base-page (or huge-page) allocation: the exact
  // frame to allocate if it is free.  kInvalidFrame means allocator's
  // choice.  This is how EMA and CA-paging steer physical placement.
  uint64_t target_frame = vmem::kInvalidFrame;
};

// Context the kernel passes with each fault.
struct FaultInfo {
  uint64_t page = 0;           // faulting VPN (guest layer) or GFN (host)
  uint64_t region = 0;         // page >> kHugeOrder
  int32_t vma_id = -1;         // guest layer only; -1 at the host layer
  uint64_t vma_start_page = 0; // first page of the VMA (or of guest memory)
  uint64_t vma_pages = 0;      // VMA length in pages
  bool vma_first_touch = false;  // no page of this VMA was mapped before
};

// The capability surface a policy gets over its kernel.  Implemented by
// GuestKernel and HostKernel.
class KernelOps {
 public:
  virtual ~KernelOps() = default;

  virtual base::Layer layer() const = 0;
  virtual int32_t vm_id() const = 0;

  virtual vmem::BuddyAllocator& buddy() = 0;
  virtual const vmem::BuddyAllocator& buddy() const = 0;
  virtual mmu::PageTable& table() = 0;
  virtual const mmu::PageTable& table() const = 0;
  virtual vmem::FrameSpace& frames() = 0;

  // Fragmentation of this layer's physical space at huge-page order.
  virtual double Fmfi() const = 0;

  // Charges asynchronous (daemon) overhead.
  virtual void ChargeOverhead(base::Cycles cycles) = 0;

  // In-place promotion of an eligible region (CanPromoteInPlace must
  // hold).  Performs the table rewrite, charges cost, shoots down TLBs.
  virtual void PromoteInPlace(uint64_t region) = 0;

  // Migration-based promotion: allocates a free huge block (at
  // `target_frame` if provided and free, else anywhere), copies the present
  // pages, frees the old frames, maps the huge leaf.  Returns false without
  // side effects if no huge block is available.  Charges copy + shootdown
  // costs as daemon overhead.
  virtual bool PromoteWithMigration(
      uint64_t region, uint64_t target_frame = vmem::kInvalidFrame) = 0;

  // Splits a huge mapping back into base pages.
  virtual void Demote(uint64_t region) = 0;

  // TLB misses observed by this layer's VM since the last call (used by
  // Gemini's Algorithm 1 timeout controller).
  virtual uint64_t DrainTlbMisses() = 0;

  // Current simulated time.
  virtual base::Cycles Now() const = 0;

  // Cycle-cost constants of this kernel (for charging scan/promotion work).
  virtual const osim::CostModel& costs() const = 0;

  // The machine's tracer, for policy-owned components (bookings, buckets)
  // to emit tracepoints through.  Null when the kernel has no machine
  // (unit tests) — and emission is a no-op unless tracing is enabled.
  virtual trace::Tracer* tracer() const { return nullptr; }
};

// Mechanism counters and gauges a policy exposes for observability: the
// per-run aggregate view (metrics::StackSnapshot) and the trace sampler's
// time series both read this one struct, so the two views are computed
// from the same registry and can never disagree.  Counters are cumulative
// since policy creation; gauges are instantaneous.
struct PolicyTelemetry {
  uint64_t bookings_started = 0;   // successful BookingManager::Book calls
  uint64_t bookings_assigned = 0;  // bookings consumed by an allocation
  uint64_t bookings_expired = 0;   // bookings lost to timeout
  uint64_t bookings_active = 0;    // gauge: regions booked right now
  uint64_t bucket_deposits = 0;    // regions retained by the huge bucket
  uint64_t bucket_hits = 0;        // retained regions reused whole
  uint64_t bucket_evictions = 0;   // retention expiry + pressure releases
  uint64_t bucket_held = 0;        // gauge: regions held right now
  base::Cycles booking_timeout = 0;  // gauge: effective timeout (Algorithm 1)
};

class HugePagePolicy {
 public:
  virtual ~HugePagePolicy() = default;

  virtual std::string_view name() const = 0;

  // Decision for a demand fault.  Called before any allocation.
  virtual FaultDecision OnFault(KernelOps& kernel, const FaultInfo& info) = 0;

  // Periodic background pass (khugepaged analogue).
  virtual void OnDaemonTick(KernelOps& kernel) = 0;

  // A mapped region is being freed (guest layer: VMA teardown).  Return
  // true to take ownership of the region's frames (Gemini's huge bucket
  // does this for well-aligned regions); the kernel then skips the buddy
  // free.  `frame` is the first frame of the region's backing and is only
  // whole-region-meaningful when `contiguous` is set.
  virtual bool OnFreeRegion(KernelOps& kernel, uint64_t region, uint64_t frame,
                            bool contiguous) {
    (void)kernel;
    (void)region;
    (void)frame;
    (void)contiguous;
    return false;
  }

  // A VMA is fully unmapped (guest layer).  Lets policies drop per-VMA
  // state (EMA offset descriptors).
  virtual void OnVmaDestroy(int32_t vma_id) { (void)vma_id; }

  // The kernel is out of frames: release any memory the policy is holding
  // back (reservations, retained buckets).  Called before the kernel
  // resorts to demotion and swapping.
  virtual void OnMemoryPressure(KernelOps& kernel) { (void)kernel; }

  // Ranks huge regions for demotion under memory pressure, most-expendable
  // first.  The default prefers the coldest regions; Gemini's override
  // (paper §8) demotes misaligned and infrequently used huge pages first
  // so that well-aligned ones survive pressure.
  virtual std::vector<uint64_t> RankHugeDemotionVictims(KernelOps& kernel,
                                                        size_t max_victims);

  // Observability counters/gauges (see PolicyTelemetry).  Baselines with no
  // booking/bucket machinery report zeros.
  virtual PolicyTelemetry Telemetry() const { return {}; }
};

// True when the layer has enough free memory that creating another huge
// page will not push it towards OOM.  Promotion policies use this as the
// watermark guard Linux applies before huge allocations (fall back to base
// pages under pressure instead of reclaiming).
bool HasFreeMemoryHeadroom(const KernelOps& kernel,
                           double min_free_fraction = 1.0 / 16.0);

}  // namespace policy

#endif  // SRC_POLICY_POLICY_H_
