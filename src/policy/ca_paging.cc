#include "policy/ca_paging.h"

#include <vector>

namespace policy {

uint64_t FindContiguousRun(const vmem::BuddyAllocator& buddy,
                           uint64_t min_frames, uint64_t cursor) {
  uint64_t best_before_cursor = vmem::kInvalidFrame;
  uint64_t run_start = vmem::kInvalidFrame;
  uint64_t run_end = 0;
  uint64_t found = vmem::kInvalidFrame;
  buddy.ForEachFreeBlock([&](uint64_t head, int order) {
    if (found != vmem::kInvalidFrame) {
      return;
    }
    const uint64_t size = 1ull << order;
    if (run_start == vmem::kInvalidFrame || head != run_end) {
      run_start = head;
      run_end = head;
    }
    run_end += size;
    if (run_end - run_start >= min_frames) {
      if (run_start >= cursor) {
        found = run_start;
      } else if (run_end >= cursor && run_end - cursor >= min_frames) {
        found = cursor;  // the cursor sits inside a big-enough run
      } else if (best_before_cursor == vmem::kInvalidFrame) {
        best_before_cursor = run_start;
        // Keep scanning for a run past the cursor; remember the wrap hit.
        run_start = run_end;  // avoid re-reporting the same run
      }
    }
  });
  return found != vmem::kInvalidFrame ? found : best_before_cursor;
}

CaPagingPolicy::CaPagingPolicy(const CaPagingOptions& options)
    : ThpPolicy(options.thp) {
  options_.fault_huge = false;  // async daemon only
}

FaultDecision CaPagingPolicy::OnFault(KernelOps& kernel,
                                      const FaultInfo& info) {
  FaultDecision decision;
  auto it = offsets_.find(info.vma_id);
  if (it == offsets_.end()) {
    // First fault of this VMA: anchor it to a contiguous free run.  Failed
    // searches back off until the free map has changed materially.
    if (kernel.buddy().mutation_epoch() < search_retry_epoch_) {
      return decision;
    }
    const uint64_t run = FindContiguousRun(kernel.buddy(), info.vma_pages,
                                           next_fit_cursor_);
    if (run == vmem::kInvalidFrame) {
      search_retry_epoch_ = kernel.buddy().mutation_epoch() + 512;
      return decision;  // no contiguity available; default placement
    }
    next_fit_cursor_ = run + info.vma_pages;
    it = offsets_
             .emplace(info.vma_id, static_cast<int64_t>(info.vma_start_page) -
                                       static_cast<int64_t>(run))
             .first;
  }
  const int64_t target =
      static_cast<int64_t>(info.page) - it->second;
  if (target >= 0 &&
      static_cast<uint64_t>(target) < kernel.buddy().frame_count()) {
    decision.target_frame = static_cast<uint64_t>(target);
  }
  return decision;
}

void CaPagingPolicy::OnVmaDestroy(int32_t vma_id) { offsets_.erase(vma_id); }

}  // namespace policy
