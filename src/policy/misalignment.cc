#include "policy/misalignment.h"

namespace policy {

FaultDecision AlwaysHugePolicy::OnFault(KernelOps& kernel,
                                        const FaultInfo& info) {
  (void)info;
  FaultDecision decision;
  if (HasFreeMemoryHeadroom(kernel)) {
    decision.try_huge = true;
  }
  return decision;
}

}  // namespace policy
