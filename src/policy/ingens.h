// Ingens (Kwon et al., OSDI '16) model.
//
// Ingens decouples huge-page allocation from the fault path: faults always
// get base pages (no synchronous allocation stalls), and a background
// promotion thread (promote-kth) collapses a region only once its
// *utilization* crosses a threshold (90 % of the 512 pages present), which
// controls the memory bloat THP's greedy fault-time allocation causes.
// Promotion is migration-based with an asynchronous budget, so its cost
// does not land on request latencies.
#ifndef SRC_POLICY_INGENS_H_
#define SRC_POLICY_INGENS_H_

#include "policy/policy.h"

namespace policy {

struct IngensOptions {
  // Utilization threshold: promote when present >= threshold (90 % = 460).
  uint32_t promote_min_present = 460;
  uint32_t promotions_per_tick = 8;
};

class IngensPolicy : public HugePagePolicy {
 public:
  explicit IngensPolicy(const IngensOptions& options = {})
      : options_(options) {}

  std::string_view name() const override { return "ingens"; }

  FaultDecision OnFault(KernelOps& kernel, const FaultInfo& info) override;
  void OnDaemonTick(KernelOps& kernel) override;

 protected:
  IngensOptions options_;
};

}  // namespace policy

#endif  // SRC_POLICY_INGENS_H_
