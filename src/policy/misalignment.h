// "Misalignment" scenario policy (paper §2.3): one layer allocates only
// huge pages, the other only base pages, so every huge page is misaligned
// by construction.  Used host-side (eager huge allocation at every EPT
// fault, no daemon) with BaseOnlyPolicy on the guest side.
#ifndef SRC_POLICY_MISALIGNMENT_H_
#define SRC_POLICY_MISALIGNMENT_H_

#include "policy/policy.h"

namespace policy {

class AlwaysHugePolicy final : public HugePagePolicy {
 public:
  std::string_view name() const override { return "always-huge"; }

  FaultDecision OnFault(KernelOps& kernel, const FaultInfo& info) override;
  void OnDaemonTick(KernelOps& kernel) override { (void)kernel; }
};

}  // namespace policy

#endif  // SRC_POLICY_MISALIGNMENT_H_
