#include "policy/hawkeye.h"

#include <algorithm>
#include <cstdint>
#include <vector>

namespace policy {

FaultDecision HawkEyePolicy::OnFault(KernelOps& kernel,
                                     const FaultInfo& info) {
  (void)kernel;
  (void)info;
  return FaultDecision{};  // asynchronous-only, like Ingens
}

void HawkEyePolicy::OnDaemonTick(KernelOps& kernel) {
  if (!HasFreeMemoryHeadroom(kernel)) {
    return;
  }
  struct Candidate {
    uint64_t region;
    uint32_t present;
    uint64_t heat;
  };
  std::vector<Candidate> candidates;
  kernel.table().ForEachBaseRegion([&](uint64_t region, uint32_t present) {
    kernel.ChargeOverhead(kernel.costs().daemon_scan_region);
    const uint64_t heat = kernel.table().AccessCount(region);
    if (present >= options_.promote_min_present && heat > 0) {
      candidates.push_back(Candidate{region, present, heat});
    }
  });
  // Access-coverage ranking: hottest regions first.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.heat > b.heat;
            });
  uint32_t budget = options_.promotions_per_tick;
  for (const Candidate& c : candidates) {
    if (budget == 0) {
      break;
    }
    bool promoted = false;
    if (kernel.table().CanPromoteInPlace(c.region)) {
      kernel.PromoteInPlace(c.region);
      promoted = true;
    } else {
      promoted = kernel.PromoteWithMigration(c.region);
      if (!promoted) {
        break;
      }
    }
    if (promoted) {
      --budget;
      // Zero-page-dedup hole filling: absent pages that are written later
      // take CoW faults.
      const uint32_t absent =
          static_cast<uint32_t>(base::kPagesPerHuge) - c.present;
      const auto cow_faults = static_cast<uint64_t>(
          options_.cow_write_fraction * static_cast<double>(absent));
      kernel.ChargeOverhead(cow_faults * kernel.costs().cow_fault);
    }
  }
  kernel.table().DecayAccessCounts();
}

}  // namespace policy
