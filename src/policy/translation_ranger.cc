#include "policy/translation_ranger.h"

#include <algorithm>
#include <vector>

namespace policy {

FaultDecision TranslationRangerPolicy::OnFault(KernelOps& kernel,
                                               const FaultInfo& info) {
  (void)kernel;
  (void)info;
  return FaultDecision{};
}

void TranslationRangerPolicy::OnDaemonTick(KernelOps& kernel) {
  // Continuous range maintenance: pages are exchanged to keep VMAs
  // contiguous whether or not a promotion results, with the associated
  // TLB shootdowns.
  const uint64_t mapped = kernel.table().mapped_pages();
  if (mapped > 0) {
    const uint64_t moves =
        std::min<uint64_t>(options_.background_moves_per_tick, mapped / 8);
    kernel.ChargeOverhead(moves * kernel.costs().copy_page +
                          (moves / 64 + (moves > 0 ? 1 : 0)) *
                              kernel.costs().tlb_shootdown);
  }
  if (!HasFreeMemoryHeadroom(kernel)) {
    return;
  }
  std::vector<uint64_t> candidates;
  kernel.table().ForEachBaseRegion([&](uint64_t region, uint32_t present) {
    kernel.ChargeOverhead(kernel.costs().daemon_scan_region);
    if (present >= options_.min_present) {
      candidates.push_back(region);
    }
  });
  uint32_t budget = options_.migrations_per_tick;
  for (uint64_t region : candidates) {
    if (budget == 0) {
      break;
    }
    if (kernel.table().CanPromoteInPlace(region)) {
      kernel.PromoteInPlace(region);
      --budget;
      continue;
    }
    // Ranger migrates unconditionally to build contiguity, paying copies
    // and shootdowns even for sparsely populated regions.
    if (!kernel.PromoteWithMigration(region)) {
      break;
    }
    --budget;
  }
}

}  // namespace policy
