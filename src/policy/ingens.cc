#include "policy/ingens.h"

#include <vector>

namespace policy {

FaultDecision IngensPolicy::OnFault(KernelOps& kernel,
                                    const FaultInfo& info) {
  (void)kernel;
  (void)info;
  return FaultDecision{};  // asynchronous-only huge pages: base at fault
}

void IngensPolicy::OnDaemonTick(KernelOps& kernel) {
  if (!HasFreeMemoryHeadroom(kernel)) {
    return;
  }
  std::vector<uint64_t> candidates;
  kernel.table().ForEachBaseRegion([&](uint64_t region, uint32_t present) {
    kernel.ChargeOverhead(kernel.costs().daemon_scan_region);
    // Utilization is measured over *recently accessed* memory (Ingens
    // tracks access bits); stale-but-present mappings do not qualify.
    if (present >= options_.promote_min_present &&
        kernel.table().AccessCount(region) > 0) {
      candidates.push_back(region);
    }
  });
  uint32_t budget = options_.promotions_per_tick;
  for (uint64_t region : candidates) {
    if (budget == 0) {
      break;
    }
    if (kernel.table().CanPromoteInPlace(region)) {
      kernel.PromoteInPlace(region);
      --budget;
    } else if (kernel.PromoteWithMigration(region)) {
      --budget;
    } else {
      break;  // out of huge blocks this tick
    }
  }
  kernel.table().DecayAccessCounts();
}

}  // namespace policy
