#include "policy/thp.h"

#include <vector>

namespace policy {

FaultDecision ThpPolicy::OnFault(KernelOps& kernel, const FaultInfo& info) {
  (void)info;
  FaultDecision decision;
  if (options_.fault_huge && HasFreeMemoryHeadroom(kernel)) {
    decision.try_huge = true;
    decision.synchronous_compaction = options_.synchronous_compaction;
  }
  return decision;
}

void ThpPolicy::OnDaemonTick(KernelOps& kernel) {
  if (!HasFreeMemoryHeadroom(kernel)) {
    return;
  }
  // khugepaged walks the address space linearly with a resume cursor and a
  // small per-pass budget of regions *visited* — qualifying or not — which
  // is what makes it slow on big address spaces.
  std::vector<std::pair<uint64_t, uint32_t>> visited;
  uint64_t first_region = vmem::kInvalidFrame;
  kernel.table().ForEachBaseRegion([&](uint64_t region, uint32_t present) {
    if (first_region == vmem::kInvalidFrame) {
      first_region = region;
    }
    if (region >= scan_cursor_ &&
        visited.size() < options_.scan_regions_per_tick) {
      visited.emplace_back(region, present);
    }
  });
  if (visited.empty() && first_region != vmem::kInvalidFrame) {
    scan_cursor_ = first_region;  // wrap around
    kernel.table().ForEachBaseRegion([&](uint64_t region, uint32_t present) {
      if (region >= scan_cursor_ &&
          visited.size() < options_.scan_regions_per_tick) {
        visited.emplace_back(region, present);
      }
    });
  }
  for (const auto& [region, present] : visited) {
    kernel.ChargeOverhead(kernel.costs().daemon_scan_region);
    scan_cursor_ = region + 1;
    if (present < options_.collapse_min_present) {
      continue;
    }
    if (kernel.table().CanPromoteInPlace(region)) {
      kernel.PromoteInPlace(region);
    } else if (!kernel.PromoteWithMigration(region)) {
      break;  // no order-9 blocks; retry next tick
    }
  }
}

}  // namespace policy
