// Translation Ranger (Yan et al., ISCA '19) model.
//
// Ranger is an OS service that actively *migrates* pages to coalesce VMAs
// into large contiguous ranges (targeting range-TLB hardware; on stock
// hardware the contiguity manifests as huge-page eligibility).  The defining
// characteristic the paper measures is its cost: it migrates aggressively —
// regardless of region utilization — so it pays copy work and TLB
// shootdowns continuously.  In the paper's virtualized runs this overhead
// exceeds the translation savings (throughput -7% vs Host-B-VM-B, mean
// latency +11%) even though it reaches decent contiguity.
#ifndef SRC_POLICY_TRANSLATION_RANGER_H_
#define SRC_POLICY_TRANSLATION_RANGER_H_

#include "policy/policy.h"

namespace policy {

struct RangerOptions {
  // Regions migrated per tick; Ranger has no utilization bar, so this is
  // pure migration throughput.
  uint32_t migrations_per_tick = 32;
  uint32_t min_present = 8;  // skip nearly-empty regions
  // Pages moved per tick by the continuous defragmentation pass.  Ranger
  // keeps exchanging pages to maintain large contiguous ranges even when no
  // promotion results; this steady copy + shootdown traffic is where the
  // paper's -7% throughput / +11% latency versus Host-B-VM-B comes from.
  uint32_t background_moves_per_tick = 384;
};

class TranslationRangerPolicy final : public HugePagePolicy {
 public:
  explicit TranslationRangerPolicy(const RangerOptions& options = {})
      : options_(options) {}

  std::string_view name() const override { return "translation-ranger"; }

  FaultDecision OnFault(KernelOps& kernel, const FaultInfo& info) override;
  void OnDaemonTick(KernelOps& kernel) override;

 private:
  RangerOptions options_;
};

}  // namespace policy

#endif  // SRC_POLICY_TRANSLATION_RANGER_H_
