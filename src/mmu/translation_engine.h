// The translation engine ties the TLB, the page-walk cost model, and the
// two page-table layers together.  It is the component that encodes the
// paper's central observation (§2.2):
//
//   A 2 MiB TLB entry can only be installed when the guest maps the region
//   with a huge page AND the host backs that exact guest-physical region
//   with a huge page (a *well-aligned* huge page).  In every other
//   combination the combined GVA->HPA translation only exists at 4 KiB
//   granularity, so huge pages that are misaligned across the layers do not
//   increase TLB coverage — they only shorten the page walk.
//
// In native mode (no host table) the engine degenerates to a classic
// TLB + 1D walk.
//
// Hot path: a TLB hit is validated by comparing the entry's generation
// stamp against the guest/host page tables' per-region generation counters
// (see page_table.h) — an O(1) integer compare, no table walks.  Only when
// a generation moved is the translation re-derived, after which the entry
// is restamped (still correct, e.g. in-place promotion) or dropped as
// stale.  DESIGN.md ("Translation hot path") proves this equivalent to
// re-deriving on every hit.
#ifndef SRC_MMU_TRANSLATION_ENGINE_H_
#define SRC_MMU_TRANSLATION_ENGINE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "base/stats.h"
#include "base/types.h"
#include "mmu/nested_walker.h"
#include "mmu/page_table.h"
#include "mmu/tlb.h"
#include "mmu/tlb_domain.h"

namespace mmu {

enum class TranslateStatus : uint8_t {
  kOk,
  kGuestFault,  // no guest mapping for the VPN: guest OS must demand-page
  kHostFault,   // no host mapping for the GFN: host OS must back the page
};

struct TranslateResult {
  TranslateStatus status = TranslateStatus::kOk;
  uint64_t frame = 0;          // host frame (virtualized) or frame (native)
  uint64_t fault_page = 0;     // faulting VPN (guest) or GFN (host)
  base::Cycles cycles = 0;     // translation cost charged to this access
  bool tlb_hit = false;
  bool well_aligned_huge = false;  // translated through a 2M TLB-able mapping
};

class TranslationEngine {
 public:
  struct Config {
    TlbConfig tlb;
    WalkerConfig walker;
    base::Cycles tlb_hit_cycles = 1;
  };

  // `host_table` may be null for a native (non-virtualized) engine.  This
  // form owns a private physical Tlb built from config.tlb (the status-quo
  // arrangement; equivalent to an exclusive view from a kPrivate domain).
  TranslationEngine(const Config& config, PageTable* guest_table,
                    PageTable* host_table);

  // Domain form: translate through `tlb_view`, a per-VM view handed out by
  // a TlbDomain (which owns the physical arrays).  config.tlb is ignored —
  // the domain already fixed the geometry.
  TranslationEngine(const Config& config, PageTable* guest_table,
                    PageTable* host_table, TlbView tlb_view);

  // Translates one access to the page `vpn`.  On kOk the TLB is updated; on
  // a fault nothing is cached and the caller is expected to resolve the
  // fault and retry.
  TranslateResult Translate(uint64_t vpn);

  // --- Batched translation -------------------------------------------------
  //
  // The batch path translates the same access stream the scalar path
  // would, strictly in order, with identical observable effects (results,
  // TLB counters and LRU order, page-table state, cycle charges) — proven
  // equivalent in DESIGN.md §3d and enforced by tests/test_access_batch.cc.
  // What batching buys is host-side speed, by two invisible mechanisms:
  //
  //  * a per-region memo of validated generation stamps: while neither
  //    table's mutation counter (PageTable::mutations()) has moved, a
  //    region validated once is revalidated by two hot counter compares
  //    and an O(1) Tlb::RehitHuge instead of a set scan plus per-region
  //    generation loads;
  //  * a plan-ahead prefetch pipeline over the announced window, staged to
  //    break the miss path's serial chain of dependent cache lines: a far
  //    stage classifies the access (a side-effect-free TLB probe, which
  //    doubles as the prefetch of the tag lines) and pulls the guest
  //    region-slot line for the walk-bound ones, a mid stage the guest
  //    frame-array line, a near stage side-walks the guest table (const
  //    Lookup, no side effects) to discover the GFN and pull the host
  //    region-slot line, and a last stage pulls the host frame-array
  //    line — each a few accesses before the real walk consumes it.

  // Announces the next `vpns.size()` accesses as one batch: records batch
  // stats (size histogram) and exposes the window to the prefetch planner.
  // Planning itself stays dormant until the batch takes its first real TLB
  // miss, so steady-state hit streams pay no planning overhead at all.
  // Only batch_stats() observes this call.
  void BeginBatch(std::span<const uint64_t> vpns);

  // Translates the next access of the current batch.  Callers pass the
  // window's vpns in order (fault retries repeat one vpn; the prefetch
  // cursor does not care).  Observationally identical to Translate(vpn).
  TranslateResult TranslateBatched(uint64_t vpn);

  // Whole-batch convenience used by benchmarks and tests: BeginBatch +
  // TranslateBatched per element, stopping at the first fault.  Returns
  // the number of leading kOk results written to out[0..count); if count <
  // vpns.size(), out[count] holds the fault result for vpns[count].
  size_t TranslateBatch(std::span<const uint64_t> vpns, TranslateResult* out);

  // Host-side effectiveness counters for the batch path (simulation state
  // is unaffected by batching; these only describe how it was driven).
  struct BatchStats {
    uint64_t batches = 0;
    uint64_t batched_translations = 0;
    // Sum over batches of the number of same-region runs (maximal
    // stretches of consecutive accesses to one 2 MiB region);
    // batched_translations / region_groups is the average run length the
    // per-region memo can amortize over.
    uint64_t region_groups = 0;
    // Translations resolved by the memoized O(1) fast path.
    uint64_t fastpath_hits = 0;
    // size_hist[b] counts batches with floor(log2(size)) == b, capped at 7
    // (so b7 holds every batch of 128+ accesses).
    std::array<uint64_t, 8> size_hist{};
  };
  const BatchStats& batch_stats() const { return batch_stats_; }

  // Invalidation hooks for unmap/migration/promotion events.
  void ShootdownPage(uint64_t vpn) { tlb_.ShootdownPage(vpn); }
  void ShootdownRange(uint64_t vpn, uint64_t pages) {
    tlb_.ShootdownRange(vpn, pages);
  }
  void FlushAll();

  // The engine's per-VM TLB view.  Counter accessors on it report this
  // VM's translations only, even when the physical array is shared with
  // other VMs; use tlb().physical() to reach the underlying array.
  const TlbView& tlb() const { return tlb_; }
  TlbView& tlb() { return tlb_; }

  uint64_t translations() const { return translations_; }
  base::Cycles translation_cycles() const { return translation_cycles_; }
  // Log2-bucketed per-access translation-latency histogram (cycles charged
  // to each successful translation; faulting attempts excluded).  Feeds the
  // per-VM lat_p50/p90/p99 export columns.
  const base::Log2Histogram& latency_histogram() const {
    return latency_hist_;
  }
  // Per-level page-walk accounting since the last ResetCounters (replayed
  // walks folded in; see NestedWalker::stats).
  WalkLevelStats walk_stats() const { return walker_.stats(); }
  void ResetCounters();

  bool virtualized() const { return host_table_ != nullptr; }

 private:
  // Per-region validation memo for the batch fast path.  A slot is trusted
  // only if the tables' mutation counters still equal the recorded ones,
  // so it can never go stale undetected (counters are monotonic); a slot
  // invalidated by a mutation is simply re-armed by the next slow-path
  // success for its region.
  struct RegionMemo {
    uint64_t region = ~0ull;  // ~0 = never armed
    uint64_t guest_muts = 0;
    uint64_t host_muts = 0;
    Tlb::Stamp stamp;  // the stamp the region's huge entry carried
  };
  // Sized so working sets with a few hundred resident huge regions (the
  // mixed regimes the figures sweep) do not alias-thrash the memo.
  static constexpr uint32_t kMemoSlots = 512;  // power of two
  // Prefetch pipeline depths (accesses of lookahead).  A miss is a serial
  // chain of four dependent cache lines — guest region slot, guest frame
  // array, host region slot, host frame array — so the planner runs four
  // staggered stages, each resolving one link and prefetching the next a
  // few accesses before the real walk consumes it.
  static constexpr size_t kPlanFar = 12;   // TLB set lines + guest slot line
  static constexpr size_t kPlanMid = 8;    // guest frame-array line
  static constexpr size_t kPlanNear = 5;   // guest side-walk -> host slot
  static constexpr size_t kPlanLast = 2;   // host frame-array line
  static constexpr size_t kPlanRing = 32;  // > kPlanFar; power of two

  // The shared scalar/batched body; kBatched gates the memo fast path and
  // memo arming so the scalar path compiles exactly as before.
  template <bool kBatched>
  TranslateResult TranslateImpl(uint64_t vpn);

  bool MemoValid(const RegionMemo& m, uint64_t region) const {
    return m.region == region &&
           m.guest_muts == guest_table_->mutations() &&
           (host_table_ == nullptr ||
            m.host_muts == host_table_->mutations());
  }
  void ArmMemo(uint64_t region, const Tlb::Stamp& stamp) {
    RegionMemo& m = memo_[region & (kMemoSlots - 1)];
    m.region = region;
    m.guest_muts = guest_table_->mutations();
    m.host_muts = host_table_ != nullptr ? host_table_->mutations() : 0;
    m.stamp = stamp;
  }
  void PlanFar(uint64_t vpn, size_t pos);         // probe/classify + slot
  void PlanMid(uint64_t vpn, size_t pos) const;   // guest frame-array line
  void PlanNear(uint64_t vpn, size_t pos);        // side-walk -> ring
  void PlanLast(size_t pos) const;                // host frame line

  // Guest walk for the batched path: returns the ring's side-walk result
  // when it provably still holds, else walks for real.
  std::optional<Translation> BatchedGuestWalk(uint64_t vpn) const;

  Config config_;
  PageTable* guest_table_;
  PageTable* host_table_;
  // Set only by the owning constructor; declared before tlb_ so the view
  // can be initialized from it.
  std::unique_ptr<Tlb> owned_tlb_;
  TlbView tlb_;
  NestedWalker walker_;
  uint64_t translations_ = 0;
  base::Cycles translation_cycles_ = 0;
  base::Log2Histogram latency_hist_;

  std::array<RegionMemo, kMemoSlots> memo_;
  std::span<const uint64_t> plan_window_;
  size_t batch_pos_ = 0;       // accesses consumed from the window
  size_t plan_far_pos_ = 0;
  size_t plan_mid_pos_ = 0;
  size_t plan_near_pos_ = 0;
  size_t plan_last_pos_ = 0;
  // Guest side-walk results, keyed by window position.  PlanNear fills a
  // slot; PlanLast prefetches from it; the real translation at that
  // position reuses the walk outright when the guest table's mutation
  // counter proves the table unchanged since the side-walk (Lookup is a
  // pure function of table state, so the result is identical by
  // construction).  vpn == ~0 marks an empty slot.
  struct PlanSlot {
    uint64_t vpn = ~0ull;
    uint64_t guest_muts = 0;
    // Set by the far stage when the access looks hit-bound (memo valid or
    // TLB probe hit): the later stages early-out on it.
    bool skip = false;
    std::optional<Translation> guest;
  };
  std::array<PlanSlot, kPlanRing> plan_ring_;
  // Planning is armed lazily, by the first real TLB miss of the batch
  // (plan_wanted_ latches in the walk path): a batch the memo and TLB fully
  // absorb never pays a cycle of planning overhead.
  bool plan_enabled_ = false;
  bool plan_wanted_ = false;
  uint64_t batch_run_region_ = ~0ull;  // current same-region run (stats)
  BatchStats batch_stats_;
};

}  // namespace mmu

#endif  // SRC_MMU_TRANSLATION_ENGINE_H_
