// The translation engine ties the TLB, the page-walk cost model, and the
// two page-table layers together.  It is the component that encodes the
// paper's central observation (§2.2):
//
//   A 2 MiB TLB entry can only be installed when the guest maps the region
//   with a huge page AND the host backs that exact guest-physical region
//   with a huge page (a *well-aligned* huge page).  In every other
//   combination the combined GVA->HPA translation only exists at 4 KiB
//   granularity, so huge pages that are misaligned across the layers do not
//   increase TLB coverage — they only shorten the page walk.
//
// In native mode (no host table) the engine degenerates to a classic
// TLB + 1D walk.
//
// Hot path: a TLB hit is validated by comparing the entry's generation
// stamp against the guest/host page tables' per-region generation counters
// (see page_table.h) — an O(1) integer compare, no table walks.  Only when
// a generation moved is the translation re-derived, after which the entry
// is restamped (still correct, e.g. in-place promotion) or dropped as
// stale.  DESIGN.md ("Translation hot path") proves this equivalent to
// re-deriving on every hit.
#ifndef SRC_MMU_TRANSLATION_ENGINE_H_
#define SRC_MMU_TRANSLATION_ENGINE_H_

#include <cstdint>

#include "base/types.h"
#include "mmu/nested_walker.h"
#include "mmu/page_table.h"
#include "mmu/tlb.h"

namespace mmu {

enum class TranslateStatus : uint8_t {
  kOk,
  kGuestFault,  // no guest mapping for the VPN: guest OS must demand-page
  kHostFault,   // no host mapping for the GFN: host OS must back the page
};

struct TranslateResult {
  TranslateStatus status = TranslateStatus::kOk;
  uint64_t frame = 0;          // host frame (virtualized) or frame (native)
  uint64_t fault_page = 0;     // faulting VPN (guest) or GFN (host)
  base::Cycles cycles = 0;     // translation cost charged to this access
  bool tlb_hit = false;
  bool well_aligned_huge = false;  // translated through a 2M TLB-able mapping
};

class TranslationEngine {
 public:
  struct Config {
    TlbConfig tlb;
    WalkerConfig walker;
    base::Cycles tlb_hit_cycles = 1;
  };

  // `host_table` may be null for a native (non-virtualized) engine.
  TranslationEngine(const Config& config, PageTable* guest_table,
                    PageTable* host_table);

  // Translates one access to the page `vpn`.  On kOk the TLB is updated; on
  // a fault nothing is cached and the caller is expected to resolve the
  // fault and retry.
  TranslateResult Translate(uint64_t vpn);

  // Invalidation hooks for unmap/migration/promotion events.
  void ShootdownPage(uint64_t vpn) { tlb_.ShootdownPage(vpn); }
  void ShootdownRange(uint64_t vpn, uint64_t pages) {
    tlb_.ShootdownRange(vpn, pages);
  }
  void FlushAll();

  const Tlb& tlb() const { return tlb_; }
  Tlb& tlb() { return tlb_; }

  uint64_t translations() const { return translations_; }
  base::Cycles translation_cycles() const { return translation_cycles_; }
  void ResetCounters();

  bool virtualized() const { return host_table_ != nullptr; }

 private:
  Config config_;
  PageTable* guest_table_;
  PageTable* host_table_;
  Tlb tlb_;
  NestedWalker walker_;
  uint64_t translations_ = 0;
  base::Cycles translation_cycles_ = 0;
};

}  // namespace mmu

#endif  // SRC_MMU_TRANSLATION_ENGINE_H_
