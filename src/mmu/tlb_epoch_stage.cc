#include "mmu/tlb_epoch_stage.h"

#include "base/check.h"

namespace mmu {

TlbEpochStage::TlbEpochStage(Tlb* physical, uint16_t vmid)
    : physical_(physical), vmid_(vmid) {
  SIM_CHECK(physical_ != nullptr);
  // The counter slot and way window must exist before the frozen array is
  // probed concurrently: Counters()'s lazy-registration growth branch must
  // never run during a parallel phase.
  physical_->RegisterVm(vmid_);
}

void TlbEpochStage::BeginEpoch() {
  overlay_.clear();
  events_.clear();
  deltas_ = Deltas{};
  last_was_hit_ = false;
}

bool TlbEpochStage::ProbeOne(uint64_t key, base::PageSize size,
                             uint64_t* frame, Tlb::Stamp* stamp) const {
  if (const auto it = overlay_.find(OverlayKey(key, size));
      it != overlay_.end()) {
    if (!it->second.present) {
      return false;  // tombstoned by this lane earlier in the epoch
    }
    *frame = it->second.frame;
    *stamp = it->second.stamp;
    return true;
  }
  const int64_t i = physical_->FindEntry(key, size, vmid_);
  if (i < 0) {
    return false;
  }
  const Tlb::Entry& e = physical_->entries_[i];
  *frame = e.frame;
  *stamp = e.stamp;
  return true;
}

void TlbEpochStage::LogHit(uint64_t key, base::PageSize size) {
  ++deltas_.hits;
  events_.push_back(Event{EventKind::kHit, size, key, 0, Tlb::Stamp{}});
  last_was_hit_ = true;
  last_hit_key_ = key;
  last_hit_size_ = size;
}

Tlb::LookupResult TlbEpochStage::Lookup(uint64_t vpn) {
  // Huge-then-base probe order, exactly as Tlb::Lookup.
  const uint64_t region = vpn >> base::kHugeOrder;
  uint64_t frame = 0;
  Tlb::Stamp stamp;
  if (ProbeOne(region, base::PageSize::kHuge, &frame, &stamp)) {
    LogHit(region, base::PageSize::kHuge);
    return Tlb::LookupResult{true, base::PageSize::kHuge, frame, stamp};
  }
  if (ProbeOne(vpn, base::PageSize::kBase, &frame, &stamp)) {
    LogHit(vpn, base::PageSize::kBase);
    return Tlb::LookupResult{true, base::PageSize::kBase, frame, stamp};
  }
  ++deltas_.misses;
  events_.push_back(
      Event{EventKind::kMiss, base::PageSize::kBase, vpn, 0, Tlb::Stamp{}});
  last_was_hit_ = false;
  return Tlb::LookupResult{};
}

bool TlbEpochStage::RehitHuge(uint64_t region, Tlb::LookupResult* out) {
  // Semantically "Lookup would hit the region's huge entry": the staged
  // view needs no memo — the overlay map is already O(1) — so this is the
  // plain epoch-visible probe with hit accounting.
  uint64_t frame = 0;
  Tlb::Stamp stamp;
  if (!ProbeOne(region, base::PageSize::kHuge, &frame, &stamp)) {
    return false;
  }
  LogHit(region, base::PageSize::kHuge);
  *out = Tlb::LookupResult{true, base::PageSize::kHuge, frame, stamp};
  return true;
}

bool TlbEpochStage::Probe(uint64_t vpn) const {
  uint64_t frame = 0;
  Tlb::Stamp stamp;
  return ProbeOne(vpn >> base::kHugeOrder, base::PageSize::kHuge, &frame,
                  &stamp) ||
         ProbeOne(vpn, base::PageSize::kBase, &frame, &stamp);
}

void TlbEpochStage::Insert(uint64_t vpn, base::PageSize size, uint64_t frame,
                           const Tlb::Stamp& stamp) {
  const uint64_t key =
      size == base::PageSize::kHuge ? (vpn >> base::kHugeOrder) : vpn;
  overlay_[OverlayKey(key, size)] = Overlay{true, frame, stamp};
  events_.push_back(Event{EventKind::kInsert, size, key, frame, stamp});
}

void TlbEpochStage::RestampHit(const Tlb::Stamp& stamp) {
  SIM_CHECK(last_was_hit_);
  uint64_t frame = 0;
  Tlb::Stamp old;
  // The entry was epoch-visible a moment ago (the engine restamps right
  // after a hit) and only this lane mutates the overlay.
  SIM_CHECK(ProbeOne(last_hit_key_, last_hit_size_, &frame, &old));
  overlay_[OverlayKey(last_hit_key_, last_hit_size_)] =
      Overlay{true, frame, stamp};
  events_.push_back(
      Event{EventKind::kRestamp, last_hit_size_, last_hit_key_, frame, stamp});
}

void TlbEpochStage::DiscountStaleHit() {
  ++deltas_.stale_drops;
  --deltas_.hits;
  ++deltas_.misses;
  events_.push_back(Event{EventKind::kStale, base::PageSize::kBase, 0, 0,
                          Tlb::Stamp{}});
}

void TlbEpochStage::UncountFaultMiss() {
  --deltas_.misses;
  events_.push_back(Event{EventKind::kUncount, base::PageSize::kBase, 0, 0,
                          Tlb::Stamp{}});
}

uint32_t TlbEpochStage::ShootdownPage(uint64_t vpn) {
  uint32_t dropped = 0;
  uint64_t frame = 0;
  Tlb::Stamp stamp;
  if (ProbeOne(vpn, base::PageSize::kBase, &frame, &stamp)) {
    overlay_[OverlayKey(vpn, base::PageSize::kBase)] = Overlay{};
    ++dropped;
  }
  const uint64_t region = vpn >> base::kHugeOrder;
  if (ProbeOne(region, base::PageSize::kHuge, &frame, &stamp)) {
    overlay_[OverlayKey(region, base::PageSize::kHuge)] = Overlay{};
    ++dropped;
  }
  deltas_.shootdowns += dropped;
  events_.push_back(Event{EventKind::kShootdown, base::PageSize::kBase, vpn,
                          0, Tlb::Stamp{}});
  return dropped;
}

void TlbEpochStage::Commit() {
  Tlb& t = *physical_;
  for (const Event& e : events_) {
    switch (e.kind) {
      case EventKind::kHit: {
        // What Tlb::Lookup's hit branch does, minus the probe: the entry
        // may have been evicted by an earlier replayed insert (own or a
        // lower-ID VM's) — the hit still counts, the LRU touch is skipped.
        ++t.clock_;
        const int64_t i = t.FindEntry(e.key, e.size, vmid_);
        if (i >= 0) {
          t.lru_[i] = t.clock_;
          if (e.size == base::PageSize::kHuge) {
            t.huge_hit_memo_[e.key & (Tlb::kHugeMemoSlots - 1)] =
                static_cast<int32_t>(i);
          }
          t.last_hit_ = i;
        } else {
          t.last_hit_ = -1;
        }
        ++t.Counters(vmid_).hits;
        if (t.monitor_ != nullptr) {
          t.monitor_->OnAccess(e.key, e.size, vmid_);
        }
        break;
      }
      case EventKind::kMiss: {
        ++t.clock_;
        t.last_hit_ = -1;
        Tlb::VmTlbCounters& c = t.Counters(vmid_);
        ++c.misses;
        if (t.monitor_ != nullptr) {
          const int32_t evictor = t.monitor_->AttributeMiss(e.key, vmid_);
          if (evictor >= 0) {
            ++(static_cast<uint16_t>(evictor) == vmid_
                   ? c.displaced_by_self
                   : c.displaced_by_other);
          }
        }
        break;
      }
      case EventKind::kStale:
        t.DiscountStaleHit(vmid_);
        break;
      case EventKind::kUncount:
        t.UncountFaultMiss(vmid_);
        break;
      case EventKind::kInsert: {
        // Insert (not InsertMiss): replay ordering can leave the key
        // present (a test staged an overwrite of a live entry), and the
        // probing form handles both cases with full eviction accounting
        // and monitor hooks.
        const uint64_t vpn = e.size == base::PageSize::kHuge
                                 ? (e.key << base::kHugeOrder)
                                 : e.key;
        t.Insert(vpn, e.size, e.frame, e.stamp, vmid_);
        break;
      }
      case EventKind::kShootdown:
        t.ShootdownPage(e.key, vmid_);
        break;
      case EventKind::kRestamp: {
        const int64_t i = t.FindEntry(e.key, e.size, vmid_);
        if (i >= 0) {
          t.entries_[i].stamp = e.stamp;
        }
        break;
      }
    }
  }
  BeginEpoch();  // clear everything for the next epoch
}

}  // namespace mmu
