// Dynamic UCP-style way repartitioner for a shared, way-windowed TLB.
//
// Closes the control loop the utility monitor opened: TlbUtilityMonitor
// measures, per VM, how many sampled accesses would hit at each stack
// depth (the marginal-utility curve); this class periodically reads those
// curves and *reassigns* the per-VM way windows of the shared physical
// array, so a VM whose working set grew takes ways from one that stopped
// using them.  kPartitioned frozen at the boot-time split is the static
// baseline this beats on phase-changing workloads (fig17 static-vs-dynamic
// table).
//
// Policy, per tick:
//
//   1. *Interval curves.*  The monitor's way_hits histograms are
//      cumulative over the run; the repartitioner differences them against
//      the previous tick's snapshot, so the allocation tracks the *recent*
//      phase, not the whole history — a VM that was hot an hour ago and
//      idle now scores zero.
//   2. *Allocation.*  AllocateWays distributes the physical ways to
//      maximize total expected interval hits, Σ_v cum_v(w_v) with
//      cum_v(w) = Σ_{d<w} way_hits_v[d], subject to Σ w_v = ways and
//      w_v ≥ min_ways.  This is the objective greedy marginal-utility
//      (UCP "lookahead") allocators climb; because shadow-stack curves
//      need not be concave, the implementation computes the exact optimum
//      by dynamic programming over (vm, remaining ways) — O(n · W²) with
//      W = 12-way associativity, trivially cheap at daemon frequency —
//      and the brute-force differential test holds it to exactly the
//      exhaustive-search answer.  Ties are broken deterministically toward
//      the lexicographically-largest allocation vector: the lowest VM ID
//      keeps the extra way.
//   3. *Hysteresis.*  The new allocation is applied only if its expected
//      interval hits beat the current windows' by more than
//      hysteresis × (interval sampled accesses); otherwise the windows
//      stand.  A near-tie must not thrash: every move pays
//      repartition_evictions (entries stranded outside the moved window
//      are dropped through Tlb::RepartitionVmWays).
//   4. *Application.*  Windows are laid out as disjoint prefix intervals
//      in VM-ID order ([0, w_0), [w_0, w_0 + w_1), …), which preserves the
//      Tlb invariant that windows of distinct VMs are identical or
//      disjoint and covers every physical way.
//
// Scheduling and determinism: the repartitioner itself never sleeps or
// polls — os::Machine registers a PeriodicTask that calls
// TlbDomain::RepartitionTick at GEMINI_REPART_INTERVAL cycles of logical
// time.  PeriodicTasks only ever fire from RunDueDaemons, which runs
// outside epoch-parallel phases (at epoch barriers, after the canonical
// VM-ID-ordered stage replay), so repartitions are a pure function of the
// simulated access stream: byte-identical output at any GEMINI_VM_THREADS
// / GEMINI_JOBS / GEMINI_BATCH setting.  All tick math is integer except
// the hysteresis product, a single deterministic double multiply.
#ifndef SRC_MMU_TLB_REPARTITIONER_H_
#define SRC_MMU_TLB_REPARTITIONER_H_

#include <cstdint>
#include <vector>

#include "mmu/tlb.h"
#include "mmu/tlb_utility_monitor.h"

namespace mmu {

class TlbRepartitioner {
 public:
  struct Config {
    // Floor on any VM's way window.  Clamped down to ways / n when more
    // VMs register than the floor can accommodate.
    uint32_t min_ways = 1;
    // Apply a new allocation only if it is expected to gain more than this
    // fraction of the interval's sampled accesses over the current one.
    double hysteresis = 0.05;
  };

  // `tlb` and `monitor` are borrowed; both must outlive the repartitioner
  // (TlbDomain owns all three).
  TlbRepartitioner(Tlb* tlb, const TlbUtilityMonitor* monitor,
                   const Config& config);

  // One policy tick over the given VMs (canonical VM-ID order; the domain
  // passes its registered list).  Reads interval utility curves, solves
  // the allocation, and — if it clears hysteresis — moves the way windows.
  void Tick(const std::vector<uint16_t>& vmids);

  // Exact solution of the way-allocation problem (public and static so the
  // brute-force differential test can drive it directly): distribute
  // `total_ways` over the VMs of `marginal`, where marginal[v][d] is VM
  // v's interval hit count at stack depth d (hits requiring ≥ d+1 ways),
  // maximizing Σ_v Σ_{d < w_v} marginal[v][d] subject to Σ w_v =
  // total_ways and w_v ≥ min_ways.  Among optima, returns the
  // lexicographically-largest allocation (lower VM IDs keep extra ways).
  // Requires 0 < n ≤ total_ways and n * min_ways ≤ total_ways.
  static std::vector<uint32_t> AllocateWays(
      const std::vector<std::vector<uint64_t>>& marginal, uint32_t total_ways,
      uint32_t min_ways);

  // --- stats (all monotonic over the run) -------------------------------
  uint64_t ticks() const { return ticks_; }
  // Ticks whose allocation cleared hysteresis and moved ≥ 1 window.
  uint64_t repartitions() const { return repartitions_; }
  // Total entries dropped by window moves (sum of per-VM
  // repartition_evictions charged through Tlb::RepartitionVmWays).
  uint64_t evictions() const { return evictions_; }

  const Config& config() const { return config_; }

 private:
  Tlb* tlb_;                          // borrowed
  const TlbUtilityMonitor* monitor_;  // borrowed
  Config config_;
  // Previous tick's cumulative way_hits per vmid, for interval differencing.
  std::vector<std::vector<uint64_t>> prev_way_hits_;
  uint64_t ticks_ = 0;
  uint64_t repartitions_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace mmu

#endif  // SRC_MMU_TLB_REPARTITIONER_H_
