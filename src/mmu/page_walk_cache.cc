#include "mmu/page_walk_cache.h"

namespace mmu {

bool PrefixCache::Lookup(uint64_t prefix) {
  // MRU fast path: walk streams probe the same prefix for long runs, and a
  // hit on the list head needs neither the hash lookup nor a splice.
  if (!lru_.empty() && lru_.front() == prefix) {
    return true;
  }
  auto it = index_.find(prefix);
  if (it == index_.end()) {
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  return true;
}

void PrefixCache::Insert(uint64_t prefix) {
  auto it = index_.find(prefix);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(prefix);
  index_[prefix] = lru_.begin();
}

void PrefixCache::Flush() {
  lru_.clear();
  index_.clear();
}

WalkCost PageWalkCache::Walk(uint64_t vpn, base::PageSize leaf_size) {
  WalkCost cost;
  // PML4 reference: one entry per 512 GiB of virtual space.
  const uint64_t pml4_prefix = vpn >> 27;
  if (pml4_.Lookup(pml4_prefix)) {
    ++cost.cached_refs;
  } else {
    ++cost.memory_refs;
    pml4_.Insert(pml4_prefix);
  }
  // PDPT reference: one entry per 1 GiB.
  const uint64_t pdpt_prefix = vpn >> 18;
  if (pdpt_.Lookup(pdpt_prefix)) {
    ++cost.cached_refs;
  } else {
    ++cost.memory_refs;
    pdpt_.Insert(pdpt_prefix);
  }
  // PD reference (leaf for huge pages) is not covered by the PWC.
  ++cost.memory_refs;
  if (leaf_size == base::PageSize::kBase) {
    // PT reference (leaf for base pages).
    ++cost.memory_refs;
  }
  return cost;
}

void PageWalkCache::Flush() {
  pml4_.Flush();
  pdpt_.Flush();
}

}  // namespace mmu
