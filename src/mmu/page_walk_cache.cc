#include "mmu/page_walk_cache.h"

#include "base/check.h"

namespace mmu {

namespace {

// Smallest power of two >= n (n >= 1).
uint32_t NextPow2(uint32_t n) {
  uint32_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

PrefixCache::PrefixCache(uint32_t capacity) : capacity_(capacity) {
  // ~2x buckets per entry keeps chains at O(1) expected length even at
  // capacity; the hash only accelerates probes, it never affects which
  // entry is evicted.
  const uint32_t buckets = NextPow2(capacity_ < 2 ? 4 : capacity_ * 2);
  uint32_t log2 = 0;
  while ((1u << log2) < buckets) {
    ++log2;
  }
  bucket_shift_ = 64 - log2;
  bucket_head_.assign(buckets, -1);
  keys_.reserve(capacity_);
  chain_next_.reserve(capacity_);
  lru_prev_.reserve(capacity_);
  lru_next_.reserve(capacity_);
}

void PrefixCache::LinkIntoBucket(uint32_t slot) {
  const uint32_t bucket = Bucket(keys_[slot]);
  chain_next_[slot] = bucket_head_[bucket];
  bucket_head_[bucket] = static_cast<int32_t>(slot);
}

void PrefixCache::UnlinkFromBucket(uint32_t slot) {
  const uint32_t bucket = Bucket(keys_[slot]);
  int32_t* link = &bucket_head_[bucket];
  while (*link != static_cast<int32_t>(slot)) {
    SIM_CHECK(*link >= 0);  // slot must be on its bucket chain
    link = &chain_next_[*link];
  }
  *link = chain_next_[slot];
}

void PrefixCache::PushFront(uint32_t slot) {
  lru_prev_[slot] = -1;
  lru_next_[slot] = lru_head_;
  if (lru_head_ >= 0) {
    lru_prev_[lru_head_] = static_cast<int32_t>(slot);
  } else {
    lru_tail_ = static_cast<int32_t>(slot);
  }
  lru_head_ = static_cast<int32_t>(slot);
}

uint32_t PrefixCache::InsertMissing(uint64_t prefix) {
  SIM_CHECK(capacity_ > 0);
  ++mutations_;
  if (keys_.size() < capacity_) {
    const uint32_t slot = static_cast<uint32_t>(keys_.size());
    keys_.push_back(prefix);
    chain_next_.push_back(-1);
    lru_prev_.push_back(-1);
    lru_next_.push_back(-1);
    LinkIntoBucket(slot);
    PushFront(slot);
    return slot;
  }
  // Evict the exact LRU entry: the recency-list tail (the same entry a
  // least-recent-stamp scan would pick).
  const uint32_t victim = static_cast<uint32_t>(lru_tail_);
  UnlinkFromBucket(victim);
  keys_[victim] = prefix;
  LinkIntoBucket(victim);
  MoveToFront(victim);
  return victim;
}

void PrefixCache::Flush() {
  ++mutations_;
  keys_.clear();
  chain_next_.clear();
  lru_prev_.clear();
  lru_next_.clear();
  lru_head_ = -1;
  lru_tail_ = -1;
  bucket_head_.assign(bucket_head_.size(), -1);
}

WalkCost PageWalkCache::Walk(uint64_t vpn, base::PageSize leaf_size) {
  WalkCost cost;
  // PML4 reference: one entry per 512 GiB of virtual space.
  const uint64_t pml4_prefix = vpn >> 27;
  int32_t slot = pml4_.LookupSlot(pml4_prefix);
  if (slot >= 0) {
    ++cost.cached_refs;
    cost.l4_cached = true;
    cost.l4_slot = static_cast<uint32_t>(slot);
  } else {
    ++cost.memory_refs;
    cost.l4_slot = pml4_.InsertMissing(pml4_prefix);
  }
  // PDPT reference: one entry per 1 GiB.
  const uint64_t pdpt_prefix = vpn >> 18;
  slot = pdpt_.LookupSlot(pdpt_prefix);
  if (slot >= 0) {
    ++cost.cached_refs;
    cost.l3_cached = true;
    cost.l3_slot = static_cast<uint32_t>(slot);
  } else {
    ++cost.memory_refs;
    cost.l3_slot = pdpt_.InsertMissing(pdpt_prefix);
  }
  // PD reference (leaf for huge pages) is not covered by the PWC.
  ++cost.memory_refs;
  if (leaf_size == base::PageSize::kBase) {
    // PT reference (leaf for base pages).
    ++cost.memory_refs;
  }
  return cost;
}

void PageWalkCache::Flush() {
  pml4_.Flush();
  pdpt_.Flush();
}

}  // namespace mmu
