#include "mmu/page_walk_cache.h"

namespace mmu {

WalkCost PageWalkCache::Walk(uint64_t vpn, base::PageSize leaf_size) {
  WalkCost cost;
  // PML4 reference: one entry per 512 GiB of virtual space.
  const uint64_t pml4_prefix = vpn >> 27;
  if (pml4_.Lookup(pml4_prefix)) {
    ++cost.cached_refs;
  } else {
    ++cost.memory_refs;
    pml4_.InsertMissing(pml4_prefix);
  }
  // PDPT reference: one entry per 1 GiB.
  const uint64_t pdpt_prefix = vpn >> 18;
  if (pdpt_.Lookup(pdpt_prefix)) {
    ++cost.cached_refs;
  } else {
    ++cost.memory_refs;
    pdpt_.InsertMissing(pdpt_prefix);
  }
  // PD reference (leaf for huge pages) is not covered by the PWC.
  ++cost.memory_refs;
  if (leaf_size == base::PageSize::kBase) {
    // PT reference (leaf for base pages).
    ++cost.memory_refs;
  }
  return cost;
}

void PageWalkCache::Flush() {
  pml4_.Flush();
  pdpt_.Flush();
}

}  // namespace mmu
