#include "mmu/tlb_repartitioner.h"

#include <algorithm>

#include "base/check.h"

namespace mmu {

namespace {

// Expected interval hits for a VM holding `ways` ways: the prefix sum of
// its marginal (stack-depth) histogram.
uint64_t CumHits(const std::vector<uint64_t>& marginal, uint32_t ways) {
  uint64_t total = 0;
  const uint32_t n = std::min<uint32_t>(ways, marginal.size());
  for (uint32_t d = 0; d < n; ++d) {
    total += marginal[d];
  }
  return total;
}

}  // namespace

TlbRepartitioner::TlbRepartitioner(Tlb* tlb, const TlbUtilityMonitor* monitor,
                                   const Config& config)
    : tlb_(tlb), monitor_(monitor), config_(config) {
  SIM_CHECK(tlb_ != nullptr && monitor_ != nullptr);
  SIM_CHECK(config_.hysteresis >= 0.0);
}

std::vector<uint32_t> TlbRepartitioner::AllocateWays(
    const std::vector<std::vector<uint64_t>>& marginal, uint32_t total_ways,
    uint32_t min_ways) {
  const uint32_t n = static_cast<uint32_t>(marginal.size());
  SIM_CHECK(n > 0 && n <= total_ways);
  SIM_CHECK(min_ways >= 1 && static_cast<uint64_t>(n) * min_ways <= total_ways);
  // best[i][r]: maximum total hits for VMs i..n-1 holding exactly r ways
  // between them (each ≥ min_ways); -1 marks infeasible (r cannot be split
  // into n-i parts of ≥ min_ways each, or r left over at i == n).
  const uint32_t W = total_ways;
  std::vector<std::vector<int64_t>> best(n + 1,
                                         std::vector<int64_t>(W + 1, -1));
  best[n][0] = 0;
  for (uint32_t i = n; i-- > 0;) {
    for (uint32_t r = min_ways; r <= W; ++r) {
      int64_t b = -1;
      for (uint32_t w = min_ways; w <= r; ++w) {
        if (best[i + 1][r - w] < 0) {
          continue;
        }
        const int64_t v =
            static_cast<int64_t>(CumHits(marginal[i], w)) + best[i + 1][r - w];
        b = std::max(b, v);
      }
      best[i][r] = b;
    }
  }
  SIM_CHECK(best[0][W] >= 0);
  // Reconstruct the lexicographically-largest optimum: at each VM in ID
  // order, give it the largest way count consistent with the optimal total.
  std::vector<uint32_t> alloc(n, 0);
  uint32_t r = W;
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t w = r; w >= min_ways; --w) {
      if (best[i + 1][r - w] >= 0 &&
          static_cast<int64_t>(CumHits(marginal[i], w)) + best[i + 1][r - w] ==
              best[i][r]) {
        alloc[i] = w;
        r -= w;
        break;
      }
    }
    SIM_CHECK(alloc[i] >= min_ways);
  }
  SIM_CHECK(r == 0);
  return alloc;
}

void TlbRepartitioner::Tick(const std::vector<uint16_t>& vmids) {
  ++ticks_;
  const uint32_t W = tlb_->config().ways;
  const uint32_t n = static_cast<uint32_t>(vmids.size());
  if (n == 0 || n > W) {
    // No VMs yet, or more VMs than ways: every window assignment would
    // starve someone, so leave the static layout alone.
    return;
  }
  // Interval (since-last-tick) utility curves, differenced against the
  // previous snapshot of the monitor's cumulative histograms.
  std::vector<std::vector<uint64_t>> interval(n);
  uint64_t sampled = 0;
  for (uint32_t i = 0; i < n; ++i) {
    const uint16_t vmid = vmids[i];
    const TlbUtilityMonitor::VmUtility& u = monitor_->utility(vmid);
    if (prev_way_hits_.size() <= vmid) {
      prev_way_hits_.resize(vmid + 1);
    }
    std::vector<uint64_t>& prev = prev_way_hits_[vmid];
    interval[i].assign(W, 0);
    for (uint32_t d = 0; d < u.way_hits.size() && d < W; ++d) {
      const uint64_t was = d < prev.size() ? prev[d] : 0;
      interval[i][d] = u.way_hits[d] - was;
      sampled += interval[i][d];
    }
    prev = u.way_hits;
  }
  if (sampled == 0) {
    return;  // nothing observed this interval; no basis to move windows
  }
  const uint32_t min_ways = std::max(1u, std::min(config_.min_ways, W / n));
  const std::vector<uint32_t> want = AllocateWays(interval, W, min_ways);
  // Hysteresis: expected interval hits of the proposed layout vs the
  // current windows (whatever sizes they have — the initial even split may
  // not even cover every way).
  uint64_t want_hits = 0;
  uint64_t cur_hits = 0;
  bool moved = false;
  uint32_t begin = 0;
  for (uint32_t i = 0; i < n; ++i) {
    want_hits += CumHits(interval[i], want[i]);
    cur_hits += CumHits(interval[i], tlb_->vm_way_count(vmids[i]));
    moved = moved || tlb_->vm_way_begin(vmids[i]) != begin ||
            tlb_->vm_way_count(vmids[i]) != want[i];
    begin += want[i];
  }
  if (!moved) {
    return;
  }
  if (static_cast<double>(want_hits) <=
      static_cast<double>(cur_hits) +
          config_.hysteresis * static_cast<double>(sampled)) {
    return;
  }
  // Apply: disjoint prefix windows in canonical VM-ID order.
  begin = 0;
  for (uint32_t i = 0; i < n; ++i) {
    evictions_ += tlb_->RepartitionVmWays(vmids[i], begin, want[i]);
    begin += want[i];
  }
  ++repartitions_;
}

}  // namespace mmu
