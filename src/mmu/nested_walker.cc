#include "mmu/nested_walker.h"

#include "base/check.h"

namespace mmu {

NestedWalker::NestedWalker(const WalkerConfig& config)
    : config_(config),
      guest_pwc_(config.guest_pwc),
      host_pwc_(config.host_pwc),
      nested_pt_(config.nested_cache_entries),
      nested_pd_(config.nested_cache_entries),
      nested_pdpt_(config.nested_cache_entries),
      nested_pml4_(config.nested_cache_entries) {
  if (config.walk_memo_slots > 0) {
    SIM_CHECK((config.walk_memo_slots & (config.walk_memo_slots - 1)) == 0);
    // Memo slots are 16-bit (one-cache-line entries); every memoized cache
    // must keep its slot indices in range.
    SIM_CHECK(config.nested_cache_entries <= (1u << 16));
    SIM_CHECK(config.guest_pwc.pml4_entries <= (1u << 16));
    SIM_CHECK(config.guest_pwc.pdpt_entries <= (1u << 16));
    memo_.assign(config.walk_memo_slots, Memo{});
  }
}

PrefixCache& NestedWalker::MemoCache(uint32_t i) {
  switch (i) {
    case 0:
      return guest_pwc_.pml4();
    case 1:
      return guest_pwc_.pdpt();
    case 2:
      return nested_pml4_;
    case 3:
      return nested_pdpt_;
    default:
      return nested_pd_;  // i == 4; nested_pt_ (i == 5) is handled inline
  }
}

WalkResult NestedWalker::NativeWalk(uint64_t vpn, base::PageSize leaf_size) {
  WalkResult result;
  const WalkCost cost = guest_pwc_.Walk(vpn, leaf_size);
  result.memory_refs += cost.memory_refs;
  result.cached_refs += cost.cached_refs;
  ++(cost.l4_cached ? stats_.guest_cached : stats_.guest_mem)[0];
  ++(cost.l3_cached ? stats_.guest_cached : stats_.guest_mem)[1];
  ++stats_.guest_mem[2];
  if (leaf_size == base::PageSize::kBase) {
    ++stats_.guest_mem[3];
  }
  result.cycles = result.memory_refs * config_.cycles_per_memory_ref +
                  result.cached_refs * config_.cycles_per_cached_ref;
  return result;
}

void NestedWalker::ChargeHostWalk(uint64_t key, base::PageSize leaf,
                                  WalkResult& out) {
  const WalkCost cost = host_pwc_.Walk(key, leaf);
  out.memory_refs += cost.memory_refs;
  out.cached_refs += cost.cached_refs;
  ++(cost.l4_cached ? stats_.host_cached : stats_.host_mem)[0];
  ++(cost.l3_cached ? stats_.host_cached : stats_.host_mem)[1];
  ++stats_.host_mem[2];
  if (leaf == base::PageSize::kBase) {
    ++stats_.host_mem[3];
  }
}

void NestedWalker::WalkTablePage(PrefixCache& cache, uint64_t key,
                                 uint32_t level, WalkResult& out,
                                 uint32_t* memo_slot) {
  const int32_t slot = cache.LookupSlot(key);
  if (slot >= 0) {
    // The GPA->HPA translation of this table page is cached; no
    // host-dimension references are needed for this step.
    ++stats_.nested_hit[level];
    *memo_slot = static_cast<uint32_t>(slot);
    return;
  }
  // Full host-dimension walk to translate the table page (guest page-table
  // pages are base-mapped in the host).
  ++stats_.nested_walk[level];
  ChargeHostWalk(key, base::PageSize::kBase, out);
  *memo_slot = cache.InsertMissing(key);
}

WalkResult NestedWalker::NestedWalk(uint64_t vpn, base::PageSize guest_leaf,
                                    uint64_t gfn, base::PageSize host_leaf) {
  const uint64_t region = vpn >> base::kHugeOrder;
  const bool base_leaf = guest_leaf == base::PageSize::kBase;
  WalkResult result;

  Memo* memo = nullptr;
  if (!memo_.empty() && region < kNoRegion) {
    memo = &memo_[region & (memo_.size() - 1)];
    if (memo->region == static_cast<uint32_t>(region) &&
        memo->guest_leaf == static_cast<uint8_t>(guest_leaf)) {
      bool upper_valid = true;
      for (uint32_t i = 0; i < kMemoUpperRefs; ++i) {
        upper_valid &=
            static_cast<uint32_t>(MemoCache(i).mutations()) == memo->muts[i];
      }
      if (upper_valid) {
        // Replay: the recorded caches are unchanged, so every probe the
        // live walk would issue is a guaranteed hit on the recorded slot.
        // Touch() performs the identical LRU stamp refresh a live hit
        // would; the charged costs are the live walk's hit costs.  The
        // per-level stats a replay implies are a fixed pattern, so only
        // the replay tallies are bumped here — stats() folds them back in.
        for (uint32_t i = 0; i < kMemoUpperRefs; ++i) {
          MemoCache(i).Touch(memo->slots[i]);
        }
        result.cached_refs += 2;  // guest PML4 + PDPT, PWC-served
        ++result.memory_refs;     // guest PD read
        if (base_leaf) {
          ++result.memory_refs;  // guest PT read
          if (static_cast<uint32_t>(nested_pt_.mutations()) ==
              memo->muts[kMemoUpperRefs]) {
            nested_pt_.Touch(memo->slots[kMemoUpperRefs]);
            ++memo_hits_base_;
          } else {
            // The PT-level nested cache churned (it thrashes under sparse
            // base-page access patterns) but the upper levels are intact:
            // probe only the PT level live and re-arm its slice.
            ++stats_.memo_upper_hits;
            uint32_t pt_slot = 0;
            WalkTablePage(nested_pt_, region, 3, result, &pt_slot);
            memo->slots[kMemoUpperRefs] = static_cast<uint16_t>(pt_slot);
            memo->muts[kMemoUpperRefs] =
                static_cast<uint32_t>(nested_pt_.mutations());
          }
        } else {
          ++memo_hits_huge_;
        }
        // The data page's host walk is never memoized: its key (gfn)
        // varies per page within the region.
        ChargeHostWalk(gfn, host_leaf, result);
        result.cycles = result.memory_refs * config_.cycles_per_memory_ref +
                        result.cached_refs * config_.cycles_per_cached_ref;
        return result;
      }
    }
  }

  // Live walk.  Guest-dimension directory/PTE reads: identical structure to
  // a native walk (the guest PWC covers the upper levels).
  const WalkCost guest = guest_pwc_.Walk(vpn, guest_leaf);
  result.memory_refs += guest.memory_refs;
  result.cached_refs += guest.cached_refs;
  ++(guest.l4_cached ? stats_.guest_cached : stats_.guest_mem)[0];
  ++(guest.l3_cached ? stats_.guest_cached : stats_.guest_mem)[1];
  ++stats_.guest_mem[2];
  if (base_leaf) {
    ++stats_.guest_mem[3];
  }
  // Host translations of the guest table pages those reads touch, served by
  // the nested translation caches when warm.
  std::array<uint32_t, kMemoRefs> slots = {guest.l4_slot, guest.l3_slot,
                                           0,             0,
                                           0,             0};
  WalkTablePage(nested_pml4_, 0, 0, result, &slots[2]);
  WalkTablePage(nested_pdpt_, vpn >> 27, 1, result, &slots[3]);
  WalkTablePage(nested_pd_, vpn >> 18, 2, result, &slots[4]);
  if (base_leaf) {
    WalkTablePage(nested_pt_, region, 3, result, &slots[5]);
  }
  if (memo != nullptr) {
    // Arm after all guest-side probes: every recorded key is now resident,
    // and the counters snapshot the state the slots are valid under.  The
    // data-page host walk below only touches host_pwc_, which is not in
    // the recorded set.
    memo->region = static_cast<uint32_t>(region);
    memo->guest_leaf = static_cast<uint8_t>(guest_leaf);
    for (uint32_t i = 0; i < kMemoRefs; ++i) {
      memo->slots[i] = static_cast<uint16_t>(slots[i]);
    }
    for (uint32_t i = 0; i < kMemoUpperRefs; ++i) {
      memo->muts[i] = static_cast<uint32_t>(MemoCache(i).mutations());
    }
    memo->muts[kMemoUpperRefs] =
        base_leaf ? static_cast<uint32_t>(nested_pt_.mutations()) : 0;
  }
  // Final host-dimension walk for the data page itself.
  ChargeHostWalk(gfn, host_leaf, result);
  result.cycles = result.memory_refs * config_.cycles_per_memory_ref +
                  result.cached_refs * config_.cycles_per_cached_ref;
  return result;
}

WalkLevelStats NestedWalker::stats() const {
  // Fold the replay tallies' fixed per-level patterns into the live
  // counters.  Every replayed walk (full or upper) served guest PML4/PDPT
  // from the PWC, read the guest PD from memory, and hit the nested caches
  // for the three upper table pages; base-leaf replays also read the guest
  // PT from memory, and only *full* base replays hit the nested PT cache
  // (upper replays probed it live, which counted live above).
  WalkLevelStats s = stats_;
  const uint64_t full = memo_hits_huge_ + memo_hits_base_;
  const uint64_t replays = full + stats_.memo_upper_hits;
  s.guest_cached[0] += replays;
  s.guest_cached[1] += replays;
  s.guest_mem[2] += replays;
  s.guest_mem[3] += memo_hits_base_ + stats_.memo_upper_hits;
  s.nested_hit[0] += replays;
  s.nested_hit[1] += replays;
  s.nested_hit[2] += replays;
  s.nested_hit[3] += memo_hits_base_;
  s.memo_hits = full;
  return s;
}

void NestedWalker::Flush() {
  // Flush bumps every cache's mutation counter, so armed memos
  // self-invalidate on their next validation; memo_ needs no clearing.
  guest_pwc_.Flush();
  host_pwc_.Flush();
  nested_pt_.Flush();
  nested_pd_.Flush();
  nested_pdpt_.Flush();
  nested_pml4_.Flush();
}

}  // namespace mmu
