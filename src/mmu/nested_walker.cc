#include "mmu/nested_walker.h"

namespace mmu {

NestedWalker::NestedWalker(const WalkerConfig& config)
    : config_(config),
      guest_pwc_(config.guest_pwc),
      host_pwc_(config.host_pwc),
      nested_pt_(config.nested_cache_entries),
      nested_pd_(config.nested_cache_entries),
      nested_pdpt_(config.nested_cache_entries),
      nested_pml4_(config.nested_cache_entries) {}

void NestedWalker::Charge(const WalkCost& cost, WalkResult& out) {
  out.memory_refs += cost.memory_refs;
  out.cached_refs += cost.cached_refs;
}

WalkResult NestedWalker::NativeWalk(uint64_t vpn, base::PageSize leaf_size) {
  WalkResult result;
  Charge(guest_pwc_.Walk(vpn, leaf_size), result);
  result.cycles = result.memory_refs * config_.cycles_per_memory_ref +
                  result.cached_refs * config_.cycles_per_cached_ref;
  return result;
}

void NestedWalker::WalkTablePage(PrefixCache& cache, uint64_t key,
                                 WalkResult& out) {
  if (cache.Lookup(key)) {
    // The GPA->HPA translation of this table page is cached; no
    // host-dimension references are needed for this step.
    return;
  }
  // Full host-dimension walk to translate the table page (guest page-table
  // pages are base-mapped in the host).
  Charge(host_pwc_.Walk(key, base::PageSize::kBase), out);
  cache.InsertMissing(key);
}

WalkResult NestedWalker::NestedWalk(uint64_t vpn, base::PageSize guest_leaf,
                                    uint64_t gfn, base::PageSize host_leaf) {
  WalkResult result;
  // Guest-dimension directory/PTE reads: identical structure to a native
  // walk (the guest PWC covers the upper levels).
  Charge(guest_pwc_.Walk(vpn, guest_leaf), result);
  // Host translations of the guest table pages those reads touch, served by
  // the nested translation caches when warm.
  WalkTablePage(nested_pml4_, 0, result);
  WalkTablePage(nested_pdpt_, vpn >> 27, result);
  WalkTablePage(nested_pd_, vpn >> 18, result);
  if (guest_leaf == base::PageSize::kBase) {
    WalkTablePage(nested_pt_, vpn >> 9, result);
  }
  // Final host-dimension walk for the data page itself.
  Charge(host_pwc_.Walk(gfn, host_leaf), result);
  result.cycles = result.memory_refs * config_.cycles_per_memory_ref +
                  result.cached_refs * config_.cycles_per_cached_ref;
  return result;
}

void NestedWalker::Flush() {
  guest_pwc_.Flush();
  host_pwc_.Flush();
  nested_pt_.Flush();
  nested_pd_.Flush();
  nested_pdpt_.Flush();
  nested_pml4_.Flush();
}

}  // namespace mmu
