// One layer of address translation: a sparse page table mapping page
// numbers at 4 KiB granularity to frame numbers, with 2 MiB huge-page
// leaves.
//
// The same class models both layers the paper reasons about:
//  * a guest process page table (GVA page number -> GFN), and
//  * a VM page table / EPT (GFN -> host PFN).
//
// Internally the table is a flat vector indexed by huge-region index (page
// number >> 9) whose slots hold either a huge leaf or a 512-slot base-page
// table, which is exactly the x86-64 PD/PT distinction that matters for
// the paper: a leaf at the PD level (huge) vs. leaves at the PT level
// (base).  Upper directory levels (PML4/PDPT) carry no alignment
// information and are modeled only in the walk cost (see nested_walker.h).
// The address spaces the simulator builds are dense (VMAs grow upward from
// a fixed base, guest-physical space starts at 0), so direct indexing
// makes every lookup, access bump, and generation read O(1).
//
// Storage layout (DESIGN.md §3e).  The hot path reads exactly two things:
// a per-region *route word* and one frame cell.  The route vector packs a
// region's mapping state into one uint64_t — 0 = unmapped, otherwise a
// pointer to the region's 512-slot node, with bit 0 tagging a huge leaf —
// so classifying a region is a single dense load instead of touching a fat
// struct.  Nodes live in a grow-only arena (chunked slab, see NodePool
// below) rather than as per-region heap allocations, and their frame
// cells use an all-ones sentinel for absent pages, so a lookup is route
// load -> frame load -> sentinel compare: one arena touch, no separate
// present-bit read.  Huge leaves carry their frame *inline in the route
// word* (frame << 1, bit 0 set) — a huge lookup touches only the dense
// route vector, never an arena node, which keeps the hot working set of a
// huge-heavy address space to 8 bytes per region.  The huge/base
// distinction is still a select rather than a branch (workloads interleave
// huge and base regions unpredictably, so a size branch mispredicts): the
// node load is issued unconditionally, redirected to a static dummy node
// for huge routes, and the frame comes from a select on the route bit.
// (Backing huge leaves with real precomputed-fan-out nodes was tried and
// measured slower: the extra node touch per huge lookup doubles the
// DRAM-resident working set, costing more than the avoided branch ever
// did.)  Present bits are
// kept, as 8 uint64_t words per node, for the word-at-a-time sweeps the
// promotion scans use (count/all/none, find-first, missing-slot
// enumeration); map/unmap keep word and sentinel in sync and
// CheckInvariants verifies they agree.  Generation and access counters
// live in parallel dense vectors (structure-of-arrays): the miss path
// touches them once each, and the decay sweep becomes a contiguous
// vectorizable loop.
//
// Each region carries a *generation counter*, bumped by every mapping
// mutation that touches the region (map, unmap, promote, demote).  The
// translation engine stamps TLB entries with the generations they were
// filled under, which turns TLB-hit validation into a pure integer
// compare — the software analogue of a precisely invalidated (INVLPG /
// tagged INVEPT) TLB.  Generations survive region teardown *and node
// recycling*: they live in the per-region vector, never inside arena
// nodes, and region slots are never re-indexed, so a recycled node can
// never alias a stale TLB entry of the region that previously owned it.
//
// The table also keeps a per-region access counter, bumped by the
// translation engine on TLB misses.  Promotion policies (HawkEye's
// access-coverage ranking, Ingens' utilization threshold) read it.
#ifndef SRC_MMU_PAGE_TABLE_H_
#define SRC_MMU_PAGE_TABLE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "base/types.h"
#include "vmem/frame_space.h"

namespace mmu {

// Result of a successful lookup.
struct Translation {
  uint64_t frame;       // 4 KiB frame number of the translated page
  base::PageSize size;  // granularity of the mapping that produced it
};

class PageTable {
 public:
  PageTable() = default;
  PageTable(const PageTable&) = delete;
  PageTable& operator=(const PageTable&) = delete;

  // --- Mapping -----------------------------------------------------------

  // Maps one 4 KiB page.  The enclosing 2 MiB region must not be
  // huge-mapped and the page must not already be mapped.
  void MapBase(uint64_t vpn, uint64_t frame);

  // Maps one 2 MiB page.  `region` is the huge-region index (vpn >> 9);
  // `frame` is the first 4 KiB frame of a huge-aligned 512-frame block.
  // The region must be entirely unmapped.
  void MapHuge(uint64_t region, uint64_t frame);

  // Unmaps one 4 KiB page (must be base-mapped).  Returns the frame it
  // mapped to.
  uint64_t UnmapBase(uint64_t vpn);

  // Unmaps a huge leaf.  Returns its first frame.
  uint64_t UnmapHuge(uint64_t region);

  // --- Promotion / demotion ----------------------------------------------

  // True if the region's base pages can be promoted in place: all 512
  // present, physically contiguous, huge-aligned, and in order.
  bool CanPromoteInPlace(uint64_t region) const;

  // Replaces 512 in-place-eligible base mappings with one huge leaf.
  void PromoteInPlace(uint64_t region);

  // Migration-based promotion: remaps the region as a huge leaf at
  // `new_frame` (huge-aligned).  Returns the old (vpn-slot, frame) pairs of
  // the pages that were present so the caller can free them and charge copy
  // costs.  Slots that were not present map to the new frame too (the
  // kernel zero-fills them as part of the collapse, as khugepaged does).
  std::vector<std::pair<uint32_t, uint64_t>> PromoteWithMigration(
      uint64_t region, uint64_t new_frame);

  // Splits a huge leaf into 512 base mappings onto the same frames.
  void Demote(uint64_t region);

  // --- Lookup / inspection ------------------------------------------------

  std::optional<Translation> Lookup(uint64_t vpn) const {
    const uint64_t region = vpn >> base::kHugeOrder;
    const uint32_t slot =
        static_cast<uint32_t>(vpn & (base::kPagesPerHuge - 1));
    if (region >= route_.size()) {
      return std::nullopt;
    }
    const uint64_t route = route_[region];
    if (route == 0) {
      return std::nullopt;
    }
    // The huge/base distinction is a select, not a branch: workloads
    // interleave huge and base regions unpredictably, so a size branch
    // here mispredicts constantly.  Huge routes carry their frame inline
    // (no node touch); the node load is redirected to a static dummy so it
    // can issue unconditionally (L1-resident for huge lookups).
    const bool huge = (route & 1) != 0;
    const BaseRegion* node =
        huge ? &kDummyNode : reinterpret_cast<const BaseRegion*>(route);
    const uint32_t base_frame = node->frames[slot];
    if (!huge && base_frame == kAbsentFrame) {
      return std::nullopt;
    }
    const uint64_t frame = huge ? (route >> 1) + slot : base_frame;
    return Translation{frame,
                       huge ? base::PageSize::kHuge : base::PageSize::kBase};
  }

  bool IsHugeMapped(uint64_t region) const {
    return region < route_.size() && (route_[region] & 1) != 0;
  }
  // Number of present base pages in the region (0 if huge-mapped or empty).
  uint32_t PresentBasePages(uint64_t region) const;
  // Frame of a specific base slot if present.
  std::optional<uint64_t> BaseFrame(uint64_t region, uint32_t slot) const;

  uint64_t mapped_base_pages() const { return mapped_base_pages_; }
  uint64_t huge_leaves() const { return huge_leaves_; }
  // Total mapped memory, in 4 KiB pages.
  uint64_t mapped_pages() const {
    return mapped_base_pages_ + huge_leaves_ * base::kPagesPerHuge;
  }

  // --- Precise invalidation ----------------------------------------------

  // Generation of a region's mapping state.  Every mutation that can change
  // what Lookup returns for any page of the region (MapBase, MapHuge,
  // UnmapBase, UnmapHuge, PromoteInPlace, PromoteWithMigration, Demote)
  // bumps it; access-counter traffic does not.  Two equal reads bracket an
  // interval in which every Lookup in the region was stable.  Never-touched
  // regions report 0.
  uint64_t generation(uint64_t region) const {
    return region < generations_.size() ? generations_[region] : 0;
  }

  // Table-wide mutation count: bumped exactly when any region's generation
  // is bumped.  Two equal reads bracket an interval in which *no* region's
  // generation moved, so any validation performed in between is still
  // current — this is what lets a batched translation validate a region's
  // generations once and reuse the result for later accesses of the batch
  // (see translation_engine.h).  Unlike generation(), the counter lives on
  // one hot cache line regardless of which region is asked about.
  uint64_t mutations() const { return mutations_; }

  // --- Batched-translation prefetch ---------------------------------------
  //
  // Purely advisory cache warming for a translation that will be issued
  // shortly; no observable state is read or written.  Split in two stages
  // because the base-page frame cell is behind the region's route word:
  // stage 1 pulls the route word, stage 2 (issued a few accesses later,
  // once the route line has arrived) chases the pointer to the frame cell.
  void PrefetchRegion(uint64_t region) const {
    if (region < route_.size()) {
      __builtin_prefetch(&route_[region], 0, 1);
    }
  }
  void PrefetchPage(uint64_t vpn) const {
    const uint64_t region = vpn >> base::kHugeOrder;
    if (region >= route_.size()) {
      return;
    }
    const uint64_t route = route_[region];
    // Huge routes hold their frame inline: the route load (stage 1) already
    // warmed everything.  Only base regions have a frame cell to chase.
    if (route != 0 && (route & 1) == 0) {
      const uint32_t slot =
          static_cast<uint32_t>(vpn & (base::kPagesPerHuge - 1));
      __builtin_prefetch(
          &reinterpret_cast<const BaseRegion*>(route)->frames[slot], 0, 1);
    }
  }

  // --- Access tracking ----------------------------------------------------

  void BumpAccess(uint64_t region) {
    EnsureRegion(region);
    ++accesses_[region];
  }
  uint64_t AccessCount(uint64_t region) const {
    return region < accesses_.size() ? accesses_[region] : 0;
  }
  void DecayAccessCounts();  // halves all counters (aging)

  // --- Iteration / sweeps --------------------------------------------------

  // Visits every huge leaf as (region, frame).
  void ForEachHuge(const std::function<void(uint64_t, uint64_t)>& fn) const;
  // Visits every region that has at least one base mapping as
  // (region, present_count).
  void ForEachBaseRegion(
      const std::function<void(uint64_t, uint32_t)>& fn) const;
  // Visits every present base page in a region as (slot, frame), ascending.
  void ForEachBasePage(
      uint64_t region,
      const std::function<void(uint32_t, uint64_t)>& fn) const;

  // Word-at-a-time sweep primitives for the promotion scans (ctz/popcount
  // over the present words instead of per-slot probes):

  // First present base page of a region as (slot, frame).
  std::optional<std::pair<uint32_t, uint64_t>> FirstPresent(
      uint64_t region) const;
  // The unique huge-aligned anchor A such that every present base page at
  // `slot` maps to frame A + slot, if one exists (the in-place / buddy
  // promotion precondition on the pages already present).  nullopt if the
  // region is not base-mapped, a frame breaks the pattern, or the implied
  // anchor is negative or misaligned.
  std::optional<uint64_t> ContiguousAnchor(uint64_t region) const;
  // Appends the slots of a base-mapped region with no present page to
  // `out`, ascending.
  void MissingSlots(uint64_t region, std::vector<uint32_t>* out) const;

  // --- Arena telemetry -----------------------------------------------------

  struct ArenaStats {
    uint64_t chunks = 0;      // slabs allocated (never freed)
    uint64_t live_nodes = 0;  // nodes currently backing a base region
    uint64_t free_nodes = 0;  // recycled nodes awaiting reuse
  };
  ArenaStats arena_stats() const {
    return ArenaStats{pool_.chunks(), pool_.live(), pool_.free_count()};
  }

  // Verifies counters against the table contents (tests).
  void CheckInvariants() const;

 private:
  // Frame-cell sentinel for absent base pages: lets the lookup hot path
  // decide presence from the frame cell alone.  Frame cells are 32-bit —
  // the simulated physical spaces top out at a few million 4 KiB frames,
  // and halving the cell width halves the arena's cache-resident footprint
  // (the frame-cell load is the lookup's one data-dependent far touch, so
  // its residency is what the miss path's latency is made of).  MapBase
  // checks the bound.
  static constexpr uint32_t kAbsentFrame = ~0u;

  // A 512-slot node, backing either a base-page table or a huge leaf's
  // precomputed fan-out.  `frames` is authoritative for the hot path
  // (kAbsentFrame = absent); `present` mirrors it word-packed for the
  // sweep primitives.  Nodes are pool-owned and recycled across regions;
  // nothing identity-bearing (generations, access counts) lives here.
  struct BaseRegion {
    std::array<uint32_t, base::kPagesPerHuge> frames;
    std::array<uint64_t, base::kPagesPerHuge / 64> present;

    bool Test(uint32_t slot) const {
      return (present[slot >> 6] >> (slot & 63)) & 1;
    }
    void Set(uint32_t slot) { present[slot >> 6] |= 1ull << (slot & 63); }
    void Clear(uint32_t slot) { present[slot >> 6] &= ~(1ull << (slot & 63)); }
    uint32_t Count() const {
      uint32_t n = 0;
      for (const uint64_t w : present) {
        n += static_cast<uint32_t>(__builtin_popcountll(w));
      }
      return n;
    }
    bool None() const {
      uint64_t any = 0;
      for (const uint64_t w : present) {
        any |= w;
      }
      return any == 0;
    }
    bool All() const {
      uint64_t all = ~0ull;
      for (const uint64_t w : present) {
        all &= w;
      }
      return all == ~0ull;
    }
  };

  // Grow-only arena of base-page nodes: nodes are handed out from fixed
  // slabs (stable addresses — the route words point straight at them) and
  // recycled through a free list when a region's last base page goes away.
  // The slab layout is what makes the miss path's node touches land in a
  // few large contiguous allocations instead of a heap spray.
  class NodePool {
   public:
    BaseRegion* Acquire();
    void Release(BaseRegion* node) { free_.push_back(node); }

    uint64_t chunks() const { return chunks_.size(); }
    uint64_t live() const { return handed_out_ - free_.size(); }
    uint64_t free_count() const { return free_.size(); }

   private:
    static constexpr uint32_t kChunkNodes = 16;  // ~66 KiB per slab

    std::vector<std::unique_ptr<BaseRegion[]>> chunks_;
    std::vector<BaseRegion*> free_;
    uint32_t used_in_last_chunk_ = kChunkNodes;  // forces a chunk on first use
    uint64_t handed_out_ = 0;  // lifetime Acquire() count
  };

  // Node of a *base-mapped* region (nullptr if unmapped or huge).
  BaseRegion* BaseNode(uint64_t region) {
    const uint64_t route = route_[region];
    return (route & 1) == 0 ? reinterpret_cast<BaseRegion*>(route) : nullptr;
  }
  const BaseRegion* BaseNode(uint64_t region) const {
    if (region >= route_.size()) {
      return nullptr;
    }
    const uint64_t route = route_[region];
    return (route & 1) == 0 ? reinterpret_cast<const BaseRegion*>(route)
                            : nullptr;
  }
  // All-absent node the lookup's unconditional load lands on for huge
  // routes (zero-init: frames are ignored on the huge path, so any
  // contents work; one shared 4 KiB L1-resident line set).
  inline static const BaseRegion kDummyNode{};

  // Points a node's 512 frame cells at frame .. frame + 511 and marks all
  // present (the Demote result).
  static void FillContiguous(BaseRegion* node, uint64_t frame) {
    for (uint32_t slot = 0; slot < base::kPagesPerHuge; ++slot) {
      node->frames[slot] = static_cast<uint32_t>(frame) + slot;
    }
    node->present.fill(~0ull);
  }

  // Grows the per-region vectors to cover `region`.
  void EnsureRegion(uint64_t region) {
    if (region >= route_.size()) {
      Grow(region);
    }
  }
  void Grow(uint64_t region);
  void BumpGeneration(uint64_t region) {
    ++generations_[region];
    ++mutations_;
  }

  // Per-region state, structure-of-arrays (see file comment).  route_[r]:
  // 0 = unmapped; bit 0 set = huge leaf with frame = route >> 1; bit 0
  // clear = pointer to the region's base-page node (nodes are 8-byte
  // aligned, so the tag is free and pointers round-trip through the
  // shift-free representation).
  std::vector<uint64_t> route_;
  std::vector<uint64_t> generations_;
  std::vector<uint64_t> accesses_;
  NodePool pool_;
  uint64_t mapped_base_pages_ = 0;
  uint64_t huge_leaves_ = 0;
  uint64_t mapped_regions_ = 0;  // regions with any mapping
  uint64_t mutations_ = 0;       // sum of all generation bumps
};

}  // namespace mmu

#endif  // SRC_MMU_PAGE_TABLE_H_
