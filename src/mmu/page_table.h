// One layer of address translation: a sparse page table mapping page
// numbers at 4 KiB granularity to frame numbers, with 2 MiB huge-page
// leaves.
//
// The same class models both layers the paper reasons about:
//  * a guest process page table (GVA page number -> GFN), and
//  * a VM page table / EPT (GFN -> host PFN).
//
// Internally the table is a flat vector indexed by huge-region index (page
// number >> 9) whose slots hold either a huge leaf or a 512-slot base-page
// table, which is exactly the x86-64 PD/PT distinction that matters for
// the paper: a leaf at the PD level (huge) vs. leaves at the PT level
// (base).  Upper directory levels (PML4/PDPT) carry no alignment
// information and are modeled only in the walk cost (see nested_walker.h).
// The address spaces the simulator builds are dense (VMAs grow upward from
// a fixed base, guest-physical space starts at 0), so direct indexing
// makes every lookup, access bump, and generation read O(1).  The walker's
// PrefixCache adds the matching MRU last-entry fast path for the
// same-region probe streams the translation hot path issues.
//
// Each slot also carries a *generation counter*, bumped by every mapping
// mutation that touches the region (map, unmap, promote, demote).  The
// translation engine stamps TLB entries with the generations they were
// filled under, which turns TLB-hit validation into a pure integer
// compare — the software analogue of a precisely invalidated (INVLPG /
// tagged INVEPT) TLB.  Generations survive region teardown: slots are
// never recycled for a different region, so a stale TLB entry can never
// alias a later remapping.
//
// The table also keeps a per-region access counter, bumped by the
// translation engine on TLB misses.  Promotion policies (HawkEye's
// access-coverage ranking, Ingens' utilization threshold) read it.
#ifndef SRC_MMU_PAGE_TABLE_H_
#define SRC_MMU_PAGE_TABLE_H_

#include <array>
#include <bitset>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "base/types.h"
#include "vmem/frame_space.h"

namespace mmu {

// Result of a successful lookup.
struct Translation {
  uint64_t frame;       // 4 KiB frame number of the translated page
  base::PageSize size;  // granularity of the mapping that produced it
};

class PageTable {
 public:
  PageTable() = default;
  PageTable(const PageTable&) = delete;
  PageTable& operator=(const PageTable&) = delete;

  // --- Mapping -----------------------------------------------------------

  // Maps one 4 KiB page.  The enclosing 2 MiB region must not be
  // huge-mapped and the page must not already be mapped.
  void MapBase(uint64_t vpn, uint64_t frame);

  // Maps one 2 MiB page.  `region` is the huge-region index (vpn >> 9);
  // `frame` is the first 4 KiB frame of a huge-aligned 512-frame block.
  // The region must be entirely unmapped.
  void MapHuge(uint64_t region, uint64_t frame);

  // Unmaps one 4 KiB page (must be base-mapped).  Returns the frame it
  // mapped to.
  uint64_t UnmapBase(uint64_t vpn);

  // Unmaps a huge leaf.  Returns its first frame.
  uint64_t UnmapHuge(uint64_t region);

  // --- Promotion / demotion ----------------------------------------------

  // True if the region's base pages can be promoted in place: all 512
  // present, physically contiguous, huge-aligned, and in order.
  bool CanPromoteInPlace(uint64_t region) const;

  // Replaces 512 in-place-eligible base mappings with one huge leaf.
  void PromoteInPlace(uint64_t region);

  // Migration-based promotion: remaps the region as a huge leaf at
  // `new_frame` (huge-aligned).  Returns the old (vpn-slot, frame) pairs of
  // the pages that were present so the caller can free them and charge copy
  // costs.  Slots that were not present map to the new frame too (the
  // kernel zero-fills them as part of the collapse, as khugepaged does).
  std::vector<std::pair<uint32_t, uint64_t>> PromoteWithMigration(
      uint64_t region, uint64_t new_frame);

  // Splits a huge leaf into 512 base mappings onto the same frames.
  void Demote(uint64_t region);

  // --- Lookup / inspection ------------------------------------------------

  std::optional<Translation> Lookup(uint64_t vpn) const;

  bool IsHugeMapped(uint64_t region) const;
  // Number of present base pages in the region (0 if huge-mapped or empty).
  uint32_t PresentBasePages(uint64_t region) const;
  // Frame of a specific base slot if present.
  std::optional<uint64_t> BaseFrame(uint64_t region, uint32_t slot) const;

  uint64_t mapped_base_pages() const { return mapped_base_pages_; }
  uint64_t huge_leaves() const { return huge_leaves_; }
  // Total mapped memory, in 4 KiB pages.
  uint64_t mapped_pages() const {
    return mapped_base_pages_ + huge_leaves_ * base::kPagesPerHuge;
  }

  // --- Precise invalidation ----------------------------------------------

  // Generation of a region's mapping state.  Every mutation that can change
  // what Lookup returns for any page of the region (MapBase, MapHuge,
  // UnmapBase, UnmapHuge, PromoteInPlace, PromoteWithMigration, Demote)
  // bumps it; access-counter traffic does not.  Two equal reads bracket an
  // interval in which every Lookup in the region was stable.  Never-touched
  // regions report 0.
  uint64_t generation(uint64_t region) const {
    return region < slots_.size() ? slots_[region].generation : 0;
  }

  // Table-wide mutation count: bumped exactly when any region's generation
  // is bumped.  Two equal reads bracket an interval in which *no* region's
  // generation moved, so any validation performed in between is still
  // current — this is what lets a batched translation validate a region's
  // generations once and reuse the result for later accesses of the batch
  // (see translation_engine.h).  Unlike generation(), the counter lives on
  // one hot cache line regardless of which region is asked about.
  uint64_t mutations() const { return mutations_; }

  // --- Batched-translation prefetch ---------------------------------------
  //
  // Purely advisory cache warming for a translation that will be issued
  // shortly; no observable state is read or written.  Split in two stages
  // because the base-page frame cell is behind the slot's table pointer:
  // stage 1 pulls the region slot, stage 2 (issued a few accesses later,
  // once the slot line has arrived) chases the pointer to the frame cell.
  void PrefetchRegion(uint64_t region) const {
    if (region < slots_.size()) {
      __builtin_prefetch(&slots_[region], 0, 1);
    }
  }
  void PrefetchPage(uint64_t vpn) const {
    const uint64_t region = vpn >> base::kHugeOrder;
    if (region >= slots_.size()) {
      return;
    }
    const Slot& entry = slots_[region];
    if (const BaseRegion* br = entry.base.get(); br != nullptr) {
      const uint32_t slot =
          static_cast<uint32_t>(vpn & (base::kPagesPerHuge - 1));
      __builtin_prefetch(&br->frames[slot], 0, 1);
      __builtin_prefetch(&br->present, 0, 1);
    }
  }

  // --- Access tracking ----------------------------------------------------

  void BumpAccess(uint64_t region) { SlotFor(region).accesses += 1; }
  uint64_t AccessCount(uint64_t region) const {
    return region < slots_.size() ? slots_[region].accesses : 0;
  }
  void DecayAccessCounts();  // halves all counters (aging)

  // --- Iteration ----------------------------------------------------------

  // Visits every huge leaf as (region, frame).
  void ForEachHuge(const std::function<void(uint64_t, uint64_t)>& fn) const;
  // Visits every region that has at least one base mapping as
  // (region, present_count).
  void ForEachBaseRegion(
      const std::function<void(uint64_t, uint32_t)>& fn) const;
  // Visits every present base page in a region as (slot, frame).
  void ForEachBasePage(
      uint64_t region,
      const std::function<void(uint32_t, uint64_t)>& fn) const;

  // Verifies counters against the table contents (tests).
  void CheckInvariants() const;

 private:
  struct BaseRegion {
    std::array<uint64_t, base::kPagesPerHuge> frames;
    std::bitset<base::kPagesPerHuge> present;
  };
  struct Slot {
    // At most one of the two is active: a non-null `base` is a base-page
    // table, `is_huge` a huge leaf; neither means the region is unmapped.
    // `generation` and `accesses` outlive the mapping itself.
    std::unique_ptr<BaseRegion> base;
    uint64_t huge_frame = 0;
    uint64_t generation = 0;
    uint64_t accesses = 0;
    bool is_huge = false;

    bool mapped() const { return is_huge || base != nullptr; }
  };

  // Grows the vector to cover `region` and returns its slot.
  Slot& SlotFor(uint64_t region) {
    if (region >= slots_.size()) {
      Grow(region);
    }
    return slots_[region];
  }
  void Grow(uint64_t region);

  std::vector<Slot> slots_;  // indexed by region; never shrinks
  uint64_t mapped_base_pages_ = 0;
  uint64_t huge_leaves_ = 0;
  uint64_t mapped_regions_ = 0;  // slots with mapped() == true
  uint64_t mutations_ = 0;       // sum of all generation bumps
};

}  // namespace mmu

#endif  // SRC_MMU_PAGE_TABLE_H_
