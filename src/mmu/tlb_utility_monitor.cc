#include "mmu/tlb_utility_monitor.h"

#include <algorithm>

#include "base/check.h"

namespace mmu {

TlbUtilityMonitor::TlbUtilityMonitor(const Config& config) : config_(config) {
  SIM_CHECK(config_.sets > 0 && (config_.sets & (config_.sets - 1)) == 0);
  SIM_CHECK(config_.ways > 0);
  SIM_CHECK(config_.sample_stride > 0 &&
            (config_.sample_stride & (config_.sample_stride - 1)) == 0 &&
            config_.sample_stride <= config_.sets);
  SIM_CHECK(config_.displaced_slots > 0 &&
            (config_.displaced_slots & (config_.displaced_slots - 1)) == 0);
  sampled_sets_ = config_.sets / config_.sample_stride;
  records_.resize(config_.displaced_slots);
}

void TlbUtilityMonitor::RegisterVm(uint16_t vmid) {
  (void)Shadow(vmid);
}

TlbUtilityMonitor::VmShadow& TlbUtilityMonitor::Shadow(uint16_t vmid) {
  if (vms_.size() <= vmid) {
    EnsureMatrix(vmid);
  }
  VmShadow& vm = vms_[vmid];
  if (vm.stacks.empty()) {
    vm.stacks.resize(sampled_sets_);
    vm.utility.way_hits.assign(config_.ways, 0);
  }
  return vm;
}

void TlbUtilityMonitor::EnsureMatrix(uint16_t vmid) {
  if (vmid < vms_.size()) {
    return;
  }
  const size_t old_n = vms_.size();
  const size_t new_n = static_cast<size_t>(vmid) + 1;
  vms_.resize(new_n);
  std::vector<uint64_t> grown(new_n * new_n, 0);
  for (size_t v = 0; v < old_n; ++v) {
    for (size_t e = 0; e < old_n; ++e) {
      grown[v * new_n + e] = matrix_[v * old_n + e];
    }
  }
  matrix_ = std::move(grown);
}

void TlbUtilityMonitor::ShadowAccess(uint64_t key, base::PageSize size,
                                     uint16_t vmid) {
  const uint32_t set = SetIndex(key);
  if (!Sampled(set)) {
    return;
  }
  VmShadow& vm = Shadow(vmid);
  std::vector<uint64_t>& stack = vm.stacks[set / config_.sample_stride];
  const uint64_t entry = Packed(key, size, vmid);
  for (size_t d = 0; d < stack.size(); ++d) {
    if (stack[d] == entry) {
      ++vm.utility.way_hits[d];
      stack.erase(stack.begin() + static_cast<ptrdiff_t>(d));
      stack.insert(stack.begin(), entry);
      return;
    }
  }
  ++vm.utility.shadow_misses;
  stack.insert(stack.begin(), entry);
  if (stack.size() > config_.ways) {
    stack.pop_back();
  }
}

void TlbUtilityMonitor::OnAccess(uint64_t key, base::PageSize size,
                                 uint16_t vmid) {
  ShadowAccess(key, size, vmid);
}

void TlbUtilityMonitor::OnInsert(uint64_t key, base::PageSize size,
                                 uint16_t vmid) {
  // The mapping is present again: a displaced record left over from an
  // earlier eviction of this key (e.g. the attempt it was consumed for
  // faulted before reinsert, or the key returned via a direct Insert) must
  // not be charged against some future, unrelated miss.
  ClearRecord(key, size, vmid);
  ShadowAccess(key, size, vmid);
}

void TlbUtilityMonitor::OnEviction(uint64_t key, base::PageSize size,
                                   uint16_t victim_vmid,
                                   uint16_t evictor_vmid) {
  RegisterVm(victim_vmid);
  RegisterVm(evictor_vmid);
  DisplacedRecord& slot = records_[DisplacedSlot(key, size, victim_vmid)];
  slot.tag = Packed(key, size, victim_vmid);
  slot.evictor = evictor_vmid;
}

int32_t TlbUtilityMonitor::TakeRecord(uint64_t key, base::PageSize size,
                                      uint16_t vmid) {
  DisplacedRecord& slot = records_[DisplacedSlot(key, size, vmid)];
  if (slot.tag != Packed(key, size, vmid)) {
    return -1;
  }
  const int32_t evictor = slot.evictor;
  slot.tag = 0;
  return evictor;
}

int32_t TlbUtilityMonitor::AttributeMiss(uint64_t vpn, uint16_t vmid) {
  // Mirror Lookup's probe order: the huge entry would have served the
  // access first had it survived.
  int32_t evictor =
      TakeRecord(vpn >> base::kHugeOrder, base::PageSize::kHuge, vmid);
  if (evictor < 0) {
    evictor = TakeRecord(vpn, base::PageSize::kBase, vmid);
  }
  if (evictor >= 0) {
    RegisterVm(vmid);
    EnsureMatrix(static_cast<uint16_t>(evictor));
    ++matrix_[static_cast<size_t>(vmid) * vms_.size() +
              static_cast<size_t>(evictor)];
  }
  return evictor;
}

void TlbUtilityMonitor::ClearRecord(uint64_t key, base::PageSize size,
                                    uint16_t vmid) {
  DisplacedRecord& slot = records_[DisplacedSlot(key, size, vmid)];
  if (slot.tag == Packed(key, size, vmid)) {
    slot.tag = 0;
  }
}

void TlbUtilityMonitor::OnShootdown(uint64_t vpn, uint16_t vmid) {
  const uint64_t region = vpn >> base::kHugeOrder;
  ClearRecord(vpn, base::PageSize::kBase, vmid);
  ClearRecord(region, base::PageSize::kHuge, vmid);
  // Drop the shot-down translations from the shadow stacks too: they
  // would not hit at any way count, so keeping them would overstate the
  // VM's utility curve.
  if (vmid < vms_.size() && !vms_[vmid].stacks.empty()) {
    VmShadow& vm = vms_[vmid];
    const uint64_t keys[2] = {Packed(vpn, base::PageSize::kBase, vmid),
                              Packed(region, base::PageSize::kHuge, vmid)};
    const uint32_t sets[2] = {SetIndex(vpn), SetIndex(region)};
    for (int i = 0; i < 2; ++i) {
      if (!Sampled(sets[i])) {
        continue;
      }
      std::vector<uint64_t>& stack = vm.stacks[sets[i] / config_.sample_stride];
      stack.erase(std::remove(stack.begin(), stack.end(), keys[i]),
                  stack.end());
    }
  }
}

void TlbUtilityMonitor::OnShootdownRange(uint64_t vpn, uint64_t pages,
                                         uint16_t vmid) {
  const uint64_t end = vpn + pages;
  // Rare bulk event (teardown/migration): scan the fixed-size structures.
  for (DisplacedRecord& slot : records_) {
    if ((slot.tag & 1) == 0 ||
        static_cast<uint16_t>((slot.tag >> 2) & 0xff) != vmid) {
      continue;
    }
    const bool huge = (slot.tag & 2) != 0;
    const uint64_t key = slot.tag >> 10;
    const uint64_t lo = huge ? key << base::kHugeOrder : key;
    const uint64_t hi = lo + (huge ? base::kPagesPerHuge : 1);
    if (lo < end && hi > vpn) {
      slot.tag = 0;
    }
  }
  if (vmid < vms_.size() && !vms_[vmid].stacks.empty()) {
    for (std::vector<uint64_t>& stack : vms_[vmid].stacks) {
      stack.erase(std::remove_if(stack.begin(), stack.end(),
                                 [&](uint64_t e) {
                                   const bool huge = (e & 2) != 0;
                                   const uint64_t key = e >> 10;
                                   const uint64_t lo =
                                       huge ? key << base::kHugeOrder : key;
                                   const uint64_t hi =
                                       lo + (huge ? base::kPagesPerHuge : 1);
                                   return lo < end && hi > vpn;
                                 }),
                  stack.end());
    }
  }
}

void TlbUtilityMonitor::OnInvalidateVm(uint16_t vmid) {
  for (DisplacedRecord& slot : records_) {
    if ((slot.tag & 1) != 0 &&
        static_cast<uint16_t>((slot.tag >> 2) & 0xff) == vmid) {
      slot.tag = 0;
    }
  }
  // The VM's address space moved wholesale; its shadow working set is
  // meaningless now.  The histograms stay — they are cumulative counters.
  if (vmid < vms_.size()) {
    for (std::vector<uint64_t>& stack : vms_[vmid].stacks) {
      stack.clear();
    }
  }
}

void TlbUtilityMonitor::OnFlush() {
  for (DisplacedRecord& slot : records_) {
    slot.tag = 0;
  }
  for (VmShadow& vm : vms_) {
    for (std::vector<uint64_t>& stack : vm.stacks) {
      stack.clear();
    }
  }
}

const TlbUtilityMonitor::VmUtility& TlbUtilityMonitor::utility(
    uint16_t vmid) const {
  static const VmUtility kZero{};
  if (vmid >= vms_.size() || vms_[vmid].stacks.empty()) {
    return kZero;
  }
  return vms_[vmid].utility;
}

uint64_t TlbUtilityMonitor::displaced(uint16_t victim_vmid,
                                      uint16_t evictor_vmid) const {
  if (victim_vmid >= vms_.size() || evictor_vmid >= vms_.size()) {
    return 0;
  }
  return matrix_[static_cast<size_t>(victim_vmid) * vms_.size() +
                 evictor_vmid];
}

double TlbUtilityMonitor::HitFractionWithWays(uint16_t vmid,
                                              uint32_t ways) const {
  const VmUtility& u = utility(vmid);
  const uint64_t sampled = u.sampled_accesses();
  if (sampled == 0) {
    return 0.0;
  }
  uint64_t hits = 0;
  for (uint32_t d = 0; d < ways && d < u.way_hits.size(); ++d) {
    hits += u.way_hits[d];
  }
  return static_cast<double>(hits) / static_cast<double>(sampled);
}

uint32_t TlbUtilityMonitor::MinWaysForHitFraction(uint16_t vmid,
                                                  double fraction) const {
  const VmUtility& u = utility(vmid);
  const uint64_t total = u.shadow_hits();
  if (total == 0) {
    return 0;
  }
  const double want = fraction * static_cast<double>(total);
  uint64_t cum = 0;
  for (size_t d = 0; d < u.way_hits.size(); ++d) {
    cum += u.way_hits[d];
    if (static_cast<double>(cum) >= want) {
      return static_cast<uint32_t>(d + 1);
    }
  }
  return static_cast<uint32_t>(u.way_hits.size());
}

}  // namespace mmu
