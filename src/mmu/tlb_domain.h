// TLB sharing domain: one owner for the physical TLB arrays of all the
// VMs collocated on a simulated core, handing each VM a tagged view.
//
// The paper's collocation experiments (Figs. 17/18, §6.5) run two VMs on
// one host, where the real machine's second-level TLB is a *shared*
// resource.  A `TlbDomain` models the three arrangements a core can
// present to its VMs:
//
//   * kPrivate — each VM gets its own full physical array.  This is the
//     status quo (an engine owning its own Tlb) and is observationally
//     identical to it, bit for bit: same counters, same LRU order, same
//     fig17/18 output.
//   * kShared — every VM's view probes and fills the *same* physical
//     array.  Entries carry the VM's VMID tag (PCID/vPID-style), so a VM
//     never hits another VM's translation, but all VMs compete for the
//     same sets and the LRU clock interleaves across VMIDs: one VM's
//     fills evict another's entries, which is exactly the cross-VM TLB
//     interference channel private arrays hide.  A VM-wide flush becomes
//     a tagged selective invalidation (single-context INVEPT analogue)
//     that leaves other VMs' entries in place.
//   * kPartitioned — one physical array, statically way-partitioned: VM i
//     may only fill ways [i*k, (i+1)*k) of every set.  Probes still scan
//     the whole set (tags keep correctness), but a VM's fills can only
//     evict entries inside its own window, so a noisy neighbor cannot
//     displace a victim's working set — the isolation/utilization
//     trade-off way-partitioned QoS hardware makes.
//   * kDynamic — kPartitioned's layout, but the windows move: the domain
//     owns a TlbRepartitioner that os::Machine ticks at daemon intervals,
//     reassigning the way windows from the utility monitor's per-VM
//     marginal-utility curves (see tlb_repartitioner.h).  VMs boot into
//     the same even split as kPartitioned and drift from there as phases
//     change.
//
// The domain hands out `TlbView`s: a thin (pointer, vmid) handle with the
// same operation surface as `Tlb` minus the vmid parameters, which
// `TranslationEngine` holds in place of an owned Tlb.  Counter accessors
// on a view report the *view's* VM only, so per-VM miss rates stay
// meaningful on a shared array.
#ifndef SRC_MMU_TLB_DOMAIN_H_
#define SRC_MMU_TLB_DOMAIN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "base/check.h"
#include "mmu/tlb.h"
#include "mmu/tlb_epoch_stage.h"
#include "mmu/tlb_repartitioner.h"

namespace mmu {

enum class TlbShareMode : uint8_t {
  kPrivate,      // per-VM physical arrays (status quo)
  kShared,       // one array, all VMs compete, VMID tags isolate hits
  kPartitioned,  // one array, static per-VM way windows
  kDynamic,      // one array, way windows repartitioned at daemon ticks
};

// Lower-case stable name, as used by GEMINI_TLB_MODE and export columns.
const char* TlbShareModeName(TlbShareMode mode);

struct TlbDomainConfig {
  TlbConfig tlb;  // geometry of each physical array the domain builds
  TlbShareMode mode = TlbShareMode::kPrivate;
  // kPartitioned / kDynamic: ways each VM owns at boot; 0 = split evenly
  // over expected_vms.
  uint32_t partition_ways = 0;
  uint32_t expected_vms = 2;
  // kDynamic: repartitioner policy knobs (see TlbRepartitioner::Config;
  // the tick *interval* is the machine's scheduling concern, not the
  // domain's).
  uint32_t repart_min_ways = 1;
  double repart_hysteresis = 0.05;
};

// A per-VM handle onto a physical Tlb: every operation is forwarded with
// the view's VMID, and counter accessors report the view's VM only.  For
// an exclusive view (private mode / a standalone engine-owned array)
// Flush() and ResetCounters() act on the whole array; for a shared view
// they act selectively on the VM's entries and counter slot.
class TlbView {
 public:
  TlbView() = default;
  TlbView(Tlb* physical, uint16_t vmid, bool exclusive)
      : physical_(physical), vmid_(vmid), exclusive_(exclusive) {}

  // While an epoch-parallel phase is open (os/machine.h BeginEpoch), a
  // shared/partitioned view routes every operation through a per-VM
  // TlbEpochStage instead of the physical array, so concurrent lanes
  // never write shared state; the machine detaches the stage (null) and
  // commits it at the epoch barrier.  Private views never get a stage.
  void SetEpochStage(TlbEpochStage* stage) { stage_ = stage; }
  TlbEpochStage* epoch_stage() const { return stage_; }

  // --- forwarded operations (see tlb.h for semantics) ---
  Tlb::LookupResult Lookup(uint64_t vpn) {
    if (__builtin_expect(stage_ != nullptr, 0)) {
      return stage_->Lookup(vpn);
    }
    return physical_->Lookup(vpn, vmid_);
  }
  bool RehitHuge(uint64_t region, Tlb::LookupResult* out) {
    if (__builtin_expect(stage_ != nullptr, 0)) {
      return stage_->RehitHuge(region, out);
    }
    return physical_->RehitHuge(region, out, vmid_);
  }
  bool Probe(uint64_t vpn) const {
    if (__builtin_expect(stage_ != nullptr, 0)) {
      return stage_->Probe(vpn);
    }
    return physical_->Probe(vpn, vmid_);
  }
  void PrefetchSets(uint64_t vpn) const { physical_->PrefetchSets(vpn); }
  void Insert(uint64_t vpn, base::PageSize size, uint64_t frame,
              const Tlb::Stamp& stamp) {
    if (__builtin_expect(stage_ != nullptr, 0)) {
      stage_->Insert(vpn, size, frame, stamp);
      return;
    }
    physical_->Insert(vpn, size, frame, stamp, vmid_);
  }
  void Insert(uint64_t vpn, base::PageSize size, uint64_t frame) {
    Insert(vpn, size, frame, Tlb::Stamp{});
  }
  void InsertMiss(uint64_t vpn, base::PageSize size, uint64_t frame,
                  const Tlb::Stamp& stamp) {
    if (__builtin_expect(stage_ != nullptr, 0)) {
      // The stage's overlay map needs no probe-skip shortcut.
      stage_->Insert(vpn, size, frame, stamp);
      return;
    }
    physical_->InsertMiss(vpn, size, frame, stamp, vmid_);
  }
  void RestampHit(const Tlb::Stamp& stamp) {
    if (__builtin_expect(stage_ != nullptr, 0)) {
      stage_->RestampHit(stamp);
      return;
    }
    physical_->RestampHit(stamp);
  }
  void DiscountStaleHit() {
    if (__builtin_expect(stage_ != nullptr, 0)) {
      stage_->DiscountStaleHit();
      return;
    }
    physical_->DiscountStaleHit(vmid_);
  }
  void UncountFaultMiss() {
    if (__builtin_expect(stage_ != nullptr, 0)) {
      stage_->UncountFaultMiss();
      return;
    }
    physical_->UncountFaultMiss(vmid_);
  }
  uint32_t ShootdownPage(uint64_t vpn) {
    if (__builtin_expect(stage_ != nullptr, 0)) {
      return stage_->ShootdownPage(vpn);
    }
    return physical_->ShootdownPage(vpn, vmid_);
  }
  // Range shootdowns, VM-wide flushes, and counter resets are kernel-path
  // operations; the epoch-parallel model confines those to the serial
  // phase, so they must never see an attached stage.
  uint32_t ShootdownRange(uint64_t vpn, uint64_t pages) {
    SIM_CHECK(stage_ == nullptr);
    return physical_->ShootdownRange(vpn, pages, vmid_);
  }
  // Exclusive view: full flush.  Shared view: tagged selective
  // invalidation of this VM's entries only.
  void Flush() {
    SIM_CHECK(stage_ == nullptr);
    if (exclusive_) {
      physical_->Flush();
    } else {
      physical_->InvalidateVm(vmid_);
    }
  }

  // --- this VM's counters ---
  // Mid-epoch reads add the stage's signed deltas so a lane's snapshot
  // (latency records) reflects its own staged activity; counters only the
  // barrier replay can move (evictions, displaced-by) stay frozen until
  // the commit.
  uint64_t hits() const { return Staged(counters().hits, &TlbEpochStage::Deltas::hits); }
  uint64_t misses() const {
    return Staged(counters().misses, &TlbEpochStage::Deltas::misses);
  }
  uint64_t shootdowns() const {
    return Staged(counters().shootdowns, &TlbEpochStage::Deltas::shootdowns);
  }
  uint64_t stale_hits() const {
    return Staged(counters().stale_drops, &TlbEpochStage::Deltas::stale_drops);
  }
  uint64_t stale_drops() const {
    return Staged(counters().stale_drops, &TlbEpochStage::Deltas::stale_drops);
  }
  uint64_t vm_invalidated() const { return counters().vm_invalidated; }
  uint64_t cross_vm_evictions() const {
    return counters().cross_vm_evictions;
  }
  uint64_t conflict_evictions_base() const {
    return counters().conflict_evictions_base;
  }
  uint64_t conflict_evictions_huge() const {
    return counters().conflict_evictions_huge;
  }
  uint64_t capacity_evictions_base() const {
    return counters().capacity_evictions_base;
  }
  uint64_t capacity_evictions_huge() const {
    return counters().capacity_evictions_huge;
  }
  // Misses attributed by the utility monitor to a displaced entry; zero
  // when no monitor is attached (private mode).  self + other <= misses;
  // the remainder is cold / unattributed.
  uint64_t displaced_by_self() const { return counters().displaced_by_self; }
  uint64_t displaced_by_other() const { return counters().displaced_by_other; }
  // Entries dropped because a dynamic repartition moved this VM's way
  // window (zero outside kDynamic — nothing else moves windows).
  uint64_t repartition_evictions() const {
    return counters().repartition_evictions;
  }
  // Ways this VM may currently fill: its way window's size (the full
  // associativity for an exclusive/private view, whose window spans the
  // array).  A level, not a counter — under kDynamic it moves with each
  // repartition.
  uint32_t ways_assigned() const { return physical_->vm_way_count(vmid_); }
  uint64_t flushes() const { return physical_->flushes(); }
  uint32_t entry_count() const {
    return exclusive_ ? physical_->entry_count()
                      : physical_->entry_count(vmid_);
  }
  void ResetCounters() {
    if (exclusive_) {
      physical_->ResetCounters();
    } else {
      physical_->ResetVmCounters(vmid_);
    }
  }

  const TlbConfig& config() const { return physical_->config(); }
  uint16_t vmid() const { return vmid_; }
  bool exclusive() const { return exclusive_; }
  Tlb& physical() { return *physical_; }
  const Tlb& physical() const { return *physical_; }

 private:
  const Tlb::VmTlbCounters& counters() const {
    return physical_->vm_counters(vmid_);
  }
  uint64_t Staged(uint64_t base,
                  int64_t TlbEpochStage::Deltas::* field) const {
    if (__builtin_expect(stage_ != nullptr, 0)) {
      return static_cast<uint64_t>(static_cast<int64_t>(base) +
                                   stage_->deltas().*field);
    }
    return base;
  }

  Tlb* physical_ = nullptr;
  uint16_t vmid_ = 0;
  bool exclusive_ = true;
  TlbEpochStage* stage_ = nullptr;
};

class TlbDomain {
 public:
  explicit TlbDomain(const TlbDomainConfig& config);

  // Registers VM `vmid` (the Machine's VM id) and returns its view.  In
  // kPartitioned mode the VM's way window is [vmid * k, (vmid + 1) * k)
  // with k = partition_ways (or ways / expected_vms when 0); the window
  // must fit, so vmid < ways / k.  In kDynamic mode the even split is
  // re-tiled over the VMs registered so far (late arrivals fit as long
  // as vm_count <= ways); the repartitioner moves the windows from there.
  TlbView AddVm(uint16_t vmid);

  // Selectively invalidates every entry of `vmid` (in its private array or
  // the shared one).  Returns the number of entries dropped.
  uint32_t InvalidateVm(uint16_t vmid);

  // The lazily-built per-VM epoch stage for the shared array.  Shared /
  // partitioned modes only — private views never need staging (each VM
  // already owns its array), and os::Machine skips the call there.
  TlbEpochStage* EpochStage(uint16_t vmid);

  // One repartitioner policy tick over every registered VM (kDynamic mode
  // only; no-op before the first VM registers).  os::Machine calls this
  // from a PeriodicTask, i.e. only ever outside epoch-parallel phases.
  void RepartitionTick();

  TlbShareMode mode() const { return config_.mode; }
  const TlbDomainConfig& config() const { return config_; }
  // The shared physical array, or null in kPrivate mode.
  const Tlb* shared_tlb() const { return shared_.get(); }
  // The utility/interference monitor watching the shared array, or null in
  // kPrivate mode (monitoring is a shared-resource question; private
  // arrays keep the historical fast path untouched).
  const TlbUtilityMonitor* utility_monitor() const { return monitor_.get(); }
  // The way repartitioner, or null outside kDynamic mode (also null in
  // kDynamic before the first AddVm builds the shared array).
  const TlbRepartitioner* repartitioner() const { return repartitioner_.get(); }
  // Applied repartitions so far (0 outside kDynamic) — the domain-wide
  // value behind the `repartitions` export column.
  uint64_t repartition_count() const {
    return repartitioner_ != nullptr ? repartitioner_->repartitions() : 0;
  }

 private:
  uint32_t PartitionWays() const;

  TlbDomainConfig config_;
  // kPrivate: one array per vmid (indexed by vmid; sparse allowed).
  std::vector<std::unique_ptr<Tlb>> private_tlbs_;
  // kShared / kPartitioned: the one array every view targets.
  std::unique_ptr<Tlb> shared_;
  // Attached to `shared_`; must outlive it (declared after, destroyed
  // first is fine — the Tlb never dereferences it during destruction).
  std::unique_ptr<TlbUtilityMonitor> monitor_;
  // Per-VM epoch stages for `shared_` (indexed by vmid; sparse allowed).
  std::vector<std::unique_ptr<TlbEpochStage>> stages_;
  // kDynamic only: the way repartitioner and the canonical (VM-ID-sorted)
  // list of registered VMs its ticks iterate.
  std::unique_ptr<TlbRepartitioner> repartitioner_;
  std::vector<uint16_t> vm_ids_;
};

}  // namespace mmu

#endif  // SRC_MMU_TLB_DOMAIN_H_
