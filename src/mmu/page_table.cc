#include "mmu/page_table.h"

#include "base/check.h"

namespace mmu {

using base::kPagesPerHuge;

void PageTable::MapBase(uint64_t vpn, uint64_t frame) {
  const uint64_t region = vpn >> base::kHugeOrder;
  const uint32_t slot = static_cast<uint32_t>(vpn & (kPagesPerHuge - 1));
  Entry& entry = regions_[region];
  SIM_CHECK_MSG(!entry.is_huge, "MapBase into huge-mapped region %llu",
                static_cast<unsigned long long>(region));
  if (!entry.base) {
    entry.base = std::make_unique<BaseRegion>();
  }
  SIM_CHECK_MSG(!entry.base->present[slot], "double map of vpn %llu",
                static_cast<unsigned long long>(vpn));
  entry.base->frames[slot] = frame;
  entry.base->present[slot] = true;
  ++mapped_base_pages_;
}

void PageTable::MapHuge(uint64_t region, uint64_t frame) {
  SIM_CHECK_MSG(frame % kPagesPerHuge == 0,
                "huge mapping target not huge-aligned: frame %llu",
                static_cast<unsigned long long>(frame));
  auto it = regions_.find(region);
  SIM_CHECK_MSG(it == regions_.end() ||
                    (!it->second.is_huge && it->second.base &&
                     it->second.base->present.none()),
                "MapHuge into non-empty region %llu",
                static_cast<unsigned long long>(region));
  Entry& entry = regions_[region];
  entry.base.reset();
  entry.is_huge = true;
  entry.huge_frame = frame;
  ++huge_leaves_;
}

uint64_t PageTable::UnmapBase(uint64_t vpn) {
  const uint64_t region = vpn >> base::kHugeOrder;
  const uint32_t slot = static_cast<uint32_t>(vpn & (kPagesPerHuge - 1));
  auto it = regions_.find(region);
  SIM_CHECK(it != regions_.end() && !it->second.is_huge && it->second.base);
  BaseRegion& br = *it->second.base;
  SIM_CHECK(br.present[slot]);
  const uint64_t frame = br.frames[slot];
  br.present[slot] = false;
  --mapped_base_pages_;
  if (br.present.none()) {
    regions_.erase(it);
  }
  return frame;
}

uint64_t PageTable::UnmapHuge(uint64_t region) {
  auto it = regions_.find(region);
  SIM_CHECK(it != regions_.end() && it->second.is_huge);
  const uint64_t frame = it->second.huge_frame;
  regions_.erase(it);
  --huge_leaves_;
  return frame;
}

bool PageTable::CanPromoteInPlace(uint64_t region) const {
  auto it = regions_.find(region);
  if (it == regions_.end() || it->second.is_huge || !it->second.base) {
    return false;
  }
  const BaseRegion& br = *it->second.base;
  if (!br.present.all()) {
    return false;
  }
  const uint64_t first = br.frames[0];
  if (first % kPagesPerHuge != 0) {
    return false;
  }
  for (uint32_t i = 1; i < kPagesPerHuge; ++i) {
    if (br.frames[i] != first + i) {
      return false;
    }
  }
  return true;
}

void PageTable::PromoteInPlace(uint64_t region) {
  SIM_CHECK(CanPromoteInPlace(region));
  auto it = regions_.find(region);
  const uint64_t frame = it->second.base->frames[0];
  it->second.base.reset();
  it->second.is_huge = true;
  it->second.huge_frame = frame;
  mapped_base_pages_ -= kPagesPerHuge;
  ++huge_leaves_;
}

std::vector<std::pair<uint32_t, uint64_t>> PageTable::PromoteWithMigration(
    uint64_t region, uint64_t new_frame) {
  SIM_CHECK(new_frame % kPagesPerHuge == 0);
  auto it = regions_.find(region);
  SIM_CHECK(it != regions_.end() && !it->second.is_huge && it->second.base);
  std::vector<std::pair<uint32_t, uint64_t>> old_pages;
  const BaseRegion& br = *it->second.base;
  for (uint32_t slot = 0; slot < kPagesPerHuge; ++slot) {
    if (br.present[slot]) {
      old_pages.emplace_back(slot, br.frames[slot]);
    }
  }
  mapped_base_pages_ -= old_pages.size();
  it->second.base.reset();
  it->second.is_huge = true;
  it->second.huge_frame = new_frame;
  ++huge_leaves_;
  return old_pages;
}

void PageTable::Demote(uint64_t region) {
  auto it = regions_.find(region);
  SIM_CHECK(it != regions_.end() && it->second.is_huge);
  const uint64_t frame = it->second.huge_frame;
  it->second.is_huge = false;
  it->second.base = std::make_unique<BaseRegion>();
  for (uint32_t slot = 0; slot < kPagesPerHuge; ++slot) {
    it->second.base->frames[slot] = frame + slot;
    it->second.base->present[slot] = true;
  }
  --huge_leaves_;
  mapped_base_pages_ += kPagesPerHuge;
}

std::optional<Translation> PageTable::Lookup(uint64_t vpn) const {
  const uint64_t region = vpn >> base::kHugeOrder;
  const uint32_t slot = static_cast<uint32_t>(vpn & (kPagesPerHuge - 1));
  auto it = regions_.find(region);
  if (it == regions_.end()) {
    return std::nullopt;
  }
  if (it->second.is_huge) {
    return Translation{it->second.huge_frame + slot, base::PageSize::kHuge};
  }
  const BaseRegion& br = *it->second.base;
  if (!br.present[slot]) {
    return std::nullopt;
  }
  return Translation{br.frames[slot], base::PageSize::kBase};
}

bool PageTable::IsHugeMapped(uint64_t region) const {
  auto it = regions_.find(region);
  return it != regions_.end() && it->second.is_huge;
}

uint32_t PageTable::PresentBasePages(uint64_t region) const {
  auto it = regions_.find(region);
  if (it == regions_.end() || it->second.is_huge) {
    return 0;
  }
  return static_cast<uint32_t>(it->second.base->present.count());
}

std::optional<uint64_t> PageTable::BaseFrame(uint64_t region,
                                             uint32_t slot) const {
  auto it = regions_.find(region);
  if (it == regions_.end() || it->second.is_huge ||
      !it->second.base->present[slot]) {
    return std::nullopt;
  }
  return it->second.base->frames[slot];
}

uint64_t PageTable::AccessCount(uint64_t region) const {
  auto it = regions_accessed_.find(region);
  return it == regions_accessed_.end() ? 0 : it->second;
}

void PageTable::DecayAccessCounts() {
  for (auto it = regions_accessed_.begin(); it != regions_accessed_.end();) {
    it->second >>= 1;
    if (it->second == 0) {
      it = regions_accessed_.erase(it);
    } else {
      ++it;
    }
  }
}

void PageTable::ForEachHuge(
    const std::function<void(uint64_t, uint64_t)>& fn) const {
  for (const auto& [region, entry] : regions_) {
    if (entry.is_huge) {
      fn(region, entry.huge_frame);
    }
  }
}

void PageTable::ForEachBaseRegion(
    const std::function<void(uint64_t, uint32_t)>& fn) const {
  for (const auto& [region, entry] : regions_) {
    if (!entry.is_huge && entry.base) {
      fn(region, static_cast<uint32_t>(entry.base->present.count()));
    }
  }
}

void PageTable::ForEachBasePage(
    uint64_t region,
    const std::function<void(uint32_t, uint64_t)>& fn) const {
  auto it = regions_.find(region);
  if (it == regions_.end() || it->second.is_huge || !it->second.base) {
    return;
  }
  const BaseRegion& br = *it->second.base;
  for (uint32_t slot = 0; slot < kPagesPerHuge; ++slot) {
    if (br.present[slot]) {
      fn(slot, br.frames[slot]);
    }
  }
}

void PageTable::CheckInvariants() const {
  uint64_t bases = 0;
  uint64_t huges = 0;
  for (const auto& [region, entry] : regions_) {
    (void)region;
    if (entry.is_huge) {
      SIM_CHECK(!entry.base);
      SIM_CHECK(entry.huge_frame % kPagesPerHuge == 0);
      ++huges;
    } else {
      SIM_CHECK(entry.base != nullptr);
      SIM_CHECK(entry.base->present.any());  // empty regions are erased
      bases += entry.base->present.count();
    }
  }
  SIM_CHECK(bases == mapped_base_pages_);
  SIM_CHECK(huges == huge_leaves_);
}

}  // namespace mmu
