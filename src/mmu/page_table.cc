#include "mmu/page_table.h"

#include "base/check.h"

namespace mmu {

using base::kPagesPerHuge;

void PageTable::Grow(uint64_t region) {
  // Geometric growth keeps amortized slot creation O(1) even when the
  // address space expands one VMA at a time (churn workloads).
  uint64_t target = slots_.empty() ? 64 : slots_.size();
  while (target <= region) {
    target *= 2;
  }
  slots_.resize(target);
}

void PageTable::MapBase(uint64_t vpn, uint64_t frame) {
  const uint64_t region = vpn >> base::kHugeOrder;
  const uint32_t slot = static_cast<uint32_t>(vpn & (kPagesPerHuge - 1));
  Slot& entry = SlotFor(region);
  SIM_CHECK_MSG(!entry.is_huge, "MapBase into huge-mapped region %llu",
                static_cast<unsigned long long>(region));
  if (!entry.base) {
    entry.base = std::make_unique<BaseRegion>();
    ++mapped_regions_;
  }
  SIM_CHECK_MSG(!entry.base->present[slot], "double map of vpn %llu",
                static_cast<unsigned long long>(vpn));
  entry.base->frames[slot] = frame;
  entry.base->present[slot] = true;
  ++entry.generation;
  ++mutations_;
  ++mapped_base_pages_;
}

void PageTable::MapHuge(uint64_t region, uint64_t frame) {
  SIM_CHECK_MSG(frame % kPagesPerHuge == 0,
                "huge mapping target not huge-aligned: frame %llu",
                static_cast<unsigned long long>(frame));
  Slot& entry = SlotFor(region);
  SIM_CHECK_MSG(!entry.mapped(), "MapHuge into non-empty region %llu",
                static_cast<unsigned long long>(region));
  entry.is_huge = true;
  entry.huge_frame = frame;
  ++entry.generation;
  ++mutations_;
  ++mapped_regions_;
  ++huge_leaves_;
}

uint64_t PageTable::UnmapBase(uint64_t vpn) {
  const uint64_t region = vpn >> base::kHugeOrder;
  const uint32_t slot = static_cast<uint32_t>(vpn & (kPagesPerHuge - 1));
  SIM_CHECK(region < slots_.size());
  Slot& entry = slots_[region];
  SIM_CHECK(!entry.is_huge && entry.base);
  BaseRegion& br = *entry.base;
  SIM_CHECK(br.present[slot]);
  const uint64_t frame = br.frames[slot];
  br.present[slot] = false;
  ++entry.generation;
  ++mutations_;
  --mapped_base_pages_;
  if (br.present.none()) {
    entry.base.reset();
    --mapped_regions_;
  }
  return frame;
}

uint64_t PageTable::UnmapHuge(uint64_t region) {
  SIM_CHECK(region < slots_.size());
  Slot& entry = slots_[region];
  SIM_CHECK(entry.is_huge);
  const uint64_t frame = entry.huge_frame;
  entry.is_huge = false;
  entry.huge_frame = 0;
  ++entry.generation;
  ++mutations_;
  --mapped_regions_;
  --huge_leaves_;
  return frame;
}

bool PageTable::CanPromoteInPlace(uint64_t region) const {
  if (region >= slots_.size()) {
    return false;
  }
  const Slot& entry = slots_[region];
  if (entry.is_huge || !entry.base) {
    return false;
  }
  const BaseRegion& br = *entry.base;
  if (!br.present.all()) {
    return false;
  }
  const uint64_t first = br.frames[0];
  if (first % kPagesPerHuge != 0) {
    return false;
  }
  for (uint32_t i = 1; i < kPagesPerHuge; ++i) {
    if (br.frames[i] != first + i) {
      return false;
    }
  }
  return true;
}

void PageTable::PromoteInPlace(uint64_t region) {
  SIM_CHECK(CanPromoteInPlace(region));
  Slot& entry = slots_[region];
  const uint64_t frame = entry.base->frames[0];
  entry.base.reset();
  entry.is_huge = true;
  entry.huge_frame = frame;
  ++entry.generation;
  ++mutations_;
  mapped_base_pages_ -= kPagesPerHuge;
  ++huge_leaves_;
}

std::vector<std::pair<uint32_t, uint64_t>> PageTable::PromoteWithMigration(
    uint64_t region, uint64_t new_frame) {
  SIM_CHECK(new_frame % kPagesPerHuge == 0);
  SIM_CHECK(region < slots_.size());
  Slot& entry = slots_[region];
  SIM_CHECK(!entry.is_huge && entry.base);
  std::vector<std::pair<uint32_t, uint64_t>> old_pages;
  const BaseRegion& br = *entry.base;
  for (uint32_t slot = 0; slot < kPagesPerHuge; ++slot) {
    if (br.present[slot]) {
      old_pages.emplace_back(slot, br.frames[slot]);
    }
  }
  mapped_base_pages_ -= old_pages.size();
  entry.base.reset();
  entry.is_huge = true;
  entry.huge_frame = new_frame;
  ++entry.generation;
  ++mutations_;
  ++huge_leaves_;
  return old_pages;
}

void PageTable::Demote(uint64_t region) {
  SIM_CHECK(region < slots_.size());
  Slot& entry = slots_[region];
  SIM_CHECK(entry.is_huge);
  const uint64_t frame = entry.huge_frame;
  entry.is_huge = false;
  entry.huge_frame = 0;
  entry.base = std::make_unique<BaseRegion>();
  for (uint32_t slot = 0; slot < kPagesPerHuge; ++slot) {
    entry.base->frames[slot] = frame + slot;
    entry.base->present[slot] = true;
  }
  ++entry.generation;
  ++mutations_;
  --huge_leaves_;
  mapped_base_pages_ += kPagesPerHuge;
}

std::optional<Translation> PageTable::Lookup(uint64_t vpn) const {
  const uint64_t region = vpn >> base::kHugeOrder;
  const uint32_t slot = static_cast<uint32_t>(vpn & (kPagesPerHuge - 1));
  if (region >= slots_.size()) {
    return std::nullopt;
  }
  const Slot& entry = slots_[region];
  if (entry.is_huge) {
    return Translation{entry.huge_frame + slot, base::PageSize::kHuge};
  }
  if (!entry.base || !entry.base->present[slot]) {
    return std::nullopt;
  }
  return Translation{entry.base->frames[slot], base::PageSize::kBase};
}

bool PageTable::IsHugeMapped(uint64_t region) const {
  return region < slots_.size() && slots_[region].is_huge;
}

uint32_t PageTable::PresentBasePages(uint64_t region) const {
  if (region >= slots_.size()) {
    return 0;
  }
  const Slot& entry = slots_[region];
  if (entry.is_huge || !entry.base) {
    return 0;
  }
  return static_cast<uint32_t>(entry.base->present.count());
}

std::optional<uint64_t> PageTable::BaseFrame(uint64_t region,
                                             uint32_t slot) const {
  if (region >= slots_.size()) {
    return std::nullopt;
  }
  const Slot& entry = slots_[region];
  if (entry.is_huge || !entry.base || !entry.base->present[slot]) {
    return std::nullopt;
  }
  return entry.base->frames[slot];
}

void PageTable::DecayAccessCounts() {
  for (Slot& entry : slots_) {
    entry.accesses >>= 1;
  }
}

void PageTable::ForEachHuge(
    const std::function<void(uint64_t, uint64_t)>& fn) const {
  for (uint64_t region = 0; region < slots_.size(); ++region) {
    if (slots_[region].is_huge) {
      fn(region, slots_[region].huge_frame);
    }
  }
}

void PageTable::ForEachBaseRegion(
    const std::function<void(uint64_t, uint32_t)>& fn) const {
  for (uint64_t region = 0; region < slots_.size(); ++region) {
    const Slot& entry = slots_[region];
    if (!entry.is_huge && entry.base) {
      fn(region, static_cast<uint32_t>(entry.base->present.count()));
    }
  }
}

void PageTable::ForEachBasePage(
    uint64_t region,
    const std::function<void(uint32_t, uint64_t)>& fn) const {
  if (region >= slots_.size()) {
    return;
  }
  const Slot& entry = slots_[region];
  if (entry.is_huge || !entry.base) {
    return;
  }
  const BaseRegion& br = *entry.base;
  for (uint32_t slot = 0; slot < kPagesPerHuge; ++slot) {
    if (br.present[slot]) {
      fn(slot, br.frames[slot]);
    }
  }
}

void PageTable::CheckInvariants() const {
  uint64_t bases = 0;
  uint64_t huges = 0;
  uint64_t mapped = 0;
  for (const Slot& entry : slots_) {
    if (entry.is_huge) {
      SIM_CHECK(!entry.base);
      SIM_CHECK(entry.huge_frame % kPagesPerHuge == 0);
      ++huges;
      ++mapped;
    } else if (entry.base) {
      SIM_CHECK(entry.base->present.any());  // empty tables are released
      bases += entry.base->present.count();
      ++mapped;
    }
  }
  SIM_CHECK(bases == mapped_base_pages_);
  SIM_CHECK(huges == huge_leaves_);
  SIM_CHECK(mapped == mapped_regions_);
}

}  // namespace mmu
