#include "mmu/page_table.h"

#include <cstring>

#include "base/check.h"

namespace mmu {

using base::kPagesPerHuge;

PageTable::BaseRegion* PageTable::NodePool::Acquire() {
  BaseRegion* node;
  if (!free_.empty()) {
    node = free_.back();
    free_.pop_back();
  } else {
    if (used_in_last_chunk_ == kChunkNodes) {
      chunks_.push_back(std::make_unique<BaseRegion[]>(kChunkNodes));
      used_in_last_chunk_ = 0;
    }
    node = &chunks_.back()[used_in_last_chunk_++];
    ++handed_out_;
  }
  // A node starts (and restarts) empty: all frame cells at the absent
  // sentinel, all present words clear.  Doing the wipe here, once per
  // region (re)creation, keeps Release O(1).
  std::memset(node->frames.data(), 0xFF, sizeof(node->frames));
  node->present.fill(0);
  return node;
}

void PageTable::Grow(uint64_t region) {
  // Geometric growth keeps amortized slot creation O(1) even when the
  // address space expands one VMA at a time (churn workloads).
  uint64_t target = route_.empty() ? 64 : route_.size();
  while (target <= region) {
    target *= 2;
  }
  route_.resize(target, 0);
  generations_.resize(target, 0);
  accesses_.resize(target, 0);
}

void PageTable::MapBase(uint64_t vpn, uint64_t frame) {
  SIM_CHECK(frame < kAbsentFrame);  // frame cells are 32-bit (see header)
  const uint64_t region = vpn >> base::kHugeOrder;
  const uint32_t slot = static_cast<uint32_t>(vpn & (kPagesPerHuge - 1));
  EnsureRegion(region);
  SIM_CHECK_MSG((route_[region] & 1) == 0,
                "MapBase into huge-mapped region %llu",
                static_cast<unsigned long long>(region));
  BaseRegion* br = BaseNode(region);
  if (br == nullptr) {
    br = pool_.Acquire();
    route_[region] = reinterpret_cast<uint64_t>(br);
    ++mapped_regions_;
  }
  SIM_CHECK_MSG(!br->Test(slot), "double map of vpn %llu",
                static_cast<unsigned long long>(vpn));
  br->frames[slot] = static_cast<uint32_t>(frame);
  br->Set(slot);
  BumpGeneration(region);
  ++mapped_base_pages_;
}

void PageTable::MapHuge(uint64_t region, uint64_t frame) {
  SIM_CHECK_MSG(frame % kPagesPerHuge == 0,
                "huge mapping target not huge-aligned: frame %llu",
                static_cast<unsigned long long>(frame));
  EnsureRegion(region);
  SIM_CHECK_MSG(route_[region] == 0, "MapHuge into non-empty region %llu",
                static_cast<unsigned long long>(region));
  // Huge leaves live entirely in the route word: no node is allocated, so
  // huge-heavy address spaces cost 8 bytes of hot state per region.
  route_[region] = (frame << 1) | 1;
  BumpGeneration(region);
  ++mapped_regions_;
  ++huge_leaves_;
}

uint64_t PageTable::UnmapBase(uint64_t vpn) {
  const uint64_t region = vpn >> base::kHugeOrder;
  const uint32_t slot = static_cast<uint32_t>(vpn & (kPagesPerHuge - 1));
  SIM_CHECK(region < route_.size());
  BaseRegion* br = BaseNode(region);
  SIM_CHECK(br != nullptr);
  SIM_CHECK(br->Test(slot));
  const uint64_t frame = br->frames[slot];
  br->frames[slot] = kAbsentFrame;
  br->Clear(slot);
  BumpGeneration(region);
  --mapped_base_pages_;
  if (br->None()) {
    pool_.Release(br);
    route_[region] = 0;
    --mapped_regions_;
  }
  return frame;
}

uint64_t PageTable::UnmapHuge(uint64_t region) {
  SIM_CHECK(region < route_.size());
  SIM_CHECK(route_[region] & 1);
  const uint64_t frame = route_[region] >> 1;
  route_[region] = 0;
  BumpGeneration(region);
  --mapped_regions_;
  --huge_leaves_;
  return frame;
}

bool PageTable::CanPromoteInPlace(uint64_t region) const {
  const BaseRegion* br = BaseNode(region);
  if (br == nullptr || !br->All()) {
    return false;
  }
  const uint32_t first = br->frames[0];
  if (first % kPagesPerHuge != 0) {
    return false;
  }
  // Branchless reduction over the (fully present) frame cells; the 32-bit
  // cells and fixed trip count let the compiler vectorize the sweep.
  uint32_t diff = 0;
  for (uint32_t i = 0; i < kPagesPerHuge; ++i) {
    diff |= br->frames[i] ^ (first + i);
  }
  if (diff != 0) {
    return false;
  }
  return true;
}

void PageTable::PromoteInPlace(uint64_t region) {
  SIM_CHECK(CanPromoteInPlace(region));
  BaseRegion* br = BaseNode(region);
  const uint64_t frame = br->frames[0];
  pool_.Release(br);
  route_[region] = (frame << 1) | 1;
  BumpGeneration(region);
  mapped_base_pages_ -= kPagesPerHuge;
  ++huge_leaves_;
}

std::vector<std::pair<uint32_t, uint64_t>> PageTable::PromoteWithMigration(
    uint64_t region, uint64_t new_frame) {
  SIM_CHECK(new_frame % kPagesPerHuge == 0);
  SIM_CHECK(region < route_.size());
  BaseRegion* br = BaseNode(region);
  SIM_CHECK(br != nullptr);
  std::vector<std::pair<uint32_t, uint64_t>> old_pages;
  ForEachBasePage(region, [&old_pages](uint32_t slot, uint64_t frame) {
    old_pages.emplace_back(slot, frame);
  });
  mapped_base_pages_ -= old_pages.size();
  pool_.Release(br);
  route_[region] = (new_frame << 1) | 1;
  BumpGeneration(region);
  ++huge_leaves_;
  return old_pages;
}

void PageTable::Demote(uint64_t region) {
  SIM_CHECK(region < route_.size());
  SIM_CHECK(route_[region] & 1);
  const uint64_t frame = route_[region] >> 1;
  SIM_CHECK(frame + kPagesPerHuge <= kAbsentFrame);  // must fit 32-bit cells
  BaseRegion* node = pool_.Acquire();
  FillContiguous(node, frame);
  route_[region] = reinterpret_cast<uint64_t>(node);
  BumpGeneration(region);
  --huge_leaves_;
  mapped_base_pages_ += kPagesPerHuge;
}

uint32_t PageTable::PresentBasePages(uint64_t region) const {
  const BaseRegion* br = BaseNode(region);
  return br != nullptr ? br->Count() : 0;
}

std::optional<uint64_t> PageTable::BaseFrame(uint64_t region,
                                             uint32_t slot) const {
  const BaseRegion* br = BaseNode(region);
  if (br == nullptr || !br->Test(slot)) {
    return std::nullopt;
  }
  return br->frames[slot];
}

void PageTable::DecayAccessCounts() {
  for (uint64_t& a : accesses_) {
    a >>= 1;
  }
}

void PageTable::ForEachHuge(
    const std::function<void(uint64_t, uint64_t)>& fn) const {
  for (uint64_t region = 0; region < route_.size(); ++region) {
    if (route_[region] & 1) {
      fn(region, route_[region] >> 1);
    }
  }
}

void PageTable::ForEachBaseRegion(
    const std::function<void(uint64_t, uint32_t)>& fn) const {
  for (uint64_t region = 0; region < route_.size(); ++region) {
    const uint64_t route = route_[region];
    if (route != 0 && (route & 1) == 0) {
      fn(region, reinterpret_cast<const BaseRegion*>(route)->Count());
    }
  }
}

void PageTable::ForEachBasePage(
    uint64_t region,
    const std::function<void(uint32_t, uint64_t)>& fn) const {
  const BaseRegion* br = BaseNode(region);
  if (br == nullptr) {
    return;
  }
  for (uint32_t w = 0; w < br->present.size(); ++w) {
    uint64_t word = br->present[w];
    while (word != 0) {
      const uint32_t slot =
          w * 64 + static_cast<uint32_t>(__builtin_ctzll(word));
      fn(slot, br->frames[slot]);
      word &= word - 1;  // clear lowest set bit
    }
  }
}

std::optional<std::pair<uint32_t, uint64_t>> PageTable::FirstPresent(
    uint64_t region) const {
  const BaseRegion* br = BaseNode(region);
  if (br == nullptr) {
    return std::nullopt;
  }
  for (uint32_t w = 0; w < br->present.size(); ++w) {
    if (br->present[w] != 0) {
      const uint32_t slot =
          w * 64 + static_cast<uint32_t>(__builtin_ctzll(br->present[w]));
      return std::make_pair(slot, br->frames[slot]);
    }
  }
  return std::nullopt;
}

std::optional<uint64_t> PageTable::ContiguousAnchor(uint64_t region) const {
  const BaseRegion* br = BaseNode(region);
  if (br == nullptr) {
    return std::nullopt;
  }
  const auto first = FirstPresent(region);
  if (!first.has_value()) {
    return std::nullopt;
  }
  // Anchor implied by the first present page; every other present page must
  // agree (frames[slot] == anchor + slot) and it must be huge-aligned.
  if (first->second < first->first) {
    return std::nullopt;
  }
  const uint64_t anchor = first->second - first->first;
  if (anchor % kPagesPerHuge != 0) {
    return std::nullopt;
  }
  // Word-at-a-time: the sentinel makes absent cells all-ones, so comparing
  // frames[slot] - slot == anchor over present slots only needs the present
  // word to mask out the absent positions.
  for (uint32_t w = 0; w < br->present.size(); ++w) {
    uint64_t word = br->present[w];
    while (word != 0) {
      const uint32_t slot =
          w * 64 + static_cast<uint32_t>(__builtin_ctzll(word));
      if (br->frames[slot] != anchor + slot) {
        return std::nullopt;
      }
      word &= word - 1;
    }
  }
  return anchor;
}

void PageTable::MissingSlots(uint64_t region,
                             std::vector<uint32_t>* out) const {
  const BaseRegion* br = BaseNode(region);
  if (br == nullptr) {
    return;
  }
  for (uint32_t w = 0; w < br->present.size(); ++w) {
    uint64_t word = ~br->present[w];
    while (word != 0) {
      out->push_back(w * 64 + static_cast<uint32_t>(__builtin_ctzll(word)));
      word &= word - 1;
    }
  }
}

void PageTable::CheckInvariants() const {
  uint64_t bases = 0;
  uint64_t huges = 0;
  uint64_t mapped = 0;
  for (uint64_t region = 0; region < route_.size(); ++region) {
    const uint64_t route = route_[region];
    if (route & 1) {
      SIM_CHECK((route >> 1) % kPagesPerHuge == 0);
      ++huges;
      ++mapped;
    } else if (route != 0) {
      const BaseRegion* br = reinterpret_cast<const BaseRegion*>(route);
      SIM_CHECK(!br->None());  // empty tables are released
      bases += br->Count();
      ++mapped;
      // Sentinel/present agreement: the hot path trusts the frame cell
      // alone, the sweeps trust the present words alone.
      for (uint32_t slot = 0; slot < kPagesPerHuge; ++slot) {
        SIM_CHECK((br->frames[slot] != kAbsentFrame) == br->Test(slot));
      }
    }
  }
  SIM_CHECK(bases == mapped_base_pages_);
  SIM_CHECK(huges == huge_leaves_);
  SIM_CHECK(mapped == mapped_regions_);
  // Exactly the base-mapped regions hold arena nodes (huge leaves are
  // route-inline).
  SIM_CHECK(pool_.live() == mapped_regions_ - huge_leaves_);
}

}  // namespace mmu
