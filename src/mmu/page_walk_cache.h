// Page-walk cache (PWC) model.
//
// Hardware page-walk caches hold non-leaf page-table directory entries so
// that a walk can skip memory references for the upper levels.  The paper
// (§2.1) notes they are effective for the high levels near the root but the
// lowest-level directories (the ones pointing at 4 KiB PTEs) are hard to
// cache.  We therefore model a PWC that covers the PML4 and PDPT levels
// (skipping up to 2 of the 4 references of a walk) and never the PD/PT
// levels; this is what makes a huge-page walk (leaf at PD) almost free
// while a base-page walk still pays for the PD and PT references.
//
// Each level is a small fully-associative LRU cache keyed by the
// virtual-address prefix that indexes that level.
#ifndef SRC_MMU_PAGE_WALK_CACHE_H_
#define SRC_MMU_PAGE_WALK_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/types.h"

namespace mmu {

// One fully-associative LRU cache of address prefixes.
//
// Storage is a flat slab of keys with two O(1) indices over it: a chained
// hash index (probe without scanning the slab) and an intrusive
// doubly-linked recency list (exact LRU victim without scanning for a
// minimum stamp).  The nested walker probes these caches ~10 times per 2D
// walk, so the pre-arena implementation's O(capacity) probe and eviction
// scans were the simulator's dominant miss-path cost
// (BENCH_translation.json miss_heavy).  Replacement behavior is exactly
// LRU and byte-identical to the scan version: a hit moves the entry to the
// list head, the eviction victim is the list tail — the same entry a
// least-stamp scan would pick.  The indices only change *how fast* the
// same decisions are made.  (A lazy stamp-on-hit/scan-on-evict variant was
// measured too: it loses, because the one cache that evicts at a high rate
// — the PT-level nested cache under sparse base-page traffic — pays the
// full scan on every eviction, while the list's hit-path splice early-outs
// for the stable caches whose entries sit at the head anyway.)
//
// The cache also keeps a *mutation counter*, bumped whenever the key set
// changes (insert, evict, flush) and never by LRU refreshes.  Two equal
// reads bracket an interval in which every Lookup verdict was stable and
// every key kept its slot — this is the validation primitive the nested
// walker's walk memo builds on (see nested_walker.h): a memoized walk
// re-validates in O(levels) counter compares and re-touches the recorded
// slots via Touch() without re-probing the index.
class PrefixCache {
 public:
  explicit PrefixCache(uint32_t capacity);

  // Returns true (and refreshes LRU) if the prefix is cached.
  bool Lookup(uint64_t prefix) { return LookupSlot(prefix) >= 0; }

  // Lookup returning the slot index of the hit (refreshed), or -1.
  int32_t LookupSlot(uint64_t prefix) {
    for (int32_t slot = bucket_head_[Bucket(prefix)]; slot >= 0;
         slot = chain_next_[slot]) {
      if (keys_[slot] == prefix) {
        MoveToFront(static_cast<uint32_t>(slot));
        return slot;
      }
    }
    return -1;
  }

  void Insert(uint64_t prefix) {
    if (!Lookup(prefix)) {
      InsertMissing(prefix);
    }
  }

  // Insert for a prefix the caller knows is absent (a Lookup just returned
  // false and nothing touched this cache since): skips the presence probe.
  // Returns the slot the prefix landed in.
  uint32_t InsertMissing(uint64_t prefix);

  // Refreshes a slot's recency without a key probe.  Only valid while the
  // caller can prove the slot still holds the key it recorded (mutation
  // counter unchanged since); equivalent to a Lookup hit on that key.
  void Touch(uint32_t slot) { MoveToFront(slot); }

  // Key currently held by a slot (tests / memo validation).
  uint64_t KeyAt(uint32_t slot) const { return keys_[slot]; }

  // Bumped by every key-set change (insert, evict, flush); never by LRU
  // refreshes.  Equal reads bracket an interval of stable contents.
  uint64_t mutations() const { return mutations_; }

  size_t size() const { return keys_.size(); }

  void Flush();

 private:
  uint32_t Bucket(uint64_t prefix) const {
    // Fibonacci hashing: multiplicative spread of the (small, often
    // consecutive) prefix integers over the bucket array.
    return static_cast<uint32_t>((prefix * 0x9E3779B97F4A7C15ull) >>
                                 bucket_shift_);
  }
  void LinkIntoBucket(uint32_t slot);
  void UnlinkFromBucket(uint32_t slot);

  // Detaches `slot` from wherever it sits on the recency list and relinks
  // it at the head (most recent).
  void MoveToFront(uint32_t slot) {
    if (lru_head_ == static_cast<int32_t>(slot)) {
      return;
    }
    const int32_t prev = lru_prev_[slot];
    const int32_t next = lru_next_[slot];
    lru_next_[prev] = next;  // prev exists: slot is not the head
    if (next >= 0) {
      lru_prev_[next] = prev;
    } else {
      lru_tail_ = prev;
    }
    lru_prev_[slot] = -1;
    lru_next_[slot] = lru_head_;
    lru_prev_[lru_head_] = static_cast<int32_t>(slot);
    lru_head_ = static_cast<int32_t>(slot);
  }
  void PushFront(uint32_t slot);

  uint32_t capacity_;
  uint32_t bucket_shift_;  // 64 - log2(bucket count)
  uint64_t mutations_ = 0;
  std::vector<uint64_t> keys_;        // cached prefixes, slab-ordered
  std::vector<int32_t> bucket_head_;  // bucket -> first slot, -1 = empty
  std::vector<int32_t> chain_next_;   // slot -> next slot in bucket, -1 = end
  // Recency list over the occupied slots: head = MRU, tail = LRU victim.
  std::vector<int32_t> lru_prev_;
  std::vector<int32_t> lru_next_;
  int32_t lru_head_ = -1;
  int32_t lru_tail_ = -1;
};

// Walk cost in memory references for one layer of page table, with the
// per-level attribution the walk-level breakdown counters consume.
struct WalkCost {
  uint32_t memory_refs = 0;  // directory/PTE reads that went to memory
  uint32_t cached_refs = 0;  // reads satisfied by the PWC
  bool l4_cached = false;    // the PML4 read was PWC-served
  bool l3_cached = false;    // the PDPT read was PWC-served
  // Slots holding the PML4/PDPT prefixes after the walk (they are always
  // resident afterwards — a miss inserts).  The nested walker records them
  // in its walk memo.
  uint32_t l4_slot = 0;
  uint32_t l3_slot = 0;
};

class PageWalkCache {
 public:
  struct Config {
    uint32_t pml4_entries = 16;
    uint32_t pdpt_entries = 32;
  };

  explicit PageWalkCache(const Config& config)
      : pml4_(config.pml4_entries), pdpt_(config.pdpt_entries) {}

  // Simulates one walk of a 4-level table for `vpn`, with the leaf at the
  // PT level for base pages (4 refs uncached) or the PD level for huge
  // pages (3 refs uncached).  Upper levels hit in the PWC when their
  // directory was walked recently.
  WalkCost Walk(uint64_t vpn, base::PageSize leaf_size);

  void Flush();

  // Per-level caches, exposed for the nested walker's memo (mutation
  // counters + slot touches) and for tests.
  PrefixCache& pml4() { return pml4_; }
  PrefixCache& pdpt() { return pdpt_; }

 private:
  // Address prefixes indexing each level: PML4 covers 512 GiB per entry
  // (vpn >> 27), PDPT covers 1 GiB (vpn >> 18).
  PrefixCache pml4_;
  PrefixCache pdpt_;
};

}  // namespace mmu

#endif  // SRC_MMU_PAGE_WALK_CACHE_H_
