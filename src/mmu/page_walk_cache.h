// Page-walk cache (PWC) model.
//
// Hardware page-walk caches hold non-leaf page-table directory entries so
// that a walk can skip memory references for the upper levels.  The paper
// (§2.1) notes they are effective for the high levels near the root but the
// lowest-level directories (the ones pointing at 4 KiB PTEs) are hard to
// cache.  We therefore model a PWC that covers the PML4 and PDPT levels
// (skipping up to 2 of the 4 references of a walk) and never the PD/PT
// levels; this is what makes a huge-page walk (leaf at PD) almost free
// while a base-page walk still pays for the PD and PT references.
//
// Each level is a small fully-associative LRU cache keyed by the
// virtual-address prefix that indexes that level.
#ifndef SRC_MMU_PAGE_WALK_CACHE_H_
#define SRC_MMU_PAGE_WALK_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "base/types.h"

namespace mmu {

// One fully-associative LRU cache of address prefixes.
class PrefixCache {
 public:
  explicit PrefixCache(uint32_t capacity) : capacity_(capacity) {}

  // Returns true (and refreshes LRU) if the prefix is cached.
  bool Lookup(uint64_t prefix);
  void Insert(uint64_t prefix);
  void Flush();

 private:
  uint32_t capacity_;
  std::list<uint64_t> lru_;  // front = most recent
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> index_;
};

// Walk cost in memory references for one layer of page table.
struct WalkCost {
  uint32_t memory_refs = 0;  // directory/PTE reads that went to memory
  uint32_t cached_refs = 0;  // reads satisfied by the PWC
};

class PageWalkCache {
 public:
  struct Config {
    uint32_t pml4_entries = 16;
    uint32_t pdpt_entries = 32;
  };

  explicit PageWalkCache(const Config& config)
      : pml4_(config.pml4_entries), pdpt_(config.pdpt_entries) {}

  // Simulates one walk of a 4-level table for `vpn`, with the leaf at the
  // PT level for base pages (4 refs uncached) or the PD level for huge
  // pages (3 refs uncached).  Upper levels hit in the PWC when their
  // directory was walked recently.
  WalkCost Walk(uint64_t vpn, base::PageSize leaf_size);

  void Flush();

 private:
  // Address prefixes indexing each level: PML4 covers 512 GiB per entry
  // (vpn >> 27), PDPT covers 1 GiB (vpn >> 18).
  PrefixCache pml4_;
  PrefixCache pdpt_;
};

}  // namespace mmu

#endif  // SRC_MMU_PAGE_WALK_CACHE_H_
