// Page-walk cache (PWC) model.
//
// Hardware page-walk caches hold non-leaf page-table directory entries so
// that a walk can skip memory references for the upper levels.  The paper
// (§2.1) notes they are effective for the high levels near the root but the
// lowest-level directories (the ones pointing at 4 KiB PTEs) are hard to
// cache.  We therefore model a PWC that covers the PML4 and PDPT levels
// (skipping up to 2 of the 4 references of a walk) and never the PD/PT
// levels; this is what makes a huge-page walk (leaf at PD) almost free
// while a base-page walk still pays for the PD and PT references.
//
// Each level is a small fully-associative LRU cache keyed by the
// virtual-address prefix that indexes that level.
#ifndef SRC_MMU_PAGE_WALK_CACHE_H_
#define SRC_MMU_PAGE_WALK_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/types.h"

namespace mmu {

// One fully-associative LRU cache of address prefixes.
//
// Stored as a flat key array with per-entry LRU stamps rather than a
// linked list + hash map: the capacities in play are tiny (tens of
// entries), so a contiguous scan beats node-based structures — and, unlike
// them, a thrashing workload (e.g. a PT-level nested cache under a random
// working set far beyond its reach) costs zero allocations per miss.  The
// replacement behavior is exactly LRU, identical to a list-based
// implementation: simulated walk costs do not change.
class PrefixCache {
 public:
  explicit PrefixCache(uint32_t capacity) : capacity_(capacity) {
    keys_.reserve(capacity);
    stamps_.reserve(capacity);
  }

  // Returns true (and refreshes LRU) if the prefix is cached.
  //
  // The scan is written branchless over the whole array (keys are unique,
  // so recording "the" matching index is well defined): an early-exit loop
  // defeats vectorization, while this form compiles to a handful of wide
  // compares for the 64-entry caches the nested walker thrashes.
  bool Lookup(uint64_t prefix) {
    const size_t n = keys_.size();
    size_t idx = n;
    for (size_t i = 0; i < n; ++i) {
      if (keys_[i] == prefix) {
        idx = i;
      }
    }
    if (idx == n) {
      return false;
    }
    stamps_[idx] = ++clock_;
    return true;
  }

  void Insert(uint64_t prefix) {
    if (!Lookup(prefix)) {
      InsertMissing(prefix);
    }
  }

  // Insert for a prefix the caller knows is absent (a Lookup just returned
  // false and nothing touched this cache since): skips the presence scan.
  void InsertMissing(uint64_t prefix) {
    if (keys_.size() < capacity_) {
      keys_.push_back(prefix);
      stamps_.push_back(++clock_);
      return;
    }
    // Exact-LRU victim in two vectorizable passes: min-reduce the stamps,
    // then find the (unique — stamps are a strictly increasing clock)
    // entry carrying the minimum.
    const size_t n = stamps_.size();
    uint64_t min_stamp = stamps_[0];
    for (size_t i = 1; i < n; ++i) {
      min_stamp = stamps_[i] < min_stamp ? stamps_[i] : min_stamp;
    }
    size_t victim = 0;
    for (size_t i = 0; i < n; ++i) {
      if (stamps_[i] == min_stamp) {
        victim = i;
      }
    }
    keys_[victim] = prefix;
    stamps_[victim] = ++clock_;
  }

  void Flush() {
    keys_.clear();
    stamps_.clear();
  }

 private:
  uint32_t capacity_;
  uint64_t clock_ = 0;
  std::vector<uint64_t> keys_;    // cached prefixes, unordered
  std::vector<uint64_t> stamps_;  // stamps_[i]: last touch of keys_[i]
};

// Walk cost in memory references for one layer of page table.
struct WalkCost {
  uint32_t memory_refs = 0;  // directory/PTE reads that went to memory
  uint32_t cached_refs = 0;  // reads satisfied by the PWC
};

class PageWalkCache {
 public:
  struct Config {
    uint32_t pml4_entries = 16;
    uint32_t pdpt_entries = 32;
  };

  explicit PageWalkCache(const Config& config)
      : pml4_(config.pml4_entries), pdpt_(config.pdpt_entries) {}

  // Simulates one walk of a 4-level table for `vpn`, with the leaf at the
  // PT level for base pages (4 refs uncached) or the PD level for huge
  // pages (3 refs uncached).  Upper levels hit in the PWC when their
  // directory was walked recently.
  WalkCost Walk(uint64_t vpn, base::PageSize leaf_size);

  void Flush();

 private:
  // Address prefixes indexing each level: PML4 covers 512 GiB per entry
  // (vpn >> 27), PDPT covers 1 GiB (vpn >> 18).
  PrefixCache pml4_;
  PrefixCache pdpt_;
};

}  // namespace mmu

#endif  // SRC_MMU_PAGE_WALK_CACHE_H_
