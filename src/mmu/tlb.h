// Set-associative TLB model with mixed 4 KiB / 2 MiB entries and VMID tags.
//
// Models the unified second-level TLB of the evaluation machine (paper
// §6.1: 1536 L2 entries shared by 4 KiB and 2 MiB pages): one physical
// array whose entries are tagged with the page size they translate.  A 4 KiB
// entry is indexed by the virtual page number, a 2 MiB entry by the
// huge-region number, so one huge entry covers 512x the address range of a
// base entry — this is the TLB-coverage effect huge pages buy.
//
// Entries additionally carry a VMID tag (PCID/vPID-style), so one physical
// array can be shared by multiple collocated VMs: a probe only matches
// entries of its own VMID, but every VM's entries compete for the same sets
// and LRU clock.  tlb_domain.h builds the three sharing arrangements
// (private / shared / partitioned) on top of this class; a single-VM `Tlb`
// with vmid 0 everywhere behaves exactly like the pre-VMID model.  Each
// registered VM can further be restricted to a static window of ways
// (SetVmWays), which is how the partitioned mode implements per-VM way
// partitioning.
//
// Entries also record the translated frame and a generation stamp: the
// (guest-region, host-region) page-table generations the entry was filled
// under, plus whether the translation went through a well-aligned huge
// pair.  The translation engine compares the stamp against the live
// tables' generation counters on every hit — an O(1) integer compare that
// models precise invalidation (INVLPG / single-context INVEPT with a
// tagged TLB) without the wholesale flushes that would distort short
// simulations.  Entries whose regions mutated are re-derived once and
// either restamped (still-correct translation, e.g. after an in-place
// promotion) or dropped as stale.
//
// Counters are kept per VMID (hits, misses, shootdowns, stale drops,
// selective invalidations, cross-VM evictions, and the conflict/capacity
// eviction split), so a shared array still reports each VM's interference
// individually.  The no-argument accessors sum over every registered VM,
// which for a single-VM instance is the classic counter set.
//
// In virtualized mode the engine only inserts a 2 MiB entry for
// well-aligned huge pages (guest huge AND host huge); that rule lives in
// translation_engine.cc, not here.  The TLB itself is layer-agnostic.
#ifndef SRC_MMU_TLB_H_
#define SRC_MMU_TLB_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/types.h"
#include "mmu/tlb_utility_monitor.h"

namespace mmu {

struct TlbConfig {
  uint32_t sets = 128;
  uint32_t ways = 12;  // 128 x 12 = 1536 entries, matching the paper's L2
};

class Tlb {
 public:
  // VMID tag width: collocation experiments run a handful of VMs, so a
  // byte of tag is generous.  Keys (VPNs) keep 54 bits — far beyond the
  // simulated address spaces.
  static constexpr uint32_t kVmidBits = 8;
  static constexpr uint16_t kMaxVms = 1u << kVmidBits;

  // Validity stamp recorded when an entry is filled (or revalidated): the
  // page-table generations the translation was derived under.  The host
  // fields are unused (zero) in native mode.
  struct Stamp {
    uint64_t guest_gen = 0;    // guest table generation of the VPN's region
    uint64_t host_region = 0;  // host region (GFN >> 9) backing the entry
    uint64_t host_gen = 0;     // host table generation of that region
    bool well_aligned = false;  // translated through a huge/huge pair
  };

  struct LookupResult {
    bool hit = false;
    base::PageSize size = base::PageSize::kBase;
    // Translated frame: the page's frame for a 4 KiB entry, the first frame
    // of the 2 MiB block for a huge entry.
    uint64_t frame = 0;
    Stamp stamp;  // stamps recorded at fill / last revalidation
  };

  // Per-VM counter set.  A single-VM TLB only ever touches slot 0.
  struct VmTlbCounters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t shootdowns = 0;
    // Hits reclassified as misses because the cached translation no longer
    // matched the page tables.  Always also counted in misses.
    uint64_t stale_drops = 0;
    // Entries dropped by InvalidateVm (tagged selective invalidation, the
    // single-context-INVEPT analogue used by the shared TLB domain).
    uint64_t vm_invalidated = 0;
    // This VM's entries evicted by another VM's insert — the direct
    // cross-VM interference channel of a shared TLB.
    uint64_t cross_vm_evictions = 0;
    // Evictions of this VM's valid entries, split by whether the inserting
    // VM still had a free way in another set of its window (conflict:
    // free space existed elsewhere) or its window was completely full
    // (true capacity), per evicted-entry page size.  Feeds the fig16
    // companion table's conflict-vs-capacity split.
    uint64_t conflict_evictions_base = 0;
    uint64_t conflict_evictions_huge = 0;
    uint64_t capacity_evictions_base = 0;
    uint64_t capacity_evictions_huge = 0;
    // Misses attributed by the attached TlbUtilityMonitor's displaced-
    // record layer (zero without a monitor, i.e. in private mode): the
    // missing translation was provably evicted earlier, by this VM's own
    // insert (self — capacity pressure) or by another VM's (other — the
    // cross-VM interference the eviction-side cross_vm_evictions counter
    // sees from the opposite end).  displaced_by_self + displaced_by_other
    // <= misses; the remainder is cold/unattributed.
    uint64_t displaced_by_self = 0;
    uint64_t displaced_by_other = 0;
    // This VM's entries dropped because a dynamic repartition moved its way
    // window and the entries sat outside the new window (RepartitionVmWays;
    // the cost side of adapting the partition).
    uint64_t repartition_evictions = 0;
  };

  explicit Tlb(const TlbConfig& config);

  // Registers `vmid` (counter slot + way window).  Construction implicitly
  // registers vmid 0 with the full way window, so standalone single-VM use
  // needs no registration calls.  Re-registering adjusts the window.
  void RegisterVm(uint16_t vmid);
  // Restricts `vmid` to ways [way_begin, way_begin + way_count) of every
  // set (static way partitioning).  Windows of different VMs must be
  // either identical or disjoint; the domain enforces that.
  void SetVmWays(uint16_t vmid, uint32_t way_begin, uint32_t way_count);

  // Moves `vmid`'s way window at runtime (dynamic repartitioning): sets the
  // new window like SetVmWays, then drops every entry of this VM left in a
  // way outside it — a stale cross-window entry would otherwise keep
  // hitting from ways the VM no longer owns.  Dropped entries are charged
  // to the VM's repartition_evictions counter.  Returns entries dropped
  // (zero, without any scan, when the window is unchanged).
  uint32_t RepartitionVmWays(uint16_t vmid, uint32_t way_begin,
                             uint32_t way_count);

  // Current way window of `vmid` (zeroes if never registered).  Exposed for
  // the repartitioner's hysteresis compare, the ways_assigned export
  // column, and window-invariant assertions in tests.
  uint32_t vm_way_begin(uint16_t vmid) const {
    const VmState* vm = VmOrNull(vmid);
    return vm != nullptr ? vm->way_begin : 0;
  }
  uint32_t vm_way_count(uint16_t vmid) const {
    const VmState* vm = VmOrNull(vmid);
    return vm != nullptr ? vm->way_count : 0;
  }

  // Integrity probe (O(sets * ways) scan): valid entries of `vmid` sitting
  // at ways outside its current window.  Always zero after a repartition —
  // the property suite in tests/test_repartitioner.cc asserts it.
  uint32_t entry_count_outside_window(uint16_t vmid) const;

  // Probes for a translation of `vpn` under `vmid`.  Checks both a 4 KiB
  // entry for the page and a 2 MiB entry for its huge region.  Updates LRU
  // on hit.
  LookupResult Lookup(uint64_t vpn, uint16_t vmid = 0);

  // O(1) repeat-probe for a huge entry of `region`, used by the batched
  // translation fast path.  If a recently hit or inserted huge entry for
  // the region is still valid, performs exactly what Lookup would have
  // done for any vpn of the region — huge entries probe first, and tags
  // are unique per (set, size, vmid), so the memoized entry *is* the entry
  // Lookup would return — counts the hit, touches LRU, fills `out`, and
  // returns true.  Otherwise touches nothing (no miss counted; the caller
  // falls back to Lookup) and returns false.  Defined inline below the
  // class: it is the innermost step of the batch fast path.
  bool RehitHuge(uint64_t region, LookupResult* out, uint16_t vmid = 0);

  // Side-effect-free presence probe: true iff a Lookup of `vpn` would hit
  // right now.  Touches no counters and no LRU state.  The batch prefetch
  // planner uses it to skip side-walking accesses that will hit anyway
  // (the answer is advisory — state may change before the real access —
  // so correctness never depends on it).
  bool Probe(uint64_t vpn, uint16_t vmid = 0) const {
    return FindEntry(vpn >> base::kHugeOrder, base::PageSize::kHuge, vmid) >=
               0 ||
           FindEntry(vpn, base::PageSize::kBase, vmid) >= 0;
  }

  // Advisory prefetch of the two sets a Lookup of `vpn` will probe.  A
  // probe scans the packed tag words of every way, so the tag lines of
  // both sets are pulled (payload lines are only needed on a hit and are
  // not worth the traffic).
  void PrefetchSets(uint64_t vpn) const;

  // Inserts a translation for `vpn` at the given granularity, evicting the
  // LRU way of the target set (within the inserting VM's way window).  The
  // overload without a stamp inserts with a default (all-zero) stamp —
  // fine for unit tests and standalone use.
  void Insert(uint64_t vpn, base::PageSize size, uint64_t frame,
              const Stamp& stamp, uint16_t vmid = 0);
  void Insert(uint64_t vpn, base::PageSize size, uint64_t frame);

  // Insert for a translation the caller has just proven absent: either a
  // Lookup of `vpn` missed (which probes both sizes), or a ShootdownPage
  // of `vpn` dropped them — and nothing touched the array since.  Skips
  // Insert's update-in-place probe and goes straight to victim selection;
  // behavior is otherwise identical to Insert.  The translation engine's
  // miss path is the intended caller (its contract holds on both the clean
  // miss and the stale-drop path).
  void InsertMiss(uint64_t vpn, base::PageSize size, uint64_t frame,
                  const Stamp& stamp, uint16_t vmid = 0);

  // Replaces the stamp of the entry the most recent Lookup hit.  Called
  // after the engine re-derived a generation-mismatched entry and found it
  // still correct (e.g. after an in-place promotion): the entry is valid
  // again for the new generations.  Does not touch the LRU clock.
  void RestampHit(const Stamp& stamp);

  // Reclassifies the most recent hit as a miss (the engine found the entry
  // stale against the page tables and dropped it).
  void DiscountStaleHit(uint16_t vmid = 0);

  // Uncounts the most recent miss (the walk ended in a page fault; the
  // access will be retried and counted then).
  void UncountFaultMiss(uint16_t vmid = 0);

  // Invalidates every entry of every VM (full flush; e.g. context switch).
  void Flush();

  // Invalidates every entry tagged `vmid`, leaving other VMs' entries in
  // place — the tagged selective invalidation a shared domain substitutes
  // for a full flush.  Dropped entries are counted into the VM's
  // vm_invalidated counter.  Returns the number of entries dropped.
  uint32_t InvalidateVm(uint16_t vmid);

  // Invalidates any entry of `vmid` covering `vpn` (TLB shootdown of one
  // page; also drops a covering huge entry).  Returns entries dropped.
  uint32_t ShootdownPage(uint64_t vpn, uint16_t vmid = 0);

  // Invalidates all entries of `vmid` overlapping [vpn, vpn + pages).
  uint32_t ShootdownRange(uint64_t vpn, uint64_t pages, uint16_t vmid = 0);

  // Aggregate counters (summed over every registered VM); identical to the
  // per-VM values on a single-VM instance.
  uint64_t hits() const { return Sum(&VmTlbCounters::hits); }
  uint64_t misses() const { return Sum(&VmTlbCounters::misses); }
  uint64_t shootdowns() const { return Sum(&VmTlbCounters::shootdowns); }
  // Hits reclassified as misses because the cached translation no longer
  // matched the page tables.  Always also counted in misses(): the counter
  // splits out how many misses were precise invalidations rather than
  // capacity/cold misses.
  uint64_t stale_hits() const { return Sum(&VmTlbCounters::stale_drops); }
  uint64_t stale_drops() const { return Sum(&VmTlbCounters::stale_drops); }
  uint64_t flushes() const { return flushes_; }  // full Flush() calls

  // Per-VM counter set (zeroes for a vmid never registered or used).
  const VmTlbCounters& vm_counters(uint16_t vmid) const;

  uint32_t entry_count() const;  // currently valid entries, all VMs
  uint32_t entry_count(uint16_t vmid) const;  // valid entries of one VM

  // Per-set residency telemetry: valid entries currently in `set`.  The
  // conflict/capacity eviction classification is derived from the same
  // bookkeeping (an eviction with free ways elsewhere in the inserting
  // VM's window is a conflict, not a capacity, eviction).
  uint32_t set_occupancy(uint32_t set) const;

  void ResetCounters();
  // Zeroes one VM's counter slot only (a shared view resetting itself must
  // not clobber the other tenants' counters).
  void ResetVmCounters(uint16_t vmid);

  // Attaches (or detaches, with null) a utility/interference monitor.  The
  // monitor observes hits, fills, evictions, and invalidations, and is
  // probed on every miss for displaced-record attribution; null (the
  // default, and always the case in private mode) skips every hook.  The
  // caller keeps ownership and must outlive the Tlb's use of it.
  void AttachUtilityMonitor(TlbUtilityMonitor* monitor) { monitor_ = monitor; }
  const TlbUtilityMonitor* utility_monitor() const { return monitor_; }

  const TlbConfig& config() const { return config_; }

 private:
  // The epoch stage (mmu/tlb_epoch_stage.h) overlays this array with one
  // VM's staged operations during an epoch-parallel phase and replays them
  // at the barrier; it needs the probe internals and counter slots.
  friend class TlbEpochStage;

  // Storage is structure-of-arrays: the probe identity (tag, size, valid)
  // of every way is packed into one uint64_t in `tags_`, so a 12-way probe
  // scans 96 contiguous bytes — two cache lines — instead of touching 12
  // scattered payload entries.  LRU stamps get the same treatment for the
  // victim scan on insert.  The payload (frame + validity stamp) is only
  // read on the one way that actually hit.
  struct Entry {
    uint64_t frame = 0;
    Stamp stamp;
  };

  // Per-VM bookkeeping beyond the public counters: the way window the VM
  // may occupy and how many valid entries currently sit inside it (for the
  // conflict-vs-capacity eviction classification; windows of distinct VMs
  // are identical or disjoint, so the count is cheap to maintain).
  struct VmState {
    uint32_t way_begin = 0;
    uint32_t way_count = 0;
    uint32_t window_valid = 0;
    VmTlbCounters counters;
  };

  uint32_t SetIndex(uint64_t key) const {
    return static_cast<uint32_t>(key) & (config_.sets - 1);
  }
  // Packed way identity: tag << (kVmidBits + 2) | vmid << 2 | is_huge << 1
  // | valid.  Zero (invalid) never matches a probe, whose target always
  // has the valid bit set.
  static uint64_t PackedTag(uint64_t key, base::PageSize size,
                            uint16_t vmid) {
    return (key << (kVmidBits + 2)) |
           (static_cast<uint64_t>(vmid) << 2) |
           (size == base::PageSize::kHuge ? 2ull : 0ull) | 1ull;
  }
  static uint16_t TagVmid(uint64_t packed) {
    return static_cast<uint16_t>((packed >> 2) & (kMaxVms - 1));
  }
  // Index of the entry translating (key, size) for `vmid`, or -1.
  int64_t FindEntry(uint64_t key, base::PageSize size, uint16_t vmid) const;

  VmState& Vm(uint16_t vmid);
  const VmState* VmOrNull(uint16_t vmid) const;
  // Counter slot for `vmid` without the way-window registration Vm()
  // performs: hit/miss accounting is the innermost step of every probe, and
  // a counter slot needs no window (Insert registers the window lazily via
  // Vm() before it is ever consulted).  The growth branch is never taken
  // after the VMs of a domain are registered.
  VmTlbCounters& Counters(uint16_t vmid) {
    if (__builtin_expect(vmid >= vms_.size(), 0)) {
      RegisterVm(vmid);
    }
    return vms_[vmid].counters;
  }
  // Validity bookkeeping when slot `i` becomes invalid / gains a valid
  // entry (set residency, total, and every covering way window).
  void DropSlot(size_t i);
  void AddSlot(size_t i);
  uint64_t Sum(uint64_t VmTlbCounters::* field) const;

  // Direct-mapped cache of recently hit/inserted huge entry indices, by
  // region; -1 = empty.  Eviction/shootdown/reuse of a slot — or reuse by
  // another VM's region in a shared array — is caught by re-checking the
  // packed tag (which includes the VMID) before trusting it (see
  // RehitHuge).
  static constexpr uint32_t kHugeMemoSlots = 1024;  // power of two

  TlbConfig config_;
  std::vector<uint64_t> tags_;     // sets * ways packed way identities
  std::vector<uint64_t> lru_;      // lru_[i]: last touch of entry i
  std::vector<Entry> entries_;     // sets * ways payloads
  std::vector<int32_t> huge_hit_memo_;  // kHugeMemoSlots, region-indexed
  std::vector<VmState> vms_;       // indexed by vmid; grown by RegisterVm
  std::vector<uint32_t> set_valid_;  // per-set residency
  uint32_t valid_total_ = 0;
  int64_t last_hit_ = -1;  // entry the most recent Lookup hit, or -1
  uint64_t clock_ = 0;
  uint64_t flushes_ = 0;
  TlbUtilityMonitor* monitor_ = nullptr;  // not owned; null in private mode
};

inline void Tlb::PrefetchSets(uint64_t vpn) const {
  const uint64_t region = vpn >> base::kHugeOrder;
  const size_t hset = static_cast<size_t>(SetIndex(region)) * config_.ways;
  const size_t bset = static_cast<size_t>(SetIndex(vpn)) * config_.ways;
  // A set's packed tags span at most two cache lines; touch both ends.
  __builtin_prefetch(&tags_[hset], 0, 1);
  __builtin_prefetch(&tags_[hset + config_.ways - 1], 0, 1);
  __builtin_prefetch(&tags_[bset], 0, 1);
  __builtin_prefetch(&tags_[bset + config_.ways - 1], 0, 1);
}

inline bool Tlb::RehitHuge(uint64_t region, LookupResult* out,
                           uint16_t vmid) {
  const int32_t i = huge_hit_memo_[region & (kHugeMemoSlots - 1)];
  // Re-check what Lookup would have established: the slot may have been
  // evicted, shot down, or reused for another region (or another VM's
  // region — the memo is shared, the tag is not) since it was memoized.
  if (i < 0 || tags_[i] != PackedTag(region, base::PageSize::kHuge, vmid)) {
    return false;
  }
  ++clock_;
  lru_[i] = clock_;
  ++Counters(vmid).hits;
  last_hit_ = i;
  if (__builtin_expect(monitor_ != nullptr, 0)) {
    monitor_->OnAccess(region, base::PageSize::kHuge, vmid);
  }
  const Entry& e = entries_[i];
  *out = LookupResult{true, base::PageSize::kHuge, e.frame, e.stamp};
  return true;
}

}  // namespace mmu

#endif  // SRC_MMU_TLB_H_
