// Set-associative TLB model with mixed 4 KiB / 2 MiB entries.
//
// Models the unified second-level TLB of the evaluation machine (paper
// §6.1: 1536 L2 entries shared by 4 KiB and 2 MiB pages): one physical
// array whose entries are tagged with the page size they translate.  A 4 KiB
// entry is indexed by the virtual page number, a 2 MiB entry by the
// huge-region number, so one huge entry covers 512x the address range of a
// base entry — this is the TLB-coverage effect huge pages buy.
//
// Entries also record the translated frame and a generation stamp: the
// (guest-region, host-region) page-table generations the entry was filled
// under, plus whether the translation went through a well-aligned huge
// pair.  The translation engine compares the stamp against the live
// tables' generation counters on every hit — an O(1) integer compare that
// models precise invalidation (INVLPG / single-context INVEPT with a
// tagged TLB) without the wholesale flushes that would distort short
// simulations.  Entries whose regions mutated are re-derived once and
// either restamped (still-correct translation, e.g. after an in-place
// promotion) or dropped as stale.
//
// In virtualized mode the engine only inserts a 2 MiB entry for
// well-aligned huge pages (guest huge AND host huge); that rule lives in
// translation_engine.cc, not here.  The TLB itself is layer-agnostic.
#ifndef SRC_MMU_TLB_H_
#define SRC_MMU_TLB_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/types.h"

namespace mmu {

struct TlbConfig {
  uint32_t sets = 128;
  uint32_t ways = 12;  // 128 x 12 = 1536 entries, matching the paper's L2
};

class Tlb {
 public:
  // Validity stamp recorded when an entry is filled (or revalidated): the
  // page-table generations the translation was derived under.  The host
  // fields are unused (zero) in native mode.
  struct Stamp {
    uint64_t guest_gen = 0;    // guest table generation of the VPN's region
    uint64_t host_region = 0;  // host region (GFN >> 9) backing the entry
    uint64_t host_gen = 0;     // host table generation of that region
    bool well_aligned = false;  // translated through a huge/huge pair
  };

  struct LookupResult {
    bool hit = false;
    base::PageSize size = base::PageSize::kBase;
    // Translated frame: the page's frame for a 4 KiB entry, the first frame
    // of the 2 MiB block for a huge entry.
    uint64_t frame = 0;
    Stamp stamp;  // stamps recorded at fill / last revalidation
  };

  explicit Tlb(const TlbConfig& config);

  // Probes for a translation of `vpn`.  Checks both a 4 KiB entry for the
  // page and a 2 MiB entry for its huge region.  Updates LRU on hit.
  LookupResult Lookup(uint64_t vpn);

  // O(1) repeat-probe for a huge entry of `region`, used by the batched
  // translation fast path.  If a recently hit or inserted huge entry for
  // the region is still valid, performs exactly what Lookup would have
  // done for any vpn of the region — huge entries probe first, and tags
  // are unique per (set, size), so the memoized entry *is* the entry
  // Lookup would return — counts the hit, touches LRU, fills `out`, and
  // returns true.  Otherwise touches nothing (no miss counted; the caller
  // falls back to Lookup) and returns false.  Defined inline below the
  // class: it is the innermost step of the batch fast path.
  bool RehitHuge(uint64_t region, LookupResult* out);

  // Side-effect-free presence probe: true iff a Lookup of `vpn` would hit
  // right now.  Touches no counters and no LRU state.  The batch prefetch
  // planner uses it to skip side-walking accesses that will hit anyway
  // (the answer is advisory — state may change before the real access —
  // so correctness never depends on it).
  bool Probe(uint64_t vpn) const {
    return FindEntry(vpn >> base::kHugeOrder, base::PageSize::kHuge) >= 0 ||
           FindEntry(vpn, base::PageSize::kBase) >= 0;
  }

  // Advisory prefetch of the two sets a Lookup of `vpn` will probe.  A
  // probe scans the packed tag words of every way, so the tag lines of
  // both sets are pulled (payload lines are only needed on a hit and are
  // not worth the traffic).
  void PrefetchSets(uint64_t vpn) const;

  // Inserts a translation for `vpn` at the given granularity, evicting the
  // LRU way of the target set.  The overload without a stamp inserts with
  // a default (all-zero) stamp — fine for unit tests and standalone use.
  void Insert(uint64_t vpn, base::PageSize size, uint64_t frame,
              const Stamp& stamp);
  void Insert(uint64_t vpn, base::PageSize size, uint64_t frame);

  // Replaces the stamp of the entry the most recent Lookup hit.  Called
  // after the engine re-derived a generation-mismatched entry and found it
  // still correct (e.g. after an in-place promotion): the entry is valid
  // again for the new generations.  Does not touch the LRU clock.
  void RestampHit(const Stamp& stamp);

  // Reclassifies the most recent hit as a miss (the engine found the entry
  // stale against the page tables and dropped it).
  void DiscountStaleHit();

  // Uncounts the most recent miss (the walk ended in a page fault; the
  // access will be retried and counted then).
  void UncountFaultMiss();

  // Invalidates every entry (full flush; e.g. context switch).
  void Flush();

  // Invalidates any entry covering `vpn` (TLB shootdown of one page; also
  // drops a covering huge entry).  Returns the number of entries dropped.
  uint32_t ShootdownPage(uint64_t vpn);

  // Invalidates all entries overlapping [vpn, vpn + pages).
  uint32_t ShootdownRange(uint64_t vpn, uint64_t pages);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t shootdowns() const { return shootdowns_; }
  // Hits reclassified as misses because the cached translation no longer
  // matched the page tables.  Always also counted in misses(): the counter
  // splits out how many misses were precise invalidations rather than
  // capacity/cold misses.
  uint64_t stale_hits() const { return stale_drops_; }
  uint64_t stale_drops() const { return stale_drops_; }
  uint32_t entry_count() const;  // currently valid entries
  void ResetCounters();

 private:
  // Storage is structure-of-arrays: the probe identity (tag, size, valid)
  // of every way is packed into one uint64_t in `tags_`, so a 12-way probe
  // scans 96 contiguous bytes — two cache lines — instead of touching 12
  // scattered payload entries.  LRU stamps get the same treatment for the
  // victim scan on insert.  The payload (frame + validity stamp) is only
  // read on the one way that actually hit.
  struct Entry {
    uint64_t frame = 0;
    Stamp stamp;
  };

  uint32_t SetIndex(uint64_t key) const {
    return static_cast<uint32_t>(key) & (config_.sets - 1);
  }
  // Packed way identity: tag << 2 | is_huge << 1 | valid.  Zero (invalid)
  // never matches a probe, whose target always has the valid bit set.
  static uint64_t PackedTag(uint64_t key, base::PageSize size) {
    return (key << 2) | (size == base::PageSize::kHuge ? 2ull : 0ull) | 1ull;
  }
  // Index of the entry translating (key, size), or -1.
  int64_t FindEntry(uint64_t key, base::PageSize size) const;

  // Direct-mapped cache of recently hit/inserted huge entry indices, by
  // region; -1 = empty.  Eviction/shootdown/reuse of a slot is caught by
  // re-checking the packed tag before trusting it (see RehitHuge).
  static constexpr uint32_t kHugeMemoSlots = 1024;  // power of two

  TlbConfig config_;
  std::vector<uint64_t> tags_;     // sets * ways packed way identities
  std::vector<uint64_t> lru_;      // lru_[i]: last touch of entry i
  std::vector<Entry> entries_;     // sets * ways payloads
  std::vector<int32_t> huge_hit_memo_;  // kHugeMemoSlots, region-indexed
  int64_t last_hit_ = -1;  // entry the most recent Lookup hit, or -1
  uint64_t clock_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t shootdowns_ = 0;
  uint64_t stale_drops_ = 0;
};

inline void Tlb::PrefetchSets(uint64_t vpn) const {
  const uint64_t region = vpn >> base::kHugeOrder;
  const size_t hset = static_cast<size_t>(SetIndex(region)) * config_.ways;
  const size_t bset = static_cast<size_t>(SetIndex(vpn)) * config_.ways;
  // A set's packed tags span at most two cache lines; touch both ends.
  __builtin_prefetch(&tags_[hset], 0, 1);
  __builtin_prefetch(&tags_[hset + config_.ways - 1], 0, 1);
  __builtin_prefetch(&tags_[bset], 0, 1);
  __builtin_prefetch(&tags_[bset + config_.ways - 1], 0, 1);
}

inline bool Tlb::RehitHuge(uint64_t region, LookupResult* out) {
  const int32_t i = huge_hit_memo_[region & (kHugeMemoSlots - 1)];
  // Re-check what Lookup would have established: the slot may have been
  // evicted, shot down, or reused for another region since it was memoized.
  if (i < 0 || tags_[i] != PackedTag(region, base::PageSize::kHuge)) {
    return false;
  }
  ++clock_;
  lru_[i] = clock_;
  ++hits_;
  last_hit_ = i;
  const Entry& e = entries_[i];
  *out = LookupResult{true, base::PageSize::kHuge, e.frame, e.stamp};
  return true;
}

}  // namespace mmu

#endif  // SRC_MMU_TLB_H_
