// Set-associative TLB model with mixed 4 KiB / 2 MiB entries.
//
// Models the unified second-level TLB of the evaluation machine (paper
// §6.1: 1536 L2 entries shared by 4 KiB and 2 MiB pages): one physical
// array whose entries are tagged with the page size they translate.  A 4 KiB
// entry is indexed by the virtual page number, a 2 MiB entry by the
// huge-region number, so one huge entry covers 512x the address range of a
// base entry — this is the TLB-coverage effect huge pages buy.
//
// Entries also record the translated frame and a generation stamp: the
// (guest-region, host-region) page-table generations the entry was filled
// under, plus whether the translation went through a well-aligned huge
// pair.  The translation engine compares the stamp against the live
// tables' generation counters on every hit — an O(1) integer compare that
// models precise invalidation (INVLPG / single-context INVEPT with a
// tagged TLB) without the wholesale flushes that would distort short
// simulations.  Entries whose regions mutated are re-derived once and
// either restamped (still-correct translation, e.g. after an in-place
// promotion) or dropped as stale.
//
// In virtualized mode the engine only inserts a 2 MiB entry for
// well-aligned huge pages (guest huge AND host huge); that rule lives in
// translation_engine.cc, not here.  The TLB itself is layer-agnostic.
#ifndef SRC_MMU_TLB_H_
#define SRC_MMU_TLB_H_

#include <cstdint>
#include <vector>

#include "base/types.h"

namespace mmu {

struct TlbConfig {
  uint32_t sets = 128;
  uint32_t ways = 12;  // 128 x 12 = 1536 entries, matching the paper's L2
};

class Tlb {
 public:
  // Validity stamp recorded when an entry is filled (or revalidated): the
  // page-table generations the translation was derived under.  The host
  // fields are unused (zero) in native mode.
  struct Stamp {
    uint64_t guest_gen = 0;    // guest table generation of the VPN's region
    uint64_t host_region = 0;  // host region (GFN >> 9) backing the entry
    uint64_t host_gen = 0;     // host table generation of that region
    bool well_aligned = false;  // translated through a huge/huge pair
  };

  struct LookupResult {
    bool hit = false;
    base::PageSize size = base::PageSize::kBase;
    // Translated frame: the page's frame for a 4 KiB entry, the first frame
    // of the 2 MiB block for a huge entry.
    uint64_t frame = 0;
    Stamp stamp;  // stamps recorded at fill / last revalidation
  };

  explicit Tlb(const TlbConfig& config);

  // Probes for a translation of `vpn`.  Checks both a 4 KiB entry for the
  // page and a 2 MiB entry for its huge region.  Updates LRU on hit.
  LookupResult Lookup(uint64_t vpn);

  // Inserts a translation for `vpn` at the given granularity, evicting the
  // LRU way of the target set.  The overload without a stamp inserts with
  // a default (all-zero) stamp — fine for unit tests and standalone use.
  void Insert(uint64_t vpn, base::PageSize size, uint64_t frame,
              const Stamp& stamp);
  void Insert(uint64_t vpn, base::PageSize size, uint64_t frame);

  // Replaces the stamp of the entry the most recent Lookup hit.  Called
  // after the engine re-derived a generation-mismatched entry and found it
  // still correct (e.g. after an in-place promotion): the entry is valid
  // again for the new generations.  Does not touch the LRU clock.
  void RestampHit(const Stamp& stamp);

  // Reclassifies the most recent hit as a miss (the engine found the entry
  // stale against the page tables and dropped it).
  void DiscountStaleHit();

  // Uncounts the most recent miss (the walk ended in a page fault; the
  // access will be retried and counted then).
  void UncountFaultMiss();

  // Invalidates every entry (full flush; e.g. context switch).
  void Flush();

  // Invalidates any entry covering `vpn` (TLB shootdown of one page; also
  // drops a covering huge entry).  Returns the number of entries dropped.
  uint32_t ShootdownPage(uint64_t vpn);

  // Invalidates all entries overlapping [vpn, vpn + pages).
  uint32_t ShootdownRange(uint64_t vpn, uint64_t pages);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t shootdowns() const { return shootdowns_; }
  // Hits reclassified as misses because the cached translation no longer
  // matched the page tables.  Always also counted in misses(): the counter
  // splits out how many misses were precise invalidations rather than
  // capacity/cold misses.
  uint64_t stale_hits() const { return stale_drops_; }
  uint64_t stale_drops() const { return stale_drops_; }
  uint32_t entry_count() const;  // currently valid entries
  void ResetCounters();

 private:
  struct Entry {
    uint64_t tag = 0;       // vpn (4K) or huge-region number (2M)
    uint64_t frame = 0;
    uint64_t lru_stamp = 0;
    Stamp stamp;
    base::PageSize size = base::PageSize::kBase;
    bool valid = false;
  };

  uint32_t SetIndex(uint64_t key) const {
    return static_cast<uint32_t>(key) & (config_.sets - 1);
  }
  Entry* FindEntry(uint64_t key, base::PageSize size);

  TlbConfig config_;
  std::vector<Entry> entries_;  // sets * ways; sized once, never moves
  Entry* last_hit_ = nullptr;   // entry returned by the most recent Lookup
  uint64_t clock_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t shootdowns_ = 0;
  uint64_t stale_drops_ = 0;
};

}  // namespace mmu

#endif  // SRC_MMU_TLB_H_
