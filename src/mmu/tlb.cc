#include "mmu/tlb.h"

#include "base/check.h"

namespace mmu {

Tlb::Tlb(const TlbConfig& config) : config_(config) {
  SIM_CHECK(config_.sets > 0 && (config_.sets & (config_.sets - 1)) == 0);
  SIM_CHECK(config_.ways > 0);
  const size_t n = static_cast<size_t>(config_.sets) * config_.ways;
  SIM_CHECK(n < static_cast<size_t>(INT32_MAX));  // memo stores int32 indices
  tags_.assign(n, 0);
  lru_.assign(n, 0);
  entries_.resize(n);
  huge_hit_memo_.assign(kHugeMemoSlots, -1);
}

int64_t Tlb::FindEntry(uint64_t key, base::PageSize size) const {
  const size_t base_i = static_cast<size_t>(SetIndex(key)) * config_.ways;
  const uint64_t target = PackedTag(key, size);
  for (uint32_t w = 0; w < config_.ways; ++w) {
    if (tags_[base_i + w] == target) {
      return static_cast<int64_t>(base_i + w);
    }
  }
  return -1;
}

Tlb::LookupResult Tlb::Lookup(uint64_t vpn) {
  ++clock_;
  // Probe the 2 MiB structure first (covers more), then 4 KiB.
  const uint64_t region = vpn >> base::kHugeOrder;
  if (const int64_t i = FindEntry(region, base::PageSize::kHuge); i >= 0) {
    lru_[i] = clock_;
    ++hits_;
    last_hit_ = i;
    huge_hit_memo_[region & (kHugeMemoSlots - 1)] = static_cast<int32_t>(i);
    const Entry& e = entries_[i];
    return LookupResult{true, base::PageSize::kHuge, e.frame, e.stamp};
  }
  if (const int64_t i = FindEntry(vpn, base::PageSize::kBase); i >= 0) {
    lru_[i] = clock_;
    ++hits_;
    last_hit_ = i;
    const Entry& e = entries_[i];
    return LookupResult{true, base::PageSize::kBase, e.frame, e.stamp};
  }
  ++misses_;
  last_hit_ = -1;
  return LookupResult{};
}

void Tlb::RestampHit(const Stamp& stamp) {
  SIM_CHECK(last_hit_ >= 0 && (tags_[last_hit_] & 1) != 0);
  entries_[last_hit_].stamp = stamp;
}

void Tlb::UncountFaultMiss() { --misses_; }

void Tlb::DiscountStaleHit() {
  ++stale_drops_;
  --hits_;
  ++misses_;
}

void Tlb::Insert(uint64_t vpn, base::PageSize size, uint64_t frame) {
  Insert(vpn, size, frame, Stamp{});
}

void Tlb::Insert(uint64_t vpn, base::PageSize size, uint64_t frame,
                 const Stamp& stamp) {
  ++clock_;
  const uint64_t key =
      size == base::PageSize::kHuge ? (vpn >> base::kHugeOrder) : vpn;
  if (const int64_t i = FindEntry(key, size); i >= 0) {
    lru_[i] = clock_;
    entries_[i].frame = frame;
    entries_[i].stamp = stamp;
    if (size == base::PageSize::kHuge) {
      huge_hit_memo_[key & (kHugeMemoSlots - 1)] = static_cast<int32_t>(i);
    }
    return;
  }
  const size_t base_i = static_cast<size_t>(SetIndex(key)) * config_.ways;
  size_t victim = base_i;
  for (uint32_t w = 0; w < config_.ways; ++w) {
    const size_t i = base_i + w;
    if ((tags_[i] & 1) == 0) {
      victim = i;
      break;
    }
    if (lru_[i] < lru_[victim]) {
      victim = i;
    }
  }
  tags_[victim] = PackedTag(key, size);
  lru_[victim] = clock_;
  entries_[victim].frame = frame;
  entries_[victim].stamp = stamp;
  if (size == base::PageSize::kHuge) {
    huge_hit_memo_[key & (kHugeMemoSlots - 1)] = static_cast<int32_t>(victim);
  }
}

void Tlb::Flush() {
  for (uint64_t& t : tags_) {
    t = 0;
  }
}

uint32_t Tlb::ShootdownPage(uint64_t vpn) {
  uint32_t dropped = 0;
  if (const int64_t i = FindEntry(vpn, base::PageSize::kBase); i >= 0) {
    tags_[i] = 0;
    ++dropped;
  }
  if (const int64_t i =
          FindEntry(vpn >> base::kHugeOrder, base::PageSize::kHuge);
      i >= 0) {
    tags_[i] = 0;
    ++dropped;
  }
  shootdowns_ += dropped;
  return dropped;
}

uint32_t Tlb::ShootdownRange(uint64_t vpn, uint64_t pages) {
  // For large ranges a full scan is cheaper than per-page probes.
  if (pages >= entries_.size()) {
    uint32_t dropped = 0;
    const uint64_t end = vpn + pages;
    for (size_t i = 0; i < tags_.size(); ++i) {
      const uint64_t t = tags_[i];
      if ((t & 1) == 0) {
        continue;
      }
      const bool huge = (t & 2) != 0;
      const uint64_t tag = t >> 2;
      const uint64_t lo = huge ? tag << base::kHugeOrder : tag;
      const uint64_t hi = lo + (huge ? base::kPagesPerHuge : 1);
      if (lo < end && hi > vpn) {
        tags_[i] = 0;
        ++dropped;
      }
    }
    shootdowns_ += dropped;
    return dropped;
  }
  uint32_t dropped = 0;
  for (uint64_t p = 0; p < pages; ++p) {
    dropped += ShootdownPage(vpn + p);
  }
  return dropped;
}

uint32_t Tlb::entry_count() const {
  uint32_t n = 0;
  for (const uint64_t t : tags_) {
    n += static_cast<uint32_t>(t & 1);
  }
  return n;
}

void Tlb::ResetCounters() {
  hits_ = 0;
  misses_ = 0;
  shootdowns_ = 0;
  stale_drops_ = 0;
}

}  // namespace mmu
