#include "mmu/tlb.h"

#include "base/check.h"

namespace mmu {

Tlb::Tlb(const TlbConfig& config) : config_(config) {
  SIM_CHECK(config_.sets > 0 && (config_.sets & (config_.sets - 1)) == 0);
  SIM_CHECK(config_.ways > 0);
  entries_.resize(static_cast<size_t>(config_.sets) * config_.ways);
}

Tlb::Entry* Tlb::FindEntry(uint64_t key, base::PageSize size) {
  const uint32_t set = SetIndex(key);
  Entry* base_ptr = &entries_[static_cast<size_t>(set) * config_.ways];
  for (uint32_t w = 0; w < config_.ways; ++w) {
    Entry& e = base_ptr[w];
    if (e.valid && e.size == size && e.tag == key) {
      return &e;
    }
  }
  return nullptr;
}

Tlb::LookupResult Tlb::Lookup(uint64_t vpn) {
  ++clock_;
  // Probe the 2 MiB structure first (covers more), then 4 KiB.
  const uint64_t region = vpn >> base::kHugeOrder;
  if (Entry* e = FindEntry(region, base::PageSize::kHuge)) {
    e->lru_stamp = clock_;
    ++hits_;
    last_hit_ = e;
    return LookupResult{true, base::PageSize::kHuge, e->frame, e->stamp};
  }
  if (Entry* e = FindEntry(vpn, base::PageSize::kBase)) {
    e->lru_stamp = clock_;
    ++hits_;
    last_hit_ = e;
    return LookupResult{true, base::PageSize::kBase, e->frame, e->stamp};
  }
  ++misses_;
  last_hit_ = nullptr;
  return LookupResult{};
}

void Tlb::RestampHit(const Stamp& stamp) {
  SIM_CHECK(last_hit_ != nullptr && last_hit_->valid);
  last_hit_->stamp = stamp;
}

void Tlb::UncountFaultMiss() { --misses_; }

void Tlb::DiscountStaleHit() {
  ++stale_drops_;
  --hits_;
  ++misses_;
}

void Tlb::Insert(uint64_t vpn, base::PageSize size, uint64_t frame) {
  Insert(vpn, size, frame, Stamp{});
}

void Tlb::Insert(uint64_t vpn, base::PageSize size, uint64_t frame,
                 const Stamp& stamp) {
  ++clock_;
  const uint64_t key =
      size == base::PageSize::kHuge ? (vpn >> base::kHugeOrder) : vpn;
  if (Entry* existing = FindEntry(key, size)) {
    existing->lru_stamp = clock_;
    existing->frame = frame;
    existing->stamp = stamp;
    return;
  }
  const uint32_t set = SetIndex(key);
  Entry* base_ptr = &entries_[static_cast<size_t>(set) * config_.ways];
  Entry* victim = &base_ptr[0];
  for (uint32_t w = 0; w < config_.ways; ++w) {
    Entry& e = base_ptr[w];
    if (!e.valid) {
      victim = &e;
      break;
    }
    if (e.lru_stamp < victim->lru_stamp) {
      victim = &e;
    }
  }
  victim->valid = true;
  victim->tag = key;
  victim->size = size;
  victim->frame = frame;
  victim->stamp = stamp;
  victim->lru_stamp = clock_;
}

void Tlb::Flush() {
  for (Entry& e : entries_) {
    e.valid = false;
  }
}

uint32_t Tlb::ShootdownPage(uint64_t vpn) {
  uint32_t dropped = 0;
  if (Entry* e = FindEntry(vpn, base::PageSize::kBase)) {
    e->valid = false;
    ++dropped;
  }
  if (Entry* e = FindEntry(vpn >> base::kHugeOrder, base::PageSize::kHuge)) {
    e->valid = false;
    ++dropped;
  }
  shootdowns_ += dropped;
  return dropped;
}

uint32_t Tlb::ShootdownRange(uint64_t vpn, uint64_t pages) {
  // For large ranges a full scan is cheaper than per-page probes.
  if (pages >= entries_.size()) {
    uint32_t dropped = 0;
    const uint64_t end = vpn + pages;
    for (Entry& e : entries_) {
      if (!e.valid) {
        continue;
      }
      const uint64_t lo =
          e.size == base::PageSize::kHuge ? e.tag << base::kHugeOrder : e.tag;
      const uint64_t hi =
          lo + (e.size == base::PageSize::kHuge ? base::kPagesPerHuge : 1);
      if (lo < end && hi > vpn) {
        e.valid = false;
        ++dropped;
      }
    }
    shootdowns_ += dropped;
    return dropped;
  }
  uint32_t dropped = 0;
  for (uint64_t p = 0; p < pages; ++p) {
    dropped += ShootdownPage(vpn + p);
  }
  return dropped;
}

uint32_t Tlb::entry_count() const {
  uint32_t n = 0;
  for (const Entry& e : entries_) {
    if (e.valid) {
      ++n;
    }
  }
  return n;
}

void Tlb::ResetCounters() {
  hits_ = 0;
  misses_ = 0;
  shootdowns_ = 0;
  stale_drops_ = 0;
}

}  // namespace mmu
