#include "mmu/tlb.h"

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define MMU_TLB_HAVE_AVX2_PROBE 1
#endif

#include "base/check.h"

namespace mmu {

namespace {

#ifdef MMU_TLB_HAVE_AVX2_PROBE
// 4-way-at-a-time packed-tag compare.  Probes are the innermost operation
// of every translation (two per lookup, plus insert/shootdown probes), and
// the scalar loop spends most of its time on loop overhead for a 12-way
// scan.  Returns the lowest matching way like the scalar loop would; tags
// are unique per (set, size, vmid) so at most one lane ever matches.
__attribute__((target("avx2"))) int64_t ProbeWaysAvx2(const uint64_t* tags,
                                                      uint32_t ways,
                                                      uint64_t target) {
  const __m256i want = _mm256_set1_epi64x(static_cast<long long>(target));
  uint32_t w = 0;
  for (; w + 4 <= ways; w += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(tags + w));
    const int m = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(v, want)));
    if (m != 0) {
      return w + static_cast<uint32_t>(__builtin_ctz(static_cast<uint32_t>(m)));
    }
  }
  for (; w < ways; ++w) {
    if (tags[w] == target) {
      return w;
    }
  }
  return -1;
}

bool HaveAvx2() {
  static const bool have = __builtin_cpu_supports("avx2");
  return have;
}
#endif  // MMU_TLB_HAVE_AVX2_PROBE

}  // namespace

Tlb::Tlb(const TlbConfig& config) : config_(config) {
  SIM_CHECK(config_.sets > 0 && (config_.sets & (config_.sets - 1)) == 0);
  SIM_CHECK(config_.ways > 0);
  const size_t n = static_cast<size_t>(config_.sets) * config_.ways;
  SIM_CHECK(n < static_cast<size_t>(INT32_MAX));  // memo stores int32 indices
  tags_.assign(n, 0);
  lru_.assign(n, 0);
  entries_.resize(n);
  huge_hit_memo_.assign(kHugeMemoSlots, -1);
  set_valid_.assign(config_.sets, 0);
  RegisterVm(0);
}

void Tlb::RegisterVm(uint16_t vmid) {
  SIM_CHECK(vmid < kMaxVms);
  if (vms_.size() <= vmid) {
    vms_.resize(vmid + 1);
  }
  if (vms_[vmid].way_count == 0) {
    SetVmWays(vmid, 0, config_.ways);
  }
}

void Tlb::SetVmWays(uint16_t vmid, uint32_t way_begin, uint32_t way_count) {
  SIM_CHECK(vmid < kMaxVms);
  SIM_CHECK(way_count > 0 && way_begin + way_count <= config_.ways);
  if (vms_.size() <= vmid) {
    vms_.resize(vmid + 1);
  }
  VmState& vm = vms_[vmid];
  vm.way_begin = way_begin;
  vm.way_count = way_count;
  // Recount residency inside the new window (setup-time; full scan is fine).
  vm.window_valid = 0;
  for (uint32_t s = 0; s < config_.sets; ++s) {
    const size_t base_i = static_cast<size_t>(s) * config_.ways;
    for (uint32_t w = way_begin; w < way_begin + way_count; ++w) {
      vm.window_valid += static_cast<uint32_t>(tags_[base_i + w] & 1);
    }
  }
}

uint32_t Tlb::RepartitionVmWays(uint16_t vmid, uint32_t way_begin,
                                uint32_t way_count) {
  SIM_CHECK(vmid < kMaxVms);
  SIM_CHECK(way_count > 0 && way_begin + way_count <= config_.ways);
  if (const VmState* vm = VmOrNull(vmid);
      vm != nullptr && vm->way_begin == way_begin &&
      vm->way_count == way_count) {
    return 0;
  }
  SetVmWays(vmid, way_begin, way_count);
  // Drop this VM's entries stranded outside the new window.  DropSlot keeps
  // every covering window's residency count correct, including windows of
  // VMs whose own repartition has not happened yet this tick.
  uint32_t dropped = 0;
  const uint32_t way_end = way_begin + way_count;
  for (size_t i = 0; i < tags_.size(); ++i) {
    const uint64_t t = tags_[i];
    if ((t & 1) == 0 || TagVmid(t) != vmid) {
      continue;
    }
    const uint32_t way = static_cast<uint32_t>(i % config_.ways);
    if (way < way_begin || way >= way_end) {
      DropSlot(i);
      ++dropped;
    }
  }
  Counters(vmid).repartition_evictions += dropped;
  return dropped;
}

uint32_t Tlb::entry_count_outside_window(uint16_t vmid) const {
  const VmState* vm = VmOrNull(vmid);
  if (vm == nullptr || vm->way_count == 0) {
    return entry_count(vmid);
  }
  uint32_t n = 0;
  for (size_t i = 0; i < tags_.size(); ++i) {
    const uint64_t t = tags_[i];
    if ((t & 1) == 0 || TagVmid(t) != vmid) {
      continue;
    }
    const uint32_t way = static_cast<uint32_t>(i % config_.ways);
    n += static_cast<uint32_t>(way < vm->way_begin ||
                               way >= vm->way_begin + vm->way_count);
  }
  return n;
}

Tlb::VmState& Tlb::Vm(uint16_t vmid) {
  if (vmid >= vms_.size() || vms_[vmid].way_count == 0) {
    RegisterVm(vmid);
  }
  return vms_[vmid];
}

const Tlb::VmState* Tlb::VmOrNull(uint16_t vmid) const {
  if (vmid >= vms_.size()) {
    return nullptr;
  }
  return &vms_[vmid];
}

const Tlb::VmTlbCounters& Tlb::vm_counters(uint16_t vmid) const {
  static const VmTlbCounters kZero{};
  const VmState* vm = VmOrNull(vmid);
  return vm != nullptr ? vm->counters : kZero;
}

uint64_t Tlb::Sum(uint64_t VmTlbCounters::* field) const {
  uint64_t total = 0;
  for (const VmState& vm : vms_) {
    total += vm.counters.*field;
  }
  return total;
}

int64_t Tlb::FindEntry(uint64_t key, base::PageSize size,
                       uint16_t vmid) const {
  const size_t base_i = static_cast<size_t>(SetIndex(key)) * config_.ways;
  const uint64_t target = PackedTag(key, size, vmid);
#ifdef MMU_TLB_HAVE_AVX2_PROBE
  if (HaveAvx2()) {
    const int64_t w = ProbeWaysAvx2(&tags_[base_i], config_.ways, target);
    return w >= 0 ? static_cast<int64_t>(base_i) + w : -1;
  }
#endif
  for (uint32_t w = 0; w < config_.ways; ++w) {
    if (tags_[base_i + w] == target) {
      return static_cast<int64_t>(base_i + w);
    }
  }
  return -1;
}

Tlb::LookupResult Tlb::Lookup(uint64_t vpn, uint16_t vmid) {
  ++clock_;
  // Probe the 2 MiB structure first (covers more), then 4 KiB.
  const uint64_t region = vpn >> base::kHugeOrder;
  if (const int64_t i = FindEntry(region, base::PageSize::kHuge, vmid);
      i >= 0) {
    lru_[i] = clock_;
    ++Counters(vmid).hits;
    last_hit_ = i;
    huge_hit_memo_[region & (kHugeMemoSlots - 1)] = static_cast<int32_t>(i);
    if (__builtin_expect(monitor_ != nullptr, 0)) {
      monitor_->OnAccess(region, base::PageSize::kHuge, vmid);
    }
    const Entry& e = entries_[i];
    return LookupResult{true, base::PageSize::kHuge, e.frame, e.stamp};
  }
  if (const int64_t i = FindEntry(vpn, base::PageSize::kBase, vmid); i >= 0) {
    lru_[i] = clock_;
    ++Counters(vmid).hits;
    last_hit_ = i;
    if (__builtin_expect(monitor_ != nullptr, 0)) {
      monitor_->OnAccess(vpn, base::PageSize::kBase, vmid);
    }
    const Entry& e = entries_[i];
    return LookupResult{true, base::PageSize::kBase, e.frame, e.stamp};
  }
  VmTlbCounters& c = Counters(vmid);
  ++c.misses;
  last_hit_ = -1;
  if (__builtin_expect(monitor_ != nullptr, 0)) {
    // Displaced-record probe: was this very translation evicted earlier?
    const int32_t evictor = monitor_->AttributeMiss(vpn, vmid);
    if (evictor >= 0) {
      ++(static_cast<uint16_t>(evictor) == vmid ? c.displaced_by_self
                                                : c.displaced_by_other);
    }
  }
  return LookupResult{};
}

void Tlb::RestampHit(const Stamp& stamp) {
  SIM_CHECK(last_hit_ >= 0 && (tags_[last_hit_] & 1) != 0);
  entries_[last_hit_].stamp = stamp;
}

void Tlb::UncountFaultMiss(uint16_t vmid) { --Counters(vmid).misses; }

void Tlb::DiscountStaleHit(uint16_t vmid) {
  VmTlbCounters& c = Counters(vmid);
  ++c.stale_drops;
  --c.hits;
  ++c.misses;
}

void Tlb::Insert(uint64_t vpn, base::PageSize size, uint64_t frame) {
  Insert(vpn, size, frame, Stamp{}, 0);
}

void Tlb::Insert(uint64_t vpn, base::PageSize size, uint64_t frame,
                 const Stamp& stamp, uint16_t vmid) {
  const uint64_t key =
      size == base::PageSize::kHuge ? (vpn >> base::kHugeOrder) : vpn;
  if (const int64_t i = FindEntry(key, size, vmid); i >= 0) {
    ++clock_;
    lru_[i] = clock_;
    entries_[i].frame = frame;
    entries_[i].stamp = stamp;
    if (size == base::PageSize::kHuge) {
      huge_hit_memo_[key & (kHugeMemoSlots - 1)] = static_cast<int32_t>(i);
    }
    if (monitor_ != nullptr) {
      monitor_->OnInsert(key, size, vmid);
    }
    return;
  }
  InsertMiss(vpn, size, frame, stamp, vmid);
}

void Tlb::InsertMiss(uint64_t vpn, base::PageSize size, uint64_t frame,
                     const Stamp& stamp, uint16_t vmid) {
  ++clock_;
  const uint64_t key =
      size == base::PageSize::kHuge ? (vpn >> base::kHugeOrder) : vpn;
  VmState& vm = Vm(vmid);
  const size_t base_i = static_cast<size_t>(SetIndex(key)) * config_.ways;
  const uint32_t way_end = vm.way_begin + vm.way_count;
  // LRU victim scan, branchless on the min update: which way is oldest is
  // data-dependent and mispredicts as a branch, so keep it as selects.
  // The free-way break stays a branch — it is rare once the set fills and
  // predicts well.
  size_t victim = base_i + vm.way_begin;
  uint64_t victim_lru = ~0ull;
  for (uint32_t w = vm.way_begin; w < way_end; ++w) {
    const size_t i = base_i + w;
    if ((tags_[i] & 1) == 0) {
      victim = i;
      break;
    }
    const uint64_t l = lru_[i];
    const bool older = l < victim_lru;
    victim = older ? i : victim;
    victim_lru = older ? l : victim_lru;
  }
  if ((tags_[victim] & 1) != 0) {
    // Evicting a valid entry: attribute the eviction to its owner, split
    // conflict vs true-capacity by whether the inserting VM's window still
    // has a free way in some other set (it has none in this one).
    const uint64_t vt = tags_[victim];
    const uint16_t victim_vmid = TagVmid(vt);
    const bool victim_huge = (vt & 2) != 0;
    const bool conflict =
        vm.window_valid <
        static_cast<uint64_t>(config_.sets) * vm.way_count;
    VmTlbCounters& vc = Counters(victim_vmid);
    if (victim_vmid != vmid) {
      ++vc.cross_vm_evictions;
    }
    if (conflict) {
      ++(victim_huge ? vc.conflict_evictions_huge
                     : vc.conflict_evictions_base);
    } else {
      ++(victim_huge ? vc.capacity_evictions_huge
                     : vc.capacity_evictions_base);
    }
    if (monitor_ != nullptr) {
      monitor_->OnEviction(vt >> (kVmidBits + 2),
                           victim_huge ? base::PageSize::kHuge
                                       : base::PageSize::kBase,
                           victim_vmid, vmid);
    }
    DropSlot(victim);
  }
  tags_[victim] = PackedTag(key, size, vmid);
  AddSlot(victim);
  lru_[victim] = clock_;
  entries_[victim].frame = frame;
  entries_[victim].stamp = stamp;
  if (size == base::PageSize::kHuge) {
    huge_hit_memo_[key & (kHugeMemoSlots - 1)] = static_cast<int32_t>(victim);
  }
  if (monitor_ != nullptr) {
    monitor_->OnInsert(key, size, vmid);
  }
}

void Tlb::DropSlot(size_t i) {
  tags_[i] = 0;
  --set_valid_[i / config_.ways];
  --valid_total_;
  const uint32_t way = static_cast<uint32_t>(i % config_.ways);
  for (VmState& vm : vms_) {
    if (vm.way_count != 0 && way >= vm.way_begin &&
        way < vm.way_begin + vm.way_count) {
      --vm.window_valid;
    }
  }
}

void Tlb::AddSlot(size_t i) {
  ++set_valid_[i / config_.ways];
  ++valid_total_;
  const uint32_t way = static_cast<uint32_t>(i % config_.ways);
  for (VmState& vm : vms_) {
    if (vm.way_count != 0 && way >= vm.way_begin &&
        way < vm.way_begin + vm.way_count) {
      ++vm.window_valid;
    }
  }
}

void Tlb::Flush() {
  for (uint64_t& t : tags_) {
    t = 0;
  }
  for (uint32_t& s : set_valid_) {
    s = 0;
  }
  for (VmState& vm : vms_) {
    vm.window_valid = 0;
  }
  valid_total_ = 0;
  ++flushes_;
  if (monitor_ != nullptr) {
    monitor_->OnFlush();
  }
}

uint32_t Tlb::InvalidateVm(uint16_t vmid) {
  uint32_t dropped = 0;
  for (size_t i = 0; i < tags_.size(); ++i) {
    const uint64_t t = tags_[i];
    if ((t & 1) != 0 && TagVmid(t) == vmid) {
      DropSlot(i);
      ++dropped;
    }
  }
  Counters(vmid).vm_invalidated += dropped;
  if (monitor_ != nullptr) {
    monitor_->OnInvalidateVm(vmid);
  }
  return dropped;
}

uint32_t Tlb::ShootdownPage(uint64_t vpn, uint16_t vmid) {
  uint32_t dropped = 0;
  if (const int64_t i = FindEntry(vpn, base::PageSize::kBase, vmid); i >= 0) {
    DropSlot(i);
    ++dropped;
  }
  if (const int64_t i =
          FindEntry(vpn >> base::kHugeOrder, base::PageSize::kHuge, vmid);
      i >= 0) {
    DropSlot(i);
    ++dropped;
  }
  Counters(vmid).shootdowns += dropped;
  if (monitor_ != nullptr) {
    // Unconditional: stale displaced records / shadow entries for absent
    // keys must be cleared too.
    monitor_->OnShootdown(vpn, vmid);
  }
  return dropped;
}

uint32_t Tlb::ShootdownRange(uint64_t vpn, uint64_t pages, uint16_t vmid) {
  // For large ranges a full scan is cheaper than per-page probes.
  if (pages >= entries_.size()) {
    uint32_t dropped = 0;
    const uint64_t end = vpn + pages;
    for (size_t i = 0; i < tags_.size(); ++i) {
      const uint64_t t = tags_[i];
      if ((t & 1) == 0 || TagVmid(t) != vmid) {
        continue;
      }
      const bool huge = (t & 2) != 0;
      const uint64_t tag = t >> (kVmidBits + 2);
      const uint64_t lo = huge ? tag << base::kHugeOrder : tag;
      const uint64_t hi = lo + (huge ? base::kPagesPerHuge : 1);
      if (lo < end && hi > vpn) {
        DropSlot(i);
        ++dropped;
      }
    }
    Counters(vmid).shootdowns += dropped;
    if (monitor_ != nullptr) {
      monitor_->OnShootdownRange(vpn, pages, vmid);
    }
    return dropped;
  }
  uint32_t dropped = 0;
  for (uint64_t p = 0; p < pages; ++p) {
    dropped += ShootdownPage(vpn + p, vmid);
  }
  return dropped;
}

uint32_t Tlb::entry_count() const { return valid_total_; }

uint32_t Tlb::entry_count(uint16_t vmid) const {
  uint32_t n = 0;
  for (const uint64_t t : tags_) {
    n += static_cast<uint32_t>((t & 1) != 0 && TagVmid(t) == vmid);
  }
  return n;
}

uint32_t Tlb::set_occupancy(uint32_t set) const {
  SIM_CHECK(set < config_.sets);
  return set_valid_[set];
}

void Tlb::ResetCounters() {
  for (VmState& vm : vms_) {
    vm.counters = VmTlbCounters{};
  }
  flushes_ = 0;
}

void Tlb::ResetVmCounters(uint16_t vmid) {
  if (vmid < vms_.size()) {
    vms_[vmid].counters = VmTlbCounters{};
  }
}

}  // namespace mmu
