#include "mmu/translation_engine.h"

#include "base/check.h"

namespace mmu {

using base::kHugeOrder;
using base::kPagesPerHuge;

TranslationEngine::TranslationEngine(const Config& config,
                                     PageTable* guest_table,
                                     PageTable* host_table)
    : config_(config),
      guest_table_(guest_table),
      host_table_(host_table),
      tlb_(config.tlb),
      walker_(config.walker) {
  SIM_CHECK(guest_table_ != nullptr);
}

TranslateResult TranslationEngine::Translate(uint64_t vpn) {
  ++translations_;
  TranslateResult result;
  const uint64_t region = vpn >> kHugeOrder;

  const Tlb::LookupResult cached = tlb_.Lookup(vpn);
  // Translations threaded from hit validation into the miss path, so a
  // stale hit never walks the tables twice.
  std::optional<Translation> guest;
  bool guest_fetched = false;
  std::optional<Translation> host;
  bool host_fetched = false;

  if (cached.hit) {
    // Generation compare: if neither the guest region nor the host region
    // the entry was derived from has been remapped since the entry was
    // stamped, the cached translation is correct by construction — the
    // entry behaves exactly like a precisely invalidated (INVLPG / tagged
    // INVEPT) TLB entry and the hit is O(1), with no table walks.
    if (cached.stamp.guest_gen == guest_table_->generation(region) &&
        (host_table_ == nullptr ||
         cached.stamp.host_gen ==
             host_table_->generation(cached.stamp.host_region))) {
      result.tlb_hit = true;
      result.cycles = config_.tlb_hit_cycles;
      translation_cycles_ += result.cycles;
      result.frame = cached.size == base::PageSize::kHuge
                         ? cached.frame + (vpn & (kPagesPerHuge - 1))
                         : cached.frame;
      result.well_aligned_huge = cached.stamp.well_aligned;
      return result;
    }
    // A generation moved: re-derive the translation once.  If it still
    // matches, the remap was compatible (e.g. an in-place promotion kept
    // every frame) — keep the hit and restamp the entry for the new
    // generations.  Otherwise the entry is stale: drop it and fall through
    // to the miss path, reusing the lookups performed here.
    guest = guest_table_->Lookup(vpn);
    guest_fetched = true;
    bool valid = guest.has_value();
    uint64_t frame = 0;
    bool aligned = false;
    Tlb::Stamp stamp;
    if (valid && host_table_ == nullptr) {
      frame = guest->frame;
      aligned = guest->size == base::PageSize::kHuge;
      if (cached.size == base::PageSize::kHuge) {
        valid = aligned && (frame & ~(kPagesPerHuge - 1)) == cached.frame;
      } else {
        valid = frame == cached.frame;
      }
      stamp.guest_gen = guest_table_->generation(region);
    } else if (valid) {
      host = host_table_->Lookup(guest->frame);
      host_fetched = true;
      valid = host.has_value();
      if (valid) {
        frame = host->frame;
        aligned = guest->size == base::PageSize::kHuge &&
                  host->size == base::PageSize::kHuge;
        if (cached.size == base::PageSize::kHuge) {
          valid = aligned && (frame & ~(kPagesPerHuge - 1)) == cached.frame;
        } else {
          valid = frame == cached.frame;
        }
        stamp.guest_gen = guest_table_->generation(region);
        stamp.host_region = guest->frame >> kHugeOrder;
        stamp.host_gen = host_table_->generation(stamp.host_region);
      }
    }
    if (valid) {
      stamp.well_aligned = aligned;
      tlb_.RestampHit(stamp);
      result.tlb_hit = true;
      result.cycles = config_.tlb_hit_cycles;
      translation_cycles_ += result.cycles;
      result.frame = frame;
      result.well_aligned_huge = aligned;
      return result;
    }
    tlb_.DiscountStaleHit();
    tlb_.ShootdownPage(vpn);
  }

  // TLB miss: walk.
  if (!guest_fetched) {
    guest = guest_table_->Lookup(vpn);
  }
  if (!guest.has_value()) {
    result.status = TranslateStatus::kGuestFault;
    result.fault_page = vpn;
    tlb_.UncountFaultMiss();  // the retried access will count
    return result;
  }
  guest_table_->BumpAccess(region);

  if (host_table_ == nullptr) {
    const WalkResult walk = walker_.NativeWalk(vpn, guest->size);
    result.frame = guest->frame;
    result.cycles = walk.cycles;
    translation_cycles_ += result.cycles;
    const bool huge = guest->size == base::PageSize::kHuge;
    result.well_aligned_huge = huge;
    Tlb::Stamp stamp;
    stamp.guest_gen = guest_table_->generation(region);
    stamp.well_aligned = huge;
    tlb_.Insert(vpn, guest->size,
                huge ? (guest->frame & ~(kPagesPerHuge - 1)) : guest->frame,
                stamp);
    return result;
  }

  if (!host_fetched) {
    host = host_table_->Lookup(guest->frame);
  }
  if (!host.has_value()) {
    result.status = TranslateStatus::kHostFault;
    result.fault_page = guest->frame;
    tlb_.UncountFaultMiss();  // the retried access will count
    return result;
  }
  host_table_->BumpAccess(guest->frame >> kHugeOrder);

  const WalkResult walk =
      walker_.NestedWalk(vpn, guest->size, guest->frame, host->size);
  result.frame = host->frame;
  result.cycles = walk.cycles;
  translation_cycles_ += result.cycles;

  // The well-alignment rule: only a huge guest page backed by a huge host
  // page yields a combined translation at 2 MiB granularity.  (A guest huge
  // leaf always targets a huge-aligned GPA block, and MapHuge guarantees a
  // huge host leaf targets a huge-aligned HPA block, so size agreement is
  // sufficient for offset coherence.)
  const bool aligned = guest->size == base::PageSize::kHuge &&
                       host->size == base::PageSize::kHuge;
  result.well_aligned_huge = aligned;
  Tlb::Stamp stamp;
  stamp.guest_gen = guest_table_->generation(region);
  stamp.host_region = guest->frame >> kHugeOrder;
  stamp.host_gen = host_table_->generation(stamp.host_region);
  stamp.well_aligned = aligned;
  if (aligned) {
    tlb_.Insert(vpn, base::PageSize::kHuge,
                host->frame & ~(kPagesPerHuge - 1), stamp);
  } else {
    tlb_.Insert(vpn, base::PageSize::kBase, host->frame, stamp);
  }
  return result;
}

void TranslationEngine::FlushAll() {
  tlb_.Flush();
  walker_.Flush();
}

void TranslationEngine::ResetCounters() {
  translations_ = 0;
  translation_cycles_ = 0;
  tlb_.ResetCounters();
}

}  // namespace mmu
