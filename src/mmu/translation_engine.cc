#include "mmu/translation_engine.h"

#include <algorithm>

#include "base/check.h"

namespace mmu {

using base::kHugeOrder;
using base::kPagesPerHuge;

namespace {

bool SameStamp(const Tlb::Stamp& a, const Tlb::Stamp& b) {
  return a.guest_gen == b.guest_gen && a.host_region == b.host_region &&
         a.host_gen == b.host_gen && a.well_aligned == b.well_aligned;
}

}  // namespace

TranslationEngine::TranslationEngine(const Config& config,
                                     PageTable* guest_table,
                                     PageTable* host_table)
    : config_(config),
      guest_table_(guest_table),
      host_table_(host_table),
      owned_tlb_(std::make_unique<Tlb>(config.tlb)),
      tlb_(owned_tlb_.get(), /*vmid=*/0, /*exclusive=*/true),
      walker_(config.walker) {
  SIM_CHECK(guest_table_ != nullptr);
}

TranslationEngine::TranslationEngine(const Config& config,
                                     PageTable* guest_table,
                                     PageTable* host_table, TlbView tlb_view)
    : config_(config),
      guest_table_(guest_table),
      host_table_(host_table),
      tlb_(tlb_view),
      walker_(config.walker) {
  SIM_CHECK(guest_table_ != nullptr);
}

TranslateResult TranslationEngine::Translate(uint64_t vpn) {
  const TranslateResult result = TranslateImpl<false>(vpn);
  if (result.status == TranslateStatus::kOk) {
    latency_hist_.Add(result.cycles);
  }
  return result;
}

template <bool kBatched>
TranslateResult TranslationEngine::TranslateImpl(uint64_t vpn) {
  ++translations_;
  TranslateResult result;
  const uint64_t region = vpn >> kHugeOrder;

  Tlb::LookupResult cached;
  bool have_lookup = false;
  if constexpr (kBatched) {
    // Memo fast path.  If the memo slot matches the region and neither
    // table has mutated since it was armed, the generation compare the
    // scalar path would perform is already known to pass — provided the
    // huge entry still carries the stamp the memo recorded.  RehitHuge
    // performs exactly the observable effects of the huge-probe-first
    // Lookup hit, so returning here is equivalent to the scalar
    // validated-hit branch.
    const RegionMemo& m = memo_[region & (kMemoSlots - 1)];
    if (MemoValid(m, region) && tlb_.RehitHuge(region, &cached)) {
      have_lookup = true;
      if (SameStamp(cached.stamp, m.stamp)) {
        ++batch_stats_.fastpath_hits;
        result.tlb_hit = true;
        result.cycles = config_.tlb_hit_cycles;
        translation_cycles_ += result.cycles;
        result.frame = cached.frame + (vpn & (kPagesPerHuge - 1));
        result.well_aligned_huge = cached.stamp.well_aligned;
        return result;
      }
    }
  }
  if (!have_lookup) {
    cached = tlb_.Lookup(vpn);
  }
  // Translations threaded from hit validation into the miss path, so a
  // stale hit never walks the tables twice.
  std::optional<Translation> guest;
  bool guest_fetched = false;
  std::optional<Translation> host;
  bool host_fetched = false;

  if (cached.hit) {
    // Generation compare: if neither the guest region nor the host region
    // the entry was derived from has been remapped since the entry was
    // stamped, the cached translation is correct by construction — the
    // entry behaves exactly like a precisely invalidated (INVLPG / tagged
    // INVEPT) TLB entry and the hit is O(1), with no table walks.
    if (cached.stamp.guest_gen == guest_table_->generation(region) &&
        (host_table_ == nullptr ||
         cached.stamp.host_gen ==
             host_table_->generation(cached.stamp.host_region))) {
      if constexpr (kBatched) {
        if (cached.size == base::PageSize::kHuge) {
          ArmMemo(region, cached.stamp);
        }
      }
      result.tlb_hit = true;
      result.cycles = config_.tlb_hit_cycles;
      translation_cycles_ += result.cycles;
      result.frame = cached.size == base::PageSize::kHuge
                         ? cached.frame + (vpn & (kPagesPerHuge - 1))
                         : cached.frame;
      result.well_aligned_huge = cached.stamp.well_aligned;
      return result;
    }
    // A generation moved: re-derive the translation once.  If it still
    // matches, the remap was compatible (e.g. an in-place promotion kept
    // every frame) — keep the hit and restamp the entry for the new
    // generations.  Otherwise the entry is stale: drop it and fall through
    // to the miss path, reusing the lookups performed here.
    if constexpr (kBatched) {
      guest = BatchedGuestWalk(vpn);
    } else {
      guest = guest_table_->Lookup(vpn);
    }
    guest_fetched = true;
    bool valid = guest.has_value();
    uint64_t frame = 0;
    bool aligned = false;
    Tlb::Stamp stamp;
    if (valid && host_table_ == nullptr) {
      frame = guest->frame;
      aligned = guest->size == base::PageSize::kHuge;
      if (cached.size == base::PageSize::kHuge) {
        valid = aligned && (frame & ~(kPagesPerHuge - 1)) == cached.frame;
      } else {
        valid = frame == cached.frame;
      }
      stamp.guest_gen = guest_table_->generation(region);
    } else if (valid) {
      host = host_table_->Lookup(guest->frame);
      host_fetched = true;
      valid = host.has_value();
      if (valid) {
        frame = host->frame;
        aligned = guest->size == base::PageSize::kHuge &&
                  host->size == base::PageSize::kHuge;
        if (cached.size == base::PageSize::kHuge) {
          valid = aligned && (frame & ~(kPagesPerHuge - 1)) == cached.frame;
        } else {
          valid = frame == cached.frame;
        }
        stamp.guest_gen = guest_table_->generation(region);
        stamp.host_region = guest->frame >> kHugeOrder;
        stamp.host_gen = host_table_->generation(stamp.host_region);
      }
    }
    if (valid) {
      stamp.well_aligned = aligned;
      tlb_.RestampHit(stamp);
      if constexpr (kBatched) {
        if (cached.size == base::PageSize::kHuge) {
          ArmMemo(region, stamp);
        }
      }
      result.tlb_hit = true;
      result.cycles = config_.tlb_hit_cycles;
      translation_cycles_ += result.cycles;
      result.frame = frame;
      result.well_aligned_huge = aligned;
      return result;
    }
    tlb_.DiscountStaleHit();
    tlb_.ShootdownPage(vpn);
  }

  // TLB miss: walk.
  if constexpr (kBatched) {
    plan_wanted_ = true;  // this batch has walks: prefetch lookahead helps
  }
  // The walker's memo line for this region will be probed right after the
  // table lookups; starting its fill now overlaps it with both of them.
  // (Prefetching before the TLB probe was measured and lost: it taxes the
  // hit path, which outnumbers misses everywhere but miss_heavy.)
  walker_.PrefetchMemo(region);
  if (!guest_fetched) {
    if constexpr (kBatched) {
      guest = BatchedGuestWalk(vpn);
    } else {
      guest = guest_table_->Lookup(vpn);
    }
  }
  if (!guest.has_value()) {
    result.status = TranslateStatus::kGuestFault;
    result.fault_page = vpn;
    tlb_.UncountFaultMiss();  // the retried access will count
    return result;
  }
  // Start the host-dimension line fills (route word, then frame cell)
  // before the guest-side bookkeeping: the host lookup is the next
  // dependent far load, and the access bump is independent work that can
  // execute under it.
  if (host_table_ != nullptr) {
    host_table_->PrefetchPage(guest->frame);
  }
  guest_table_->BumpAccess(region);

  if (host_table_ == nullptr) {
    const WalkResult walk = walker_.NativeWalk(vpn, guest->size);
    result.frame = guest->frame;
    result.cycles = walk.cycles;
    translation_cycles_ += result.cycles;
    const bool huge = guest->size == base::PageSize::kHuge;
    result.well_aligned_huge = huge;
    Tlb::Stamp stamp;
    stamp.guest_gen = guest_table_->generation(region);
    stamp.well_aligned = huge;
    tlb_.InsertMiss(vpn, guest->size,
                huge ? (guest->frame & ~(kPagesPerHuge - 1)) : guest->frame,
                stamp);
    if constexpr (kBatched) {
      if (huge) {
        ArmMemo(region, stamp);
      }
    }
    return result;
  }

  if (!host_fetched) {
    host = host_table_->Lookup(guest->frame);
  }
  if (!host.has_value()) {
    result.status = TranslateStatus::kHostFault;
    result.fault_page = guest->frame;
    tlb_.UncountFaultMiss();  // the retried access will count
    return result;
  }
  host_table_->BumpAccess(guest->frame >> kHugeOrder);

  const WalkResult walk =
      walker_.NestedWalk(vpn, guest->size, guest->frame, host->size);
  result.frame = host->frame;
  result.cycles = walk.cycles;
  translation_cycles_ += result.cycles;

  // The well-alignment rule: only a huge guest page backed by a huge host
  // page yields a combined translation at 2 MiB granularity.  (A guest huge
  // leaf always targets a huge-aligned GPA block, and MapHuge guarantees a
  // huge host leaf targets a huge-aligned HPA block, so size agreement is
  // sufficient for offset coherence.)
  const bool aligned = guest->size == base::PageSize::kHuge &&
                       host->size == base::PageSize::kHuge;
  result.well_aligned_huge = aligned;
  Tlb::Stamp stamp;
  stamp.guest_gen = guest_table_->generation(region);
  stamp.host_region = guest->frame >> kHugeOrder;
  stamp.host_gen = host_table_->generation(stamp.host_region);
  stamp.well_aligned = aligned;
  if (aligned) {
    tlb_.InsertMiss(vpn, base::PageSize::kHuge,
                host->frame & ~(kPagesPerHuge - 1), stamp);
    if constexpr (kBatched) {
      ArmMemo(region, stamp);
    }
  } else {
    tlb_.InsertMiss(vpn, base::PageSize::kBase, host->frame, stamp);
  }
  return result;
}

void TranslationEngine::PlanFar(uint64_t vpn, size_t pos) {
  PlanSlot& slot = plan_ring_[pos & (kPlanRing - 1)];
  slot.vpn = ~0ull;
  const uint64_t region = vpn >> kHugeOrder;
  // Classify the position once, here: an access the memo or the TLB will
  // absorb needs no walk planning, and the Probe doubles as the prefetch
  // of the very tag lines the real probe will scan.  The verdict is
  // advisory (state can move before the access executes; a wrong skip only
  // costs an unplanned slow path), so the later stages trust it and
  // early-out on slot.skip instead of re-deciding.
  slot.skip = MemoValid(memo_[region & (kMemoSlots - 1)], region) ||
              tlb_.Probe(vpn);
  if (slot.skip) {
    return;
  }
  guest_table_->PrefetchRegion(region);
}

void TranslationEngine::PlanMid(uint64_t vpn, size_t pos) const {
  if (plan_ring_[pos & (kPlanRing - 1)].skip) {
    return;
  }
  // Reads the guest region slot (pulled by PlanFar) and prefetches the
  // frame-array line the walk will read.
  guest_table_->PrefetchPage(vpn);
}

void TranslationEngine::PlanNear(uint64_t vpn, size_t pos) {
  PlanSlot& slot = plan_ring_[pos & (kPlanRing - 1)];
  if (slot.skip) {
    return;
  }
  // Side-walk the guest layer (const, no side effects; its lines were
  // pulled by the far/mid stages), record the result for the real
  // translation to reuse, and pull the host region-slot line.
  slot.guest = guest_table_->Lookup(vpn);
  slot.guest_muts = guest_table_->mutations();
  slot.vpn = vpn;
  if (slot.guest.has_value() && host_table_ != nullptr) {
    host_table_->PrefetchRegion(slot.guest->frame >> kHugeOrder);
  }
}

void TranslationEngine::PlanLast(size_t pos) const {
  const PlanSlot& slot = plan_ring_[pos & (kPlanRing - 1)];
  if (slot.vpn != ~0ull && slot.guest.has_value() && host_table_ != nullptr) {
    // Reads the host region slot (pulled by PlanNear) and prefetches the
    // host frame-array line — the final link of the nested-walk chain.
    host_table_->PrefetchPage(slot.guest->frame);
  }
}

std::optional<Translation> TranslationEngine::BatchedGuestWalk(
    uint64_t vpn) const {
  const PlanSlot& slot = plan_ring_[batch_pos_ & (kPlanRing - 1)];
  if (slot.vpn == vpn && slot.guest_muts == guest_table_->mutations()) {
    return slot.guest;
  }
  // Unplanned position (pipeline not armed yet, fault-retry drift, or a
  // mutation since the side-walk): walk for real.
  return guest_table_->Lookup(vpn);
}

void TranslationEngine::BeginBatch(std::span<const uint64_t> vpns) {
  plan_window_ = vpns;
  batch_pos_ = 0;
  plan_far_pos_ = 0;
  plan_mid_pos_ = 0;
  plan_near_pos_ = 0;
  plan_last_pos_ = 0;
  plan_enabled_ = false;
  plan_wanted_ = false;
  batch_run_region_ = ~0ull;
  if (vpns.empty()) {
    return;
  }
  ++batch_stats_.batches;
  batch_stats_.batched_translations += vpns.size();
  uint32_t bucket = 0;
  for (size_t n = vpns.size(); n > 1 && bucket < 7; n >>= 1) {
    ++bucket;
  }
  ++batch_stats_.size_hist[bucket];
}

TranslateResult TranslationEngine::TranslateBatched(uint64_t vpn) {
  const uint64_t region = vpn >> kHugeOrder;
  if (region != batch_run_region_) {
    batch_run_region_ = region;
    ++batch_stats_.region_groups;
  }
  // Advance the prefetch pipeline one step ahead of execution.  The
  // cursors are advisory: fault retries repeat a vpn without repeating the
  // plan, which only shifts the lookahead distance, never correctness.
  // Stage order matters within a call only in that PlanNear fills the gfn
  // ring slots PlanLast later reads, and the near cursor always leads.
  if (plan_enabled_) {
    const size_t end = plan_window_.size();
    if (plan_far_pos_ < end) {
      PlanFar(plan_window_[plan_far_pos_], plan_far_pos_);
      ++plan_far_pos_;
    }
    if (plan_mid_pos_ < end) {
      PlanMid(plan_window_[plan_mid_pos_], plan_mid_pos_);
      ++plan_mid_pos_;
    }
    if (plan_near_pos_ < end) {
      PlanNear(plan_window_[plan_near_pos_], plan_near_pos_);
      ++plan_near_pos_;
    }
    if (plan_last_pos_ < plan_near_pos_) {
      PlanLast(plan_last_pos_++);
    }
  }
  const TranslateResult result = TranslateImpl<true>(vpn);
  if (plan_wanted_ && !plan_enabled_) {
    // First real miss of the batch: arm the pipeline and run its prologue
    // over the next few window entries so lookahead is established before
    // the next access executes.  Each stage starts at its own depth; the
    // near stage runs before the last stage so ring slots are filled
    // before they are read.
    plan_enabled_ = true;
    const size_t next = std::min(batch_pos_ + 1, plan_window_.size());
    plan_far_pos_ = next;
    plan_mid_pos_ = next;
    plan_near_pos_ = next;
    plan_last_pos_ = next;
    const size_t far_end = std::min(plan_window_.size(), next + kPlanFar);
    while (plan_far_pos_ < far_end) {
      PlanFar(plan_window_[plan_far_pos_], plan_far_pos_);
      ++plan_far_pos_;
    }
    const size_t mid_end = std::min(plan_window_.size(), next + kPlanMid);
    while (plan_mid_pos_ < mid_end) {
      PlanMid(plan_window_[plan_mid_pos_], plan_mid_pos_);
      ++plan_mid_pos_;
    }
    const size_t near_end = std::min(plan_window_.size(), next + kPlanNear);
    while (plan_near_pos_ < near_end) {
      PlanNear(plan_window_[plan_near_pos_], plan_near_pos_);
      ++plan_near_pos_;
    }
    const size_t last_end = std::min(plan_near_pos_, next + kPlanLast);
    while (plan_last_pos_ < last_end) {
      PlanLast(plan_last_pos_++);
    }
  }
  ++batch_pos_;
  if (result.status == TranslateStatus::kOk) {
    latency_hist_.Add(result.cycles);
  }
  return result;
}

size_t TranslationEngine::TranslateBatch(std::span<const uint64_t> vpns,
                                         TranslateResult* out) {
  BeginBatch(vpns);
  for (size_t i = 0; i < vpns.size(); ++i) {
    out[i] = TranslateBatched(vpns[i]);
    if (out[i].status != TranslateStatus::kOk) {
      return i;
    }
  }
  return vpns.size();
}

void TranslationEngine::FlushAll() {
  tlb_.Flush();
  walker_.Flush();
}

void TranslationEngine::ResetCounters() {
  translations_ = 0;
  translation_cycles_ = 0;
  tlb_.ResetCounters();
  walker_.ResetStats();
  batch_stats_ = BatchStats{};
  latency_hist_ = base::Log2Histogram{};
}

}  // namespace mmu
