#include "mmu/translation_engine.h"

#include "base/check.h"

namespace mmu {

using base::kHugeOrder;
using base::kPagesPerHuge;

TranslationEngine::TranslationEngine(const Config& config,
                                     PageTable* guest_table,
                                     PageTable* host_table)
    : config_(config),
      guest_table_(guest_table),
      host_table_(host_table),
      tlb_(config.tlb),
      walker_(config.walker) {
  SIM_CHECK(guest_table_ != nullptr);
}

TranslateResult TranslationEngine::Translate(uint64_t vpn) {
  ++translations_;
  TranslateResult result;

  const Tlb::LookupResult cached = tlb_.Lookup(vpn);
  if (cached.hit) {
    // Validate the cached translation against the live tables.  Hardware
    // achieves the same with precise invalidation (INVLPG, tagged INVEPT);
    // the simulator re-derives and drops the entry if the kernels remapped
    // underneath it.
    const auto guest = guest_table_->Lookup(vpn);
    bool valid = guest.has_value();
    uint64_t frame = 0;
    bool aligned = false;
    if (valid && host_table_ == nullptr) {
      frame = guest->frame;
      aligned = guest->size == base::PageSize::kHuge;
      if (cached.size == base::PageSize::kHuge) {
        valid = aligned && (frame & ~(kPagesPerHuge - 1)) == cached.frame;
      } else {
        valid = frame == cached.frame;
      }
    } else if (valid) {
      const auto host = host_table_->Lookup(guest->frame);
      valid = host.has_value();
      if (valid) {
        frame = host->frame;
        aligned = guest->size == base::PageSize::kHuge &&
                  host->size == base::PageSize::kHuge;
        if (cached.size == base::PageSize::kHuge) {
          valid = aligned && (frame & ~(kPagesPerHuge - 1)) == cached.frame;
        } else {
          valid = frame == cached.frame;
        }
      }
    }
    if (valid) {
      result.tlb_hit = true;
      result.cycles = config_.tlb_hit_cycles;
      translation_cycles_ += result.cycles;
      result.frame = frame;
      result.well_aligned_huge = aligned;
      return result;
    }
    tlb_.DiscountStaleHit();
    tlb_.ShootdownPage(vpn);
  }

  // TLB miss: walk.
  const uint64_t region = vpn >> kHugeOrder;
  const auto guest = guest_table_->Lookup(vpn);
  if (!guest.has_value()) {
    result.status = TranslateStatus::kGuestFault;
    result.fault_page = vpn;
    tlb_.UncountFaultMiss();  // the retried access will count
    return result;
  }
  guest_table_->BumpAccess(region);

  if (host_table_ == nullptr) {
    const WalkResult walk = walker_.NativeWalk(vpn, guest->size);
    result.frame = guest->frame;
    result.cycles = walk.cycles;
    translation_cycles_ += result.cycles;
    result.well_aligned_huge = guest->size == base::PageSize::kHuge;
    tlb_.Insert(vpn, guest->size,
                guest->size == base::PageSize::kHuge
                    ? (guest->frame & ~(kPagesPerHuge - 1))
                    : guest->frame);
    return result;
  }

  const auto host = host_table_->Lookup(guest->frame);
  if (!host.has_value()) {
    result.status = TranslateStatus::kHostFault;
    result.fault_page = guest->frame;
    tlb_.UncountFaultMiss();  // the retried access will count
    return result;
  }
  host_table_->BumpAccess(guest->frame >> kHugeOrder);

  const WalkResult walk =
      walker_.NestedWalk(vpn, guest->size, guest->frame, host->size);
  result.frame = host->frame;
  result.cycles = walk.cycles;
  translation_cycles_ += result.cycles;

  // The well-alignment rule: only a huge guest page backed by a huge host
  // page yields a combined translation at 2 MiB granularity.  (A guest huge
  // leaf always targets a huge-aligned GPA block, and MapHuge guarantees a
  // huge host leaf targets a huge-aligned HPA block, so size agreement is
  // sufficient for offset coherence.)
  const bool aligned = guest->size == base::PageSize::kHuge &&
                       host->size == base::PageSize::kHuge;
  result.well_aligned_huge = aligned;
  if (aligned) {
    tlb_.Insert(vpn, base::PageSize::kHuge,
                host->frame & ~(kPagesPerHuge - 1));
  } else {
    tlb_.Insert(vpn, base::PageSize::kBase, host->frame);
  }
  return result;
}

void TranslationEngine::FlushAll() {
  tlb_.Flush();
  walker_.Flush();
}

void TranslationEngine::ResetCounters() {
  translations_ = 0;
  translation_cycles_ = 0;
  tlb_.ResetCounters();
}

}  // namespace mmu
