#include "mmu/tlb_domain.h"

#include <algorithm>

#include "base/check.h"

namespace mmu {

const char* TlbShareModeName(TlbShareMode mode) {
  switch (mode) {
    case TlbShareMode::kPrivate:
      return "private";
    case TlbShareMode::kShared:
      return "shared";
    case TlbShareMode::kPartitioned:
      return "partitioned";
    case TlbShareMode::kDynamic:
      return "dynamic";
  }
  return "?";
}

TlbDomain::TlbDomain(const TlbDomainConfig& config) : config_(config) {
  if (config_.mode == TlbShareMode::kPartitioned ||
      config_.mode == TlbShareMode::kDynamic) {
    SIM_CHECK(PartitionWays() > 0);
  }
}

uint32_t TlbDomain::PartitionWays() const {
  if (config_.partition_ways != 0) {
    return config_.partition_ways;
  }
  SIM_CHECK(config_.expected_vms > 0);
  return config_.tlb.ways / config_.expected_vms;
}

TlbView TlbDomain::AddVm(uint16_t vmid) {
  if (config_.mode == TlbShareMode::kPrivate) {
    if (private_tlbs_.size() <= vmid) {
      private_tlbs_.resize(vmid + 1);
    }
    SIM_CHECK(private_tlbs_[vmid] == nullptr);
    private_tlbs_[vmid] = std::make_unique<Tlb>(config_.tlb);
    private_tlbs_[vmid]->RegisterVm(vmid);
    return TlbView(private_tlbs_[vmid].get(), vmid, /*exclusive=*/true);
  }
  if (shared_ == nullptr) {
    shared_ = std::make_unique<Tlb>(config_.tlb);
    TlbUtilityMonitor::Config mc;
    mc.sets = config_.tlb.sets;
    mc.ways = config_.tlb.ways;
    // Tiny test geometries can have fewer sets than the default stride.
    mc.sample_stride = std::min(mc.sample_stride, mc.sets);
    monitor_ = std::make_unique<TlbUtilityMonitor>(mc);
    shared_->AttachUtilityMonitor(monitor_.get());
  }
  shared_->RegisterVm(vmid);
  monitor_->RegisterVm(vmid);
  if (config_.mode == TlbShareMode::kPartitioned) {
    const uint32_t k = PartitionWays();
    const uint32_t begin = static_cast<uint32_t>(vmid) * k;
    SIM_CHECK(begin + k <= config_.tlb.ways);
    shared_->SetVmWays(vmid, begin, k);
  }
  if (config_.mode == TlbShareMode::kDynamic) {
    if (repartitioner_ == nullptr) {
      TlbRepartitioner::Config rc;
      rc.min_ways = config_.repart_min_ways;
      rc.hysteresis = config_.repart_hysteresis;
      repartitioner_ =
          std::make_unique<TlbRepartitioner>(shared_.get(), monitor_.get(), rc);
    }
    const auto it = std::lower_bound(vm_ids_.begin(), vm_ids_.end(), vmid);
    if (it == vm_ids_.end() || *it != vmid) {
      vm_ids_.insert(it, vmid);  // re-registering a vmid keeps one slot
    }
    // Boot split: re-tile the even layout over the *current* tenant set,
    // so late arrivals fit regardless of expected_vms (the repartitioner
    // owns the boundaries from the next tick on).  The first ways%n VMs
    // absorb the remainder — the allocator's lower-id tie-break.  An
    // earlier VM's entries stranded outside its shrunken window stay
    // probe-visible; the next applied repartition drops them.
    const uint32_t n = static_cast<uint32_t>(vm_ids_.size());
    SIM_CHECK(n <= config_.tlb.ways);
    const uint32_t k = config_.tlb.ways / n;
    const uint32_t extra = config_.tlb.ways % n;
    uint32_t begin = 0;
    for (uint32_t i = 0; i < n; ++i) {
      const uint32_t w = k + (i < extra ? 1 : 0);
      shared_->SetVmWays(vm_ids_[i], begin, w);
      begin += w;
    }
  }
  return TlbView(shared_.get(), vmid, /*exclusive=*/false);
}

void TlbDomain::RepartitionTick() {
  SIM_CHECK(config_.mode == TlbShareMode::kDynamic);
  if (repartitioner_ != nullptr) {
    repartitioner_->Tick(vm_ids_);
  }
}

TlbEpochStage* TlbDomain::EpochStage(uint16_t vmid) {
  SIM_CHECK(config_.mode != TlbShareMode::kPrivate);
  SIM_CHECK(shared_ != nullptr);
  if (stages_.size() <= vmid) {
    stages_.resize(vmid + 1);
  }
  if (stages_[vmid] == nullptr) {
    stages_[vmid] = std::make_unique<TlbEpochStage>(shared_.get(), vmid);
  }
  return stages_[vmid].get();
}

uint32_t TlbDomain::InvalidateVm(uint16_t vmid) {
  if (config_.mode == TlbShareMode::kPrivate) {
    SIM_CHECK(vmid < private_tlbs_.size() &&
              private_tlbs_[vmid] != nullptr);
    return private_tlbs_[vmid]->InvalidateVm(vmid);
  }
  SIM_CHECK(shared_ != nullptr);
  return shared_->InvalidateVm(vmid);
}

}  // namespace mmu
