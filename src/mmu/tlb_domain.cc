#include "mmu/tlb_domain.h"

#include <algorithm>

#include "base/check.h"

namespace mmu {

const char* TlbShareModeName(TlbShareMode mode) {
  switch (mode) {
    case TlbShareMode::kPrivate:
      return "private";
    case TlbShareMode::kShared:
      return "shared";
    case TlbShareMode::kPartitioned:
      return "partitioned";
  }
  return "?";
}

TlbDomain::TlbDomain(const TlbDomainConfig& config) : config_(config) {
  if (config_.mode == TlbShareMode::kPartitioned) {
    SIM_CHECK(PartitionWays() > 0);
  }
}

uint32_t TlbDomain::PartitionWays() const {
  if (config_.partition_ways != 0) {
    return config_.partition_ways;
  }
  SIM_CHECK(config_.expected_vms > 0);
  return config_.tlb.ways / config_.expected_vms;
}

TlbView TlbDomain::AddVm(uint16_t vmid) {
  if (config_.mode == TlbShareMode::kPrivate) {
    if (private_tlbs_.size() <= vmid) {
      private_tlbs_.resize(vmid + 1);
    }
    SIM_CHECK(private_tlbs_[vmid] == nullptr);
    private_tlbs_[vmid] = std::make_unique<Tlb>(config_.tlb);
    private_tlbs_[vmid]->RegisterVm(vmid);
    return TlbView(private_tlbs_[vmid].get(), vmid, /*exclusive=*/true);
  }
  if (shared_ == nullptr) {
    shared_ = std::make_unique<Tlb>(config_.tlb);
    TlbUtilityMonitor::Config mc;
    mc.sets = config_.tlb.sets;
    mc.ways = config_.tlb.ways;
    // Tiny test geometries can have fewer sets than the default stride.
    mc.sample_stride = std::min(mc.sample_stride, mc.sets);
    monitor_ = std::make_unique<TlbUtilityMonitor>(mc);
    shared_->AttachUtilityMonitor(monitor_.get());
  }
  shared_->RegisterVm(vmid);
  monitor_->RegisterVm(vmid);
  if (config_.mode == TlbShareMode::kPartitioned) {
    const uint32_t k = PartitionWays();
    const uint32_t begin = static_cast<uint32_t>(vmid) * k;
    SIM_CHECK(begin + k <= config_.tlb.ways);
    shared_->SetVmWays(vmid, begin, k);
  }
  return TlbView(shared_.get(), vmid, /*exclusive=*/false);
}

TlbEpochStage* TlbDomain::EpochStage(uint16_t vmid) {
  SIM_CHECK(config_.mode != TlbShareMode::kPrivate);
  SIM_CHECK(shared_ != nullptr);
  if (stages_.size() <= vmid) {
    stages_.resize(vmid + 1);
  }
  if (stages_[vmid] == nullptr) {
    stages_[vmid] = std::make_unique<TlbEpochStage>(shared_.get(), vmid);
  }
  return stages_[vmid].get();
}

uint32_t TlbDomain::InvalidateVm(uint16_t vmid) {
  if (config_.mode == TlbShareMode::kPrivate) {
    SIM_CHECK(vmid < private_tlbs_.size() &&
              private_tlbs_[vmid] != nullptr);
    return private_tlbs_[vmid]->InvalidateVm(vmid);
  }
  SIM_CHECK(shared_ != nullptr);
  return shared_->InvalidateVm(vmid);
}

}  // namespace mmu
