// Per-VMID TLB utility monitor + who-displaced-whom miss attribution.
//
// Two questions a shared (or way-partitioned) TLB array raises that the
// physical counters cannot answer:
//
//   1. *Utility*: how many ways does VM v actually need?  ("Would v hit
//      more with w ways?" — the marginal-utility curve a UCP-style
//      repartitioner allocates from.)
//   2. *Attribution*: when v misses, whose fault is it?  A miss on a key
//      whose entry was evicted by VM e's insert is interference caused by
//      e; a miss on a key v itself evicted is v's own capacity pressure.
//
// The monitor answers both with two deterministic side structures, both
// pure functions of the access stream (no clocks, no randomness):
//
//   * Shadow-tag sampler (UMON-style).  For a deterministic subset of
//     sets — every `sample_stride`-th set — each VM gets a private
//     full-associativity LRU stack of depth `ways` (the physical
//     associativity).  Every access that lands in a sampled set walks the
//     VM's stack: a match at depth d means "v would have hit here with
//     d+1 or more ways" and increments way_hits[d]; no match is a shadow
//     miss (v would miss at any way count).  The stack-depth histogram
//     IS the utility curve: cum(way_hits[0..w-1]) / sampled accesses is
//     the hit rate v would see with w ways to itself.  Because the stack
//     is per-VM, the curve is free of interference — it describes v's own
//     reuse, which is exactly what a partitioner must compare across VMs.
//
//   * Displaced-record table.  When the physical array evicts a valid
//     entry, the victim's full tag and the inserting VM's id are recorded
//     in a direct-mapped table.  A later physical miss probes the table
//     (huge key first, base key second — mirroring Lookup): a full-tag
//     match proves this very translation was displaced, the recorded
//     evictor is charged in the NxN matrix, and the record is consumed.
//     Full-tag matching means attribution has no false positives; a
//     record lost to table aliasing only degrades to "unattributed", so
//     the matrix is a lower bound on interference.  Records are cleared
//     when their key is shot down, selectively invalidated, flushed, or
//     re-inserted — a dropped *mapping* must not masquerade as
//     displacement later.
//
// Determinism: sampled-set selection is a fixed stride (not random), the
// stacks and table are updated by the access stream only, and every
// structure is fixed-size — so all counters are byte-reproducible for a
// given (workload, seed), at any GEMINI_JOBS / GEMINI_BATCH setting.
//
// The monitor is attached to a `Tlb` by the owning `TlbDomain` in shared
// and partitioned modes only; in private mode the pointer stays null and
// every hook is skipped, which keeps the historical fast path (and the
// private-mode goldens) untouched.
//
// Accounting edge: the engine uncounts a miss whose walk faulted (the
// retried access recounts it).  An attribution made on the faulting
// attempt stands — the retry re-misses and is the counted miss the
// attribution belongs to — so displaced_by totals still reconcile with
// counted misses.
#ifndef SRC_MMU_TLB_UTILITY_MONITOR_H_
#define SRC_MMU_TLB_UTILITY_MONITOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/types.h"

namespace mmu {

class TlbUtilityMonitor {
 public:
  struct Config {
    // Physical geometry; must match the monitored Tlb.
    uint32_t sets = 128;
    uint32_t ways = 12;
    // Shadow-tag every stride-th set (power of two, <= sets).  1 shadows
    // every set (the brute-force reference configuration tests use).
    uint32_t sample_stride = 8;
    // Direct-mapped displaced-record slots (power of two).
    uint32_t displaced_slots = 8192;
  };

  explicit TlbUtilityMonitor(const Config& config);

  // Ensures per-VM structures exist (idempotent; also grown lazily).
  void RegisterVm(uint16_t vmid);

  // --- hooks called by Tlb ----------------------------------------------
  // A probe of (key, size) by `vmid` hit.  Updates the VM's shadow stack
  // if the key's set is sampled.
  void OnAccess(uint64_t key, base::PageSize size, uint16_t vmid);
  // (key, size) was installed for `vmid`.  Shadow access, plus clears any
  // stale displaced record for the key (the mapping is present again).
  void OnInsert(uint64_t key, base::PageSize size, uint16_t vmid);
  // The array evicted victim's valid (key, size) entry to make room for an
  // insert by `evictor_vmid`.  Records the displacement.
  void OnEviction(uint64_t key, base::PageSize size, uint16_t victim_vmid,
                  uint16_t evictor_vmid);
  // A physical miss of `vpn` under `vmid`: consume a displaced record for
  // its huge or base key if one exists, charge matrix[vmid][evictor], and
  // return the evictor vmid; -1 if the miss is unattributed.
  int32_t AttributeMiss(uint64_t vpn, uint16_t vmid);
  // Precise invalidations: the named translations are gone for reasons
  // that are nobody's displacement — drop matching shadow entries and
  // displaced records so later cold misses are not mis-charged.
  void OnShootdown(uint64_t vpn, uint16_t vmid);
  void OnShootdownRange(uint64_t vpn, uint64_t pages, uint16_t vmid);
  void OnInvalidateVm(uint16_t vmid);
  void OnFlush();

  // --- results ----------------------------------------------------------
  struct VmUtility {
    // way_hits[d]: sampled accesses that hit the shadow stack at depth d
    // (the VM would hit with d+1 ways).  Size = physical ways.
    std::vector<uint64_t> way_hits;
    // Sampled accesses that missed the full-depth stack.
    uint64_t shadow_misses = 0;

    uint64_t shadow_hits() const {
      uint64_t total = 0;
      for (const uint64_t h : way_hits) {
        total += h;
      }
      return total;
    }
    uint64_t sampled_accesses() const { return shadow_hits() + shadow_misses; }
  };

  // Zero-valued reference for a vmid never registered or used.
  const VmUtility& utility(uint16_t vmid) const;
  // Misses of `victim_vmid` attributed to `evictor_vmid`'s inserts.
  uint64_t displaced(uint16_t victim_vmid, uint16_t evictor_vmid) const;
  // Matrix dimension: one past the highest vmid seen.
  uint16_t vm_slots() const { return static_cast<uint16_t>(vms_.size()); }
  // Fraction of sampled accesses that would hit with `ways` ways, 0..1.
  double HitFractionWithWays(uint16_t vmid, uint32_t ways) const;
  // Smallest way count reaching `fraction` of the VM's full-associativity
  // shadow hits; 0 when the VM has no shadow hits.
  uint32_t MinWaysForHitFraction(uint16_t vmid, double fraction) const;

  const Config& config() const { return config_; }

 private:
  struct DisplacedRecord {
    uint64_t tag = 0;      // packed (key, size, victim vmid); 0 = empty
    uint16_t evictor = 0;  // inserting vmid recorded at eviction
  };
  struct VmShadow {
    // stacks[sampled_set]: MRU-ordered packed (key, size), depth <= ways.
    std::vector<std::vector<uint64_t>> stacks;
    VmUtility utility;
  };

  // Same packing discipline as Tlb's way tags: the valid bit makes an
  // empty record slot unmatchable.
  static uint64_t Packed(uint64_t key, base::PageSize size, uint16_t vmid) {
    return (key << 10) | (static_cast<uint64_t>(vmid) << 2) |
           (size == base::PageSize::kHuge ? 2ull : 0ull) | 1ull;
  }
  uint32_t SetIndex(uint64_t key) const {
    return static_cast<uint32_t>(key) & (config_.sets - 1);
  }
  bool Sampled(uint32_t set) const {
    return (set & (config_.sample_stride - 1)) == 0;
  }
  size_t DisplacedSlot(uint64_t key, base::PageSize size,
                       uint16_t vmid) const {
    // Cheap deterministic mix; full-tag compare makes collisions benign.
    const uint64_t h = Packed(key, size, vmid) * 0x9e3779b97f4a7c15ull;
    return static_cast<size_t>(h >> 32) & (config_.displaced_slots - 1);
  }
  VmShadow& Shadow(uint16_t vmid);
  void ShadowAccess(uint64_t key, base::PageSize size, uint16_t vmid);
  void ClearRecord(uint64_t key, base::PageSize size, uint16_t vmid);
  // Consumes the record for (key, size, vmid) if present; returns the
  // evictor or -1.
  int32_t TakeRecord(uint64_t key, base::PageSize size, uint16_t vmid);
  void EnsureMatrix(uint16_t vmid);

  Config config_;
  uint32_t sampled_sets_ = 0;  // sets / sample_stride
  std::vector<VmShadow> vms_;  // indexed by vmid
  std::vector<DisplacedRecord> records_;
  // matrix_[victim * vms_.size() + evictor] is rebuilt (rare) when a new
  // vmid grows the dimension; counts are preserved.
  std::vector<uint64_t> matrix_;
};

}  // namespace mmu

#endif  // SRC_MMU_TLB_UTILITY_MONITOR_H_
