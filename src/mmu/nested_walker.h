// Page-walk cost model for native (1D) and nested (2D) translation.
//
// On a TLB miss in a virtualized system the hardware performs a
// two-dimensional walk (paper §2.1): it walks the guest page table (up to 4
// levels), and every guest-table entry it reads is itself addressed by a
// guest physical address that must be translated through the host (VM) page
// table — up to 4 more references per step — plus a final host walk for the
// data page.  Worst case 4 + 5*4 = 24 memory references, vs. 4 natively.
//
// Three caches shave references off, mirroring hardware:
//  * a guest-dimension page-walk cache (upper GVA directory levels),
//  * a host-dimension page-walk cache (upper GPA directory levels), and
//  * a nested translation cache holding GPA->HPA translations of the guest
//    page-table pages themselves (keyed by the GVA prefix each table page
//    serves), which is what makes most of the 2D walk disappear when
//    accesses have locality.
//
// Huge-page leaves shorten both dimensions: a huge guest leaf removes the
// guest PT level (and the host translations of PT pages); a huge host leaf
// shortens every host walk.  This is the paper's "secondary way" huge pages
// help (§2.2) — note it accrues even to *misaligned* huge pages, which is
// why Misalignment beats Host-B-VM-B slightly while still paying full TLB
// misses.
//
// Walk memo (DESIGN.md §3e).  The guest-dimension half of a 2D walk for a
// 2 MiB region touches a fixed sequence of cache entries: the guest PWC's
// PML4 and PDPT prefixes and the four nested translation caches (PML4,
// PDPT, PD, and — for base leaves — PT).  The walker memoizes, per
// (region, guest leaf) pair, the slots those six probes landed in together
// with each cache's mutation counter at record time.  A later walk of the
// same region re-validates by comparing the counters: equal counters mean
// no key entered or left the cache, so the recorded slots still hold the
// recorded keys and every probe would hit.  The replay then refreshes the
// slots' LRU stamps via PrefixCache::Touch — the *same* stamp writes the
// live probes would have done — and charges the hit costs, skipping the
// hash probes entirely.  The host walk for the data page is never memoized
// (its key is the per-page gfn, not a per-region value).  See DESIGN.md
// §3e for the full equivalence argument.
#ifndef SRC_MMU_NESTED_WALKER_H_
#define SRC_MMU_NESTED_WALKER_H_

#include <array>
#include <cstdint>
#include <vector>

#include "base/types.h"
#include "mmu/page_walk_cache.h"

namespace mmu {

struct WalkerConfig {
  PageWalkCache::Config guest_pwc;
  PageWalkCache::Config host_pwc;
  uint32_t nested_cache_entries = 64;  // per guest-table level
  base::Cycles cycles_per_memory_ref = 50;
  base::Cycles cycles_per_cached_ref = 2;
  // Direct-mapped walk-memo size in regions (power of two); 0 disables
  // memoization.  Purely a simulator-speed knob: results are identical
  // with any value (tests/test_walker.cc pins the differential).
  uint32_t walk_memo_slots = 4096;
};

struct WalkResult {
  uint32_t memory_refs = 0;
  uint32_t cached_refs = 0;
  base::Cycles cycles = 0;
};

// Per-level walk accounting, indexed by page-table level: 0 = L4 (PML4),
// 1 = L3 (PDPT), 2 = L2 (PD), 3 = L1 (PT).  "guest" counts directory/PTE
// reads of the table being walked (the guest dimension of a nested walk,
// or the only dimension of a native walk); "host" counts host-dimension
// reads (translations of guest table pages and of the data page).
// "nested" counts per-level probes of the nested translation caches.
struct WalkLevelStats {
  std::array<uint64_t, 4> guest_mem{};     // guest-dim reads from memory
  std::array<uint64_t, 4> guest_cached{};  // guest-dim reads PWC-served
  std::array<uint64_t, 4> host_mem{};      // host-dim reads from memory
  std::array<uint64_t, 4> host_cached{};   // host-dim reads PWC-served
  std::array<uint64_t, 4> nested_hit{};    // table-page translation cached
  std::array<uint64_t, 4> nested_walk{};   // table-page translation walked
  uint64_t memo_hits = 0;        // full replay, all guest levels
  uint64_t memo_upper_hits = 0;  // upper levels replayed, PT probe live
};

class NestedWalker {
 public:
  explicit NestedWalker(const WalkerConfig& config);

  // 1D walk (native mode): walks one table for `vpn` with the given leaf
  // size.
  WalkResult NativeWalk(uint64_t vpn, base::PageSize leaf_size);

  // 2D walk (virtualized): walks the guest table for `vpn` (guest leaf
  // size `guest_leaf`), translating table pages and the final data page
  // (`gfn`, host leaf size `host_leaf`) through the host dimension.
  WalkResult NestedWalk(uint64_t vpn, base::PageSize guest_leaf, uint64_t gfn,
                        base::PageSize host_leaf);

  void Flush();

  // Advisory warm-up of the memo line a NestedWalk of this region would
  // probe (one cache line per entry by construction); no observable state.
  void PrefetchMemo(uint64_t region) const {
    if (!memo_.empty()) {
      __builtin_prefetch(&memo_[region & (memo_.size() - 1)], 0, 1);
    }
  }

  // Per-level walk accounting.  Replayed (memoized) walks touch a *fixed*
  // set of levels per (leaf size, replay kind), so the hot path only bumps
  // one replay counter and the per-level attribution is reconstructed
  // here; the result is identical to incrementing the arrays live.
  WalkLevelStats stats() const;
  void ResetStats() {
    stats_ = WalkLevelStats{};
    memo_hits_huge_ = 0;
    memo_hits_base_ = 0;
  }

 private:
  // Number of cache references a walk memo records: guest PWC PML4/PDPT
  // plus nested PML4/PDPT/PD (always) and nested PT (base leaves only).
  static constexpr uint32_t kMemoUpperRefs = 5;
  static constexpr uint32_t kMemoRefs = 6;
  static constexpr uint32_t kNoRegion = ~0u;

  // One memo entry, packed into a single cache line: the memo probe is on
  // the miss path's critical chain, so it must cost one line fill, not
  // two.  Regions are 32-bit (simulated address spaces are dense; a region
  // >= kNoRegion simply bypasses the memo), slots are 16-bit (cache
  // capacities are checked <= 2^16 at construction), and mutation counters
  // are validated through their low 32 bits — a false match would need
  // exactly 2^32 key-set changes on one cache between record and replay,
  // beyond any simulated run by orders of magnitude.
  struct alignas(64) Memo {
    uint32_t region = kNoRegion;
    uint8_t guest_leaf = 0;                   // base::PageSize as a byte
    std::array<uint16_t, kMemoRefs> slots{};  // where each probe landed
    std::array<uint32_t, kMemoRefs> muts{};   // low 32 mutation bits
  };
  static_assert(sizeof(Memo) == 64, "memo entry must stay one cache line");

  // Cost of one host-dimension walk for a guest-table page covering the
  // given GVA prefix; served by the nested cache when warm.  `level` indexes
  // WalkLevelStats::nested_*; the recorded slot is written to *memo_slot.
  void WalkTablePage(PrefixCache& cache, uint64_t key, uint32_t level,
                     WalkResult& out, uint32_t* memo_slot);

  // Charges a host-dimension PWC walk (table page or data page) to `out`
  // and to the host_* level stats.
  void ChargeHostWalk(uint64_t key, base::PageSize leaf, WalkResult& out);

  // The six memoized caches in recording order.
  PrefixCache& MemoCache(uint32_t i);

  WalkerConfig config_;
  PageWalkCache guest_pwc_;
  PageWalkCache host_pwc_;
  // Nested translation caches for guest table pages, by level.  A guest PT
  // page serves 2 MiB of GVA space (vpn >> 9), a PD page 1 GiB (vpn >> 18),
  // a PDPT page 512 GiB (vpn >> 27); the single PML4 page is key 0.
  PrefixCache nested_pt_;
  PrefixCache nested_pd_;
  PrefixCache nested_pdpt_;
  PrefixCache nested_pml4_;
  std::vector<Memo> memo_;  // direct-mapped by region & (slots - 1)
  // Live (non-replayed) per-level counters plus replay tallies; stats()
  // folds the tallies' fixed per-level patterns into the arrays.
  WalkLevelStats stats_;
  uint64_t memo_hits_huge_ = 0;  // full replays with a huge guest leaf
  uint64_t memo_hits_base_ = 0;  // full replays with a base guest leaf
};

}  // namespace mmu

#endif  // SRC_MMU_NESTED_WALKER_H_
