// Page-walk cost model for native (1D) and nested (2D) translation.
//
// On a TLB miss in a virtualized system the hardware performs a
// two-dimensional walk (paper §2.1): it walks the guest page table (up to 4
// levels), and every guest-table entry it reads is itself addressed by a
// guest physical address that must be translated through the host (VM) page
// table — up to 4 more references per step — plus a final host walk for the
// data page.  Worst case 4 + 5*4 = 24 memory references, vs. 4 natively.
//
// Three caches shave references off, mirroring hardware:
//  * a guest-dimension page-walk cache (upper GVA directory levels),
//  * a host-dimension page-walk cache (upper GPA directory levels), and
//  * a nested translation cache holding GPA->HPA translations of the guest
//    page-table pages themselves (keyed by the GVA prefix each table page
//    serves), which is what makes most of the 2D walk disappear when
//    accesses have locality.
//
// Huge-page leaves shorten both dimensions: a huge guest leaf removes the
// guest PT level (and the host translations of PT pages); a huge host leaf
// shortens every host walk.  This is the paper's "secondary way" huge pages
// help (§2.2) — note it accrues even to *misaligned* huge pages, which is
// why Misalignment beats Host-B-VM-B slightly while still paying full TLB
// misses.
#ifndef SRC_MMU_NESTED_WALKER_H_
#define SRC_MMU_NESTED_WALKER_H_

#include <cstdint>

#include "base/types.h"
#include "mmu/page_walk_cache.h"

namespace mmu {

struct WalkerConfig {
  PageWalkCache::Config guest_pwc;
  PageWalkCache::Config host_pwc;
  uint32_t nested_cache_entries = 64;  // per guest-table level
  base::Cycles cycles_per_memory_ref = 50;
  base::Cycles cycles_per_cached_ref = 2;
};

struct WalkResult {
  uint32_t memory_refs = 0;
  uint32_t cached_refs = 0;
  base::Cycles cycles = 0;
};

class NestedWalker {
 public:
  explicit NestedWalker(const WalkerConfig& config);

  // 1D walk (native mode): walks one table for `vpn` with the given leaf
  // size.
  WalkResult NativeWalk(uint64_t vpn, base::PageSize leaf_size);

  // 2D walk (virtualized): walks the guest table for `vpn` (guest leaf
  // size `guest_leaf`), translating table pages and the final data page
  // (`gfn`, host leaf size `host_leaf`) through the host dimension.
  WalkResult NestedWalk(uint64_t vpn, base::PageSize guest_leaf, uint64_t gfn,
                        base::PageSize host_leaf);

  void Flush();

 private:
  // Cost of one host-dimension walk for a guest-table page covering the
  // given GVA prefix; served by the nested cache when warm.
  void WalkTablePage(PrefixCache& cache, uint64_t key, WalkResult& out);

  void Charge(const WalkCost& cost, WalkResult& out);

  WalkerConfig config_;
  PageWalkCache guest_pwc_;
  PageWalkCache host_pwc_;
  // Nested translation caches for guest table pages, by level.  A guest PT
  // page serves 2 MiB of GVA space (vpn >> 9), a PD page 1 GiB (vpn >> 18),
  // a PDPT page 512 GiB (vpn >> 27); the single PML4 page is key 0.
  PrefixCache nested_pt_;
  PrefixCache nested_pd_;
  PrefixCache nested_pdpt_;
  PrefixCache nested_pml4_;
};

}  // namespace mmu

#endif  // SRC_MMU_NESTED_WALKER_H_
