// Per-VM epoch staging for a shared physical TLB array.
//
// The epoch-parallel execution backend (os/machine.h BeginEpoch /
// EpochBarrier, workload/epoch_executor.h) runs the clean translations of
// every VM concurrently within an epoch.  With a private TLB per VM that
// is trivially safe — each lane mutates only its own array — but the
// shared and partitioned arrangements of mmu::TlbDomain put every VM's
// entries, the LRU clock, and the utility monitor in one physical array.
//
// A TlbEpochStage is the thread-confined proxy one VM's TlbView routes
// through while an epoch is open:
//
//   * Reads see the *frozen* physical array (no other lane writes it
//     during the epoch) through an overlay of this VM's own staged
//     inserts, restamps, and shootdown tombstones, so a lane observes its
//     own effects immediately and other VMs' effects only at epoch
//     granularity.
//   * Every counter-moving operation appends an event to a log and bumps
//     a per-VM signed delta (so mid-epoch counter reads — latency-record
//     snapshots — include the lane's own activity).
//   * At the epoch barrier, Machine::EpochBarrier commits the stages in
//     canonical VM-ID order: each Commit() replays the event log onto the
//     live array, driving the real LRU clock, eviction accounting, and
//     utility-monitor hooks exactly as if the lane's operations had run
//     serially at the barrier, after every lower-ID VM's.
//
// The replayed semantics are deterministic at any worker-thread count —
// a lane's log is a pure function of its own access stream and the frozen
// array — which is the whole point: GEMINI_VM_THREADS must be
// unobservable in simulation output (DESIGN.md §3g).  Two deliberate
// deviations from fully-serial execution, identical at every thread
// count: a staged insert does not evict anything until replay (the epoch
// view has unbounded capacity for new entries), and a staged hit whose
// entry was evicted by an earlier replayed insert still counts as a hit
// (the LRU touch is skipped; the next epoch misses and refills).
//
// Kernel-side invalidation (ShootdownRange, InvalidateVm, Flush) never
// goes through a stage: faults, daemons, and teardown are barrier-
// confined by the execution model, and TlbView checks that invariant.
#ifndef SRC_MMU_TLB_EPOCH_STAGE_H_
#define SRC_MMU_TLB_EPOCH_STAGE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/types.h"
#include "mmu/tlb.h"

namespace mmu {

class TlbEpochStage {
 public:
  // `physical` must outlive the stage; `vmid` is fixed for its lifetime.
  TlbEpochStage(Tlb* physical, uint16_t vmid);

  // Opens an epoch: clears the overlay, the event log, and the deltas.
  void BeginEpoch();

  // Replays the event log onto the physical array in operation order and
  // clears all staged state.  Serial-phase only (the caller guarantees no
  // lane is running).
  void Commit();

  // Signed counter movement staged this epoch, added on top of the frozen
  // physical counters by TlbView's accessors so mid-epoch snapshots see
  // the lane's own activity.  Counters the lane's clean path cannot move
  // directly (evictions, displaced-by attribution) update at Commit.
  struct Deltas {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t stale_drops = 0;
    int64_t shootdowns = 0;
  };
  const Deltas& deltas() const { return deltas_; }

  // --- the TlbView operation surface, vmid bound at construction ---
  Tlb::LookupResult Lookup(uint64_t vpn);
  bool RehitHuge(uint64_t region, Tlb::LookupResult* out);
  bool Probe(uint64_t vpn) const;
  void Insert(uint64_t vpn, base::PageSize size, uint64_t frame,
              const Tlb::Stamp& stamp);
  void RestampHit(const Tlb::Stamp& stamp);
  void DiscountStaleHit();
  void UncountFaultMiss();
  uint32_t ShootdownPage(uint64_t vpn);

  uint16_t vmid() const { return vmid_; }

 private:
  enum class EventKind : uint8_t {
    kHit,        // key: entry key (region for huge, vpn for base)
    kMiss,       // key: the missing vpn (monitor attribution probes by vpn)
    kStale,      // DiscountStaleHit
    kUncount,    // UncountFaultMiss
    kInsert,     // key/frame/stamp: the inserted entry
    kShootdown,  // key: the shot-down vpn
    kRestamp,    // key/stamp: entry restamped in place
  };
  struct Event {
    EventKind kind;
    base::PageSize size;
    uint64_t key;
    uint64_t frame;
    Tlb::Stamp stamp;
  };
  // Overlay over the frozen array: present=false is a tombstone (the
  // lane shot the entry down this epoch).
  struct Overlay {
    bool present = false;
    uint64_t frame = 0;
    Tlb::Stamp stamp;
  };
  static uint64_t OverlayKey(uint64_t key, base::PageSize size) {
    return (key << 1) | (size == base::PageSize::kHuge ? 1ull : 0ull);
  }
  // Epoch-visible presence of (key, size): overlay first, then the frozen
  // physical array.  Fills frame/stamp on true.
  bool ProbeOne(uint64_t key, base::PageSize size, uint64_t* frame,
                Tlb::Stamp* stamp) const;
  void LogHit(uint64_t key, base::PageSize size);

  Tlb* physical_;
  uint16_t vmid_;
  std::unordered_map<uint64_t, Overlay> overlay_;
  std::vector<Event> events_;
  Deltas deltas_;
  // Entry the most recent staged Lookup/RehitHuge hit (for RestampHit).
  bool last_was_hit_ = false;
  uint64_t last_hit_key_ = 0;
  base::PageSize last_hit_size_ = base::PageSize::kBase;
};

}  // namespace mmu

#endif  // SRC_MMU_TLB_EPOCH_STAGE_H_
