#include "workload/workload.h"

// WorkloadSpec is a plain aggregate; this TU anchors the target.
