#include "workload/epoch_executor.h"

#include <algorithm>
#include <cstdlib>

#include "base/check.h"

namespace workload {

namespace {

uint64_t EnvValue(const char* name, uint64_t fallback) {
  if (const char* env = std::getenv(name); env != nullptr && env[0] != '\0') {
    const uint64_t parsed = std::strtoull(env, nullptr, 10);
    if (parsed > 0) {
      return parsed;
    }
  }
  return fallback;
}

}  // namespace

uint32_t VmThreadsFromEnv() {
  return static_cast<uint32_t>(EnvValue("GEMINI_VM_THREADS", 1));
}

uint64_t VmQuantumFromEnv() {
  return EnvValue("GEMINI_VM_QUANTUM", 256);
}

EpochExecutor::EpochExecutor(osim::Machine* machine,
                             const EpochExecutorOptions& options)
    : machine_(machine), options_(options) {
  SIM_CHECK(machine_ != nullptr);
  threads_ = options_.threads != 0 ? options_.threads : VmThreadsFromEnv();
  quantum_ = options_.quantum != 0 ? options_.quantum : VmQuantumFromEnv();
  SIM_CHECK(threads_ >= 1);
  for (const uint32_t percent : options_.load_phases) {
    SIM_CHECK(percent > 0);
  }
  workers_.reserve(threads_ > 0 ? threads_ - 1 : 0);
  for (uint32_t i = 1; i < threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

EpochExecutor::~EpochExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void EpochExecutor::AddLane(int32_t vm_id, const LaneSpec& spec) {
  Lane lane;
  lane.spec = spec;
  lane.driver = std::make_unique<WorkloadDriver>(machine_, vm_id);
  lanes_.push_back(std::move(lane));
}

uint64_t EpochExecutor::LaneQuantum(const Lane& lane) const {
  if (options_.load_phases.empty()) {
    return quantum_;
  }
  const uint64_t slot =
      (epoch_ / std::max<uint64_t>(options_.load_phase_epochs, 1) +
       lane.spec.phase_offset) %
      options_.load_phases.size();
  return std::max<uint64_t>(1, quantum_ * options_.load_phases[slot] / 100);
}

std::vector<RunResult> EpochExecutor::Run() {
  SIM_CHECK(!lanes_.empty());
  epoch_ = 0;
  std::vector<size_t> active;
  for (;;) {
    // Boot arrivals: Begin maps and populates the lane's VMAs serially.
    bool any_alive = false;
    for (Lane& lane : lanes_) {
      if (lane.state == LaneState::kWaiting &&
          epoch_ >= lane.spec.arrival_epoch) {
        lane.driver->Begin(lane.spec.spec, lane.spec.options);
        lane.state = LaneState::kRunning;
      }
      any_alive |= lane.state != LaneState::kDone;
    }
    if (!any_alive) {
      break;
    }
    active.clear();
    for (size_t i = 0; i < lanes_.size(); ++i) {
      if (lanes_[i].state == LaneState::kRunning) {
        Lane& lane = lanes_[i];
        lane.quantum = LaneQuantum(lane);
        lane.ran = 0;
        lane.suspended = false;
        active.push_back(i);
      }
    }
    if (!active.empty()) {
      machine_->BeginEpoch();
      RunParallelPhase(active);
      machine_->EpochBarrier();
      // Serial phase, canonical lane order: drain suspensions (faults,
      // measurement flips, growth, GC, churn), then retire finished lanes.
      for (const size_t i : active) {
        Lane& lane = lanes_[i];
        parallel_ops_ += lane.ran;
        if (lane.suspended && lane.ran < lane.quantum) {
          serial_ops_ += lane.driver->ResumeSerial(lane.quantum - lane.ran);
        } else if (lane.suspended) {
          // Budget exhausted mid-batch: just complete the parked batch.
          serial_ops_ += lane.driver->ResumeSerial(0);
        }
      }
      for (const size_t i : active) {
        Lane& lane = lanes_[i];
        if (lane.driver->Done()) {
          lane.result = lane.driver->Finish();  // teardown per its options
          lane.state = LaneState::kDone;
        }
      }
    }
    ++epoch_;
  }
  std::vector<RunResult> results;
  results.reserve(lanes_.size());
  for (Lane& lane : lanes_) {
    results.push_back(std::move(lane.result));
  }
  return results;
}

void EpochExecutor::StepLane(size_t index) {
  Lane& lane = lanes_[index];
  lane.ran = lane.driver->StepEpoch(lane.quantum, &lane.suspended);
}

void EpochExecutor::RunParallelPhase(const std::vector<size_t>& active) {
  if (threads_ <= 1 || active.size() <= 1) {
    for (const size_t index : active) {
      StepLane(index);
    }
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    // A straggler from the previous generation may still be inside its
    // (empty) drain; never reset the claim counter under its feet.
    done_cv_.wait(lock, [this] { return active_workers_ == 0; });
    active_ = active;
    next_item_.store(0, std::memory_order_relaxed);
    remaining_ = active.size();
    ++generation_;
  }
  cv_.notify_all();
  DrainItems();  // the main thread is worker 0
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock,
                [this] { return remaining_ == 0 && active_workers_ == 0; });
}

void EpochExecutor::DrainItems() {
  for (;;) {
    const size_t item = next_item_.fetch_add(1, std::memory_order_relaxed);
    if (item >= active_.size()) {
      return;
    }
    StepLane(active_[item]);
    std::lock_guard<std::mutex> lock(mu_);
    if (--remaining_ == 0) {
      done_cv_.notify_all();
    }
  }
}

void EpochExecutor::WorkerLoop() {
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
    if (shutdown_) {
      return;
    }
    seen = generation_;
    ++active_workers_;
    lock.unlock();
    DrainItems();
    lock.lock();
    if (--active_workers_ == 0) {
      done_cv_.notify_all();
    }
  }
}

}  // namespace workload
