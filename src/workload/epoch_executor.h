// Epoch-barriered parallel multi-VM execution (DESIGN.md §3g).
//
// The executor owns one WorkloadDriver per collocated VM ("lane") and runs
// them in lockstep epochs: within an epoch every running lane executes up
// to its operation quantum through Machine::EpochAccessBatch — clean
// translations only, shared machine state frozen — on a persistent worker
// pool; at the epoch barrier the machine commits the per-VM TLB stages in
// canonical VM-ID order, advances the clock, runs due daemons, and the
// executor drains every suspended lane's remainder (faults, driver events
// like churn and GC sweeps) serially, in lane order.  The schedule — which
// ops run in which epoch, which events fire when — depends only on the
// lane specs and the quantum, never on the worker-thread count, so
// simulation output is byte-identical at any GEMINI_VM_THREADS (the
// determinism tests pin this down across all three GEMINI_TLB_MODEs).
//
// Rack-density lifecycle modelling rides on the same epoch clock:
//   * arrival waves — a lane Begins at its arrival_epoch (boot churn),
//     and tears its VMAs down at Finish when its options say so
//     (shutdown churn);
//   * diurnal load — an optional percent table scales each lane's
//     per-epoch quantum, phase-shifted per lane, so collocated tenants
//     peak at different times.
#ifndef SRC_WORKLOAD_EPOCH_EXECUTOR_H_
#define SRC_WORKLOAD_EPOCH_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "workload/driver.h"
#include "workload/workload.h"

namespace workload {

// $GEMINI_VM_THREADS: worker threads for the epoch-parallel phase
// (including the caller's thread).  Default 1 = fully serial execution of
// the identical epoch schedule.
uint32_t VmThreadsFromEnv();
// $GEMINI_VM_QUANTUM: operations per lane per epoch.  Default 256, the
// interleaving grain the serial collocation harness has always used.
uint64_t VmQuantumFromEnv();

struct LaneSpec {
  WorkloadSpec spec;
  DriverOptions options;
  // First epoch this lane runs (boot arrival).  Its Begin — VMA mapping
  // and init population — executes serially at that epoch's start.
  uint64_t arrival_epoch = 0;
  // Phase shift into EpochExecutorOptions::load_phases.
  uint64_t phase_offset = 0;
};

struct EpochExecutorOptions {
  // Operations per lane per epoch; 0 resolves from $GEMINI_VM_QUANTUM.
  uint64_t quantum = 0;
  // Worker threads; 0 resolves from $GEMINI_VM_THREADS.
  uint32_t threads = 0;
  // Diurnal load: percent-of-quantum per phase slot, e.g. {100, 25} halves
  // time between full and quarter load.  Empty = constant load.
  std::vector<uint32_t> load_phases;
  // Epochs per phase slot.
  uint64_t load_phase_epochs = 64;
};

class EpochExecutor {
 public:
  EpochExecutor(osim::Machine* machine, const EpochExecutorOptions& options);
  ~EpochExecutor();

  // Adds a lane driving `vm_id` (an existing VM of the machine).  Results
  // from Run() are in AddLane order.
  void AddLane(int32_t vm_id, const LaneSpec& spec);

  // Runs every lane to completion and returns their results.
  std::vector<RunResult> Run();

  uint64_t epochs() const { return epoch_; }
  uint32_t threads() const { return threads_; }

  // Where the operations ran: the parallel phase (clean translations on
  // worker threads) vs the serial barrier phase (faults, driver events,
  // suspended remainders).  Host-independent — the split is part of the
  // deterministic schedule — so parallel_ops / (parallel_ops + serial_ops)
  // is the honest Amdahl bound on any machine's wall-clock speedup.
  uint64_t parallel_ops() const { return parallel_ops_; }
  uint64_t serial_ops() const { return serial_ops_; }

 private:
  enum class LaneState : uint8_t { kWaiting, kRunning, kDone };
  struct Lane {
    LaneSpec spec;
    std::unique_ptr<WorkloadDriver> driver;
    LaneState state = LaneState::kWaiting;
    // Per-epoch scratch, written only by the worker stepping this lane.
    uint64_t quantum = 0;
    uint64_t ran = 0;
    bool suspended = false;
    RunResult result;
  };

  uint64_t LaneQuantum(const Lane& lane) const;
  void RunParallelPhase(const std::vector<size_t>& active);
  void StepLane(size_t index);
  void WorkerLoop();
  void DrainItems();

  osim::Machine* machine_;
  EpochExecutorOptions options_;
  uint32_t threads_;
  uint64_t quantum_;
  std::vector<Lane> lanes_;
  uint64_t epoch_ = 0;
  uint64_t parallel_ops_ = 0;
  uint64_t serial_ops_ = 0;

  // Persistent worker pool (threads_ - 1 workers; the caller participates).
  // Protocol: the main thread publishes a generation under mu_ — the
  // active-lane list, next_item_ = 0, remaining_ — only once no worker is
  // draining (active_workers_ == 0), so a slow waker can never claim into
  // a half-reset generation.  Items are claimed by atomic fetch_add;
  // remaining_ counts completed items; the phase ends when remaining_ and
  // active_workers_ are both zero.
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;       // workers wait for a new generation
  std::condition_variable done_cv_;  // main waits for phase completion
  uint64_t generation_ = 0;
  bool shutdown_ = false;
  uint32_t active_workers_ = 0;
  size_t remaining_ = 0;
  std::vector<size_t> active_;
  std::atomic<size_t> next_item_{0};
};

}  // namespace workload

#endif  // SRC_WORKLOAD_EPOCH_EXECUTOR_H_
