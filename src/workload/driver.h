// Workload driver: executes a WorkloadSpec against one VM of a machine and
// reports the measurements the paper's figures use (throughput, mean/p99
// latency, TLB misses, well-aligned huge page rate).
//
// Measurement methodology: the first `warmup_fraction` of operations is a
// warm-up excluded from all counters (the paper measures steady state);
// background daemon work is charged into the run's busy time, and for
// latency workloads the daemon work that occurred during a request is added
// to that request's latency (daemons preempt the vCPU they share).
//
// The driver is steppable (Begin / Step / Finish) so the collocated-VM
// experiments (§6.5) can interleave two workloads on one host; Run() is the
// one-shot convenience wrapper.
#ifndef SRC_WORKLOAD_DRIVER_H_
#define SRC_WORKLOAD_DRIVER_H_

#include <memory>
#include <string>
#include <vector>

#include "base/rng.h"
#include "base/stats.h"
#include "metrics/alignment_audit.h"
#include "metrics/counters.h"
#include "os/machine.h"
#include "workload/access_pattern.h"
#include "workload/workload.h"

namespace workload {

struct RunResult {
  std::string workload;
  uint64_t ops = 0;
  uint64_t requests = 0;
  base::Cycles busy_cycles = 0;  // access + sync faults + daemon overhead
  double throughput = 0.0;       // ops per 1000 cycles
  double mean_latency = 0.0;     // cycles per request
  double p99_latency = 0.0;
  uint64_t tlb_hits = 0;
  uint64_t tlb_misses = 0;
  double tlb_miss_rate = 0.0;
  // Measured-phase accesses that took at least one page fault (cold
  // misses): each such access contributes exactly one counted TLB miss,
  // because faulting translate attempts are uncounted and retried.  The
  // fig16 miss-source breakdown classifies misses as cold (this), precise
  // invalidation (stale_hits), or capacity/conflict (the remainder).
  uint64_t faulting_accesses = 0;
  metrics::AlignmentReport alignment;
  metrics::StackSnapshot counters;  // deltas over the measured phase
};

struct DriverOptions {
  uint64_t seed = 7;
  // Fraction of ops excluded from counters as warm-up.  The default
  // measures steady state (PARSEC region-of-interest / TailBench serving
  // phase convention): the initial population of memory and the promotion
  // transient are over before measurement starts.  Set 0 to measure the
  // whole run including transients.
  double warmup_fraction = 0.6;
  // Tear the workload's VMAs down after the run (models process exit; used
  // between phases of the reused-VM experiments).
  bool teardown = false;
  // Maximum accesses per Machine::AccessBatch call.  0 resolves to
  // $GEMINI_BATCH, or 64 if unset.  Simulation results are identical at
  // any value (Machine::AccessBatch is access-for-access equivalent to
  // scalar Access); this only tunes host-side amortization.
  uint64_t batch_size = 0;
};

// The workload's per-access compute charged by each of the driver's three
// touch paths.  Request accesses carry the workload's full think time;
// init-population touches model a tight fill loop (a quarter of it), and
// GC sweep touches a pointer-chasing scan (an eighth).  Centralized so the
// divisors stay consistent across the paths and testable in isolation.
enum class TouchKind { kInitPopulate, kGcSweep, kRequest };
base::Cycles TouchWorkCycles(const WorkloadSpec& spec, TouchKind kind);

class WorkloadDriver {
 public:
  WorkloadDriver(osim::Machine* machine, int32_t vm_id);
  ~WorkloadDriver();

  // One-shot execution.
  RunResult Run(const WorkloadSpec& spec, const DriverOptions& options = {});

  // Stepped execution for interleaving.
  void Begin(const WorkloadSpec& spec, const DriverOptions& options = {});
  // Executes up to `op_budget` operations; returns how many ran (0 once the
  // workload is complete).
  uint64_t Step(uint64_t op_budget);
  bool Done() const;
  RunResult Finish();

  // --- epoch-parallel stepping (workload/epoch_executor.h) ----------------
  //
  // StepEpoch is the worker-thread half of Step: it runs request accesses
  // through Machine::EpochAccessBatch (clean translations only, machine
  // state frozen) and *suspends* — sets `*suspended` and returns early —
  // the moment the lane needs the serial phase: a per-op driver event is
  // due (measurement flip, gradual growth, GC sweep, churn) or an access
  // in the current batch would fault.  ResumeSerial then finishes the
  // interrupted batch and continues with plain Step, on the barrier
  // thread, in canonical lane order.  A lane that never suspends ran
  // entirely in parallel; the op stream, accounting, and latency records
  // are identical either way, so GEMINI_VM_THREADS is unobservable.
  uint64_t StepEpoch(uint64_t op_budget, bool* suspended);
  uint64_t ResumeSerial(uint64_t op_budget);

  // Unmaps every VMA created by the current/last run (workload exit).
  void TearDownAll();

 private:
  // Runs pending per-op events (measurement flip, gradual growth, GC
  // sweep, churn), then a batch of up to min(op_budget, batch_size_)
  // event-free operations.  Returns how many operations ran (>= 1).
  uint64_t RunOps(uint64_t op_budget);
  // Number of operations starting at op_ before the next per-op event
  // (warmup flip, growth step, GC sweep, churn, latency record boundary).
  uint64_t EventFreeOps() const;
  // Whether a per-op driver event fires *at* op_ (the serial phase must run
  // it before any more request accesses).
  bool EventPendingAtOp() const;
  // Measured-phase accounting for batch_results_[begin, begin + count).
  void AccountResults(size_t begin, size_t count);
  // Records a latency sample if op_ just landed on a request boundary.
  void MaybeRecordLatency();
  void InitVma(uint64_t start_page, uint64_t pages);
  // Issues pages [start, start + count) as batches of batch_size_.
  void TouchRange(uint64_t start_page, uint64_t count, TouchKind kind,
                  bool charge_request);

  osim::Machine* machine_;
  int32_t vm_id_;

  // Per-run state (valid between Begin and Finish).
  WorkloadSpec spec_;
  DriverOptions options_;
  std::unique_ptr<AccessStream> stream_;
  std::unique_ptr<base::Rng> churn_rng_;
  std::unique_ptr<base::LatencyRecorder> latencies_;
  std::vector<int32_t> vma_ids_;
  std::vector<uint64_t> vma_starts_;
  uint64_t pages_per_vma_ = 0;
  uint64_t op_ = 0;
  uint64_t warmup_ops_ = 0;
  bool measuring_ = false;
  metrics::StackSnapshot begin_snapshot_;
  base::Cycles access_cycles_ = 0;
  base::Cycles request_cycles_ = 0;
  base::Cycles request_overhead_base_ = 0;
  uint64_t requests_ = 0;
  uint64_t faulting_accesses_ = 0;
  uint64_t batch_size_ = 64;  // resolved in Begin
  // Scratch buffers reused across batches.
  std::vector<uint64_t> batch_vpns_;
  std::vector<osim::VirtualMachine::AccessResult> batch_results_;
  // A StepEpoch batch that hit a faulting access: vpns stay in
  // batch_vpns_ (the AccessStream cannot rewind), the first pending_next_
  // of them already completed and were accounted; ResumeSerial runs the
  // rest through the serial fault-handling path.
  bool pending_batch_ = false;
  size_t pending_next_ = 0;
};

}  // namespace workload

#endif  // SRC_WORKLOAD_DRIVER_H_
