#include "workload/catalog.h"

#include <algorithm>

#include "base/check.h"
#include "base/types.h"

namespace workload {
namespace {

WorkloadSpec Spec(std::string name, Kind kind, AllocPattern alloc,
                  AccessPattern access, uint64_t ws_pages, uint32_t vmas,
                  base::Cycles work, uint64_t ops) {
  WorkloadSpec s;
  s.name = std::move(name);
  s.kind = kind;
  s.alloc = alloc;
  s.access = access;
  s.working_set_pages = ws_pages;
  s.vma_count = vmas;
  s.work_per_access = work;
  s.ops = ops;
  return s;
}

constexpr uint64_t kLatencyOps = 240000;
constexpr uint64_t kThroughputOps = 280000;

}  // namespace

std::vector<WorkloadSpec> CleanSlateCatalog() {
  std::vector<WorkloadSpec> v;

  // Img-dnn: handwriting recognition (OpenCV nets).  Model weights loaded
  // upfront; inference walks them with mild locality.
  {
    WorkloadSpec s = Spec("Img-dnn", Kind::kLatency, AllocPattern::kStaticUpfront,
                          AccessPattern::kZipf, 24576, 8, 400, kLatencyOps);
    s.zipf_theta = 0.4;
    v.push_back(s);
  }
  // Sphinx: speech recognition; large acoustic/language models, static.
  {
    WorkloadSpec s = Spec("Sphinx", Kind::kLatency, AllocPattern::kStaticUpfront,
                          AccessPattern::kZipf, 28672, 8, 450, kLatencyOps);
    s.zipf_theta = 0.6;
    v.push_back(s);
  }
  // Moses: statistical MT; phrase tables with skewed lookups.
  {
    WorkloadSpec s = Spec("Moses", Kind::kLatency, AllocPattern::kStaticUpfront,
                          AccessPattern::kZipf, 32768, 12, 420, kLatencyOps);
    s.zipf_theta = 0.8;
    v.push_back(s);
  }
  // Xapian: search engine; posting-list scans over a gradually built index
  // with many small allocations.
  {
    WorkloadSpec s = Spec("Xapian", Kind::kLatency, AllocPattern::kGradual,
                          AccessPattern::kScanMix, 24576, 32, 380, kLatencyOps);
    s.scan_jump_prob = 0.08;
    v.push_back(s);
  }
  // Masstree: in-memory K/V (50% GET / 50% PUT); trie grows dynamically,
  // hot keys zipfian.
  {
    WorkloadSpec s = Spec("Masstree", Kind::kLatency, AllocPattern::kGradual,
                          AccessPattern::kZipf, 32768, 32, 320, kLatencyOps);
    s.zipf_theta = 0.85;
    s.churn_period_ops = 70000;
    v.push_back(s);
  }
  // Specjbb: Java middleware.  The JVM maps its heap once and the GC
  // recycles *inside* it (no VMA churn); bump-pointer allocation commits
  // regions densely as the heap grows, and collector passes sweep it.
  {
    WorkloadSpec s = Spec("Specjbb", Kind::kLatency, AllocPattern::kGradual,
                          AccessPattern::kZipf, 40960, 16, 350, kLatencyOps);
    s.zipf_theta = 0.9;
    // Bump-pointer allocation commits heap regions densely as the heap
    // grows (modeled by the init pass on each gradual VMA); a light GC
    // sweep adds the periodic collector pass over the whole heap.
    s.gc_sweep_period_ops = 100000;
    v.push_back(s);
  }
  // Silo: in-memory OLTP (TPC-C); table partitions allocated upfront.
  v.push_back(Spec("Silo", Kind::kLatency, AllocPattern::kStaticUpfront,
                   AccessPattern::kUniform, 28672, 8, 380, kLatencyOps));
  // RocksDB: LSM store; memtables churn, compactions reallocate.
  {
    WorkloadSpec s = Spec("RocksDB", Kind::kLatency, AllocPattern::kGradual,
                          AccessPattern::kZipf, 36864, 48, 300, kLatencyOps);
    s.zipf_theta = 0.85;
    s.churn_period_ops = 40000;
    v.push_back(s);
  }
  // Redis: in-memory K/V; gradual growth, dynamic values, heavy churn.
  {
    WorkloadSpec s = Spec("Redis", Kind::kLatency, AllocPattern::kGradual,
                          AccessPattern::kZipf, 32768, 48, 300, kLatencyOps);
    s.zipf_theta = 0.85;
    s.churn_period_ops = 50000;
    v.push_back(s);
  }
  // Memcached: slab allocator; evictions recycle slabs continuously.
  {
    WorkloadSpec s = Spec("Memcached", Kind::kLatency, AllocPattern::kGradual,
                          AccessPattern::kZipf, 28672, 48, 320, kLatencyOps);
    s.zipf_theta = 0.8;
    s.churn_period_ops = 35000;
    v.push_back(s);
  }
  // Canneal (PARSEC): simulated annealing, random pointer chasing over a
  // large netlist — the classic TLB killer.
  v.push_back(Spec("Canneal", Kind::kThroughput, AllocPattern::kStaticUpfront,
                   AccessPattern::kUniform, 40960, 8, 250, kThroughputOps));
  // Streamcluster (PARSEC): streaming k-median; mostly sequential sweeps.
  {
    WorkloadSpec s = Spec("Streamcluster", Kind::kThroughput,
                          AllocPattern::kStaticUpfront,
                          AccessPattern::kScanMix, 32768, 8, 300,
                          kThroughputOps);
    s.scan_jump_prob = 0.04;
    v.push_back(s);
  }
  // dedup (PARSEC): pipelined dedup; hash tables grow, chunk buffers churn.
  {
    WorkloadSpec s = Spec("dedup", Kind::kThroughput, AllocPattern::kGradual,
                          AccessPattern::kZipf, 24576, 16, 320,
                          kThroughputOps);
    s.zipf_theta = 0.8;
    s.churn_period_ops = 35000;
    v.push_back(s);
  }
  // CG.D (NPB): conjugate gradient; static arrays, strided sweeps with
  // indirections.
  {
    WorkloadSpec s = Spec("CG.D", Kind::kThroughput,
                          AllocPattern::kStaticUpfront,
                          AccessPattern::kScanMix, 45056, 4, 350,
                          kThroughputOps);
    s.scan_jump_prob = 0.02;
    v.push_back(s);
  }
  // 429.mcf (SPEC CPU2006): network simplex, pointer-heavy, uniform.
  v.push_back(Spec("429.mcf", Kind::kThroughput, AllocPattern::kStaticUpfront,
                   AccessPattern::kUniform, 36864, 4, 200, kThroughputOps));
  // SVM: large-scale rank-SVM training; dense static matrices, uniform.
  v.push_back(Spec("SVM", Kind::kThroughput, AllocPattern::kStaticUpfront,
                   AccessPattern::kUniform, 49152, 4, 300, kThroughputOps));
  return v;
}

std::vector<WorkloadSpec> MotivationCatalog() {
  std::vector<WorkloadSpec> out;
  for (const char* name : {"Canneal", "Streamcluster", "Img-dnn", "Specjbb"}) {
    out.push_back(SpecByName(name));
  }
  return out;
}

std::vector<WorkloadSpec> InsensitiveCatalog() {
  std::vector<WorkloadSpec> v;
  // Shore: on-disk TPC-C; I/O bound, small resident set, long think time.
  {
    WorkloadSpec s = Spec("Shore", Kind::kLatency, AllocPattern::kStaticUpfront,
                          AccessPattern::kZipf, 4096, 8, 2500, kLatencyOps / 2);
    s.zipf_theta = 0.7;
    s.tlb_sensitive = false;
    v.push_back(s);
  }
  // NPB SP.D: scalar penta-diagonal solver; near-perfectly sequential, so
  // the TLB covers it even with base pages.
  {
    WorkloadSpec s = Spec("SP.D", Kind::kThroughput,
                          AllocPattern::kStaticUpfront,
                          AccessPattern::kScanMix, 32768, 4, 800,
                          kThroughputOps / 2);
    s.scan_jump_prob = 0.002;
    s.tlb_sensitive = false;
    v.push_back(s);
  }
  return v;
}

WorkloadSpec SvmPrefill(uint64_t vm_gfn_count) {
  // The ~30 GB-working-set SVM run that precedes reused-VM measurements,
  // scaled to ~60 % of the VM.  A low-jump scan touches every page and
  // gives the promotion daemons time to form huge pages.
  const uint64_t ws = base::HugeAlignDown((vm_gfn_count * 3 / 5)
                                          << base::kPageShift) >>
                      base::kPageShift;
  WorkloadSpec s = Spec("SVM-prefill", Kind::kThroughput,
                        AllocPattern::kStaticUpfront, AccessPattern::kScanMix,
                        ws, 4, 250, std::max<uint64_t>(ws * 2, 120000));
  s.scan_jump_prob = 0.01;
  return s;
}

WorkloadSpec SpecByName(std::string_view name) {
  for (const auto& catalog :
       {CleanSlateCatalog(), InsensitiveCatalog(),
        std::vector<WorkloadSpec>{SvmPrefill()}}) {
    for (const WorkloadSpec& s : catalog) {
      if (s.name == name) {
        return s;
      }
    }
  }
  SIM_CHECK_MSG(false, "unknown workload: %.*s",
                static_cast<int>(name.size()), name.data());
  return {};
}

}  // namespace workload
