// Workload model.
//
// The paper evaluates real applications (Table 2).  Those binaries need
// tens of GB and real hardware; the simulator replaces each with a
// parameterized synthetic generator that reproduces the memory behaviour
// the paper's effects depend on:
//
//  * working-set size           -> TLB pressure
//  * allocation pattern         -> static upfront arrays (SVM, CG.D) vs.
//                                  gradual growth with dynamic structures
//                                  (Redis, RocksDB), which the paper calls
//                                  out as the fragmenting/dynamic cases
//  * VMA churn                  -> free + reallocate cycles (key/value
//                                  stores), exercising the huge bucket
//  * access distribution        -> uniform / zipfian / scan mixes
//  * request structure          -> latency-reporting (TailBench-style) vs.
//                                  pure throughput
//  * compute per access         -> how TLB-sensitive the workload is
#ifndef SRC_WORKLOAD_WORKLOAD_H_
#define SRC_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <string>

#include "base/types.h"

namespace workload {

enum class AllocPattern : uint8_t {
  kStaticUpfront,  // all VMAs mapped before the access phase
  kGradual,        // VMAs mapped as the working set grows
};

enum class AccessPattern : uint8_t {
  kUniform,  // uniform random over the working set
  kZipf,     // zipfian (hot head), typical for key/value stores
  kScanMix,  // mostly sequential scans with random jumps
};

enum class Kind : uint8_t {
  kThroughput,  // reports ops/cycle only
  kLatency,     // request-structured; reports mean and p99 latency too
};

struct WorkloadSpec {
  std::string name;
  Kind kind = Kind::kThroughput;
  AllocPattern alloc = AllocPattern::kStaticUpfront;
  AccessPattern access = AccessPattern::kUniform;

  uint64_t working_set_pages = 16384;  // 64 MiB default
  uint32_t vma_count = 8;              // working set split across VMAs

  double zipf_theta = 0.99;    // for kZipf
  double scan_jump_prob = 0.05;  // for kScanMix: probability of a random jump

  uint64_t ops = 400000;              // total accesses
  uint32_t accesses_per_request = 16; // kLatency: accesses per request
  base::Cycles work_per_access = 300; // compute between accesses

  // Dynamic-memory churn: every `churn_period_ops` (0 = never), one VMA is
  // freed and a fresh one of the same size is mapped.
  uint64_t churn_period_ops = 0;

  // Touch every page of a VMA once when it is created (applications load
  // or memset their data structures).  Sparse-heap workloads (Specjbb)
  // turn this off.
  bool init_memory = true;

  // Stop-the-world sweep every N ops touching every active page (0 =
  // never): models a garbage collector's marking/compaction pass, which
  // both densifies the heap at 2 MiB granularity and injects pause spikes
  // into request latencies.
  uint64_t gc_sweep_period_ops = 0;

  // Non-TLB-sensitive workloads (paper: Shore, NPB SP.D) do little
  // pointer-chasing per unit compute.
  bool tlb_sensitive = true;
};

}  // namespace workload

#endif  // SRC_WORKLOAD_WORKLOAD_H_
