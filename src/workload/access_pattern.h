// Access-stream generation: turns a WorkloadSpec into a sequence of page
// offsets within the working set.
#ifndef SRC_WORKLOAD_ACCESS_PATTERN_H_
#define SRC_WORKLOAD_ACCESS_PATTERN_H_

#include <cstdint>
#include <memory>

#include "base/rng.h"
#include "workload/workload.h"

namespace workload {

// Stateful generator of page indices in [0, working_set_pages).
class AccessStream {
 public:
  AccessStream(const WorkloadSpec& spec, uint64_t seed);

  // Next page index to touch, given the currently usable working-set size
  // (gradual allocation grows it over time).  `active_pages` must be >= 1
  // and <= spec.working_set_pages.
  uint64_t Next(uint64_t active_pages);

 private:
  const WorkloadSpec& spec_;
  base::Rng rng_;
  std::unique_ptr<base::ZipfSampler> zipf_;
  uint64_t zipf_domain_ = 0;
  uint64_t scan_cursor_ = 0;
};

}  // namespace workload

#endif  // SRC_WORKLOAD_ACCESS_PATTERN_H_
