// The paper's workload catalogue (Table 2) as synthetic generator specs.
//
// Sizes are scaled from the paper's 32 GB VMs to the simulator's default
// VM (see harness/experiment.h) keeping the *ratios* that drive behaviour:
// working set vs. TLB reach, allocation dynamism, and access skew.  Each
// entry documents what it models.
#ifndef SRC_WORKLOAD_CATALOG_H_
#define SRC_WORKLOAD_CATALOG_H_

#include <string_view>
#include <vector>

#include "workload/workload.h"

namespace workload {

// All sixteen TLB-sensitive workloads of §6.2/§6.3, in the paper's order.
std::vector<WorkloadSpec> CleanSlateCatalog();

// The four motivation workloads of §2.3 (Fig. 3 / Table 1).
std::vector<WorkloadSpec> MotivationCatalog();

// Non-TLB-sensitive workloads used in §6.5 (Shore, NPB SP.D).
std::vector<WorkloadSpec> InsensitiveCatalog();

// The big-working-set SVM run that precedes reused-VM measurements (§6.3),
// sized to ~60 % of the given VM's guest-physical memory.
WorkloadSpec SvmPrefill(uint64_t vm_gfn_count = 131072);

// Look up any catalogued workload by name (aborts if unknown).
WorkloadSpec SpecByName(std::string_view name);

}  // namespace workload

#endif  // SRC_WORKLOAD_CATALOG_H_
