#include "workload/access_pattern.h"

#include "base/check.h"

namespace workload {

AccessStream::AccessStream(const WorkloadSpec& spec, uint64_t seed)
    : spec_(spec), rng_(seed) {}

uint64_t AccessStream::Next(uint64_t active_pages) {
  SIM_CHECK(active_pages >= 1 && active_pages <= spec_.working_set_pages);
  switch (spec_.access) {
    case AccessPattern::kUniform:
      return rng_.NextBelow(active_pages);
    case AccessPattern::kZipf: {
      // Rebuild the sampler when the active set grows materially (the
      // constants depend on n); growth is monotone so this happens a
      // bounded number of times.
      if (zipf_ == nullptr || active_pages > zipf_domain_ * 2 ||
          (zipf_domain_ < spec_.working_set_pages &&
           active_pages == spec_.working_set_pages)) {
        zipf_domain_ = active_pages;
        zipf_ = std::make_unique<base::ZipfSampler>(zipf_domain_,
                                                    spec_.zipf_theta);
      }
      uint64_t page = zipf_->Sample(rng_);
      if (page >= active_pages) {
        page = rng_.NextBelow(active_pages);
      }
      return page;
    }
    case AccessPattern::kScanMix: {
      if (rng_.NextBool(spec_.scan_jump_prob)) {
        scan_cursor_ = rng_.NextBelow(active_pages);
      } else {
        scan_cursor_ = (scan_cursor_ + 1) % active_pages;
      }
      return scan_cursor_;
    }
  }
  return 0;
}

}  // namespace workload
