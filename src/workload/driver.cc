#include "workload/driver.h"

#include <algorithm>

#include "base/check.h"

namespace workload {

WorkloadDriver::WorkloadDriver(osim::Machine* machine, int32_t vm_id)
    : machine_(machine), vm_id_(vm_id) {
  SIM_CHECK(machine_ != nullptr);
}

WorkloadDriver::~WorkloadDriver() = default;

RunResult WorkloadDriver::Run(const WorkloadSpec& spec,
                              const DriverOptions& options) {
  Begin(spec, options);
  while (Step(spec.ops) > 0) {
  }
  return Finish();
}

void WorkloadDriver::InitVma(uint64_t start_page, uint64_t pages) {
  if (!spec_.init_memory) {
    return;
  }
  // Applications populate their data structures before using them; this is
  // what makes regions dense enough to promote.  The cost counts as part
  // of the run (but not as request latency).
  for (uint64_t p = 0; p < pages; ++p) {
    const osim::VirtualMachine::AccessResult ar =
        machine_->Access(vm_id_, start_page + p, spec_.work_per_access / 4);
    if (measuring_) {
      access_cycles_ += ar.cycles;
    }
  }
}

void WorkloadDriver::Begin(const WorkloadSpec& spec,
                           const DriverOptions& options) {
  SIM_CHECK(spec.vma_count >= 1);
  SIM_CHECK(spec.working_set_pages >= spec.vma_count);
  spec_ = spec;
  options_ = options;

  osim::GuestKernel& guest = machine_->vm(vm_id_).guest();
  pages_per_vma_ = spec_.working_set_pages / spec_.vma_count;
  vma_ids_.clear();
  vma_starts_.clear();

  access_cycles_ = 0;
  request_cycles_ = 0;
  requests_ = 0;
  measuring_ = options.warmup_fraction <= 0.0;
  if (measuring_) {
    begin_snapshot_ = metrics::Snapshot(*machine_, vm_id_);
    request_overhead_base_ = begin_snapshot_.guest_overhead_cycles +
                             begin_snapshot_.host_overhead_cycles;
  }
  auto map_one = [&]() {
    osim::Vma& vma = guest.aspace().MapAnonymous(pages_per_vma_);
    vma_ids_.push_back(vma.id);
    vma_starts_.push_back(vma.start_page);
    InitVma(vma.start_page, vma.pages);
  };
  if (spec_.alloc == AllocPattern::kStaticUpfront) {
    for (uint32_t i = 0; i < spec_.vma_count; ++i) {
      map_one();
    }
  } else {
    map_one();
  }

  stream_ = std::make_unique<AccessStream>(spec_, options_.seed);
  churn_rng_ = std::make_unique<base::Rng>(options_.seed ^ 0xdeadbeefull);
  latencies_ = std::make_unique<base::LatencyRecorder>(16384, options_.seed + 1);
  op_ = 0;
  warmup_ops_ = static_cast<uint64_t>(options_.warmup_fraction *
                                      static_cast<double>(spec_.ops));
}

bool WorkloadDriver::Done() const { return op_ >= spec_.ops; }

uint64_t WorkloadDriver::Step(uint64_t op_budget) {
  uint64_t ran = 0;
  while (ran < op_budget && !Done()) {
    RunOneOp();
    ++ran;
  }
  return ran;
}

void WorkloadDriver::RunOneOp() {
  osim::GuestKernel& guest = machine_->vm(vm_id_).guest();

  if (!measuring_ && op_ >= warmup_ops_) {
    begin_snapshot_ = metrics::Snapshot(*machine_, vm_id_);
    request_overhead_base_ = begin_snapshot_.guest_overhead_cycles +
                             begin_snapshot_.host_overhead_cycles;
    request_cycles_ = 0;
    measuring_ = true;
  }

  // Gradual growth: reach the full VMA count at 40 % of the run, before
  // the steady-state measurement window opens.
  if (spec_.alloc == AllocPattern::kGradual &&
      vma_ids_.size() < spec_.vma_count) {
    const double frac = std::min(
        1.0, 2.5 * static_cast<double>(op_) / static_cast<double>(spec_.ops));
    const auto desired = static_cast<size_t>(
        1 + frac * static_cast<double>(spec_.vma_count - 1));
    while (vma_ids_.size() < desired) {
      osim::Vma& vma = guest.aspace().MapAnonymous(pages_per_vma_);
      vma_ids_.push_back(vma.id);
      vma_starts_.push_back(vma.start_page);
      InitVma(vma.start_page, vma.pages);
    }
  }

  // GC sweep: a stop-the-world pass over every active page.  Its cycles
  // land on the in-flight request (the pause), like a real collector's.
  if (spec_.gc_sweep_period_ops != 0 && op_ > 0 &&
      op_ % spec_.gc_sweep_period_ops == 0) {
    for (size_t v = 0; v < vma_ids_.size(); ++v) {
      for (uint64_t p = 0; p < pages_per_vma_; ++p) {
        const osim::VirtualMachine::AccessResult ar =
            machine_->Access(vm_id_, vma_starts_[v] + p,
                             spec_.work_per_access / 8);
        if (measuring_) {
          access_cycles_ += ar.cycles;
          request_cycles_ += ar.cycles;
        }
      }
    }
  }

  // Churn: retire one VMA, allocate a fresh one of the same size.
  if (spec_.churn_period_ops != 0 && op_ > 0 &&
      op_ % spec_.churn_period_ops == 0 && vma_ids_.size() > 1) {
    const size_t victim =
        static_cast<size_t>(churn_rng_->NextBelow(vma_ids_.size()));
    guest.UnmapVma(vma_ids_[victim]);
    osim::Vma& fresh = guest.aspace().MapAnonymous(pages_per_vma_);
    vma_ids_[victim] = fresh.id;
    vma_starts_[victim] = fresh.start_page;
    InitVma(fresh.start_page, fresh.pages);
  }

  const uint64_t active_pages = pages_per_vma_ * vma_ids_.size();
  const uint64_t page_index = stream_->Next(active_pages);
  const size_t vma_index =
      std::min<size_t>(page_index / pages_per_vma_, vma_ids_.size() - 1);
  const uint64_t vpn = vma_starts_[vma_index] + (page_index % pages_per_vma_);

  const osim::VirtualMachine::AccessResult ar =
      machine_->Access(vm_id_, vpn, spec_.work_per_access);
  if (measuring_) {
    access_cycles_ += ar.cycles;
    request_cycles_ += ar.cycles;
    if (spec_.kind == Kind::kLatency &&
        (op_ + 1) % spec_.accesses_per_request == 0) {
      const metrics::StackSnapshot s = metrics::Snapshot(*machine_, vm_id_);
      const base::Cycles oh =
          s.guest_overhead_cycles + s.host_overhead_cycles;
      latencies_->Record(static_cast<double>(request_cycles_) +
                         static_cast<double>(oh - request_overhead_base_));
      request_overhead_base_ = oh;
      request_cycles_ = 0;
      ++requests_;
    }
  }
  ++op_;
}

RunResult WorkloadDriver::Finish() {
  osim::GuestKernel& guest = machine_->vm(vm_id_).guest();
  const metrics::StackSnapshot end = metrics::Snapshot(*machine_, vm_id_);
  const metrics::StackSnapshot delta = end.Delta(begin_snapshot_);

  RunResult result;
  result.workload = spec_.name;
  result.ops = op_ - std::min(op_, warmup_ops_);
  result.requests = requests_;
  result.busy_cycles = access_cycles_ + delta.guest_overhead_cycles +
                       delta.host_overhead_cycles;
  result.throughput = result.busy_cycles == 0
                          ? 0.0
                          : 1000.0 * static_cast<double>(result.ops) /
                                static_cast<double>(result.busy_cycles);
  result.mean_latency = latencies_->Mean();
  result.p99_latency = latencies_->Percentile(0.99);
  result.tlb_hits = delta.tlb_hits;
  result.tlb_misses = delta.tlb_misses;
  const uint64_t lookups = delta.tlb_hits + delta.tlb_misses;
  result.tlb_miss_rate = lookups == 0
                             ? 0.0
                             : static_cast<double>(delta.tlb_misses) /
                                   static_cast<double>(lookups);
  result.counters = delta;
  result.alignment = metrics::AuditAlignment(
      guest.table(), machine_->vm(vm_id_).host_slice().table());

  if (options_.teardown) {
    TearDownAll();
  }
  return result;
}

void WorkloadDriver::TearDownAll() {
  osim::GuestKernel& guest = machine_->vm(vm_id_).guest();
  for (int32_t id : vma_ids_) {
    guest.UnmapVma(id);
  }
  vma_ids_.clear();
  vma_starts_.clear();
}

}  // namespace workload
