#include "workload/driver.h"

#include <algorithm>
#include <cstdlib>

#include "base/check.h"

namespace workload {

namespace {

uint64_t ResolveBatchSize(uint64_t requested) {
  if (requested > 0) {
    return requested;
  }
  if (const char* env = std::getenv("GEMINI_BATCH");
      env != nullptr && env[0] != '\0') {
    const uint64_t parsed = std::strtoull(env, nullptr, 10);
    if (parsed > 0) {
      return parsed;
    }
  }
  return 64;
}

}  // namespace

base::Cycles TouchWorkCycles(const WorkloadSpec& spec, TouchKind kind) {
  switch (kind) {
    case TouchKind::kInitPopulate:
      return spec.work_per_access / 4;
    case TouchKind::kGcSweep:
      return spec.work_per_access / 8;
    case TouchKind::kRequest:
      return spec.work_per_access;
  }
  SIM_CHECK(false);
  return 0;
}

WorkloadDriver::WorkloadDriver(osim::Machine* machine, int32_t vm_id)
    : machine_(machine), vm_id_(vm_id) {
  SIM_CHECK(machine_ != nullptr);
}

WorkloadDriver::~WorkloadDriver() = default;

RunResult WorkloadDriver::Run(const WorkloadSpec& spec,
                              const DriverOptions& options) {
  Begin(spec, options);
  while (Step(spec.ops) > 0) {
  }
  return Finish();
}

void WorkloadDriver::InitVma(uint64_t start_page, uint64_t pages) {
  if (!spec_.init_memory) {
    return;
  }
  // Applications populate their data structures before using them; this is
  // what makes regions dense enough to promote.  The cost counts as part
  // of the run (but not as request latency).
  TouchRange(start_page, pages, TouchKind::kInitPopulate,
             /*charge_request=*/false);
}

void WorkloadDriver::TouchRange(uint64_t start_page, uint64_t count,
                                TouchKind kind, bool charge_request) {
  const base::Cycles work = TouchWorkCycles(spec_, kind);
  for (uint64_t done = 0; done < count;) {
    const uint64_t n = std::min(batch_size_, count - done);
    batch_vpns_.clear();
    for (uint64_t i = 0; i < n; ++i) {
      batch_vpns_.push_back(start_page + done + i);
    }
    machine_->AccessBatch(vm_id_, batch_vpns_, work, &batch_results_);
    if (measuring_) {
      for (const osim::VirtualMachine::AccessResult& ar : batch_results_) {
        access_cycles_ += ar.cycles;
        if (charge_request) {
          request_cycles_ += ar.cycles;
        }
        if (ar.faults_taken > 0) {
          ++faulting_accesses_;
        }
      }
    }
    done += n;
  }
}

void WorkloadDriver::Begin(const WorkloadSpec& spec,
                           const DriverOptions& options) {
  SIM_CHECK(spec.vma_count >= 1);
  SIM_CHECK(spec.working_set_pages >= spec.vma_count);
  spec_ = spec;
  options_ = options;
  batch_size_ = ResolveBatchSize(options.batch_size);

  osim::GuestKernel& guest = machine_->vm(vm_id_).guest();
  pages_per_vma_ = spec_.working_set_pages / spec_.vma_count;
  vma_ids_.clear();
  vma_starts_.clear();

  access_cycles_ = 0;
  request_cycles_ = 0;
  requests_ = 0;
  faulting_accesses_ = 0;
  measuring_ = options.warmup_fraction <= 0.0;
  if (measuring_) {
    begin_snapshot_ = metrics::Snapshot(*machine_, vm_id_);
    request_overhead_base_ = begin_snapshot_.guest_overhead_cycles +
                             begin_snapshot_.host_overhead_cycles;
  }
  auto map_one = [&]() {
    osim::Vma& vma = guest.aspace().MapAnonymous(pages_per_vma_);
    vma_ids_.push_back(vma.id);
    vma_starts_.push_back(vma.start_page);
    InitVma(vma.start_page, vma.pages);
  };
  if (spec_.alloc == AllocPattern::kStaticUpfront) {
    for (uint32_t i = 0; i < spec_.vma_count; ++i) {
      map_one();
    }
  } else {
    map_one();
  }

  stream_ = std::make_unique<AccessStream>(spec_, options_.seed);
  churn_rng_ = std::make_unique<base::Rng>(options_.seed ^ 0xdeadbeefull);
  latencies_ = std::make_unique<base::LatencyRecorder>(16384, options_.seed + 1);
  op_ = 0;
  pending_batch_ = false;
  pending_next_ = 0;
  warmup_ops_ = static_cast<uint64_t>(options_.warmup_fraction *
                                      static_cast<double>(spec_.ops));
}

bool WorkloadDriver::Done() const { return op_ >= spec_.ops; }

uint64_t WorkloadDriver::Step(uint64_t op_budget) {
  uint64_t ran = 0;
  while (ran < op_budget && !Done()) {
    ran += RunOps(op_budget - ran);
  }
  return ran;
}

uint64_t WorkloadDriver::EventFreeOps() const {
  // How many operations from op_ onward run without any per-op event
  // firing (other than the ones the caller just handled for op_ itself).
  // Any cap here is safe: AccessBatch is access-for-access equivalent to
  // scalar Access, so chunk boundaries never change simulation results —
  // they only bound how much the batch path can amortize.
  uint64_t n = spec_.ops - op_;
  if (!measuring_) {
    // The measurement flip at warmup_ops_ re-snapshots counters and must
    // happen between batches.
    n = std::min(n, warmup_ops_ - op_);
  }
  if (spec_.alloc == AllocPattern::kGradual &&
      vma_ids_.size() < spec_.vma_count) {
    return 1;  // the growth target moves with op_; step one op at a time
  }
  if (spec_.gc_sweep_period_ops != 0) {
    n = std::min(n, spec_.gc_sweep_period_ops -
                        op_ % spec_.gc_sweep_period_ops);
  }
  if (spec_.churn_period_ops != 0) {
    n = std::min(n, spec_.churn_period_ops - op_ % spec_.churn_period_ops);
  }
  if (measuring_ && spec_.kind == Kind::kLatency &&
      spec_.accesses_per_request != 0) {
    // A latency record snapshots the stack at the request boundary, so a
    // batch may end exactly there but never cross it.
    n = std::min(n, spec_.accesses_per_request -
                        op_ % spec_.accesses_per_request);
  }
  return std::max<uint64_t>(n, 1);
}

uint64_t WorkloadDriver::RunOps(uint64_t op_budget) {
  osim::GuestKernel& guest = machine_->vm(vm_id_).guest();

  if (!measuring_ && op_ >= warmup_ops_) {
    begin_snapshot_ = metrics::Snapshot(*machine_, vm_id_);
    request_overhead_base_ = begin_snapshot_.guest_overhead_cycles +
                             begin_snapshot_.host_overhead_cycles;
    request_cycles_ = 0;
    measuring_ = true;
  }

  // Gradual growth: reach the full VMA count at 40 % of the run, before
  // the steady-state measurement window opens.
  if (spec_.alloc == AllocPattern::kGradual &&
      vma_ids_.size() < spec_.vma_count) {
    const double frac = std::min(
        1.0, 2.5 * static_cast<double>(op_) / static_cast<double>(spec_.ops));
    const auto desired = static_cast<size_t>(
        1 + frac * static_cast<double>(spec_.vma_count - 1));
    while (vma_ids_.size() < desired) {
      osim::Vma& vma = guest.aspace().MapAnonymous(pages_per_vma_);
      vma_ids_.push_back(vma.id);
      vma_starts_.push_back(vma.start_page);
      InitVma(vma.start_page, vma.pages);
    }
  }

  // GC sweep: a stop-the-world pass over every active page.  Its cycles
  // land on the in-flight request (the pause), like a real collector's.
  if (spec_.gc_sweep_period_ops != 0 && op_ > 0 &&
      op_ % spec_.gc_sweep_period_ops == 0) {
    for (size_t v = 0; v < vma_ids_.size(); ++v) {
      TouchRange(vma_starts_[v], pages_per_vma_, TouchKind::kGcSweep,
                 /*charge_request=*/true);
    }
  }

  // Churn: retire one VMA, allocate a fresh one of the same size.
  if (spec_.churn_period_ops != 0 && op_ > 0 &&
      op_ % spec_.churn_period_ops == 0 && vma_ids_.size() > 1) {
    const size_t victim =
        static_cast<size_t>(churn_rng_->NextBelow(vma_ids_.size()));
    guest.UnmapVma(vma_ids_[victim]);
    osim::Vma& fresh = guest.aspace().MapAnonymous(pages_per_vma_);
    vma_ids_[victim] = fresh.id;
    vma_starts_[victim] = fresh.start_page;
    InitVma(fresh.start_page, fresh.pages);
  }

  // The event-free tail: one batch of request accesses.
  const uint64_t n =
      std::min({op_budget, EventFreeOps(), batch_size_, uint64_t{1} << 20});
  const uint64_t active_pages = pages_per_vma_ * vma_ids_.size();
  batch_vpns_.clear();
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t page_index = stream_->Next(active_pages);
    const size_t vma_index =
        std::min<size_t>(page_index / pages_per_vma_, vma_ids_.size() - 1);
    batch_vpns_.push_back(vma_starts_[vma_index] +
                          (page_index % pages_per_vma_));
  }
  machine_->AccessBatch(vm_id_, batch_vpns_,
                        TouchWorkCycles(spec_, TouchKind::kRequest),
                        &batch_results_);
  AccountResults(0, batch_results_.size());
  op_ += n;
  MaybeRecordLatency();
  return n;
}

void WorkloadDriver::AccountResults(size_t begin, size_t count) {
  if (!measuring_) {
    return;
  }
  for (size_t i = begin; i < begin + count; ++i) {
    const osim::VirtualMachine::AccessResult& ar = batch_results_[i];
    access_cycles_ += ar.cycles;
    request_cycles_ += ar.cycles;
    if (ar.faults_taken > 0) {
      ++faulting_accesses_;
    }
  }
}

void WorkloadDriver::MaybeRecordLatency() {
  // EventFreeOps never lets a batch cross a request boundary, so a record
  // is due exactly when the batch ended on one.
  if (measuring_ && spec_.kind == Kind::kLatency &&
      spec_.accesses_per_request != 0 &&
      op_ % spec_.accesses_per_request == 0) {
    const metrics::StackSnapshot s = metrics::Snapshot(*machine_, vm_id_);
    const base::Cycles oh = s.guest_overhead_cycles + s.host_overhead_cycles;
    latencies_->Record(static_cast<double>(request_cycles_) +
                       static_cast<double>(oh - request_overhead_base_));
    request_overhead_base_ = oh;
    request_cycles_ = 0;
    ++requests_;
  }
}

bool WorkloadDriver::EventPendingAtOp() const {
  if (!measuring_ && op_ >= warmup_ops_) {
    return true;  // measurement flip: re-snapshots the stack
  }
  if (spec_.alloc == AllocPattern::kGradual &&
      vma_ids_.size() < spec_.vma_count) {
    return true;  // growth target moves with op_; faults to populate
  }
  if (spec_.gc_sweep_period_ops != 0 && op_ > 0 &&
      op_ % spec_.gc_sweep_period_ops == 0) {
    return true;
  }
  if (spec_.churn_period_ops != 0 && op_ > 0 &&
      op_ % spec_.churn_period_ops == 0 && vma_ids_.size() > 1) {
    return true;
  }
  return false;
}

uint64_t WorkloadDriver::StepEpoch(uint64_t op_budget, bool* suspended) {
  SIM_CHECK(!pending_batch_);
  *suspended = false;
  uint64_t ran = 0;
  while (ran < op_budget && !Done()) {
    if (EventPendingAtOp()) {
      *suspended = true;
      return ran;
    }
    // The same batch the serial path would issue (EventFreeOps guarantees
    // no event, including a latency record boundary, lands inside it).
    const uint64_t n = std::min(
        {op_budget - ran, EventFreeOps(), batch_size_, uint64_t{1} << 20});
    const uint64_t active_pages = pages_per_vma_ * vma_ids_.size();
    batch_vpns_.clear();
    for (uint64_t i = 0; i < n; ++i) {
      const uint64_t page_index = stream_->Next(active_pages);
      const size_t vma_index =
          std::min<size_t>(page_index / pages_per_vma_, vma_ids_.size() - 1);
      batch_vpns_.push_back(vma_starts_[vma_index] +
                            (page_index % pages_per_vma_));
    }
    if (batch_results_.size() < batch_vpns_.size()) {
      batch_results_.resize(batch_vpns_.size());
    }
    const size_t k = machine_->EpochAccessBatch(
        vm_id_, batch_vpns_, TouchWorkCycles(spec_, TouchKind::kRequest),
        &batch_results_);
    AccountResults(0, k);
    op_ += k;
    ran += k;
    if (k < n) {
      // batch_vpns_[k] would fault: park the rest for the serial phase.
      pending_batch_ = true;
      pending_next_ = k;
      *suspended = true;
      return ran;
    }
    MaybeRecordLatency();
  }
  return ran;
}

uint64_t WorkloadDriver::ResumeSerial(uint64_t op_budget) {
  uint64_t ran = 0;
  if (pending_batch_) {
    const size_t rest = batch_vpns_.size() - pending_next_;
    const std::span<const uint64_t> vpns(batch_vpns_.data() + pending_next_,
                                         rest);
    // AccessBatch refills batch_results_ from index 0; the completed prefix
    // was already accounted in StepEpoch.
    machine_->AccessBatch(vm_id_, vpns,
                          TouchWorkCycles(spec_, TouchKind::kRequest),
                          &batch_results_);
    AccountResults(0, rest);
    op_ += rest;
    ran += rest;
    pending_batch_ = false;
    MaybeRecordLatency();
  }
  if (ran < op_budget) {
    ran += Step(op_budget - ran);
  }
  return ran;
}

RunResult WorkloadDriver::Finish() {
  osim::GuestKernel& guest = machine_->vm(vm_id_).guest();
  const metrics::StackSnapshot end = metrics::Snapshot(*machine_, vm_id_);
  const metrics::StackSnapshot delta = end.Delta(begin_snapshot_);

  RunResult result;
  result.workload = spec_.name;
  result.ops = op_ - std::min(op_, warmup_ops_);
  result.requests = requests_;
  result.busy_cycles = access_cycles_ + delta.guest_overhead_cycles +
                       delta.host_overhead_cycles;
  result.throughput = result.busy_cycles == 0
                          ? 0.0
                          : 1000.0 * static_cast<double>(result.ops) /
                                static_cast<double>(result.busy_cycles);
  result.mean_latency = latencies_->Mean();
  result.p99_latency = latencies_->Percentile(0.99);
  result.tlb_hits = delta.tlb_hits;
  result.tlb_misses = delta.tlb_misses;
  const uint64_t lookups = delta.tlb_hits + delta.tlb_misses;
  result.tlb_miss_rate = lookups == 0
                             ? 0.0
                             : static_cast<double>(delta.tlb_misses) /
                                   static_cast<double>(lookups);
  result.faulting_accesses = faulting_accesses_;
  result.counters = delta;
  result.alignment = metrics::AuditAlignment(
      guest.table(), machine_->vm(vm_id_).host_slice().table());

  if (options_.teardown) {
    TearDownAll();
  }
  return result;
}

void WorkloadDriver::TearDownAll() {
  osim::GuestKernel& guest = machine_->vm(vm_id_).guest();
  for (int32_t id : vma_ids_) {
    guest.UnmapVma(id);
  }
  vma_ids_.clear();
  vma_starts_.clear();
}

}  // namespace workload
