#include "damon/region_monitor.h"

#include <algorithm>

#include "base/check.h"

namespace damon {

RegionMonitor::RegionMonitor(const MonitorConfig& config, uint64_t span_pages)
    : config_(config), span_(span_pages), rng_(config.seed) {
  SIM_CHECK(span_pages >= 1);
  SIM_CHECK(config_.min_regions >= 1);
  SIM_CHECK(config_.max_regions >= config_.min_regions);
  SIM_CHECK(config_.aggregation_ticks >= 1);
  // Initial layout: min_regions equal slices (fewer if the span is tiny).
  const uint64_t count = std::min<uint64_t>(config_.min_regions, span_);
  const uint64_t base_len = span_ / count;
  const uint64_t remainder = span_ % count;
  uint64_t start = 0;
  for (uint64_t i = 0; i < count; ++i) {
    Region r;
    r.start = start;
    r.len = base_len + (i < remainder ? 1 : 0);
    start += r.len;
    regions_.push_back(r);
  }
  SIM_CHECK(start == span_);
  armed_.resize(regions_.size());
}

void RegionMonitor::Tick(
    const std::function<uint64_t(uint64_t)>& access_count) {
  ++stats_.ticks;
  // Phase one: check the pages armed at the previous tick.
  last_samples_.clear();
  for (size_t i = 0; i < regions_.size(); ++i) {
    if (!armed_[i].valid) {
      continue;
    }
    SampleRecord rec;
    rec.region_start = regions_[i].start;
    rec.page = armed_[i].page;
    rec.armed_count = armed_[i].count;
    rec.checked_count = access_count(armed_[i].page);
    rec.accessed = rec.checked_count > rec.armed_count;
    last_samples_.push_back(rec);
    ++stats_.samples_checked;
    if (rec.accessed) {
      regions_[i].nr_accesses += 1;
      ++stats_.samples_accessed;
    }
  }
  // Aggregate on window boundaries *before* arming, so the new samples
  // target the adapted layout.
  if (++ticks_since_aggregation_ >= config_.aggregation_ticks) {
    ticks_since_aggregation_ = 0;
    Aggregate();
  }
  // Phase two: arm one uniformly random page per region for the next tick.
  for (size_t i = 0; i < regions_.size(); ++i) {
    const Region& r = regions_[i];
    armed_[i].page = r.start + rng_.NextBelow(r.len);
    armed_[i].count = access_count(armed_[i].page);
    armed_[i].valid = true;
  }
}

void RegionMonitor::Aggregate() {
  ++stats_.aggregations;
  last_layout_ops_.clear();
  // Merge reads the window's raw tallies (DAMON order: merge, reset,
  // split), so freshly similar neighbors fuse before tallies reset.
  MergePass();
  for (Region& r : regions_) {
    r.last_nr_accesses = r.nr_accesses;
    r.nr_accesses = 0;
    r.age += 1;
  }
  SplitPass();
}

void RegionMonitor::MergePass() {
  const uint64_t min_regions = std::min<uint64_t>(config_.min_regions, span_);
  size_t i = 0;
  while (i + 1 < regions_.size() && regions_.size() > min_regions) {
    Region& left = regions_[i];
    Region& right = regions_[i + 1];
    const uint32_t diff = left.nr_accesses > right.nr_accesses
                              ? left.nr_accesses - right.nr_accesses
                              : right.nr_accesses - left.nr_accesses;
    if (diff > config_.merge_threshold) {
      ++i;
      continue;
    }
    last_layout_ops_.push_back(
        {LayoutOp::Kind::kMerge, left.start, right.start});
    ++stats_.merges;
    // Length-weighted averages, as damon_merge_two_regions.
    const uint64_t total = left.len + right.len;
    left.nr_accesses = static_cast<uint32_t>(
        (uint64_t{left.nr_accesses} * left.len +
         uint64_t{right.nr_accesses} * right.len) /
        total);
    left.age = static_cast<uint32_t>(
        (uint64_t{left.age} * left.len + uint64_t{right.age} * right.len) /
        total);
    left.len = total;
    if (!armed_[i].valid) {
      armed_[i] = armed_[i + 1];
    }
    regions_.erase(regions_.begin() + static_cast<ptrdiff_t>(i) + 1);
    armed_.erase(armed_.begin() + static_cast<ptrdiff_t>(i) + 1);
    // Do not advance: the fused region may merge with its next neighbor.
  }
}

void RegionMonitor::SplitPass() {
  if (regions_.size() * 2 <= config_.max_regions) {
    // Room to double: split every splittable region at a random interior
    // point (DAMON's exploration step — random points avoid locking onto
    // pathological alignments).
    for (size_t i = 0; i < regions_.size(); ++i) {
      if (regions_[i].len < 2) {
        continue;
      }
      const uint64_t at =
          regions_[i].start + 1 + rng_.NextBelow(regions_[i].len - 1);
      SplitRegionAt(i, at);
      ++i;  // skip the freshly inserted right half
    }
    return;
  }
  // Otherwise refine the coarsest regions until the budget is spent.
  while (regions_.size() < config_.max_regions) {
    size_t best = regions_.size();
    for (size_t i = 0; i < regions_.size(); ++i) {
      if (regions_[i].len >= 2 &&
          (best == regions_.size() || regions_[i].len > regions_[best].len)) {
        best = i;
      }
    }
    if (best == regions_.size()) {
      break;  // nothing splittable
    }
    const uint64_t at =
        regions_[best].start + 1 + rng_.NextBelow(regions_[best].len - 1);
    SplitRegionAt(best, at);
  }
}

void RegionMonitor::SplitRegionAt(size_t index, uint64_t at) {
  Region& left = regions_[index];
  SIM_CHECK(at > left.start && at < left.start + left.len);
  last_layout_ops_.push_back({LayoutOp::Kind::kSplit, left.start, at});
  ++stats_.splits;
  Region right;
  right.start = at;
  right.len = left.start + left.len - at;
  right.nr_accesses = left.nr_accesses;
  right.last_nr_accesses = left.last_nr_accesses;
  right.age = left.age;
  left.len = at - left.start;
  Armed right_armed;
  if (armed_[index].valid && armed_[index].page >= at) {
    right_armed = armed_[index];
    armed_[index].valid = false;
  }
  regions_.insert(regions_.begin() + static_cast<ptrdiff_t>(index) + 1, right);
  armed_.insert(armed_.begin() + static_cast<ptrdiff_t>(index) + 1,
                right_armed);
}

std::vector<Region> RegionMonitor::ColdOrder() const {
  std::vector<Region> cold = regions_;
  std::sort(cold.begin(), cold.end(), [](const Region& a, const Region& b) {
    if (a.last_nr_accesses != b.last_nr_accesses) {
      return a.last_nr_accesses < b.last_nr_accesses;
    }
    if (a.age != b.age) {
      return a.age > b.age;
    }
    return a.start < b.start;
  });
  return cold;
}

}  // namespace damon
