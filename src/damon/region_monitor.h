// Region-based access monitoring in the style of the DAMON work
// (sjp38, "DAMON: Data Access MONitor", merged in Linux 5.15).
//
// The core idea: instead of tracking every page's access bit (O(memory)),
// keep a bounded set of regions whose pages are assumed to have similar
// access frequency, sample ONE page per region per sampling interval, and
// adaptively split/merge regions so the assumption stays true.  Overhead is
// then O(regions), independent of memory size, while hot/cold resolution
// adapts to the workload's actual locality structure.
//
// This simulator drives the monitor as a PeriodicTask tick at daemon
// boundaries (see os/reclaim_daemon.h), so its observations — like every
// other daemon's — are a pure function of the simulated access stream and
// the seed, never of GEMINI_VM_THREADS or batch size.
//
// Sampling model.  On real hardware DAMON clears a page's accessed bit at
// the start of a sampling interval and reads it at the end.  The simulator
// has no async interval, but the page tables keep monotone per-region
// access counters; sampling is therefore two-phase across consecutive
// ticks: tick T *arms* one uniformly random page per region (recording the
// page's current access count), and tick T+1 *checks* it (accessed iff the
// count increased), then arms the next page.  This is exactly the
// mkold-then-check protocol with the tick period as the interval.  With a
// monotone counter the check is exact; if the counter is externally halved
// between arm and check (promotion policies age the same counters with
// DecayAccessCounts) the check stays conservative — a decayed-but-idle
// page never reads as accessed.
//
// Aggregation.  Every `aggregation_ticks` checks, each region's per-window
// access tally is published (last_nr_accesses), ages advance, and the
// layout adapts:
//   merge: adjacent regions whose tallies differ by <= merge_threshold
//          fuse (length-weighted average of tallies and ages), stopping at
//          min_regions;
//   split: while the region count is at or below half of max_regions every
//          region of length >= 2 splits at a uniformly random interior
//          point (exploration); otherwise the longest regions split first
//          until max_regions is reached.  Halves inherit the published
//          tally and age.
// Both passes are recorded in a layout-op log, and every check lands in a
// sample log, so tests can verify the monitor differentially against a
// brute-force per-page tracker without replicating the RNG stream
// (tests/test_damon.cc).
#ifndef SRC_DAMON_REGION_MONITOR_H_
#define SRC_DAMON_REGION_MONITOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "base/rng.h"
#include "base/types.h"

namespace damon {

struct MonitorConfig {
  // Adaptive region-count bounds (DAMON's min_nr_regions/max_nr_regions).
  uint32_t min_regions = 8;
  uint32_t max_regions = 64;
  // Sampling checks per aggregation window.
  uint32_t aggregation_ticks = 4;
  // Adjacent regions merge when |tally difference| <= this (in samples).
  uint32_t merge_threshold = 1;
  uint64_t seed = 1;
};

// One monitored region: [start, start + len) in abstract page units (the
// reclaim daemon monitors EPT huge-region indices, so one "page" here is
// one 2 MiB guest-physical region).
struct Region {
  uint64_t start = 0;
  uint64_t len = 0;
  // Accesses observed in the current (unfinished) window: one increment
  // per sampled-accessed check, so <= aggregation_ticks.
  uint32_t nr_accesses = 0;
  // The last completed window's tally — what cold ranking reads.
  uint32_t last_nr_accesses = 0;
  // Aggregation windows this region has existed (length-weighted average
  // across merges, inherited by splits).
  uint32_t age = 0;
};

// One sampling check (phase two of the two-phase protocol).
struct SampleRecord {
  uint64_t region_start = 0;  // region identity at check time
  uint64_t page = 0;          // the armed page
  uint64_t armed_count = 0;   // page's access count when armed
  uint64_t checked_count = 0; // page's access count at the check
  bool accessed = false;      // checked_count > armed_count
};

// One adaptive-layout operation from the most recent aggregation.
struct LayoutOp {
  enum class Kind : uint8_t { kMerge, kSplit };
  Kind kind = Kind::kMerge;
  // kMerge: left/right are the fused neighbors' starts.
  // kSplit: left is the split region's start, right the split point
  // (absolute page index strictly inside the region).
  uint64_t left = 0;
  uint64_t right = 0;
};

struct MonitorStats {
  uint64_t ticks = 0;
  uint64_t aggregations = 0;
  uint64_t samples_checked = 0;
  uint64_t samples_accessed = 0;
  uint64_t merges = 0;
  uint64_t splits = 0;
};

class RegionMonitor {
 public:
  // Monitors [0, span_pages).  span_pages must be >= 1; the initial layout
  // is min(min_regions, span_pages) equal slices.
  RegionMonitor(const MonitorConfig& config, uint64_t span_pages);

  // One sampling tick.  `access_count` maps a page index to a monotone
  // access counter (the simulator's per-region page-table counters).
  // Checks last tick's armed pages, then arms this tick's; every
  // aggregation_ticks checks, publishes tallies and adapts the layout.
  void Tick(const std::function<uint64_t(uint64_t)>& access_count);

  // Regions in address order (they tile [0, span) exactly).
  const std::vector<Region>& regions() const { return regions_; }

  // The most recent tick's checks and the most recent aggregation's
  // layout ops, for differential testing and tracing.
  const std::vector<SampleRecord>& last_samples() const {
    return last_samples_;
  }
  const std::vector<LayoutOp>& last_layout_ops() const {
    return last_layout_ops_;
  }

  // Region starts ordered coldest first: ascending last_nr_accesses, then
  // descending age (a long-cold region beats a freshly cold one), then
  // ascending start.  Only regions from completed windows are meaningful;
  // callers should skip regions whose pages are not reclaimable anyway.
  std::vector<Region> ColdOrder() const;

  const MonitorConfig& config() const { return config_; }
  const MonitorStats& stats() const { return stats_; }
  uint64_t span_pages() const { return span_; }

 private:
  struct Armed {
    uint64_t page = 0;
    uint64_t count = 0;
    bool valid = false;
  };

  void Aggregate();
  void MergePass();
  void SplitPass();
  void SplitRegionAt(size_t index, uint64_t at);

  MonitorConfig config_;
  uint64_t span_;
  base::Rng rng_;
  std::vector<Region> regions_;
  std::vector<Armed> armed_;  // parallel to regions_
  std::vector<SampleRecord> last_samples_;
  std::vector<LayoutOp> last_layout_ops_;
  uint32_t ticks_since_aggregation_ = 0;
  MonitorStats stats_;
};

}  // namespace damon

#endif  // SRC_DAMON_REGION_MONITOR_H_
