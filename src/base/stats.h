// Streaming statistics helpers used by the performance model and the
// experiment harness: a Welford mean/variance accumulator and a
// reservoir-downsampled latency recorder that reports mean and percentile
// latencies (the paper reports mean and 99th-percentile tail latency).
#ifndef SRC_BASE_STATS_H_
#define SRC_BASE_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/rng.h"

namespace base {

// Welford-style online accumulator.
class RunningStat {
 public:
  void Add(double x);

  uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Records per-request latencies.  Keeps at most `capacity` samples using
// reservoir sampling so that percentile queries stay cheap regardless of
// request count, while the mean is exact (tracked separately).
class LatencyRecorder {
 public:
  explicit LatencyRecorder(size_t capacity = 65536, uint64_t seed = 42);

  void Record(double latency);

  uint64_t count() const { return stat_.count(); }
  double Mean() const { return stat_.mean(); }
  double Max() const { return stat_.max(); }
  // Quantile in [0, 1], e.g. 0.99 for the p99 tail.  Sorts the reservoir on
  // demand (amortized by caching until the next Record()).
  double Percentile(double q) const;

 private:
  size_t capacity_;
  RunningStat stat_;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  Rng rng_;
};

}  // namespace base

#endif  // SRC_BASE_STATS_H_
