// Streaming statistics helpers used by the performance model and the
// experiment harness: a Welford mean/variance accumulator, a
// reservoir-downsampled latency recorder that reports mean and percentile
// latencies (the paper reports mean and 99th-percentile tail latency), and
// a log2-bucketed integer histogram whose counts survive snapshot deltas.
#ifndef SRC_BASE_STATS_H_
#define SRC_BASE_STATS_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/rng.h"

namespace base {

// Welford-style online accumulator.
class RunningStat {
 public:
  void Add(double x);

  uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Records per-request latencies.  Keeps at most `capacity` samples using
// reservoir sampling so that percentile queries stay cheap regardless of
// request count, while the mean is exact (tracked separately).
class LatencyRecorder {
 public:
  explicit LatencyRecorder(size_t capacity = 65536, uint64_t seed = 42);

  void Record(double latency);

  uint64_t count() const { return stat_.count(); }
  double Mean() const { return stat_.mean(); }
  double Max() const { return stat_.max(); }
  // Quantile in [0, 1], e.g. 0.99 for the p99 tail.  Sorts the reservoir on
  // demand (amortized by caching until the next Record()).
  double Percentile(double q) const;

 private:
  size_t capacity_;
  RunningStat stat_;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  Rng rng_;
};

// Histogram of non-negative integer samples in log2 buckets: bucket 0
// holds {0, 1} and bucket b >= 1 holds [2^b, 2^(b+1)).  Unlike
// LatencyRecorder it keeps nothing but monotonic bucket counts, so two
// snapshots of the same histogram subtract cleanly (the driver's
// measured-phase delta) and percentiles can be extracted from a delta as
// well as from a live histogram.  Percentile extraction is exact rank
// selection over the counts — no sampling — reported at log2 value
// resolution: the selected bucket's upper value bound.  For streams whose
// buckets each hold one distinct value (e.g. the 1-cycle TLB hit), the
// reported percentile is the exact sample value.
class Log2Histogram {
 public:
  static constexpr size_t kBuckets = 32;  // values up to 2^32 - 1; higher clamp

  void Add(uint64_t value) { ++buckets_[BucketOf(value)]; }

  uint64_t count() const;
  const std::array<uint64_t, kBuckets>& buckets() const { return buckets_; }

  // Quantile in [0, 1]; 0 with no samples recorded.
  uint64_t Percentile(double q) const {
    return PercentileOfCounts(buckets_, q);
  }

  static size_t BucketOf(uint64_t value) {
    if (value < 2) {
      return 0;
    }
    const size_t b = 63 - static_cast<size_t>(__builtin_clzll(value));
    return b < kBuckets ? b : kBuckets - 1;
  }
  // Largest value bucket `b` covers (the value Percentile reports).
  static uint64_t BucketUpperBound(size_t b) {
    return b == 0 ? 1 : (2ull << b) - 1;
  }
  // Rank-exact percentile over any kBuckets-shaped count array — the form
  // export/sampler code uses on snapshot deltas.
  static uint64_t PercentileOfCounts(
      const std::array<uint64_t, kBuckets>& counts, double q);

 private:
  std::array<uint64_t, kBuckets> buckets_{};
};

}  // namespace base

#endif  // SRC_BASE_STATS_H_
