#include "base/interval_set.h"

namespace base {

void IntervalSet::Insert(uint64_t lo, uint64_t hi) {
  if (lo >= hi) {
    return;
  }
  // Find the first interval that could merge with [lo, hi): any interval
  // whose end >= lo.  Intervals are disjoint so we scan forward from there.
  auto it = spans_.upper_bound(lo);
  if (it != spans_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= lo) {
      it = prev;
    }
  }
  while (it != spans_.end() && it->first <= hi) {
    lo = std::min(lo, it->first);
    hi = std::max(hi, it->second);
    it = spans_.erase(it);
  }
  spans_.emplace(lo, hi);
}

void IntervalSet::Remove(uint64_t lo, uint64_t hi) {
  if (lo >= hi) {
    return;
  }
  auto it = spans_.upper_bound(lo);
  if (it != spans_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > lo) {
      it = prev;
    }
  }
  while (it != spans_.end() && it->first < hi) {
    const uint64_t s = it->first;
    const uint64_t e = it->second;
    it = spans_.erase(it);
    if (s < lo) {
      spans_.emplace(s, lo);
    }
    if (e > hi) {
      spans_.emplace(hi, e);
      break;
    }
  }
}

bool IntervalSet::ContainsRange(uint64_t lo, uint64_t hi) const {
  if (lo >= hi) {
    return true;
  }
  auto it = spans_.upper_bound(lo);
  if (it == spans_.begin()) {
    return false;
  }
  --it;
  return it->first <= lo && it->second >= hi;
}

bool IntervalSet::Intersects(uint64_t lo, uint64_t hi) const {
  if (lo >= hi) {
    return false;
  }
  auto it = spans_.upper_bound(lo);
  if (it != spans_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > lo) {
      return true;
    }
  }
  return it != spans_.end() && it->first < hi;
}

uint64_t IntervalSet::TotalLength() const {
  uint64_t total = 0;
  for (const auto& [lo, hi] : spans_) {
    total += hi - lo;
  }
  return total;
}

std::vector<IntervalSet::Interval> IntervalSet::ToVector() const {
  std::vector<Interval> out;
  out.reserve(spans_.size());
  for (const auto& [lo, hi] : spans_) {
    out.push_back(Interval{lo, hi});
  }
  return out;
}

}  // namespace base
