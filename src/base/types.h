// Fundamental address/page types and constants shared by the whole
// simulator.  The simulated machine models an x86-64-like platform with
// 4 KiB base pages and 2 MiB huge pages (512 base pages per huge page).
#ifndef SRC_BASE_TYPES_H_
#define SRC_BASE_TYPES_H_

#include <cstdint>

namespace base {

// Byte addresses.  We use distinct aliases for the three address spaces the
// paper reasons about; they are all plain 64-bit values, the aliases exist
// for readability of signatures.
using Gva = uint64_t;  // Guest virtual address.
using Gpa = uint64_t;  // Guest physical address.
using Hpa = uint64_t;  // Host physical address.

// Page-frame numbers (address >> 12).
using Vpn = uint64_t;  // Virtual page number (guest virtual).
using Gfn = uint64_t;  // Guest frame number (guest physical).
using Pfn = uint64_t;  // Host frame number (host physical).

inline constexpr uint64_t kPageShift = 12;
inline constexpr uint64_t kPageSize = 1ull << kPageShift;            // 4 KiB
inline constexpr uint64_t kHugeShift = 21;
inline constexpr uint64_t kHugeSize = 1ull << kHugeShift;            // 2 MiB
inline constexpr uint64_t kPagesPerHuge = kHugeSize / kPageSize;     // 512
inline constexpr uint64_t kHugeOrder = 9;  // log2(kPagesPerHuge)

// Largest buddy order (exclusive bound), mirroring Linux MAX_ORDER = 11,
// i.e. the largest block is 2^10 pages = 4 MiB.
inline constexpr int kMaxOrder = 11;

inline constexpr uint64_t PageAlignDown(uint64_t addr) {
  return addr & ~(kPageSize - 1);
}
inline constexpr uint64_t PageAlignUp(uint64_t addr) {
  return (addr + kPageSize - 1) & ~(kPageSize - 1);
}
inline constexpr uint64_t HugeAlignDown(uint64_t addr) {
  return addr & ~(kHugeSize - 1);
}
inline constexpr uint64_t HugeAlignUp(uint64_t addr) {
  return (addr + kHugeSize - 1) & ~(kHugeSize - 1);
}
inline constexpr bool IsPageAligned(uint64_t addr) {
  return (addr & (kPageSize - 1)) == 0;
}
inline constexpr bool IsHugeAligned(uint64_t addr) {
  return (addr & (kHugeSize - 1)) == 0;
}
inline constexpr uint64_t PageNumber(uint64_t addr) { return addr >> kPageShift; }
inline constexpr uint64_t PageOffset(uint64_t addr) { return addr & (kPageSize - 1); }
inline constexpr uint64_t HugeNumber(uint64_t addr) { return addr >> kHugeShift; }

// A page mapping can be at either of two granularities.
enum class PageSize : uint8_t {
  kBase,  // 4 KiB
  kHuge,  // 2 MiB
};

inline constexpr uint64_t SizeBytes(PageSize size) {
  return size == PageSize::kBase ? kPageSize : kHugeSize;
}

// The two layers of the virtualization stack.
enum class Layer : uint8_t {
  kGuest,  // guest process page table: GVA -> GPA
  kHost,   // VM page table (EPT):      GPA -> HPA
};

inline constexpr const char* LayerName(Layer layer) {
  return layer == Layer::kGuest ? "guest" : "host";
}

// Simulated time.  One tick == one simulated CPU cycle.
using Cycles = uint64_t;

}  // namespace base

#endif  // SRC_BASE_TYPES_H_
