// Deterministic pseudo-random number generation for the simulator.
//
// Every stochastic component (workload access streams, fragmenter, policy
// sampling) draws from an explicitly seeded Rng so that experiments are
// exactly reproducible run-to-run.  The generator is xoshiro256**, seeded
// via SplitMix64, which is both fast and statistically strong enough for
// workload synthesis.
#ifndef SRC_BASE_RNG_H_
#define SRC_BASE_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace base {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform in [0, bound).  bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform in [lo, hi).  hi must be > lo.
  uint64_t NextRange(uint64_t lo, uint64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Bernoulli trial with probability p.
  bool NextBool(double p);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBelow(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t state_[4];
};

// Samples ranks from a Zipfian distribution over [0, n) with skew theta
// (theta = 0 is uniform; typical key-value skew is 0.99).  Uses the
// Gray et al. rejection-free method with precomputed constants so sampling
// is O(1) per draw.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double theta);

  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2_;
};

}  // namespace base

#endif  // SRC_BASE_RNG_H_
