#include "base/rng.h"

#include <cmath>

#include "base/check.h"

namespace base {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) {
    word = SplitMix64(s);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  SIM_CHECK(bound > 0);
  // Lemire's nearly-divisionless bounded sampling.
  unsigned __int128 m =
      static_cast<unsigned __int128>(Next()) * static_cast<unsigned __int128>(bound);
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      m = static_cast<unsigned __int128>(Next()) * static_cast<unsigned __int128>(bound);
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

uint64_t Rng::NextRange(uint64_t lo, uint64_t hi) {
  SIM_CHECK(hi > lo);
  return lo + NextBelow(hi - lo);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

namespace {

double Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

ZipfSampler::ZipfSampler(uint64_t n, double theta) : n_(n), theta_(theta) {
  SIM_CHECK(n > 0);
  SIM_CHECK(theta >= 0.0 && theta < 1.0);
  zetan_ = Zeta(n, theta);
  zeta2_ = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2_ / zetan_);
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  if (theta_ == 0.0) {
    return rng.NextBelow(n_);
  }
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  const double raw =
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_);
  uint64_t rank = static_cast<uint64_t>(raw);
  if (rank >= n_) {
    rank = n_ - 1;
  }
  return rank;
}

}  // namespace base
