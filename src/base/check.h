// Lightweight assertion macros used across the simulator.  Unlike the
// standard assert(), these are active in all build types: the simulator's
// correctness claims (buddy invariants, page-table consistency) are part of
// the reproduction and must hold in release benchmarking runs too.
#ifndef SRC_BASE_CHECK_H_
#define SRC_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define SIM_CHECK(cond)                                                      \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "SIM_CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define SIM_CHECK_MSG(cond, fmt, ...)                                        \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "SIM_CHECK failed at %s:%d: %s: " fmt "\n",       \
                   __FILE__, __LINE__, #cond, ##__VA_ARGS__);                \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#endif  // SRC_BASE_CHECK_H_
