#include "base/stats.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"

namespace base {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

LatencyRecorder::LatencyRecorder(size_t capacity, uint64_t seed)
    : capacity_(capacity), rng_(seed) {
  SIM_CHECK(capacity_ > 0);
  samples_.reserve(std::min<size_t>(capacity_, 4096));
}

void LatencyRecorder::Record(double latency) {
  stat_.Add(latency);
  sorted_ = false;
  if (samples_.size() < capacity_) {
    samples_.push_back(latency);
    return;
  }
  // Reservoir sampling: replace a random slot with probability
  // capacity / count, keeping a uniform sample of the stream.
  const uint64_t index = rng_.NextBelow(stat_.count());
  if (index < capacity_) {
    samples_[static_cast<size_t>(index)] = latency;
  }
}

double LatencyRecorder::Percentile(double q) const {
  SIM_CHECK(q >= 0.0 && q <= 1.0);
  if (samples_.empty()) {
    return 0.0;
  }
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

uint64_t Log2Histogram::count() const {
  uint64_t total = 0;
  for (const uint64_t c : buckets_) {
    total += c;
  }
  return total;
}

uint64_t Log2Histogram::PercentileOfCounts(
    const std::array<uint64_t, kBuckets>& counts, double q) {
  SIM_CHECK(q >= 0.0 && q <= 1.0);
  uint64_t total = 0;
  for (const uint64_t c : counts) {
    total += c;
  }
  if (total == 0) {
    return 0;
  }
  // Nearest-rank: the smallest value v such that at least ceil(q * total)
  // samples are <= v.  Computed over integer ranks, so the selection is
  // exact; only the reported value is bucket-resolution.
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  rank = std::max<uint64_t>(1, std::min(rank, total));
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    seen += counts[b];
    if (seen >= rank) {
      return BucketUpperBound(b);
    }
  }
  return BucketUpperBound(kBuckets - 1);
}

}  // namespace base
