// An ordered set of disjoint half-open intervals [lo, hi) over uint64_t.
//
// Used for tracking reserved (booked) physical regions, VMA coverage, and
// scanner work lists.  Adjacent and overlapping insertions coalesce;
// removals split.  Operations are O(log n + k) where k is the number of
// intervals touched.
#ifndef SRC_BASE_INTERVAL_SET_H_
#define SRC_BASE_INTERVAL_SET_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace base {

class IntervalSet {
 public:
  struct Interval {
    uint64_t lo;
    uint64_t hi;  // exclusive
    bool operator==(const Interval& other) const = default;
  };

  // Inserts [lo, hi), merging with neighbours.  No-op if lo >= hi.
  void Insert(uint64_t lo, uint64_t hi);

  // Removes [lo, hi), splitting intervals that straddle the boundary.
  void Remove(uint64_t lo, uint64_t hi);

  // True if every point of [lo, hi) is contained.
  bool ContainsRange(uint64_t lo, uint64_t hi) const;

  // True if any point of [lo, hi) is contained.
  bool Intersects(uint64_t lo, uint64_t hi) const;

  bool Contains(uint64_t point) const { return Intersects(point, point + 1); }

  // Total length covered.
  uint64_t TotalLength() const;

  size_t IntervalCount() const { return spans_.size(); }
  bool empty() const { return spans_.empty(); }
  void Clear() { spans_.clear(); }

  std::vector<Interval> ToVector() const;

  // Visits each interval intersected with [lo, hi).
  template <typename Fn>
  void ForEachIn(uint64_t lo, uint64_t hi, Fn&& fn) const {
    if (lo >= hi) {
      return;
    }
    auto it = spans_.upper_bound(lo);
    if (it != spans_.begin()) {
      auto prev = std::prev(it);
      if (prev->second > lo) {
        it = prev;
      }
    }
    for (; it != spans_.end() && it->first < hi; ++it) {
      const uint64_t s = it->first > lo ? it->first : lo;
      const uint64_t e = it->second < hi ? it->second : hi;
      if (s < e) {
        fn(s, e);
      }
    }
  }

 private:
  // Keyed by interval start; value is the exclusive end.
  std::map<uint64_t, uint64_t> spans_;
};

}  // namespace base

#endif  // SRC_BASE_INTERVAL_SET_H_
