// Figure 10 reproduction: 99th-percentile request latencies of the
// latency-reporting workloads in a clean-slate VM, fragmented and
// unfragmented, normalized to Host-B-VM-B (lower is better).
#include "bench/bench_common.h"

int main() {
  const auto systems = harness::AllSystems();
  const auto specs = bench::LatencyWorkloads();
  for (bool fragmented : {true, false}) {
    harness::BedOptions bed;
    bed.fragmented = fragmented;
    const auto sweep = bench::RunSweep(
        specs, systems, bed, harness::RunCleanSlate,
        fragmented ? "fig10_fragmented" : "fig10_unfragmented");
    bench::PrintNormalizedTable(
        std::string("Figure 10: clean-slate p99 latency, ") +
            (fragmented ? "fragmented" : "unfragmented") +
            " (normalized to Host-B-VM-B; lower is better)",
        sweep, systems, harness::SystemKind::kHostBVmB,
        [](const workload::RunResult& r) { return r.p99_latency; }, false);
  }
  return 0;
}
