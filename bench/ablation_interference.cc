// Ablation (paper §8, future work): how memory deduplication (KSM) and
// ballooning interact with Gemini's well-aligned huge pages.  KSM demotes
// huge EPT backings of cold memory; a naive balloon splinters them.  The
// experiment measures Gemini with and without each mechanism active, and
// with the alignment-aware balloon variant.
#include "bench/bench_common.h"
#include "os/balloon.h"
#include "os/ksm.h"

namespace {

workload::RunResult RunWith(bool with_ksm, int balloon_mode /*0=none,1=naive,2=aware*/) {
  const workload::WorkloadSpec spec =
      bench::MaybeFast(workload::SpecByName("Canneal"));
  harness::BedOptions bed;
  harness::TestBed testbed =
      harness::MakeTestBed(harness::SystemKind::kGemini, bed);
  if (with_ksm) {
    osim::InstallKsm(*testbed.machine, testbed.vm_id);
  }
  workload::WorkloadDriver driver(testbed.machine.get(), testbed.vm_id);
  workload::DriverOptions options;
  options.seed = bed.seed + 1000;
  driver.Begin(spec, options);
  driver.Step(spec.ops / 2);
  if (balloon_mode != 0) {
    osim::BalloonDriver balloon(testbed.machine.get(), testbed.vm_id,
                                /*alignment_aware=*/balloon_mode == 2);
    balloon.Inflate(8192);  // host reclaims 32 MiB mid-run
  }
  while (driver.Step(spec.ops) > 0) {
  }
  return driver.Finish();
}

}  // namespace

int main() {
  metrics::TextTable table(
      "Ablation: Gemini vs memory deduplication and ballooning (paper §8)");
  table.SetColumns({"configuration", "throughput", "aligned", "miss rate"});
  struct Case {
    const char* label;
    bool ksm;
    int balloon;
  };
  for (const Case& c : std::vector<Case>{{"Gemini alone", false, 0},
                                         {"+ KSM dedup", true, 0},
                                         {"+ naive balloon", false, 1},
                                         {"+ alignment-aware balloon", false, 2}}) {
    const auto r = RunWith(c.ksm, c.balloon);
    table.AddRow({c.label, metrics::TextTable::Fmt(r.throughput, 3),
                  metrics::TextTable::Pct(r.alignment.well_aligned_rate),
                  metrics::TextTable::Fmt(r.tlb_miss_rate, 3)});
    std::fprintf(stderr, "%s done\n", c.label);
  }
  table.Print();
  return 0;
}
