// Ablation (paper §8, future work): how memory deduplication (KSM) and
// ballooning interact with Gemini's well-aligned huge pages.  KSM demotes
// huge EPT backings of cold memory; a naive balloon splinters them.  The
// experiment measures Gemini with and without each mechanism active, and
// with the alignment-aware balloon variant.
#include "bench/bench_common.h"
#include "os/balloon.h"
#include "os/ksm.h"

namespace {

workload::RunResult RunWith(bool with_ksm,
                            int balloon_mode /*0=none,1=naive,2=aware*/,
                            const harness::BedOptions& bed) {
  const workload::WorkloadSpec spec =
      bench::MaybeFast(workload::SpecByName("Canneal"));
  harness::TestBed testbed =
      harness::MakeTestBed(harness::SystemKind::kGemini, bed);
  if (with_ksm) {
    osim::InstallKsm(*testbed.machine, testbed.vm_id);
  }
  workload::WorkloadDriver driver(testbed.machine.get(), testbed.vm_id);
  workload::DriverOptions options;
  options.seed = bed.seed + 1000;
  driver.Begin(spec, options);
  driver.Step(spec.ops / 2);
  if (balloon_mode != 0) {
    osim::BalloonDriver balloon(testbed.machine.get(), testbed.vm_id,
                                /*alignment_aware=*/balloon_mode == 2);
    balloon.Inflate(8192);  // host reclaims 32 MiB mid-run
  }
  while (driver.Step(spec.ops) > 0) {
  }
  workload::RunResult result = driver.Finish();
  trace::WriteTraceFiles(bed.trace, *testbed.machine, testbed.sampler);
  return result;
}

struct Cell {
  workload::RunResult result;
  double wall_ms = 0.0;
};

}  // namespace

int main() {
  struct Case {
    const char* label;
    bool ksm;
    int balloon;
  };
  const std::vector<Case> cases = {{"Gemini alone", false, 0},
                                   {"+ KSM dedup", true, 0},
                                   {"+ naive balloon", false, 1},
                                   {"+ alignment-aware balloon", false, 2}};

  harness::SweepRunnerOptions pool;
  pool.label = "ablation_interference";
  pool.cell_name = [&](size_t i) { return std::string(cases[i].label); };
  const auto cells = harness::ParallelMap(
      cases.size(),
      [&](size_t i) {
        const auto start = std::chrono::steady_clock::now();
        Cell cell;
        cell.result =
            RunWith(cases[i].ksm, cases[i].balloon,
                    bench::TracedBed(harness::BedOptions{},
                                     "ablation_interference", i,
                                     cases[i].label));
        cell.wall_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - start)
                           .count();
        return cell;
      },
      std::move(pool));

  metrics::TextTable table(
      "Ablation: Gemini vs memory deduplication and ballooning (paper §8)");
  table.SetColumns({"configuration", "throughput", "aligned", "miss rate"});
  std::vector<metrics::ResultRow> rows;
  for (size_t i = 0; i < cases.size(); ++i) {
    const workload::RunResult& r = cells[i].result;
    table.AddRow({cases[i].label, metrics::TextTable::Fmt(r.throughput, 3),
                  metrics::TextTable::Pct(r.alignment.well_aligned_rate),
                  metrics::TextTable::Fmt(r.tlb_miss_rate, 3)});
    rows.push_back(metrics::ResultRow{"Canneal", cases[i].label,
                                      &cells[i].result, cells[i].wall_ms,
                                      harness::BedOptions{}.seed});
  }
  table.Print();
  bench::ExportRows("ablation_interference", rows);
  return 0;
}
