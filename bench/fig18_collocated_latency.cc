// Figure 18 reproduction: mean latencies of collocated VMs (latency-
// reporting workloads), normalized to Host-B-VM-B; lower is better.
#include "bench/bench_common.h"

namespace {

struct Cell {
  harness::CollocatedResult result;
  double wall_ms = 0.0;
};

}  // namespace

int main() {
  struct Pair {
    const char* vm0;
    const char* vm1;
  };
  const std::vector<Pair> pairs = {
      {"Redis", "Memcached"},  // sensitive + sensitive
      {"Img-dnn", "Shore"},    // sensitive + insensitive
  };
  const auto systems = harness::AllSystems();
  harness::BedOptions bed;
  bed.host_frames = 640 * 1024;

  harness::SweepRunnerOptions options;
  options.label = "fig18_collocated";
  options.cell_name = [&](size_t i) {
    const Pair& pair = pairs[i / systems.size()];
    return std::string(pair.vm0) + "+" + pair.vm1 + " x " +
           std::string(harness::SystemName(systems[i % systems.size()]));
  };
  const auto cells = harness::ParallelMap(
      pairs.size() * systems.size(),
      [&](size_t i) {
        const Pair& pair = pairs[i / systems.size()];
        const auto spec0 = bench::MaybeFast(workload::SpecByName(pair.vm0));
        const auto spec1 = bench::MaybeFast(workload::SpecByName(pair.vm1));
        const auto start = std::chrono::steady_clock::now();
        Cell cell;
        cell.result = harness::RunCollocated(
            systems[i % systems.size()], spec0, spec1,
            bench::TracedBed(
                bed, "fig18_collocated", i,
                std::string(pair.vm0) + "_" + pair.vm1 + "_" +
                    std::string(harness::SystemName(
                        systems[i % systems.size()]))));
        cell.wall_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - start)
                           .count();
        return cell;
      },
      std::move(options));

  metrics::TextTable table(
      "Figure 18: collocated-VM mean latency (normalized to Host-B-VM-B; "
      "lower is better)");
  std::vector<std::string> columns{"VM / workload"};
  for (harness::SystemKind kind : systems) {
    columns.emplace_back(harness::SystemName(kind));
  }
  table.SetColumns(columns);

  std::vector<metrics::ResultRow> rows;
  for (size_t p = 0; p < pairs.size(); ++p) {
    const Pair& pair = pairs[p];
    const Cell* row_cells = &cells[p * systems.size()];
    size_t base_index = 0;
    for (size_t k = 0; k < systems.size(); ++k) {
      if (systems[k] == harness::SystemKind::kHostBVmB) {
        base_index = k;
      }
    }
    const double base0 = row_cells[base_index].result.vm0.mean_latency;
    const double base1 = row_cells[base_index].result.vm1.mean_latency;
    std::vector<std::string> row0{std::string("vm0 ") + pair.vm0};
    std::vector<std::string> row1{std::string("vm1 ") + pair.vm1};
    for (size_t k = 0; k < systems.size(); ++k) {
      row0.push_back(metrics::TextTable::Fmt(
          metrics::Normalize(row_cells[k].result.vm0.mean_latency, base0)));
      row1.push_back(metrics::TextTable::Fmt(
          metrics::Normalize(row_cells[k].result.vm1.mean_latency, base1)));
      const std::string tag = std::string(pair.vm0) + "+" + pair.vm1;
      const std::string system(harness::SystemName(systems[k]));
      rows.push_back(metrics::ResultRow{tag + "/vm0", system,
                                        &row_cells[k].result.vm0,
                                        row_cells[k].wall_ms, bed.seed});
      rows.push_back(metrics::ResultRow{tag + "/vm1", system,
                                        &row_cells[k].result.vm1,
                                        row_cells[k].wall_ms, bed.seed});
    }
    table.AddRow(row0);
    table.AddRow(row1);
  }
  table.Print();
  bench::ExportRows("fig18_collocated", rows);
  return 0;
}
