// Figure 18 reproduction: mean latencies of collocated VMs (latency-
// reporting workloads), normalized to Host-B-VM-B; lower is better.
#include "bench/bench_common.h"

int main() {
  struct Pair {
    const char* vm0;
    const char* vm1;
  };
  const std::vector<Pair> pairs = {
      {"Redis", "Memcached"},  // sensitive + sensitive
      {"Img-dnn", "Shore"},    // sensitive + insensitive
  };
  const auto systems = harness::AllSystems();
  harness::BedOptions bed;
  bed.host_frames = 640 * 1024;

  metrics::TextTable table(
      "Figure 18: collocated-VM mean latency (normalized to Host-B-VM-B; "
      "lower is better)");
  std::vector<std::string> columns{"VM / workload"};
  for (harness::SystemKind kind : systems) {
    columns.emplace_back(harness::SystemName(kind));
  }
  table.SetColumns(columns);

  for (const auto& pair : pairs) {
    const auto spec0 = bench::MaybeFast(workload::SpecByName(pair.vm0));
    const auto spec1 = bench::MaybeFast(workload::SpecByName(pair.vm1));
    std::map<harness::SystemKind, harness::CollocatedResult> results;
    for (harness::SystemKind kind : systems) {
      results[kind] = harness::RunCollocated(kind, spec0, spec1, bed);
      std::fprintf(stderr, ".");
    }
    std::fprintf(stderr, " %s+%s done\n", pair.vm0, pair.vm1);
    const double base0 =
        results[harness::SystemKind::kHostBVmB].vm0.mean_latency;
    const double base1 =
        results[harness::SystemKind::kHostBVmB].vm1.mean_latency;
    std::vector<std::string> row0{std::string("vm0 ") + pair.vm0};
    std::vector<std::string> row1{std::string("vm1 ") + pair.vm1};
    for (harness::SystemKind kind : systems) {
      row0.push_back(metrics::TextTable::Fmt(
          metrics::Normalize(results[kind].vm0.mean_latency, base0)));
      row1.push_back(metrics::TextTable::Fmt(
          metrics::Normalize(results[kind].vm1.mean_latency, base1)));
    }
    table.AddRow(row0);
    table.AddRow(row1);
  }
  table.Print();
  return 0;
}
