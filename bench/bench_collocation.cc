// Collocation-scaling benchmark for the epoch-parallel execution backend
// (engineering benchmark, not a paper figure).  Two parts:
//
//   collocated_64   64 private-TLB VMs on one machine, identical uniform
//                   workloads, run twice through the identical epoch
//                   schedule: GEMINI_VM_THREADS forced to 1 (serial) and
//                   to 8.  The two runs MUST produce bit-identical
//                   simulation digests (SIM_CHECK — this is the perf-side
//                   witness of the determinism contract); wall-clock and
//                   the speedup ratio are then reported honestly.  The
//                   deterministic parallel-phase op fraction is printed
//                   alongside: parallel_ops / total_ops bounds the
//                   achievable speedup on any host (Amdahl), independent
//                   of how many cores the measuring machine happens to
//                   have.  On a single-core runner the t8 wall time shows
//                   pure threading overhead; read the fraction, not the
//                   ratio, to judge the backend there.
//
//   fig17_scale     Rack-density sweep: N = 2..64 collocated VMs (128 in
//                   shared mode, where the interference artifact switches
//                   to the sparse top-k render past 64 VMs) with
//                   lifecycle churn — boot arrival waves, VMA
//                   churn/GC-sweep workload flavors, diurnal load phase
//                   shifts, teardown on completion — for each TLB sharing
//                   mode in GEMINI_TLB_MODE.  Partitioned and dynamic
//                   modes are capped at N=8 (12 ways, >=1 way per VM;
//                   dynamic's repartitioner inherits the same floor).
//                   Shared-mode cells
//                   exercise the interference-attribution matrix at NxN;
//                   the rendered matrices are written to
//                   INTERFERENCE_scale.txt.
//
// The simulated side (ops, TLB counters, epochs, the parallel/serial op
// split, digests) is deterministic at any GEMINI_VM_THREADS; only wall_ms
// and mops_per_s are host-performance numbers.  collocated_64 runs
// $GEMINI_BENCH_REPS repetitions (default 1 — the machine is 64 VMs big)
// and keeps the fastest, with every repetition digest-checked.
//
// Output: BENCH_collocation.json in $GEMINI_EXPORT (if set) or the
// current directory — an array of one object per scenario:
//   {scenario, vms, threads, ops, wall_ms, mops_per_s, epochs,
//    parallel_ops, serial_ops, parallel_frac, tlb_hits, tlb_misses,
//    digest}
// tools/bench_diff.py consumes it by the shared "scenario"/"mops_per_s"
// keys (report-only in CI: collocation wall time on shared runners is too
// noisy to gate).  Schema documented in BENCHMARKS.md.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "base/check.h"
#include "bench/bench_common.h"
#include "harness/experiment.h"
#include "metrics/export.h"
#include "mmu/tlb_domain.h"
#include "workload/epoch_executor.h"
#include "workload/workload.h"

namespace {

struct Row {
  std::string scenario;
  uint64_t vms = 0;
  uint32_t threads = 0;
  uint64_t ops = 0;
  double wall_ms = 0.0;
  uint64_t epochs = 0;
  uint64_t parallel_ops = 0;
  uint64_t serial_ops = 0;
  uint64_t tlb_hits = 0;
  uint64_t tlb_misses = 0;
  uint64_t digest = 0;
};

// $GEMINI_BENCH_REPS, default 1: a 64-VM machine is heavy enough that one
// repetition is the CI default; local perf work can raise it.
uint64_t ResolveReps() {
  if (const char* env = std::getenv("GEMINI_BENCH_REPS");
      env != nullptr && env[0] != '\0') {
    const uint64_t parsed = std::strtoull(env, nullptr, 10);
    if (parsed > 0) {
      return parsed;
    }
  }
  return 1;
}

void Mix(uint64_t* digest, uint64_t value) {
  *digest = (*digest ^ value) * 1099511628211ull;
}

void MixDouble(uint64_t* digest, double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  Mix(digest, bits);
}

// FNV digest over every deterministic field the run produces: per-VM
// results plus the NxN interference rows.  Bit-identical digests across
// thread counts are the determinism witness this bench enforces.
uint64_t Digest(const harness::CollocatedManyResult& r) {
  uint64_t d = 1469598103934665603ull;
  Mix(&d, r.epochs);
  Mix(&d, r.parallel_ops);
  Mix(&d, r.serial_ops);
  for (const workload::RunResult& vm : r.vms) {
    Mix(&d, vm.ops);
    Mix(&d, vm.requests);
    Mix(&d, vm.busy_cycles);
    Mix(&d, vm.tlb_hits);
    Mix(&d, vm.tlb_misses);
    Mix(&d, vm.faulting_accesses);
    MixDouble(&d, vm.throughput);
    MixDouble(&d, vm.mean_latency);
    MixDouble(&d, vm.p99_latency);
    MixDouble(&d, vm.alignment.well_aligned_rate);
  }
  for (const metrics::VmInterferenceRow& row : r.interference.vms) {
    Mix(&d, row.tlb_misses);
    Mix(&d, row.shadow_misses);
    for (const uint64_t by : row.displaced_by) {
      Mix(&d, by);
    }
  }
  return d;
}

Row MakeRow(const std::string& scenario, uint32_t threads,
            const harness::CollocatedManyResult& r) {
  Row row;
  row.scenario = scenario;
  row.vms = r.vms.size();
  row.threads = threads;
  row.wall_ms = r.exec_wall_ms;
  row.epochs = r.epochs;
  row.parallel_ops = r.parallel_ops;
  row.serial_ops = r.serial_ops;
  row.digest = Digest(r);
  for (const workload::RunResult& vm : r.vms) {
    row.ops += vm.ops;
    row.tlb_hits += vm.tlb_hits;
    row.tlb_misses += vm.tlb_misses;
  }
  return row;
}

double Mops(const Row& r) {
  return r.wall_ms > 0.0
             ? static_cast<double>(r.ops) / (r.wall_ms * 1000.0)
             : 0.0;
}

double ParallelFrac(const Row& r) {
  const uint64_t total = r.parallel_ops + r.serial_ops;
  return total > 0 ? static_cast<double>(r.parallel_ops) /
                         static_cast<double>(total)
                   : 0.0;
}

void PrintRow(const Row& r) {
  std::printf(
      "%-26s %2u thr  %3llu vms  %9llu ops  %6llu epochs  par %5.1f%%  "
      "%9.1f ms  %7.3f Mops/s  digest %llu\n",
      r.scenario.c_str(), r.threads, static_cast<unsigned long long>(r.vms),
      static_cast<unsigned long long>(r.ops),
      static_cast<unsigned long long>(r.epochs), 100.0 * ParallelFrac(r),
      r.wall_ms, Mops(r), static_cast<unsigned long long>(r.digest));
}

// ---------------------------------------------------------------------------
// collocated_64: the serial-vs-8-thread speedup pair.

workload::WorkloadSpec SpeedupSpec(bool fast) {
  workload::WorkloadSpec spec;
  spec.name = "colloc_uniform";
  spec.kind = workload::Kind::kThroughput;
  spec.alloc = workload::AllocPattern::kStaticUpfront;
  spec.access = workload::AccessPattern::kUniform;
  spec.working_set_pages = 2048;  // 8 MiB per VM; faults resolve during init
  spec.vma_count = 4;
  spec.ops = fast ? 6000 : 20000;
  spec.work_per_access = 200;
  return spec;
}

harness::BedOptions SpeedupBed() {
  harness::BedOptions bed;
  bed.host_frames = 320 * 1024;
  bed.vm_gfn_count = 8 * 1024;
  bed.fragmented = false;  // scaling bench, not a fidelity bench
  bed.boot_noise_fraction = 0.05;
  bed.seed = 97;
  bed.tlb_mode = mmu::TlbShareMode::kPrivate;
  return bed;
}

harness::CollocatedManyResult RunSpeedupOnce(uint32_t threads, bool fast) {
  const std::vector<workload::WorkloadSpec> specs(64, SpeedupSpec(fast));
  harness::ScaleOptions scale;
  scale.threads = threads;
  scale.quantum = 256;
  return harness::RunCollocatedMany(harness::SystemKind::kGemini, specs,
                                    SpeedupBed(), scale);
}

// Best-of-reps at `threads`; every repetition must reproduce the digest.
Row RunSpeedupBest(const std::string& scenario, uint32_t threads, bool fast,
                   uint64_t reps) {
  Row best = MakeRow(scenario, threads, RunSpeedupOnce(threads, fast));
  for (uint64_t rep = 1; rep < reps; ++rep) {
    const Row r = MakeRow(scenario, threads, RunSpeedupOnce(threads, fast));
    SIM_CHECK_MSG(r.digest == best.digest,
                  "%s not deterministic across repetitions",
                  scenario.c_str());
    if (r.wall_ms < best.wall_ms) {
      best = r;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// fig17_scale: rack-density sweep with lifecycle churn.

// Three tenant flavors cycled across the N VMs: VMA-churning key-value
// store, GC-sweeping latency server, plain throughput batch job.
workload::WorkloadSpec ScaleFlavor(size_t i, bool fast) {
  workload::WorkloadSpec spec;
  const double op_scale = fast ? 0.5 : 1.0;
  switch (i % 3) {
    case 0:
      spec.name = "kv_churn";
      spec.working_set_pages = 1536;
      spec.vma_count = 6;
      spec.ops = static_cast<uint64_t>(5000 * op_scale);
      spec.churn_period_ops = 2000;
      break;
    case 1:
      spec.name = "serve_gc";
      spec.kind = workload::Kind::kLatency;
      spec.working_set_pages = 2048;
      spec.vma_count = 4;
      spec.ops = static_cast<uint64_t>(4000 * op_scale);
      spec.accesses_per_request = 8;
      spec.gc_sweep_period_ops = 3000;
      break;
    default:
      spec.name = "batch";
      spec.working_set_pages = 2048;
      spec.vma_count = 4;
      spec.ops = static_cast<uint64_t>(5000 * op_scale);
      break;
  }
  return spec;
}

Row RunScaleCell(mmu::TlbShareMode mode, uint64_t n, bool fast,
                 std::string* interference_text) {
  std::vector<workload::WorkloadSpec> specs;
  specs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    specs.push_back(ScaleFlavor(i, fast));
  }
  harness::BedOptions bed = SpeedupBed();
  bed.tlb_mode = mode;
  harness::ScaleOptions scale;
  scale.quantum = 128;  // threads resolve from GEMINI_VM_THREADS
  scale.wave_size = std::max<uint64_t>(1, n / 4);
  scale.wave_epochs = 16;
  scale.teardown_on_finish = true;
  scale.load_phases = {100, 40};
  scale.load_phase_epochs = 32;
  const harness::CollocatedManyResult result = harness::RunCollocatedMany(
      harness::SystemKind::kGemini, specs, bed, scale);
  const char* mode_name = mmu::TlbShareModeName(mode);
  std::ostringstream scenario;
  scenario << "scale_" << mode_name << "_" << n << "vms";
  if (mode != mmu::TlbShareMode::kPrivate) {
    *interference_text += bench::RenderInterferenceSection(
        "fig17_scale", mode_name,
        {{scenario.str(), &result.interference}});
  }
  return MakeRow(scenario.str(), workload::VmThreadsFromEnv(), result);
}

// ---------------------------------------------------------------------------

std::string ToJson(const std::vector<Row>& rows) {
  std::ostringstream out;
  out << "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "  {\"scenario\": \"" << r.scenario << "\", \"vms\": " << r.vms
        << ", \"threads\": " << r.threads << ", \"ops\": " << r.ops
        << ", \"wall_ms\": " << r.wall_ms
        << ", \"mops_per_s\": " << Mops(r) << ", \"epochs\": " << r.epochs
        << ", \"parallel_ops\": " << r.parallel_ops
        << ", \"serial_ops\": " << r.serial_ops
        << ", \"parallel_frac\": " << ParallelFrac(r)
        << ", \"tlb_hits\": " << r.tlb_hits
        << ", \"tlb_misses\": " << r.tlb_misses
        << ", \"digest\": " << r.digest << '}'
        << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  out << "]\n";
  return out.str();
}

}  // namespace

int main() {
  const bool fast = harness::FastMode();
  const uint64_t reps = ResolveReps();
  std::vector<Row> rows;

  // Part 1: collocated_64 serial-vs-parallel pair.  The digests MUST be
  // identical — GEMINI_VM_THREADS is unobservable by contract — before
  // any wall-clock comparison is meaningful.
  rows.push_back(RunSpeedupBest("collocated_64_serial", 1, fast, reps));
  rows.push_back(RunSpeedupBest("collocated_64_t8", 8, fast, reps));
  SIM_CHECK_MSG(rows[0].digest == rows[1].digest,
                "collocated_64 diverged between 1 and 8 threads");
  PrintRow(rows[0]);
  PrintRow(rows[1]);
  const double speedup =
      rows[1].wall_ms > 0.0 ? rows[0].wall_ms / rows[1].wall_ms : 0.0;
  const double frac = ParallelFrac(rows[0]);
  const double amdahl = frac < 1.0 ? 1.0 / (1.0 - frac + frac / 8.0) : 8.0;
  std::printf(
      "collocated_64: digests identical; speedup t8/serial %.2fx "
      "(parallel-phase ops %.1f%%, Amdahl bound at 8 threads %.2fx)\n",
      speedup, 100.0 * frac, amdahl);

  // Part 2: rack-density sweep.  Modes from GEMINI_TLB_MODE; partitioned
  // and dynamic need >=1 of the 12 ways per VM, so they stop at N=8.
  // Only shared mode climbs to 128 VMs: that is where the sparse top-k
  // interference render takes over (metrics/interference_matrix.h), and
  // private mode at 128 would only re-measure the backend, more slowly.
  const std::vector<uint64_t> counts =
      fast ? std::vector<uint64_t>{2, 8, 64, 128}
           : std::vector<uint64_t>{2, 4, 8, 16, 32, 64, 128};
  std::string interference_text;
  for (const mmu::TlbShareMode mode : harness::TlbModesFromEnv()) {
    for (const uint64_t n : counts) {
      if ((mode == mmu::TlbShareMode::kPartitioned ||
           mode == mmu::TlbShareMode::kDynamic) &&
          n > 8) {
        continue;
      }
      if (mode != mmu::TlbShareMode::kShared && n > 64) {
        continue;
      }
      rows.push_back(RunScaleCell(mode, n, fast, &interference_text));
      PrintRow(rows.back());
    }
  }

  const char* dir = std::getenv("GEMINI_EXPORT");
  const std::string prefix =
      dir != nullptr && dir[0] != '\0' ? std::string(dir) + "/" : "";
  const std::string path = prefix + "BENCH_collocation.json";
  metrics::WriteFile(path, ToJson(rows));
  std::printf("wrote %s\n", path.c_str());
  if (!interference_text.empty()) {
    const std::string ipath = prefix + "INTERFERENCE_scale.txt";
    metrics::WriteFile(ipath, interference_text);
    std::printf("wrote %s\n", ipath.c_str());
  }
  return 0;
}
