// Figure 13 reproduction: mean latency in a reused VM, normalized to
// Host-B-VM-B (lower is better).
#include "bench/bench_common.h"

int main() {
  const auto systems = harness::AllSystems();
  harness::BedOptions bed;
  const auto sweep = bench::RunSweep(bench::LatencyWorkloads(), systems, bed,
                                     harness::RunReusedVm,
                                     "fig13_mean_latency_reused");
  bench::PrintNormalizedTable(
      "Figure 13: reused-VM mean latency (normalized to Host-B-VM-B; lower "
      "is better)",
      sweep, systems, harness::SystemKind::kHostBVmB,
      [](const workload::RunResult& r) { return r.mean_latency; }, false);
  return 0;
}
