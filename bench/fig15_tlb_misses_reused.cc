// Figure 15 reproduction: TLB misses in a reused VM, normalized to Gemini
// (lower is better).
#include "bench/bench_common.h"

int main() {
  const auto systems = harness::AllSystems();
  harness::BedOptions bed;
  const auto sweep = bench::RunSweep(workload::CleanSlateCatalog(), systems,
                                     bed, harness::RunReusedVm,
                                     "fig15_tlb_misses_reused");
  bench::PrintNormalizedTable(
      "Figure 15: reused-VM TLB misses (normalized to Gemini; lower is "
      "better)",
      sweep, systems, harness::SystemKind::kGemini,
      [](const workload::RunResult& r) {
        return static_cast<double>(r.tlb_misses);
      },
      false);
  return 0;
}
