// Google-benchmark micro benchmarks for the hot substrate paths: buddy
// allocation, targeted allocation, TLB lookup/insert, page-table walks,
// EMA descriptor search, and contiguity-list refresh.  These are
// engineering benchmarks (not paper figures): they bound the simulator's
// own costs and catch regressions in the data structures Gemini leans on.
#include <benchmark/benchmark.h>

#include "base/rng.h"
#include "base/types.h"
#include "gemini/ema.h"
#include "mmu/page_table.h"
#include "mmu/tlb.h"
#include "mmu/translation_engine.h"
#include "vmem/buddy_allocator.h"
#include "vmem/contiguity_list.h"

namespace {

using base::kPagesPerHuge;

void BM_BuddyAllocFreeOrder0(benchmark::State& state) {
  vmem::BuddyAllocator buddy(1 << 18);
  for (auto _ : state) {
    const uint64_t f = buddy.Allocate(0);
    benchmark::DoNotOptimize(f);
    buddy.Free(f, 1);
  }
}
BENCHMARK(BM_BuddyAllocFreeOrder0);

void BM_BuddyAllocFreeHuge(benchmark::State& state) {
  vmem::BuddyAllocator buddy(1 << 18);
  for (auto _ : state) {
    const uint64_t f = buddy.Allocate(base::kHugeOrder);
    benchmark::DoNotOptimize(f);
    buddy.Free(f, kPagesPerHuge);
  }
}
BENCHMARK(BM_BuddyAllocFreeHuge);

void BM_BuddyAllocateAt(benchmark::State& state) {
  vmem::BuddyAllocator buddy(1 << 18);
  base::Rng rng(1);
  for (auto _ : state) {
    const uint64_t target = rng.NextBelow((1 << 18) - 1);
    if (buddy.AllocateAt(target, 1)) {
      buddy.Free(target, 1);
    }
  }
}
BENCHMARK(BM_BuddyAllocateAt);

void BM_BuddyFmfi(benchmark::State& state) {
  vmem::BuddyAllocator buddy(1 << 18);
  base::Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    buddy.AllocateAt(rng.NextBelow(1 << 18), 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(buddy.Fmfi(base::kHugeOrder));
  }
}
BENCHMARK(BM_BuddyFmfi);

void BM_TlbLookupHit(benchmark::State& state) {
  mmu::Tlb tlb(mmu::TlbConfig{});
  for (uint64_t i = 0; i < 1024; ++i) {
    tlb.Insert(i, base::PageSize::kBase, i);
  }
  uint64_t vpn = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tlb.Lookup(vpn));
    vpn = (vpn + 1) & 1023;
  }
}
BENCHMARK(BM_TlbLookupHit);

void BM_TlbInsertEvict(benchmark::State& state) {
  mmu::Tlb tlb(mmu::TlbConfig{});
  uint64_t vpn = 0;
  for (auto _ : state) {
    tlb.Insert(vpn++, base::PageSize::kBase, vpn);
  }
}
BENCHMARK(BM_TlbInsertEvict);

void BM_PageTableLookupBase(benchmark::State& state) {
  mmu::PageTable table;
  for (uint64_t v = 0; v < 64 * kPagesPerHuge; ++v) {
    table.MapBase(v, v);
  }
  base::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table.Lookup(rng.NextBelow(64 * kPagesPerHuge)));
  }
}
BENCHMARK(BM_PageTableLookupBase);

void BM_PageTablePromoteDemote(benchmark::State& state) {
  mmu::PageTable table;
  for (uint64_t v = 0; v < kPagesPerHuge; ++v) {
    table.MapBase(v, v);
  }
  for (auto _ : state) {
    table.PromoteInPlace(0);
    table.Demote(0);
  }
}
BENCHMARK(BM_PageTablePromoteDemote);

void BM_TranslateVirtualizedHit(benchmark::State& state) {
  mmu::PageTable guest;
  mmu::PageTable ept;
  guest.MapHuge(0, 0);
  ept.MapHuge(0, kPagesPerHuge);
  mmu::TranslationEngine engine(mmu::TranslationEngine::Config{}, &guest,
                                &ept);
  uint64_t vpn = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Translate(vpn));
    vpn = (vpn + 1) & (kPagesPerHuge - 1);
  }
}
BENCHMARK(BM_TranslateVirtualizedHit);

void BM_EmaTargetForMtf(benchmark::State& state) {
  gemini::Ema ema;
  // Many spans in one VMA; accesses hit one span repeatedly, exercising
  // the move-to-front win.
  for (int i = 0; i < 64; ++i) {
    ema.AddSpan(1, static_cast<uint64_t>(i) * 2048, 1024, i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ema.TargetFor(1, 7 * 2048 + 5));
  }
}
BENCHMARK(BM_EmaTargetForMtf);

void BM_ContiguityRefresh(benchmark::State& state) {
  vmem::BuddyAllocator buddy(1 << 18);
  base::Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    buddy.AllocateAt(rng.NextBelow(1 << 18), 1);
  }
  vmem::ContiguityList list(&buddy);
  for (auto _ : state) {
    // Force a rebuild each iteration by touching the buddy.
    const uint64_t f = buddy.Allocate(0);
    buddy.Free(f, 1);
    list.Refresh();
    benchmark::DoNotOptimize(list.extent_count());
  }
}
BENCHMARK(BM_ContiguityRefresh);

}  // namespace
