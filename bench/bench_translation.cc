// Microbenchmark for the translation hot path (engineering benchmark, not
// a paper figure): measures raw TranslationEngine::Translate throughput in
// three regimes and writes BENCH_translation.json for regression tracking.
//
//   hit_heavy        TLB-resident working set; nearly every access takes
//                    the O(1) generation-compare fast path.
//   miss_heavy       Working set far beyond TLB reach; dominated by nested
//                    walks and TLB fills.
//   churn_revalidate Periodic in-place promotions/demotions between access
//                    bursts; exercises the generation-mismatch slow path
//                    (re-derive, then restamp or drop).
//   mixed            Half-resident working set: huge entries stay cached
//                    while the base-page half thrashes the TLB.
//   walk_seq         Walker-depth scenario: an all-base layout swept
//                    sequentially, so every miss is a full-depth (4 guest
//                    level) nested walk with maximal walk-memo locality.
//   walk_deep        Walker-depth scenario: huge-mapped regions visited in
//                    a sparse stride permutation — one access per region,
//                    consecutive accesses in different PD/PDPT groups —
//                    stressing the upper walk levels and memo validation.
//
// Each of hit_heavy / miss_heavy / mixed also runs in a batched variant
// (batched_hit / batched_miss / batched_mixed) that drives the same access
// sequence through TranslationEngine::TranslateBatch in GEMINI_BATCH-sized
// chunks (default 64).  The batched variants self-check against their
// scalar counterparts: checksum and TLB counters must match exactly, or
// the bench aborts — this is the perf-side witness of the batch pipeline's
// observational-equivalence contract.
//
// The simulated side is deterministic: same seed, same access sequence,
// same frame checksum and TLB counters on every run and at any optimization
// level.  Only wall_ms and mops_per_s are host-performance numbers; each
// scenario runs $GEMINI_BENCH_REPS times (default 3) and reports the best
// repetition, with all repetitions required to agree on the simulated side.
//
// Output: BENCH_translation.json in $GEMINI_EXPORT (if set) or the current
// directory — an array of one object per scenario:
//   {scenario, batch, ops, wall_ms, mops_per_s, tlb_hits, tlb_misses,
//    stale_hits, walk_mem_refs, walk_cached_refs, walk_nested_hits,
//    walk_memo_hits, walk_memo_upper_hits, lat_p50, lat_p90, lat_p99,
//    checksum}
// plus WALK_breakdown.txt, the per-level walk table for the scalar
// scenarios (metrics::RenderWalkLevelBreakdown).  Schema documented in
// BENCHMARKS.md.
#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "base/check.h"
#include "base/rng.h"
#include "base/stats.h"
#include "base/types.h"
#include "metrics/export.h"
#include "metrics/miss_breakdown.h"
#include "mmu/page_table.h"
#include "mmu/translation_engine.h"

namespace {

using base::kHugeOrder;
using base::kPagesPerHuge;
using mmu::PageTable;
using mmu::TranslateStatus;
using mmu::TranslationEngine;

struct ScenarioResult {
  std::string scenario;
  uint64_t batch = 0;  // TranslateBatch chunk size; 0 = scalar Translate
  uint64_t ops = 0;
  double wall_ms = 0.0;
  uint64_t tlb_hits = 0;
  uint64_t tlb_misses = 0;
  uint64_t stale_hits = 0;
  uint64_t checksum = 0;  // deterministic digest of translated frames
  mmu::WalkLevelStats walk;  // per-level walk accounting of the run
  // Translation-latency percentiles in simulated cycles (log2-bucket
  // nearest-rank; deterministic like the counters above).
  uint64_t lat_p50 = 0;
  uint64_t lat_p90 = 0;
  uint64_t lat_p99 = 0;
};

// Page-table layout a scenario runs against.
enum class Layout {
  kMixed,    // even regions huge/huge, odd regions base/base
  kAllBase,  // every region base/base: all walks are full depth
  kAllHuge,  // every region huge/huge: walks stop at the PD level
};

// Access-sequence shape.  All three are deterministic; kRandom draws from
// the scenario rng, the other two are arithmetic.
enum class Pattern {
  kRandom,
  kSequential,  // vpn = i mod span
  kStride,      // one access per region, regions in a 513-step permutation
};

// Same resolution rule as workload::Driver: $GEMINI_BATCH, default 64.
uint64_t ResolveBatch() {
  const char* env = std::getenv("GEMINI_BATCH");
  if (env != nullptr && env[0] != '\0') {
    const uint64_t parsed = std::strtoull(env, nullptr, 10);
    if (parsed > 0) {
      return parsed;
    }
  }
  return 64;
}

// Repetitions per scenario ($GEMINI_BENCH_REPS, default 3).  Each scenario
// is run this many times and the best (minimum) wall time is reported:
// min-of-N is the standard defense against scheduler and frequency noise,
// and every repetition must reproduce the same checksum and counters
// (enforced below), so the simulated side cannot vary between reps.
uint64_t ResolveReps() {
  const char* env = std::getenv("GEMINI_BENCH_REPS");
  if (env != nullptr && env[0] != '\0') {
    const uint64_t parsed = std::strtoull(env, nullptr, 10);
    if (parsed > 0) {
      return parsed;
    }
  }
  return 3;
}

TranslationEngine::Config EngineConfig() {
  // Paper-sized TLB (128 x 12): the same geometry the figure benches use.
  return TranslationEngine::Config{};
}

// Maps `regions` huge regions at both layers: even regions as well-aligned
// huge pairs, odd regions as base/base — a mix that populates both TLB entry
// sizes.
void BuildLayout(PageTable& guest, PageTable& ept, uint64_t regions,
                 Layout layout = Layout::kMixed) {
  for (uint64_t r = 0; r < regions; ++r) {
    const uint64_t gpa_block = r * kPagesPerHuge;
    const uint64_t hpa_block = (regions + r) * kPagesPerHuge;
    const bool huge = layout == Layout::kAllHuge ||
                      (layout == Layout::kMixed && r % 2 == 0);
    if (huge) {
      guest.MapHuge(r, gpa_block);
      ept.MapHuge(r, hpa_block);
    } else {
      for (uint64_t s = 0; s < kPagesPerHuge; ++s) {
        guest.MapBase((r << kHugeOrder) + s, gpa_block + s);
        ept.MapBase(gpa_block + s, hpa_block + s);
      }
    }
  }
}

uint64_t NextVpn(Pattern pattern, base::Rng& rng, uint64_t span, uint64_t i) {
  switch (pattern) {
    case Pattern::kRandom:
      return rng.NextBelow(span);
    case Pattern::kSequential:
      return i % span;
    default: {
      // 513 is coprime to the power-of-two region counts used below, so
      // the walk covers every region; consecutive accesses are 513 regions
      // (≈ 1 GiB of VA) apart, crossing PD/PDPT boundaries each step.
      const uint64_t regions = span >> kHugeOrder;
      return ((i * 513) % regions) << kHugeOrder;
    }
  }
}

ScenarioResult RunScenario(const std::string& name, uint64_t regions,
                           uint64_t ops, uint64_t churn_period,
                           uint64_t batch = 0, Layout layout = Layout::kMixed,
                           Pattern pattern = Pattern::kRandom) {
  SIM_CHECK(churn_period == 0 || batch == 0);  // churn is scalar-only
  SIM_CHECK(batch == 0 || pattern == Pattern::kRandom);  // patterns: scalar
  PageTable guest;
  PageTable ept;
  BuildLayout(guest, ept, regions, layout);
  TranslationEngine engine(EngineConfig(), &guest, &ept);

  base::Rng rng(42);
  const uint64_t span = regions << kHugeOrder;
  uint64_t checksum = 0;
  std::vector<uint64_t> vpns(batch);
  std::vector<mmu::TranslateResult> out(batch);

  const auto start = std::chrono::steady_clock::now();
  if (batch == 0) {
    for (uint64_t i = 0; i < ops; ++i) {
      if (churn_period != 0 && i % churn_period == churn_period - 1) {
        // Demote and re-promote a well-aligned region in place: frames are
        // unchanged, so cached entries stay correct but their generation
        // stamps go stale — the next access must re-derive and restamp.
        const uint64_t r = rng.NextBelow(regions / 2) * 2;
        guest.Demote(r);
        ept.Demote(r);
        guest.PromoteInPlace(r);
        ept.PromoteInPlace(r);
      }
      const uint64_t vpn = NextVpn(pattern, rng, span, i);
      const auto t = engine.Translate(vpn);
      if (t.status == TranslateStatus::kOk) {
        checksum = checksum * 1099511628211ull + t.frame;
      }
    }
  } else {
    // Identical rng draw order to the scalar loop; only the translate calls
    // are chunked, so results must match the scalar counterpart exactly.
    for (uint64_t i = 0; i < ops;) {
      const uint64_t n = std::min(batch, ops - i);
      for (uint64_t j = 0; j < n; ++j) {
        vpns[j] = rng.NextBelow(span);
      }
      const size_t ok =
          engine.TranslateBatch(std::span(vpns.data(), n), out.data());
      for (size_t j = 0; j < ok; ++j) {
        checksum = checksum * 1099511628211ull + out[j].frame;
      }
      i += n;
    }
  }
  const auto end = std::chrono::steady_clock::now();

  ScenarioResult res;
  res.scenario = name;
  res.batch = batch;
  res.ops = ops;
  res.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          end - start)
          .count();
  res.tlb_hits = engine.tlb().hits();
  res.tlb_misses = engine.tlb().misses();
  res.stale_hits = engine.tlb().stale_drops();
  res.checksum = checksum;
  res.walk = engine.walk_stats();
  const auto& lat = engine.latency_histogram().buckets();
  res.lat_p50 = base::Log2Histogram::PercentileOfCounts(lat, 0.50);
  res.lat_p90 = base::Log2Histogram::PercentileOfCounts(lat, 0.90);
  res.lat_p99 = base::Log2Histogram::PercentileOfCounts(lat, 0.99);
  return res;
}

uint64_t Sum(const std::array<uint64_t, 4>& a) {
  return a[0] + a[1] + a[2] + a[3];
}

std::string ToJson(const std::vector<ScenarioResult>& results) {
  std::ostringstream out;
  out << "[\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    const double mops =
        r.wall_ms > 0.0 ? static_cast<double>(r.ops) / (r.wall_ms * 1000.0)
                        : 0.0;
    out << "  {\"scenario\": \"" << r.scenario << "\", \"batch\": " << r.batch
        << ", \"ops\": " << r.ops
        << ", \"wall_ms\": " << r.wall_ms << ", \"mops_per_s\": " << mops
        << ", \"tlb_hits\": " << r.tlb_hits
        << ", \"tlb_misses\": " << r.tlb_misses
        << ", \"stale_hits\": " << r.stale_hits
        << ", \"walk_mem_refs\": " << (Sum(r.walk.guest_mem) +
                                       Sum(r.walk.host_mem))
        << ", \"walk_cached_refs\": " << (Sum(r.walk.guest_cached) +
                                          Sum(r.walk.host_cached))
        << ", \"walk_nested_hits\": " << Sum(r.walk.nested_hit)
        << ", \"walk_memo_hits\": " << r.walk.memo_hits
        << ", \"walk_memo_upper_hits\": " << r.walk.memo_upper_hits
        << ", \"lat_p50\": " << r.lat_p50 << ", \"lat_p90\": " << r.lat_p90
        << ", \"lat_p99\": " << r.lat_p99
        << ", \"checksum\": " << r.checksum << '}'
        << (i + 1 < results.size() ? ",\n" : "\n");
  }
  out << "]\n";
  return out.str();
}

// Aborts unless the batched run reproduced its scalar counterpart exactly:
// same frame digest, same TLB hit/miss/stale counters.
void CheckEquivalent(const ScenarioResult& scalar,
                     const ScenarioResult& batched) {
  SIM_CHECK_MSG(scalar.checksum == batched.checksum &&
                    scalar.tlb_hits == batched.tlb_hits &&
                    scalar.tlb_misses == batched.tlb_misses &&
                    scalar.stale_hits == batched.stale_hits &&
                    scalar.lat_p50 == batched.lat_p50 &&
                    scalar.lat_p90 == batched.lat_p90 &&
                    scalar.lat_p99 == batched.lat_p99,
                "%s diverged from %s", batched.scenario.c_str(),
                scalar.scenario.c_str());
}

double Mops(const ScenarioResult& r) {
  return r.wall_ms > 0.0
             ? static_cast<double>(r.ops) / (r.wall_ms * 1000.0)
             : 0.0;
}

// Runs the scenario ResolveReps() times and keeps the fastest repetition.
// Every repetition must produce identical simulated results — a repeated
// determinism check on top of the scalar/batched equivalence check.
ScenarioResult RunBest(const std::string& name, uint64_t regions,
                       uint64_t ops, uint64_t churn_period,
                       uint64_t batch = 0, Layout layout = Layout::kMixed,
                       Pattern pattern = Pattern::kRandom) {
  ScenarioResult best =
      RunScenario(name, regions, ops, churn_period, batch, layout, pattern);
  const uint64_t reps = ResolveReps();
  for (uint64_t rep = 1; rep < reps; ++rep) {
    ScenarioResult r =
        RunScenario(name, regions, ops, churn_period, batch, layout, pattern);
    SIM_CHECK_MSG(r.checksum == best.checksum && r.tlb_hits == best.tlb_hits &&
                      r.tlb_misses == best.tlb_misses &&
                      r.stale_hits == best.stale_hits,
                  "%s not deterministic across repetitions", name.c_str());
    if (r.wall_ms < best.wall_ms) {
      best = r;
    }
  }
  return best;
}

}  // namespace

int main() {
  const uint64_t batch = ResolveBatch();
  std::vector<ScenarioResult> results;
  // 4 regions = 2 huge entries + 1024 base entries: fully TLB-resident at
  // 128x12, so after warm-up every access is a fast-path hit.
  results.push_back(RunBest("hit_heavy", 4, 1ull << 24, 0));
  // 4096 regions ≈ 2M pages: every access is effectively a cold probe.
  results.push_back(RunBest("miss_heavy", 4096, 1ull << 22, 0));
  // TLB-resident layout with an in-place demote/promote cycle every 4K
  // accesses: stresses generation-mismatch revalidation.
  results.push_back(RunBest("churn_revalidate", 4, 1ull << 23, 4096));
  // 256 regions: the 128 huge entries stay resident while the 64K base
  // pages thrash — roughly half hits, half misses.
  results.push_back(RunBest("mixed", 256, 1ull << 22, 0));

  // Batched variants of the churn-free scenarios.  Same seed, same params,
  // so each must reproduce its scalar counterpart bit-for-bit.
  results.push_back(RunBest("batched_hit", 4, 1ull << 24, 0, batch));
  CheckEquivalent(results[0], results[4]);
  results.push_back(RunBest("batched_miss", 4096, 1ull << 22, 0, batch));
  CheckEquivalent(results[1], results[5]);
  results.push_back(RunBest("batched_mixed", 256, 1ull << 22, 0, batch));
  CheckEquivalent(results[3], results[6]);

  // Walker-depth scenarios (scalar; appended so the paired indices above
  // stay stable).  walk_seq: full-depth walks with maximal memo locality.
  // walk_deep: PD-leaf walks with upper-level pressure.
  results.push_back(RunBest("walk_seq", 4096, 1ull << 22, 0, 0,
                            Layout::kAllBase, Pattern::kSequential));
  results.push_back(RunBest("walk_deep", 4096, 1ull << 22, 0, 0,
                            Layout::kAllHuge, Pattern::kStride));

  for (const ScenarioResult& r : results) {
    const double mops =
        r.wall_ms > 0.0 ? static_cast<double>(r.ops) / (r.wall_ms * 1000.0)
                        : 0.0;
    std::printf(
        "%-18s %10llu ops  %9.1f ms  %7.2f Mops/s  hits %llu  misses %llu  "
        "stale %llu  checksum %llu\n",
        r.scenario.c_str(), static_cast<unsigned long long>(r.ops), r.wall_ms,
        mops, static_cast<unsigned long long>(r.tlb_hits),
        static_cast<unsigned long long>(r.tlb_misses),
        static_cast<unsigned long long>(r.stale_hits),
        static_cast<unsigned long long>(r.checksum));
  }

  // Paired speedups: batched wall time vs the same scenario run scalar.
  // "aggregate" is total-ops / total-wall over the paired scenarios.
  const int pairs[][2] = {{0, 4}, {1, 5}, {3, 6}};
  double scalar_wall = 0.0;
  double batched_wall = 0.0;
  std::printf("batch %llu speedup:", static_cast<unsigned long long>(batch));
  for (const auto& p : pairs) {
    scalar_wall += results[p[0]].wall_ms;
    batched_wall += results[p[1]].wall_ms;
    std::printf("  %s %.2fx", results[p[0]].scenario.c_str(),
                Mops(results[p[1]]) / Mops(results[p[0]]));
  }
  std::printf("  aggregate %.2fx\n",
              batched_wall > 0.0 ? scalar_wall / batched_wall : 0.0);

  const char* dir = std::getenv("GEMINI_EXPORT");
  const std::string prefix =
      dir != nullptr && dir[0] != '\0' ? std::string(dir) + "/" : "";
  const std::string path = prefix + "BENCH_translation.json";
  metrics::WriteFile(path, ToJson(results));
  std::printf("wrote %s\n", path.c_str());

  // Per-level walk table for the scalar scenarios (the batched variants
  // reproduce their scalar counterparts exactly, so their rows would be
  // duplicates).
  std::vector<metrics::WalkLevelRow> walk_rows;
  for (const ScenarioResult& r : results) {
    if (r.batch == 0) {
      walk_rows.push_back(metrics::WalkLevelRow{r.scenario, r.walk});
    }
  }
  const std::string walk_path = prefix + "WALK_breakdown.txt";
  metrics::WriteFile(walk_path, metrics::RenderWalkLevelBreakdown(walk_rows));
  std::printf("wrote %s\n", walk_path.c_str());
  return 0;
}
