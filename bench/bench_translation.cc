// Microbenchmark for the translation hot path (engineering benchmark, not
// a paper figure): measures raw TranslationEngine::Translate throughput in
// three regimes and writes BENCH_translation.json for regression tracking.
//
//   hit_heavy        TLB-resident working set; nearly every access takes
//                    the O(1) generation-compare fast path.
//   miss_heavy       Working set far beyond TLB reach; dominated by nested
//                    walks and TLB fills.
//   churn_revalidate Periodic in-place promotions/demotions between access
//                    bursts; exercises the generation-mismatch slow path
//                    (re-derive, then restamp or drop).
//
// The simulated side is deterministic: same seed, same access sequence,
// same frame checksum and TLB counters on every run and at any optimization
// level.  Only wall_ms and mops_per_s are host-performance numbers.
//
// Output: BENCH_translation.json in $GEMINI_EXPORT (if set) or the current
// directory — an array of one object per scenario:
//   {scenario, ops, wall_ms, mops_per_s, tlb_hits, tlb_misses, stale_hits,
//    checksum}
// Schema documented in BENCHMARKS.md.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "base/rng.h"
#include "base/types.h"
#include "metrics/export.h"
#include "mmu/page_table.h"
#include "mmu/translation_engine.h"

namespace {

using base::kHugeOrder;
using base::kPagesPerHuge;
using mmu::PageTable;
using mmu::TranslateStatus;
using mmu::TranslationEngine;

struct ScenarioResult {
  std::string scenario;
  uint64_t ops = 0;
  double wall_ms = 0.0;
  uint64_t tlb_hits = 0;
  uint64_t tlb_misses = 0;
  uint64_t stale_hits = 0;
  uint64_t checksum = 0;  // deterministic digest of translated frames
};

TranslationEngine::Config EngineConfig() {
  // Paper-sized TLB (128 x 12): the same geometry the figure benches use.
  return TranslationEngine::Config{};
}

// Maps `regions` huge regions at both layers: even regions as well-aligned
// huge pairs, odd regions as base/base — a mix that populates both TLB entry
// sizes.
void BuildLayout(PageTable& guest, PageTable& ept, uint64_t regions) {
  for (uint64_t r = 0; r < regions; ++r) {
    const uint64_t gpa_block = r * kPagesPerHuge;
    const uint64_t hpa_block = (regions + r) * kPagesPerHuge;
    if (r % 2 == 0) {
      guest.MapHuge(r, gpa_block);
      ept.MapHuge(r, hpa_block);
    } else {
      for (uint64_t s = 0; s < kPagesPerHuge; ++s) {
        guest.MapBase((r << kHugeOrder) + s, gpa_block + s);
        ept.MapBase(gpa_block + s, hpa_block + s);
      }
    }
  }
}

ScenarioResult RunScenario(const std::string& name, uint64_t regions,
                           uint64_t ops, uint64_t churn_period) {
  PageTable guest;
  PageTable ept;
  BuildLayout(guest, ept, regions);
  TranslationEngine engine(EngineConfig(), &guest, &ept);

  base::Rng rng(42);
  const uint64_t span = regions << kHugeOrder;
  uint64_t checksum = 0;

  const auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < ops; ++i) {
    if (churn_period != 0 && i % churn_period == churn_period - 1) {
      // Demote and re-promote a well-aligned region in place: frames are
      // unchanged, so cached entries stay correct but their generation
      // stamps go stale — the next access must re-derive and restamp.
      const uint64_t r = rng.NextBelow(regions / 2) * 2;
      guest.Demote(r);
      ept.Demote(r);
      guest.PromoteInPlace(r);
      ept.PromoteInPlace(r);
    }
    const uint64_t vpn = rng.NextBelow(span);
    const auto t = engine.Translate(vpn);
    if (t.status == TranslateStatus::kOk) {
      checksum = checksum * 1099511628211ull + t.frame;
    }
  }
  const auto end = std::chrono::steady_clock::now();

  ScenarioResult res;
  res.scenario = name;
  res.ops = ops;
  res.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          end - start)
          .count();
  res.tlb_hits = engine.tlb().hits();
  res.tlb_misses = engine.tlb().misses();
  res.stale_hits = engine.tlb().stale_drops();
  res.checksum = checksum;
  return res;
}

std::string ToJson(const std::vector<ScenarioResult>& results) {
  std::ostringstream out;
  out << "[\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    const double mops =
        r.wall_ms > 0.0 ? static_cast<double>(r.ops) / (r.wall_ms * 1000.0)
                        : 0.0;
    out << "  {\"scenario\": \"" << r.scenario << "\", \"ops\": " << r.ops
        << ", \"wall_ms\": " << r.wall_ms << ", \"mops_per_s\": " << mops
        << ", \"tlb_hits\": " << r.tlb_hits
        << ", \"tlb_misses\": " << r.tlb_misses
        << ", \"stale_hits\": " << r.stale_hits
        << ", \"checksum\": " << r.checksum << '}'
        << (i + 1 < results.size() ? ",\n" : "\n");
  }
  out << "]\n";
  return out.str();
}

}  // namespace

int main() {
  std::vector<ScenarioResult> results;
  // 4 regions = 2 huge entries + 1024 base entries: fully TLB-resident at
  // 128x12, so after warm-up every access is a fast-path hit.
  results.push_back(RunScenario("hit_heavy", 4, 1ull << 24, 0));
  // 4096 regions ≈ 2M pages: every access is effectively a cold probe.
  results.push_back(RunScenario("miss_heavy", 4096, 1ull << 22, 0));
  // TLB-resident layout with an in-place demote/promote cycle every 4K
  // accesses: stresses generation-mismatch revalidation.
  results.push_back(RunScenario("churn_revalidate", 4, 1ull << 23, 4096));

  for (const ScenarioResult& r : results) {
    const double mops =
        r.wall_ms > 0.0 ? static_cast<double>(r.ops) / (r.wall_ms * 1000.0)
                        : 0.0;
    std::printf(
        "%-18s %10llu ops  %9.1f ms  %7.2f Mops/s  hits %llu  misses %llu  "
        "stale %llu  checksum %llu\n",
        r.scenario.c_str(), static_cast<unsigned long long>(r.ops), r.wall_ms,
        mops, static_cast<unsigned long long>(r.tlb_hits),
        static_cast<unsigned long long>(r.tlb_misses),
        static_cast<unsigned long long>(r.stale_hits),
        static_cast<unsigned long long>(r.checksum));
  }

  const char* dir = std::getenv("GEMINI_EXPORT");
  const std::string path =
      (dir != nullptr && dir[0] != '\0' ? std::string(dir) + "/" : "") +
      "BENCH_translation.json";
  metrics::WriteFile(path, ToJson(results));
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
