// Shared helpers for the figure/table reproduction binaries.
//
// Every bench binary prints one table shaped like the paper's figure it
// regenerates: workloads as rows, the eight systems as columns, values
// normalized the way the paper normalizes them.  Set GEMINI_FAST=1 to run
// abbreviated sweeps while iterating.
#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "metrics/perf_model.h"
#include "metrics/table.h"

namespace bench {

using RunFn = std::function<workload::RunResult(
    harness::SystemKind, const workload::WorkloadSpec&,
    const harness::BedOptions&)>;

struct SweepResult {
  // results[workload][system] -> run result.
  std::vector<std::string> workloads;
  std::map<std::string, std::map<harness::SystemKind, workload::RunResult>>
      results;
};

inline workload::WorkloadSpec MaybeFast(const workload::WorkloadSpec& spec) {
  return harness::FastMode() ? harness::ScaleSpec(spec, 0.3) : spec;
}

// Runs `fn` for every (workload, system) pair.
inline SweepResult RunSweep(const std::vector<workload::WorkloadSpec>& specs,
                            const std::vector<harness::SystemKind>& systems,
                            const harness::BedOptions& bed, const RunFn& fn) {
  SweepResult sweep;
  for (const auto& spec : specs) {
    const workload::WorkloadSpec scaled = MaybeFast(spec);
    sweep.workloads.push_back(spec.name);
    for (harness::SystemKind kind : systems) {
      sweep.results[spec.name][kind] = fn(kind, scaled, bed);
      std::fprintf(stderr, ".");
    }
    std::fprintf(stderr, " %s done\n", spec.name.c_str());
  }
  return sweep;
}

// Prints one metric of a sweep as a table, normalized per-row against the
// metric's value under `baseline` (pass the same system to skip
// normalization is not meaningful; use extract returning raw values and
// baseline == first column convention instead).
inline void PrintNormalizedTable(
    const std::string& title, const SweepResult& sweep,
    const std::vector<harness::SystemKind>& systems,
    harness::SystemKind baseline,
    const std::function<double(const workload::RunResult&)>& extract,
    bool higher_is_better) {
  metrics::TextTable table(title);
  std::vector<std::string> columns{"workload"};
  for (harness::SystemKind kind : systems) {
    columns.emplace_back(harness::SystemName(kind));
  }
  table.SetColumns(columns);

  std::map<harness::SystemKind, std::vector<double>> normalized;
  for (const auto& name : sweep.workloads) {
    const auto& row = sweep.results.at(name);
    const double base_value = extract(row.at(baseline));
    std::vector<std::string> cells{name};
    for (harness::SystemKind kind : systems) {
      const double v = metrics::Normalize(extract(row.at(kind)), base_value);
      normalized[kind].push_back(v);
      cells.push_back(metrics::TextTable::Fmt(v));
    }
    table.AddRow(cells);
  }
  std::vector<std::string> mean_row{"geomean"};
  for (harness::SystemKind kind : systems) {
    mean_row.push_back(
        metrics::TextTable::Fmt(metrics::GeometricMean(normalized[kind])));
  }
  table.AddRow(mean_row);
  table.Print();
  (void)higher_is_better;
}

// Prints the well-aligned-rate table (Tables 1/3/4 format).
inline void PrintAlignmentTable(
    const std::string& title, const SweepResult& sweep,
    const std::vector<harness::SystemKind>& systems) {
  metrics::TextTable table(title);
  std::vector<std::string> columns{"workload"};
  for (harness::SystemKind kind : systems) {
    columns.emplace_back(harness::SystemName(kind));
  }
  table.SetColumns(columns);
  for (const auto& name : sweep.workloads) {
    std::vector<std::string> cells{name};
    for (harness::SystemKind kind : systems) {
      cells.push_back(metrics::TextTable::Pct(
          sweep.results.at(name).at(kind).alignment.well_aligned_rate));
    }
    table.AddRow(cells);
  }
  table.Print();
}

// Latency-reporting workloads only (the TailBench-style subset).
inline std::vector<workload::WorkloadSpec> LatencyWorkloads() {
  std::vector<workload::WorkloadSpec> out;
  for (const auto& spec : workload::CleanSlateCatalog()) {
    if (spec.kind == workload::Kind::kLatency) {
      out.push_back(spec);
    }
  }
  return out;
}

}  // namespace bench

#endif  // BENCH_BENCH_COMMON_H_
