// Shared helpers for the figure/table reproduction binaries.
//
// Every bench binary prints one table shaped like the paper's figure it
// regenerates: workloads as rows, the eight systems as columns, values
// normalized the way the paper normalizes them.  Environment contract
// (full details in BENCHMARKS.md):
//   GEMINI_FAST=1        abbreviated sweeps while iterating
//   GEMINI_JOBS=N        worker threads for the sweep (default: all cores)
//   GEMINI_EXPORT=DIR    also write <DIR>/<label>.csv and .json per sweep
//   GEMINI_TRACE=DIR     per-cell Perfetto trace + time-series CSV
//   GEMINI_TRACE_INTERVAL=N   sampler period, simulated cycles
// Tables on stdout are bit-identical at any job count; progress and
// timing go to stderr.
#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/sweep_runner.h"
#include "metrics/export.h"
#include "metrics/perf_model.h"
#include "metrics/table.h"
#include "trace/session.h"

namespace bench {

using RunFn = std::function<workload::RunResult(
    harness::SystemKind, const workload::WorkloadSpec&,
    const harness::BedOptions&)>;

// One (workload, system) measurement of a sweep, in deterministic
// workload-major, system-minor order.
struct SweepCell {
  std::string workload;
  harness::SystemKind system = harness::SystemKind::kHostBVmB;
  workload::RunResult result;
  double wall_ms = 0.0;  // host wall-clock; NOT deterministic
  uint64_t seed = 0;     // BedOptions::seed the cell ran under
};

struct SweepResult {
  std::vector<std::string> workloads;          // row order
  std::vector<harness::SystemKind> systems;    // column order
  std::vector<SweepCell> cells;                // workload-major
  // results[workload][system] -> run result (view over `cells`).
  std::map<std::string, std::map<harness::SystemKind, workload::RunResult>>
      results;
};

inline workload::WorkloadSpec MaybeFast(const workload::WorkloadSpec& spec) {
  return harness::FastMode() ? harness::ScaleSpec(spec, 0.3) : spec;
}

// If GEMINI_EXPORT=<dir> is set, writes <dir>/<label>.csv and .json.
// Every exported field except wall_ms is deterministic (see
// metrics/export.h for the schema).
inline void ExportRows(const std::string& label,
                       const std::vector<metrics::ResultRow>& rows) {
  const char* dir = std::getenv("GEMINI_EXPORT");
  if (dir == nullptr || dir[0] == '\0') {
    return;
  }
  const std::string base = std::string(dir) + "/" + label;
  metrics::WriteFile(base + ".csv", metrics::ToCsv(rows));
  metrics::WriteFile(base + ".json", metrics::ToJson(rows));
  std::fprintf(stderr, "[%s] exported %s.{csv,json}\n", label.c_str(),
               base.c_str());
}

// Export rows of a sweep, in cell (row-major) order.
inline std::vector<metrics::ResultRow> SweepRows(const SweepResult& sweep) {
  std::vector<metrics::ResultRow> rows;
  rows.reserve(sweep.cells.size());
  for (const SweepCell& cell : sweep.cells) {
    rows.push_back(metrics::ResultRow{
        cell.workload, std::string(harness::SystemName(cell.system)),
        &cell.result, cell.wall_ms, cell.seed});
  }
  return rows;
}

// Renders the displaced-by matrix and the utility-curve companion for one
// sharing mode of a collocated sweep (cells = (pair x system label,
// captured report)).  Returns the exact text to print/persist; empty when
// every report is empty — the private arrangement — so the historical
// private-mode stdout stays byte-identical.
inline std::string RenderInterferenceSection(
    const std::string& figure, const char* mode_name,
    const std::vector<std::pair<std::string,
                                const metrics::InterferenceReport*>>& cells) {
  const std::string suffix = std::string(" [tlb=") + mode_name + "]";
  std::string out = metrics::RenderInterferenceMatrix(
      figure + ": displaced-by matrix (victim misses charged to evictor)" +
          suffix,
      cells);
  out += metrics::RenderUtilityCurves(
      figure + ": per-VM utility curves (would-hit fraction with <=w ways)" +
          suffix,
      cells);
  return out;
}

// Persists the accumulated interference sections of a collocated bench as
// INTERFERENCE_matrix.txt — in GEMINI_EXPORT when set, else the working
// directory (CI uploads it as an artifact).  No-op when `text` is empty
// (private-only runs produce no artifact, matching the historical set).
inline void WriteInterferenceArtifact(const std::string& text) {
  if (text.empty()) {
    return;
  }
  const char* dir = std::getenv("GEMINI_EXPORT");
  const std::string path =
      (dir != nullptr && dir[0] != '\0' ? std::string(dir) + "/"
                                        : std::string()) +
      "INTERFERENCE_matrix.txt";
  metrics::WriteFile(path, text);
  std::fprintf(stderr, "[interference] wrote %s\n", path.c_str());
}

// Per-cell trace config for benches that drive cells directly through
// harness::ParallelMap instead of RunSweep.  Same artifact-naming
// convention: <label>_cellNN_<cell name>, keyed by cell index so the
// artifact set is identical at any GEMINI_JOBS count.
inline harness::BedOptions TracedBed(const harness::BedOptions& bed,
                                     const std::string& label, size_t i,
                                     const std::string& cell_name) {
  harness::BedOptions out = bed;
  char cell_tag[32];
  std::snprintf(cell_tag, sizeof(cell_tag), "cell%02zu", i);
  out.trace = trace::TraceConfigFromEnv(trace::SanitizeFileStem(label) + "_" +
                                        cell_tag + "_" +
                                        trace::SanitizeFileStem(cell_name));
  return out;
}

// Runs `fn` for every (workload, system) pair, in parallel across
// GEMINI_JOBS worker threads.  Each cell builds its own machine and RNGs
// from `bed`, so cells are independent; results are keyed by cell index
// (workload-major, system-minor), which makes the sweep deterministic at
// any job count.  `label` names the sweep in stderr progress lines and in
// GEMINI_EXPORT file names.
inline SweepResult RunSweep(const std::vector<workload::WorkloadSpec>& specs,
                            const std::vector<harness::SystemKind>& systems,
                            const harness::BedOptions& bed, const RunFn& fn,
                            const std::string& label = "sweep") {
  SweepResult sweep;
  sweep.systems = systems;
  std::vector<workload::WorkloadSpec> scaled;
  scaled.reserve(specs.size());
  for (const auto& spec : specs) {
    sweep.workloads.push_back(spec.name);
    scaled.push_back(MaybeFast(spec));
  }

  const size_t columns = systems.size();
  sweep.cells.resize(specs.size() * columns);
  harness::SweepRunnerOptions options;
  options.label = label;
  options.cell_name = [&](size_t i) {
    return specs[i / columns].name + " x " +
           std::string(harness::SystemName(systems[i % columns]));
  };
  harness::SweepRunner runner(std::move(options));
  runner.Run(sweep.cells.size(), [&](size_t i) {
    SweepCell& cell = sweep.cells[i];
    cell.workload = specs[i / columns].name;
    cell.system = systems[i % columns];
    cell.seed = bed.seed;
    // Per-cell trace files are keyed by cell index (like results), so the
    // set of artifacts is identical at any GEMINI_JOBS count.
    harness::BedOptions cell_bed = bed;
    char cell_tag[32];
    std::snprintf(cell_tag, sizeof(cell_tag), "cell%02zu",
                  static_cast<size_t>(i));
    cell_bed.trace = trace::TraceConfigFromEnv(
        trace::SanitizeFileStem(label) + "_" + cell_tag + "_" +
        trace::SanitizeFileStem(cell.workload) + "_" +
        trace::SanitizeFileStem(
            std::string(harness::SystemName(cell.system))));
    const auto start = std::chrono::steady_clock::now();
    cell.result = fn(cell.system, scaled[i / columns], cell_bed);
    cell.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  });

  for (const SweepCell& cell : sweep.cells) {
    sweep.results[cell.workload][cell.system] = cell.result;
  }
  ExportRows(label, SweepRows(sweep));
  return sweep;
}

// Prints one metric of a sweep as a table, with each row normalized
// against the metric's value under `baseline` (so the baseline column
// prints 1.00).  The geomean row is annotated with the metric's
// direction: `higher_is_better` selects between "geomean (higher is
// better)" and "geomean (lower is better)".
inline void PrintNormalizedTable(
    const std::string& title, const SweepResult& sweep,
    const std::vector<harness::SystemKind>& systems,
    harness::SystemKind baseline,
    const std::function<double(const workload::RunResult&)>& extract,
    bool higher_is_better) {
  metrics::TextTable table(title);
  std::vector<std::string> columns{"workload"};
  for (harness::SystemKind kind : systems) {
    columns.emplace_back(harness::SystemName(kind));
  }
  table.SetColumns(columns);

  std::map<harness::SystemKind, std::vector<double>> normalized;
  for (const auto& name : sweep.workloads) {
    const auto& row = sweep.results.at(name);
    const double base_value = extract(row.at(baseline));
    std::vector<std::string> cells{name};
    for (harness::SystemKind kind : systems) {
      const double v = metrics::Normalize(extract(row.at(kind)), base_value);
      normalized[kind].push_back(v);
      cells.push_back(metrics::TextTable::Fmt(v));
    }
    table.AddRow(cells);
  }
  std::vector<std::string> mean_row{
      higher_is_better ? "geomean (higher is better)"
                       : "geomean (lower is better)"};
  for (harness::SystemKind kind : systems) {
    mean_row.push_back(
        metrics::TextTable::Fmt(metrics::GeometricMean(normalized[kind])));
  }
  table.AddRow(mean_row);
  table.Print();
}

// Prints the well-aligned-rate table (Tables 1/3/4 format).
inline void PrintAlignmentTable(
    const std::string& title, const SweepResult& sweep,
    const std::vector<harness::SystemKind>& systems) {
  metrics::TextTable table(title);
  std::vector<std::string> columns{"workload"};
  for (harness::SystemKind kind : systems) {
    columns.emplace_back(harness::SystemName(kind));
  }
  table.SetColumns(columns);
  for (const auto& name : sweep.workloads) {
    std::vector<std::string> cells{name};
    for (harness::SystemKind kind : systems) {
      cells.push_back(metrics::TextTable::Pct(
          sweep.results.at(name).at(kind).alignment.well_aligned_rate));
    }
    table.AddRow(cells);
  }
  table.Print();
}

// Latency-reporting workloads only (the TailBench-style subset).
inline std::vector<workload::WorkloadSpec> LatencyWorkloads() {
  std::vector<workload::WorkloadSpec> out;
  for (const auto& spec : workload::CleanSlateCatalog()) {
    if (spec.kind == workload::Kind::kLatency) {
      out.push_back(spec);
    }
  }
  return out;
}

}  // namespace bench

#endif  // BENCH_BENCH_COMMON_H_
