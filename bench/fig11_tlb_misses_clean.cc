// Figure 11 reproduction: TLB misses of all sixteen workloads in a
// clean-slate fragmented VM, normalized to GEMINI (as the paper plots it;
// higher bars = more misses than Gemini).
#include "bench/bench_common.h"

int main() {
  const auto systems = harness::AllSystems();
  harness::BedOptions bed;
  const auto sweep = bench::RunSweep(workload::CleanSlateCatalog(), systems,
                                     bed, harness::RunCleanSlate,
                                     "fig11_tlb_misses");
  bench::PrintNormalizedTable(
      "Figure 11: clean-slate TLB misses (normalized to Gemini; lower is "
      "better)",
      sweep, systems, harness::SystemKind::kGemini,
      [](const workload::RunResult& r) {
        return static_cast<double>(r.tlb_misses);
      },
      false);
  return 0;
}
