// Figure 12 reproduction: throughput in a *reused* VM (after a
// large-working-set SVM run completed and exited in the same VM),
// normalized to Host-B-VM-B.
//
// Expected shape: every huge-page system improves versus its clean-slate
// self (the host backing is already huge), and Gemini leads because its
// huge bucket hands freed well-aligned regions back out whole.
#include "bench/bench_common.h"

int main() {
  const auto systems = harness::AllSystems();
  harness::BedOptions bed;
  const auto sweep = bench::RunSweep(workload::CleanSlateCatalog(), systems,
                                     bed, harness::RunReusedVm,
                                     "fig12_throughput_reused");
  bench::PrintNormalizedTable(
      "Figure 12: reused-VM throughput (normalized to Host-B-VM-B)", sweep,
      systems, harness::SystemKind::kHostBVmB,
      [](const workload::RunResult& r) { return r.throughput; }, true);
  return 0;
}
