// Table 1 reproduction: rates of well-aligned huge pages for the four
// motivation workloads under the six huge-page systems (clean-slate
// fragmented VM).
//
// Expected shape: THP/CA-paging/Ranger low; HawkEye/Ingens middling;
// Gemini the clear majority (paper: 50-81 %).
#include "bench/bench_common.h"

int main() {
  const auto systems = harness::AlignmentTableSystems();
  harness::BedOptions bed;
  const auto sweep = bench::RunSweep(workload::MotivationCatalog(), systems,
                                     bed, harness::RunCleanSlate,
                                     "table01_alignment");
  bench::PrintAlignmentTable("Table 1: rates of well-aligned huge pages",
                             sweep, systems);
  return 0;
}
