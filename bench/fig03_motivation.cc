// Figure 3 reproduction: motivation experiment — throughput (Canneal,
// Streamcluster) and mean/p99 latency (Img-dnn, Specjbb) of the four
// motivation workloads across all eight systems, clean-slate fragmented
// VM, normalized to Host-B-VM-B.
//
// Expected shape (paper §2.3): Misalignment only marginally beats base
// pages; THP/CA-paging/Ranger gain little or lose to overhead;
// Ingens/HawkEye gain modestly; Gemini gains the most.
#include "bench/bench_common.h"

int main() {
  const auto systems = harness::AllSystems();
  harness::BedOptions bed;
  const auto sweep = bench::RunSweep(workload::MotivationCatalog(), systems,
                                     bed, harness::RunCleanSlate,
                                     "fig03_motivation");

  bench::PrintNormalizedTable(
      "Figure 3a: motivation throughput (normalized to Host-B-VM-B)", sweep,
      systems, harness::SystemKind::kHostBVmB,
      [](const workload::RunResult& r) { return r.throughput; }, true);

  // Latency panels for the latency-reporting pair.
  metrics::TextTable lat("Figure 3b: motivation latencies (normalized)");
  std::vector<std::string> columns{"workload / metric"};
  for (harness::SystemKind kind : systems) {
    columns.emplace_back(harness::SystemName(kind));
  }
  lat.SetColumns(columns);
  for (const auto& name : sweep.workloads) {
    const auto& row = sweep.results.at(name);
    if (row.at(harness::SystemKind::kHostBVmB).requests == 0) {
      continue;  // throughput-only workload
    }
    const double base_mean =
        row.at(harness::SystemKind::kHostBVmB).mean_latency;
    const double base_tail =
        row.at(harness::SystemKind::kHostBVmB).p99_latency;
    std::vector<std::string> mean_cells{name + " mean"};
    std::vector<std::string> tail_cells{name + " p99"};
    for (harness::SystemKind kind : systems) {
      mean_cells.push_back(metrics::TextTable::Fmt(
          metrics::Normalize(row.at(kind).mean_latency, base_mean)));
      tail_cells.push_back(metrics::TextTable::Fmt(
          metrics::Normalize(row.at(kind).p99_latency, base_tail)));
    }
    lat.AddRow(mean_cells);
    lat.AddRow(tail_cells);
  }
  lat.Print();
  return 0;
}
