// Figure 14 reproduction: p99 latency in a reused VM, normalized to
// Host-B-VM-B (lower is better).
#include "bench/bench_common.h"

int main() {
  const auto systems = harness::AllSystems();
  harness::BedOptions bed;
  const auto sweep = bench::RunSweep(bench::LatencyWorkloads(), systems, bed,
                                     harness::RunReusedVm,
                                     "fig14_tail_latency_reused");
  bench::PrintNormalizedTable(
      "Figure 14: reused-VM p99 latency (normalized to Host-B-VM-B; lower "
      "is better)",
      sweep, systems, harness::SystemKind::kHostBVmB,
      [](const workload::RunResult& r) { return r.p99_latency; }, false);
  return 0;
}
