// Table 3 reproduction: rates of well-aligned huge pages for all sixteen
// workloads under the six huge-page systems, clean-slate fragmented VM.
#include "bench/bench_common.h"

int main() {
  const auto systems = harness::AlignmentTableSystems();
  harness::BedOptions bed;
  const auto sweep = bench::RunSweep(workload::CleanSlateCatalog(), systems,
                                     bed, harness::RunCleanSlate,
                                     "table03_alignment_clean");
  bench::PrintAlignmentTable(
      "Table 3: well-aligned huge page rates, clean-slate VM", sweep,
      systems);
  return 0;
}
