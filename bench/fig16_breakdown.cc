// Figure 16 reproduction: Gemini performance breakdown under memory
// fragmentation — how much of Gemini's throughput each mechanism group
// contributes: EMA + huge booking ("EMA/HB") versus the huge bucket.
//
// Methodology (mirrors the paper's ablation): run the reused-VM scenario
// under (a) full Gemini, (b) EMA/HB only (bucket off), and (c) bucket only
// (EMA/HB off).  The contribution of each part is its ablated gain over
// Host-B-VM-B as a share of the summed gains.  Expected shape: EMA/HB
// contributes the majority (~2/3 in the paper), with the bucket mattering
// most for allocation-churning workloads (Redis, RocksDB, Memcached).
#include "bench/bench_common.h"
#include "metrics/miss_breakdown.h"

namespace {

struct Cell {
  workload::RunResult result;
  double wall_ms = 0.0;
};

}  // namespace

int main() {
  const std::vector<std::string> names = {"Canneal", "Redis",  "RocksDB",
                                          "Memcached", "CG.D", "SVM"};
  harness::BedOptions bed;

  gemini::GeminiOptions full;
  gemini::GeminiOptions ema_only;
  ema_only.enable_bucket = false;
  gemini::GeminiOptions bucket_only;
  bucket_only.enable_ema = false;

  // Variant-minor cell layout: base, full, EMA/HB only, bucket only.
  const std::vector<std::string> variants = {"Host-B-VM-B", "Gemini",
                                             "Gemini-EMA/HB",
                                             "Gemini-bucket"};
  const size_t kVariants = variants.size();
  harness::SweepRunnerOptions options;
  options.label = "fig16_breakdown";
  options.cell_name = [&](size_t i) {
    return names[i / kVariants] + " x " + variants[i % kVariants];
  };
  const auto cells = harness::ParallelMap(
      names.size() * kVariants,
      [&](size_t i) {
        const workload::WorkloadSpec spec =
            bench::MaybeFast(workload::SpecByName(names[i / kVariants]));
        const harness::BedOptions cell_bed = bench::TracedBed(
            bed, "fig16_breakdown", i,
            names[i / kVariants] + "_" + variants[i % kVariants]);
        const auto start = std::chrono::steady_clock::now();
        Cell cell;
        switch (i % kVariants) {
          case 0:
            cell.result = harness::RunReusedVm(harness::SystemKind::kHostBVmB,
                                               spec, cell_bed);
            break;
          case 1:
            cell.result = harness::RunGeminiAblation(spec, cell_bed, full);
            break;
          case 2:
            cell.result = harness::RunGeminiAblation(spec, cell_bed, ema_only);
            break;
          default:
            cell.result =
                harness::RunGeminiAblation(spec, cell_bed, bucket_only);
        }
        cell.wall_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - start)
                           .count();
        return cell;
      },
      std::move(options));

  metrics::TextTable table(
      "Figure 16: Gemini performance breakdown (share of throughput gain "
      "over Host-B-VM-B)");
  table.SetColumns({"workload", "full thr", "EMA/HB share", "bucket share"});
  std::vector<double> ema_shares;
  std::vector<double> bucket_shares;
  std::vector<metrics::ResultRow> rows;
  for (size_t n = 0; n < names.size(); ++n) {
    const auto& base = cells[n * kVariants + 0].result;
    const auto& with_full = cells[n * kVariants + 1].result;
    const auto& with_ema = cells[n * kVariants + 2].result;
    const auto& with_bucket = cells[n * kVariants + 3].result;
    const double gain_ema =
        std::max(0.0, with_ema.throughput - base.throughput);
    const double gain_bucket =
        std::max(0.0, with_bucket.throughput - base.throughput);
    const double total = gain_ema + gain_bucket;
    const double ema_share = total > 0 ? gain_ema / total : 0.0;
    const double bucket_share = total > 0 ? gain_bucket / total : 0.0;
    ema_shares.push_back(ema_share);
    bucket_shares.push_back(bucket_share);
    table.AddRow({names[n],
                  metrics::TextTable::Fmt(
                      metrics::Normalize(with_full.throughput,
                                         base.throughput)),
                  metrics::TextTable::Pct(ema_share),
                  metrics::TextTable::Pct(bucket_share)});
    for (size_t v = 0; v < kVariants; ++v) {
      rows.push_back(metrics::ResultRow{names[n], variants[v],
                                        &cells[n * kVariants + v].result,
                                        cells[n * kVariants + v].wall_ms,
                                        bed.seed});
    }
  }
  table.AddRow({"average", "",
                metrics::TextTable::Pct(metrics::ArithmeticMean(ema_shares)),
                metrics::TextTable::Pct(
                    metrics::ArithmeticMean(bucket_shares))});
  table.Print();

  // Companion table: where full Gemini's remaining TLB misses come from —
  // cold (demand paging), precise invalidation (generation-stamp drops),
  // or capacity.  Rendering lives in metrics::RenderMissBreakdown so
  // tests/test_metrics.cc can pin the byte-exact format.
  std::vector<metrics::MissSourceRow> miss_rows;
  for (size_t n = 0; n < names.size(); ++n) {
    const auto& full_run = cells[n * kVariants + 1].result;
    miss_rows.push_back(metrics::MissSourceRow{
        names[n], full_run.tlb_misses, full_run.faulting_accesses,
        full_run.counters.tlb_stale_hits,
        full_run.counters.tlb_conflict_evictions_base,
        full_run.counters.tlb_conflict_evictions_huge,
        full_run.counters.tlb_capacity_evictions_base,
        full_run.counters.tlb_capacity_evictions_huge});
  }
  std::fputs(metrics::RenderMissBreakdown(miss_rows).c_str(), stdout);

  // Second companion: what those misses cost per walk level.  Splits full
  // Gemini's measured-phase walk references by level and dimension (guest
  // vs host, memory vs PWC vs nested cache) and the cycles each level
  // charged, using the walker's default cost knobs.  The miss-source table
  // above is a pinned golden (test_metrics.cc); this one is additive.
  std::vector<metrics::WalkLevelRow> walk_rows;
  for (size_t n = 0; n < names.size(); ++n) {
    const auto& full_run = cells[n * kVariants + 1].result;
    walk_rows.push_back(
        metrics::WalkLevelRow{names[n], full_run.counters.walk});
  }
  std::fputs(metrics::RenderWalkLevelBreakdown(walk_rows).c_str(), stdout);

  bench::ExportRows("fig16_breakdown", rows);
  return 0;
}
