// Figure 16 reproduction: Gemini performance breakdown under memory
// fragmentation — how much of Gemini's throughput each mechanism group
// contributes: EMA + huge booking ("EMA/HB") versus the huge bucket.
//
// Methodology (mirrors the paper's ablation): run the reused-VM scenario
// under (a) full Gemini, (b) EMA/HB only (bucket off), and (c) bucket only
// (EMA/HB off).  The contribution of each part is its ablated gain over
// Host-B-VM-B as a share of the summed gains.  Expected shape: EMA/HB
// contributes the majority (~2/3 in the paper), with the bucket mattering
// most for allocation-churning workloads (Redis, RocksDB, Memcached).
#include "bench/bench_common.h"

int main() {
  const std::vector<std::string> names = {"Canneal", "Redis",  "RocksDB",
                                          "Memcached", "CG.D", "SVM"};
  harness::BedOptions bed;

  gemini::GeminiOptions full;
  gemini::GeminiOptions ema_only;
  ema_only.enable_bucket = false;
  gemini::GeminiOptions bucket_only;
  bucket_only.enable_ema = false;

  metrics::TextTable table(
      "Figure 16: Gemini performance breakdown (share of throughput gain "
      "over Host-B-VM-B)");
  table.SetColumns({"workload", "full thr", "EMA/HB share", "bucket share"});
  std::vector<double> ema_shares;
  std::vector<double> bucket_shares;
  for (const auto& name : names) {
    const workload::WorkloadSpec spec =
        bench::MaybeFast(workload::SpecByName(name));
    const auto base =
        harness::RunReusedVm(harness::SystemKind::kHostBVmB, spec, bed);
    const auto with_full = harness::RunGeminiAblation(spec, bed, full);
    const auto with_ema = harness::RunGeminiAblation(spec, bed, ema_only);
    const auto with_bucket =
        harness::RunGeminiAblation(spec, bed, bucket_only);
    const double gain_ema =
        std::max(0.0, with_ema.throughput - base.throughput);
    const double gain_bucket =
        std::max(0.0, with_bucket.throughput - base.throughput);
    const double total = gain_ema + gain_bucket;
    const double ema_share = total > 0 ? gain_ema / total : 0.0;
    const double bucket_share = total > 0 ? gain_bucket / total : 0.0;
    ema_shares.push_back(ema_share);
    bucket_shares.push_back(bucket_share);
    table.AddRow({name,
                  metrics::TextTable::Fmt(
                      metrics::Normalize(with_full.throughput,
                                         base.throughput)),
                  metrics::TextTable::Pct(ema_share),
                  metrics::TextTable::Pct(bucket_share)});
    std::fprintf(stderr, "%s done\n", name.c_str());
  }
  table.AddRow({"average", "",
                metrics::TextTable::Pct(metrics::ArithmeticMean(ema_shares)),
                metrics::TextTable::Pct(
                    metrics::ArithmeticMean(bucket_shares))});
  table.Print();
  return 0;
}
