// Overcommit / tiered-memory benchmark (engineering benchmark, not a
// paper figure): how well each system keeps huge-page coverage — and how
// badly it fragments the host — while the reclaim daemon demotes cold
// pages to the far tier under memory overcommit (DESIGN.md §3i).
//
// Sweep: system x overcommit ratio x reclaim policy.
//
//   systems   Gemini plus the THP / Ingens / HawkEye baselines — the
//             interesting contrast is between systems that rebuild huge
//             pages after reclaim breaks them and systems that do not.
//   ratios    committed base-page guest demand as a multiple of the
//             host's frames; the default sweep is {1.0, 1.5, 2.0} and
//             GEMINI_OVERCOMMIT narrows it to a single ratio.  At 1.0 the
//             host carries 30% headroom over that nominal demand, so
//             conservative systems idle at the watermark (Gemini: one
//             reclaim pass) — but fault-greedy huge allocation can bloat
//             real residency far past nominal demand (THP backs a region
//             with 512 frames on first touch), so greedy systems reclaim
//             even in the nominal-1.0 column.  That bloat is part of what
//             the bench measures, not an artifact.
//   policies  lru (coldest-region approximation over EPT access counts)
//             vs damon (region-sampling monitor; src/damon/).
//             GEMINI_RECLAIM_POLICY narrows the sweep to one of them.
//
// Each cell collocates 4 VMs (two zipf key-value stores whose cold tails
// are what a good policy should demote, one scan-heavy analytics job, one
// uniform batch job) on one machine via the epoch-parallel backend, with
// the far tier unbounded so capacity rejections never mask policy
// differences.
//
// Everything printed to stdout is deterministic — a pure function of the
// seed, independent of GEMINI_VM_THREADS (the CI thread-diff re-runs this
// binary at 1 and 8 threads and requires byte-identical stdout).  Host
// wall-clock and Mops/s appear only in the JSON export.
//
// Output: BENCH_overcommit.json in $GEMINI_EXPORT (if set) or the current
// directory — an array of one object per cell:
//   {scenario, system, ratio, policy, vms, host_frames, ops, wall_ms,
//    mops_per_s, tlb_misses, tlb_miss_rate, host_coverage,
//    well_aligned_rate, final_host_fmfi, tier_demoted, tier_refaults,
//    tier_resident, tier_peak_resident, reclaim_passes, digest}
// tools/bench_diff.py consumes it by the shared "scenario"/"mops_per_s"
// keys (report-only in CI).  Schema documented in BENCHMARKS.md.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "base/check.h"
#include "harness/experiment.h"
#include "harness/systems.h"
#include "metrics/export.h"
#include "policy/reclaim.h"
#include "workload/workload.h"

namespace {

struct Row {
  std::string scenario;
  std::string system;
  double ratio = 0.0;
  std::string policy;
  uint64_t vms = 0;
  uint64_t host_frames = 0;
  uint64_t ops = 0;
  double wall_ms = 0.0;  // JSON only; never printed
  uint64_t tlb_misses = 0;
  double tlb_miss_rate = 0.0;
  double host_coverage = 0.0;  // mean huge-aligned coverage across VMs
  double well_aligned_rate = 0.0;
  double final_host_fmfi = 0.0;
  uint64_t tier_demoted = 0;
  uint64_t tier_refaults = 0;
  uint64_t tier_resident = 0;
  uint64_t tier_peak_resident = 0;
  uint64_t reclaim_passes = 0;
  uint64_t digest = 0;
};

void Mix(uint64_t* digest, uint64_t value) {
  *digest = (*digest ^ value) * 1099511628211ull;
}

void MixDouble(uint64_t* digest, double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  Mix(digest, bits);
}

// FNV digest over every deterministic field the cell produces: the
// thread-unobservability witness the CI thread-diff checks via stdout.
uint64_t Digest(const harness::CollocatedManyResult& r) {
  uint64_t d = 1469598103934665603ull;
  Mix(&d, r.epochs);
  Mix(&d, r.parallel_ops);
  Mix(&d, r.serial_ops);
  Mix(&d, r.tier_resident_total);
  Mix(&d, r.tier_peak_resident);
  Mix(&d, r.reclaim_passes);
  Mix(&d, r.reclaim_pages_demoted);
  MixDouble(&d, r.final_host_fmfi);
  for (const workload::RunResult& vm : r.vms) {
    Mix(&d, vm.ops);
    Mix(&d, vm.busy_cycles);
    Mix(&d, vm.tlb_hits);
    Mix(&d, vm.tlb_misses);
    Mix(&d, vm.faulting_accesses);
    Mix(&d, vm.counters.tier_demoted_pages);
    Mix(&d, vm.counters.tier_refaults);
    Mix(&d, vm.counters.tier_resident);
    MixDouble(&d, vm.alignment.well_aligned_rate);
    MixDouble(&d, vm.alignment.aligned_coverage);
  }
  return d;
}

// The four-tenant mix of one cell.  The zipf stores have hot heads and
// long cold tails — exactly the shape DAMON-guided demotion should
// exploit and coverage-blind reclaim should not.
workload::WorkloadSpec CellTenant(size_t i, bool fast) {
  workload::WorkloadSpec spec;
  const uint64_t ops = fast ? 2500 : 5000;
  switch (i % 4) {
    case 0:
    case 1:
      spec.name = "kv_zipf";
      spec.access = workload::AccessPattern::kZipf;
      spec.working_set_pages = 1920;
      spec.vma_count = 6;
      spec.ops = ops;
      break;
    case 2:
      spec.name = "scan_mix";
      spec.access = workload::AccessPattern::kScanMix;
      spec.working_set_pages = 1920;
      spec.vma_count = 4;
      spec.ops = ops;
      break;
    default:
      spec.name = "batch_uniform";
      spec.working_set_pages = 1920;
      spec.vma_count = 4;
      spec.ops = ops;
      break;
  }
  spec.work_per_access = 200;
  return spec;
}

constexpr uint64_t kVmsPerCell = 4;
// Committed demand per cell: the working sets plus the resident tail of
// boot noise (5% of each VM's 4096-page guest-physical space stays host-
// backed after boot).
constexpr uint64_t kDemandPages = kVmsPerCell * 1920 + kVmsPerCell * 205;

// Host sizing for a ratio: 30% headroom at ratio 1.0 keeps the control
// cell's free pool above the low watermark (0.08), so reclaim stays idle
// there; every higher ratio shrinks the host below demand and forces the
// daemon to hold the watermark by demoting to the far tier.
uint64_t HostFramesFor(double ratio) {
  return static_cast<uint64_t>(static_cast<double>(kDemandPages) * 1.30 /
                               ratio);
}

std::string Lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

Row RunCell(harness::SystemKind kind, double ratio,
            policy::ReclaimPolicyKind policy, bool fast) {
  std::vector<workload::WorkloadSpec> specs;
  for (size_t i = 0; i < kVmsPerCell; ++i) {
    specs.push_back(CellTenant(i, fast));
  }

  harness::BedOptions bed;
  bed.host_frames = HostFramesFor(ratio);
  bed.vm_gfn_count = 4096;
  bed.fragmented = false;  // fragmentation here must come from reclaim churn
  bed.boot_noise_fraction = 0.05;
  bed.seed = 211;
  bed.reclaim.enabled = true;
  bed.reclaim.policy = policy;
  bed.reclaim.far_capacity_pages = 0;  // unbounded: never reject a demotion
  bed.reclaim.damon = harness::DamonConfigFromEnv();

  harness::ScaleOptions scale;
  scale.quantum = 256;  // threads resolve from GEMINI_VM_THREADS
  scale.daemon_period = 500'000;  // denser reclaim ticks than the default

  const harness::CollocatedManyResult r =
      harness::RunCollocatedMany(kind, specs, bed, scale);

  Row row;
  std::ostringstream scenario;
  scenario << "oc_" << Lower(harness::SystemName(kind)) << '_'
           << policy::ReclaimPolicyName(policy) << "_r"
           << static_cast<int>(ratio * 100.0 + 0.5);
  row.scenario = scenario.str();
  row.system = std::string(harness::SystemName(kind));
  row.ratio = ratio;
  row.policy = policy::ReclaimPolicyName(policy);
  row.vms = r.vms.size();
  row.host_frames = bed.host_frames;
  row.wall_ms = r.exec_wall_ms;
  row.final_host_fmfi = r.final_host_fmfi;
  row.tier_demoted = r.reclaim_pages_demoted;
  row.tier_resident = r.tier_resident_total;
  row.tier_peak_resident = r.tier_peak_resident;
  row.reclaim_passes = r.reclaim_passes;
  uint64_t lookups = 0;
  for (const workload::RunResult& vm : r.vms) {
    row.ops += vm.ops;
    row.tlb_misses += vm.tlb_misses;
    lookups += vm.tlb_hits + vm.tlb_misses;
    row.host_coverage += vm.alignment.aligned_coverage;
    row.well_aligned_rate += vm.alignment.well_aligned_rate;
    row.tier_refaults += vm.counters.tier_refaults;
  }
  row.tlb_miss_rate = lookups == 0 ? 0.0
                                   : static_cast<double>(row.tlb_misses) /
                                         static_cast<double>(lookups);
  row.host_coverage /= static_cast<double>(r.vms.size());
  row.well_aligned_rate /= static_cast<double>(r.vms.size());
  row.digest = Digest(r);
  return row;
}

void PrintHeader() {
  std::printf(
      "%-26s %5s %6s  %9s  %9s  %8s  %8s  %6s  %8s %8s %8s  %6s  digest\n",
      "scenario", "ratio", "policy", "ops", "tlb_miss", "coverage",
      "aligned", "fmfi", "demoted", "refault", "resident", "passes");
}

void PrintRow(const Row& r) {
  std::printf(
      "%-26s %5.2f %6s  %9llu  %9llu  %8.4f  %8.4f  %6.4f  %8llu %8llu "
      "%8llu  %6llu  %llu\n",
      r.scenario.c_str(), r.ratio, r.policy.c_str(),
      static_cast<unsigned long long>(r.ops),
      static_cast<unsigned long long>(r.tlb_misses), r.host_coverage,
      r.well_aligned_rate, r.final_host_fmfi,
      static_cast<unsigned long long>(r.tier_demoted),
      static_cast<unsigned long long>(r.tier_refaults),
      static_cast<unsigned long long>(r.tier_resident),
      static_cast<unsigned long long>(r.reclaim_passes),
      static_cast<unsigned long long>(r.digest));
}

double Mops(const Row& r) {
  return r.wall_ms > 0.0
             ? static_cast<double>(r.ops) / (r.wall_ms * 1000.0)
             : 0.0;
}

std::string ToJson(const std::vector<Row>& rows) {
  std::ostringstream out;
  out << "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "  {\"scenario\": \"" << r.scenario << "\", \"system\": \""
        << r.system << "\", \"ratio\": " << r.ratio << ", \"policy\": \""
        << r.policy << "\", \"vms\": " << r.vms
        << ", \"host_frames\": " << r.host_frames << ", \"ops\": " << r.ops
        << ", \"wall_ms\": " << r.wall_ms
        << ", \"mops_per_s\": " << Mops(r)
        << ", \"tlb_misses\": " << r.tlb_misses
        << ", \"tlb_miss_rate\": " << r.tlb_miss_rate
        << ", \"host_coverage\": " << r.host_coverage
        << ", \"well_aligned_rate\": " << r.well_aligned_rate
        << ", \"final_host_fmfi\": " << r.final_host_fmfi
        << ", \"tier_demoted\": " << r.tier_demoted
        << ", \"tier_refaults\": " << r.tier_refaults
        << ", \"tier_resident\": " << r.tier_resident
        << ", \"tier_peak_resident\": " << r.tier_peak_resident
        << ", \"reclaim_passes\": " << r.reclaim_passes
        << ", \"digest\": " << r.digest << '}'
        << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  out << "]\n";
  return out.str();
}

}  // namespace

int main() {
  const bool fast = harness::FastMode();

  std::vector<double> ratios = {1.0, 1.5, 2.0};
  if (const double env_ratio = harness::OvercommitFromEnv(0.0);
      env_ratio > 0.0) {
    ratios = {env_ratio};
  }
  std::vector<policy::ReclaimPolicyKind> policies = {
      policy::ReclaimPolicyKind::kLruApprox, policy::ReclaimPolicyKind::kDamon};
  if (const char* env = std::getenv("GEMINI_RECLAIM_POLICY");
      env != nullptr && env[0] != '\0') {
    policies = {harness::ReclaimPolicyFromEnv(policies[0])};
  }
  const std::vector<harness::SystemKind> systems = {
      harness::SystemKind::kGemini, harness::SystemKind::kThp,
      harness::SystemKind::kIngens, harness::SystemKind::kHawkEye};

  std::vector<Row> rows;
  PrintHeader();
  for (const harness::SystemKind kind : systems) {
    for (const double ratio : ratios) {
      for (const policy::ReclaimPolicyKind policy : policies) {
        rows.push_back(RunCell(kind, ratio, policy, fast));
        PrintRow(rows.back());
      }
    }
  }

  const char* dir = std::getenv("GEMINI_EXPORT");
  const std::string prefix =
      dir != nullptr && dir[0] != '\0' ? std::string(dir) + "/" : "";
  const std::string path = prefix + "BENCH_overcommit.json";
  metrics::WriteFile(path, ToJson(rows));
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
