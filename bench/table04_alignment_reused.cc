// Table 4 reproduction: rates of well-aligned huge pages in a reused VM.
//
// Expected shape: every system's rate rises versus Table 3 (the host
// backing persists across the workload change), with Gemini near the top
// of the range (paper: 75-99 %).
#include "bench/bench_common.h"

int main() {
  const auto systems = harness::AlignmentTableSystems();
  harness::BedOptions bed;
  const auto sweep = bench::RunSweep(workload::CleanSlateCatalog(), systems,
                                     bed, harness::RunReusedVm,
                                     "table04_alignment_reused");
  bench::PrintAlignmentTable(
      "Table 4: well-aligned huge page rates, reused VM", sweep, systems);
  return 0;
}
