// Figure 17 reproduction: throughput when two VMs are collocated on the
// same host — TLB-sensitive workloads paired with TLB-sensitive and
// non-TLB-sensitive companions — across all systems, normalized to
// Host-B-VM-B.
//
// Expected shape: Gemini best or tied on sensitive pairs; on insensitive
// workloads (Shore, SP.D) all systems are within a few percent of base —
// Gemini introduces negligible overhead (paper: ~2-3 %).
#include "bench/bench_common.h"

int main() {
  struct Pair {
    const char* vm0;
    const char* vm1;
  };
  const std::vector<Pair> pairs = {
      {"Canneal", "Redis"},   // sensitive + sensitive
      {"Masstree", "SP.D"},   // sensitive + insensitive
      {"Silo", "Shore"},      // sensitive + insensitive
  };
  const auto systems = harness::AllSystems();
  harness::BedOptions bed;
  bed.host_frames = 640 * 1024;  // room for two VMs

  metrics::TextTable table(
      "Figure 17: collocated-VM throughput (normalized to Host-B-VM-B)");
  std::vector<std::string> columns{"VM / workload"};
  for (harness::SystemKind kind : systems) {
    columns.emplace_back(harness::SystemName(kind));
  }
  table.SetColumns(columns);

  for (const auto& pair : pairs) {
    const auto spec0 = bench::MaybeFast(workload::SpecByName(pair.vm0));
    const auto spec1 = bench::MaybeFast(workload::SpecByName(pair.vm1));
    std::map<harness::SystemKind, harness::CollocatedResult> results;
    for (harness::SystemKind kind : systems) {
      results[kind] = harness::RunCollocated(kind, spec0, spec1, bed);
      std::fprintf(stderr, ".");
    }
    std::fprintf(stderr, " %s+%s done\n", pair.vm0, pair.vm1);
    const double base0 =
        results[harness::SystemKind::kHostBVmB].vm0.throughput;
    const double base1 =
        results[harness::SystemKind::kHostBVmB].vm1.throughput;
    std::vector<std::string> row0{std::string("vm0 ") + pair.vm0};
    std::vector<std::string> row1{std::string("vm1 ") + pair.vm1};
    for (harness::SystemKind kind : systems) {
      row0.push_back(metrics::TextTable::Fmt(
          metrics::Normalize(results[kind].vm0.throughput, base0)));
      row1.push_back(metrics::TextTable::Fmt(
          metrics::Normalize(results[kind].vm1.throughput, base1)));
    }
    table.AddRow(row0);
    table.AddRow(row1);
  }
  table.Print();
  return 0;
}
