// Figure 17 reproduction: throughput when two VMs are collocated on the
// same host — TLB-sensitive workloads paired with TLB-sensitive and
// non-TLB-sensitive companions — across all systems, normalized to
// Host-B-VM-B.
//
// Expected shape: Gemini best or tied on sensitive pairs; on insensitive
// workloads (Shore, SP.D) all systems are within a few percent of base —
// Gemini introduces negligible overhead (paper: ~2-3 %).
//
// GEMINI_TLB_MODE adds a sweep dimension over the TLB sharing arrangement
// (private / shared / partitioned / dynamic, see mmu/tlb_domain.h): one
// table per mode, and export rows tagged with the mode.  Default (unset)
// runs the historical private arrangement only, with byte-identical output.
//
// When the sweep includes the dynamic arrangement, a static-vs-dynamic
// comparison is appended: four collocated VMs with heterogeneous working
// sets and phase-shifted diurnal load — the scenario where a boot-time
// even way split is wrong for half the machine's lifetime — run under
// kPartitioned and kDynamic, reporting the aggregate hit fraction and the
// repartitioner's activity.  Base-page system (Host-B-VM-B) so TLB reach,
// not huge coverage, decides the outcome.
#include <algorithm>

#include "bench/bench_common.h"

namespace {

struct Cell {
  harness::CollocatedResult result;
  double wall_ms = 0.0;
};

}  // namespace

int main() {
  struct Pair {
    const char* vm0;
    const char* vm1;
  };
  const std::vector<Pair> pairs = {
      {"Canneal", "Redis"},   // sensitive + sensitive
      {"Masstree", "SP.D"},   // sensitive + insensitive
      {"Silo", "Shore"},      // sensitive + insensitive
  };
  const auto systems = harness::AllSystems();
  const auto modes = harness::TlbModesFromEnv();
  // The historical single-mode run prints the historical table; a mode
  // sweep annotates each table with its arrangement.
  const bool annotate_mode =
      modes.size() > 1 || modes[0] != mmu::TlbShareMode::kPrivate;
  harness::BedOptions bed;
  bed.host_frames = 640 * 1024;  // room for two VMs

  const size_t per_mode = pairs.size() * systems.size();
  harness::SweepRunnerOptions options;
  options.label = "fig17_collocated";
  options.cell_name = [&](size_t i) {
    const Pair& pair = pairs[(i % per_mode) / systems.size()];
    std::string name = std::string(pair.vm0) + "+" + pair.vm1 + " x " +
                       std::string(harness::SystemName(
                           systems[i % systems.size()]));
    if (annotate_mode) {
      name += std::string(" [tlb=") +
              mmu::TlbShareModeName(modes[i / per_mode]) + "]";
    }
    return name;
  };
  const auto cells = harness::ParallelMap(
      modes.size() * per_mode,
      [&](size_t i) {
        const Pair& pair = pairs[(i % per_mode) / systems.size()];
        const auto spec0 = bench::MaybeFast(workload::SpecByName(pair.vm0));
        const auto spec1 = bench::MaybeFast(workload::SpecByName(pair.vm1));
        harness::BedOptions cell_bed = bed;
        cell_bed.tlb_mode = modes[i / per_mode];
        const auto start = std::chrono::steady_clock::now();
        Cell cell;
        cell.result = harness::RunCollocated(
            systems[i % systems.size()], spec0, spec1,
            bench::TracedBed(
                cell_bed, "fig17_collocated", i,
                std::string(pair.vm0) + "_" + pair.vm1 + "_" +
                    std::string(harness::SystemName(
                        systems[i % systems.size()])) +
                    (annotate_mode
                         ? std::string("_") +
                               mmu::TlbShareModeName(modes[i / per_mode])
                         : std::string())));
        cell.wall_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - start)
                           .count();
        return cell;
      },
      std::move(options));

  std::vector<metrics::ResultRow> rows;
  std::string interference_text;
  for (size_t m = 0; m < modes.size(); ++m) {
    const char* mode_name = mmu::TlbShareModeName(modes[m]);
    std::string title =
        "Figure 17: collocated-VM throughput (normalized to Host-B-VM-B)";
    if (annotate_mode) {
      title += std::string(" [tlb=") + mode_name + "]";
    }
    metrics::TextTable table(title);
    std::vector<std::string> columns{"VM / workload"};
    for (harness::SystemKind kind : systems) {
      columns.emplace_back(harness::SystemName(kind));
    }
    table.SetColumns(columns);

    for (size_t p = 0; p < pairs.size(); ++p) {
      const Pair& pair = pairs[p];
      const Cell* row_cells = &cells[m * per_mode + p * systems.size()];
      size_t base_index = 0;
      for (size_t k = 0; k < systems.size(); ++k) {
        if (systems[k] == harness::SystemKind::kHostBVmB) {
          base_index = k;
        }
      }
      const double base0 = row_cells[base_index].result.vm0.throughput;
      const double base1 = row_cells[base_index].result.vm1.throughput;
      std::vector<std::string> row0{std::string("vm0 ") + pair.vm0};
      std::vector<std::string> row1{std::string("vm1 ") + pair.vm1};
      for (size_t k = 0; k < systems.size(); ++k) {
        row0.push_back(metrics::TextTable::Fmt(
            metrics::Normalize(row_cells[k].result.vm0.throughput, base0)));
        row1.push_back(metrics::TextTable::Fmt(
            metrics::Normalize(row_cells[k].result.vm1.throughput, base1)));
        const std::string tag =
            std::string(pair.vm0) + "+" + pair.vm1;
        const std::string system(harness::SystemName(systems[k]));
        rows.push_back(metrics::ResultRow{tag + "/vm0", system,
                                          &row_cells[k].result.vm0,
                                          row_cells[k].wall_ms, bed.seed,
                                          mode_name});
        rows.push_back(metrics::ResultRow{tag + "/vm1", system,
                                          &row_cells[k].result.vm1,
                                          row_cells[k].wall_ms, bed.seed,
                                          mode_name});
      }
      table.AddRow(row0);
      table.AddRow(row1);
    }
    table.Print();

    // Shared/partitioned modes append the monitor's interference view: who
    // displaced whom, and each VM's marginal-utility curve.  Private mode
    // renders nothing (no monitor), keeping the historical stdout intact.
    std::vector<std::pair<std::string, const metrics::InterferenceReport*>>
        interference_cells;
    for (size_t p = 0; p < pairs.size(); ++p) {
      for (size_t k = 0; k < systems.size(); ++k) {
        const Cell& cell = cells[m * per_mode + p * systems.size() + k];
        interference_cells.emplace_back(
            std::string(pairs[p].vm0) + "+" + pairs[p].vm1 + " x " +
                std::string(harness::SystemName(systems[k])),
            &cell.result.interference);
      }
    }
    const std::string section = bench::RenderInterferenceSection(
        "Figure 17", mode_name, interference_cells);
    std::fputs(section.c_str(), stdout);
    interference_text += section;
  }
  // Static-vs-dynamic comparison under phase-changing churn.  The results
  // vector is reserved up front because `rows` keeps pointers into it.
  std::vector<harness::CollocatedManyResult> churn_results;
  if (std::find(modes.begin(), modes.end(), mmu::TlbShareMode::kDynamic) !=
      modes.end()) {
    const bool fast = harness::FastMode();
    std::vector<workload::WorkloadSpec> churn_specs;
    for (size_t i = 0; i < 4; ++i) {
      // VMs 0/2: working sets of ~8 pages per TLB set, so the hit rate
      // scales with every way they get (3 ways under the even split, ~5-6
      // at their deserved share); VMs 1/3: small sets saturated by a way
      // or two.  The diurnal phases put the big VMs at full load while the
      // small ones idle, so the right split drifts over time.
      const bool big = i % 2 == 0;
      workload::WorkloadSpec spec;
      spec.name = big ? "churn_big" : "churn_small";
      spec.working_set_pages = big ? 1024 : 64;
      spec.vma_count = big ? 4 : 2;
      spec.ops = fast ? 4000 : 12000;
      spec.churn_period_ops = 2000;
      spec.work_per_access = 200;
      churn_specs.push_back(spec);
    }
    harness::ScaleOptions scale;
    scale.quantum = 128;  // threads resolve from GEMINI_VM_THREADS
    scale.load_phases = {100, 25};
    scale.load_phase_epochs = 32;
    scale.daemon_period = 250'000;  // several repartition ticks per phase

    const std::vector<mmu::TlbShareMode> compare = {
        mmu::TlbShareMode::kPartitioned, mmu::TlbShareMode::kDynamic};
    churn_results.reserve(compare.size());
    metrics::TextTable table(
        "Figure 17: static vs dynamic way partitioning, 4-VM "
        "phase-changing churn (aggregate over VMs)");
    table.SetColumns({"arrangement", "hit %", "tlb misses", "repartitions",
                      "repart evictions"});
    for (const mmu::TlbShareMode cmode : compare) {
      const char* cmode_name = mmu::TlbShareModeName(cmode);
      harness::BedOptions cbed = bed;
      cbed.tlb_mode = cmode;
      cbed.trace = trace::TraceConfigFromEnv(std::string("fig17_churn4_") +
                                             cmode_name);
      churn_results.push_back(harness::RunCollocatedMany(
          harness::SystemKind::kHostBVmB, churn_specs, cbed, scale));
      const harness::CollocatedManyResult& r = churn_results.back();
      uint64_t hits = 0;
      uint64_t misses = 0;
      uint64_t evictions = 0;
      // The repartition count is domain-wide but each VM's row deltas it
      // over that VM's own measured window, so take the widest view.
      uint64_t repartitions = 0;
      for (const workload::RunResult& vm : r.vms) {
        hits += vm.tlb_hits;
        misses += vm.tlb_misses;
        evictions += vm.counters.tlb_repartition_evictions;
        repartitions = std::max(repartitions, vm.counters.tlb_repartitions);
      }
      const uint64_t lookups = hits + misses;
      table.AddRow({cmode_name,
                    metrics::TextTable::Pct(
                        lookups > 0 ? static_cast<double>(hits) /
                                          static_cast<double>(lookups)
                                    : 0.0),
                    std::to_string(misses), std::to_string(repartitions),
                    std::to_string(evictions)});
      for (size_t v = 0; v < r.vms.size(); ++v) {
        rows.push_back(metrics::ResultRow{
            "churn4/vm" + std::to_string(v),
            std::string(harness::SystemName(harness::SystemKind::kHostBVmB)),
            &r.vms[v], r.exec_wall_ms, bed.seed, cmode_name});
      }
    }
    table.Print();
  }

  bench::WriteInterferenceArtifact(interference_text);
  bench::ExportRows("fig17_collocated", rows);
  return 0;
}
