// Figure 8 reproduction: throughput of all sixteen workloads across the
// eight systems in a clean-slate VM, with and without memory
// fragmentation, normalized to Host-B-VM-B.
//
// Expected shape: Gemini best on (geometric) average; Translation Ranger
// at or below Host-B-VM-B due to continuous migration; the others between.
#include "bench/bench_common.h"

int main() {
  const auto systems = harness::AllSystems();
  const auto specs = workload::CleanSlateCatalog();
  for (bool fragmented : {true, false}) {
    harness::BedOptions bed;
    bed.fragmented = fragmented;
    const auto sweep = bench::RunSweep(
        specs, systems, bed, harness::RunCleanSlate,
        fragmented ? "fig08_fragmented" : "fig08_unfragmented");
    bench::PrintNormalizedTable(
        std::string("Figure 8: clean-slate throughput, ") +
            (fragmented ? "fragmented" : "unfragmented") +
            " (normalized to Host-B-VM-B)",
        sweep, systems, harness::SystemKind::kHostBVmB,
        [](const workload::RunResult& r) { return r.throughput; }, true);
  }
  return 0;
}
