// Figure 9 reproduction: mean request latencies of the latency-reporting
// workloads in a clean-slate VM, fragmented and unfragmented, normalized
// to Host-B-VM-B (lower is better).
#include "bench/bench_common.h"

int main() {
  const auto systems = harness::AllSystems();
  const auto specs = bench::LatencyWorkloads();
  for (bool fragmented : {true, false}) {
    harness::BedOptions bed;
    bed.fragmented = fragmented;
    const auto sweep = bench::RunSweep(
        specs, systems, bed, harness::RunCleanSlate,
        fragmented ? "fig09_fragmented" : "fig09_unfragmented");
    bench::PrintNormalizedTable(
        std::string("Figure 9: clean-slate mean latency, ") +
            (fragmented ? "fragmented" : "unfragmented") +
            " (normalized to Host-B-VM-B; lower is better)",
        sweep, systems, harness::SystemKind::kHostBVmB,
        [](const workload::RunResult& r) { return r.mean_latency; }, false);
  }
  return 0;
}
