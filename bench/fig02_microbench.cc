// Figure 2 reproduction: a microbenchmark randomly accessing a data set of
// varying size under the four guest/host page-size combinations
// (Host-B-VM-B, Host-B-VM-H, Host-H-VM-B, Host-H-VM-H).
//
// Expected shape (paper §2.2): with small data sets all four are equal (no
// TLB pressure); with large data sets only Host-H-VM-H — the well-aligned
// configuration — improves performance substantially, while the two
// misaligned configurations stay near base-page performance because no
// 2 MiB TLB entries can be installed.
#include <cstdio>
#include <string>
#include <vector>

#include "base/rng.h"
#include "base/types.h"
#include "harness/sweep_runner.h"
#include "metrics/table.h"
#include "mmu/page_table.h"
#include "mmu/translation_engine.h"

namespace {

using base::kHugeOrder;
using base::kPagesPerHuge;

enum class Mapping { kBase, kHuge };

struct Config {
  const char* label;
  Mapping guest;
  Mapping host;
};

// Builds the two-layer mapping for `regions` huge regions of data.
void BuildMappings(uint64_t regions, Mapping guest_mode, Mapping host_mode,
                   mmu::PageTable& guest, mmu::PageTable& ept) {
  for (uint64_t r = 0; r < regions; ++r) {
    if (guest_mode == Mapping::kHuge) {
      guest.MapHuge(r, r * kPagesPerHuge);
    } else {
      for (uint64_t s = 0; s < kPagesPerHuge; ++s) {
        guest.MapBase((r << kHugeOrder) + s, r * kPagesPerHuge + s);
      }
    }
    if (host_mode == Mapping::kHuge) {
      ept.MapHuge(r, (regions + r) * kPagesPerHuge);
    } else {
      for (uint64_t s = 0; s < kPagesPerHuge; ++s) {
        ept.MapBase(r * kPagesPerHuge + s,
                    (regions + r) * kPagesPerHuge + s);
      }
    }
  }
}

// Random accesses through the translation engine; returns ops per kilocycle
// (translation + a fixed per-access compute cost).
double Measure(uint64_t regions, Mapping guest_mode, Mapping host_mode) {
  mmu::PageTable guest;
  mmu::PageTable ept;
  BuildMappings(regions, guest_mode, host_mode, guest, ept);
  mmu::TranslationEngine::Config config;  // paper-sized TLB (1536 entries)
  mmu::TranslationEngine engine(config, &guest, &ept);
  base::Rng rng(42);
  const uint64_t pages = regions * kPagesPerHuge;
  constexpr uint64_t kOps = 300000;
  constexpr base::Cycles kWorkPerAccess = 150;
  base::Cycles total = kOps * kWorkPerAccess;
  for (uint64_t i = 0; i < kOps; ++i) {
    const auto r = engine.Translate(rng.NextBelow(pages));
    total += r.cycles;
  }
  return 1000.0 * static_cast<double>(kOps) / static_cast<double>(total);
}

}  // namespace

int main() {
  const std::vector<Config> configs = {
      {"Host-B-VM-B", Mapping::kBase, Mapping::kBase},
      {"Host-B-VM-H", Mapping::kHuge, Mapping::kBase},
      {"Host-H-VM-B", Mapping::kBase, Mapping::kHuge},
      {"Host-H-VM-H", Mapping::kHuge, Mapping::kHuge},
  };
  // Data-set sizes in 2 MiB regions: 4 MiB ... 512 MiB.
  const std::vector<uint64_t> sizes = {2, 8, 32, 128, 256};

  metrics::TextTable table(
      "Figure 2: microbenchmark throughput (ops/kcycle) vs data-set size");
  std::vector<std::string> columns{"data set"};
  for (const auto& c : configs) {
    columns.emplace_back(c.label);
  }
  columns.emplace_back("HH/BB speedup");
  table.SetColumns(columns);

  // All (size, config) cells are independent measurements; run them on the
  // sweep pool and read them back in index order.
  harness::SweepRunnerOptions options;
  options.label = "fig02_microbench";
  options.cell_name = [&](size_t i) {
    return std::to_string(sizes[i / configs.size()] * 2) + " MiB x " +
           configs[i % configs.size()].label;
  };
  const auto measured = harness::ParallelMap(
      sizes.size() * configs.size(),
      [&](size_t i) {
        const Config& c = configs[i % configs.size()];
        return Measure(sizes[i / configs.size()], c.guest, c.host);
      },
      std::move(options));

  for (size_t s = 0; s < sizes.size(); ++s) {
    std::vector<std::string> cells;
    char label[32];
    std::snprintf(label, sizeof(label), "%llu MiB",
                  static_cast<unsigned long long>(sizes[s] * 2));
    cells.emplace_back(label);
    double bb = 0;
    double hh = 0;
    for (size_t k = 0; k < configs.size(); ++k) {
      const double v = measured[s * configs.size() + k];
      if (std::string(configs[k].label) == "Host-B-VM-B") {
        bb = v;
      }
      if (std::string(configs[k].label) == "Host-H-VM-H") {
        hh = v;
      }
      cells.push_back(metrics::TextTable::Fmt(v, 3));
    }
    cells.push_back(metrics::TextTable::Fmt(hh / bb, 2) + "x");
    table.AddRow(cells);
  }
  table.Print();
  std::printf(
      "\nShape check: misaligned configs (B-H / H-B) track Host-B-VM-B;\n"
      "only the well-aligned Host-H-VM-H gains once the data set exceeds\n"
      "the 4 KiB TLB reach (~6 MiB).\n");
  return 0;
}
