// Ablation (DESIGN.md §3): Gemini's adaptive booking timeout (Algorithm 1)
// versus fixed timeout values, on a churn-heavy workload where bookings
// turn over constantly.  Regenerates the design argument of paper §4.1: a
// too-small timeout loses bookings before they can be used; a too-large
// one holds memory hostage; the controller lands between without tuning.
#include "bench/bench_common.h"

int main() {
  workload::WorkloadSpec spec =
      bench::MaybeFast(workload::SpecByName("Memcached"));
  harness::BedOptions bed;

  metrics::TextTable table(
      "Ablation: booking timeout (fixed values vs Algorithm 1)");
  table.SetColumns({"timeout", "throughput", "p99", "aligned", "miss rate"});

  struct Variant {
    const char* label;
    base::Cycles initial;
    base::Cycles period;  // huge period => controller effectively frozen
  };
  const std::vector<Variant> variants = {
      {"fixed 2M cycles", 2'000'000, 1ull << 60},
      {"fixed 40M cycles", 40'000'000, 1ull << 60},
      {"fixed 800M cycles", 800'000'000, 1ull << 60},
      {"adaptive (Algorithm 1)", 40'000'000, 20'000'000},
  };
  for (const Variant& v : variants) {
    gemini::GeminiOptions options;
    options.initial_booking_timeout = v.initial;
    options.controller_period = v.period;
    const auto r = harness::RunGeminiAblation(spec, bed, options);
    table.AddRow({v.label, metrics::TextTable::Fmt(r.throughput, 3),
                  metrics::TextTable::Fmt(r.p99_latency, 0),
                  metrics::TextTable::Pct(r.alignment.well_aligned_rate),
                  metrics::TextTable::Fmt(r.tlb_miss_rate, 3)});
    std::fprintf(stderr, "%s done\n", v.label);
  }
  table.Print();
  return 0;
}
