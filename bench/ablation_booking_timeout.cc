// Ablation (DESIGN.md §3): Gemini's adaptive booking timeout (Algorithm 1)
// versus fixed timeout values, on a churn-heavy workload where bookings
// turn over constantly.  Regenerates the design argument of paper §4.1: a
// too-small timeout loses bookings before they can be used; a too-large
// one holds memory hostage; the controller lands between without tuning.
#include "bench/bench_common.h"

namespace {

struct Cell {
  workload::RunResult result;
  double wall_ms = 0.0;
};

}  // namespace

int main() {
  workload::WorkloadSpec spec =
      bench::MaybeFast(workload::SpecByName("Memcached"));
  harness::BedOptions bed;

  struct Variant {
    const char* label;
    base::Cycles initial;
    base::Cycles period;  // huge period => controller effectively frozen
  };
  const std::vector<Variant> variants = {
      {"fixed 2M cycles", 2'000'000, 1ull << 60},
      {"fixed 40M cycles", 40'000'000, 1ull << 60},
      {"fixed 800M cycles", 800'000'000, 1ull << 60},
      {"adaptive (Algorithm 1)", 40'000'000, 20'000'000},
  };

  harness::SweepRunnerOptions pool;
  pool.label = "ablation_booking_timeout";
  pool.cell_name = [&](size_t i) { return std::string(variants[i].label); };
  const auto cells = harness::ParallelMap(
      variants.size(),
      [&](size_t i) {
        gemini::GeminiOptions options;
        options.initial_booking_timeout = variants[i].initial;
        options.controller_period = variants[i].period;
        const auto start = std::chrono::steady_clock::now();
        Cell cell;
        cell.result = harness::RunGeminiAblation(
            spec,
            bench::TracedBed(bed, "ablation_booking_timeout", i,
                             variants[i].label),
            options);
        cell.wall_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - start)
                           .count();
        return cell;
      },
      std::move(pool));

  metrics::TextTable table(
      "Ablation: booking timeout (fixed values vs Algorithm 1)");
  table.SetColumns({"timeout", "throughput", "p99", "aligned", "miss rate"});
  std::vector<metrics::ResultRow> rows;
  for (size_t i = 0; i < variants.size(); ++i) {
    const workload::RunResult& r = cells[i].result;
    table.AddRow({variants[i].label, metrics::TextTable::Fmt(r.throughput, 3),
                  metrics::TextTable::Fmt(r.p99_latency, 0),
                  metrics::TextTable::Pct(r.alignment.well_aligned_rate),
                  metrics::TextTable::Fmt(r.tlb_miss_rate, 3)});
    rows.push_back(metrics::ResultRow{spec.name, variants[i].label,
                                      &cells[i].result, cells[i].wall_ms,
                                      bed.seed});
  }
  table.Print();
  bench::ExportRows("ablation_booking_timeout", rows);
  return 0;
}
