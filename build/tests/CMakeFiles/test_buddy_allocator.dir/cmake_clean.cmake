file(REMOVE_RECURSE
  "CMakeFiles/test_buddy_allocator.dir/test_buddy_allocator.cc.o"
  "CMakeFiles/test_buddy_allocator.dir/test_buddy_allocator.cc.o.d"
  "test_buddy_allocator"
  "test_buddy_allocator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_buddy_allocator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
