# Empty dependencies file for test_gemini_policy.
# This may be replaced when dependencies are built.
