file(REMOVE_RECURSE
  "CMakeFiles/test_gemini_policy.dir/test_gemini_policy.cc.o"
  "CMakeFiles/test_gemini_policy.dir/test_gemini_policy.cc.o.d"
  "test_gemini_policy"
  "test_gemini_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gemini_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
