file(REMOVE_RECURSE
  "CMakeFiles/test_ksm_balloon.dir/test_ksm_balloon.cc.o"
  "CMakeFiles/test_ksm_balloon.dir/test_ksm_balloon.cc.o.d"
  "test_ksm_balloon"
  "test_ksm_balloon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ksm_balloon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
