file(REMOVE_RECURSE
  "CMakeFiles/test_translation_engine.dir/test_translation_engine.cc.o"
  "CMakeFiles/test_translation_engine.dir/test_translation_engine.cc.o.d"
  "test_translation_engine"
  "test_translation_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_translation_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
