# Empty dependencies file for test_translation_engine.
# This may be replaced when dependencies are built.
