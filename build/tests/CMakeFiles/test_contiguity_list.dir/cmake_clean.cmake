file(REMOVE_RECURSE
  "CMakeFiles/test_contiguity_list.dir/test_contiguity_list.cc.o"
  "CMakeFiles/test_contiguity_list.dir/test_contiguity_list.cc.o.d"
  "test_contiguity_list"
  "test_contiguity_list.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_contiguity_list.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
