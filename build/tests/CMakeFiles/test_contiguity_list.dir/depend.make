# Empty dependencies file for test_contiguity_list.
# This may be replaced when dependencies are built.
