# Empty dependencies file for test_ema.
# This may be replaced when dependencies are built.
