file(REMOVE_RECURSE
  "CMakeFiles/test_ema.dir/test_ema.cc.o"
  "CMakeFiles/test_ema.dir/test_ema.cc.o.d"
  "test_ema"
  "test_ema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
