# Empty compiler generated dependencies file for test_mhps.
# This may be replaced when dependencies are built.
