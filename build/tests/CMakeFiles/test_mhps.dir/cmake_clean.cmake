file(REMOVE_RECURSE
  "CMakeFiles/test_mhps.dir/test_mhps.cc.o"
  "CMakeFiles/test_mhps.dir/test_mhps.cc.o.d"
  "test_mhps"
  "test_mhps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mhps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
