file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_machine.dir/test_fuzz_machine.cc.o"
  "CMakeFiles/test_fuzz_machine.dir/test_fuzz_machine.cc.o.d"
  "test_fuzz_machine"
  "test_fuzz_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
