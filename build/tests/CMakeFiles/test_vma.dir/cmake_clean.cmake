file(REMOVE_RECURSE
  "CMakeFiles/test_vma.dir/test_vma.cc.o"
  "CMakeFiles/test_vma.dir/test_vma.cc.o.d"
  "test_vma"
  "test_vma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
