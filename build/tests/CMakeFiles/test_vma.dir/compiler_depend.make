# Empty compiler generated dependencies file for test_vma.
# This may be replaced when dependencies are built.
