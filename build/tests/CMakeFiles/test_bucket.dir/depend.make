# Empty dependencies file for test_bucket.
# This may be replaced when dependencies are built.
