file(REMOVE_RECURSE
  "CMakeFiles/test_bucket.dir/test_bucket.cc.o"
  "CMakeFiles/test_bucket.dir/test_bucket.cc.o.d"
  "test_bucket"
  "test_bucket.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bucket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
