file(REMOVE_RECURSE
  "CMakeFiles/test_booking.dir/test_booking.cc.o"
  "CMakeFiles/test_booking.dir/test_booking.cc.o.d"
  "test_booking"
  "test_booking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_booking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
