# Empty compiler generated dependencies file for test_booking.
# This may be replaced when dependencies are built.
