file(REMOVE_RECURSE
  "CMakeFiles/test_fragmenter.dir/test_fragmenter.cc.o"
  "CMakeFiles/test_fragmenter.dir/test_fragmenter.cc.o.d"
  "test_fragmenter"
  "test_fragmenter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fragmenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
