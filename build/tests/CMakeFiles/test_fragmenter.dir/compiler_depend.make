# Empty compiler generated dependencies file for test_fragmenter.
# This may be replaced when dependencies are built.
