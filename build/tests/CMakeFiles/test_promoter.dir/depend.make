# Empty dependencies file for test_promoter.
# This may be replaced when dependencies are built.
