file(REMOVE_RECURSE
  "CMakeFiles/test_promoter.dir/test_promoter.cc.o"
  "CMakeFiles/test_promoter.dir/test_promoter.cc.o.d"
  "test_promoter"
  "test_promoter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_promoter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
