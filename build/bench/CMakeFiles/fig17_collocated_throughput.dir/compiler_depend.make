# Empty compiler generated dependencies file for fig17_collocated_throughput.
# This may be replaced when dependencies are built.
