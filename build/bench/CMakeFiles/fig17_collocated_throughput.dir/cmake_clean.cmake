file(REMOVE_RECURSE
  "CMakeFiles/fig17_collocated_throughput.dir/fig17_collocated_throughput.cc.o"
  "CMakeFiles/fig17_collocated_throughput.dir/fig17_collocated_throughput.cc.o.d"
  "fig17_collocated_throughput"
  "fig17_collocated_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_collocated_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
