file(REMOVE_RECURSE
  "CMakeFiles/fig09_mean_latency_clean.dir/fig09_mean_latency_clean.cc.o"
  "CMakeFiles/fig09_mean_latency_clean.dir/fig09_mean_latency_clean.cc.o.d"
  "fig09_mean_latency_clean"
  "fig09_mean_latency_clean.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_mean_latency_clean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
