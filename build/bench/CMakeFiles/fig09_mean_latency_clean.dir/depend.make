# Empty dependencies file for fig09_mean_latency_clean.
# This may be replaced when dependencies are built.
