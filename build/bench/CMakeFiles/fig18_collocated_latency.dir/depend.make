# Empty dependencies file for fig18_collocated_latency.
# This may be replaced when dependencies are built.
