file(REMOVE_RECURSE
  "CMakeFiles/fig18_collocated_latency.dir/fig18_collocated_latency.cc.o"
  "CMakeFiles/fig18_collocated_latency.dir/fig18_collocated_latency.cc.o.d"
  "fig18_collocated_latency"
  "fig18_collocated_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_collocated_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
