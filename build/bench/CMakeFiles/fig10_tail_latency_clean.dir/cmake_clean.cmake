file(REMOVE_RECURSE
  "CMakeFiles/fig10_tail_latency_clean.dir/fig10_tail_latency_clean.cc.o"
  "CMakeFiles/fig10_tail_latency_clean.dir/fig10_tail_latency_clean.cc.o.d"
  "fig10_tail_latency_clean"
  "fig10_tail_latency_clean.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_tail_latency_clean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
