# Empty compiler generated dependencies file for fig10_tail_latency_clean.
# This may be replaced when dependencies are built.
