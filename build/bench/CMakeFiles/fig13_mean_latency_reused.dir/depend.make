# Empty dependencies file for fig13_mean_latency_reused.
# This may be replaced when dependencies are built.
