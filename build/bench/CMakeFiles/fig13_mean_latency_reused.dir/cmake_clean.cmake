file(REMOVE_RECURSE
  "CMakeFiles/fig13_mean_latency_reused.dir/fig13_mean_latency_reused.cc.o"
  "CMakeFiles/fig13_mean_latency_reused.dir/fig13_mean_latency_reused.cc.o.d"
  "fig13_mean_latency_reused"
  "fig13_mean_latency_reused.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_mean_latency_reused.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
