file(REMOVE_RECURSE
  "CMakeFiles/fig08_throughput_clean.dir/fig08_throughput_clean.cc.o"
  "CMakeFiles/fig08_throughput_clean.dir/fig08_throughput_clean.cc.o.d"
  "fig08_throughput_clean"
  "fig08_throughput_clean.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_throughput_clean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
