# Empty compiler generated dependencies file for fig08_throughput_clean.
# This may be replaced when dependencies are built.
