# Empty compiler generated dependencies file for table04_alignment_reused.
# This may be replaced when dependencies are built.
