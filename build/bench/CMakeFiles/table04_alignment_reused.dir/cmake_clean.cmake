file(REMOVE_RECURSE
  "CMakeFiles/table04_alignment_reused.dir/table04_alignment_reused.cc.o"
  "CMakeFiles/table04_alignment_reused.dir/table04_alignment_reused.cc.o.d"
  "table04_alignment_reused"
  "table04_alignment_reused.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table04_alignment_reused.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
