# Empty compiler generated dependencies file for fig11_tlb_misses_clean.
# This may be replaced when dependencies are built.
