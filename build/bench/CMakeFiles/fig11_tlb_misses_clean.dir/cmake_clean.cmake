file(REMOVE_RECURSE
  "CMakeFiles/fig11_tlb_misses_clean.dir/fig11_tlb_misses_clean.cc.o"
  "CMakeFiles/fig11_tlb_misses_clean.dir/fig11_tlb_misses_clean.cc.o.d"
  "fig11_tlb_misses_clean"
  "fig11_tlb_misses_clean.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_tlb_misses_clean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
