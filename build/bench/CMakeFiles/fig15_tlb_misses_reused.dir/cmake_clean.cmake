file(REMOVE_RECURSE
  "CMakeFiles/fig15_tlb_misses_reused.dir/fig15_tlb_misses_reused.cc.o"
  "CMakeFiles/fig15_tlb_misses_reused.dir/fig15_tlb_misses_reused.cc.o.d"
  "fig15_tlb_misses_reused"
  "fig15_tlb_misses_reused.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_tlb_misses_reused.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
