# Empty dependencies file for fig15_tlb_misses_reused.
# This may be replaced when dependencies are built.
