file(REMOVE_RECURSE
  "CMakeFiles/fig16_breakdown.dir/fig16_breakdown.cc.o"
  "CMakeFiles/fig16_breakdown.dir/fig16_breakdown.cc.o.d"
  "fig16_breakdown"
  "fig16_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
