file(REMOVE_RECURSE
  "CMakeFiles/table01_alignment.dir/table01_alignment.cc.o"
  "CMakeFiles/table01_alignment.dir/table01_alignment.cc.o.d"
  "table01_alignment"
  "table01_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table01_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
