# Empty compiler generated dependencies file for table01_alignment.
# This may be replaced when dependencies are built.
