# Empty dependencies file for ablation_booking_timeout.
# This may be replaced when dependencies are built.
