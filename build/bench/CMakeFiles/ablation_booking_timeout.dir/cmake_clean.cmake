file(REMOVE_RECURSE
  "CMakeFiles/ablation_booking_timeout.dir/ablation_booking_timeout.cc.o"
  "CMakeFiles/ablation_booking_timeout.dir/ablation_booking_timeout.cc.o.d"
  "ablation_booking_timeout"
  "ablation_booking_timeout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_booking_timeout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
