file(REMOVE_RECURSE
  "CMakeFiles/fig14_tail_latency_reused.dir/fig14_tail_latency_reused.cc.o"
  "CMakeFiles/fig14_tail_latency_reused.dir/fig14_tail_latency_reused.cc.o.d"
  "fig14_tail_latency_reused"
  "fig14_tail_latency_reused.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_tail_latency_reused.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
