# Empty dependencies file for fig14_tail_latency_reused.
# This may be replaced when dependencies are built.
