file(REMOVE_RECURSE
  "CMakeFiles/table03_alignment_clean.dir/table03_alignment_clean.cc.o"
  "CMakeFiles/table03_alignment_clean.dir/table03_alignment_clean.cc.o.d"
  "table03_alignment_clean"
  "table03_alignment_clean.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_alignment_clean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
