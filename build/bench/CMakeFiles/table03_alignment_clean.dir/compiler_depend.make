# Empty compiler generated dependencies file for table03_alignment_clean.
# This may be replaced when dependencies are built.
