file(REMOVE_RECURSE
  "CMakeFiles/fig12_throughput_reused.dir/fig12_throughput_reused.cc.o"
  "CMakeFiles/fig12_throughput_reused.dir/fig12_throughput_reused.cc.o.d"
  "fig12_throughput_reused"
  "fig12_throughput_reused.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_throughput_reused.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
