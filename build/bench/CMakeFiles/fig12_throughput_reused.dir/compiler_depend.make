# Empty compiler generated dependencies file for fig12_throughput_reused.
# This may be replaced when dependencies are built.
