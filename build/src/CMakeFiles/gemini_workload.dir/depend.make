# Empty dependencies file for gemini_workload.
# This may be replaced when dependencies are built.
