
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/experiment.cc" "src/CMakeFiles/gemini_workload.dir/harness/experiment.cc.o" "gcc" "src/CMakeFiles/gemini_workload.dir/harness/experiment.cc.o.d"
  "/root/repo/src/harness/systems.cc" "src/CMakeFiles/gemini_workload.dir/harness/systems.cc.o" "gcc" "src/CMakeFiles/gemini_workload.dir/harness/systems.cc.o.d"
  "/root/repo/src/metrics/alignment_audit.cc" "src/CMakeFiles/gemini_workload.dir/metrics/alignment_audit.cc.o" "gcc" "src/CMakeFiles/gemini_workload.dir/metrics/alignment_audit.cc.o.d"
  "/root/repo/src/metrics/counters.cc" "src/CMakeFiles/gemini_workload.dir/metrics/counters.cc.o" "gcc" "src/CMakeFiles/gemini_workload.dir/metrics/counters.cc.o.d"
  "/root/repo/src/metrics/export.cc" "src/CMakeFiles/gemini_workload.dir/metrics/export.cc.o" "gcc" "src/CMakeFiles/gemini_workload.dir/metrics/export.cc.o.d"
  "/root/repo/src/metrics/perf_model.cc" "src/CMakeFiles/gemini_workload.dir/metrics/perf_model.cc.o" "gcc" "src/CMakeFiles/gemini_workload.dir/metrics/perf_model.cc.o.d"
  "/root/repo/src/metrics/table.cc" "src/CMakeFiles/gemini_workload.dir/metrics/table.cc.o" "gcc" "src/CMakeFiles/gemini_workload.dir/metrics/table.cc.o.d"
  "/root/repo/src/workload/access_pattern.cc" "src/CMakeFiles/gemini_workload.dir/workload/access_pattern.cc.o" "gcc" "src/CMakeFiles/gemini_workload.dir/workload/access_pattern.cc.o.d"
  "/root/repo/src/workload/catalog.cc" "src/CMakeFiles/gemini_workload.dir/workload/catalog.cc.o" "gcc" "src/CMakeFiles/gemini_workload.dir/workload/catalog.cc.o.d"
  "/root/repo/src/workload/driver.cc" "src/CMakeFiles/gemini_workload.dir/workload/driver.cc.o" "gcc" "src/CMakeFiles/gemini_workload.dir/workload/driver.cc.o.d"
  "/root/repo/src/workload/workload.cc" "src/CMakeFiles/gemini_workload.dir/workload/workload.cc.o" "gcc" "src/CMakeFiles/gemini_workload.dir/workload/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gemini_os.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gemini_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gemini_vmem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gemini_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
