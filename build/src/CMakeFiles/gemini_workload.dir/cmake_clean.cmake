file(REMOVE_RECURSE
  "CMakeFiles/gemini_workload.dir/harness/experiment.cc.o"
  "CMakeFiles/gemini_workload.dir/harness/experiment.cc.o.d"
  "CMakeFiles/gemini_workload.dir/harness/systems.cc.o"
  "CMakeFiles/gemini_workload.dir/harness/systems.cc.o.d"
  "CMakeFiles/gemini_workload.dir/metrics/alignment_audit.cc.o"
  "CMakeFiles/gemini_workload.dir/metrics/alignment_audit.cc.o.d"
  "CMakeFiles/gemini_workload.dir/metrics/counters.cc.o"
  "CMakeFiles/gemini_workload.dir/metrics/counters.cc.o.d"
  "CMakeFiles/gemini_workload.dir/metrics/export.cc.o"
  "CMakeFiles/gemini_workload.dir/metrics/export.cc.o.d"
  "CMakeFiles/gemini_workload.dir/metrics/perf_model.cc.o"
  "CMakeFiles/gemini_workload.dir/metrics/perf_model.cc.o.d"
  "CMakeFiles/gemini_workload.dir/metrics/table.cc.o"
  "CMakeFiles/gemini_workload.dir/metrics/table.cc.o.d"
  "CMakeFiles/gemini_workload.dir/workload/access_pattern.cc.o"
  "CMakeFiles/gemini_workload.dir/workload/access_pattern.cc.o.d"
  "CMakeFiles/gemini_workload.dir/workload/catalog.cc.o"
  "CMakeFiles/gemini_workload.dir/workload/catalog.cc.o.d"
  "CMakeFiles/gemini_workload.dir/workload/driver.cc.o"
  "CMakeFiles/gemini_workload.dir/workload/driver.cc.o.d"
  "CMakeFiles/gemini_workload.dir/workload/workload.cc.o"
  "CMakeFiles/gemini_workload.dir/workload/workload.cc.o.d"
  "libgemini_workload.a"
  "libgemini_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemini_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
