file(REMOVE_RECURSE
  "CMakeFiles/gemini_base.dir/base/interval_set.cc.o"
  "CMakeFiles/gemini_base.dir/base/interval_set.cc.o.d"
  "CMakeFiles/gemini_base.dir/base/rng.cc.o"
  "CMakeFiles/gemini_base.dir/base/rng.cc.o.d"
  "CMakeFiles/gemini_base.dir/base/stats.cc.o"
  "CMakeFiles/gemini_base.dir/base/stats.cc.o.d"
  "libgemini_base.a"
  "libgemini_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemini_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
