file(REMOVE_RECURSE
  "libgemini_base.a"
)
