# Empty compiler generated dependencies file for gemini_base.
# This may be replaced when dependencies are built.
