file(REMOVE_RECURSE
  "libgemini_vmem.a"
)
