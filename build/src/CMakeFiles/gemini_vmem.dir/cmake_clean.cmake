file(REMOVE_RECURSE
  "CMakeFiles/gemini_vmem.dir/vmem/buddy_allocator.cc.o"
  "CMakeFiles/gemini_vmem.dir/vmem/buddy_allocator.cc.o.d"
  "CMakeFiles/gemini_vmem.dir/vmem/contiguity_list.cc.o"
  "CMakeFiles/gemini_vmem.dir/vmem/contiguity_list.cc.o.d"
  "CMakeFiles/gemini_vmem.dir/vmem/fragmenter.cc.o"
  "CMakeFiles/gemini_vmem.dir/vmem/fragmenter.cc.o.d"
  "CMakeFiles/gemini_vmem.dir/vmem/frame_space.cc.o"
  "CMakeFiles/gemini_vmem.dir/vmem/frame_space.cc.o.d"
  "libgemini_vmem.a"
  "libgemini_vmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemini_vmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
