# Empty dependencies file for gemini_vmem.
# This may be replaced when dependencies are built.
