
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vmem/buddy_allocator.cc" "src/CMakeFiles/gemini_vmem.dir/vmem/buddy_allocator.cc.o" "gcc" "src/CMakeFiles/gemini_vmem.dir/vmem/buddy_allocator.cc.o.d"
  "/root/repo/src/vmem/contiguity_list.cc" "src/CMakeFiles/gemini_vmem.dir/vmem/contiguity_list.cc.o" "gcc" "src/CMakeFiles/gemini_vmem.dir/vmem/contiguity_list.cc.o.d"
  "/root/repo/src/vmem/fragmenter.cc" "src/CMakeFiles/gemini_vmem.dir/vmem/fragmenter.cc.o" "gcc" "src/CMakeFiles/gemini_vmem.dir/vmem/fragmenter.cc.o.d"
  "/root/repo/src/vmem/frame_space.cc" "src/CMakeFiles/gemini_vmem.dir/vmem/frame_space.cc.o" "gcc" "src/CMakeFiles/gemini_vmem.dir/vmem/frame_space.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gemini_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
