file(REMOVE_RECURSE
  "CMakeFiles/gemini_mmu.dir/mmu/nested_walker.cc.o"
  "CMakeFiles/gemini_mmu.dir/mmu/nested_walker.cc.o.d"
  "CMakeFiles/gemini_mmu.dir/mmu/page_table.cc.o"
  "CMakeFiles/gemini_mmu.dir/mmu/page_table.cc.o.d"
  "CMakeFiles/gemini_mmu.dir/mmu/page_walk_cache.cc.o"
  "CMakeFiles/gemini_mmu.dir/mmu/page_walk_cache.cc.o.d"
  "CMakeFiles/gemini_mmu.dir/mmu/tlb.cc.o"
  "CMakeFiles/gemini_mmu.dir/mmu/tlb.cc.o.d"
  "CMakeFiles/gemini_mmu.dir/mmu/translation_engine.cc.o"
  "CMakeFiles/gemini_mmu.dir/mmu/translation_engine.cc.o.d"
  "libgemini_mmu.a"
  "libgemini_mmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemini_mmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
