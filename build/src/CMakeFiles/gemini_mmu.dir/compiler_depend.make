# Empty compiler generated dependencies file for gemini_mmu.
# This may be replaced when dependencies are built.
