file(REMOVE_RECURSE
  "libgemini_mmu.a"
)
