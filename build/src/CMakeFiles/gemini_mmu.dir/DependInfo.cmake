
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mmu/nested_walker.cc" "src/CMakeFiles/gemini_mmu.dir/mmu/nested_walker.cc.o" "gcc" "src/CMakeFiles/gemini_mmu.dir/mmu/nested_walker.cc.o.d"
  "/root/repo/src/mmu/page_table.cc" "src/CMakeFiles/gemini_mmu.dir/mmu/page_table.cc.o" "gcc" "src/CMakeFiles/gemini_mmu.dir/mmu/page_table.cc.o.d"
  "/root/repo/src/mmu/page_walk_cache.cc" "src/CMakeFiles/gemini_mmu.dir/mmu/page_walk_cache.cc.o" "gcc" "src/CMakeFiles/gemini_mmu.dir/mmu/page_walk_cache.cc.o.d"
  "/root/repo/src/mmu/tlb.cc" "src/CMakeFiles/gemini_mmu.dir/mmu/tlb.cc.o" "gcc" "src/CMakeFiles/gemini_mmu.dir/mmu/tlb.cc.o.d"
  "/root/repo/src/mmu/translation_engine.cc" "src/CMakeFiles/gemini_mmu.dir/mmu/translation_engine.cc.o" "gcc" "src/CMakeFiles/gemini_mmu.dir/mmu/translation_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gemini_vmem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gemini_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
