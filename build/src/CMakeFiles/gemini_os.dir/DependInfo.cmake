
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gemini/ema.cc" "src/CMakeFiles/gemini_os.dir/gemini/ema.cc.o" "gcc" "src/CMakeFiles/gemini_os.dir/gemini/ema.cc.o.d"
  "/root/repo/src/gemini/gemini_policy.cc" "src/CMakeFiles/gemini_os.dir/gemini/gemini_policy.cc.o" "gcc" "src/CMakeFiles/gemini_os.dir/gemini/gemini_policy.cc.o.d"
  "/root/repo/src/gemini/huge_booking.cc" "src/CMakeFiles/gemini_os.dir/gemini/huge_booking.cc.o" "gcc" "src/CMakeFiles/gemini_os.dir/gemini/huge_booking.cc.o.d"
  "/root/repo/src/gemini/huge_bucket.cc" "src/CMakeFiles/gemini_os.dir/gemini/huge_bucket.cc.o" "gcc" "src/CMakeFiles/gemini_os.dir/gemini/huge_bucket.cc.o.d"
  "/root/repo/src/gemini/mhps.cc" "src/CMakeFiles/gemini_os.dir/gemini/mhps.cc.o" "gcc" "src/CMakeFiles/gemini_os.dir/gemini/mhps.cc.o.d"
  "/root/repo/src/gemini/promoter.cc" "src/CMakeFiles/gemini_os.dir/gemini/promoter.cc.o" "gcc" "src/CMakeFiles/gemini_os.dir/gemini/promoter.cc.o.d"
  "/root/repo/src/os/balloon.cc" "src/CMakeFiles/gemini_os.dir/os/balloon.cc.o" "gcc" "src/CMakeFiles/gemini_os.dir/os/balloon.cc.o.d"
  "/root/repo/src/os/guest_kernel.cc" "src/CMakeFiles/gemini_os.dir/os/guest_kernel.cc.o" "gcc" "src/CMakeFiles/gemini_os.dir/os/guest_kernel.cc.o.d"
  "/root/repo/src/os/host_kernel.cc" "src/CMakeFiles/gemini_os.dir/os/host_kernel.cc.o" "gcc" "src/CMakeFiles/gemini_os.dir/os/host_kernel.cc.o.d"
  "/root/repo/src/os/kernel_base.cc" "src/CMakeFiles/gemini_os.dir/os/kernel_base.cc.o" "gcc" "src/CMakeFiles/gemini_os.dir/os/kernel_base.cc.o.d"
  "/root/repo/src/os/ksm.cc" "src/CMakeFiles/gemini_os.dir/os/ksm.cc.o" "gcc" "src/CMakeFiles/gemini_os.dir/os/ksm.cc.o.d"
  "/root/repo/src/os/machine.cc" "src/CMakeFiles/gemini_os.dir/os/machine.cc.o" "gcc" "src/CMakeFiles/gemini_os.dir/os/machine.cc.o.d"
  "/root/repo/src/os/virtual_machine.cc" "src/CMakeFiles/gemini_os.dir/os/virtual_machine.cc.o" "gcc" "src/CMakeFiles/gemini_os.dir/os/virtual_machine.cc.o.d"
  "/root/repo/src/os/vma.cc" "src/CMakeFiles/gemini_os.dir/os/vma.cc.o" "gcc" "src/CMakeFiles/gemini_os.dir/os/vma.cc.o.d"
  "/root/repo/src/policy/base_only.cc" "src/CMakeFiles/gemini_os.dir/policy/base_only.cc.o" "gcc" "src/CMakeFiles/gemini_os.dir/policy/base_only.cc.o.d"
  "/root/repo/src/policy/ca_paging.cc" "src/CMakeFiles/gemini_os.dir/policy/ca_paging.cc.o" "gcc" "src/CMakeFiles/gemini_os.dir/policy/ca_paging.cc.o.d"
  "/root/repo/src/policy/hawkeye.cc" "src/CMakeFiles/gemini_os.dir/policy/hawkeye.cc.o" "gcc" "src/CMakeFiles/gemini_os.dir/policy/hawkeye.cc.o.d"
  "/root/repo/src/policy/ingens.cc" "src/CMakeFiles/gemini_os.dir/policy/ingens.cc.o" "gcc" "src/CMakeFiles/gemini_os.dir/policy/ingens.cc.o.d"
  "/root/repo/src/policy/misalignment.cc" "src/CMakeFiles/gemini_os.dir/policy/misalignment.cc.o" "gcc" "src/CMakeFiles/gemini_os.dir/policy/misalignment.cc.o.d"
  "/root/repo/src/policy/policy.cc" "src/CMakeFiles/gemini_os.dir/policy/policy.cc.o" "gcc" "src/CMakeFiles/gemini_os.dir/policy/policy.cc.o.d"
  "/root/repo/src/policy/thp.cc" "src/CMakeFiles/gemini_os.dir/policy/thp.cc.o" "gcc" "src/CMakeFiles/gemini_os.dir/policy/thp.cc.o.d"
  "/root/repo/src/policy/translation_ranger.cc" "src/CMakeFiles/gemini_os.dir/policy/translation_ranger.cc.o" "gcc" "src/CMakeFiles/gemini_os.dir/policy/translation_ranger.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gemini_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gemini_vmem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gemini_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
