# Empty dependencies file for gemini_os.
# This may be replaced when dependencies are built.
