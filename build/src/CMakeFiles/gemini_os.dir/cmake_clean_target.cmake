file(REMOVE_RECURSE
  "libgemini_os.a"
)
