# Empty compiler generated dependencies file for collocated_vms.
# This may be replaced when dependencies are built.
