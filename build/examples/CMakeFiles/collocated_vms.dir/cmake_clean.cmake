file(REMOVE_RECURSE
  "CMakeFiles/collocated_vms.dir/collocated_vms.cpp.o"
  "CMakeFiles/collocated_vms.dir/collocated_vms.cpp.o.d"
  "collocated_vms"
  "collocated_vms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collocated_vms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
