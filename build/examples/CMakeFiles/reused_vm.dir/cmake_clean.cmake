file(REMOVE_RECURSE
  "CMakeFiles/reused_vm.dir/reused_vm.cpp.o"
  "CMakeFiles/reused_vm.dir/reused_vm.cpp.o.d"
  "reused_vm"
  "reused_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reused_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
