# Empty dependencies file for reused_vm.
# This may be replaced when dependencies are built.
