// Policy explorer: a small CLI over the experiment harness.  Runs one
// workload under one (or all) systems with overridable knobs, and can emit
// CSV/JSON for plotting.
//
//   $ ./build/examples/policy_explorer --workload Redis --system Gemini
//   $ ./build/examples/policy_explorer --workload Canneal --all \
//         --frag 0.9 --host-frag 0.95 --ops 200000 --csv results.csv
//
// Flags:
//   --workload NAME   workload from the Table 2 catalogue (default Canneal)
//   --system NAME     one of the eight systems (default Gemini)
//   --all             run all eight systems instead
//   --reused          reused-VM scenario instead of clean slate
//   --frag F          guest fragmentation FMFI target (default 0.8)
//   --host-frag F     host fragmentation FMFI target (default 0.85)
//   --unfragmented    disable fragmentation entirely
//   --ops N           override the workload's operation count
//   --seed N          experiment seed (default 17)
//   --csv PATH        also write results as CSV
//   --json PATH       also write results as JSON
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "metrics/export.h"

namespace {

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--workload NAME] [--system NAME | --all]\n"
               "          [--reused] [--frag F] [--host-frag F]\n"
               "          [--unfragmented] [--ops N] [--seed N]\n"
               "          [--csv PATH] [--json PATH]\n",
               argv0);
  std::exit(2);
}

harness::SystemKind SystemByName(const std::string& name) {
  for (harness::SystemKind kind : harness::AllSystems()) {
    if (name == std::string(harness::SystemName(kind))) {
      return kind;
    }
  }
  std::fprintf(stderr, "unknown system '%s'; valid:", name.c_str());
  for (harness::SystemKind kind : harness::AllSystems()) {
    std::fprintf(stderr, " %s", std::string(harness::SystemName(kind)).c_str());
  }
  std::fprintf(stderr, "\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload_name = "Canneal";
  std::string system_name = "Gemini";
  bool all_systems = false;
  bool reused = false;
  std::string csv_path;
  std::string json_path;
  harness::BedOptions bed;
  uint64_t ops_override = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
      }
      return argv[++i];
    };
    if (arg == "--workload") {
      workload_name = next();
    } else if (arg == "--system") {
      system_name = next();
    } else if (arg == "--all") {
      all_systems = true;
    } else if (arg == "--reused") {
      reused = true;
    } else if (arg == "--frag") {
      bed.fragmentation_target = std::strtod(next(), nullptr);
    } else if (arg == "--host-frag") {
      bed.host_fragmentation_target = std::strtod(next(), nullptr);
    } else if (arg == "--unfragmented") {
      bed.fragmented = false;
    } else if (arg == "--ops") {
      ops_override = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--seed") {
      bed.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--csv") {
      csv_path = next();
    } else if (arg == "--json") {
      json_path = next();
    } else {
      Usage(argv[0]);
    }
  }

  workload::WorkloadSpec spec = workload::SpecByName(workload_name);
  if (ops_override != 0) {
    spec.ops = ops_override;
  }
  std::vector<harness::SystemKind> systems =
      all_systems ? harness::AllSystems()
                  : std::vector<harness::SystemKind>{SystemByName(system_name)};

  std::printf("%-13s %10s %10s %10s %9s %8s\n", "system", "thr", "mean",
              "p99", "missrate", "aligned");
  std::vector<workload::RunResult> results;
  results.reserve(systems.size());
  std::vector<metrics::ResultRow> rows;
  for (harness::SystemKind kind : systems) {
    results.push_back(reused ? harness::RunReusedVm(kind, spec, bed)
                             : harness::RunCleanSlate(kind, spec, bed));
    const workload::RunResult& r = results.back();
    std::printf("%-13s %10.3f %10.0f %10.0f %8.1f%% %7.0f%%\n",
                std::string(harness::SystemName(kind)).c_str(), r.throughput,
                r.mean_latency, r.p99_latency, 100.0 * r.tlb_miss_rate,
                100.0 * r.alignment.well_aligned_rate);
  }
  for (size_t i = 0; i < systems.size(); ++i) {
    rows.push_back(metrics::ResultRow{
        workload_name, std::string(harness::SystemName(systems[i])),
        &results[i]});
  }
  if (!csv_path.empty()) {
    metrics::WriteFile(csv_path, metrics::ToCsv(rows));
    std::printf("wrote %s\n", csv_path.c_str());
  }
  if (!json_path.empty()) {
    metrics::WriteFile(json_path, metrics::ToJson(rows));
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
