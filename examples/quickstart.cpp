// Quickstart: build a virtualized machine, run one workload under Gemini
// and under vanilla THP, and compare TLB behaviour and well-aligned huge
// page rates.
//
//   $ ./build/examples/quickstart
//
// This is the smallest end-to-end use of the library's public API:
//   harness::MakeTestBed  - machine + VM under a named system
//   workload::*           - a workload spec and the driver
//   metrics::*            - alignment audit and counters
#include <cstdio>

#include "harness/experiment.h"

int main() {
  // A Redis-like workload: gradual heap growth, zipfian key popularity,
  // allocation churn — the pattern the paper highlights as hard for
  // uncoordinated huge-page management.
  workload::WorkloadSpec spec = workload::SpecByName("Redis");
  spec.ops = 150000;  // keep the demo quick

  harness::BedOptions bed;  // fragmented guest+host, boot noise: the
                            // realistic cloud starting state (paper §6.1)

  std::printf("Running '%s' (%llu MiB working set) under two systems...\n\n",
              spec.name.c_str(),
              static_cast<unsigned long long>(spec.working_set_pages * 4 /
                                              1024));

  for (harness::SystemKind kind :
       {harness::SystemKind::kThp, harness::SystemKind::kGemini}) {
    const workload::RunResult r = harness::RunCleanSlate(kind, spec, bed);
    std::printf("%-12s  throughput %.3f ops/kcycle   TLB miss rate %4.1f%%\n",
                std::string(harness::SystemName(kind)).c_str(), r.throughput,
                100.0 * r.tlb_miss_rate);
    std::printf("              guest huge pages %llu, host huge pages %llu, "
                "well-aligned pairs %llu (rate %.0f%%)\n",
                static_cast<unsigned long long>(r.alignment.guest_huge),
                static_cast<unsigned long long>(r.alignment.host_huge),
                static_cast<unsigned long long>(r.alignment.aligned_pairs),
                100.0 * r.alignment.well_aligned_rate);
    std::printf("              p99 latency %.0f cycles, mean %.0f cycles\n\n",
                r.p99_latency, r.mean_latency);
  }

  std::printf(
      "Gemini's cross-layer coordination turns misaligned huge pages into\n"
      "well-aligned ones, so its huge pages actually reduce TLB misses.\n");
  return 0;
}
