// Memory-pressure scenario: what happens to huge-page alignment when the
// host reclaims memory with deduplication (KSM) and ballooning — the
// interplay the paper's future-work section (§8) raises.
//
//   $ ./build/examples/memory_pressure
#include <cstdio>

#include "gemini/gemini_policy.h"
#include "harness/experiment.h"
#include "metrics/alignment_audit.h"
#include "os/balloon.h"
#include "os/ksm.h"

int main() {
  workload::WorkloadSpec spec = workload::SpecByName("Canneal");
  spec.ops = 120000;
  harness::BedOptions bed;

  harness::TestBed testbed =
      harness::MakeTestBed(harness::SystemKind::kGemini, bed);
  osim::Machine& machine = *testbed.machine;
  osim::KsmScanner* ksm = osim::InstallKsm(machine, testbed.vm_id);

  workload::WorkloadDriver driver(&machine, testbed.vm_id);
  workload::DriverOptions options;
  options.seed = bed.seed + 1000;
  driver.Begin(spec, options);
  driver.Step(spec.ops / 2);

  auto audit = [&]() {
    return metrics::AuditAlignment(testbed.vm().guest().table(),
                                   testbed.vm().host_slice().table());
  };
  const auto mid = audit();
  std::printf("mid-run:       aligned pairs %llu (rate %.0f%%)\n",
              static_cast<unsigned long long>(mid.aligned_pairs),
              100.0 * mid.well_aligned_rate);

  // Host pressure arrives: balloon out 32 MiB of guest memory.
  osim::BalloonDriver balloon(&machine, testbed.vm_id,
                              /*alignment_aware=*/true);
  const uint64_t reclaimed = balloon.Inflate(8192);
  std::printf("balloon:       reclaimed %llu host frames, broke %llu huge "
              "backings (alignment-aware)\n",
              static_cast<unsigned long long>(
                  balloon.stats().host_frames_released),
              static_cast<unsigned long long>(
                  balloon.stats().huge_backings_broken));
  (void)reclaimed;

  while (driver.Step(spec.ops) > 0) {
  }
  const workload::RunResult r = driver.Finish();
  const auto end = audit();
  std::printf("end of run:    aligned pairs %llu (rate %.0f%%), throughput "
              "%.3f ops/kcycle\n",
              static_cast<unsigned long long>(end.aligned_pairs),
              100.0 * end.well_aligned_rate, r.throughput);
  std::printf("KSM activity:  %llu huge backings broken, %llu pages merged\n",
              static_cast<unsigned long long>(ksm->stats().huge_pages_broken),
              static_cast<unsigned long long>(ksm->stats().pages_merged));
  std::printf(
      "\nGemini's scanner treats KSM- and balloon-broken backings as fresh\n"
      "misalignments and repairs the hot ones; the alignment-aware balloon\n"
      "avoids most of the damage in the first place (paper §8).\n");
  return 0;
}
