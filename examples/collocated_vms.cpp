// Collocated-VMs scenario (paper §6.5): two VMs share one host; one runs a
// TLB-sensitive workload, the other a non-TLB-sensitive one.  Measures
// Gemini's applicability (it still helps the sensitive VM) and its
// overhead (it must not hurt the insensitive VM).
//
//   $ ./build/examples/collocated_vms
#include <cstdio>
#include <string>

#include "harness/experiment.h"

int main() {
  workload::WorkloadSpec sensitive = workload::SpecByName("Canneal");
  sensitive.ops = 120000;
  workload::WorkloadSpec insensitive = workload::SpecByName("SP.D");
  insensitive.ops = 120000;

  harness::BedOptions bed;
  bed.host_frames = 640 * 1024;

  std::printf("VM0: %s (TLB-sensitive)   VM1: %s (not TLB-sensitive)\n\n",
              sensitive.name.c_str(), insensitive.name.c_str());
  std::printf("%-13s %18s %18s\n", "system", "VM0 thr (ops/kc)",
              "VM1 thr (ops/kc)");

  double base0 = 0;
  double base1 = 0;
  for (harness::SystemKind kind :
       {harness::SystemKind::kHostBVmB, harness::SystemKind::kIngens,
        harness::SystemKind::kGemini}) {
    const harness::CollocatedResult r =
        harness::RunCollocated(kind, sensitive, insensitive, bed);
    if (kind == harness::SystemKind::kHostBVmB) {
      base0 = r.vm0.throughput;
      base1 = r.vm1.throughput;
    }
    std::printf("%-13s %12.3f (%.2fx) %12.3f (%.2fx)\n",
                std::string(harness::SystemName(kind)).c_str(),
                r.vm0.throughput, r.vm0.throughput / base0,
                r.vm1.throughput, r.vm1.throughput / base1);
  }
  std::printf(
      "\nExpected shape: Gemini lifts the sensitive VM the most while the\n"
      "insensitive VM stays within a few percent of Host-B-VM-B — Gemini's\n"
      "scanning/booking overhead is negligible when there is nothing for\n"
      "it to win (paper: ~2-3%%).\n");
  return 0;
}
