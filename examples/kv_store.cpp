// Key/value-store scenario: compares all eight systems on a Memcached-like
// workload whose slab churn keeps destroying and recreating memory regions
// — the allocation pattern where huge-page alignment is hardest to keep.
//
//   $ ./build/examples/kv_store [ops]
//
// Demonstrates the lower-level API too: instead of the one-call harness,
// this example builds the machine by hand, installs policies, fragments
// memory, and drives the workload step by step while printing a live view
// of huge-page alignment.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/systems.h"
#include "metrics/alignment_audit.h"
#include "workload/catalog.h"
#include "workload/driver.h"

namespace {

void RunOne(harness::SystemKind kind, uint64_t ops) {
  // Hand-built testbed (what harness::MakeTestBed automates).
  osim::MachineConfig config;
  config.host_frames = 400 * 1024;
  config.seed = 7;
  osim::Machine machine(config);
  osim::VirtualMachine& vm =
      harness::AddSystemVm(machine, kind, 128 * 1024);
  machine.FragmentHostMemory(0.94);
  machine.FragmentGuestMemory(vm.id(), 0.8);

  workload::WorkloadSpec spec = workload::SpecByName("Memcached");
  spec.ops = ops;

  workload::WorkloadDriver driver(&machine, vm.id());
  workload::DriverOptions options;
  options.warmup_fraction = 0.2;
  driver.Begin(spec, options);

  std::printf("%-13s alignment over time: ",
              std::string(harness::SystemName(kind)).c_str());
  const uint64_t quantum = ops / 8;
  while (!driver.Done()) {
    driver.Step(quantum);
    const auto report = metrics::AuditAlignment(vm.guest().table(),
                                                vm.host_slice().table());
    std::printf("%3.0f%% ", 100.0 * report.well_aligned_rate);
  }
  const workload::RunResult r = driver.Finish();
  std::printf("| thr %.3f  p99 %.0f  missrate %.2f\n", r.throughput,
              r.p99_latency, r.tlb_miss_rate);
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t ops = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 120000;
  std::printf("Memcached-like churning K/V workload, %llu ops per system.\n"
              "Columns show the well-aligned huge page rate sampled 8x "
              "through the run.\n\n",
              static_cast<unsigned long long>(ops));
  for (harness::SystemKind kind : harness::AllSystems()) {
    RunOne(kind, ops);
  }
  std::printf(
      "\nChurn keeps breaking alignment; only Gemini re-forms it quickly\n"
      "(EMA placement + huge bucket reuse), which shows up as both a high\n"
      "steady alignment column and the best tail latency.\n");
  return 0;
}
