// Reused-VM scenario (paper §6.3): a VM first runs a large-working-set SVM
// job to completion; its memory returns to the guest, but the host keeps
// the VM's (now huge-backed) physical memory.  A second workload then
// starts in the same VM.
//
//   $ ./build/examples/reused_vm
//
// Shows why Gemini's huge bucket matters: without it, the freed
// well-aligned regions get splintered by small allocations and the second
// workload loses the alignment the first one built.
#include <cstdio>
#include <string>

#include "gemini/gemini_policy.h"
#include "harness/experiment.h"

namespace {

void Report(const char* label, const workload::RunResult& r) {
  std::printf("  %-22s thr %.3f  missrate %.2f  aligned %.0f%% "
              "(gH=%llu hH=%llu)\n",
              label, r.throughput, r.tlb_miss_rate,
              100.0 * r.alignment.well_aligned_rate,
              static_cast<unsigned long long>(r.alignment.guest_huge),
              static_cast<unsigned long long>(r.alignment.host_huge));
}

}  // namespace

int main() {
  workload::WorkloadSpec spec = workload::SpecByName("Xapian");
  spec.ops = 150000;
  harness::BedOptions bed;

  std::printf("Reused-VM scenario: SVM prefill, teardown, then '%s'.\n\n",
              spec.name.c_str());

  // Clean-slate versus reused, under THP and Gemini.
  for (harness::SystemKind kind :
       {harness::SystemKind::kThp, harness::SystemKind::kGemini}) {
    std::printf("%s:\n", std::string(harness::SystemName(kind)).c_str());
    Report("clean-slate VM", harness::RunCleanSlate(kind, spec, bed));
    Report("reused VM", harness::RunReusedVm(kind, spec, bed));
  }

  // Gemini with the bucket disabled: the reuse advantage shrinks.
  gemini::GeminiOptions no_bucket;
  no_bucket.enable_bucket = false;
  std::printf("Gemini (bucket disabled):\n");
  Report("reused VM", harness::RunGeminiAblation(spec, bed, no_bucket));

  std::printf(
      "\nEvery system benefits from VM reuse (the host backing persists),\n"
      "but Gemini benefits most: the bucket hands freed well-aligned\n"
      "regions back out whole, so the second workload re-aligns almost\n"
      "immediately (paper Table 4: 75-99%% vs 31-68%% for the others).\n");
  return 0;
}
