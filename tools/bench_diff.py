#!/usr/bin/env python3
"""Diff two bench_translation JSON exports and print a markdown report.

Usage:
    tools/bench_diff.py BASELINE.json CURRENT.json

Scenarios are matched by name; the report shows mops_per_s for both
sides and the current/baseline ratio.  Scenarios present on only one
side (e.g. the batched modes, which the committed PR-3 baseline
predates) are listed separately rather than silently dropped.

This tool is report-only by design: it always exits 0 after a
successful comparison, because CI runners are too noisy for threshold
gating (see BENCHMARKS.md).  It exits non-zero only when an input file
is missing or malformed.
"""
import json
import sys


def load(path):
    with open(path) as f:
        rows = json.load(f)
    return {row["scenario"]: row for row in rows}


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    baseline = load(argv[1])
    current = load(argv[2])

    shared = [name for name in baseline if name in current]
    only_base = [name for name in baseline if name not in current]
    only_curr = [name for name in current if name not in baseline]

    print("### Translation microbenchmark vs committed baseline")
    print()
    print("| scenario | baseline Mops/s | current Mops/s | ratio |")
    print("|---|---:|---:|---:|")
    for name in shared:
        old = baseline[name]["mops_per_s"]
        new = current[name]["mops_per_s"]
        ratio = new / old if old > 0 else float("inf")
        print(f"| {name} | {old:.2f} | {new:.2f} | {ratio:.2f}x |")
    if only_curr:
        print()
        print("New scenarios (no committed baseline): "
              + ", ".join(f"`{n}` {current[n]['mops_per_s']:.2f} Mops/s"
                          for n in only_curr))
    if only_base:
        print()
        print("Baseline scenarios missing from this run: "
              + ", ".join(f"`{n}`" for n in only_base))
    print()
    print("_Report-only: ratios on shared CI runners are noisy; this step "
          "never fails the build._")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
