#!/usr/bin/env python3
"""Diff two bench_translation JSON exports and print a markdown report.

Usage:
    tools/bench_diff.py BASELINE.json CURRENT.json
    tools/bench_diff.py --fail-threshold 15 BASELINE.json CURRENT.json

Scenarios are matched by name; the report shows mops_per_s for both
sides and the current/baseline ratio, plus lat_p99 (simulated cycles)
when either side exports it.  Scenarios present on only one side
(e.g. a bench that grew new cells after its baseline was committed)
appear as table rows with "new" / "removed" in the ratio column rather
than being dropped, and fields a side lacks (older baselines predate
lat_p*) render as "-" instead of erroring — the schema is allowed to
grow without invalidating committed baselines.  One-sided scenarios
never gate: only a shared, gated scenario can fail the threshold.

Without --fail-threshold the tool is report-only: it always exits 0
after a successful comparison.  With --fail-threshold PCT it becomes a
gate: any gated scenario (default: miss_heavy; override with --gate,
repeatable) whose current throughput falls more than PCT percent below
the baseline fails the run with exit code 1.  The gate covers only the
scenarios named by --gate because mixed-load scenarios on shared CI
runners are too noisy for tight thresholds (see BENCHMARKS.md "Reading
bench_diff.py output"); miss_heavy is walker-bound and stable enough
to gate at a generous 15%.  Exit code 2 still means an input file was
missing or malformed.
"""
import argparse
import json
import sys


def load(path):
    with open(path) as f:
        rows = json.load(f)
    if not isinstance(rows, list):
        raise ValueError(f"{path}: expected a JSON array of scenario rows")
    out = {}
    for row in rows:
        if not isinstance(row, dict) or "scenario" not in row:
            raise ValueError(f"{path}: row without a 'scenario' field: {row!r}")
        out[row["scenario"]] = row
    return out


def fmt_lat(row):
    """lat_p99 cell; '-' for baselines that predate the field."""
    value = row.get("lat_p99")
    return "-" if value is None else f"{value}"


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly produced JSON")
    parser.add_argument("--fail-threshold", type=float, default=None,
                        metavar="PCT",
                        help="fail (exit 1) if a gated scenario regresses by "
                             "more than PCT percent vs the baseline")
    parser.add_argument("--gate", action="append", default=None,
                        metavar="SCENARIO",
                        help="scenario the threshold applies to (repeatable; "
                             "default: miss_heavy)")
    args = parser.parse_args(argv[1:])
    gates = args.gate if args.gate else ["miss_heavy"]

    try:
        baseline = load(args.baseline)
        current = load(args.current)
    except (OSError, ValueError, KeyError, TypeError) as err:
        print(f"bench_diff: bad input: {err}", file=sys.stderr)
        return 2

    shared = [name for name in baseline if name in current]
    only_base = [name for name in baseline if name not in current]
    only_curr = [name for name in current if name not in baseline]

    print("### Translation microbenchmark vs committed baseline")
    print()
    print("| scenario | baseline Mops/s | current Mops/s | ratio "
          "| base p99 cyc | curr p99 cyc |")
    print("|---|---:|---:|---:|---:|---:|")
    failures = []
    for name in shared:
        # .get(): a side missing a field (old baseline, new schema) reports
        # as 0/'-' instead of KeyError-ing the whole comparison.
        old = baseline[name].get("mops_per_s", 0.0)
        new = current[name].get("mops_per_s", 0.0)
        ratio = new / old if old > 0 else float("inf")
        gated = args.fail_threshold is not None and name in gates
        mark = ""
        if gated and ratio < 1.0 - args.fail_threshold / 100.0:
            failures.append((name, old, new, ratio))
            mark = " **FAIL**"
        print(f"| {name} | {old:.2f} | {new:.2f} | {ratio:.2f}x{mark} "
              f"| {fmt_lat(baseline[name])} | {fmt_lat(current[name])} |")
    # One-sided scenarios become rows too — a bench whose cell set changed
    # (new sweep axis, renamed scenario) must be visible in the same table
    # the reviewer is already reading, not hidden or silently skipped.
    for name in only_curr:
        new = current[name].get("mops_per_s", 0.0)
        print(f"| {name} | - | {new:.2f} | new "
              f"| - | {fmt_lat(current[name])} |")
    for name in only_base:
        old = baseline[name].get("mops_per_s", 0.0)
        print(f"| {name} | {old:.2f} | - | removed "
              f"| {fmt_lat(baseline[name])} | - |")
    print()
    if args.fail_threshold is None:
        print("_Report-only: pass --fail-threshold to gate on a regression._")
        return 0
    if failures:
        print(f"_Gate: FAILED — regression beyond {args.fail_threshold:g}% "
              "on: " + ", ".join(f"`{n}`" for n, *_ in failures) + "._")
        for name, old, new, ratio in failures:
            print(f"bench_diff: {name} regressed {100 * (1 - ratio):.1f}% "
                  f"({old:.2f} -> {new:.2f} Mops/s), threshold "
                  f"{args.fail_threshold:g}%", file=sys.stderr)
        return 1
    missing = [g for g in gates if g not in shared]
    if missing:
        # A gate that silently never runs is worse than no gate.
        print("_Gate: FAILED — gated scenario(s) absent from both files: "
              + ", ".join(f"`{g}`" for g in missing) + "._")
        return 1
    print(f"_Gate: OK — {', '.join(f'`{g}`' for g in gates)} within "
          f"{args.fail_threshold:g}% of baseline._")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
