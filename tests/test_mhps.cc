// Tests for the misaligned huge page scanner (MHPS) classification.
#include "gemini/mhps.h"

#include <gtest/gtest.h>

#include "base/types.h"
#include "gemini/channel.h"
#include "mmu/page_table.h"
#include "vmem/buddy_allocator.h"

namespace {

using base::kHugeOrder;
using base::kPagesPerHuge;
using gemini::GeminiChannel;
using gemini::Mhps;

class MhpsTest : public ::testing::Test {
 protected:
  MhpsTest() : guest_buddy_(16 * kPagesPerHuge) {}

  mmu::PageTable guest_;
  mmu::PageTable ept_;
  vmem::BuddyAllocator guest_buddy_;
  GeminiChannel channel_;
  Mhps mhps_;

  void Scan(base::Cycles now = 100) {
    mhps_.ScanVm(guest_, ept_, guest_buddy_, now, channel_);
  }
};

TEST_F(MhpsTest, EmptyTablesProduceEmptyLists) {
  Scan();
  EXPECT_TRUE(channel_.host_huge_misaligned.empty());
  EXPECT_TRUE(channel_.guest_huge_misaligned.empty());
  EXPECT_EQ(channel_.well_aligned_count, 0u);
}

TEST_F(MhpsTest, WellAlignedPairIsNotMisaligned) {
  guest_.MapHuge(0, 2 * kPagesPerHuge);  // GVA region 0 -> GPA region 2
  ept_.MapHuge(2, 8 * kPagesPerHuge);    // GPA region 2 -> host block
  Scan();
  EXPECT_TRUE(channel_.host_huge_misaligned.empty());
  EXPECT_TRUE(channel_.guest_huge_misaligned.empty());
  EXPECT_EQ(channel_.well_aligned_count, 1u);
  EXPECT_TRUE(channel_.GuestHugeTarget(2));
}

TEST_F(MhpsTest, HostHugeWithoutGuestHugeIsMisaligned) {
  ept_.MapHuge(3, 0);
  Scan();
  ASSERT_EQ(channel_.host_huge_misaligned.size(), 1u);
  EXPECT_TRUE(channel_.host_huge_misaligned.count(3));
  EXPECT_TRUE(channel_.guest_huge_misaligned.empty());
}

TEST_F(MhpsTest, HostHugeType1WhenGuestRangeFree) {
  ept_.MapHuge(3, 0);
  // GPA region 3's frames are entirely free in the guest buddy.
  Scan();
  EXPECT_FALSE(channel_.host_huge_misaligned.at(3).type2);
}

TEST_F(MhpsTest, HostHugeType2WhenGuestAllocatedPages) {
  ept_.MapHuge(3, 0);
  // The guest has allocated one frame of GPA region 3 (to some base page).
  ASSERT_TRUE(guest_buddy_.AllocateAt(3 * kPagesPerHuge + 17, 1));
  Scan();
  EXPECT_TRUE(channel_.host_huge_misaligned.at(3).type2);
}

TEST_F(MhpsTest, GuestHugeWithoutHostHugeIsMisaligned) {
  guest_.MapHuge(5, 4 * kPagesPerHuge);  // target GPA region 4
  Scan();
  ASSERT_EQ(channel_.guest_huge_misaligned.size(), 1u);
  EXPECT_TRUE(channel_.guest_huge_misaligned.count(4));
}

TEST_F(MhpsTest, GuestHugeType1WhenEptEmpty) {
  guest_.MapHuge(5, 4 * kPagesPerHuge);
  Scan();
  EXPECT_FALSE(channel_.guest_huge_misaligned.at(4).type2);
}

TEST_F(MhpsTest, GuestHugeType2WhenEptHasBasePages) {
  guest_.MapHuge(5, 4 * kPagesPerHuge);
  ept_.MapBase(4 * kPagesPerHuge + 9, 77);
  Scan();
  EXPECT_TRUE(channel_.guest_huge_misaligned.at(4).type2);
}

TEST_F(MhpsTest, DiscoveryTimePreservedAcrossScans) {
  ept_.MapHuge(3, 0);
  Scan(100);
  const base::Cycles discovered =
      channel_.host_huge_misaligned.at(3).discovered;
  EXPECT_EQ(discovered, 100u);
  Scan(500);
  EXPECT_EQ(channel_.host_huge_misaligned.at(3).discovered, 100u);
}

TEST_F(MhpsTest, FixedMisalignmentLeavesTheList) {
  ept_.MapHuge(3, 0);
  Scan();
  EXPECT_EQ(channel_.host_huge_misaligned.size(), 1u);
  // The guest forms the matching huge page.
  guest_.MapHuge(0, 3 * kPagesPerHuge);
  Scan();
  EXPECT_TRUE(channel_.host_huge_misaligned.empty());
  EXPECT_EQ(channel_.well_aligned_count, 1u);
}

TEST_F(MhpsTest, MixedLayoutClassifiedCorrectly) {
  // Region 0: well aligned.  Region 1: host-huge only (type 1).
  // Region 2: guest-huge only with EPT base pages (type 2).
  guest_.MapHuge(0, 0);
  ept_.MapHuge(0, 0);
  ept_.MapHuge(1, 2 * kPagesPerHuge);
  guest_.MapHuge(7, 2 * kPagesPerHuge * 0 + 2 * kPagesPerHuge);  // -> region 2
  // Adjust: guest region 7 targets GPA region 2.
  // (MapHuge(7, 2*kPagesPerHuge) maps GVA region 7 -> GPA block at frame
  //  2*kPagesPerHuge, i.e. GPA region 2.)
  ept_.MapBase(2 * kPagesPerHuge + 1, 55);
  Scan();
  EXPECT_EQ(channel_.well_aligned_count, 1u);
  ASSERT_TRUE(channel_.host_huge_misaligned.count(1));
  EXPECT_FALSE(channel_.host_huge_misaligned.at(1).type2);
  ASSERT_TRUE(channel_.guest_huge_misaligned.count(2));
  EXPECT_TRUE(channel_.guest_huge_misaligned.at(2).type2);
}

TEST_F(MhpsTest, ChannelHostHugeQuery) {
  channel_.ept = &ept_;
  ept_.MapHuge(6, 0);
  EXPECT_TRUE(channel_.HostHuge(6));
  EXPECT_FALSE(channel_.HostHuge(5));
}

TEST_F(MhpsTest, StatsAccumulate) {
  guest_.MapHuge(0, 0);
  ept_.MapHuge(0, 0);
  ept_.MapHuge(1, 2 * kPagesPerHuge);
  Scan();
  EXPECT_EQ(mhps_.stats().scans, 1u);
  EXPECT_EQ(mhps_.stats().guest_huge_seen, 1u);
  EXPECT_EQ(mhps_.stats().host_huge_seen, 2u);
  EXPECT_EQ(mhps_.stats().well_aligned, 1u);
  EXPECT_EQ(mhps_.stats().host_huge_misaligned, 1u);
}

}  // namespace
