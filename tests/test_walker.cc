// Tests for the page-walk cache and the 1D/2D walk cost model.
#include "mmu/nested_walker.h"
#include "mmu/page_walk_cache.h"

#include <gtest/gtest.h>

#include "base/types.h"

namespace {

using base::PageSize;
using mmu::NestedWalker;
using mmu::PageWalkCache;
using mmu::PrefixCache;
using mmu::WalkerConfig;
using mmu::WalkResult;

TEST(PrefixCache, MissThenHit) {
  PrefixCache cache(4);
  EXPECT_FALSE(cache.Lookup(1));
  cache.Insert(1);
  EXPECT_TRUE(cache.Lookup(1));
}

TEST(PrefixCache, LruEviction) {
  PrefixCache cache(2);
  cache.Insert(1);
  cache.Insert(2);
  EXPECT_TRUE(cache.Lookup(1));  // 2 becomes LRU
  cache.Insert(3);
  EXPECT_TRUE(cache.Lookup(1));
  EXPECT_FALSE(cache.Lookup(2));
  EXPECT_TRUE(cache.Lookup(3));
}

TEST(PrefixCache, FlushEmpties) {
  PrefixCache cache(4);
  cache.Insert(1);
  cache.Flush();
  EXPECT_FALSE(cache.Lookup(1));
}

TEST(PageWalkCache, ColdBaseWalkIsFourRefs) {
  PageWalkCache pwc({});
  const auto cost = pwc.Walk(0, PageSize::kBase);
  EXPECT_EQ(cost.memory_refs, 4u);
  EXPECT_EQ(cost.cached_refs, 0u);
}

TEST(PageWalkCache, ColdHugeWalkIsThreeRefs) {
  PageWalkCache pwc({});
  const auto cost = pwc.Walk(0, PageSize::kHuge);
  EXPECT_EQ(cost.memory_refs, 3u);
}

TEST(PageWalkCache, WarmUpperLevelsAreCached) {
  PageWalkCache pwc({});
  pwc.Walk(0, PageSize::kBase);
  // Second walk in the same 1 GiB range: PML4 + PDPT hit, PD/PT still paid.
  const auto cost = pwc.Walk(1, PageSize::kBase);
  EXPECT_EQ(cost.cached_refs, 2u);
  EXPECT_EQ(cost.memory_refs, 2u);
  const auto huge_cost = pwc.Walk(2, PageSize::kHuge);
  EXPECT_EQ(huge_cost.memory_refs, 1u);  // only the PD leaf
}

TEST(PageWalkCache, DistantAddressMissesUpperLevels) {
  PageWalkCache pwc({});
  pwc.Walk(0, PageSize::kBase);
  const auto cost = pwc.Walk(1ull << 40, PageSize::kBase);  // far away
  EXPECT_EQ(cost.memory_refs, 4u);
}

WalkerConfig Config() {
  WalkerConfig c;
  c.cycles_per_memory_ref = 50;
  c.cycles_per_cached_ref = 2;
  return c;
}

TEST(NestedWalker, NativeWalkCosts) {
  NestedWalker walker(Config());
  const WalkResult cold = walker.NativeWalk(0, PageSize::kBase);
  EXPECT_EQ(cold.memory_refs, 4u);
  EXPECT_EQ(cold.cycles, 200u);
  const WalkResult warm = walker.NativeWalk(1, PageSize::kBase);
  EXPECT_EQ(warm.memory_refs, 2u);
  EXPECT_EQ(warm.cycles, 2u * 50 + 2u * 2);
}

TEST(NestedWalker, ColdNestedWalkApproaches24Refs) {
  NestedWalker walker(Config());
  // Cold caches: 4 guest levels each needing a host walk for its table
  // page (4 refs) plus the entry read, plus the final host walk.
  const WalkResult cold = walker.NestedWalk(0, PageSize::kBase, 0,
                                            PageSize::kBase);
  // 4 * (4 + 1) + 4 = 24 in the worst case; upper host levels repeat and
  // hit the host PWC, so the model lands close below.
  EXPECT_GE(cold.memory_refs + cold.cached_refs, 12u);
  EXPECT_LE(cold.memory_refs, 24u);
  EXPECT_GT(cold.memory_refs, 8u);
}

TEST(NestedWalker, WarmNestedWalkIsMuchCheaper) {
  NestedWalker walker(Config());
  walker.NestedWalk(0, PageSize::kBase, 0, PageSize::kBase);
  const WalkResult warm =
      walker.NestedWalk(1, PageSize::kBase, 1, PageSize::kBase);
  EXPECT_LT(warm.memory_refs, 6u);
}

TEST(NestedWalker, HugeGuestLeafSkipsPtDimension) {
  NestedWalker a(Config());
  NestedWalker b(Config());
  // Warm both identically, then compare a base-leaf and huge-leaf walk for
  // a *new* 2 MiB region (the PT-page translation is the difference).
  a.NestedWalk(0, PageSize::kBase, 0, PageSize::kBase);
  b.NestedWalk(0, PageSize::kBase, 0, PageSize::kBase);
  const WalkResult base_walk =
      a.NestedWalk(1024, PageSize::kBase, 1024, PageSize::kBase);
  const WalkResult huge_walk =
      b.NestedWalk(1024, PageSize::kHuge, 1024, PageSize::kBase);
  EXPECT_LT(huge_walk.memory_refs, base_walk.memory_refs);
}

TEST(NestedWalker, HugeHostLeafShortensFinalWalk) {
  NestedWalker a(Config());
  NestedWalker b(Config());
  const WalkResult host_base =
      a.NestedWalk(0, PageSize::kBase, 0, PageSize::kBase);
  const WalkResult host_huge =
      b.NestedWalk(0, PageSize::kBase, 0, PageSize::kHuge);
  EXPECT_LT(host_huge.memory_refs, host_base.memory_refs);
}

TEST(NestedWalker, NestedCostExceedsNativeCost) {
  NestedWalker native(Config());
  NestedWalker nested(Config());
  base::Cycles native_total = 0;
  base::Cycles nested_total = 0;
  for (uint64_t vpn = 0; vpn < 4096; vpn += 97) {
    native_total += native.NativeWalk(vpn, PageSize::kBase).cycles;
    nested_total +=
        nested.NestedWalk(vpn, PageSize::kBase, vpn, PageSize::kBase).cycles;
  }
  // The paper cites up to ~6x; the cached steady state is lower but nested
  // must remain clearly more expensive.
  EXPECT_GT(nested_total, native_total * 3 / 2);
}

TEST(NestedWalker, FlushRestoresColdCosts) {
  NestedWalker walker(Config());
  walker.NestedWalk(0, PageSize::kBase, 0, PageSize::kBase);
  const WalkResult warm =
      walker.NestedWalk(1, PageSize::kBase, 1, PageSize::kBase);
  walker.Flush();
  const WalkResult cold =
      walker.NestedWalk(2, PageSize::kBase, 2, PageSize::kBase);
  EXPECT_GT(cold.memory_refs, warm.memory_refs);
}

}  // namespace
