// Tests for the page-walk cache and the 1D/2D walk cost model.
#include "mmu/nested_walker.h"
#include "mmu/page_walk_cache.h"

#include <gtest/gtest.h>

#include <vector>

#include "base/types.h"
#include "mmu/page_table.h"

namespace {

using base::PageSize;
using mmu::NestedWalker;
using mmu::PageWalkCache;
using mmu::PrefixCache;
using mmu::WalkerConfig;
using mmu::WalkResult;

TEST(PrefixCache, MissThenHit) {
  PrefixCache cache(4);
  EXPECT_FALSE(cache.Lookup(1));
  cache.Insert(1);
  EXPECT_TRUE(cache.Lookup(1));
}

TEST(PrefixCache, LruEviction) {
  PrefixCache cache(2);
  cache.Insert(1);
  cache.Insert(2);
  EXPECT_TRUE(cache.Lookup(1));  // 2 becomes LRU
  cache.Insert(3);
  EXPECT_TRUE(cache.Lookup(1));
  EXPECT_FALSE(cache.Lookup(2));
  EXPECT_TRUE(cache.Lookup(3));
}

TEST(PrefixCache, FlushEmpties) {
  PrefixCache cache(4);
  cache.Insert(1);
  cache.Flush();
  EXPECT_FALSE(cache.Lookup(1));
}

TEST(PageWalkCache, ColdBaseWalkIsFourRefs) {
  PageWalkCache pwc({});
  const auto cost = pwc.Walk(0, PageSize::kBase);
  EXPECT_EQ(cost.memory_refs, 4u);
  EXPECT_EQ(cost.cached_refs, 0u);
}

TEST(PageWalkCache, ColdHugeWalkIsThreeRefs) {
  PageWalkCache pwc({});
  const auto cost = pwc.Walk(0, PageSize::kHuge);
  EXPECT_EQ(cost.memory_refs, 3u);
}

TEST(PageWalkCache, WarmUpperLevelsAreCached) {
  PageWalkCache pwc({});
  pwc.Walk(0, PageSize::kBase);
  // Second walk in the same 1 GiB range: PML4 + PDPT hit, PD/PT still paid.
  const auto cost = pwc.Walk(1, PageSize::kBase);
  EXPECT_EQ(cost.cached_refs, 2u);
  EXPECT_EQ(cost.memory_refs, 2u);
  const auto huge_cost = pwc.Walk(2, PageSize::kHuge);
  EXPECT_EQ(huge_cost.memory_refs, 1u);  // only the PD leaf
}

TEST(PageWalkCache, DistantAddressMissesUpperLevels) {
  PageWalkCache pwc({});
  pwc.Walk(0, PageSize::kBase);
  const auto cost = pwc.Walk(1ull << 40, PageSize::kBase);  // far away
  EXPECT_EQ(cost.memory_refs, 4u);
}

WalkerConfig Config() {
  WalkerConfig c;
  c.cycles_per_memory_ref = 50;
  c.cycles_per_cached_ref = 2;
  return c;
}

TEST(NestedWalker, NativeWalkCosts) {
  NestedWalker walker(Config());
  const WalkResult cold = walker.NativeWalk(0, PageSize::kBase);
  EXPECT_EQ(cold.memory_refs, 4u);
  EXPECT_EQ(cold.cycles, 200u);
  const WalkResult warm = walker.NativeWalk(1, PageSize::kBase);
  EXPECT_EQ(warm.memory_refs, 2u);
  EXPECT_EQ(warm.cycles, 2u * 50 + 2u * 2);
}

TEST(NestedWalker, ColdNestedWalkApproaches24Refs) {
  NestedWalker walker(Config());
  // Cold caches: 4 guest levels each needing a host walk for its table
  // page (4 refs) plus the entry read, plus the final host walk.
  const WalkResult cold = walker.NestedWalk(0, PageSize::kBase, 0,
                                            PageSize::kBase);
  // 4 * (4 + 1) + 4 = 24 in the worst case; upper host levels repeat and
  // hit the host PWC, so the model lands close below.
  EXPECT_GE(cold.memory_refs + cold.cached_refs, 12u);
  EXPECT_LE(cold.memory_refs, 24u);
  EXPECT_GT(cold.memory_refs, 8u);
}

TEST(NestedWalker, WarmNestedWalkIsMuchCheaper) {
  NestedWalker walker(Config());
  walker.NestedWalk(0, PageSize::kBase, 0, PageSize::kBase);
  const WalkResult warm =
      walker.NestedWalk(1, PageSize::kBase, 1, PageSize::kBase);
  EXPECT_LT(warm.memory_refs, 6u);
}

TEST(NestedWalker, HugeGuestLeafSkipsPtDimension) {
  NestedWalker a(Config());
  NestedWalker b(Config());
  // Warm both identically, then compare a base-leaf and huge-leaf walk for
  // a *new* 2 MiB region (the PT-page translation is the difference).
  a.NestedWalk(0, PageSize::kBase, 0, PageSize::kBase);
  b.NestedWalk(0, PageSize::kBase, 0, PageSize::kBase);
  const WalkResult base_walk =
      a.NestedWalk(1024, PageSize::kBase, 1024, PageSize::kBase);
  const WalkResult huge_walk =
      b.NestedWalk(1024, PageSize::kHuge, 1024, PageSize::kBase);
  EXPECT_LT(huge_walk.memory_refs, base_walk.memory_refs);
}

TEST(NestedWalker, HugeHostLeafShortensFinalWalk) {
  NestedWalker a(Config());
  NestedWalker b(Config());
  const WalkResult host_base =
      a.NestedWalk(0, PageSize::kBase, 0, PageSize::kBase);
  const WalkResult host_huge =
      b.NestedWalk(0, PageSize::kBase, 0, PageSize::kHuge);
  EXPECT_LT(host_huge.memory_refs, host_base.memory_refs);
}

TEST(NestedWalker, NestedCostExceedsNativeCost) {
  NestedWalker native(Config());
  NestedWalker nested(Config());
  base::Cycles native_total = 0;
  base::Cycles nested_total = 0;
  for (uint64_t vpn = 0; vpn < 4096; vpn += 97) {
    native_total += native.NativeWalk(vpn, PageSize::kBase).cycles;
    nested_total +=
        nested.NestedWalk(vpn, PageSize::kBase, vpn, PageSize::kBase).cycles;
  }
  // The paper cites up to ~6x; the cached steady state is lower but nested
  // must remain clearly more expensive.
  EXPECT_GT(nested_total, native_total * 3 / 2);
}

TEST(NestedWalker, FlushRestoresColdCosts) {
  NestedWalker walker(Config());
  walker.NestedWalk(0, PageSize::kBase, 0, PageSize::kBase);
  const WalkResult warm =
      walker.NestedWalk(1, PageSize::kBase, 1, PageSize::kBase);
  walker.Flush();
  const WalkResult cold =
      walker.NestedWalk(2, PageSize::kBase, 2, PageSize::kBase);
  EXPECT_GT(cold.memory_refs, warm.memory_refs);
}

// ---------------------------------------------------------------------------
// PrefixCache differential: the hash-indexed, intrusive-list implementation
// must make byte-identical decisions to the obvious reference model (linear
// key scan, least-stamp eviction) on every step of a long mixed workload.

// Reference exact-LRU cache: O(n) scans, recency stamps.
class ScanLruModel {
 public:
  explicit ScanLruModel(uint32_t capacity) : capacity_(capacity) {}

  bool Lookup(uint64_t key) {
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] == key) {
        stamps_[i] = ++tick_;
        return true;
      }
    }
    return false;
  }

  void InsertMissing(uint64_t key) {
    if (keys_.size() < capacity_) {
      keys_.push_back(key);
      stamps_.push_back(++tick_);
      return;
    }
    size_t victim = 0;
    for (size_t i = 1; i < keys_.size(); ++i) {
      if (stamps_[i] < stamps_[victim]) {
        victim = i;
      }
    }
    keys_[victim] = key;
    stamps_[victim] = ++tick_;
  }

  void Flush() {
    keys_.clear();
    stamps_.clear();
  }

 private:
  uint32_t capacity_;
  uint64_t tick_ = 0;
  std::vector<uint64_t> keys_;
  std::vector<uint64_t> stamps_;
};

TEST(PrefixCache, DifferentialAgainstScanLruModel) {
  PrefixCache cache(8);
  ScanLruModel model(8);
  // Deterministic mixed traffic over a key space ~4x the capacity, with
  // periodic flushes: every Lookup verdict must agree, so insert decisions
  // (and therefore evictions) stay in lockstep forever.
  uint64_t x = 0x243F6A8885A308D3ull;
  for (int i = 0; i < 20000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const uint64_t key = x >> 59;  // 0..31
    const bool hit = cache.Lookup(key);
    ASSERT_EQ(hit, model.Lookup(key)) << "step " << i;
    if (!hit) {
      cache.InsertMissing(key);
      model.InsertMissing(key);
    }
    if (i % 4096 == 4095) {
      cache.Flush();
      model.Flush();
    }
  }
}

// ---------------------------------------------------------------------------
// Walk memo on/off differential: memoization is a simulator-speed knob and
// must not change a single charged cost or per-level stat.

TEST(NestedWalker, MemoOnOffDifferential) {
  WalkerConfig with = Config();
  WalkerConfig without = Config();
  without.walk_memo_slots = 0;
  NestedWalker memoized(with);
  NestedWalker plain(without);
  uint64_t x = 0x13198A2E03707344ull;
  for (int i = 0; i < 20000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    // ~64 regions with skewed reuse so memo replays, upper-only replays,
    // and invalidations (PT-cache churn) all occur.
    const uint64_t region = (x >> 58) + ((x >> 32) & 1 ? 0 : 512);
    const uint64_t vpn = (region << base::kHugeOrder) | (x & 511);
    const PageSize guest_leaf = (region & 1) ? PageSize::kBase
                                             : PageSize::kHuge;
    const PageSize host_leaf = (x >> 20) & 1 ? PageSize::kBase
                                             : PageSize::kHuge;
    const uint64_t gfn = vpn ^ 0x5000;
    const WalkResult a = memoized.NestedWalk(vpn, guest_leaf, gfn, host_leaf);
    const WalkResult b = plain.NestedWalk(vpn, guest_leaf, gfn, host_leaf);
    ASSERT_EQ(a.memory_refs, b.memory_refs) << "step " << i;
    ASSERT_EQ(a.cached_refs, b.cached_refs) << "step " << i;
    ASSERT_EQ(a.cycles, b.cycles) << "step " << i;
  }
  // Per-level attribution must agree exactly (stats() folds replays back
  // into the level arrays); only the replay tallies themselves may differ.
  const mmu::WalkLevelStats sa = memoized.stats();
  const mmu::WalkLevelStats sb = plain.stats();
  for (size_t l = 0; l < 4; ++l) {
    EXPECT_EQ(sa.guest_mem[l], sb.guest_mem[l]) << "level " << l;
    EXPECT_EQ(sa.guest_cached[l], sb.guest_cached[l]) << "level " << l;
    EXPECT_EQ(sa.host_mem[l], sb.host_mem[l]) << "level " << l;
    EXPECT_EQ(sa.host_cached[l], sb.host_cached[l]) << "level " << l;
    EXPECT_EQ(sa.nested_hit[l], sb.nested_hit[l]) << "level " << l;
    EXPECT_EQ(sa.nested_walk[l], sb.nested_walk[l]) << "level " << l;
  }
  EXPECT_GT(sa.memo_hits, 0u);  // the memo actually engaged
  EXPECT_EQ(sb.memo_hits, 0u);
  EXPECT_EQ(sb.memo_upper_hits, 0u);
}

// ---------------------------------------------------------------------------
// Arena pool: the grow-only node slab behind PageTable's base regions.

TEST(ArenaPool, SlabGrowthIsChunked) {
  mmu::PageTable table;
  // One base page in each of 40 regions: 40 live nodes, slabs of 16.
  for (uint64_t r = 0; r < 40; ++r) {
    table.MapBase(r << base::kHugeOrder, 1000 + r);
  }
  const auto stats = table.arena_stats();
  EXPECT_EQ(stats.live_nodes, 40u);
  EXPECT_EQ(stats.chunks, 3u);  // ceil(40 / 16)
  // The unissued tail of the last slab is not "free": the free list only
  // holds recycled nodes.
  EXPECT_EQ(stats.free_nodes, 0u);
}

TEST(ArenaPool, NodeRecycledAfterUnmap) {
  mmu::PageTable table;
  for (uint64_t r = 0; r < 16; ++r) {
    table.MapBase(r << base::kHugeOrder, 100 + r);
  }
  const auto before = table.arena_stats();
  EXPECT_EQ(before.chunks, 1u);
  EXPECT_EQ(before.free_nodes, 0u);
  // Unmapping a region's last base page releases its node to the free
  // list...
  table.UnmapBase(3ull << base::kHugeOrder);
  EXPECT_EQ(table.arena_stats().free_nodes, 1u);
  // ...and the next base-mapped region reuses it instead of growing a slab.
  table.MapBase(99ull << base::kHugeOrder, 555);
  const auto after = table.arena_stats();
  EXPECT_EQ(after.chunks, before.chunks);
  EXPECT_EQ(after.free_nodes, 0u);
  EXPECT_EQ(after.live_nodes, 16u);
}

TEST(ArenaPool, PromotionReleasesNodeDemotionReacquires) {
  mmu::PageTable table;
  for (uint64_t s = 0; s < base::kPagesPerHuge; ++s) {
    table.MapBase(s, 1024 + s);  // region 0, in-place promotable
  }
  EXPECT_EQ(table.arena_stats().live_nodes, 1u);
  table.PromoteInPlace(0);
  // Huge leaves live inline in the route word: no node at all.
  EXPECT_EQ(table.arena_stats().live_nodes, 0u);
  EXPECT_EQ(table.arena_stats().free_nodes, 1u);
  table.Demote(0);
  EXPECT_EQ(table.arena_stats().live_nodes, 1u);
  EXPECT_EQ(table.arena_stats().free_nodes, 0u);
  EXPECT_EQ(table.arena_stats().chunks, 1u);
}

TEST(ArenaPool, GenerationsNeverAliasRecycledNodes) {
  // Generation stamps live in the per-region vector, never inside arena
  // nodes, so a region's stamp survives its node being recycled to another
  // region and can never be confused with the new owner's.
  mmu::PageTable table;
  table.MapBase(5ull << base::kHugeOrder, 100);
  const uint64_t gen_mapped = table.generation(5);
  table.UnmapBase(5ull << base::kHugeOrder);  // node freed, stamp bumped
  const uint64_t gen_unmapped = table.generation(5);
  EXPECT_GT(gen_unmapped, gen_mapped);
  // Region 7 picks up region 5's recycled node; region 5's stamp must not
  // move, and region 7's history starts from its own counter.
  table.MapBase(7ull << base::kHugeOrder, 200);
  EXPECT_EQ(table.arena_stats().chunks, 1u);
  EXPECT_EQ(table.generation(5), gen_unmapped);
  // Re-mapping region 5 bumps monotonically — it can never return to a
  // stamp a stale TLB entry might still carry.
  table.MapBase(5ull << base::kHugeOrder, 300);
  EXPECT_GT(table.generation(5), gen_unmapped);
}

}  // namespace
