// Tests for the metrics layer: alignment audit, counters, normalization
// helpers, and table formatting.
#include <gtest/gtest.h>

#include "base/types.h"
#include "metrics/alignment_audit.h"
#include "metrics/counters.h"
#include "metrics/miss_breakdown.h"
#include "metrics/perf_model.h"
#include "metrics/table.h"
#include "mmu/page_table.h"
#include "os/machine.h"
#include "policy/base_only.h"

namespace {

using base::kPagesPerHuge;

TEST(AlignmentAudit, EmptyTables) {
  mmu::PageTable guest;
  mmu::PageTable ept;
  const auto report = metrics::AuditAlignment(guest, ept);
  EXPECT_EQ(report.guest_huge, 0u);
  EXPECT_EQ(report.host_huge, 0u);
  EXPECT_EQ(report.well_aligned_rate, 0.0);
}

TEST(AlignmentAudit, FullyAlignedIsHundredPercent) {
  mmu::PageTable guest;
  mmu::PageTable ept;
  for (uint64_t r = 0; r < 4; ++r) {
    guest.MapHuge(r, r * kPagesPerHuge);
    ept.MapHuge(r, (8 + r) * kPagesPerHuge);
  }
  const auto report = metrics::AuditAlignment(guest, ept);
  EXPECT_EQ(report.aligned_pairs, 4u);
  EXPECT_DOUBLE_EQ(report.well_aligned_rate, 1.0);
  EXPECT_DOUBLE_EQ(report.aligned_coverage, 1.0);
}

TEST(AlignmentAudit, FullyMisalignedIsZero) {
  mmu::PageTable guest;
  mmu::PageTable ept;
  guest.MapHuge(0, 0);                    // targets GPA region 0
  ept.MapHuge(5, 2 * kPagesPerHuge);      // different region huge in host
  const auto report = metrics::AuditAlignment(guest, ept);
  EXPECT_EQ(report.aligned_pairs, 0u);
  EXPECT_DOUBLE_EQ(report.well_aligned_rate, 0.0);
}

TEST(AlignmentAudit, MixedRateMatchesFormula) {
  mmu::PageTable guest;
  mmu::PageTable ept;
  // 2 guest huge pages, 3 host huge pages, 1 aligned pair.
  guest.MapHuge(0, 0);                 // -> GPA region 0 (aligned below)
  guest.MapHuge(1, 4 * kPagesPerHuge); // -> GPA region 4 (not host huge)
  ept.MapHuge(0, 8 * kPagesPerHuge);
  ept.MapHuge(2, 9 * kPagesPerHuge);
  ept.MapHuge(3, 10 * kPagesPerHuge);
  const auto report = metrics::AuditAlignment(guest, ept);
  EXPECT_EQ(report.aligned_pairs, 1u);
  EXPECT_DOUBLE_EQ(report.well_aligned_rate, 2.0 / 5.0);
}

TEST(Counters, SnapshotDeltaIsComponentwise) {
  osim::MachineConfig config;
  config.host_frames = 16384;
  osim::Machine machine(config);
  auto& vm = machine.AddVm(4096, std::make_unique<policy::BaseOnlyPolicy>(),
                           std::make_unique<policy::BaseOnlyPolicy>());
  osim::Vma& vma = vm.guest().aspace().MapAnonymous(32);
  const auto before = metrics::Snapshot(machine, 0);
  for (uint64_t p = 0; p < 32; ++p) {
    machine.Access(0, vma.start_page + p);
  }
  const auto after = metrics::Snapshot(machine, 0);
  const auto delta = after.Delta(before);
  EXPECT_EQ(delta.tlb_misses, 32u);
  EXPECT_GT(delta.guest_fault_cycles, 0u);
  EXPECT_GT(delta.host_fault_cycles, 0u);
  EXPECT_EQ(delta.guest_promotions, 0u);
}

TEST(PerfModel, Normalize) {
  EXPECT_DOUBLE_EQ(metrics::Normalize(3.0, 2.0), 1.5);
  EXPECT_DOUBLE_EQ(metrics::Normalize(3.0, 0.0), 0.0);
}

TEST(PerfModel, GeometricMean) {
  EXPECT_DOUBLE_EQ(metrics::GeometricMean({2.0, 8.0}), 4.0);
  EXPECT_DOUBLE_EQ(metrics::GeometricMean({}), 0.0);
  EXPECT_DOUBLE_EQ(metrics::GeometricMean({5.0}), 5.0);
}

TEST(PerfModel, ArithmeticMean) {
  EXPECT_DOUBLE_EQ(metrics::ArithmeticMean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(metrics::ArithmeticMean({}), 0.0);
}

TEST(TextTable, FormatHelpers) {
  EXPECT_EQ(metrics::TextTable::Fmt(1.23456, 2), "1.23");
  EXPECT_EQ(metrics::TextTable::Fmt(1.0, 0), "1");
  EXPECT_EQ(metrics::TextTable::Pct(0.514), "51%");
  EXPECT_EQ(metrics::TextTable::Pct(1.0), "100%");
}

TEST(TextTable, PrintDoesNotCrash) {
  metrics::TextTable table("demo");
  table.SetColumns({"workload", "THP", "Gemini"});
  table.AddRow({"Canneal", "1.10", "1.52"});
  table.AddRow({"Redis", "0.98", "1.41"});
  table.Print();  // visual output; just exercise the path
}

TEST(TextTable, RenderMatchesPrintFormat) {
  metrics::TextTable table("demo");
  table.SetColumns({"a", "bb"});
  table.AddRow({"xxx", "y"});
  EXPECT_EQ(table.Render(),
            "\n== demo ==\n"
            "a    bb\n"
            "-------\n"
            "xxx  y \n");
}

TEST(MissBreakdown, CapacityIsClampedRemainder) {
  metrics::MissSourceRow row{"w", 100, 30, 20};
  EXPECT_EQ(metrics::CapacityMisses(row), 50u);
  // Warm-up truncation can over-count cold misses; never underflow.
  row.cold = 95;
  EXPECT_EQ(metrics::CapacityMisses(row), 0u);
}

TEST(MissBreakdown, SplitApportionsCapacityOverEvictionCounts) {
  // 500 capacity misses, 250 recorded evictions: 100 conflict-4k, 50
  // conflict-2M, 100 true-capacity -> 200 / 100 / 200 misses.
  metrics::MissSourceRow row{"w", 1000, 250, 250, 100, 50, 60, 40};
  const metrics::CapacitySplit split = metrics::SplitCapacityMisses(row);
  EXPECT_EQ(split.conflict_base, 200u);
  EXPECT_EQ(split.conflict_huge, 100u);
  EXPECT_EQ(split.true_capacity, 200u);
  EXPECT_EQ(split.conflict_base + split.conflict_huge + split.true_capacity,
            metrics::CapacityMisses(row));
}

TEST(MissBreakdown, SplitWithoutEvictionTelemetryIsAllTrueCapacity) {
  const metrics::MissSourceRow row{"w", 100, 30, 20};
  const metrics::CapacitySplit split = metrics::SplitCapacityMisses(row);
  EXPECT_EQ(split.conflict_base, 0u);
  EXPECT_EQ(split.conflict_huge, 0u);
  EXPECT_EQ(split.true_capacity, 50u);
}

TEST(MissBreakdown, GoldenTable) {
  const std::vector<metrics::MissSourceRow> rows = {
      {"Canneal", 1000, 250, 250, 100, 50, 50, 50},
      {"Redis", 200, 0, 100},
  };
  EXPECT_EQ(metrics::RenderMissBreakdown(rows),
            "\n== Figure 16 companion: TLB miss sources (cold vs precise "
            "invalidation vs conflict vs true capacity) ==\n"
            "workload  misses  cold  precise inval  conflict 4k  "
            "conflict 2M  true capacity\n"
            "----------------------------------------------------------------"
            "--------------\n"
            "Canneal   1000    25%   25%            20%          10%          "
            "20%          \n"
            "Redis     200     0%    50%            0%           0%           "
            "50%          \n"
            "average           12%   38%            10%          5%           "
            "35%          \n");
}

metrics::WalkLevelRow SampleWalkRow() {
  metrics::WalkLevelRow row;
  row.label = "Canneal";
  row.walk.guest_mem = {1, 2, 3, 4};
  row.walk.guest_cached = {5, 6, 0, 0};
  row.walk.host_mem = {7, 8, 9, 10};
  row.walk.host_cached = {11, 12, 0, 0};
  row.walk.nested_hit = {13, 14, 15, 16};
  row.walk.nested_walk = {17, 18, 19, 20};
  row.walk.memo_hits = 21;
  row.walk.memo_upper_hits = 22;
  return row;
}

TEST(WalkBreakdown, LevelCyclesFollowTheWalkerCostModel) {
  const metrics::WalkLevelRow row = SampleWalkRow();
  // (guest_mem + host_mem) * 50 + (guest_cached + host_cached) * 2.
  EXPECT_EQ(metrics::WalkLevelCycles(row, 0), (1 + 7) * 50 + (5 + 11) * 2);
  EXPECT_EQ(metrics::WalkLevelCycles(row, 1), (2 + 8) * 50 + (6 + 12) * 2);
  EXPECT_EQ(metrics::WalkLevelCycles(row, 2), (3 + 9) * 50);
  EXPECT_EQ(metrics::WalkLevelCycles(row, 3), (4 + 10) * 50);
}

TEST(WalkBreakdown, GoldenTable) {
  const std::vector<metrics::WalkLevelRow> rows = {SampleWalkRow()};
  EXPECT_EQ(metrics::RenderWalkLevelBreakdown(rows),
            "\n"
            "== Walk-level breakdown: where each level's references were served and the miss cycles it charged (DESIGN.md \xC2\xA7" "3e) ==\n"
            "workload  level    guest mem   guest pwc  host mem  host pwc  nested hit  nested walk  cycles\n"
            "---------------------------------------------------------------------------------------------\n"
            "Canneal   L4 PML4  1           5          7         11        13          17           432   \n"
            "Canneal   L3 PDPT  2           6          8         12        14          18           536   \n"
            "Canneal   L2 PD    3           0          9         0         15          19           600   \n"
            "Canneal   L1 PT    4           0          10        0         16          20           700   \n"
            "Canneal   memo     replays=21                                             upper=22           \n");
}

}  // namespace
