// Tests for the streaming statistics helpers.
#include "base/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <vector>

namespace {

TEST(RunningStat, Empty) {
  base::RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, SingleValue) {
  base::RunningStat s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, KnownMoments) {
  base::RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, NegativeValues) {
  base::RunningStat s;
  s.Add(-3.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
}

TEST(LatencyRecorder, ExactMeanRegardlessOfReservoir) {
  base::LatencyRecorder rec(16);  // tiny reservoir
  double sum = 0;
  for (int i = 1; i <= 1000; ++i) {
    rec.Record(i);
    sum += i;
  }
  EXPECT_EQ(rec.count(), 1000u);
  EXPECT_DOUBLE_EQ(rec.Mean(), sum / 1000.0);
}

TEST(LatencyRecorder, PercentilesOnSmallExactSet) {
  base::LatencyRecorder rec(1024);
  for (int i = 1; i <= 100; ++i) {
    rec.Record(i);
  }
  EXPECT_NEAR(rec.Percentile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(rec.Percentile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(rec.Percentile(0.5), 50.5, 1.0);
  EXPECT_NEAR(rec.Percentile(0.99), 99.0, 1.5);
}

TEST(LatencyRecorder, ReservoirApproximatesTail) {
  base::LatencyRecorder rec(4096, 3);
  // 99 % of samples at 10, 1 % at 1000.
  for (int i = 0; i < 100000; ++i) {
    rec.Record(i % 100 == 0 ? 1000.0 : 10.0);
  }
  EXPECT_NEAR(rec.Mean(), 0.99 * 10 + 0.01 * 1000, 0.5);
  EXPECT_NEAR(rec.Percentile(0.5), 10.0, 1e-9);
  // p99.5 must see the spike.
  EXPECT_GT(rec.Percentile(0.995), 500.0);
}

TEST(LatencyRecorder, EmptyPercentileIsZero) {
  base::LatencyRecorder rec;
  EXPECT_EQ(rec.Percentile(0.99), 0.0);
  EXPECT_EQ(rec.Mean(), 0.0);
}

TEST(Log2Histogram, BucketBoundaries) {
  // Bucket 0 holds {0, 1}; bucket b >= 1 holds [2^b, 2^(b+1)).
  EXPECT_EQ(base::Log2Histogram::BucketOf(0), 0u);
  EXPECT_EQ(base::Log2Histogram::BucketOf(1), 0u);
  EXPECT_EQ(base::Log2Histogram::BucketOf(2), 1u);
  EXPECT_EQ(base::Log2Histogram::BucketOf(3), 1u);
  EXPECT_EQ(base::Log2Histogram::BucketOf(4), 2u);
  EXPECT_EQ(base::Log2Histogram::BucketOf(7), 2u);
  EXPECT_EQ(base::Log2Histogram::BucketOf(8), 3u);
  EXPECT_EQ(base::Log2Histogram::BucketOf(~0ull),
            base::Log2Histogram::kBuckets - 1);
  EXPECT_EQ(base::Log2Histogram::BucketUpperBound(0), 1u);
  EXPECT_EQ(base::Log2Histogram::BucketUpperBound(1), 3u);
  EXPECT_EQ(base::Log2Histogram::BucketUpperBound(5), 63u);
}

TEST(Log2Histogram, NearestRankPercentiles) {
  base::Log2Histogram h;
  for (int i = 0; i < 50; ++i) h.Add(2);     // bucket 1, upper bound 3
  for (int i = 0; i < 45; ++i) h.Add(40);    // bucket 5, upper bound 63
  for (int i = 0; i < 5; ++i) h.Add(200);    // bucket 7, upper bound 255
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.Percentile(0.50), 3u);
  EXPECT_EQ(h.Percentile(0.90), 63u);
  EXPECT_EQ(h.Percentile(0.99), 255u);
  EXPECT_EQ(h.Percentile(1.0), 255u);
  EXPECT_EQ(h.Percentile(0.0), 3u);  // rank clamps to 1: smallest bucket
}

TEST(Log2Histogram, EmptyPercentileIsZero) {
  base::Log2Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.99), 0u);
}

TEST(Log2Histogram, PercentileOfCountsWorksOnDeltas) {
  // The snapshot path subtracts bucket arrays and evaluates percentiles on
  // the difference; the static helper must agree with the member form.
  base::Log2Histogram all;
  base::Log2Histogram early;
  for (int i = 0; i < 10; ++i) {
    early.Add(4);
    all.Add(4);
  }
  for (int i = 0; i < 90; ++i) all.Add(100);
  std::array<uint64_t, base::Log2Histogram::kBuckets> delta{};
  for (size_t b = 0; b < delta.size(); ++b) {
    delta[b] = all.buckets()[b] - early.buckets()[b];
  }
  // The delta is 90 values in bucket 6 ([64,127]): every percentile is 127.
  EXPECT_EQ(base::Log2Histogram::PercentileOfCounts(delta, 0.50), 127u);
  EXPECT_EQ(base::Log2Histogram::PercentileOfCounts(delta, 0.99), 127u);
}

TEST(LatencyRecorder, RecordAfterPercentileQueryStillCorrect) {
  base::LatencyRecorder rec(1024);
  rec.Record(1.0);
  EXPECT_DOUBLE_EQ(rec.Percentile(1.0), 1.0);
  rec.Record(2.0);
  EXPECT_DOUBLE_EQ(rec.Percentile(1.0), 2.0);
}

}  // namespace
