// Tests for the streaming statistics helpers.
#include "base/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace {

TEST(RunningStat, Empty) {
  base::RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, SingleValue) {
  base::RunningStat s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, KnownMoments) {
  base::RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, NegativeValues) {
  base::RunningStat s;
  s.Add(-3.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
}

TEST(LatencyRecorder, ExactMeanRegardlessOfReservoir) {
  base::LatencyRecorder rec(16);  // tiny reservoir
  double sum = 0;
  for (int i = 1; i <= 1000; ++i) {
    rec.Record(i);
    sum += i;
  }
  EXPECT_EQ(rec.count(), 1000u);
  EXPECT_DOUBLE_EQ(rec.Mean(), sum / 1000.0);
}

TEST(LatencyRecorder, PercentilesOnSmallExactSet) {
  base::LatencyRecorder rec(1024);
  for (int i = 1; i <= 100; ++i) {
    rec.Record(i);
  }
  EXPECT_NEAR(rec.Percentile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(rec.Percentile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(rec.Percentile(0.5), 50.5, 1.0);
  EXPECT_NEAR(rec.Percentile(0.99), 99.0, 1.5);
}

TEST(LatencyRecorder, ReservoirApproximatesTail) {
  base::LatencyRecorder rec(4096, 3);
  // 99 % of samples at 10, 1 % at 1000.
  for (int i = 0; i < 100000; ++i) {
    rec.Record(i % 100 == 0 ? 1000.0 : 10.0);
  }
  EXPECT_NEAR(rec.Mean(), 0.99 * 10 + 0.01 * 1000, 0.5);
  EXPECT_NEAR(rec.Percentile(0.5), 10.0, 1e-9);
  // p99.5 must see the spike.
  EXPECT_GT(rec.Percentile(0.995), 500.0);
}

TEST(LatencyRecorder, EmptyPercentileIsZero) {
  base::LatencyRecorder rec;
  EXPECT_EQ(rec.Percentile(0.99), 0.0);
  EXPECT_EQ(rec.Mean(), 0.0);
}

TEST(LatencyRecorder, RecordAfterPercentileQueryStillCorrect) {
  base::LatencyRecorder rec(1024);
  rec.Record(1.0);
  EXPECT_DOUBLE_EQ(rec.Percentile(1.0), 1.0);
  rec.Record(2.0);
  EXPECT_DOUBLE_EQ(rec.Percentile(1.0), 2.0);
}

}  // namespace
