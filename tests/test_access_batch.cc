// Differential property test for the batched access pipeline: the PR's
// equivalence contract says Machine::AccessBatch IS Machine::Access, only
// faster on the host.  We drive byte-identical machines through the same
// access plan — one scalar, one batched at each size in {1, 7, 64, 4096} —
// and require every observable to match exactly:
//
//  * the AccessResult stream (cycles, tlb_hit, well_aligned, faults),
//  * TLB counters including stale drops and shootdowns, LRU state
//    (witnessed indirectly through hit/miss equality under later reuse),
//  * translation counters and charged cycles,
//  * logical time, so daemon schedules never skew, and
//  * final page-table state at both layers (digested structurally).
//
// The plan interleaves access bursts with think time, and the daemon
// period is chosen so promotions, demotions, and reclaim fire in the
// middle of large batches — the hard case the contract must survive.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "base/rng.h"
#include "base/types.h"
#include "harness/systems.h"
#include "mmu/page_table.h"
#include "os/machine.h"
#include "os/virtual_machine.h"

namespace {

using base::kPagesPerHuge;
using osim::VirtualMachine;

// One scripted run: VMA layout, then segments of accesses separated by
// think time.  Everything is derived from `seed` so scalar and batched
// drivers replay the identical plan.
struct Plan {
  struct Segment {
    std::vector<uint64_t> vpns;
    base::Cycles advance_after = 0;
  };
  std::vector<Segment> segments;
};

Plan BuildPlan(uint64_t seed) {
  base::Rng rng(seed);
  Plan plan;
  // ~6000 accesses across segments of irregular length, so every batch
  // size under test splits the stream at different points.
  for (int s = 0; s < 12; ++s) {
    Plan::Segment seg;
    const uint64_t len = 100 + rng.NextBelow(800);
    for (uint64_t i = 0; i < len; ++i) {
      seg.vpns.push_back(rng.NextBelow(6 * kPagesPerHuge));
    }
    if (rng.NextBool(0.5)) {
      seg.advance_after = 1000 * (1 + rng.NextBelow(50));
    }
    plan.segments.push_back(std::move(seg));
  }
  return plan;
}

// Everything we compare between drivers.
struct Observation {
  std::vector<VirtualMachine::AccessResult> results;
  uint64_t tlb_hits = 0;
  uint64_t tlb_misses = 0;
  uint64_t tlb_stale = 0;
  uint64_t tlb_shootdowns = 0;
  uint64_t translations = 0;
  base::Cycles translation_cycles = 0;
  base::Cycles now = 0;
  uint64_t guest_digest = 0;
  uint64_t host_digest = 0;
};

uint64_t DigestTable(const mmu::PageTable& table) {
  // Structural digest: every huge leaf and every present base page, with
  // region generations (so a promotion that lands in one driver but not
  // the other cannot cancel out in the frame sum).
  uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](uint64_t v) { h = (h ^ v) * 1099511628211ull; };
  table.ForEachHuge([&](uint64_t region, uint64_t frame) {
    mix(region * 2 + 1);
    mix(frame);
    mix(table.generation(region));
  });
  table.ForEachBaseRegion([&](uint64_t region, uint32_t) {
    mix(region * 2);
    mix(table.generation(region));
    table.ForEachBasePage(region, [&](uint32_t slot, uint64_t frame) {
      mix(slot);
      mix(frame);
    });
  });
  return h;
}

// Replays `plan`, scalar when batch == 0, else via AccessBatch in
// `batch`-sized chunks.  The machine is built identically for every
// driver: one VM under `kind`, fragmented memory at both layers, a daemon
// period short enough that promotion/demotion/reclaim work fires mid-batch
// at size 4096 (~400 accesses apart at 50 work cycles per access).
Observation Drive(harness::SystemKind kind, uint64_t seed, const Plan& plan,
                  uint64_t batch) {
  osim::MachineConfig config;
  config.host_frames = 16384;
  config.daemon_period = 20000;
  config.seed = seed;
  osim::Machine machine(config);
  VirtualMachine& vm = harness::AddSystemVm(machine, kind, 8192);
  machine.FragmentGuestMemory(0, 0.6);
  machine.FragmentHostMemory(0.6);
  // Plan vpns are offsets into this VMA.
  const uint64_t base_vpn =
      vm.guest().aspace().MapAnonymous(6 * kPagesPerHuge).start_page;

  Observation obs;
  std::vector<uint64_t> vpns;
  std::vector<VirtualMachine::AccessResult> out;
  for (const Plan::Segment& seg : plan.segments) {
    vpns.clear();
    for (const uint64_t off : seg.vpns) {
      vpns.push_back(base_vpn + off);
    }
    if (batch == 0) {
      for (const uint64_t vpn : vpns) {
        obs.results.push_back(machine.Access(0, vpn, 50));
      }
    } else {
      for (size_t i = 0; i < vpns.size(); i += batch) {
        const size_t n = std::min<size_t>(batch, vpns.size() - i);
        machine.AccessBatch(0, std::span(vpns.data() + i, n), 50, &out);
        obs.results.insert(obs.results.end(), out.begin(), out.end());
      }
    }
    if (seg.advance_after != 0) {
      machine.AdvanceTime(seg.advance_after);
    }
  }

  const mmu::TlbView& tlb = vm.engine().tlb();
  obs.tlb_hits = tlb.hits();
  obs.tlb_misses = tlb.misses();
  obs.tlb_stale = tlb.stale_drops();
  obs.tlb_shootdowns = tlb.shootdowns();
  obs.translations = vm.engine().translations();
  obs.translation_cycles = vm.engine().translation_cycles();
  obs.now = machine.Now();
  obs.guest_digest = DigestTable(vm.guest().table());
  obs.host_digest = DigestTable(vm.host_slice().table());
  return obs;
}

void ExpectSameObservation(const Observation& scalar, const Observation& b,
                           uint64_t batch) {
  ASSERT_EQ(scalar.results.size(), b.results.size()) << "batch " << batch;
  for (size_t i = 0; i < scalar.results.size(); ++i) {
    const auto& s = scalar.results[i];
    const auto& r = b.results[i];
    ASSERT_EQ(s.cycles, r.cycles) << "batch " << batch << " access " << i;
    ASSERT_EQ(s.tlb_hit, r.tlb_hit) << "batch " << batch << " access " << i;
    ASSERT_EQ(s.well_aligned, r.well_aligned)
        << "batch " << batch << " access " << i;
    ASSERT_EQ(s.faults_taken, r.faults_taken)
        << "batch " << batch << " access " << i;
  }
  EXPECT_EQ(scalar.tlb_hits, b.tlb_hits) << "batch " << batch;
  EXPECT_EQ(scalar.tlb_misses, b.tlb_misses) << "batch " << batch;
  EXPECT_EQ(scalar.tlb_stale, b.tlb_stale) << "batch " << batch;
  EXPECT_EQ(scalar.tlb_shootdowns, b.tlb_shootdowns) << "batch " << batch;
  EXPECT_EQ(scalar.translations, b.translations) << "batch " << batch;
  EXPECT_EQ(scalar.translation_cycles, b.translation_cycles)
      << "batch " << batch;
  EXPECT_EQ(scalar.now, b.now) << "batch " << batch;
  EXPECT_EQ(scalar.guest_digest, b.guest_digest) << "batch " << batch;
  EXPECT_EQ(scalar.host_digest, b.host_digest) << "batch " << batch;
}

class AccessBatchDifferentialTest
    : public ::testing::TestWithParam<harness::SystemKind> {};

TEST_P(AccessBatchDifferentialTest, BatchSizeIsUnobservable) {
  const harness::SystemKind kind = GetParam();
  const uint64_t seed = 20230425;
  const Plan plan = BuildPlan(seed);
  const Observation scalar = Drive(kind, seed, plan, 0);
  // The plan must actually exercise the interesting machinery, or the
  // equivalence claim is vacuous.
  uint64_t faults = 0;
  for (const auto& r : scalar.results) {
    faults += r.faults_taken;
  }
  ASSERT_GT(faults, 0u);
  ASSERT_GT(scalar.tlb_hits, 0u);
  ASSERT_GT(scalar.tlb_misses, 0u);

  for (const uint64_t batch : {1ull, 7ull, 64ull, 4096ull}) {
    const Observation batched = Drive(kind, seed, plan, batch);
    ExpectSameObservation(scalar, batched, batch);
  }
}

// Gemini exercises promotion + demotion + reclaim daemons (the hardest
// mid-batch mutations); THP and HawkEye cover the other promotion styles;
// kHostBVmB pins the no-huge-page baseline.
INSTANTIATE_TEST_SUITE_P(Systems, AccessBatchDifferentialTest,
                         ::testing::Values(harness::SystemKind::kGemini,
                                           harness::SystemKind::kThp,
                                           harness::SystemKind::kHawkEye,
                                           harness::SystemKind::kHostBVmB));

// The generation-stamp churn path: in-place demote/promote cycles leave
// TLB entries stale-stamped but still correct, so the batched memo must
// revalidate (not trust) them.  Covered at the engine level here because
// Machine has no direct demote hook.
TEST(AccessBatchChurn, MemoSurvivesGenerationChurn) {
  mmu::PageTable guest;
  mmu::PageTable ept;
  for (uint64_t r = 0; r < 8; ++r) {
    guest.MapHuge(r, r * kPagesPerHuge);
    ept.MapHuge(r, (8 + r) * kPagesPerHuge);
  }
  mmu::TranslationEngine scalar(mmu::TranslationEngine::Config{}, &guest,
                                &ept);
  // A second identical layout for the scalar reference.
  mmu::PageTable guest2;
  mmu::PageTable ept2;
  for (uint64_t r = 0; r < 8; ++r) {
    guest2.MapHuge(r, r * kPagesPerHuge);
    ept2.MapHuge(r, (8 + r) * kPagesPerHuge);
  }
  mmu::TranslationEngine batched(mmu::TranslationEngine::Config{}, &guest2,
                                 &ept2);

  base::Rng rng(7);
  std::vector<uint64_t> vpns(64);
  std::vector<mmu::TranslateResult> out(64);
  for (int round = 0; round < 200; ++round) {
    for (auto& v : vpns) {
      v = rng.NextBelow(8 * kPagesPerHuge);
    }
    for (const uint64_t v : vpns) {
      const auto s = scalar.Translate(v);
      ASSERT_EQ(s.status, mmu::TranslateStatus::kOk);
    }
    const size_t ok = batched.TranslateBatch(vpns, out.data());
    ASSERT_EQ(ok, vpns.size());
    // Mutate between batches: demote + re-promote one region in place on
    // both sides (frames unchanged, generations bumped), so armed memo
    // slots and ring side-walks are invalidated by the mutation counter.
    const uint64_t r = rng.NextBelow(8);
    guest.Demote(r);
    guest.PromoteInPlace(r);
    guest2.Demote(r);
    guest2.PromoteInPlace(r);
    ASSERT_EQ(scalar.tlb().hits(), batched.tlb().hits()) << round;
    ASSERT_EQ(scalar.tlb().misses(), batched.tlb().misses()) << round;
    ASSERT_EQ(scalar.tlb().stale_drops(), batched.tlb().stale_drops())
        << round;
    ASSERT_EQ(scalar.translation_cycles(), batched.translation_cycles())
        << round;
  }
  // Churn actually hit the revalidation path.
  EXPECT_GT(scalar.tlb().hits(), 0u);
  const auto& stats = batched.batch_stats();
  EXPECT_EQ(stats.batched_translations, 200u * 64u);
  EXPECT_GT(stats.fastpath_hits, 0u);
}

}  // namespace
