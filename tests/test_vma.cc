// Tests for VMAs and the guest address space.
#include "os/vma.h"

#include <gtest/gtest.h>

#include "base/types.h"

namespace {

using base::kPagesPerHuge;
using osim::AddressSpace;
using osim::Vma;

TEST(AddressSpace, VmasAreHugeAligned) {
  AddressSpace aspace;
  for (int i = 0; i < 10; ++i) {
    const Vma& vma = aspace.MapAnonymous(100 + i * 37);
    EXPECT_EQ(vma.start_page % kPagesPerHuge, 0u);
  }
}

TEST(AddressSpace, VmasDoNotOverlapAndHaveGuardGaps) {
  AddressSpace aspace;
  const Vma& a = aspace.MapAnonymous(1000);
  const Vma& b = aspace.MapAnonymous(1000);
  EXPECT_GE(b.start_page, a.end_page() + kPagesPerHuge);
}

TEST(AddressSpace, FindByAddress) {
  AddressSpace aspace;
  const Vma& a = aspace.MapAnonymous(100);
  const Vma& b = aspace.MapAnonymous(200);
  EXPECT_EQ(aspace.Find(a.start_page)->id, a.id);
  EXPECT_EQ(aspace.Find(a.start_page + 99)->id, a.id);
  EXPECT_EQ(aspace.Find(a.start_page + 100), nullptr);  // past the end
  EXPECT_EQ(aspace.Find(b.start_page + 150)->id, b.id);
  EXPECT_EQ(aspace.Find(0), nullptr);
}

TEST(AddressSpace, FindById) {
  AddressSpace aspace;
  const Vma& a = aspace.MapAnonymous(10);
  EXPECT_EQ(aspace.FindById(a.id)->start_page, a.start_page);
  EXPECT_EQ(aspace.FindById(12345), nullptr);
}

TEST(AddressSpace, RemoveDropsVma) {
  AddressSpace aspace;
  const Vma& a = aspace.MapAnonymous(10);
  const uint64_t start = a.start_page;
  const int32_t id = a.id;
  aspace.Remove(id);
  EXPECT_EQ(aspace.Find(start), nullptr);
  EXPECT_EQ(aspace.vma_count(), 0u);
}

TEST(AddressSpace, VmasEnumeratesInAddressOrder) {
  AddressSpace aspace;
  aspace.MapAnonymous(10);
  aspace.MapAnonymous(10);
  aspace.MapAnonymous(10);
  const auto vmas = aspace.Vmas();
  ASSERT_EQ(vmas.size(), 3u);
  EXPECT_LT(vmas[0]->start_page, vmas[1]->start_page);
  EXPECT_LT(vmas[1]->start_page, vmas[2]->start_page);
}

TEST(Vma, ContainsAndCoversRegion) {
  Vma vma;
  vma.start_page = 2 * kPagesPerHuge;
  vma.pages = 3 * kPagesPerHuge;
  EXPECT_TRUE(vma.Contains(vma.start_page));
  EXPECT_FALSE(vma.Contains(vma.start_page - 1));
  EXPECT_TRUE(vma.CoversRegion(2));
  EXPECT_TRUE(vma.CoversRegion(4));
  EXPECT_FALSE(vma.CoversRegion(5));
  EXPECT_FALSE(vma.CoversRegion(1));
}

TEST(Vma, SmallVmaCoversNoRegion) {
  Vma vma;
  vma.start_page = kPagesPerHuge;
  vma.pages = kPagesPerHuge - 1;
  EXPECT_FALSE(vma.CoversRegion(1));
}

}  // namespace
