// Tests for the guest/host kernel mechanics via a small Machine.
#include <gtest/gtest.h>

#include "base/types.h"
#include "os/machine.h"
#include "policy/base_only.h"
#include "policy/misalignment.h"
#include "policy/thp.h"

namespace {

using base::kHugeOrder;
using base::kPagesPerHuge;

osim::MachineConfig SmallConfig() {
  osim::MachineConfig config;
  config.host_frames = 16384;
  config.seed = 3;
  return config;
}

TEST(GuestKernel, DemandFaultMapsBasePage) {
  osim::Machine machine(SmallConfig());
  auto& vm = machine.AddVm(8192, std::make_unique<policy::BaseOnlyPolicy>(),
                           std::make_unique<policy::BaseOnlyPolicy>());
  osim::Vma& vma = vm.guest().aspace().MapAnonymous(100);
  const base::Cycles cost = vm.guest().HandleFault(vma.start_page);
  EXPECT_GT(cost, 0u);
  EXPECT_TRUE(vm.guest().table().Lookup(vma.start_page).has_value());
  EXPECT_EQ(vm.guest().stats().base_faults, 1u);
  EXPECT_EQ(vm.guest().buddy().allocated_frames(), 1u);
}

TEST(GuestKernel, ThpEagerHugeFaultMapsWholeRegion) {
  osim::Machine machine(SmallConfig());
  auto& vm = machine.AddVm(8192, std::make_unique<policy::ThpPolicy>(),
                           std::make_unique<policy::AlwaysHugePolicy>());
  osim::Vma& vma = vm.guest().aspace().MapAnonymous(2 * kPagesPerHuge);
  vm.guest().HandleFault(vma.start_page + 5);
  EXPECT_TRUE(vm.guest().table().IsHugeMapped(vma.start_page >> kHugeOrder));
  EXPECT_EQ(vm.guest().stats().huge_faults, 1u);
  // Zeroing the huge page touched every GFN: the EPT must be populated.
  const auto g = vm.guest().table().Lookup(vma.start_page);
  ASSERT_TRUE(g.has_value());
  EXPECT_TRUE(vm.host_slice().table().Lookup(g->frame).has_value());
}

TEST(GuestKernel, HugeFaultRespectsVmaCoverage) {
  osim::Machine machine(SmallConfig());
  auto& vm = machine.AddVm(8192, std::make_unique<policy::ThpPolicy>(),
                           std::make_unique<policy::BaseOnlyPolicy>());
  // VMA smaller than one region: eager huge must not trigger.
  osim::Vma& vma = vm.guest().aspace().MapAnonymous(kPagesPerHuge / 2);
  vm.guest().HandleFault(vma.start_page);
  EXPECT_EQ(vm.guest().stats().huge_faults, 0u);
  EXPECT_EQ(vm.guest().stats().base_faults, 1u);
}

TEST(GuestKernel, UnmapVmaFreesGuestFramesButKeepsEpt) {
  osim::Machine machine(SmallConfig());
  auto& vm = machine.AddVm(8192, std::make_unique<policy::BaseOnlyPolicy>(),
                           std::make_unique<policy::BaseOnlyPolicy>());
  osim::Vma& vma = vm.guest().aspace().MapAnonymous(64);
  const int32_t vma_id = vma.id;
  const uint64_t start = vma.start_page;
  for (uint64_t p = 0; p < 64; ++p) {
    machine.Access(0, start + p);  // fault in both layers
  }
  const uint64_t guest_allocated = vm.guest().buddy().allocated_frames();
  const uint64_t ept_mapped = vm.host_slice().table().mapped_pages();
  EXPECT_EQ(guest_allocated, 64u);
  EXPECT_EQ(ept_mapped, 64u);
  vm.guest().UnmapVma(vma_id);
  // Guest frames return to the guest buddy; the host keeps the VM's memory
  // (paper §6.3's reused-VM premise).
  EXPECT_EQ(vm.guest().buddy().allocated_frames(), 0u);
  EXPECT_EQ(vm.host_slice().table().mapped_pages(), ept_mapped);
  EXPECT_EQ(vm.guest().table().mapped_pages(), 0u);
}

TEST(GuestKernel, FaultPlacementHonorsTargetHint) {
  // CA-paging-style targeting: BaseOnly has no hints, so craft one through
  // a THP policy derivative is overkill — instead verify via AllocateAt
  // that the mechanism the hint uses composes (covered in policy tests);
  // here check that faulting twice maps distinct frames.
  osim::Machine machine(SmallConfig());
  auto& vm = machine.AddVm(8192, std::make_unique<policy::BaseOnlyPolicy>(),
                           std::make_unique<policy::BaseOnlyPolicy>());
  osim::Vma& vma = vm.guest().aspace().MapAnonymous(10);
  vm.guest().HandleFault(vma.start_page);
  vm.guest().HandleFault(vma.start_page + 1);
  const auto a = vm.guest().table().Lookup(vma.start_page);
  const auto b = vm.guest().table().Lookup(vma.start_page + 1);
  ASSERT_TRUE(a.has_value() && b.has_value());
  EXPECT_NE(a->frame, b->frame);
}

TEST(HostKernel, EptFaultBacksPage) {
  osim::Machine machine(SmallConfig());
  auto& vm = machine.AddVm(8192, std::make_unique<policy::BaseOnlyPolicy>(),
                           std::make_unique<policy::BaseOnlyPolicy>());
  const base::Cycles cost = vm.host_slice().HandleFault(42);
  EXPECT_GT(cost, 0u);
  EXPECT_TRUE(vm.host_slice().table().Lookup(42).has_value());
}

TEST(HostKernel, AlwaysHugeBacksWholeRegion) {
  osim::Machine machine(SmallConfig());
  auto& vm = machine.AddVm(8192, std::make_unique<policy::BaseOnlyPolicy>(),
                           std::make_unique<policy::AlwaysHugePolicy>());
  vm.host_slice().HandleFault(42);
  EXPECT_TRUE(vm.host_slice().table().IsHugeMapped(0));
  EXPECT_EQ(vm.host_slice().stats().huge_faults, 1u);
}

TEST(Kernels, PromoteWithMigrationMovesFramesAndFreesOld) {
  osim::Machine machine(SmallConfig());
  auto& vm = machine.AddVm(8192, std::make_unique<policy::BaseOnlyPolicy>(),
                           std::make_unique<policy::BaseOnlyPolicy>());
  osim::Vma& vma = vm.guest().aspace().MapAnonymous(kPagesPerHuge);
  for (uint64_t p = 0; p < kPagesPerHuge; ++p) {
    vm.guest().HandleFault(vma.start_page + p);
  }
  const uint64_t region = vma.start_page >> kHugeOrder;
  const uint64_t before = vm.guest().buddy().allocated_frames();
  ASSERT_TRUE(vm.guest().PromoteWithMigration(region, vmem::kInvalidFrame));
  EXPECT_TRUE(vm.guest().table().IsHugeMapped(region));
  // Old 512 frames freed, new 512 allocated: net unchanged.
  EXPECT_EQ(vm.guest().buddy().allocated_frames(), before);
  EXPECT_EQ(vm.guest().stats().promotions_migrated, 1u);
  EXPECT_EQ(vm.guest().stats().pages_copied, kPagesPerHuge);
  EXPECT_GT(vm.guest().stats().overhead_cycles, 0u);
}

TEST(Kernels, PromoteWithMigrationFailsWithoutBlocks) {
  osim::Machine machine(SmallConfig());
  auto& vm = machine.AddVm(2048, std::make_unique<policy::BaseOnlyPolicy>(),
                           std::make_unique<policy::BaseOnlyPolicy>());
  // Consume all guest memory except scattered singles.
  auto& buddy = vm.guest().buddy();
  for (uint64_t f = 0; f < 2048; f += 2) {
    ASSERT_TRUE(buddy.AllocateAt(f, 1));
  }
  osim::Vma& vma = vm.guest().aspace().MapAnonymous(kPagesPerHuge);
  for (uint64_t p = 0; p < 4; ++p) {
    vm.guest().HandleFault(vma.start_page + p);
  }
  EXPECT_FALSE(vm.guest().PromoteWithMigration(
      vma.start_page >> kHugeOrder, vmem::kInvalidFrame));
}

TEST(Kernels, DemoteSplitsHugeMapping) {
  osim::Machine machine(SmallConfig());
  auto& vm = machine.AddVm(8192, std::make_unique<policy::ThpPolicy>(),
                           std::make_unique<policy::BaseOnlyPolicy>());
  osim::Vma& vma = vm.guest().aspace().MapAnonymous(kPagesPerHuge);
  vm.guest().HandleFault(vma.start_page);
  const uint64_t region = vma.start_page >> kHugeOrder;
  ASSERT_TRUE(vm.guest().table().IsHugeMapped(region));
  vm.guest().Demote(region);
  EXPECT_FALSE(vm.guest().table().IsHugeMapped(region));
  EXPECT_EQ(vm.guest().table().PresentBasePages(region), kPagesPerHuge);
  EXPECT_EQ(vm.guest().stats().demotions, 1u);
}

TEST(Kernels, FrameTagsTrackOwnership) {
  osim::Machine machine(SmallConfig());
  auto& vm = machine.AddVm(4096, std::make_unique<policy::BaseOnlyPolicy>(),
                           std::make_unique<policy::BaseOnlyPolicy>());
  osim::Vma& vma = vm.guest().aspace().MapAnonymous(8);
  for (uint64_t p = 0; p < 8; ++p) {
    machine.Access(0, vma.start_page + p);
  }
  EXPECT_EQ(vm.guest().gpa_frames().CountUse(vmem::FrameUse::kAnonymous), 8u);
  EXPECT_EQ(machine.host().frames().CountUse(vmem::FrameUse::kAnonymous), 8u);
}

}  // namespace
