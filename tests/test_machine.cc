// Tests for the Machine: clock, daemon scheduling, hooks, multi-VM.
#include "os/machine.h"

#include <gtest/gtest.h>

#include "base/types.h"
#include "policy/base_only.h"
#include "policy/policy.h"

namespace {

using base::kPagesPerHuge;

osim::MachineConfig SmallConfig() {
  osim::MachineConfig config;
  config.host_frames = 32768;
  config.daemon_period = 1000;
  config.seed = 5;
  return config;
}

// Policy that counts daemon ticks.
class TickCountingPolicy final : public policy::HugePagePolicy {
 public:
  explicit TickCountingPolicy(int* counter) : counter_(counter) {}
  std::string_view name() const override { return "tick-counter"; }
  policy::FaultDecision OnFault(policy::KernelOps&,
                                const policy::FaultInfo&) override {
    return {};
  }
  void OnDaemonTick(policy::KernelOps&) override { ++*counter_; }

 private:
  int* counter_;
};

class CountingTask final : public osim::PeriodicTask {
 public:
  explicit CountingTask(int* counter) : counter_(counter) {}
  void Run(base::Cycles) override { ++*counter_; }

 private:
  int* counter_;
};

TEST(Machine, AccessAdvancesClock) {
  osim::Machine machine(SmallConfig());
  auto& vm = machine.AddVm(4096, std::make_unique<policy::BaseOnlyPolicy>(),
                           std::make_unique<policy::BaseOnlyPolicy>());
  vm.guest().aspace().MapAnonymous(16);
  const base::Cycles t0 = machine.Now();
  machine.Access(0, vm.guest().aspace().Vmas()[0]->start_page, 100);
  EXPECT_GT(machine.Now(), t0 + 100);
}

TEST(Machine, DaemonsTickOncePerPeriod) {
  osim::Machine machine(SmallConfig());
  int guest_ticks = 0;
  int host_ticks = 0;
  machine.AddVm(4096, std::make_unique<TickCountingPolicy>(&guest_ticks),
                std::make_unique<TickCountingPolicy>(&host_ticks));
  machine.AdvanceTime(10 * SmallConfig().daemon_period);
  EXPECT_EQ(guest_ticks, 10);
  EXPECT_EQ(host_ticks, 10);
}

TEST(Machine, PeriodicTasksRunAtTheirOwnPeriod) {
  osim::Machine machine(SmallConfig());
  machine.AddVm(4096, std::make_unique<policy::BaseOnlyPolicy>(),
                std::make_unique<policy::BaseOnlyPolicy>());
  int runs = 0;
  machine.AddTask(std::make_unique<CountingTask>(&runs), 500);
  machine.AdvanceTime(2600);
  EXPECT_EQ(runs, 5);  // t=500,1000,...,2500
}

TEST(Machine, EnsureHostBackingFaultsMissingPages) {
  osim::Machine machine(SmallConfig());
  auto& vm = machine.AddVm(4096, std::make_unique<policy::BaseOnlyPolicy>(),
                           std::make_unique<policy::BaseOnlyPolicy>());
  EXPECT_FALSE(vm.host_slice().table().Lookup(100).has_value());
  const base::Cycles cost = machine.EnsureHostBacking(0, 100, 16);
  EXPECT_GT(cost, 0u);
  for (uint64_t g = 100; g < 116; ++g) {
    EXPECT_TRUE(vm.host_slice().table().Lookup(g).has_value());
  }
  // Idempotent: second call faults nothing.
  EXPECT_EQ(machine.EnsureHostBacking(0, 100, 16), 0u);
}

TEST(Machine, ShootdownGuestRangeDropsTlbEntries) {
  osim::Machine machine(SmallConfig());
  auto& vm = machine.AddVm(4096, std::make_unique<policy::BaseOnlyPolicy>(),
                           std::make_unique<policy::BaseOnlyPolicy>());
  osim::Vma& vma = vm.guest().aspace().MapAnonymous(4);
  machine.Access(0, vma.start_page);
  ASSERT_TRUE(machine.Access(0, vma.start_page).tlb_hit);
  machine.ShootdownGuestRange(0, vma.start_page, 4);
  EXPECT_FALSE(machine.Access(0, vma.start_page).tlb_hit);
}

TEST(Machine, VmTlbMissesExposed) {
  osim::Machine machine(SmallConfig());
  auto& vm = machine.AddVm(4096, std::make_unique<policy::BaseOnlyPolicy>(),
                           std::make_unique<policy::BaseOnlyPolicy>());
  osim::Vma& vma = vm.guest().aspace().MapAnonymous(4);
  EXPECT_EQ(machine.VmTlbMisses(0), 0u);
  machine.Access(0, vma.start_page);
  EXPECT_GT(machine.VmTlbMisses(0), 0u);
}

TEST(Machine, TwoVmsShareHostMemoryButNotGuestMemory) {
  osim::Machine machine(SmallConfig());
  auto& vm0 = machine.AddVm(4096, std::make_unique<policy::BaseOnlyPolicy>(),
                            std::make_unique<policy::BaseOnlyPolicy>());
  auto& vm1 = machine.AddVm(4096, std::make_unique<policy::BaseOnlyPolicy>(),
                            std::make_unique<policy::BaseOnlyPolicy>());
  osim::Vma& a = vm0.guest().aspace().MapAnonymous(8);
  osim::Vma& b = vm1.guest().aspace().MapAnonymous(8);
  for (uint64_t p = 0; p < 8; ++p) {
    machine.Access(0, a.start_page + p);
    machine.Access(1, b.start_page + p);
  }
  EXPECT_EQ(vm0.guest().buddy().allocated_frames(), 8u);
  EXPECT_EQ(vm1.guest().buddy().allocated_frames(), 8u);
  EXPECT_EQ(machine.host().buddy().allocated_frames(), 16u);
  // The two VMs' host frames must not overlap.
  const auto g0 = vm0.guest().table().Lookup(a.start_page);
  const auto g1 = vm1.guest().table().Lookup(b.start_page);
  const auto h0 = vm0.host_slice().table().Lookup(g0->frame);
  const auto h1 = vm1.host_slice().table().Lookup(g1->frame);
  EXPECT_NE(h0->frame, h1->frame);
}

TEST(Machine, FragmentHelpersReachTargets) {
  osim::Machine machine(SmallConfig());
  machine.AddVm(8192, std::make_unique<policy::BaseOnlyPolicy>(),
                std::make_unique<policy::BaseOnlyPolicy>());
  EXPECT_GE(machine.FragmentHostMemory(0.7), 0.7);
  EXPECT_GE(machine.FragmentGuestMemory(0, 0.7), 0.7);
}

TEST(Machine, AccessResolvesDoubleFault) {
  osim::Machine machine(SmallConfig());
  auto& vm = machine.AddVm(4096, std::make_unique<policy::BaseOnlyPolicy>(),
                           std::make_unique<policy::BaseOnlyPolicy>());
  osim::Vma& vma = vm.guest().aspace().MapAnonymous(4);
  const auto r = machine.Access(0, vma.start_page);
  EXPECT_EQ(r.faults_taken, 2u);  // guest fault then EPT fault
  EXPECT_FALSE(r.tlb_hit);
  const auto r2 = machine.Access(0, vma.start_page);
  EXPECT_EQ(r2.faults_taken, 0u);
  EXPECT_TRUE(r2.tlb_hit);
}

}  // namespace
