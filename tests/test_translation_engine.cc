// Tests for the translation engine — including the paper's central
// well-alignment rule (§2.2): a 2 MiB TLB entry only exists when BOTH the
// guest and the host map the region hugely.
#include "mmu/translation_engine.h"

#include <gtest/gtest.h>

#include "base/rng.h"
#include "base/types.h"
#include "mmu/page_table.h"

namespace {

using base::kHugeOrder;
using base::kPagesPerHuge;
using base::PageSize;
using mmu::PageTable;
using mmu::TranslateStatus;
using mmu::TranslationEngine;

TranslationEngine::Config SmallConfig() {
  TranslationEngine::Config c;
  c.tlb.sets = 16;
  c.tlb.ways = 4;
  return c;
}

class EngineTest : public ::testing::Test {
 protected:
  PageTable guest_;
  PageTable ept_;
};

TEST_F(EngineTest, GuestFaultWhenUnmapped) {
  TranslationEngine engine(SmallConfig(), &guest_, &ept_);
  const auto r = engine.Translate(100);
  EXPECT_EQ(r.status, TranslateStatus::kGuestFault);
  EXPECT_EQ(r.fault_page, 100u);
}

TEST_F(EngineTest, HostFaultWhenEptUnmapped) {
  guest_.MapBase(100, 7);
  TranslationEngine engine(SmallConfig(), &guest_, &ept_);
  const auto r = engine.Translate(100);
  EXPECT_EQ(r.status, TranslateStatus::kHostFault);
  EXPECT_EQ(r.fault_page, 7u);  // faulting GFN
}

TEST_F(EngineTest, FullTranslationComposesBothLayers) {
  guest_.MapBase(100, 7);
  ept_.MapBase(7, 999);
  TranslationEngine engine(SmallConfig(), &guest_, &ept_);
  const auto r = engine.Translate(100);
  EXPECT_EQ(r.status, TranslateStatus::kOk);
  EXPECT_EQ(r.frame, 999u);
  EXPECT_FALSE(r.tlb_hit);
  EXPECT_GT(r.cycles, 0u);
  // Second access hits the TLB.
  const auto r2 = engine.Translate(100);
  EXPECT_TRUE(r2.tlb_hit);
  EXPECT_EQ(r2.frame, 999u);
  EXPECT_EQ(r2.cycles, 1u);
}

TEST_F(EngineTest, WellAlignedHugeGetsHugeEntry) {
  guest_.MapHuge(0, 0);    // GVA region 0 -> GPA block 0
  ept_.MapHuge(0, 1024);   // GPA region 0 -> HPA block 1024
  TranslationEngine engine(SmallConfig(), &guest_, &ept_);
  const auto miss = engine.Translate(5);
  EXPECT_EQ(miss.status, TranslateStatus::kOk);
  EXPECT_TRUE(miss.well_aligned_huge);
  EXPECT_EQ(miss.frame, 1024u + 5);
  // Any other page of the region now hits thanks to the 2 MiB entry.
  const auto hit = engine.Translate(400);
  EXPECT_TRUE(hit.tlb_hit);
  EXPECT_TRUE(hit.well_aligned_huge);
  EXPECT_EQ(hit.frame, 1024u + 400);
}

TEST_F(EngineTest, GuestHugeOverHostBaseIsMisaligned) {
  // Huge guest page backed by base host pages: misaligned; only 4 KiB
  // entries may be cached (paper Figure 2, Host-B-VM-H).
  guest_.MapHuge(0, 0);
  for (uint64_t g = 0; g < kPagesPerHuge; ++g) {
    ept_.MapBase(g, 5000 + g);
  }
  TranslationEngine engine(SmallConfig(), &guest_, &ept_);
  const auto r = engine.Translate(3);
  EXPECT_FALSE(r.well_aligned_huge);
  EXPECT_EQ(r.frame, 5003u);
  // A different page of the same region must MISS (no huge entry).
  const auto r2 = engine.Translate(400);
  EXPECT_FALSE(r2.tlb_hit);
}

TEST_F(EngineTest, HostHugeOverGuestBaseIsMisaligned) {
  // Base guest pages backed by a huge host page (Host-H-VM-B).
  for (uint64_t v = 0; v < kPagesPerHuge; ++v) {
    guest_.MapBase(v, v);  // identity into GPA region 0
  }
  ept_.MapHuge(0, 2048);
  TranslationEngine engine(SmallConfig(), &guest_, &ept_);
  const auto r = engine.Translate(9);
  EXPECT_FALSE(r.well_aligned_huge);
  EXPECT_EQ(r.frame, 2048u + 9);
  const auto r2 = engine.Translate(200);
  EXPECT_FALSE(r2.tlb_hit);
}

TEST_F(EngineTest, StaleEntryDetectedAfterGuestRemap) {
  guest_.MapBase(50, 7);
  ept_.MapBase(7, 700);
  TranslationEngine engine(SmallConfig(), &guest_, &ept_);
  ASSERT_EQ(engine.Translate(50).frame, 700u);
  ASSERT_TRUE(engine.Translate(50).tlb_hit);
  // Guest remaps vpn 50 to a different GFN (e.g. migration).
  guest_.UnmapBase(50);
  guest_.MapBase(50, 8);
  ept_.MapBase(8, 800);
  const auto r = engine.Translate(50);
  EXPECT_EQ(r.status, TranslateStatus::kOk);
  EXPECT_FALSE(r.tlb_hit);  // stale entry was discarded, walk repeated
  EXPECT_EQ(r.frame, 800u);
  EXPECT_GT(engine.tlb().stale_drops(), 0u);
}

TEST_F(EngineTest, StaleHugeEntryDetectedAfterHostRemap) {
  guest_.MapHuge(0, 0);
  ept_.MapHuge(0, 1024);
  TranslationEngine engine(SmallConfig(), &guest_, &ept_);
  ASSERT_TRUE(engine.Translate(5).well_aligned_huge);
  ASSERT_TRUE(engine.Translate(6).tlb_hit);
  // Host migrates the backing to a different block.
  ept_.UnmapHuge(0);
  ept_.MapHuge(0, 4096);
  const auto r = engine.Translate(6);
  EXPECT_FALSE(r.tlb_hit);
  EXPECT_EQ(r.frame, 4096u + 6);
}

TEST_F(EngineTest, InPlacePromotionKeepsOldBaseEntriesValid) {
  for (uint64_t v = 0; v < kPagesPerHuge; ++v) {
    guest_.MapBase(v, v);
    ept_.MapBase(v, 3 * kPagesPerHuge + v);
  }
  TranslationEngine engine(SmallConfig(), &guest_, &ept_);
  ASSERT_EQ(engine.Translate(4).frame, 3 * kPagesPerHuge + 4);
  // Promote both layers in place: frames unchanged.
  guest_.PromoteInPlace(0);
  ept_.PromoteInPlace(0);
  const auto r = engine.Translate(4);
  EXPECT_TRUE(r.tlb_hit);  // the 4 KiB entry still translates correctly
  EXPECT_EQ(r.frame, 3 * kPagesPerHuge + 4);
}

TEST_F(EngineTest, InPlacePromotionRestampsWithoutStaleDrop) {
  // Both layers promote in place: the generation stamps of the cached 4 KiB
  // entry go stale, but re-derivation finds identical frames, so the entry
  // is restamped and the access still counts as a hit — zero stale drops.
  for (uint64_t v = 0; v < kPagesPerHuge; ++v) {
    guest_.MapBase(v, v);
    ept_.MapBase(v, 3 * kPagesPerHuge + v);
  }
  TranslationEngine engine(SmallConfig(), &guest_, &ept_);
  ASSERT_FALSE(engine.Translate(4).well_aligned_huge);
  guest_.PromoteInPlace(0);
  ept_.PromoteInPlace(0);
  const auto r = engine.Translate(4);
  EXPECT_TRUE(r.tlb_hit);
  // The revalidated entry now reflects the well-aligned pair.
  EXPECT_TRUE(r.well_aligned_huge);
  EXPECT_EQ(engine.tlb().stale_hits(), 0u);
  // Once restamped, the next access takes the pure generation-compare path.
  const auto r2 = engine.Translate(4);
  EXPECT_TRUE(r2.tlb_hit);
  EXPECT_TRUE(r2.well_aligned_huge);
  EXPECT_EQ(r2.cycles, 1u);
}

TEST_F(EngineTest, UnrelatedRegionMutationDoesNotDisturbHits) {
  guest_.MapBase(50, 7);
  ept_.MapBase(7, 700);
  TranslationEngine engine(SmallConfig(), &guest_, &ept_);
  ASSERT_FALSE(engine.Translate(50).tlb_hit);
  // Churn a different guest region and a different host region.
  guest_.MapHuge(10, 20 * kPagesPerHuge);
  ept_.MapHuge(30, 40 * kPagesPerHuge);
  const auto r = engine.Translate(50);
  EXPECT_TRUE(r.tlb_hit);
  EXPECT_EQ(r.frame, 700u);
  EXPECT_EQ(engine.tlb().stale_hits(), 0u);
}

TEST_F(EngineTest, StaleEntryDetectedAfterGuestDemote) {
  guest_.MapHuge(0, 0);
  ept_.MapHuge(0, 1024);
  TranslationEngine engine(SmallConfig(), &guest_, &ept_);
  ASSERT_TRUE(engine.Translate(5).well_aligned_huge);
  ASSERT_TRUE(engine.Translate(6).tlb_hit);
  // Demoting the guest region leaves frames intact but kills alignment: the
  // huge TLB entry may no longer exist (paper §2.2).
  guest_.Demote(0);
  const auto r = engine.Translate(6);
  EXPECT_EQ(r.status, TranslateStatus::kOk);
  EXPECT_FALSE(r.well_aligned_huge);
  EXPECT_EQ(r.frame, 1024u + 6);
  EXPECT_GT(engine.tlb().stale_hits(), 0u);
}

TEST_F(EngineTest, StaleEntryDetectedAfterGuestUnmap) {
  guest_.MapBase(50, 7);
  ept_.MapBase(7, 700);
  TranslationEngine engine(SmallConfig(), &guest_, &ept_);
  ASSERT_TRUE(engine.Translate(50).status == TranslateStatus::kOk);
  guest_.UnmapBase(50);
  const auto r = engine.Translate(50);
  EXPECT_EQ(r.status, TranslateStatus::kGuestFault);
  EXPECT_GT(engine.tlb().stale_hits(), 0u);
}

TEST_F(EngineTest, HugeHitReconstructsFrameFromBlockBase) {
  guest_.MapHuge(3, 2 * kPagesPerHuge);
  ept_.MapHuge(2, 9 * kPagesPerHuge);
  TranslationEngine engine(SmallConfig(), &guest_, &ept_);
  const uint64_t base_vpn = 3ull << kHugeOrder;
  ASSERT_FALSE(engine.Translate(base_vpn).tlb_hit);
  // Every page of the region must hit the single 2 MiB entry and get its
  // frame rebuilt from the block base plus the in-region offset.
  for (uint64_t slot : {1ull, 17ull, 255ull, 511ull}) {
    const auto r = engine.Translate(base_vpn + slot);
    EXPECT_TRUE(r.tlb_hit);
    EXPECT_EQ(r.frame, 9 * kPagesPerHuge + slot);
    EXPECT_EQ(r.cycles, 1u);
  }
}

TEST_F(EngineTest, NativeModeUsesGuestTableOnly) {
  guest_.MapBase(10, 77);
  TranslationEngine engine(SmallConfig(), &guest_, nullptr);
  const auto r = engine.Translate(10);
  EXPECT_EQ(r.status, TranslateStatus::kOk);
  EXPECT_EQ(r.frame, 77u);
  EXPECT_FALSE(engine.virtualized());
}

TEST_F(EngineTest, NativeHugeIsAligned) {
  guest_.MapHuge(0, 1024);
  TranslationEngine engine(SmallConfig(), &guest_, nullptr);
  EXPECT_TRUE(engine.Translate(3).well_aligned_huge);
  EXPECT_TRUE(engine.Translate(300).tlb_hit);
}

TEST_F(EngineTest, CountersAccumulateAndReset) {
  guest_.MapBase(1, 1);
  ept_.MapBase(1, 1);
  TranslationEngine engine(SmallConfig(), &guest_, &ept_);
  engine.Translate(1);
  engine.Translate(1);
  EXPECT_EQ(engine.translations(), 2u);
  EXPECT_GT(engine.translation_cycles(), 0u);
  engine.ResetCounters();
  EXPECT_EQ(engine.translations(), 0u);
  EXPECT_EQ(engine.translation_cycles(), 0u);
}

// Property: for random mapping layouts, the engine's final frame must equal
// the direct composition of the two tables, regardless of TLB state.
class EnginePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EnginePropertyTest, AgreesWithDirectComposition) {
  base::Rng rng(GetParam());
  PageTable guest;
  PageTable ept;
  constexpr uint64_t kRegions = 6;
  // Build a random two-layer layout.
  for (uint64_t r = 0; r < kRegions; ++r) {
    if (rng.NextBool(0.4)) {
      guest.MapHuge(r, r * kPagesPerHuge);
    } else {
      for (uint64_t s = 0; s < kPagesPerHuge; ++s) {
        if (rng.NextBool(0.8)) {
          guest.MapBase((r << kHugeOrder) + s, r * kPagesPerHuge + s);
        }
      }
    }
    if (rng.NextBool(0.4)) {
      ept.MapHuge(r, (kRegions + r) * kPagesPerHuge);
    } else {
      for (uint64_t s = 0; s < kPagesPerHuge; ++s) {
        ept.MapBase(r * kPagesPerHuge + s,
                    (kRegions + r) * kPagesPerHuge + s);
      }
    }
  }
  TranslationEngine engine(SmallConfig(), &guest, &ept);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t vpn = rng.NextBelow(kRegions << kHugeOrder);
    const auto r = engine.Translate(vpn);
    const auto g = guest.Lookup(vpn);
    if (!g.has_value()) {
      ASSERT_EQ(r.status, TranslateStatus::kGuestFault);
      continue;
    }
    const auto h = ept.Lookup(g->frame);
    ASSERT_TRUE(h.has_value());
    ASSERT_EQ(r.status, TranslateStatus::kOk);
    ASSERT_EQ(r.frame, h->frame) << "vpn " << vpn;
    ASSERT_EQ(r.well_aligned_huge, g->size == PageSize::kHuge &&
                                       h->size == PageSize::kHuge);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnginePropertyTest,
                         ::testing::Values(101, 202, 303, 404));

// Walk-memo depth invariant: the memo covers all four guest levels, and
// enabling it must not change a single observable — statuses, frames,
// charged cycles, TLB counters, or the per-level walk attribution.  Two
// engines share the same tables (reads and access-counter bumps only) and
// translate the same stream; one has the memo disabled.
TEST_F(EngineTest, WalkMemoDepthInvariant) {
  constexpr uint64_t kRegions = 64;
  for (uint64_t r = 0; r < kRegions; ++r) {
    if (r % 2 == 0) {
      guest_.MapHuge(r, r * kPagesPerHuge);
      ept_.MapHuge(r, (kRegions + r) * kPagesPerHuge);
    } else {
      for (uint64_t s = 0; s < kPagesPerHuge; ++s) {
        guest_.MapBase((r << kHugeOrder) + s, r * kPagesPerHuge + s);
        ept_.MapBase(r * kPagesPerHuge + s,
                     (kRegions + r) * kPagesPerHuge + s);
      }
    }
  }
  TranslationEngine::Config with = SmallConfig();
  TranslationEngine::Config without = SmallConfig();
  without.walker.walk_memo_slots = 0;
  TranslationEngine memoized(with, &guest_, &ept_);
  TranslationEngine plain(without, &guest_, &ept_);
  base::Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t vpn = rng.NextBelow(kRegions << kHugeOrder);
    const auto a = memoized.Translate(vpn);
    const auto b = plain.Translate(vpn);
    ASSERT_EQ(a.status, b.status) << "step " << i;
    ASSERT_EQ(a.frame, b.frame) << "step " << i;
    ASSERT_EQ(a.cycles, b.cycles) << "step " << i;
    ASSERT_EQ(a.tlb_hit, b.tlb_hit) << "step " << i;
    ASSERT_EQ(a.well_aligned_huge, b.well_aligned_huge) << "step " << i;
  }
  EXPECT_EQ(memoized.tlb().hits(), plain.tlb().hits());
  EXPECT_EQ(memoized.tlb().misses(), plain.tlb().misses());
  const mmu::WalkLevelStats sa = memoized.walk_stats();
  const mmu::WalkLevelStats sb = plain.walk_stats();
  for (size_t l = 0; l < 4; ++l) {
    EXPECT_EQ(sa.guest_mem[l], sb.guest_mem[l]) << "level " << l;
    EXPECT_EQ(sa.guest_cached[l], sb.guest_cached[l]) << "level " << l;
    EXPECT_EQ(sa.host_mem[l], sb.host_mem[l]) << "level " << l;
    EXPECT_EQ(sa.host_cached[l], sb.host_cached[l]) << "level " << l;
    EXPECT_EQ(sa.nested_hit[l], sb.nested_hit[l]) << "level " << l;
    EXPECT_EQ(sa.nested_walk[l], sb.nested_walk[l]) << "level " << l;
  }
  // The memo engaged for both leaf depths (huge regions replay through the
  // upper three levels, base regions through all four).
  EXPECT_GT(sa.memo_hits, 0u);
  EXPECT_EQ(sb.memo_hits, 0u);
}

}  // namespace
