// Fuzzed differential test for the DAMON-style region monitor (same idiom
// as test_utility_monitor.cc / test_repartitioner.cc): drive the monitor
// with a randomly mutating brute-force per-page counter array and verify
// every observable output against a full reference replica — without ever
// replicating the monitor's internal RNG stream.  The monitor exports
// exactly enough evidence to make that possible:
//
//  * last_samples() — every check's (page, armed, checked, accessed), so
//    the two-phase protocol is validated against the raw counters: the
//    armed count must equal the page's counter as of the previous tick,
//    the checked count must equal it now, and accessed must be exactly
//    checked > armed (exact under monotone counters, conservative — never
//    a false positive — under external decay);
//  * last_layout_ops() — the aggregation's merge/split ops, replayed over
//    a reference region list with the documented length-weighted-average
//    merge math and inherit-on-split rules.  After replay the reference
//    must equal regions() field-for-field (start, len, tallies, age).
//
// Plus structural invariants every tick (regions tile [0, span) within the
// configured count bounds), stats reconciliation against the logs, a
// ColdOrder comparator check, and a deterministic hot/cold workload where
// sampling exactness forces saturated / zero published tallies.
#include "damon/region_monitor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "base/rng.h"

namespace {

using damon::LayoutOp;
using damon::MonitorConfig;
using damon::Region;
using damon::RegionMonitor;
using damon::SampleRecord;

// Reference regions replicate every Region field; geometry evolves only
// through the monitor's own op log.
void ExpectTiling(const std::vector<Region>& regions, uint64_t span,
                  uint64_t min_regions, uint64_t max_regions) {
  ASSERT_FALSE(regions.empty());
  ASSERT_GE(regions.size(), std::min<uint64_t>(min_regions, span));
  ASSERT_LE(regions.size(), max_regions);
  uint64_t next = 0;
  for (const Region& r : regions) {
    ASSERT_EQ(r.start, next);
    ASSERT_GE(r.len, 1u);
    next += r.len;
  }
  ASSERT_EQ(next, span);
}

size_t FindByStart(const std::vector<Region>& regions, uint64_t start) {
  for (size_t i = 0; i < regions.size(); ++i) {
    if (regions[i].start == start) {
      return i;
    }
  }
  ADD_FAILURE() << "no region starts at " << start;
  return regions.size();
}

class DamonFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DamonFuzzTest, DifferentialAgainstBruteForceTracker) {
  base::Rng rng(GetParam());
  MonitorConfig cfg;
  cfg.min_regions = 1 + static_cast<uint32_t>(rng.NextBelow(8));
  cfg.max_regions = cfg.min_regions + static_cast<uint32_t>(rng.NextBelow(32));
  cfg.aggregation_ticks = 1 + static_cast<uint32_t>(rng.NextBelow(6));
  cfg.merge_threshold = static_cast<uint32_t>(rng.NextBelow(3));
  cfg.seed = GetParam() * 977 + 5;
  const uint64_t span = 1 + rng.NextBelow(400);
  RegionMonitor monitor(cfg, span);

  // Brute-force per-page access counters (what the page tables keep), and
  // their value as of the end of the previous tick — what armed counts
  // must have recorded.
  std::vector<uint64_t> counts(span, 0);
  std::vector<uint64_t> prev_counts = counts;

  std::vector<Region> ref = monitor.regions();
  ExpectTiling(ref, span, cfg.min_regions, cfg.max_regions);
  ASSERT_EQ(ref.size(), std::min<uint64_t>(cfg.min_regions, span));

  uint64_t checked = 0;
  uint64_t accessed_total = 0;
  uint64_t merges = 0;
  uint64_t splits = 0;
  const int kTicks = 120;
  for (int tick = 1; tick <= kTicks; ++tick) {
    // Mutate the counters the way the simulator does between daemon ticks:
    // random touches, occasionally an external decay (promotion policies
    // halve the same counters via DecayAccessCounts).
    const bool decayed = rng.NextBool(0.15);
    if (decayed) {
      for (uint64_t& c : counts) {
        c /= 2;
      }
    }
    std::vector<bool> touched(span, false);
    const uint64_t touches = rng.NextBelow(50);
    for (uint64_t t = 0; t < touches; ++t) {
      const uint64_t page = rng.NextBelow(span);
      counts[page] += 1 + rng.NextBelow(4);
      touched[page] = true;
    }

    const uint64_t aggregations_before = monitor.stats().aggregations;
    monitor.Tick([&](uint64_t page) { return counts[page]; });

    // --- Sample log vs brute force -------------------------------------
    // Tick 1 has nothing armed; afterwards every region checks exactly
    // once per tick (the check runs before the layout adapts).
    const size_t expected_checks = tick == 1 ? 0 : ref.size();
    ASSERT_EQ(monitor.last_samples().size(), expected_checks);
    for (const SampleRecord& rec : monitor.last_samples()) {
      ASSERT_LT(rec.page, span);
      const size_t ri = FindByStart(ref, rec.region_start);
      ASSERT_LT(ri, ref.size());
      ASSERT_GE(rec.page, ref[ri].start);
      ASSERT_LT(rec.page, ref[ri].start + ref[ri].len);
      ASSERT_EQ(rec.armed_count, prev_counts[rec.page]);
      ASSERT_EQ(rec.checked_count, counts[rec.page]);
      ASSERT_EQ(rec.accessed, rec.checked_count > rec.armed_count);
      // Conservative under decay, exact without it.
      if (rec.accessed) {
        ASSERT_TRUE(touched[rec.page]);
      }
      if (!decayed) {
        ASSERT_EQ(rec.accessed, touched[rec.page]);
      }
      ref[ri].nr_accesses += rec.accessed ? 1 : 0;
      ++checked;
      accessed_total += rec.accessed ? 1 : 0;
    }

    // --- Layout-op replay ----------------------------------------------
    // last_layout_ops() persists between aggregations; replay only when
    // one actually ran this tick.  Op order mirrors Aggregate(): merges
    // (reading raw window tallies), then publish/reset/age, then splits.
    if (monitor.stats().aggregations != aggregations_before) {
      ASSERT_EQ(monitor.stats().aggregations, aggregations_before + 1);
      size_t op = 0;
      const std::vector<LayoutOp>& ops = monitor.last_layout_ops();
      for (; op < ops.size() && ops[op].kind == LayoutOp::Kind::kMerge;
           ++op) {
        const size_t li = FindByStart(ref, ops[op].left);
        ASSERT_LT(li + 1, ref.size());
        ASSERT_EQ(ref[li + 1].start, ops[op].right);
        Region& left = ref[li];
        const Region& right = ref[li + 1];
        const uint64_t total = left.len + right.len;
        left.nr_accesses = static_cast<uint32_t>(
            (uint64_t{left.nr_accesses} * left.len +
             uint64_t{right.nr_accesses} * right.len) /
            total);
        left.age = static_cast<uint32_t>(
            (uint64_t{left.age} * left.len + uint64_t{right.age} * right.len) /
            total);
        left.len = total;
        ref.erase(ref.begin() + static_cast<ptrdiff_t>(li) + 1);
        ++merges;
      }
      for (Region& r : ref) {
        r.last_nr_accesses = r.nr_accesses;
        r.nr_accesses = 0;
        r.age += 1;
      }
      for (; op < ops.size(); ++op) {
        ASSERT_EQ(ops[op].kind, LayoutOp::Kind::kSplit);
        const size_t li = FindByStart(ref, ops[op].left);
        Region& left = ref[li];
        const uint64_t at = ops[op].right;
        ASSERT_GT(at, left.start);
        ASSERT_LT(at, left.start + left.len);
        Region right = left;
        right.start = at;
        right.len = left.start + left.len - at;
        left.len = at - left.start;
        ref.insert(ref.begin() + static_cast<ptrdiff_t>(li) + 1, right);
        ++splits;
      }
    }

    // --- Reference must now equal the monitor exactly ------------------
    ExpectTiling(monitor.regions(), span, cfg.min_regions, cfg.max_regions);
    ASSERT_EQ(monitor.regions().size(), ref.size());
    for (size_t i = 0; i < ref.size(); ++i) {
      const Region& got = monitor.regions()[i];
      ASSERT_EQ(got.start, ref[i].start) << "region " << i;
      ASSERT_EQ(got.len, ref[i].len) << "region " << i;
      ASSERT_EQ(got.nr_accesses, ref[i].nr_accesses) << "region " << i;
      ASSERT_EQ(got.last_nr_accesses, ref[i].last_nr_accesses)
          << "region " << i;
      ASSERT_EQ(got.age, ref[i].age) << "region " << i;
    }

    // ColdOrder is exactly the documented comparator over regions() (a
    // strict total order here — starts are unique).
    std::vector<Region> expect_cold = monitor.regions();
    std::sort(expect_cold.begin(), expect_cold.end(),
              [](const Region& a, const Region& b) {
                if (a.last_nr_accesses != b.last_nr_accesses) {
                  return a.last_nr_accesses < b.last_nr_accesses;
                }
                if (a.age != b.age) {
                  return a.age > b.age;
                }
                return a.start < b.start;
              });
    const std::vector<Region> cold = monitor.ColdOrder();
    ASSERT_EQ(cold.size(), expect_cold.size());
    for (size_t i = 0; i < cold.size(); ++i) {
      ASSERT_EQ(cold[i].start, expect_cold[i].start) << "cold rank " << i;
    }

    prev_counts = counts;
  }

  // --- Stats reconcile with the logs -----------------------------------
  const damon::MonitorStats& stats = monitor.stats();
  EXPECT_EQ(stats.ticks, static_cast<uint64_t>(kTicks));
  EXPECT_EQ(stats.aggregations,
            static_cast<uint64_t>(kTicks) / cfg.aggregation_ticks);
  EXPECT_EQ(stats.samples_checked, checked);
  EXPECT_EQ(stats.samples_accessed, accessed_total);
  EXPECT_EQ(stats.merges, merges);
  EXPECT_EQ(stats.splits, splits);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DamonFuzzTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88,
                                           99, 110));

// Deterministic hot/cold split: pages [0, 32) gain one access per tick,
// pages [32, 64) never.  The initial 4-slice layout puts a region boundary
// at 32, and with merge_threshold = 0 a hot region (window tally ==
// aggregation_ticks — sampling is exact under monotone counters, so every
// check in a hot region is accessed) can never merge with a cold one
// (tally 0), so the boundary survives every adaptation and all regions
// stay purely hot or purely cold.  Published tallies must therefore
// saturate exactly, and ColdOrder must rank every cold region before every
// hot one.
TEST(DamonHotColdTest, PublishedTalliesSaturateExactly) {
  MonitorConfig cfg;
  cfg.min_regions = 4;
  cfg.max_regions = 16;
  cfg.aggregation_ticks = 4;
  cfg.merge_threshold = 0;
  cfg.seed = 7;
  const uint64_t kSpan = 64;
  const uint64_t kHotEnd = 32;
  RegionMonitor monitor(cfg, kSpan);

  uint64_t tick_count = 0;
  const auto access_count = [&](uint64_t page) {
    return page < kHotEnd ? tick_count : 0;
  };
  const int kTicks = 40;  // 10 full aggregation windows
  for (int t = 0; t < kTicks; ++t) {
    ++tick_count;
    monitor.Tick(access_count);
  }
  ASSERT_EQ(monitor.stats().aggregations, 10u);

  size_t hot_regions = 0;
  size_t cold_regions = 0;
  for (const Region& r : monitor.regions()) {
    const bool hot = r.start + r.len <= kHotEnd;
    const bool cold = r.start >= kHotEnd;
    ASSERT_TRUE(hot || cold) << "region straddles the hot/cold boundary: ["
                             << r.start << ", " << r.start + r.len << ")";
    if (hot) {
      // Full windows publish exactly aggregation_ticks (one accessed check
      // per tick; only the very first window is one check short, and nine
      // windows have completed since).
      EXPECT_EQ(r.last_nr_accesses, cfg.aggregation_ticks)
          << "hot region at " << r.start;
      ++hot_regions;
    } else {
      EXPECT_EQ(r.last_nr_accesses, 0u) << "cold region at " << r.start;
      ++cold_regions;
    }
  }
  EXPECT_GE(hot_regions, 1u);
  EXPECT_GE(cold_regions, 1u);

  // Every cold region sorts before every hot region.
  const std::vector<Region> cold_order = monitor.ColdOrder();
  for (size_t i = 0; i < cold_order.size(); ++i) {
    const bool is_cold = cold_order[i].start >= kHotEnd;
    EXPECT_EQ(is_cold, i < cold_regions) << "cold rank " << i;
  }
}

// A one-page span degenerates to a single unsplittable, unmergeable
// region; the monitor must keep ticking without layout churn.
TEST(DamonEdgeTest, SinglePageSpan) {
  MonitorConfig cfg;
  cfg.min_regions = 8;
  cfg.max_regions = 64;
  cfg.aggregation_ticks = 2;
  RegionMonitor monitor(cfg, 1);
  uint64_t count = 0;
  for (int t = 0; t < 20; ++t) {
    ++count;
    monitor.Tick([&](uint64_t) { return count; });
    ASSERT_EQ(monitor.regions().size(), 1u);
    ASSERT_EQ(monitor.regions()[0].start, 0u);
    ASSERT_EQ(monitor.regions()[0].len, 1u);
  }
  EXPECT_EQ(monitor.stats().splits, 0u);
  EXPECT_EQ(monitor.stats().merges, 0u);
  // 19 checks (tick 1 arms only), all accessed: the counter is monotone.
  EXPECT_EQ(monitor.stats().samples_checked, 19u);
  EXPECT_EQ(monitor.stats().samples_accessed, 19u);
}

}  // namespace
