// Tests for the EMA offset-descriptor store (spans, move-to-front search,
// sub-VMA split and uncovered-window queries).
#include "gemini/ema.h"

#include <gtest/gtest.h>

#include "base/types.h"

namespace {

using base::kPagesPerHuge;
using gemini::Ema;
using vmem::kInvalidFrame;

TEST(Ema, MissWithoutSpans) {
  Ema ema;
  EXPECT_EQ(ema.TargetFor(1, 100), kInvalidFrame);
  EXPECT_EQ(ema.stats().descriptor_misses, 1u);
}

TEST(Ema, TargetAppliesOffset) {
  Ema ema;
  // Pages [1000, 2000) map to frames [400, 1400): offset = 600.
  ema.AddSpan(1, 1000, 1000, 600);
  EXPECT_EQ(ema.TargetFor(1, 1000), 400u);
  EXPECT_EQ(ema.TargetFor(1, 1500), 900u);
  EXPECT_EQ(ema.TargetFor(1, 1999), 1399u);
  EXPECT_EQ(ema.TargetFor(1, 2000), kInvalidFrame);
  EXPECT_EQ(ema.TargetFor(1, 999), kInvalidFrame);
}

TEST(Ema, NegativeOffsetMapsUpward) {
  Ema ema;
  ema.AddSpan(2, 100, 50, -900);  // frames start at 1000
  EXPECT_EQ(ema.TargetFor(2, 100), 1000u);
  EXPECT_EQ(ema.TargetFor(2, 149), 1049u);
}

TEST(Ema, SpansArePerVma) {
  Ema ema;
  ema.AddSpan(1, 0, 10, 0);
  EXPECT_EQ(ema.TargetFor(2, 5), kInvalidFrame);
  EXPECT_EQ(ema.TargetFor(1, 5), 5u);
}

TEST(Ema, MultipleSpansSearched) {
  Ema ema;
  ema.AddSpan(1, 0, 100, 0);
  ema.AddSpan(1, 1000, 100, 500);
  ema.AddSpan(1, 5000, 100, -200);
  EXPECT_EQ(ema.TargetFor(1, 50), 50u);
  EXPECT_EQ(ema.TargetFor(1, 1050), 550u);
  EXPECT_EQ(ema.TargetFor(1, 5050), 5250u);
  EXPECT_EQ(ema.span_count(1), 3u);
}

TEST(Ema, MoveToFrontCountsHits) {
  Ema ema;
  ema.AddSpan(1, 0, 100, 0);
  ema.AddSpan(1, 1000, 100, 0);
  for (int i = 0; i < 10; ++i) {
    ema.TargetFor(1, 1000 + i);
  }
  EXPECT_EQ(ema.stats().descriptor_hits, 10u);
}

TEST(Ema, OverlappingSpanAborts) {
  Ema ema;
  ema.AddSpan(1, 0, 100, 0);
  EXPECT_DEATH(ema.AddSpan(1, 50, 100, 0), "overlapping");
}

TEST(Ema, AdjacentSpansAllowed) {
  Ema ema;
  ema.AddSpan(1, 0, 100, 0);
  ema.AddSpan(1, 100, 100, 7);
  EXPECT_EQ(ema.TargetFor(1, 99), 99u);
  EXPECT_EQ(ema.TargetFor(1, 100), 93u);
}

TEST(Ema, SplitSpanCutsAtRegionBoundary) {
  Ema ema;
  // Span covering 4 huge regions starting at region boundary 0.
  ema.AddSpan(1, 0, 4 * kPagesPerHuge, 0);
  // Split at a page in the third region (index 2).
  ema.SplitSpanAt(1, 2 * kPagesPerHuge + 17);
  // Pages in regions 0-1 keep their targets; regions 2-3 are uncovered.
  EXPECT_EQ(ema.TargetFor(1, 100), 100u);
  EXPECT_EQ(ema.TargetFor(1, 2 * kPagesPerHuge + 17), kInvalidFrame);
  EXPECT_EQ(ema.TargetFor(1, 3 * kPagesPerHuge), kInvalidFrame);
  EXPECT_EQ(ema.stats().ranges_reassigned, 1u);
}

TEST(Ema, SplitAtFirstRegionErasesSpan) {
  Ema ema;
  ema.AddSpan(1, 0, kPagesPerHuge, 0);
  ema.SplitSpanAt(1, 17);
  EXPECT_EQ(ema.span_count(1), 0u);
}

TEST(Ema, SplitUnknownPageIsNoop) {
  Ema ema;
  ema.AddSpan(1, 0, 100, 0);
  ema.SplitSpanAt(1, 5000);
  EXPECT_EQ(ema.span_count(1), 1u);
}

TEST(Ema, UncoveredWindowBetweenSpans) {
  Ema ema;
  ema.AddSpan(1, 0, 512, 0);
  ema.AddSpan(1, 2048, 512, 0);
  uint64_t lo = 0;
  uint64_t hi = 0;
  ema.UncoveredWindow(1, 1000, 0, 10000, &lo, &hi);
  EXPECT_EQ(lo, 512u);
  EXPECT_EQ(hi, 2048u);
}

TEST(Ema, UncoveredWindowDefaultsToFallback) {
  Ema ema;
  uint64_t lo = 0;
  uint64_t hi = 0;
  ema.UncoveredWindow(1, 50, 10, 100, &lo, &hi);
  EXPECT_EQ(lo, 10u);
  EXPECT_EQ(hi, 100u);
}

TEST(Ema, DropVmaRemovesAllSpans) {
  Ema ema;
  ema.AddSpan(1, 0, 100, 0);
  ema.AddSpan(1, 200, 100, 0);
  ema.AddSpan(2, 0, 100, 0);
  ema.DropVma(1);
  EXPECT_EQ(ema.span_count(1), 0u);
  EXPECT_EQ(ema.TargetFor(1, 50), kInvalidFrame);
  EXPECT_EQ(ema.TargetFor(2, 50), 50u);
}

}  // namespace
