// Tests for the parallel sweep runner: bit-identical results at any job
// count, deterministic index-keyed ordering, the GEMINI_JOBS contract
// (including the jobs=1 inline fallback), and exception safety of the
// pool.
#include "harness/sweep_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <thread>

#include "bench/bench_common.h"

namespace {

// Sets an environment variable for the duration of a test and restores the
// previous value on destruction (tests in this binary share the process
// environment).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) {
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

std::vector<workload::WorkloadSpec> TinySpecs() {
  std::vector<workload::WorkloadSpec> specs;
  for (const char* name : {"Canneal", "Shore"}) {
    workload::WorkloadSpec spec = workload::SpecByName(name);
    spec.working_set_pages = 8192;
    spec.ops = 30000;
    specs.push_back(spec);
  }
  return specs;
}

std::vector<harness::SystemKind> TinySystems() {
  return {harness::SystemKind::kHostBVmB, harness::SystemKind::kThp,
          harness::SystemKind::kGemini};
}

harness::BedOptions TinyBed() {
  harness::BedOptions bed;
  bed.host_frames = 131072;
  bed.vm_gfn_count = 49152;
  bed.seed = 23;
  return bed;
}

bench::SweepResult RunTinySweep() {
  return bench::RunSweep(TinySpecs(), TinySystems(), TinyBed(),
                         harness::RunCleanSlate, "test_sweep");
}

TEST(SweepJobs, ParsesPositiveInteger) {
  ScopedEnv env("GEMINI_JOBS", "6");
  EXPECT_EQ(harness::SweepJobs(), 6);
}

TEST(SweepJobs, RejectsNonPositiveAndGarbage) {
  for (const char* bad : {"0", "-3", "abc", "4x", ""}) {
    ScopedEnv env("GEMINI_JOBS", bad);
    EXPECT_GE(harness::SweepJobs(), 1) << "GEMINI_JOBS=" << bad;
  }
  ScopedEnv env("GEMINI_JOBS", nullptr);
  EXPECT_GE(harness::SweepJobs(), 1);
}

TEST(SweepRunner, SingleJobRunsInlineOnCaller) {
  harness::SweepRunnerOptions options;
  options.jobs = 1;
  options.progress = false;
  harness::SweepRunner runner(options);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(16);
  runner.Run(seen.size(), [&](size_t i) { seen[i] = std::this_thread::get_id(); });
  for (const std::thread::id& id : seen) {
    EXPECT_EQ(id, caller);
  }
}

TEST(SweepRunner, Jobs1EnvFallbackRunsInline) {
  ScopedEnv env("GEMINI_JOBS", "1");
  harness::SweepRunnerOptions options;  // jobs = 0 => SweepJobs() => 1
  options.progress = false;
  harness::SweepRunner runner(options);
  EXPECT_EQ(runner.EffectiveJobs(8), 1);
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<int> off_thread{0};
  runner.Run(8, [&](size_t) {
    if (std::this_thread::get_id() != caller) {
      off_thread.fetch_add(1);
    }
  });
  EXPECT_EQ(off_thread.load(), 0);
}

TEST(SweepRunner, JobsCappedAtCellCount) {
  harness::SweepRunnerOptions options;
  options.jobs = 64;
  harness::SweepRunner runner(options);
  EXPECT_EQ(runner.EffectiveJobs(3), 3);
  EXPECT_EQ(runner.EffectiveJobs(100), 64);
}

TEST(SweepRunner, ParallelMapPreservesIndexOrder) {
  harness::SweepRunnerOptions options;
  options.jobs = 8;
  options.progress = false;
  const auto out = harness::ParallelMap(
      200, [](size_t i) { return i * i; }, options);
  ASSERT_EQ(out.size(), 200u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], i * i);
  }
}

TEST(SweepRunner, ExceptionInOneCellDoesNotDeadlockPool) {
  harness::SweepRunnerOptions options;
  options.jobs = 4;
  options.progress = false;
  harness::SweepRunner runner(options);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      runner.Run(16,
                 [&](size_t i) {
                   if (i == 5) {
                     throw std::runtime_error("cell 5 exploded");
                   }
                   completed.fetch_add(1);
                 }),
      std::runtime_error);
  // Every other cell still ran: the pool drained instead of deadlocking
  // or abandoning queued work.
  EXPECT_EQ(completed.load(), 15);
}

TEST(SweepRunner, FirstExceptionIsRethrownWithMessage) {
  harness::SweepRunnerOptions options;
  options.jobs = 1;  // deterministic completion order: cell 3 throws first
  options.progress = false;
  harness::SweepRunner runner(options);
  try {
    runner.Run(8, [&](size_t i) {
      if (i >= 3) {
        throw std::runtime_error("cell " + std::to_string(i));
      }
    });
    FAIL() << "expected runner.Run to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "cell 3");
  }
}

TEST(RunSweep, RowOrderingIsWorkloadMajorAtAnyJobCount) {
  const auto specs = TinySpecs();
  const auto systems = TinySystems();
  for (const char* jobs : {"1", "4"}) {
    ScopedEnv env("GEMINI_JOBS", jobs);
    const auto sweep = RunTinySweep();
    ASSERT_EQ(sweep.cells.size(), specs.size() * systems.size());
    for (size_t i = 0; i < sweep.cells.size(); ++i) {
      EXPECT_EQ(sweep.cells[i].workload, specs[i / systems.size()].name);
      EXPECT_EQ(sweep.cells[i].system, systems[i % systems.size()]);
      EXPECT_EQ(sweep.cells[i].seed, TinyBed().seed);
    }
    ASSERT_EQ(sweep.workloads.size(), specs.size());
    for (size_t w = 0; w < specs.size(); ++w) {
      EXPECT_EQ(sweep.workloads[w], specs[w].name);
    }
  }
}

TEST(RunSweep, SerialAndParallelResultsAreBitIdentical) {
  bench::SweepResult serial;
  bench::SweepResult parallel;
  {
    ScopedEnv env("GEMINI_JOBS", "1");
    serial = RunTinySweep();
  }
  {
    ScopedEnv env("GEMINI_JOBS", "4");
    parallel = RunTinySweep();
  }
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (size_t i = 0; i < serial.cells.size(); ++i) {
    const workload::RunResult& a = serial.cells[i].result;
    const workload::RunResult& b = parallel.cells[i].result;
    EXPECT_EQ(a.ops, b.ops) << i;
    EXPECT_EQ(a.tlb_misses, b.tlb_misses) << i;
    EXPECT_EQ(a.tlb_hits, b.tlb_hits) << i;
    EXPECT_EQ(a.busy_cycles, b.busy_cycles) << i;
    EXPECT_DOUBLE_EQ(a.throughput, b.throughput) << i;
    EXPECT_DOUBLE_EQ(a.mean_latency, b.mean_latency) << i;
    EXPECT_DOUBLE_EQ(a.p99_latency, b.p99_latency) << i;
    EXPECT_EQ(a.alignment.guest_huge, b.alignment.guest_huge) << i;
    EXPECT_EQ(a.alignment.host_huge, b.alignment.host_huge) << i;
    EXPECT_DOUBLE_EQ(a.alignment.well_aligned_rate,
                     b.alignment.well_aligned_rate)
        << i;
  }
}

}  // namespace
