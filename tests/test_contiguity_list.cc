// Tests for the Gemini contiguity list (next-fit over maximal free extents).
#include "vmem/contiguity_list.h"

#include <gtest/gtest.h>

#include "base/types.h"
#include "vmem/buddy_allocator.h"

namespace {

using base::kPagesPerHuge;
using vmem::BuddyAllocator;
using vmem::ContiguityList;
using vmem::kInvalidFrame;

TEST(ContiguityList, FreshMemoryIsOneExtent) {
  BuddyAllocator buddy(4096);
  ContiguityList list(&buddy);
  list.Refresh();
  ASSERT_EQ(list.extent_count(), 1u);
  EXPECT_EQ(list.extents()[0].frame, 0u);
  EXPECT_EQ(list.extents()[0].count, 4096u);
}

TEST(ContiguityList, PinSplitsExtents) {
  BuddyAllocator buddy(4096);
  ASSERT_TRUE(buddy.AllocateAt(2000, 1));
  ContiguityList list(&buddy);
  list.Refresh();
  ASSERT_EQ(list.extent_count(), 2u);
  EXPECT_EQ(list.extents()[0].count, 2000u);
  EXPECT_EQ(list.extents()[1].frame, 2001u);
  EXPECT_EQ(list.extents()[1].count, 2095u);
}

TEST(ContiguityList, FindFitBasic) {
  BuddyAllocator buddy(4096);
  ContiguityList list(&buddy);
  list.Refresh();
  const uint64_t f = list.FindFit(100, /*huge_aligned=*/false);
  EXPECT_EQ(f, 0u);
}

TEST(ContiguityList, FindFitHugeAlignedRoundsUp) {
  BuddyAllocator buddy(4096);
  ASSERT_TRUE(buddy.AllocateAt(0, 10));  // extent starts at 10, unaligned
  ContiguityList list(&buddy);
  list.Refresh();
  const uint64_t f = list.FindFit(kPagesPerHuge, /*huge_aligned=*/true);
  EXPECT_EQ(f, kPagesPerHuge);  // 512, the first aligned frame >= 10
}

TEST(ContiguityList, FindFitFailsWhenNothingFits) {
  BuddyAllocator buddy(1024);
  // Pin the middle of every huge span.
  ASSERT_TRUE(buddy.AllocateAt(256, 1));
  ASSERT_TRUE(buddy.AllocateAt(768, 1));
  ContiguityList list(&buddy);
  list.Refresh();
  EXPECT_EQ(list.FindFit(kPagesPerHuge, true), kInvalidFrame);
  EXPECT_NE(list.FindFit(200, false), kInvalidFrame);
}

TEST(ContiguityList, NextFitAdvancesCursor) {
  BuddyAllocator buddy(8192);
  ContiguityList list(&buddy);
  list.Refresh();
  const uint64_t a = list.FindFit(512, true);
  const uint64_t b = list.FindFit(512, true);
  EXPECT_NE(a, kInvalidFrame);
  EXPECT_NE(b, kInvalidFrame);
  EXPECT_EQ(b, a + 512);  // resumed where the previous search left off
}

TEST(ContiguityList, NextFitWrapsAround) {
  BuddyAllocator buddy(2048);
  ContiguityList list(&buddy);
  list.Refresh();
  ASSERT_EQ(list.FindFit(1500, false), 0u);
  // Cursor is at 1500; a 1000-frame request only fits before the cursor,
  // so the search must wrap.
  list.Refresh();
  const uint64_t f = list.FindFit(1000, false);
  EXPECT_EQ(f, 0u);
}

TEST(ContiguityList, LargestExtent) {
  BuddyAllocator buddy(4096);
  ASSERT_TRUE(buddy.AllocateAt(1000, 1));
  ASSERT_TRUE(buddy.AllocateAt(1500, 1));
  ContiguityList list(&buddy);
  list.Refresh();
  const auto largest = list.LargestExtent();
  EXPECT_EQ(largest.frame, 1501u);
  EXPECT_EQ(largest.count, 4096u - 1501);
}

TEST(ContiguityList, LargestExtentEmptyWhenFull) {
  BuddyAllocator buddy(64);
  ASSERT_TRUE(buddy.AllocateAt(0, 64));
  ContiguityList list(&buddy);
  list.Refresh();
  EXPECT_EQ(list.LargestExtent().count, 0u);
}

TEST(ContiguityList, RefreshIsCachedUntilMutation) {
  BuddyAllocator buddy(4096);
  ContiguityList list(&buddy);
  list.Refresh();
  ASSERT_EQ(list.extent_count(), 1u);
  // No mutation: refresh must not rebuild (observable via unchanged view
  // even though we cannot probe internals — verify it stays correct).
  list.Refresh();
  EXPECT_EQ(list.extent_count(), 1u);
  ASSERT_TRUE(buddy.AllocateAt(100, 1));
  list.Refresh();
  EXPECT_EQ(list.extent_count(), 2u);
}

TEST(ContiguityList, ExtentsMergeAcrossBuddyBlockBoundaries) {
  BuddyAllocator buddy(8192);
  // Allocate and free in a pattern that leaves adjacent blocks of
  // different orders: the list must present them as one extent.
  const uint64_t f = buddy.Allocate(0);
  ContiguityList list(&buddy);
  list.Refresh();
  buddy.Free(f, 1);
  list.Refresh();
  ASSERT_EQ(list.extent_count(), 1u);
  EXPECT_EQ(list.extents()[0].count, 8192u);
}

}  // namespace
