// Tests for the FMFI-driven memory fragmenter.
#include "vmem/fragmenter.h"

#include <gtest/gtest.h>

#include "base/types.h"
#include "vmem/buddy_allocator.h"
#include "vmem/frame_space.h"

namespace {

using base::kHugeOrder;

TEST(Fragmenter, ReachesTarget) {
  vmem::BuddyAllocator buddy(1 << 16);
  vmem::FrameSpace frames(1 << 16);
  vmem::Fragmenter fragmenter(&buddy, &frames, 7);
  const double achieved = fragmenter.FragmentToTarget(0.85);
  EXPECT_GE(achieved, 0.85);
  buddy.CheckInvariants();
}

TEST(Fragmenter, ZeroTargetPinsNothing) {
  vmem::BuddyAllocator buddy(1 << 14);
  vmem::FrameSpace frames(1 << 14);
  vmem::Fragmenter fragmenter(&buddy, &frames, 7);
  EXPECT_DOUBLE_EQ(fragmenter.FragmentToTarget(0.0), 0.0);
  EXPECT_EQ(fragmenter.pinned_frames(), 0u);
}

TEST(Fragmenter, PinnedFramesAreTagged) {
  vmem::BuddyAllocator buddy(1 << 14);
  vmem::FrameSpace frames(1 << 14);
  vmem::Fragmenter fragmenter(&buddy, &frames, 7);
  fragmenter.FragmentToTarget(0.5);
  EXPECT_GT(fragmenter.pinned_frames(), 0u);
  EXPECT_EQ(frames.CountUse(vmem::FrameUse::kPinned),
            fragmenter.pinned_frames());
}

TEST(Fragmenter, ReleaseAllRestoresPristineState) {
  vmem::BuddyAllocator buddy(1 << 14);
  vmem::FrameSpace frames(1 << 14);
  vmem::Fragmenter fragmenter(&buddy, &frames, 7);
  fragmenter.FragmentToTarget(0.9);
  EXPECT_GT(fragmenter.pinned_frames(), 0u);
  fragmenter.ReleaseAll();
  EXPECT_EQ(fragmenter.pinned_frames(), 0u);
  EXPECT_EQ(buddy.free_frames(), 1ull << 14);
  EXPECT_LT(buddy.Fmfi(kHugeOrder), 0.01);
  buddy.CheckInvariants();
}

TEST(Fragmenter, RespectsPinBudget) {
  vmem::BuddyAllocator buddy(1 << 14);
  vmem::FrameSpace frames(1 << 14);
  vmem::Fragmenter fragmenter(&buddy, &frames, 7);
  fragmenter.FragmentToTarget(1.0, /*max_fraction=*/0.01);
  EXPECT_LE(fragmenter.pinned_frames(), (1ull << 14) / 100 + 1);
}

TEST(Fragmenter, DeterministicPerSeed) {
  vmem::BuddyAllocator b1(1 << 14), b2(1 << 14);
  vmem::FrameSpace f1(1 << 14), f2(1 << 14);
  vmem::Fragmenter fr1(&b1, &f1, 42), fr2(&b2, &f2, 42);
  EXPECT_DOUBLE_EQ(fr1.FragmentToTarget(0.7), fr2.FragmentToTarget(0.7));
  EXPECT_EQ(fr1.pinned_frames(), fr2.pinned_frames());
}

TEST(Fragmenter, LeavesBasePagesAllocatable) {
  vmem::BuddyAllocator buddy(1 << 14);
  vmem::FrameSpace frames(1 << 14);
  vmem::Fragmenter fragmenter(&buddy, &frames, 7);
  fragmenter.FragmentToTarget(0.9);
  // Fragmentation is about contiguity, not capacity: plenty of single
  // frames must remain.
  EXPECT_GT(buddy.free_frames(), (1ull << 14) / 2);
  EXPECT_NE(buddy.Allocate(0), vmem::kInvalidFrame);
}

class FragmenterTargetTest : public ::testing::TestWithParam<double> {};

TEST_P(FragmenterTargetTest, HitsEveryTarget) {
  const double target = GetParam();
  vmem::BuddyAllocator buddy(1 << 15);
  vmem::FrameSpace frames(1 << 15);
  vmem::Fragmenter fragmenter(&buddy, &frames, 13);
  const double achieved = fragmenter.FragmentToTarget(target);
  EXPECT_GE(achieved, target);
  buddy.CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(Targets, FragmenterTargetTest,
                         ::testing::Values(0.2, 0.5, 0.7, 0.85, 0.95));

}  // namespace
