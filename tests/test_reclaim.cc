// Tests for memory-pressure handling: policy reserve release, cold-page
// swapping, huge-page demotion ranking, and OOM-free overcommit.
#include <gtest/gtest.h>

#include "base/types.h"
#include "gemini/gemini_policy.h"
#include "os/machine.h"
#include "policy/base_only.h"
#include "policy/thp.h"

namespace {

using base::kHugeOrder;
using base::kPagesPerHuge;

osim::MachineConfig SmallConfig() {
  osim::MachineConfig config;
  config.host_frames = 65536;
  config.daemon_period = 50000;
  config.seed = 8;
  return config;
}

TEST(Reclaim, OvercommitSwapsInsteadOfAborting) {
  osim::Machine machine(SmallConfig());
  auto& vm = machine.AddVm(2048, std::make_unique<policy::BaseOnlyPolicy>(),
                           std::make_unique<policy::BaseOnlyPolicy>());
  // Working set larger than guest memory: must swap, not abort.
  osim::Vma& vma = vm.guest().aspace().MapAnonymous(3000);
  for (uint64_t p = 0; p < 3000; ++p) {
    machine.Access(0, vma.start_page + p);
  }
  EXPECT_GT(vm.guest().stats().pages_swapped_out, 900u);
  EXPECT_LE(vm.guest().table().mapped_pages(), 2048u);
}

TEST(Reclaim, SwapInChargesTheReturningFault) {
  osim::Machine machine(SmallConfig());
  auto& vm = machine.AddVm(2048, std::make_unique<policy::BaseOnlyPolicy>(),
                           std::make_unique<policy::BaseOnlyPolicy>());
  osim::Vma& vma = vm.guest().aspace().MapAnonymous(3000);
  for (uint64_t p = 0; p < 3000; ++p) {
    machine.Access(0, vma.start_page + p);
  }
  ASSERT_GT(vm.guest().swapped_pages(), 0u);
  // Touch pages until one comes back from swap.
  const uint64_t swap_ins_before = vm.guest().stats().swap_ins;
  base::Cycles max_cost = 0;
  for (uint64_t p = 0; p < 3000; ++p) {
    const auto r = machine.Access(0, vma.start_page + p);
    max_cost = std::max(max_cost, r.cycles);
    if (vm.guest().stats().swap_ins > swap_ins_before) {
      break;
    }
  }
  EXPECT_GT(vm.guest().stats().swap_ins, swap_ins_before);
  EXPECT_GE(max_cost, machine.config().costs.swap_in_page);
}

TEST(Reclaim, ColdRegionsSwappedBeforeHotOnes) {
  osim::Machine machine(SmallConfig());
  auto& vm = machine.AddVm(2048, std::make_unique<policy::BaseOnlyPolicy>(),
                           std::make_unique<policy::BaseOnlyPolicy>());
  osim::Vma& cold = vm.guest().aspace().MapAnonymous(900);
  osim::Vma& hot = vm.guest().aspace().MapAnonymous(900);
  for (uint64_t p = 0; p < 900; ++p) {
    machine.Access(0, cold.start_page + p);
    machine.Access(0, hot.start_page + p);
  }
  // Cool everything down, then heat up `hot` only.
  for (int i = 0; i < 16; ++i) {
    vm.guest().table().DecayAccessCounts();
  }
  for (int round = 0; round < 20; ++round) {
    for (uint64_t p = 0; p < 900; p += 7) {
      machine.Access(0, hot.start_page + p);
    }
  }
  // Overcommit: force a reclaim.
  osim::Vma& extra = vm.guest().aspace().MapAnonymous(500);
  for (uint64_t p = 0; p < 500; ++p) {
    machine.Access(0, extra.start_page + p);
  }
  // The cold VMA must have lost more pages than the hot one.
  uint64_t cold_mapped = 0;
  uint64_t hot_mapped = 0;
  for (uint64_t p = 0; p < 900; ++p) {
    cold_mapped += vm.guest().table().Lookup(cold.start_page + p) ? 1 : 0;
    hot_mapped += vm.guest().table().Lookup(hot.start_page + p) ? 1 : 0;
  }
  EXPECT_LT(cold_mapped, hot_mapped);
}

TEST(Reclaim, HugeRegionsDemotedWhenOnlyHugeRemain) {
  osim::Machine machine(SmallConfig());
  auto& vm = machine.AddVm(2048, std::make_unique<policy::ThpPolicy>(),
                           std::make_unique<policy::BaseOnlyPolicy>());
  // Four huge-backed regions fill guest memory completely.
  osim::Vma& vma = vm.guest().aspace().MapAnonymous(4 * kPagesPerHuge);
  for (uint64_t r = 0; r < 4; ++r) {
    machine.Access(0, vma.start_page + r * kPagesPerHuge);
  }
  ASSERT_EQ(vm.guest().table().huge_leaves(), 4u);
  // Demand more memory than remains, from a single region (which is
  // excluded from swap victims): the huge regions must give way.
  osim::Vma& extra = vm.guest().aspace().MapAnonymous(400);
  for (uint64_t p = 0; p < 400; ++p) {
    machine.Access(0, extra.start_page + p);
  }
  EXPECT_LT(vm.guest().table().huge_leaves(), 4u);
  EXPECT_GT(vm.guest().stats().demotions, 0u);
  EXPECT_GT(vm.guest().stats().pages_swapped_out, 0u);
}

TEST(Reclaim, DefaultVictimRankingPrefersCold) {
  osim::Machine machine(SmallConfig());
  auto& vm = machine.AddVm(8192, std::make_unique<policy::ThpPolicy>(),
                           std::make_unique<policy::BaseOnlyPolicy>());
  osim::Vma& vma = vm.guest().aspace().MapAnonymous(2 * kPagesPerHuge);
  machine.Access(0, vma.start_page);
  machine.Access(0, vma.start_page + kPagesPerHuge);
  ASSERT_EQ(vm.guest().table().huge_leaves(), 2u);
  const uint64_t hot_region = vma.start_page >> kHugeOrder;
  for (int i = 0; i < 50; ++i) {
    vm.guest().table().BumpAccess(hot_region);
  }
  const auto victims =
      vm.guest().policy().RankHugeDemotionVictims(vm.guest(), 2);
  ASSERT_EQ(victims.size(), 2u);
  EXPECT_EQ(victims[0], hot_region + 1);  // the cold one first
}

TEST(Reclaim, GeminiRankingPrefersMisaligned) {
  osim::Machine machine(SmallConfig());
  auto& vm = gemini::InstallGeminiVm(machine, 8192);
  auto& guest = vm.guest();
  // Region A: guest huge, host-huge-backed (well aligned).
  // Region B: guest huge, base-backed (misaligned) and HOTTER than A.
  ASSERT_TRUE(guest.buddy().AllocateAt(2 * kPagesPerHuge, kPagesPerHuge));
  ASSERT_TRUE(guest.buddy().AllocateAt(4 * kPagesPerHuge, kPagesPerHuge));
  guest.table().MapHuge(10, 2 * kPagesPerHuge);
  guest.table().MapHuge(11, 4 * kPagesPerHuge);
  auto& ept = vm.host_slice().table();
  const uint64_t block = machine.host().buddy().Allocate(base::kHugeOrder);
  ept.MapHuge(2, block);  // backs region A hugely
  for (int i = 0; i < 100; ++i) {
    guest.table().BumpAccess(11);  // B is hot
  }
  const auto victims = guest.policy().RankHugeDemotionVictims(guest, 2);
  ASSERT_EQ(victims.size(), 2u);
  // Misaligned (B, region 11) goes first even though it is hotter.
  EXPECT_EQ(victims[0], 11u);
  EXPECT_EQ(victims[1], 10u);
}

TEST(Reclaim, GeminiPressureReleasesBookingsAndBucket) {
  osim::Machine machine(SmallConfig());
  auto& vm = gemini::InstallGeminiVm(machine, 4096);
  auto* gp = dynamic_cast<gemini::GeminiGuestPolicy*>(&vm.guest().policy());
  // Touch once so components exist, then reserve manually via pressure API.
  osim::Vma& vma = vm.guest().aspace().MapAnonymous(64);
  machine.Access(0, vma.start_page);
  ASSERT_NE(gp->booking(), nullptr);
  const_cast<gemini::BookingManager*>(gp->booking())
      ->Book(4 * kPagesPerHuge, machine.Now(), 1ull << 40);
  ASSERT_EQ(gp->booking()->booked_count(), 1u);
  gp->OnMemoryPressure(vm.guest());
  EXPECT_EQ(gp->booking()->booked_count(), 0u);
}

TEST(Reclaim, HostLayerSwapsVmMemoryUnderPressure) {
  osim::MachineConfig config = SmallConfig();
  config.host_frames = 4096;  // tiny host
  osim::Machine machine(config);
  auto& vm = machine.AddVm(8192, std::make_unique<policy::BaseOnlyPolicy>(),
                           std::make_unique<policy::BaseOnlyPolicy>());
  osim::Vma& vma = vm.guest().aspace().MapAnonymous(6000);
  for (uint64_t p = 0; p < 6000; ++p) {
    machine.Access(0, vma.start_page + p);
  }
  // The host had only 4096 frames for 6000 guest pages: it must have
  // swapped VM memory.
  EXPECT_GT(vm.host_slice().stats().pages_swapped_out, 1000u);
}

}  // namespace
